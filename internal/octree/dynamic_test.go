package octree

import (
	"math"
	"math/rand"
	"testing"

	"gbpolar/internal/geom"
)

func TestDynamicBuildValidate(t *testing.T) {
	for _, n := range []int{0, 1, 10, 500, 3000} {
		pts := randomPoints(n, 10, int64(n)+1)
		d := NewDynamic(pts, 8)
		if d.NumPoints() != n {
			t.Fatalf("n=%d: NumPoints=%d", n, d.NumPoints())
		}
		if n > 0 {
			if err := d.Validate(); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	}
}

func TestDynamicMoveLocal(t *testing.T) {
	pts := randomPoints(800, 10, 21)
	d := NewDynamic(pts, 8)
	rng := rand.New(rand.NewSource(22))
	for step := 0; step < 500; step++ {
		i := int32(rng.Intn(len(pts)))
		jitter := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.5)
		if err := d.Move(i, d.Position(i).Add(jitter)); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicMoveFarRegrowsRoot(t *testing.T) {
	pts := randomPoints(100, 5, 23)
	d := NewDynamic(pts, 8)
	// Fling a point far outside the original root cell.
	if err := d.Move(0, geom.V(1e4, -1e4, 3e3)); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Position(0) != geom.V(1e4, -1e4, 3e3) {
		t.Error("position not updated")
	}
}

func TestDynamicMoveErrors(t *testing.T) {
	d := NewDynamic(randomPoints(10, 5, 24), 8)
	if err := d.Move(-1, geom.V(0, 0, 0)); err == nil {
		t.Error("negative index accepted")
	}
	if err := d.Move(10, geom.V(0, 0, 0)); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := d.Move(0, geom.V(0, 0, math.Inf(1))); err == nil {
		t.Error("non-finite position accepted")
	}
}

// Freeze must produce a valid static tree equivalent to the dynamic
// contents.
func TestDynamicFreeze(t *testing.T) {
	pts := randomPoints(1200, 12, 25)
	d := NewDynamic(pts, 8)
	rng := rand.New(rand.NewSource(26))
	for step := 0; step < 300; step++ {
		i := int32(rng.Intn(len(pts)))
		if err := d.Move(i, d.Position(i).Add(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))); err != nil {
			t.Fatal(err)
		}
	}
	ft := d.Freeze()
	if err := ft.Validate(); err != nil {
		t.Fatalf("frozen tree invalid: %v", err)
	}
	if ft.NumPoints() != 1200 {
		t.Fatalf("frozen points = %d", ft.NumPoints())
	}
	// All original indices present exactly once.
	seen := make([]bool, 1200)
	for _, it := range ft.Items {
		if seen[it] {
			t.Fatalf("item %d duplicated", it)
		}
		seen[it] = true
	}
	// Leaf sizes bounded.
	for _, l := range ft.Leaves() {
		if ft.Nodes[l].Count() > 8 {
			t.Fatalf("frozen leaf with %d items", ft.Nodes[l].Count())
		}
	}
}

// After many random moves the dynamic tree must stay within a constant
// factor of a freshly built tree's node count (no structural decay).
func TestDynamicStaysCompact(t *testing.T) {
	pts := randomPoints(2000, 10, 27)
	d := NewDynamic(pts, 8)
	rng := rand.New(rand.NewSource(28))
	for step := 0; step < 4000; step++ {
		i := int32(rng.Intn(len(pts)))
		if err := d.Move(i, geom.V(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	frozen := d.Freeze()
	// Compare against a fresh build of the same (moved) positions.
	fresh := Build(frozen.points, 8)
	if frozen.NumNodes() > 3*fresh.NumNodes() {
		t.Errorf("dynamic tree decayed: %d nodes vs fresh %d", frozen.NumNodes(), fresh.NumNodes())
	}
}

// Incremental maintenance beats rebuilds on op counts: one Move touches
// O(depth) nodes. Here we just confirm a long move sequence stays valid
// and the per-move touched work doesn't blow up (smoke proxy: wall-clock
// of 10k moves on 10k points stays trivially small is implied by test
// time; correctness is the assertion).
func TestDynamicManyMoves(t *testing.T) {
	pts := randomPoints(10000, 30, 29)
	d := NewDynamic(pts, 16)
	rng := rand.New(rand.NewSource(30))
	for step := 0; step < 10000; step++ {
		i := int32(rng.Intn(len(pts)))
		if err := d.Move(i, d.Position(i).Add(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.3))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicGrowRootAllDirections(t *testing.T) {
	pts := randomPoints(50, 2, 31)
	d := NewDynamic(pts, 8)
	// Escape in every octant direction, including all-negative.
	targets := []geom.Vec3{
		geom.V(-500, -500, -500), geom.V(500, -500, 500),
		geom.V(-500, 500, -500), geom.V(500, 500, 500),
	}
	for i, to := range targets {
		if err := d.Move(int32(i), to); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	ft := d.Freeze()
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreePointAccessor(t *testing.T) {
	pts := randomPoints(10, 3, 33)
	tr := Build(pts, 4)
	for i, p := range pts {
		if tr.Point(int32(i)) != p {
			t.Fatalf("Point(%d) = %v, want %v", i, tr.Point(int32(i)), p)
		}
	}
}
