// Package octree implements the linear-space point octree at the heart of
// the paper's algorithms (§II "Octrees vs. Nblists"): a recursive,
// cache-friendly subdivision of 3-D space whose memory footprint is linear
// in the number of points and — unlike nonbonded lists — independent of
// any approximation parameter or cutoff.
//
// The tree is stored as a flat node array with items permuted so every
// node (internal or leaf) owns a contiguous index range, which is what
// makes traversals cache-friendly and what lets the paper's node-based
// work division hand whole subtree segments to processes.
package octree

import (
	"fmt"
	"math"

	"gbpolar/internal/geom"
)

// NoChild marks an absent child slot.
const NoChild = int32(-1)

// Node is one octree node. Start:End is the node's contiguous range in
// Tree.Items; Center/Radius describe the enclosing ball of the points
// under the node (the r_A, r_Q of the paper's far-field criterion).
type Node struct {
	Start, End int32
	Children   [8]int32
	Parent     int32
	Leaf       bool
	Depth      uint8
	Center     geom.Vec3
	Radius     float64
}

// Count returns the number of points under the node.
func (n *Node) Count() int { return int(n.End - n.Start) }

// Tree is a point octree.
type Tree struct {
	Nodes []Node
	// Items is the permutation of original point indices; node i owns
	// Items[Nodes[i].Start:Nodes[i].End].
	Items []int32
	// LeafSize is the maximum number of points in a leaf (the subdivision
	// threshold used at build time).
	LeafSize int
	points   []geom.Vec3 // the (caller-owned) point positions
}

// maxDepth caps subdivision so coincident points terminate.
const maxDepth = 40

// Build constructs an octree over the given points with the given maximum
// leaf size. The points slice is retained (not copied) — callers must not
// mutate it while the tree is in use. leafSize < 1 defaults to 8.
func Build(points []geom.Vec3, leafSize int) *Tree {
	if leafSize < 1 {
		leafSize = 8
	}
	t := &Tree{LeafSize: leafSize, points: points}
	t.Items = make([]int32, len(points))
	for i := range t.Items {
		t.Items[i] = int32(i)
	}
	if len(points) == 0 {
		t.Nodes = []Node{{Start: 0, End: 0, Leaf: true, Parent: NoChild,
			Children: noChildren()}}
		return t
	}
	bounds := geom.BoundPoints(points).Cube()
	// Estimate node count to reduce reallocation: ~2n/leafSize internal
	// plus leaves.
	t.Nodes = make([]Node, 0, 2*len(points)/leafSize+8)
	t.build(0, int32(len(points)), bounds, NoChild, 0)
	return t
}

func noChildren() [8]int32 {
	return [8]int32{NoChild, NoChild, NoChild, NoChild, NoChild, NoChild, NoChild, NoChild}
}

// build creates the node for Items[start:end] within cell bounds and
// returns its index.
func (t *Tree) build(start, end int32, bounds geom.AABB, parent int32, depth uint8) int32 {
	idx := int32(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{
		Start: start, End: end, Parent: parent, Depth: depth,
		Children: noChildren(),
	})
	// Enclosing ball of the points under this node.
	var c geom.Vec3
	for _, it := range t.Items[start:end] {
		c = c.Add(t.points[it])
	}
	c = c.Scale(1 / float64(end-start))
	r2 := 0.0
	for _, it := range t.Items[start:end] {
		if d := c.Dist2(t.points[it]); d > r2 {
			r2 = d
		}
	}
	t.Nodes[idx].Center = c
	t.Nodes[idx].Radius = math.Sqrt(r2)

	if int(end-start) <= t.LeafSize || depth >= maxDepth {
		t.Nodes[idx].Leaf = true
		return idx
	}
	// Partition items into the 8 octants (counting sort, in place via a
	// temporary buffer for simplicity and determinism).
	var counts [8]int32
	for _, it := range t.Items[start:end] {
		counts[bounds.OctantIndex(t.points[it])]++
	}
	var offsets [9]int32
	for o := 0; o < 8; o++ {
		offsets[o+1] = offsets[o] + counts[o]
	}
	tmp := make([]int32, end-start)
	var fill [8]int32
	for _, it := range t.Items[start:end] {
		o := bounds.OctantIndex(t.points[it])
		tmp[offsets[o]+fill[o]] = it
		fill[o]++
	}
	copy(t.Items[start:end], tmp)
	// If every point landed in one octant the cell cannot separate them
	// (coincident or near-coincident points): make a leaf.
	for o := 0; o < 8; o++ {
		if counts[o] == int32(end-start) && bounds.MaxExtent() < 1e-9 {
			t.Nodes[idx].Leaf = true
			return idx
		}
	}
	for o := 0; o < 8; o++ {
		if counts[o] == 0 {
			continue
		}
		cs, ce := start+offsets[o], start+offsets[o+1]
		child := t.build(cs, ce, bounds.Octant(o), idx, depth+1)
		t.Nodes[idx].Children[o] = child
	}
	return idx
}

// Root returns the root node index (always 0).
func (t *Tree) Root() int32 { return 0 }

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// NumPoints returns the number of indexed points.
func (t *Tree) NumPoints() int { return len(t.Items) }

// Point returns the position of original point index i.
func (t *Tree) Point(i int32) geom.Vec3 { return t.points[i] }

// ItemsOf returns the original point indices under node n.
func (t *Tree) ItemsOf(n int32) []int32 {
	node := &t.Nodes[n]
	return t.Items[node.Start:node.End]
}

// Leaves returns the leaf node indices in deterministic (item-range)
// order — the segments the paper's node-based work division slices.
func (t *Tree) Leaves() []int32 {
	out := make([]int32, 0, len(t.Nodes))
	for i := range t.Nodes {
		if t.Nodes[i].Leaf {
			out = append(out, int32(i))
		}
	}
	// Nodes are appended in DFS order, so leaves are already ordered by
	// Start; keep that contract explicit.
	return out
}

// MaxTreeDepth returns the deepest node's depth.
func (t *Tree) MaxTreeDepth() int {
	d := uint8(0)
	for i := range t.Nodes {
		if t.Nodes[i].Depth > d {
			d = t.Nodes[i].Depth
		}
	}
	return int(d)
}

// MemoryBytes estimates the tree's memory footprint: linear in the point
// count, independent of any approximation parameter (the §II contrast
// with nonbonded lists).
func (t *Tree) MemoryBytes() int64 {
	const nodeBytes = 8*4 + 4 + 4 + 2 + 8*3 + 8 // children+range+parent+flags+ball
	return int64(len(t.Nodes))*nodeBytes + int64(len(t.Items))*4
}

// Walk calls fn for every node in DFS pre-order starting at the root,
// descending only where fn returns true.
func (t *Tree) Walk(fn func(n int32) bool) {
	t.walk(0, fn)
}

func (t *Tree) walk(n int32, fn func(n int32) bool) {
	if !fn(n) {
		return
	}
	for _, c := range t.Nodes[n].Children {
		if c != NoChild {
			t.walk(c, fn)
		}
	}
}

// Validate checks the structural invariants of the tree: contiguous,
// non-overlapping child ranges that tile the parent; ball containment of
// every point; parent/child consistency. Intended for tests.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("octree: no nodes")
	}
	seen := make([]bool, len(t.Items))
	for ni := range t.Nodes {
		n := &t.Nodes[ni]
		if n.Start > n.End || int(n.End) > len(t.Items) {
			return fmt.Errorf("octree: node %d has bad range [%d,%d)", ni, n.Start, n.End)
		}
		for _, it := range t.Items[n.Start:n.End] {
			d := n.Center.Dist(t.points[it])
			if d > n.Radius*(1+1e-12)+1e-12 {
				return fmt.Errorf("octree: node %d: point %d outside ball (d=%g r=%g)", ni, it, d, n.Radius)
			}
		}
		if n.Leaf {
			for _, c := range n.Children {
				if c != NoChild {
					return fmt.Errorf("octree: leaf %d has child %d", ni, c)
				}
			}
			for _, it := range t.Items[n.Start:n.End] {
				if seen[it] {
					return fmt.Errorf("octree: point %d in two leaves", it)
				}
				seen[it] = true
			}
			continue
		}
		covered := int32(0)
		for _, c := range n.Children {
			if c == NoChild {
				continue
			}
			ch := &t.Nodes[c]
			if ch.Parent != int32(ni) {
				return fmt.Errorf("octree: node %d: child %d has parent %d", ni, c, ch.Parent)
			}
			if ch.Start < n.Start || ch.End > n.End {
				return fmt.Errorf("octree: child %d range escapes parent %d", c, ni)
			}
			covered += ch.End - ch.Start
		}
		if covered != n.End-n.Start {
			return fmt.Errorf("octree: node %d children cover %d of %d items", ni, covered, n.End-n.Start)
		}
	}
	for i, s := range seen {
		if !s && len(t.Items) > 0 {
			return fmt.Errorf("octree: point %d not in any leaf", i)
		}
	}
	return nil
}

// Transformed returns a copy of the tree whose enclosing balls are mapped
// through the rigid transform tr and whose point accessor serves the given
// pre-transformed positions (which must be tr applied to the original
// points, in the original order). Radii are invariant under rigid motion,
// so the octree is reused without rebuilding — the docking-scan
// optimization of §IV-C Step 1.
func (t *Tree) Transformed(tr geom.Transform, newPoints []geom.Vec3) (*Tree, error) {
	if len(newPoints) != len(t.points) {
		return nil, fmt.Errorf("octree: Transformed needs %d points, got %d", len(t.points), len(newPoints))
	}
	out := &Tree{
		Nodes:    make([]Node, len(t.Nodes)),
		Items:    t.Items, // permutation is position-independent
		LeafSize: t.LeafSize,
		points:   newPoints,
	}
	copy(out.Nodes, t.Nodes)
	for i := range out.Nodes {
		out.Nodes[i].Center = tr.Apply(out.Nodes[i].Center)
	}
	return out, nil
}
