package octree

import (
	"math/rand"
	"sort"
	"testing"

	"gbpolar/internal/geom"
)

func TestForEachWithinMatchesBrute(t *testing.T) {
	pts := randomPoints(1000, 15, 41)
	tr := Build(pts, 8)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		p := geom.V(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10)
		radius := rng.Float64() * 8
		want := map[int32]bool{}
		for i, q := range pts {
			if q.Dist(p) <= radius {
				want[int32(i)] = true
			}
		}
		got := map[int32]bool{}
		tr.ForEachWithin(p, radius, func(i int32) bool { got[i] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if !got[i] {
				t.Fatalf("trial %d: missing %d", trial, i)
			}
		}
		if tr.CountWithin(p, radius) != len(want) {
			t.Fatalf("CountWithin mismatch")
		}
	}
}

func TestForEachWithinEarlyStop(t *testing.T) {
	pts := randomPoints(200, 3, 43)
	tr := Build(pts, 8)
	n := 0
	complete := tr.ForEachWithin(geom.V(0, 0, 0), 100, func(int32) bool {
		n++
		return n < 7
	})
	if complete || n != 7 {
		t.Errorf("early stop: complete=%v n=%d", complete, n)
	}
}

func TestKNearestMatchesBrute(t *testing.T) {
	pts := randomPoints(600, 12, 44)
	tr := Build(pts, 8)
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 25; trial++ {
		p := geom.V(rng.NormFloat64()*8, rng.NormFloat64()*8, rng.NormFloat64()*8)
		k := 1 + rng.Intn(20)
		got := tr.KNearest(p, k)
		if len(got) != k {
			t.Fatalf("k=%d: got %d", k, len(got))
		}
		// Brute force reference.
		type nd struct {
			i int32
			d float64
		}
		all := make([]nd, len(pts))
		for i, q := range pts {
			all[i] = nd{int32(i), q.Dist2(p)}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
		for r := 0; r < k; r++ {
			if got[r].Dist2 != all[r].d {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, r, got[r].Dist2, all[r].d)
			}
			if r > 0 && got[r].Dist2 < got[r-1].Dist2 {
				t.Fatal("results not sorted")
			}
		}
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	pts := randomPoints(5, 3, 46)
	tr := Build(pts, 8)
	if got := tr.KNearest(geom.V(0, 0, 0), 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := tr.KNearest(geom.V(0, 0, 0), 10); len(got) != 5 {
		t.Errorf("k>n returned %d", len(got))
	}
	empty := Build(nil, 8)
	if got := empty.KNearest(geom.V(0, 0, 0), 3); got != nil {
		t.Error("empty tree should return nil")
	}
	empty.ForEachWithin(geom.V(0, 0, 0), 5, func(int32) bool {
		t.Error("callback on empty tree")
		return true
	})
}
