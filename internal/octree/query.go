package octree

import (
	"gbpolar/internal/geom"
)

// Spatial queries over the static tree: ball-range visits and k-nearest
// neighbors via best-first ball pruning. These round out the octree as a
// general container (the role nonbonded lists play in traditional MD
// codes, §II) beyond the energy traversals.

// ForEachWithin calls fn(i) for every indexed point with
// |point − p| ≤ radius, pruning subtrees whose enclosing ball cannot
// intersect the query ball. fn may return false to stop early; the
// method reports whether the scan ran to completion.
func (t *Tree) ForEachWithin(p geom.Vec3, radius float64, fn func(i int32) bool) bool {
	if t.NumPoints() == 0 {
		return true
	}
	r2 := radius * radius
	var visit func(n int32) bool
	visit = func(n int32) bool {
		node := &t.Nodes[n]
		d := node.Center.Dist(p)
		if d > node.Radius+radius {
			return true // ball disjoint from query
		}
		if node.Leaf {
			for _, it := range t.ItemsOf(n) {
				if t.points[it].Dist2(p) <= r2 {
					if !fn(it) {
						return false
					}
				}
			}
			return true
		}
		for _, c := range node.Children {
			if c != NoChild {
				if !visit(c) {
					return false
				}
			}
		}
		return true
	}
	return visit(t.Root())
}

// CountWithin returns the number of points within radius of p.
func (t *Tree) CountWithin(p geom.Vec3, radius float64) int {
	n := 0
	t.ForEachWithin(p, radius, func(int32) bool { n++; return true })
	return n
}

// neighborHeap is a max-heap on distance (the current worst of the k
// best), hand-rolled on the concrete element type: container/heap's
// interface API would box every Neighbor pushed in the kNN inner loop.
type neighborHeap []Neighbor

// Neighbor is one k-nearest result.
type Neighbor struct {
	Index int32
	Dist2 float64
}

func (h *neighborHeap) push(x Neighbor) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].Dist2 >= s[i].Dist2 {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *neighborHeap) pop() Neighbor {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	out := s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		big := i
		if l := 2*i + 1; l < n && s[l].Dist2 > s[big].Dist2 {
			big = l
		}
		if r := 2*i + 2; r < n && s[r].Dist2 > s[big].Dist2 {
			big = r
		}
		if big == i {
			break
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
	return out
}

// KNearest returns the k points closest to p, ordered nearest first.
// Fewer than k points in the tree returns them all.
func (t *Tree) KNearest(p geom.Vec3, k int) []Neighbor {
	if k <= 0 || t.NumPoints() == 0 {
		return nil
	}
	h := make(neighborHeap, 0, k+1)
	worst := func() float64 {
		if len(h) < k {
			return 1e308
		}
		return h[0].Dist2
	}
	var visit func(n int32)
	visit = func(n int32) {
		node := &t.Nodes[n]
		// Lower bound of any point under this node to p.
		lb := node.Center.Dist(p) - node.Radius
		if lb > 0 && lb*lb > worst() {
			return
		}
		if node.Leaf {
			for _, it := range t.ItemsOf(n) {
				d2 := t.points[it].Dist2(p)
				if d2 < worst() || len(h) < k {
					h.push(Neighbor{Index: it, Dist2: d2})
					if len(h) > k {
						h.pop()
					}
				}
			}
			return
		}
		// Visit children nearest-first for better pruning.
		type cd struct {
			c int32
			d float64
		}
		var order [8]cd
		cnt := 0
		for _, c := range node.Children {
			if c != NoChild {
				order[cnt] = cd{c, t.Nodes[c].Center.Dist(p)}
				cnt++
			}
		}
		for i := 1; i < cnt; i++ {
			for j := i; j > 0 && order[j].d < order[j-1].d; j-- {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
		for i := 0; i < cnt; i++ {
			visit(order[i].c)
		}
	}
	visit(t.Root())
	out := make([]Neighbor, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	return out
}
