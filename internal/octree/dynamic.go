package octree

import (
	"fmt"
	"math"

	"gbpolar/internal/geom"
)

// This file implements incremental octree maintenance for flexible
// molecules — the §II claim the paper makes against nonbonded lists
// ("octree is more space-efficient, update-efficient and cache-efficient
// compared to nblists", citing [8]): when atoms move between simulation
// steps, the tree is repaired locally instead of rebuilt, and only
// subtrees whose occupancy drifted beyond a threshold are recompacted.
//
// A Dynamic tree wraps the static Tree with a node-pointer structure that
// supports point movement; Freeze() lowers it back to the flat,
// cache-friendly static layout for the traversal kernels.

// dnode is a node of the dynamic octree.
type dnode struct {
	bounds   geom.AABB
	children [8]*dnode
	// points holds the indices stored at this node (leaves only).
	points []int32
	count  int // points under this subtree
	leaf   bool
}

// Dynamic is an incrementally maintained octree over a mutable point set.
type Dynamic struct {
	root     *dnode
	pos      []geom.Vec3
	leafSize int
	// moves since the last compaction, per subtree rebuild policy.
	updates int
}

// NewDynamic builds a dynamic octree over the points (which are copied:
// the tree owns its coordinates and mutates them via Move).
func NewDynamic(points []geom.Vec3, leafSize int) *Dynamic {
	if leafSize < 1 {
		leafSize = 8
	}
	d := &Dynamic{
		pos:      append([]geom.Vec3(nil), points...),
		leafSize: leafSize,
	}
	bounds := geom.BoundPoints(points).Cube()
	if bounds.IsEmpty() {
		bounds = geom.AABB{Min: geom.V(-1, -1, -1), Max: geom.V(1, 1, 1)}
	}
	// Grow the root a little so small drifts don't force re-rooting.
	c := bounds.Center()
	h := bounds.MaxExtent()/2*1.25 + 1e-9
	bounds = geom.AABB{Min: c.Sub(geom.V(h, h, h)), Max: c.Add(geom.V(h, h, h))}
	d.root = &dnode{bounds: bounds, leaf: true}
	for i := range d.pos {
		d.insert(d.root, int32(i), 0)
	}
	return d
}

// NumPoints returns the point count.
func (d *Dynamic) NumPoints() int { return len(d.pos) }

// Position returns the current position of point i.
func (d *Dynamic) Position(i int32) geom.Vec3 { return d.pos[i] }

const dynMaxDepth = 40

// insert places point index i into the subtree at n.
func (d *Dynamic) insert(n *dnode, i int32, depth int) {
	n.count++
	if n.leaf {
		n.points = append(n.points, i)
		if len(n.points) > d.leafSize && depth < dynMaxDepth &&
			n.bounds.MaxExtent() > 1e-9 {
			d.split(n, depth)
		}
		return
	}
	o := n.bounds.OctantIndex(d.pos[i])
	if n.children[o] == nil {
		n.children[o] = &dnode{bounds: n.bounds.Octant(o), leaf: true}
	}
	d.insert(n.children[o], i, depth+1)
}

// split converts a leaf into an internal node, redistributing its points.
func (d *Dynamic) split(n *dnode, depth int) {
	pts := n.points
	n.points = nil
	n.leaf = false
	n.count = 0
	for _, i := range pts {
		d.insert(n, i, depth)
	}
}

// remove deletes point i from the subtree at n; reports whether found.
func (d *Dynamic) remove(n *dnode, i int32) bool {
	if n.leaf {
		for k, p := range n.points {
			if p == i {
				n.points[k] = n.points[len(n.points)-1]
				n.points = n.points[:len(n.points)-1]
				n.count--
				return true
			}
		}
		return false
	}
	o := n.bounds.OctantIndex(d.pos[i])
	c := n.children[o]
	if c == nil || !d.remove(c, i) {
		return false
	}
	n.count--
	if c.count == 0 {
		n.children[o] = nil
	}
	// Collapse sparse internal nodes back into leaves: this is the local
	// compaction that keeps the tree near its fresh-built shape.
	if n.count <= d.leafSize {
		d.collapse(n)
	}
	return true
}

// collapse turns an internal node whose subtree fits in one leaf back
// into a leaf.
func (d *Dynamic) collapse(n *dnode) {
	pts := make([]int32, 0, n.count)
	var gather func(m *dnode)
	gather = func(m *dnode) {
		if m.leaf {
			pts = append(pts, m.points...)
			return
		}
		for _, c := range m.children {
			if c != nil {
				gather(c)
			}
		}
	}
	gather(n)
	n.children = [8]*dnode{}
	n.points = pts
	n.leaf = true
}

// Move updates point i to a new position, repairing the tree locally.
// Positions outside the root cell trigger a re-root (the tree grows).
func (d *Dynamic) Move(i int32, to geom.Vec3) error {
	if int(i) < 0 || int(i) >= len(d.pos) {
		return fmt.Errorf("octree: Move index %d out of range [0,%d)", i, len(d.pos))
	}
	if !to.IsFinite() {
		return fmt.Errorf("octree: Move to non-finite position %v", to)
	}
	if !d.remove(d.root, i) {
		return fmt.Errorf("octree: point %d missing from tree (corrupt)", i)
	}
	d.pos[i] = to
	for !d.root.bounds.Contains(to) {
		d.growRoot(to)
	}
	d.insert(d.root, i, 0)
	d.updates++
	return nil
}

// growRoot doubles the root cell toward the escaping point.
func (d *Dynamic) growRoot(toward geom.Vec3) {
	old := d.root
	b := old.bounds
	size := b.Size()
	min, max := b.Min, b.Max
	// Extend in each axis toward the point.
	if toward.X < min.X {
		min.X -= size.X
	} else {
		max.X += size.X
	}
	if toward.Y < min.Y {
		min.Y -= size.Y
	} else {
		max.Y += size.Y
	}
	if toward.Z < min.Z {
		min.Z -= size.Z
	} else {
		max.Z += size.Z
	}
	newRoot := &dnode{bounds: geom.AABB{Min: min, Max: max}, count: old.count}
	if old.count <= d.leafSize {
		newRoot.leaf = true
		pts := make([]int32, 0, old.count)
		var gather func(m *dnode)
		gather = func(m *dnode) {
			if m.leaf {
				pts = append(pts, m.points...)
				return
			}
			for _, c := range m.children {
				if c != nil {
					gather(c)
				}
			}
		}
		gather(old)
		newRoot.points = pts
	} else {
		// The old root becomes the child octant containing its center.
		o := newRoot.bounds.OctantIndex(old.bounds.Center())
		// Only valid if the octant cell equals the old bounds; with the
		// doubling scheme above it does (new cell is exactly 2× old).
		newRoot.children[o] = old
	}
	d.root = newRoot
}

// Freeze lowers the dynamic tree to the flat static layout used by the
// traversal kernels. O(n) — far cheaper than a fresh Build when only a
// few points moved, because the spatial sorting is already done.
func (d *Dynamic) Freeze() *Tree {
	t := &Tree{LeafSize: d.leafSize, points: d.pos}
	t.Items = make([]int32, 0, len(d.pos))
	t.Nodes = make([]Node, 0, 2*len(d.pos)/d.leafSize+8)
	if len(d.pos) == 0 {
		t.Nodes = append(t.Nodes, Node{Leaf: true, Parent: NoChild, Children: noChildren()})
		return t
	}
	d.freeze(t, d.root, NoChild, 0)
	return t
}

// freeze emits node n and its subtree into t, returning the node index.
func (d *Dynamic) freeze(t *Tree, n *dnode, parent int32, depth uint8) int32 {
	idx := int32(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{
		Start: int32(len(t.Items)), Parent: parent, Depth: depth,
		Children: noChildren(), Leaf: n.leaf,
	})
	if n.leaf {
		t.Items = append(t.Items, n.points...)
	} else {
		for o, c := range n.children {
			if c == nil {
				continue
			}
			child := d.freeze(t, c, idx, depth+1)
			t.Nodes[idx].Children[o] = child
		}
	}
	t.Nodes[idx].End = int32(len(t.Items))
	// Enclosing ball of the emitted range.
	var cen geom.Vec3
	items := t.Items[t.Nodes[idx].Start:t.Nodes[idx].End]
	for _, it := range items {
		cen = cen.Add(d.pos[it])
	}
	if len(items) > 0 {
		cen = cen.Scale(1 / float64(len(items)))
	}
	r2 := 0.0
	for _, it := range items {
		if dd := cen.Dist2(d.pos[it]); dd > r2 {
			r2 = dd
		}
	}
	t.Nodes[idx].Center = cen
	t.Nodes[idx].Radius = math.Sqrt(r2)
	return idx
}

// Validate checks the dynamic tree's structural invariants.
func (d *Dynamic) Validate() error {
	seen := make([]bool, len(d.pos))
	var walk func(n *dnode) (int, error)
	walk = func(n *dnode) (int, error) {
		if n.leaf {
			for _, i := range n.points {
				if seen[i] {
					return 0, fmt.Errorf("octree: point %d appears twice", i)
				}
				seen[i] = true
				if !n.bounds.Contains(d.pos[i]) {
					return 0, fmt.Errorf("octree: point %d at %v outside its leaf cell %v",
						i, d.pos[i], n.bounds)
				}
			}
			if len(n.points) != n.count {
				return 0, fmt.Errorf("octree: leaf count %d != len(points) %d", n.count, len(n.points))
			}
			return n.count, nil
		}
		total := 0
		for o, c := range n.children {
			if c == nil {
				continue
			}
			sub, err := walk(c)
			if err != nil {
				return 0, err
			}
			_ = o
			total += sub
		}
		if total != n.count {
			return 0, fmt.Errorf("octree: internal count %d != children sum %d", n.count, total)
		}
		return total, nil
	}
	total, err := walk(d.root)
	if err != nil {
		return err
	}
	if total != len(d.pos) {
		return fmt.Errorf("octree: tree holds %d of %d points", total, len(d.pos))
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("octree: point %d missing", i)
		}
	}
	return nil
}

// Positions returns a copy of the tree's current coordinates.
func (d *Dynamic) Positions() []geom.Vec3 {
	return append([]geom.Vec3(nil), d.pos...)
}
