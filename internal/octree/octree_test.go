package octree

import (
	"math"
	"math/rand"
	"testing"

	"gbpolar/internal/geom"
)

func randomPoints(n int, spread float64, seed int64) []geom.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(rng.NormFloat64()*spread, rng.NormFloat64()*spread, rng.NormFloat64()*spread)
	}
	return pts
}

func TestBuildEmpty(t *testing.T) {
	tr := Build(nil, 8)
	if tr.NumNodes() != 1 || !tr.Nodes[0].Leaf || tr.NumPoints() != 0 {
		t.Fatalf("empty tree: %d nodes", tr.NumNodes())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSinglePoint(t *testing.T) {
	tr := Build([]geom.Vec3{geom.V(1, 2, 3)}, 8)
	if tr.NumNodes() != 1 || !tr.Nodes[0].Leaf {
		t.Fatalf("single point tree: %d nodes", tr.NumNodes())
	}
	if tr.Nodes[0].Center != geom.V(1, 2, 3) || tr.Nodes[0].Radius != 0 {
		t.Errorf("ball = %v r=%v", tr.Nodes[0].Center, tr.Nodes[0].Radius)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildValidateSizes(t *testing.T) {
	for _, n := range []int{2, 10, 100, 1000, 5000} {
		for _, leaf := range []int{1, 4, 8, 32} {
			pts := randomPoints(n, 10, int64(n*leaf))
			tr := Build(pts, leaf)
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d leaf=%d: %v", n, leaf, err)
			}
			if tr.NumPoints() != n {
				t.Fatalf("n=%d: NumPoints=%d", n, tr.NumPoints())
			}
			// Every leaf obeys the size bound (depth cap aside, which
			// random points don't hit).
			for _, l := range tr.Leaves() {
				if tr.Nodes[l].Count() > leaf {
					t.Fatalf("n=%d leaf=%d: leaf with %d items", n, leaf, tr.Nodes[l].Count())
				}
			}
		}
	}
}

func TestLeavesPartitionItems(t *testing.T) {
	pts := randomPoints(800, 5, 3)
	tr := Build(pts, 8)
	total := 0
	prevEnd := int32(0)
	for _, l := range tr.Leaves() {
		n := &tr.Nodes[l]
		total += n.Count()
		if n.Start < prevEnd {
			t.Fatal("leaves not ordered by item range")
		}
		prevEnd = n.End
	}
	if total != 800 {
		t.Fatalf("leaves cover %d of 800 items", total)
	}
}

func TestCoincidentPoints(t *testing.T) {
	pts := make([]geom.Vec3, 100)
	for i := range pts {
		pts[i] = geom.V(1, 1, 1)
	}
	tr := Build(pts, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.MaxTreeDepth() > maxDepth {
		t.Errorf("depth = %d", tr.MaxTreeDepth())
	}
}

func TestDeterministicBuild(t *testing.T) {
	pts := randomPoints(500, 7, 9)
	a := Build(pts, 8)
	b := Build(pts, 8)
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("non-deterministic node count")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs", i)
		}
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("item %d differs", i)
		}
	}
}

// Linear-space invariant (§II): tree memory per point is bounded and does
// not depend on any approximation parameter.
func TestMemoryLinear(t *testing.T) {
	m1 := Build(randomPoints(1000, 10, 1), 8).MemoryBytes()
	m2 := Build(randomPoints(2000, 10, 2), 8).MemoryBytes()
	perPoint1 := float64(m1) / 1000
	perPoint2 := float64(m2) / 2000
	if perPoint2 > perPoint1*1.5 || perPoint1 > perPoint2*1.5 {
		t.Errorf("memory not linear: %v vs %v bytes/point", perPoint1, perPoint2)
	}
}

func TestWalkVisitsAllAndPrunes(t *testing.T) {
	pts := randomPoints(300, 5, 4)
	tr := Build(pts, 8)
	visited := 0
	tr.Walk(func(n int32) bool { visited++; return true })
	if visited != tr.NumNodes() {
		t.Errorf("visited %d of %d nodes", visited, tr.NumNodes())
	}
	// Pruning at the root visits exactly one node.
	visited = 0
	tr.Walk(func(n int32) bool { visited++; return false })
	if visited != 1 {
		t.Errorf("pruned walk visited %d", visited)
	}
}

func TestItemsOfRoot(t *testing.T) {
	pts := randomPoints(100, 5, 6)
	tr := Build(pts, 8)
	items := tr.ItemsOf(tr.Root())
	if len(items) != 100 {
		t.Fatalf("root items = %d", len(items))
	}
	seen := map[int32]bool{}
	for _, it := range items {
		if seen[it] {
			t.Fatal("duplicate item under root")
		}
		seen[it] = true
	}
}

func TestEnclosingBallsContainSubtreePoints(t *testing.T) {
	pts := randomPoints(2000, 20, 8)
	tr := Build(pts, 16)
	tr.Walk(func(n int32) bool {
		node := &tr.Nodes[n]
		for _, it := range tr.ItemsOf(n) {
			if node.Center.Dist(pts[it]) > node.Radius+1e-9 {
				t.Fatalf("node %d: point outside ball", n)
			}
		}
		return true
	})
}

func TestChildBallsNested(t *testing.T) {
	// Child radii should be no larger than ~parent radius + distance
	// between centers (sanity of the ball hierarchy used by the far test).
	pts := randomPoints(3000, 15, 10)
	tr := Build(pts, 8)
	for i := range tr.Nodes {
		n := &tr.Nodes[i]
		for _, c := range n.Children {
			if c == NoChild {
				continue
			}
			ch := &tr.Nodes[c]
			if ch.Radius > n.Radius+1e-9 {
				t.Fatalf("child %d radius %v exceeds parent %d radius %v", c, ch.Radius, i, n.Radius)
			}
		}
	}
}

func TestTransformedReuse(t *testing.T) {
	pts := randomPoints(500, 8, 12)
	tr := Build(pts, 8)
	rigid := geom.Translate(geom.V(5, -3, 2)).Compose(geom.Rotate(geom.V(1, 1, 0), 0.7))
	moved := make([]geom.Vec3, len(pts))
	for i, p := range pts {
		moved[i] = rigid.Apply(p)
	}
	tr2, err := tr.Transformed(rigid, moved)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Validate(); err != nil {
		t.Fatalf("transformed tree invalid: %v", err)
	}
	// Radii unchanged, centers moved.
	for i := range tr.Nodes {
		if math.Abs(tr.Nodes[i].Radius-tr2.Nodes[i].Radius) > 1e-12 {
			t.Fatal("radius changed under rigid motion")
		}
		want := rigid.Apply(tr.Nodes[i].Center)
		if tr2.Nodes[i].Center.Dist(want) > 1e-9 {
			t.Fatal("center not transformed")
		}
	}
	// Wrong point count errors.
	if _, err := tr.Transformed(rigid, moved[:10]); err == nil {
		t.Error("Transformed accepted wrong point count")
	}
}

func TestLeafSizeDefault(t *testing.T) {
	tr := Build(randomPoints(100, 5, 14), 0)
	if tr.LeafSize != 8 {
		t.Errorf("default leaf size = %d", tr.LeafSize)
	}
}

func TestDepthReasonable(t *testing.T) {
	// 10k uniform points with leaf size 8 should need depth ≈ log8(10k/8)
	// ≈ 4–12, far from the cap.
	pts := randomPoints(10000, 50, 15)
	tr := Build(pts, 8)
	if d := tr.MaxTreeDepth(); d < 3 || d > 20 {
		t.Errorf("depth = %d", d)
	}
}
