package molecule

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
)

func TestMoleculeBasics(t *testing.T) {
	m := &Molecule{Name: "t", Atoms: []Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1.5, Charge: 0.5},
		{Pos: geom.V(2, 0, 0), Radius: 1.2, Charge: -0.5},
	}}
	if m.NumAtoms() != 2 {
		t.Errorf("NumAtoms = %d", m.NumAtoms())
	}
	if q := m.TotalCharge(); q != 0 {
		t.Errorf("TotalCharge = %v", q)
	}
	if r := m.MaxRadius(); r != 1.5 {
		t.Errorf("MaxRadius = %v", r)
	}
	b := m.Bounds()
	if b.Min != geom.V(0, 0, 0) || b.Max != geom.V(2, 0, 0) {
		t.Errorf("Bounds = %v", b)
	}
	ps := m.Positions()
	if len(ps) != 2 || ps[1] != geom.V(2, 0, 0) {
		t.Errorf("Positions = %v", ps)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMoleculeCloneIsDeep(t *testing.T) {
	m := &Molecule{Name: "t", Atoms: []Atom{{Pos: geom.V(1, 1, 1), Radius: 1, Charge: 0}}}
	c := m.Clone()
	c.Atoms[0].Pos = geom.V(9, 9, 9)
	if m.Atoms[0].Pos != geom.V(1, 1, 1) {
		t.Error("Clone shares atom storage")
	}
}

func TestApplyTransform(t *testing.T) {
	m := &Molecule{Name: "t", Atoms: []Atom{{Pos: geom.V(1, 0, 0), Radius: 1, Charge: 0.1}}}
	moved := m.ApplyTransform(geom.Translate(geom.V(0, 0, 5)))
	if moved.Atoms[0].Pos != geom.V(1, 0, 5) {
		t.Errorf("moved pos = %v", moved.Atoms[0].Pos)
	}
	if moved.Atoms[0].Radius != 1 || moved.Atoms[0].Charge != 0.1 {
		t.Error("transform changed radius/charge")
	}
	if m.Atoms[0].Pos != geom.V(1, 0, 0) {
		t.Error("transform mutated original")
	}
}

func TestMerge(t *testing.T) {
	a := &Molecule{Name: "a", Atoms: []Atom{{Pos: geom.V(0, 0, 0), Radius: 1}}}
	b := &Molecule{Name: "b", Atoms: []Atom{{Pos: geom.V(5, 0, 0), Radius: 1}, {Pos: geom.V(6, 0, 0), Radius: 1}}}
	c := Merge("ab", a, b)
	if c.NumAtoms() != 3 || c.Name != "ab" {
		t.Errorf("Merge = %d atoms, name %q", c.NumAtoms(), c.Name)
	}
}

func TestValidateCatchesBadAtoms(t *testing.T) {
	cases := []Atom{
		{Pos: geom.V(math.NaN(), 0, 0), Radius: 1},
		{Pos: geom.V(0, 0, 0), Radius: 0},
		{Pos: geom.V(0, 0, 0), Radius: -1},
		{Pos: geom.V(0, 0, 0), Radius: 1, Charge: math.Inf(1)},
	}
	for i, a := range cases {
		m := &Molecule{Name: "bad", Atoms: []Atom{a}}
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid atom %+v", i, a)
		}
	}
}

func TestGlobuleProperties(t *testing.T) {
	m := Globule("g", 1000, 7)
	n := m.NumAtoms()
	if n < 900 || n > 1100 {
		t.Errorf("Globule(1000) produced %d atoms", n)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Net charge neutralized.
	if q := m.TotalCharge(); math.Abs(q) > 1e-9 {
		t.Errorf("net charge = %v", q)
	}
	// Density should be protein-like: all atoms inside the design radius.
	radius := math.Cbrt(3 * float64(1000) * atomVolumeÅ3 / (4 * math.Pi))
	for _, a := range m.Atoms {
		if a.Pos.Norm() > radius*1.05 {
			t.Fatalf("atom at %v outside ball radius %v", a.Pos, radius)
		}
	}
}

func TestGlobuleDeterministic(t *testing.T) {
	a := Globule("g", 500, 3)
	b := Globule("g", 500, 3)
	if a.NumAtoms() != b.NumAtoms() {
		t.Fatal("non-deterministic atom count")
	}
	for i := range a.Atoms {
		if a.Atoms[i] != b.Atoms[i] {
			t.Fatalf("atom %d differs between identical seeds", i)
		}
	}
	c := Globule("g", 500, 4)
	same := c.NumAtoms() == a.NumAtoms()
	if same {
		for i := range a.Atoms {
			if a.Atoms[i] != c.Atoms[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical molecules")
	}
}

func TestShellProperties(t *testing.T) {
	const n, thickness = 5000, 15.0
	m := Shell("s", n, thickness, 9)
	got := m.NumAtoms()
	if got < n*9/10 || got > n*11/10 {
		t.Errorf("Shell(%d) produced %d atoms", n, got)
	}
	// All atoms within a shell of the given thickness (allow lattice slop).
	minR, maxR := math.Inf(1), 0.0
	for _, a := range m.Atoms {
		r := a.Pos.Norm()
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR-minR > thickness*1.2 {
		t.Errorf("shell thickness = %v, want ≈ %v", maxR-minR, thickness)
	}
	if minR < 2 {
		t.Errorf("shell not hollow: inner radius %v", minR)
	}
}

func TestHelixElongated(t *testing.T) {
	m := Helix("h", 2000, 1)
	if m.NumAtoms() != 2000 {
		t.Fatalf("Helix atoms = %d", m.NumAtoms())
	}
	s := m.Bounds().Size()
	if s.Z < 5*s.X || s.Z < 5*s.Y {
		t.Errorf("helix not elongated: size %v", s)
	}
}

func TestExactly(t *testing.T) {
	m := Globule("g", 1000, 5)
	m = Exactly(m, 777, 5)
	if m.NumAtoms() != 777 {
		t.Errorf("trim: %d atoms", m.NumAtoms())
	}
	m = Exactly(m, 1234, 5)
	if m.NumAtoms() != 1234 {
		t.Errorf("pad: %d atoms", m.NumAtoms())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZDockRoster(t *testing.T) {
	r := ZDockRoster()
	if len(r) != 42 {
		t.Fatalf("roster size = %d", len(r))
	}
	if r[0].Atoms < 400 || r[0].Atoms > 500 {
		t.Errorf("smallest = %d atoms", r[0].Atoms)
	}
	if r[len(r)-1].Atoms != 16301 {
		t.Errorf("largest = %d atoms, want 16301 (the paper's quoted size)", r[len(r)-1].Atoms)
	}
	for i := 1; i < len(r); i++ {
		if r[i].Atoms < r[i-1].Atoms {
			t.Errorf("roster not sorted at %d", i)
		}
	}
	if r[0].Name != "1PPE_l_b" || r[len(r)-1].Name != "1BGX_l_b" {
		t.Errorf("roster endpoints = %q, %q", r[0].Name, r[len(r)-1].Name)
	}
}

func TestZDockMoleculeExactAndStable(t *testing.T) {
	e := ZDockRoster()[3]
	a := ZDockMolecule(e)
	if a.NumAtoms() != e.Atoms {
		t.Fatalf("atoms = %d, want %d", a.NumAtoms(), e.Atoms)
	}
	b := ZDockMolecule(e)
	for i := range a.Atoms {
		if a.Atoms[i] != b.Atoms[i] {
			t.Fatal("ZDockMolecule not deterministic")
		}
	}
}

func TestScaledShells(t *testing.T) {
	m := ScaledCMV(4000)
	if m.NumAtoms() != 4000 {
		t.Errorf("ScaledCMV atoms = %d", m.NumAtoms())
	}
	m2 := ScaledBTV(4000)
	if m2.NumAtoms() != 4000 {
		t.Errorf("ScaledBTV atoms = %d", m2.NumAtoms())
	}
}

// The dipole-paired charge generator must make spatial clusters nearly
// neutral — the property that keeps hierarchical far-field charge sums
// small (see assignCharges).
func TestChargesLocallyNeutral(t *testing.T) {
	m := Globule("neutral", 4000, 91)
	// Sum charges within disjoint spatial boxes of ~6 Å.
	type cell struct{ x, y, z int }
	sums := map[cell]float64{}
	abs := map[cell]float64{}
	for _, a := range m.Atoms {
		c := cell{int(a.Pos.X / 6), int(a.Pos.Y / 6), int(a.Pos.Z / 6)}
		sums[c] += a.Charge
		if a.Charge > 0 {
			abs[c] += a.Charge
		} else {
			abs[c] -= a.Charge
		}
	}
	// Most cells should have |net| well below the absolute charge mass.
	neutral := 0
	total := 0
	for c, s := range sums {
		if abs[c] < 2 { // skip nearly empty cells
			continue
		}
		total++
		if s < 0 {
			s = -s
		}
		if s < 0.45*abs[c] {
			neutral++
		}
	}
	if total == 0 || neutral*10 < total*7 {
		t.Errorf("only %d/%d cells locally neutral", neutral, total)
	}
}
