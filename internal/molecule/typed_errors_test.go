package molecule

import (
	"errors"
	"math"
	"strings"
	"testing"

	"gbpolar/internal/geom"
)

func TestValidateReturnsTypedInputErrors(t *testing.T) {
	cases := []struct {
		atom  Atom
		field string
	}{
		{Atom{Pos: geom.V(math.NaN(), 0, 0), Radius: 1}, "position"},
		{Atom{Pos: geom.V(0, math.Inf(1), 0), Radius: 1}, "position"},
		{Atom{Pos: geom.V(0, 0, 0), Radius: 0}, "radius"},
		{Atom{Pos: geom.V(0, 0, 0), Radius: -1.5}, "radius"},
		{Atom{Pos: geom.V(0, 0, 0), Radius: math.NaN()}, "radius"},
		{Atom{Pos: geom.V(0, 0, 0), Radius: 1, Charge: math.Inf(-1)}, "charge"},
	}
	for i, c := range cases {
		m := &Molecule{Name: "bad", Atoms: []Atom{
			{Pos: geom.V(1, 1, 1), Radius: 1, Charge: 0.5},
			c.atom,
		}}
		err := m.Validate()
		if err == nil {
			t.Fatalf("case %d: accepted invalid atom %+v", i, c.atom)
		}
		if !errors.Is(err, ErrInvalidInput) {
			t.Errorf("case %d: error %v does not wrap ErrInvalidInput", i, err)
		}
		var ie *InputError
		if !errors.As(err, &ie) {
			t.Fatalf("case %d: error %T is not *InputError", i, err)
		}
		if ie.Atom != 1 || ie.Field != c.field || ie.Molecule != "bad" {
			t.Errorf("case %d: got atom=%d field=%q mol=%q, want atom=1 field=%q",
				i, ie.Atom, ie.Field, ie.Molecule, c.field)
		}
	}
}

func TestReadPQRRejectsDuplicateSerials(t *testing.T) {
	pqr := `REMARK  gbpolar molecule dup
ATOM      1  C   GLY A   1       0.000   0.000   0.000  0.1000 1.5000
ATOM      2  C   GLY A   1       3.000   0.000   0.000  0.2000 1.5000
ATOM      2  C   GLY A   1       0.000   3.000   0.000  0.3000 1.5000
END
`
	_, err := ReadPQR(strings.NewReader(pqr))
	if err == nil {
		t.Fatal("duplicate serial accepted")
	}
	var ie *InputError
	if !errors.As(err, &ie) || !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("error %v is not a typed input error", err)
	}
	if ie.Field != "index" || !strings.Contains(ie.Msg, "duplicate atom serial 2") {
		t.Errorf("unexpected typed error %+v", ie)
	}
}

func TestReadXYZRQRejectsNonFiniteTyped(t *testing.T) {
	in := "2 nanmol\n0 0 0 1.5 0.1\nNaN 0 0 1.5 0.1\n"
	_, err := ReadXYZRQ(strings.NewReader(in))
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("NaN coordinate error %v does not wrap ErrInvalidInput", err)
	}
	in = "1 badrad\n0 0 0 -2 0.1\n"
	if _, err := ReadXYZRQ(strings.NewReader(in)); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("negative radius error %v does not wrap ErrInvalidInput", err)
	}
}
