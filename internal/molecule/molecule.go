// Package molecule defines atoms and molecules, the synthetic workload
// generators that stand in for the paper's benchmark inputs (ZDock
// Benchmark-2.0 proteins, the Blue Tongue Virus, and the Cucumber Mosaic
// Virus shell), and simple file I/O (PQR and XYZRQ formats).
package molecule

import (
	"errors"
	"fmt"
	"math"

	"gbpolar/internal/geom"
)

// ErrInvalidInput is the sentinel every molecule validation failure
// wraps: errors.Is(err, ErrInvalidInput) distinguishes a bad input (a
// caller/client mistake — the serving layer's 400, gbpol's exit 2) from
// a run failure, without matching message strings.
var ErrInvalidInput = errors.New("molecule: invalid input")

// InputError is a typed validation failure: which molecule, which atom
// (-1 when not atom-specific), which field, and why. NaN/Inf
// coordinates, non-positive radii, and duplicate atom indices used to
// flow into the kernels and surface as garbage Epol; they now stop
// here, where the caller can still say "your input is wrong" instead
// of "the run failed".
type InputError struct {
	// Molecule is the molecule's name ("" when unnamed).
	Molecule string
	// Atom is the offending atom's index, -1 when the error is not
	// atom-specific (e.g. a duplicate-index pair names the second atom).
	Atom int
	// Field names what was invalid: "position", "radius", "charge",
	// "index", or "atoms".
	Field string
	// Msg is the human-readable detail.
	Msg string
}

// Error implements error.
func (e *InputError) Error() string {
	if e.Atom < 0 {
		return fmt.Sprintf("molecule %q: invalid %s: %s", e.Molecule, e.Field, e.Msg)
	}
	return fmt.Sprintf("molecule %q: atom %d: invalid %s: %s", e.Molecule, e.Atom, e.Field, e.Msg)
}

// Unwrap makes errors.Is(err, ErrInvalidInput) hold.
func (e *InputError) Unwrap() error { return ErrInvalidInput }

// Atom is a single atom: position (Å), intrinsic van der Waals radius (Å)
// and partial charge (elementary charges).
type Atom struct {
	Pos    geom.Vec3
	Radius float64
	Charge float64
}

// Molecule is a named collection of atoms.
type Molecule struct {
	Name  string
	Atoms []Atom
}

// NumAtoms returns the number of atoms.
func (m *Molecule) NumAtoms() int { return len(m.Atoms) }

// Positions returns a freshly allocated slice of atom positions.
func (m *Molecule) Positions() []geom.Vec3 {
	ps := make([]geom.Vec3, len(m.Atoms))
	for i, a := range m.Atoms {
		ps[i] = a.Pos
	}
	return ps
}

// Bounds returns the AABB of the atom centers (not inflated by radii).
func (m *Molecule) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for _, a := range m.Atoms {
		b = b.ExtendPoint(a.Pos)
	}
	return b
}

// TotalCharge returns the sum of partial charges.
func (m *Molecule) TotalCharge() float64 {
	q := 0.0
	for _, a := range m.Atoms {
		q += a.Charge
	}
	return q
}

// MaxRadius returns the largest atomic radius (0 for an empty molecule).
func (m *Molecule) MaxRadius() float64 {
	r := 0.0
	for _, a := range m.Atoms {
		if a.Radius > r {
			r = a.Radius
		}
	}
	return r
}

// Clone returns a deep copy of the molecule.
func (m *Molecule) Clone() *Molecule {
	c := &Molecule{Name: m.Name, Atoms: make([]Atom, len(m.Atoms))}
	copy(c.Atoms, m.Atoms)
	return c
}

// ApplyTransform returns a copy of the molecule with every atom position
// mapped through tr. Radii and charges are unchanged. The paper reuses a
// molecule's octree under rigid motion for docking scans (Section IV-C);
// ApplyTransform provides the moved coordinates.
func (m *Molecule) ApplyTransform(tr geom.Transform) *Molecule {
	c := m.Clone()
	for i := range c.Atoms {
		c.Atoms[i].Pos = tr.Apply(c.Atoms[i].Pos)
	}
	return c
}

// Merge returns a new molecule containing the atoms of both molecules, as
// in a receptor–ligand complex.
func Merge(name string, a, b *Molecule) *Molecule {
	out := &Molecule{Name: name, Atoms: make([]Atom, 0, len(a.Atoms)+len(b.Atoms))}
	out.Atoms = append(out.Atoms, a.Atoms...)
	out.Atoms = append(out.Atoms, b.Atoms...)
	return out
}

// Validate checks structural invariants: finite coordinates, positive
// radii, finite charges. It returns the first violation found as a
// typed *InputError wrapping ErrInvalidInput.
func (m *Molecule) Validate() error {
	for i, a := range m.Atoms {
		if !a.Pos.IsFinite() {
			return &InputError{Molecule: m.Name, Atom: i, Field: "position",
				Msg: fmt.Sprintf("non-finite coordinates %v", a.Pos)}
		}
		if a.Radius <= 0 || math.IsNaN(a.Radius) || math.IsInf(a.Radius, 0) {
			return &InputError{Molecule: m.Name, Atom: i, Field: "radius",
				Msg: fmt.Sprintf("%v is not a positive finite radius", a.Radius)}
		}
		if math.IsNaN(a.Charge) || math.IsInf(a.Charge, 0) {
			return &InputError{Molecule: m.Name, Atom: i, Field: "charge",
				Msg: fmt.Sprintf("%v is not a finite charge", a.Charge)}
		}
	}
	return nil
}
