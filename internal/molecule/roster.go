package molecule

import "math"

// BenchmarkEntry names one protein of the benchmark roster and its atom
// count. The names reproduce the ZDock Benchmark-2.0 bound-state proteins
// that label the x-axes of the paper's Figures 7–10; atom counts span the
// paper's stated 400–16,301 range, log-spaced and sorted ascending the way
// the figures sort them ("results are sorted by molecule size").
type BenchmarkEntry struct {
	Name  string
	Atoms int
}

// zdockNames lists the molecule labels readable from Figure 8, in the
// paper's (size-sorted) order.
var zdockNames = []string{
	"1PPE_l_b", "1CGI_l_b", "1ACB_l_b", "1GCQ_l_b", "2JEL_l_b", "1AY7_r_b",
	"1K4C_l_b", "1WEJ_l_b", "1TMQ_l_b", "1F51_l_b", "1MLC_l_b", "2BTF_l_b",
	"1NSN_l_b", "1WQ1_l_b", "1I2M_r_b", "1IBR_r_b", "1FQ1_r_b", "1BJ1_l_b",
	"1AHW_l_b", "1PPE_r_b", "1EZU_r_b", "2QFW_r_b", "1ACB_r_b", "1EAW_r_b",
	"2SNI_r_b", "1ATN_l_b", "2PCC_r_b", "1FQ1_l_b", "1WQ1_r_b", "1FAK_r_b",
	"1I2M_l_b", "1F51_r_b", "1DE4_r_b", "1BGX_r_b", "1MLC_r_b", "1K4C_r_b",
	"1NCA_r_b", "1EER_l_b", "1E6E_r_b", "2MTA_r_b", "1MAH_r_b", "1BGX_l_b",
}

// ZDockRoster returns the benchmark roster: the Figure-8 molecule names
// with atom counts log-spaced over the paper's 400–16,301 range (the
// largest molecule is pinned at exactly 16,301 atoms, the size the paper
// quotes for its 11× Amber speedup).
func ZDockRoster() []BenchmarkEntry {
	const minAtoms, maxAtoms = 453.0, 16301.0
	n := len(zdockNames)
	out := make([]BenchmarkEntry, n)
	for i, name := range zdockNames {
		t := float64(i) / float64(n-1)
		atoms := int(math.Round(minAtoms * math.Pow(maxAtoms/minAtoms, t)))
		out[i] = BenchmarkEntry{Name: name, Atoms: atoms}
	}
	out[n-1].Atoms = int(maxAtoms)
	return out
}

// ZDockMolecule generates the synthetic stand-in for one roster entry:
// a protein-like globule with exactly the roster atom count, seeded by the
// entry index so every run of every program sees the same molecule.
func ZDockMolecule(e BenchmarkEntry) *Molecule {
	return Exactly(Globule(e.Name, e.Atoms, seedFor(e.Name)), e.Atoms, seedFor(e.Name))
}

// seedFor derives a stable seed from a molecule name.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}

// Paper's large-molecule workloads.
const (
	// CMVAtoms is the Cucumber Mosaic Virus shell size from §V-F.
	CMVAtoms = 509640
	// CMVQuadPoints is the quadrature-point count the paper reports for
	// CMV; the surface sampler is tuned so synthetic CMV lands near it.
	CMVQuadPoints = 1929128
	// BTVAtoms is the Blue Tongue Virus size from §V-B (6 million atoms,
	// >3 million quadrature points).
	BTVAtoms = 6000000
)

// CMV generates the Cucumber Mosaic Virus shell stand-in: a 509,640-atom
// capsid shell (≈28 nm outer radius at protein density, 30 Å thick).
func CMV() *Molecule {
	return Exactly(Shell("CMV", CMVAtoms, 30, seedFor("CMV")), CMVAtoms, seedFor("CMV"))
}

// BTV generates the Blue Tongue Virus stand-in: a 6,000,000-atom capsid
// shell, 60 Å thick.
func BTV() *Molecule {
	return Exactly(Shell("BTV", BTVAtoms, 60, seedFor("BTV")), BTVAtoms, seedFor("BTV"))
}

// ScaledBTV generates a BTV-shaped shell with n atoms — the same geometry
// class at a tractable size for tests and laptop-scale benches.
func ScaledBTV(n int) *Molecule {
	return Exactly(Shell("BTV-scaled", n, 60, seedFor("BTV")), n, seedFor("BTV"))
}

// ScaledCMV generates a CMV-shaped shell with n atoms.
func ScaledCMV(n int) *Molecule {
	return Exactly(Shell("CMV-scaled", n, 30, seedFor("CMV")), n, seedFor("CMV"))
}
