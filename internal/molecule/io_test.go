package molecule

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestXYZRQRoundTrip(t *testing.T) {
	m := Globule("round trip", 200, 11)
	var buf bytes.Buffer
	if err := WriteXYZRQ(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXYZRQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name {
		t.Errorf("name = %q", got.Name)
	}
	if got.NumAtoms() != m.NumAtoms() {
		t.Fatalf("atoms = %d want %d", got.NumAtoms(), m.NumAtoms())
	}
	for i := range m.Atoms {
		if math.Abs(got.Atoms[i].Pos.X-m.Atoms[i].Pos.X) > 1e-5 ||
			math.Abs(got.Atoms[i].Charge-m.Atoms[i].Charge) > 1e-5 ||
			math.Abs(got.Atoms[i].Radius-m.Atoms[i].Radius) > 1e-3 {
			t.Fatalf("atom %d mismatch: %+v vs %+v", i, got.Atoms[i], m.Atoms[i])
		}
	}
}

func TestXYZRQComments(t *testing.T) {
	in := "2 demo\n# comment\n0 0 0 1.5 0.1\n\n1 0 0 1.2 -0.1\n"
	m, err := ReadXYZRQ(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumAtoms() != 2 {
		t.Fatalf("atoms = %d", m.NumAtoms())
	}
}

func TestXYZRQErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"x name\n",             // bad count
		"2 demo\n0 0 0 1 0\n",  // count mismatch
		"1 demo\n0 0 0 1\n",    // too few fields
		"1 demo\n0 0 z 1 0\n",  // non-numeric
		"1 demo\n0 0 0 -1 0\n", // invalid radius (Validate)
		"-1 demo\n",            // negative count
	}
	for i, in := range cases {
		if _, err := ReadXYZRQ(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: no error for %q", i, in)
		}
	}
}

func TestPQRRoundTrip(t *testing.T) {
	m := Globule("pqrmol", 150, 13)
	var buf bytes.Buffer
	if err := WritePQR(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPQR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "pqrmol" {
		t.Errorf("name = %q", got.Name)
	}
	if got.NumAtoms() != m.NumAtoms() {
		t.Fatalf("atoms = %d want %d", got.NumAtoms(), m.NumAtoms())
	}
	for i := range m.Atoms {
		if math.Abs(got.Atoms[i].Pos.Dist(m.Atoms[i].Pos)) > 2e-3 ||
			math.Abs(got.Atoms[i].Charge-m.Atoms[i].Charge) > 1e-3 ||
			math.Abs(got.Atoms[i].Radius-m.Atoms[i].Radius) > 1e-3 {
			t.Fatalf("atom %d mismatch", i)
		}
	}
}

func TestPQRErrors(t *testing.T) {
	if _, err := ReadPQR(strings.NewReader("REMARK nothing\nEND\n")); err == nil {
		t.Error("no error for empty PQR")
	}
	if _, err := ReadPQR(strings.NewReader("ATOM 1 C GLY A 1 bad fields here x y\n")); err == nil {
		t.Error("no error for non-numeric PQR")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Globule("file", 100, 17)
	for _, name := range []string{"m.xyzrq", "m.pqr"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NumAtoms() != m.NumAtoms() {
			t.Errorf("%s: %d atoms", name, got.NumAtoms())
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.pqr")); err == nil {
		t.Error("no error for missing file")
	}
}
