package molecule

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gbpolar/internal/geom"
)

// WriteXYZRQ writes the molecule in the simple whitespace-separated XYZRQ
// format: a header line with the atom count and name, then one
// "x y z radius charge" line per atom.
func WriteXYZRQ(w io.Writer, m *Molecule) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %s\n", len(m.Atoms), m.Name); err != nil {
		return err
	}
	for _, a := range m.Atoms {
		if _, err := fmt.Fprintf(bw, "%.6f %.6f %.6f %.4f %.6f\n",
			a.Pos.X, a.Pos.Y, a.Pos.Z, a.Radius, a.Charge); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadXYZRQ parses the XYZRQ format written by WriteXYZRQ.
func ReadXYZRQ(r io.Reader) (*Molecule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("molecule: empty XYZRQ input")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 1 {
		return nil, fmt.Errorf("molecule: malformed XYZRQ header")
	}
	n, err := strconv.Atoi(header[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("molecule: bad atom count %q", header[0])
	}
	name := "unnamed"
	if len(header) > 1 {
		name = strings.Join(header[1:], " ")
	}
	m := &Molecule{Name: name, Atoms: make([]Atom, 0, n)}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 5 {
			return nil, fmt.Errorf("molecule: line %d: want 5 fields, got %d", line, len(f))
		}
		var vals [5]float64
		for i, s := range f {
			vals[i], err = strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("molecule: line %d field %d: %v", line, i+1, err)
			}
		}
		m.Atoms = append(m.Atoms, Atom{
			Pos:    geom.V(vals[0], vals[1], vals[2]),
			Radius: vals[3],
			Charge: vals[4],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m.Atoms) != n {
		return nil, fmt.Errorf("molecule: header says %d atoms, file has %d", n, len(m.Atoms))
	}
	return m, m.Validate()
}

// WritePQR writes the molecule in PQR format (the PDB-like format with
// charge and radius in the occupancy/B-factor columns, as consumed by
// APBS and most GB tools). Atom metadata is synthesized (all atoms are
// written as carbon in residue GLY of chain A).
func WritePQR(w io.Writer, m *Molecule) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "REMARK  gbpolar molecule %s\n", m.Name); err != nil {
		return err
	}
	for i, a := range m.Atoms {
		serial := i + 1
		resSeq := i/10 + 1
		// Serials are NOT wrapped at the PDB column limit: this is the
		// whitespace dialect, and wrapped serials would collide — which
		// ReadPQR now rejects as duplicate atom indices.
		if _, err := fmt.Fprintf(bw,
			"ATOM  %5d  C   GLY A%4d    %8.3f%8.3f%8.3f %7.4f %6.4f\n",
			serial, resSeq%10000, a.Pos.X, a.Pos.Y, a.Pos.Z, a.Charge, a.Radius); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "END"); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPQR parses PQR files: whitespace-tokenized ATOM/HETATM records where
// the last five numeric fields are x, y, z, charge, radius. This is the
// "whitespace" PQR dialect emitted by pdb2pqr and WritePQR.
func ReadPQR(r io.Reader) (*Molecule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	m := &Molecule{Name: "pqr"}
	line := 0
	seen := make(map[int64]int) // atom serial → atom position, for duplicate detection
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(text, "REMARK"):
			fields := strings.Fields(text)
			if len(fields) >= 4 && fields[2] == "molecule" {
				m.Name = fields[3]
			}
			continue
		case !strings.HasPrefix(text, "ATOM") && !strings.HasPrefix(text, "HETATM"):
			continue
		}
		f := strings.Fields(text)
		if len(f) < 6 {
			return nil, fmt.Errorf("molecule: pqr line %d: too few fields", line)
		}
		// A duplicate atom serial is a malformed roster (a concatenation
		// or truncation artifact): rejected as a typed input error
		// rather than silently double-counting the atom's charge.
		if serial, err := strconv.ParseInt(f[1], 10, 64); err == nil {
			if prev, dup := seen[serial]; dup {
				return nil, &InputError{Molecule: m.Name, Atom: len(m.Atoms), Field: "index",
					Msg: fmt.Sprintf("pqr line %d: duplicate atom serial %d (first used by atom %d)", line, serial, prev)}
			}
			seen[serial] = len(m.Atoms)
		}
		nums := make([]float64, 0, 5)
		// The trailing five numeric fields are x y z q r.
		for _, s := range f[len(f)-5:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("molecule: pqr line %d: %v", line, err)
			}
			nums = append(nums, v)
		}
		m.Atoms = append(m.Atoms, Atom{
			Pos:    geom.V(nums[0], nums[1], nums[2]),
			Charge: nums[3],
			Radius: nums[4],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m.Atoms) == 0 {
		return nil, fmt.Errorf("molecule: pqr input has no ATOM records")
	}
	return m, m.Validate()
}

// LoadFile reads a molecule from a file, dispatching on the extension:
// ".pqr" for PQR, anything else for XYZRQ.
func LoadFile(path string) (*Molecule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".pqr") {
		return ReadPQR(f)
	}
	return ReadXYZRQ(f)
}

// SaveFile writes a molecule to a file, dispatching on the extension like
// LoadFile.
func SaveFile(path string, m *Molecule) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".pqr") {
		return WritePQR(f, m)
	}
	return WriteXYZRQ(f, m)
}
