package molecule

import (
	"math"
	"math/rand"

	"gbpolar/internal/geom"
)

// Element radii (Å, Bondi-like) and a protein-ish abundance table used by
// the synthetic generators. Proteins are roughly half hydrogen, a third
// carbon, with N/O/S making up the rest.
var elementTable = []struct {
	radius float64
	frac   float64
}{
	{1.20, 0.50}, // H
	{1.70, 0.32}, // C
	{1.55, 0.08}, // N
	{1.52, 0.09}, // O
	{1.80, 0.01}, // S
}

// pickRadius draws an atomic radius from the protein abundance table.
func pickRadius(rng *rand.Rand) float64 {
	u := rng.Float64()
	for _, e := range elementTable {
		if u < e.frac {
			return e.radius
		}
		u -= e.frac
	}
	return elementTable[len(elementTable)-1].radius
}

// assignCharges fills protein-like partial charges: spatially adjacent
// atoms are charged in ± bond-dipole pairs (real proteins are locally
// near-neutral — backbone and side-chain dipoles — which is precisely the
// property that makes hierarchical far-field charge sums small), with ~5%
// of atoms additionally carrying formal-charge-sized monopoles (ionized
// side chains).
func assignCharges(atoms []Atom, rng *rand.Rand) {
	// Generators emit positions in lattice order, so consecutive atoms
	// are spatial neighbors: pair them as dipoles.
	for i := 0; i+1 < len(atoms); i += 2 {
		q := 0.2 + 0.5*rng.Float64()
		if rng.Float64() < 0.5 {
			q = -q
		}
		atoms[i].Charge = q
		atoms[i+1].Charge = -q
	}
	for i := range atoms {
		if rng.Float64() < 0.05 {
			if rng.Float64() < 0.5 {
				atoms[i].Charge -= 0.8
			} else {
				atoms[i].Charge += 0.8
			}
		}
	}
}

// atomVolumeÅ3 is the average volume per atom inside a protein: proteins
// pack at roughly one atom per 11 Å³.
const atomVolumeÅ3 = 11.0

// jitteredBallPoints fills a ball of the given radius with approximately n
// points on a jittered cubic lattice, keeping only lattice cells inside the
// ball. Lattice placement guarantees protein-like near-uniform density at
// any n in O(n) time (rejection-free), which matters for the 6M-atom BTV
// workload.
func jitteredBallPoints(n int, radius float64, rng *rand.Rand) []geom.Vec3 {
	if n <= 0 {
		return nil
	}
	// Cell size so the ball holds ~n cells.
	vol := 4.0 / 3.0 * math.Pi * radius * radius * radius
	h := math.Cbrt(vol / float64(n))
	pts := make([]geom.Vec3, 0, n+n/8)
	k := int(math.Ceil(radius/h)) + 1
	r2 := radius * radius
	for ix := -k; ix <= k; ix++ {
		for iy := -k; iy <= k; iy++ {
			for iz := -k; iz <= k; iz++ {
				p := geom.V(
					(float64(ix)+0.5+0.6*(rng.Float64()-0.5))*h,
					(float64(iy)+0.5+0.6*(rng.Float64()-0.5))*h,
					(float64(iz)+0.5+0.6*(rng.Float64()-0.5))*h,
				)
				if p.Norm2() <= r2 {
					pts = append(pts, p)
				}
			}
		}
	}
	return pts
}

// jitteredShellPoints fills a spherical shell [inner, outer] with
// approximately n jittered-lattice points; the capsid-shell analogue of
// jitteredBallPoints.
func jitteredShellPoints(n int, inner, outer float64, rng *rand.Rand) []geom.Vec3 {
	if n <= 0 || outer <= inner {
		return nil
	}
	vol := 4.0 / 3.0 * math.Pi * (outer*outer*outer - inner*inner*inner)
	h := math.Cbrt(vol / float64(n))
	pts := make([]geom.Vec3, 0, n+n/8)
	k := int(math.Ceil(outer/h)) + 1
	in2, out2 := inner*inner, outer*outer
	for ix := -k; ix <= k; ix++ {
		for iy := -k; iy <= k; iy++ {
			for iz := -k; iz <= k; iz++ {
				p := geom.V(
					(float64(ix)+0.5+0.6*(rng.Float64()-0.5))*h,
					(float64(iy)+0.5+0.6*(rng.Float64()-0.5))*h,
					(float64(iz)+0.5+0.6*(rng.Float64()-0.5))*h,
				)
				d2 := p.Norm2()
				if d2 >= in2 && d2 <= out2 {
					pts = append(pts, p)
				}
			}
		}
	}
	return pts
}

// finishAtoms turns bare positions into atoms with radii and charges, and
// neutralizes the net charge by spreading the residual over all atoms (so
// synthetic molecules are electro-neutral like real proteins at pH 7,
// which keeps Epol magnitudes protein-like).
func finishAtoms(name string, pts []geom.Vec3, rng *rand.Rand) *Molecule {
	atoms := make([]Atom, len(pts))
	for i, p := range pts {
		atoms[i] = Atom{Pos: p, Radius: pickRadius(rng)}
	}
	assignCharges(atoms, rng)
	total := 0.0
	for i := range atoms {
		total += atoms[i].Charge
	}
	if len(atoms) > 0 {
		adj := total / float64(len(atoms))
		for i := range atoms {
			atoms[i].Charge -= adj
		}
	}
	return &Molecule{Name: name, Atoms: atoms}
}

// Globule generates a protein-like molecule: roughly n atoms packed at
// protein density into a ball, with protein-like radii and charges. The
// exact atom count may deviate from n by a few percent (lattice
// truncation); use Exactly to trim/pad to an exact count. Deterministic in
// (n, seed).
func Globule(name string, n int, seed int64) *Molecule {
	rng := rand.New(rand.NewSource(seed))
	radius := math.Cbrt(3 * float64(n) * atomVolumeÅ3 / (4 * math.Pi))
	pts := jitteredBallPoints(n, radius, rng)
	return finishAtoms(name, pts, rng)
}

// Shell generates a virus-capsid-like molecule: roughly n atoms packed at
// protein density into a spherical shell of the given thickness (Å). The
// outer radius is derived from n and the thickness. Deterministic in
// (n, thickness, seed).
func Shell(name string, n int, thickness float64, seed int64) *Molecule {
	rng := rand.New(rand.NewSource(seed))
	// Solve outer³ − inner³ = 3·n·v/(4π) with inner = outer − thickness.
	target := 3 * float64(n) * atomVolumeÅ3 / (4 * math.Pi)
	outer := math.Cbrt(target) // start as if solid
	for i := 0; i < 60; i++ {
		inner := math.Max(0, outer-thickness)
		f := outer*outer*outer - inner*inner*inner - target
		df := 3 * (outer*outer - math.Pow(math.Max(0, outer-thickness), 2))
		if df == 0 {
			break
		}
		next := outer - f/df
		if next <= 0 || math.Abs(next-outer) < 1e-10 {
			outer = math.Max(next, thickness/2)
			break
		}
		outer = next
	}
	inner := math.Max(0, outer-thickness)
	pts := jitteredShellPoints(n, inner, outer, rng)
	return finishAtoms(name, pts, rng)
}

// Helix generates an alpha-helix-like elongated molecule of n atoms: a
// coarse spiral backbone decorated with jittered side-chain atoms. Useful
// as a high-aspect-ratio octree stress test. Deterministic in (n, seed).
func Helix(name string, n int, seed int64) *Molecule {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Vec3, 0, n)
	const risePerAtom = 0.5 // Å along the axis
	const helixRadius = 2.3
	for i := 0; i < n; i++ {
		t := float64(i)
		angle := t * (2 * math.Pi / 7.2)
		base := geom.V(helixRadius*math.Cos(angle), helixRadius*math.Sin(angle), risePerAtom*t)
		jit := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.9)
		pts = append(pts, base.Add(jit))
	}
	return finishAtoms(name, pts, rng)
}

// Exactly trims or pads the molecule to exactly n atoms. Trimming drops
// the atoms farthest down the slice; padding duplicates existing atoms
// with a small deterministic offset. It returns the same molecule for
// convenience.
func Exactly(m *Molecule, n int, seed int64) *Molecule {
	if len(m.Atoms) > n {
		m.Atoms = m.Atoms[:n]
		return m
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for len(m.Atoms) < n {
		src := m.Atoms[rng.Intn(len(m.Atoms))]
		src.Pos = src.Pos.Add(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.4))
		m.Atoms = append(m.Atoms, src)
	}
	return m
}
