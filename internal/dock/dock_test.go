package dock

import (
	"math"
	"strings"
	"testing"

	"gbpolar/internal/gb"
	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/sched"
	"gbpolar/internal/surface"
)

func testScorer(t *testing.T, recAtoms, ligAtoms int) *Scorer {
	t.Helper()
	rec := molecule.Exactly(molecule.Globule("rec", recAtoms, 31), recAtoms, 31)
	lig := molecule.Exactly(molecule.Globule("lig", ligAtoms, 37), ligAtoms, 37)
	s, err := NewScorer(rec, lig, gb.DefaultParams(), surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewScorerValidates(t *testing.T) {
	empty := &molecule.Molecule{Name: "empty"}
	lig := molecule.Exactly(molecule.Globule("lig", 50, 1), 50, 1)
	if _, err := NewScorer(empty, lig, gb.DefaultParams(), surface.DefaultConfig()); err == nil {
		t.Error("empty receptor accepted")
	}
	if _, err := NewScorer(lig, empty, gb.DefaultParams(), surface.DefaultConfig()); err == nil {
		t.Error("empty ligand accepted")
	}
}

func TestSoloEnergiesCached(t *testing.T) {
	s := testScorer(t, 400, 60)
	if s.ReceptorEnergy() >= 0 || s.LigandEnergy() >= 0 {
		t.Errorf("solo energies not negative: %v %v", s.ReceptorEnergy(), s.LigandEnergy())
	}
}

func TestScorePoseFarLigandIsNeutral(t *testing.T) {
	s := testScorer(t, 300, 50)
	// A ligand 500 Å away interacts with nothing: ΔEpol ≈ 0.
	far := Pose{Transform: geom.Translate(geom.V(500, 0, 0)), Label: "far"}
	sc, err := s.ScorePose(far)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Clash {
		t.Fatal("distant pose flagged as clash")
	}
	if math.Abs(sc.DeltaEpol) > 0.05*math.Abs(s.LigandEnergy()) {
		t.Errorf("distant ΔEpol = %v, want ≈0 (ligand E %v)", sc.DeltaEpol, s.LigandEnergy())
	}
}

func TestScorePoseClash(t *testing.T) {
	s := testScorer(t, 300, 50)
	// Ligand centered on the receptor: hard overlap.
	sc, err := s.ScorePose(Pose{Transform: geom.IdentityTransform(), Label: "overlap"})
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Clash || !math.IsInf(sc.DeltaEpol, 1) {
		t.Errorf("overlapping pose not flagged: %+v", sc)
	}
}

func TestRingPosesGeometry(t *testing.T) {
	s := testScorer(t, 300, 50)
	poses := s.RingPoses(8, 4)
	if len(poses) != 8 {
		t.Fatalf("poses = %d", len(poses))
	}
	// All ring poses place the ligand centroid at the same distance from
	// the receptor center.
	var first float64
	for i, p := range poses {
		placed := s.ligand.ApplyTransform(p.Transform)
		c, _ := geom.EnclosingBall(placed.Positions())
		d := c.Dist(s.recCenter)
		if i == 0 {
			first = d
			continue
		}
		if math.Abs(d-first) > 1.5 {
			t.Errorf("pose %d at distance %v, first at %v", i, d, first)
		}
	}
}

func TestSpherePosesCoverDirections(t *testing.T) {
	s := testScorer(t, 300, 50)
	poses := s.SpherePoses(32, 4)
	if len(poses) != 32 {
		t.Fatalf("poses = %d", len(poses))
	}
	// Directions should span all octants.
	octants := map[int]bool{}
	for _, p := range poses {
		placed := s.ligand.ApplyTransform(p.Transform)
		c, _ := geom.EnclosingBall(placed.Positions())
		d := c.Sub(s.recCenter)
		o := 0
		if d.X > 0 {
			o |= 1
		}
		if d.Y > 0 {
			o |= 2
		}
		if d.Z > 0 {
			o |= 4
		}
		octants[o] = true
	}
	if len(octants) < 8 {
		t.Errorf("sphere poses cover only %d octants", len(octants))
	}
}

func TestScoreAllSortedAndParallelMatchesSerial(t *testing.T) {
	s := testScorer(t, 250, 40)
	poses := s.RingPoses(6, 3)
	serial, err := s.ScoreAll(nil, poses)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(serial); i++ {
		if serial[i].DeltaEpol < serial[i-1].DeltaEpol {
			t.Fatal("results not sorted")
		}
	}
	pool := sched.New(4)
	defer pool.Close()
	par, err := s.ScoreAll(pool, poses)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatal("length mismatch")
	}
	for i := range par {
		if par[i].Pose.Label != serial[i].Pose.Label ||
			math.Abs(par[i].DeltaEpol-serial[i].DeltaEpol) > 1e-9 {
			t.Fatalf("rank %d differs: %+v vs %+v", i, par[i], serial[i])
		}
	}
}

func TestRefineLabelsAndDeterminism(t *testing.T) {
	base := Pose{Transform: geom.Translate(geom.V(10, 0, 0)), Label: "base"}
	a := Refine(base, 5, 1.0, 0.3)
	b := Refine(base, 5, 1.0, 0.3)
	if len(a) != 5 {
		t.Fatalf("poses = %d", len(a))
	}
	for i := range a {
		if !strings.HasPrefix(a[i].Label, "base/refine-") {
			t.Errorf("label %q", a[i].Label)
		}
		if a[i].Transform != b[i].Transform {
			t.Error("Refine not deterministic")
		}
	}
	// Refined poses stay near the base placement.
	for _, p := range a {
		d := p.Transform.Apply(geom.V(0, 0, 0)).Dist(base.Transform.Apply(geom.V(0, 0, 0)))
		if d > 2.5 { // trans radius 1.0 plus rotation displacement slack
			t.Errorf("refined pose drifted %v", d)
		}
	}
}

// The octree-reuse fast path must rank poses consistently with the full
// rebuild and agree on ΔEpol within the frozen-surface band.
func TestFastScoreTracksFull(t *testing.T) {
	s := testScorer(t, 350, 50)
	poses := s.SpherePoses(6, 4)
	pool := sched.New(4)
	defer pool.Close()
	full, err := s.ScoreAll(pool, poses)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.FastScoreAll(pool, poses)
	if err != nil {
		t.Fatal(err)
	}
	fullBy := map[string]float64{}
	for _, sc := range full {
		fullBy[sc.Pose.Label] = sc.DeltaEpol
	}
	for _, sc := range fast {
		want := fullBy[sc.Pose.Label]
		// Frozen-surface approximation: agree within max(20%, 15 kcal).
		diff := math.Abs(sc.DeltaEpol - want)
		if diff > 15 && diff > 0.2*math.Abs(want) {
			t.Errorf("%s: fast %v vs full %v", sc.Pose.Label, sc.DeltaEpol, want)
		}
	}
	// The best full pose should rank in the fast top half.
	bestLabel := full[0].Pose.Label
	for rank, sc := range fast {
		if sc.Pose.Label == bestLabel {
			if rank > len(fast)/2 {
				t.Errorf("full-best pose %s ranked %d/%d by fast path", bestLabel, rank, len(fast))
			}
			break
		}
	}
}

// Far poses must score ≈0 through the fast path too.
func TestFastScoreFarNeutral(t *testing.T) {
	s := testScorer(t, 300, 40)
	sc, err := s.FastScorePose(Pose{Transform: geom.Translate(geom.V(600, 0, 0)), Label: "far"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sc.DeltaEpol) > 0.05*math.Abs(s.LigandEnergy()) {
		t.Errorf("far fast ΔEpol = %v", sc.DeltaEpol)
	}
}
