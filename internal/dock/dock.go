// Package dock implements the drug-design workload the paper motivates
// (§I, §IV-C): scoring ligand placements against a receptor by the change
// in GB polarization energy. A Scorer caches the receptor's solo energy
// and scores arbitrary rigid poses of a ligand; pose generators enumerate
// approach rings, spheres and local refinements; scoring parallelizes
// over poses with the work-stealing pool.
package dock

import (
	"fmt"
	"math"
	"sort"

	"gbpolar/internal/gb"
	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/sched"
	"gbpolar/internal/surface"
)

// Pose is one rigid placement of the ligand.
type Pose struct {
	// Transform maps ligand coordinates into the receptor frame.
	Transform geom.Transform
	// Label identifies the pose in results (generator-assigned).
	Label string
}

// Score is a scored pose.
type Score struct {
	Pose Pose
	// DeltaEpol = Epol(complex) − Epol(receptor) − Epol(ligand), in
	// kcal/mol: negative values mean the complex is better solvated
	// than the parts (favorable polar desolvation).
	DeltaEpol float64
	// Clash reports steric overlap (atom centers closer than the sum of
	// half radii); clashing poses carry +Inf DeltaEpol.
	Clash bool
}

// Scorer scores ligand poses against a fixed receptor.
type Scorer struct {
	receptor  *molecule.Molecule
	ligand    *molecule.Molecule
	params    gb.Params
	surfCfg   surface.Config
	recEnergy float64
	ligEnergy float64
	recRadius float64 // enclosing-ball radius of the receptor
	recCenter geom.Vec3
	// complex is the prepared octree-reuse fast path (§IV-C): both
	// molecules' trees, surfaces and self Born integrals are built once
	// and every pose pays only the cross terms.
	complex *gb.Complex
}

// NewScorer prepares a scorer: it builds both molecules' systems once
// (Fig. 4 pipelines at the given params) and caches their solo energies
// and the octree-reuse complex.
func NewScorer(receptor, ligand *molecule.Molecule, params gb.Params, surfCfg surface.Config) (*Scorer, error) {
	if receptor.NumAtoms() == 0 || ligand.NumAtoms() == 0 {
		return nil, fmt.Errorf("dock: empty receptor or ligand")
	}
	s := &Scorer{
		receptor: receptor,
		ligand:   ligand,
		params:   params,
		surfCfg:  surfCfg,
	}
	recSys, err := s.systemOf(receptor)
	if err != nil {
		return nil, err
	}
	ligSys, err := s.systemOf(ligand)
	if err != nil {
		return nil, err
	}
	s.recEnergy = recSys.RunSerial().Epol
	s.ligEnergy = ligSys.RunSerial().Epol
	if s.complex, err = gb.NewComplex(recSys, ligSys); err != nil {
		return nil, err
	}
	s.recCenter, s.recRadius = geom.EnclosingBall(receptor.Positions())
	return s, nil
}

// systemOf prepares one molecule's system.
func (s *Scorer) systemOf(m *molecule.Molecule) (*gb.System, error) {
	surf, err := surface.Build(m, s.surfCfg)
	if err != nil {
		return nil, err
	}
	return gb.NewSystem(m, surf, s.params)
}

// ReceptorEnergy returns the cached receptor Epol.
func (s *Scorer) ReceptorEnergy() float64 { return s.recEnergy }

// LigandEnergy returns the cached ligand Epol.
func (s *Scorer) LigandEnergy() float64 { return s.ligEnergy }

// epolOf runs the serial octree pipeline on one molecule.
func (s *Scorer) epolOf(m *molecule.Molecule) (float64, error) {
	surf, err := surface.Build(m, s.surfCfg)
	if err != nil {
		return 0, err
	}
	sys, err := gb.NewSystem(m, surf, s.params)
	if err != nil {
		return 0, err
	}
	return sys.RunSerial().Epol, nil
}

// ScorePose scores one pose by rebuilding the complex from scratch
// (surface re-culled at the interface — the most faithful but slowest
// evaluation).
func (s *Scorer) ScorePose(p Pose) (Score, error) {
	placed := s.ligand.ApplyTransform(p.Transform)
	if s.clashes(placed) {
		return Score{Pose: p, DeltaEpol: math.Inf(1), Clash: true}, nil
	}
	complexMol := molecule.Merge("complex", s.receptor, placed)
	e, err := s.epolOf(complexMol)
	if err != nil {
		return Score{}, err
	}
	return Score{Pose: p, DeltaEpol: e - s.recEnergy - s.ligEnergy}, nil
}

// FastScorePose scores one pose through the octree-reuse path (§IV-C):
// no tree or surface rebuilds — the scheme the paper proposes for
// placing a ligand at thousands of positions. Slightly less faithful
// than ScorePose at contact distance (the frozen surfaces skip interface
// re-culling) but typically an order of magnitude cheaper per pose.
func (s *Scorer) FastScorePose(p Pose) (Score, error) {
	placed := s.ligand.ApplyTransform(p.Transform)
	if s.clashes(placed) {
		return Score{Pose: p, DeltaEpol: math.Inf(1), Clash: true}, nil
	}
	res, err := s.complex.Epol(p.Transform)
	if err != nil {
		return Score{}, err
	}
	return Score{Pose: p, DeltaEpol: res.Epol - s.recEnergy - s.ligEnergy}, nil
}

// FastScoreAll is ScoreAll through the octree-reuse path.
func (s *Scorer) FastScoreAll(pool *sched.Pool, poses []Pose) ([]Score, error) {
	return s.scoreAll(pool, poses, s.FastScorePose)
}

// clashes reports hard steric overlap between the placed ligand and the
// receptor (centers closer than 55% of the radius sum — bonded-distance
// territory).
func (s *Scorer) clashes(placed *molecule.Molecule) bool {
	for _, la := range placed.Atoms {
		// Quick reject against the receptor ball.
		if la.Pos.Dist(s.recCenter) > s.recRadius+la.Radius+2 {
			continue
		}
		for _, ra := range s.receptor.Atoms {
			minD := 0.55 * (la.Radius + ra.Radius)
			if la.Pos.Dist2(ra.Pos) < minD*minD {
				return true
			}
		}
	}
	return false
}

// ScoreAll scores poses concurrently on the given pool (nil: serial) and
// returns results sorted best (most negative ΔEpol) first.
func (s *Scorer) ScoreAll(pool *sched.Pool, poses []Pose) ([]Score, error) {
	return s.scoreAll(pool, poses, s.ScorePose)
}

func (s *Scorer) scoreAll(pool *sched.Pool, poses []Pose, score func(Pose) (Score, error)) ([]Score, error) {
	out := make([]Score, len(poses))
	errs := make([]error, len(poses))
	if pool == nil {
		for i, p := range poses {
			out[i], errs[i] = score(p)
		}
	} else {
		pool.ParallelRange(len(poses), 1, func(w *sched.Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i], errs[i] = score(poses[i])
			}
		})
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].DeltaEpol < out[j].DeltaEpol })
	return out, nil
}

// RingPoses places the ligand on a ring of `count` approach directions in
// the z=0 plane at the given clearance beyond the receptor surface, each
// pose also rotated about the approach axis.
func (s *Scorer) RingPoses(count int, clearance float64) []Pose {
	_, ligRadius := geom.EnclosingBall(s.ligand.Positions())
	dist := s.recRadius + ligRadius + clearance
	poses := make([]Pose, 0, count)
	for k := 0; k < count; k++ {
		angle := 2 * math.Pi * float64(k) / float64(count)
		dir := geom.V(math.Cos(angle), math.Sin(angle), 0)
		tr := geom.Translate(s.recCenter.Add(dir.Scale(dist))).
			Compose(geom.Rotate(geom.V(0, 0, 1), angle))
		poses = append(poses, Pose{Transform: tr, Label: fmt.Sprintf("ring-%d", k)})
	}
	return poses
}

// SpherePoses places the ligand on a Fibonacci sphere of `count` approach
// directions at the given clearance.
func (s *Scorer) SpherePoses(count int, clearance float64) []Pose {
	_, ligRadius := geom.EnclosingBall(s.ligand.Positions())
	dist := s.recRadius + ligRadius + clearance
	golden := math.Pi * (3 - math.Sqrt(5))
	poses := make([]Pose, 0, count)
	for k := 0; k < count; k++ {
		z := 1 - 2*(float64(k)+0.5)/float64(count)
		r := math.Sqrt(1 - z*z)
		phi := golden * float64(k)
		dir := geom.V(r*math.Cos(phi), r*math.Sin(phi), z)
		tr := geom.Translate(s.recCenter.Add(dir.Scale(dist))).
			Compose(geom.Rotate(dir, phi))
		poses = append(poses, Pose{Transform: tr, Label: fmt.Sprintf("sphere-%d", k)})
	}
	return poses
}

// Refine generates `count` jittered variants of a pose within the given
// translational radius and rotational spread (radians), deterministic in
// the pose label.
func Refine(base Pose, count int, transRadius, rotSpread float64) []Pose {
	// Deterministic low-discrepancy jitter from the index.
	poses := make([]Pose, 0, count)
	for k := 0; k < count; k++ {
		u := frac(float64(k)*0.754877666 + 0.1)
		v := frac(float64(k)*0.569840291 + 0.3)
		w := frac(float64(k)*0.362437104 + 0.7)
		shift := geom.V(u-0.5, v-0.5, w-0.5).Scale(2 * transRadius)
		axis := geom.V(v-0.5, w-0.5, u-0.5)
		rot := (u - 0.5) * 2 * rotSpread
		tr := geom.Translate(shift).Compose(base.Transform).Compose(geom.Rotate(axis, rot))
		poses = append(poses, Pose{Transform: tr, Label: fmt.Sprintf("%s/refine-%d", base.Label, k)})
	}
	return poses
}

func frac(x float64) float64 { return x - math.Floor(x) }
