package md

import (
	"fmt"
	"math"
	"math/rand"

	"gbpolar/internal/gb"
	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// Langevin dynamics on the GB/SA surface: the "molecular dynamics
// simulations for determining the molecular conformation with minimal
// total free energy" application of the paper's introduction, driven by
// the frozen-radii GB forces plus the soft-sphere repulsion and an
// optional harmonic position restraint (without bonded terms unrestrained
// atoms would evaporate — restrained dynamics is the standard protocol
// for exactly that situation).

// DynConfig controls a dynamics run.
type DynConfig struct {
	// Steps is the number of integration steps (default 200).
	Steps int
	// DtFs is the time step in femtoseconds (default 2).
	DtFs float64
	// TemperatureK is the Langevin bath temperature (default 300).
	TemperatureK float64
	// FrictionPerPs is the Langevin friction γ in 1/ps (default 1).
	FrictionPerPs float64
	// RestraintK tethers each atom to its initial position with a
	// harmonic spring (kcal/mol/Å², default 1; 0 disables).
	RestraintK float64
	// RadiiRefresh rebuilds surface + Born radii every this many steps
	// (default 25).
	RadiiRefresh int
	// SampleEvery records a trajectory frame every this many steps
	// (default 10).
	SampleEvery int
	// Seed drives the thermostat noise (runs are deterministic in it).
	Seed int64
	// RepulsionK is the soft-sphere stiffness (default 20).
	RepulsionK float64
}

// DefaultDynConfig returns standard restrained-dynamics settings.
func DefaultDynConfig() DynConfig {
	return DynConfig{Steps: 200, DtFs: 2, TemperatureK: 300, FrictionPerPs: 1,
		RestraintK: 1, RadiiRefresh: 25, SampleEvery: 10, Seed: 1, RepulsionK: 20}
}

func (c DynConfig) withDefaults() DynConfig {
	d := DefaultDynConfig()
	if c.Steps == 0 {
		c.Steps = d.Steps
	}
	if c.DtFs == 0 {
		c.DtFs = d.DtFs
	}
	if c.TemperatureK == 0 {
		c.TemperatureK = d.TemperatureK
	}
	if c.FrictionPerPs == 0 {
		c.FrictionPerPs = d.FrictionPerPs
	}
	if c.RadiiRefresh == 0 {
		c.RadiiRefresh = d.RadiiRefresh
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = d.SampleEvery
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.RepulsionK == 0 {
		c.RepulsionK = d.RepulsionK
	}
	return c
}

// Physical constants in the kcal/mol–Å–fs–amu unit system.
const (
	// BoltzmannKcal is k_B in kcal/(mol·K).
	BoltzmannKcal = 0.0019872041
	// accelUnit converts (kcal/mol/Å)/amu to Å/fs²:
	// 1 kcal/mol = 4.184e26 amu·Å²/s² ⇒ ×1e-30 s²/fs² = 4.184e-4.
	accelUnit = 4.184e-4
	// atomMassAmu is the synthetic generator's mean atomic mass.
	atomMassAmu = 12.0
)

// Frame is one recorded trajectory sample.
type Frame struct {
	Step int
	// TimeFs is the elapsed simulated time.
	TimeFs float64
	// Epol, Restraint, Repulsion are the potential terms (kcal/mol).
	Epol, Restraint, Repulsion float64
	// KineticK is the instantaneous kinetic temperature (K).
	KineticK float64
	// Positions is a copy of the coordinates.
	Positions []geom.Vec3
}

// Trajectory is a dynamics run's history.
type Trajectory struct {
	Frames []Frame
	Final  *molecule.Molecule
}

// Dynamics runs restrained Langevin dynamics (BAOAB-style velocity
// Verlet with stochastic friction) on the molecule.
func Dynamics(mol *molecule.Molecule, params gb.Params, surfCfg surface.Config, cfg DynConfig) (*Trajectory, error) {
	cfg = cfg.withDefaults()
	if mol.NumAtoms() == 0 {
		return nil, fmt.Errorf("md: empty molecule")
	}
	if cfg.DtFs <= 0 || cfg.DtFs > 10 {
		return nil, fmt.Errorf("md: time step %v fs out of range (0, 10]", cfg.DtFs)
	}
	work := mol.Clone()
	n := work.NumAtoms()
	anchor := snapshot(work)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Maxwell–Boltzmann initial velocities.
	vel := make([]geom.Vec3, n)
	sigmaV := math.Sqrt(BoltzmannKcal * cfg.TemperatureK / atomMassAmu * accelUnit)
	for i := range vel {
		vel[i] = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(sigmaV)
	}

	var sys *gb.System
	var radii []float64
	refresh := func() error {
		surf, err := surface.Build(work, surfCfg)
		if err != nil {
			return err
		}
		sys, err = gb.NewSystem(work, surf, params)
		if err != nil {
			return err
		}
		radii, _ = sys.BornRadii()
		return nil
	}
	if err := refresh(); err != nil {
		return nil, err
	}

	forces := func() ([]geom.Vec3, float64, float64) {
		dEdx, _ := sys.EnergyGradients(radii)
		addRepulsionGradient(work, cfg.RepulsionK, dEdx)
		restraint := 0.0
		if cfg.RestraintK > 0 {
			for i := range work.Atoms {
				d := work.Atoms[i].Pos.Sub(anchor[i])
				restraint += cfg.RestraintK * d.Norm2()
				dEdx[i] = dEdx[i].Add(d.Scale(2 * cfg.RestraintK))
			}
		}
		for i := range dEdx {
			dEdx[i] = dEdx[i].Neg() // force = −gradient
		}
		return dEdx, restraint, repulsionEnergy(work, cfg.RepulsionK)
	}

	dt := cfg.DtFs
	gamma := cfg.FrictionPerPs / 1000 // 1/fs
	// Ornstein–Uhlenbeck decay and noise for the O step.
	decay := math.Exp(-gamma * dt)
	noise := sigmaV * math.Sqrt(1-decay*decay)

	f, restraint, rep := forces()
	traj := &Trajectory{}
	record := func(step int) {
		e, _ := sys.Epol(radii)
		ke := 0.0
		for _, v := range vel {
			ke += 0.5 * atomMassAmu * v.Norm2() / accelUnit
		}
		temp := 2 * ke / (3 * float64(n) * BoltzmannKcal)
		traj.Frames = append(traj.Frames, Frame{
			Step: step, TimeFs: float64(step) * dt,
			Epol: e, Restraint: restraint, Repulsion: rep,
			KineticK:  temp,
			Positions: snapshot(work),
		})
	}
	record(0)

	for step := 1; step <= cfg.Steps; step++ {
		// B: half kick.
		for i := range vel {
			vel[i] = vel[i].Add(f[i].Scale(0.5 * dt * accelUnit / atomMassAmu))
		}
		// A: half drift.
		for i := range work.Atoms {
			work.Atoms[i].Pos = work.Atoms[i].Pos.Add(vel[i].Scale(0.5 * dt))
		}
		// O: friction + noise.
		for i := range vel {
			r := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
			vel[i] = vel[i].Scale(decay).Add(r.Scale(noise))
		}
		// A: half drift.
		for i := range work.Atoms {
			work.Atoms[i].Pos = work.Atoms[i].Pos.Add(vel[i].Scale(0.5 * dt))
		}
		// Refresh the energy model.
		if step%cfg.RadiiRefresh == 0 {
			if err := refresh(); err != nil {
				return nil, err
			}
		} else {
			// Positions moved: rebuild the prepared system on the same
			// frozen radii (trees must track coordinates).
			surf, err := surface.Build(work, surfCfg)
			if err != nil {
				return nil, err
			}
			if sys, err = gb.NewSystem(work, surf, params); err != nil {
				return nil, err
			}
		}
		// B: half kick with fresh forces.
		var err error
		f, restraint, rep = forces()
		_ = err
		for i := range vel {
			vel[i] = vel[i].Add(f[i].Scale(0.5 * dt * accelUnit / atomMassAmu))
		}
		if step%cfg.SampleEvery == 0 || step == cfg.Steps {
			record(step)
		}
	}
	traj.Final = work
	return traj, nil
}

// MeanTemperature returns the average kinetic temperature over the
// trajectory's frames (excluding frame 0).
func (t *Trajectory) MeanTemperature() float64 {
	if len(t.Frames) <= 1 {
		return 0
	}
	sum := 0.0
	for _, fr := range t.Frames[1:] {
		sum += fr.KineticK
	}
	return sum / float64(len(t.Frames)-1)
}

// RMSD returns the root-mean-square displacement of the final frame from
// the first.
func (t *Trajectory) RMSD() float64 {
	if len(t.Frames) < 2 {
		return 0
	}
	a := t.Frames[0].Positions
	b := t.Frames[len(t.Frames)-1].Positions
	s := 0.0
	for i := range a {
		s += a[i].Dist2(b[i])
	}
	return math.Sqrt(s / float64(len(a)))
}
