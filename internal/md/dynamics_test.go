package md

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

func dynMol(n int) *molecule.Molecule {
	return molecule.Exactly(molecule.Globule("dyn", n, 19), n, 19)
}

func TestDynamicsRunsAndRecords(t *testing.T) {
	traj, err := Dynamics(dynMol(80), gb.DefaultParams(), surface.DefaultConfig(), DynConfig{
		Steps: 50, SampleEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Frames: step 0 plus every 10th plus the final step.
	if len(traj.Frames) < 6 {
		t.Fatalf("frames = %d", len(traj.Frames))
	}
	if traj.Frames[0].Step != 0 || traj.Frames[len(traj.Frames)-1].Step != 50 {
		t.Errorf("frame steps: first %d last %d", traj.Frames[0].Step, traj.Frames[len(traj.Frames)-1].Step)
	}
	if traj.Final == nil || traj.Final.NumAtoms() != 80 {
		t.Fatal("final molecule missing")
	}
	if err := traj.Final.Validate(); err != nil {
		t.Fatalf("final molecule invalid: %v", err)
	}
	for _, fr := range traj.Frames {
		if fr.Epol >= 0 {
			t.Errorf("frame %d: Epol %v not negative", fr.Step, fr.Epol)
		}
		if len(fr.Positions) != 80 {
			t.Fatalf("frame %d: %d positions", fr.Step, len(fr.Positions))
		}
	}
}

func TestDynamicsThermostat(t *testing.T) {
	// Standard protocol: minimize away the synthetic lattice strain first,
	// then equilibrate — otherwise the relaxation heat swamps the bath.
	relaxed, err := Minimize(dynMol(120), gb.DefaultParams(), surface.DefaultConfig(),
		Config{Steps: 40})
	if err != nil {
		t.Fatal(err)
	}
	traj, err := Dynamics(relaxed.Final, gb.DefaultParams(), surface.DefaultConfig(), DynConfig{
		Steps: 200, TemperatureK: 300, FrictionPerPs: 20, RestraintK: 3, SampleEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Discard the first half as equilibration.
	frames := traj.Frames[len(traj.Frames)/2:]
	mean := 0.0
	for _, fr := range frames {
		mean += fr.KineticK
	}
	mean /= float64(len(frames))
	// Small system, short run, residual relaxation: accept a generous
	// band around the 300 K bath.
	if mean < 100 || mean > 1200 {
		t.Errorf("mean temperature %v K, bath 300 K", mean)
	}
}

func TestDynamicsDeterministicInSeed(t *testing.T) {
	cfg := DynConfig{Steps: 30, Seed: 7}
	a, err := Dynamics(dynMol(60), gb.DefaultParams(), surface.DefaultConfig(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dynamics(dynMol(60), gb.DefaultParams(), surface.DefaultConfig(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Final.Atoms {
		if a.Final.Atoms[i].Pos != b.Final.Atoms[i].Pos {
			t.Fatalf("atom %d differs between identical seeds", i)
		}
	}
	cfg.Seed = 8
	c, err := Dynamics(dynMol(60), gb.DefaultParams(), surface.DefaultConfig(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Final.Atoms {
		if a.Final.Atoms[i].Pos != c.Final.Atoms[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestDynamicsRestraintBoundsDrift(t *testing.T) {
	strong, err := Dynamics(dynMol(60), gb.DefaultParams(), surface.DefaultConfig(), DynConfig{
		Steps: 80, RestraintK: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Dynamics(dynMol(60), gb.DefaultParams(), surface.DefaultConfig(), DynConfig{
		Steps: 80, RestraintK: 0.05, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if strong.RMSD() >= weak.RMSD() {
		t.Errorf("strong restraint RMSD %v not below weak %v", strong.RMSD(), weak.RMSD())
	}
	if strong.RMSD() > 1.5 {
		t.Errorf("strongly restrained RMSD %v Å too large", strong.RMSD())
	}
	if math.IsNaN(weak.RMSD()) {
		t.Error("RMSD NaN")
	}
}

func TestDynamicsValidation(t *testing.T) {
	if _, err := Dynamics(&molecule.Molecule{Name: "empty"}, gb.DefaultParams(),
		surface.DefaultConfig(), DynConfig{}); err == nil {
		t.Error("empty molecule accepted")
	}
	if _, err := Dynamics(dynMol(10), gb.DefaultParams(), surface.DefaultConfig(),
		DynConfig{DtFs: 50}); err == nil {
		t.Error("absurd time step accepted")
	}
}

func TestTrajectoryWriteXYZ(t *testing.T) {
	traj, err := Dynamics(dynMol(30), gb.DefaultParams(), surface.DefaultConfig(), DynConfig{
		Steps: 20, SampleEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := traj.WriteXYZ(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	frames := strings.Count(out, "step ")
	if frames != len(traj.Frames) {
		t.Errorf("XYZ frames = %d, want %d", frames, len(traj.Frames))
	}
	wantLines := len(traj.Frames) * (30 + 2)
	if got := strings.Count(out, "\n"); got != wantLines {
		t.Errorf("XYZ lines = %d, want %d", got, wantLines)
	}
}
