package md

import (
	"math"
	"testing"

	"gbpolar/internal/gb"
	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

func TestMinimizeDecreasesEnergy(t *testing.T) {
	mol := molecule.Exactly(molecule.Globule("min", 200, 17), 200, 17)
	trace, err := Minimize(mol, gb.DefaultParams(), surface.DefaultConfig(), Config{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Steps) == 0 {
		t.Fatal("no accepted steps")
	}
	for i := 1; i < len(trace.Steps); i++ {
		if trace.Steps[i].Total > trace.Steps[i-1].Total+1e-9 {
			t.Errorf("step %d: energy rose from %v to %v",
				i, trace.Steps[i-1].Total, trace.Steps[i].Total)
		}
	}
	if trace.Final == nil || trace.Final.NumAtoms() != 200 {
		t.Fatal("final molecule missing")
	}
	if err := trace.Final.Validate(); err != nil {
		t.Fatalf("final molecule invalid: %v", err)
	}
	// Input untouched.
	if mol.Atoms[0].Pos != molecule.Exactly(molecule.Globule("min", 200, 17), 200, 17).Atoms[0].Pos {
		t.Error("Minimize mutated its input")
	}
}

func TestMinimizeRelievesClash(t *testing.T) {
	// Two overlapping charged atoms: minimization must push them apart.
	mol := &molecule.Molecule{Name: "clash", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1.6, Charge: 0.4},
		{Pos: geom.V(1.2, 0, 0), Radius: 1.6, Charge: -0.4},
		{Pos: geom.V(0, 8, 0), Radius: 1.6, Charge: 0.2},
		{Pos: geom.V(0, 8, 1.1), Radius: 1.6, Charge: -0.2},
	}}
	before := repulsionEnergy(mol, 20)
	if before == 0 {
		t.Fatal("test setup: no initial clash")
	}
	trace, err := Minimize(mol, gb.DefaultParams(), surface.Config{IcoLevel: 1}, Config{Steps: 40})
	if err != nil {
		t.Fatal(err)
	}
	after := repulsionEnergy(trace.Final, 20)
	if after >= before {
		t.Errorf("clash energy %v did not drop (was %v)", after, before)
	}
}

func TestMinimizeValidation(t *testing.T) {
	if _, err := Minimize(&molecule.Molecule{Name: "empty"}, gb.DefaultParams(),
		surface.DefaultConfig(), Config{}); err == nil {
		t.Error("empty molecule accepted")
	}
}

func TestRepulsionGradientMatchesNumerical(t *testing.T) {
	mol := &molecule.Molecule{Name: "pair", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1.5},
		{Pos: geom.V(1.8, 0.3, -0.2), Radius: 1.5},
	}}
	const k = 20.0
	grad := make([]geom.Vec3, 2)
	addRepulsionGradient(mol, k, grad)
	const h = 1e-6
	for atom := 0; atom < 2; atom++ {
		for axis := 0; axis < 3; axis++ {
			d := geom.Vec3{}
			switch axis {
			case 0:
				d.X = h
			case 1:
				d.Y = h
			case 2:
				d.Z = h
			}
			orig := mol.Atoms[atom].Pos
			mol.Atoms[atom].Pos = orig.Add(d)
			plus := repulsionEnergy(mol, k)
			mol.Atoms[atom].Pos = orig.Sub(d)
			minus := repulsionEnergy(mol, k)
			mol.Atoms[atom].Pos = orig
			num := (plus - minus) / (2 * h)
			var got float64
			switch axis {
			case 0:
				got = grad[atom].X
			case 1:
				got = grad[atom].Y
			case 2:
				got = grad[atom].Z
			}
			if math.Abs(num-got) > 1e-5*(1+math.Abs(num)) {
				t.Errorf("atom %d axis %d: analytic %v vs numerical %v", atom, axis, got, num)
			}
		}
	}
}

func TestRepulsionZeroWhenSeparated(t *testing.T) {
	mol := &molecule.Molecule{Name: "apart", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1.5},
		{Pos: geom.V(10, 0, 0), Radius: 1.5},
	}}
	if e := repulsionEnergy(mol, 20); e != 0 {
		t.Errorf("separated repulsion = %v", e)
	}
	grad := make([]geom.Vec3, 2)
	addRepulsionGradient(mol, 20, grad)
	if grad[0] != (geom.Vec3{}) || grad[1] != (geom.Vec3{}) {
		t.Errorf("separated gradient = %v", grad)
	}
}
