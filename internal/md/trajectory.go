package md

import (
	"bufio"
	"fmt"
	"io"
)

// WriteXYZ writes the trajectory as a multi-frame XYZ file (the de facto
// interchange format for MD viewers: one "count / comment / atoms" block
// per frame, element column "C" for the synthetic atoms).
func (t *Trajectory) WriteXYZ(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fr := range t.Frames {
		if _, err := fmt.Fprintf(bw, "%d\nstep %d t=%.1ffs Epol=%.2f T=%.0fK\n",
			len(fr.Positions), fr.Step, fr.TimeFs, fr.Epol, fr.KineticK); err != nil {
			return err
		}
		for _, p := range fr.Positions {
			if _, err := fmt.Fprintf(bw, "C %.4f %.4f %.4f\n", p.X, p.Y, p.Z); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
