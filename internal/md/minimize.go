// Package md provides energy minimization on the GB/SA surface — the
// simplest member of the molecular-dynamics family of applications the
// paper's packages (Amber/Gromacs/NAMD/Tinker) wrap around their GB
// kernels. It descends the polarization energy plus a soft-sphere
// repulsion with backtracking steepest descent, refreshing the Born radii
// and molecular surface periodically (each refresh is exactly the
// paper's Fig. 4 pipeline).
package md

import (
	"fmt"
	"math"

	"gbpolar/internal/gb"
	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
	"gbpolar/internal/surface"
)

// Config controls the minimization.
type Config struct {
	// Steps is the maximum number of accepted descent steps (default 50).
	Steps int
	// StepSize is the initial step length in Å (default 0.05, adapted by
	// backtracking: halved on uphill trials, grown 10% on accepted ones).
	StepSize float64
	// RadiiRefresh rebuilds the surface and Born radii every this many
	// accepted steps (default 10). Between refreshes the radii are
	// frozen, matching the gb.Forces derivative convention.
	RadiiRefresh int
	// RepulsionK is the soft-sphere stiffness in kcal/mol/Å² (default
	// 20): pairs closer than 80% of their radius sum pay k·overlap².
	RepulsionK float64
	// Tol stops early when the gradient RMS falls below it (default
	// 0.05 kcal/mol/Å).
	Tol float64
}

// DefaultConfig returns sensible minimization defaults.
func DefaultConfig() Config {
	return Config{Steps: 50, StepSize: 0.05, RadiiRefresh: 10, RepulsionK: 20, Tol: 0.05}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Steps == 0 {
		c.Steps = d.Steps
	}
	if c.StepSize == 0 {
		c.StepSize = d.StepSize
	}
	if c.RadiiRefresh == 0 {
		c.RadiiRefresh = d.RadiiRefresh
	}
	if c.RepulsionK == 0 {
		c.RepulsionK = d.RepulsionK
	}
	if c.Tol == 0 {
		c.Tol = d.Tol
	}
	return c
}

// Step records one accepted minimization step.
type Step struct {
	Index       int
	Epol        float64 // kcal/mol at the frozen radii of the epoch
	Repulsion   float64 // kcal/mol
	Total       float64
	GradientRMS float64 // kcal/mol/Å
	StepSize    float64 // the accepted step length
}

// Trace is the minimization history.
type Trace struct {
	Steps []Step
	// Final is the minimized molecule (a copy; the input is untouched).
	Final *molecule.Molecule
	// Converged reports whether the gradient tolerance was reached.
	Converged bool
}

// Minimize runs backtracking steepest descent on the given molecule.
func Minimize(mol *molecule.Molecule, params gb.Params, surfCfg surface.Config, cfg Config) (*Trace, error) {
	cfg = cfg.withDefaults()
	if mol.NumAtoms() == 0 {
		return nil, fmt.Errorf("md: empty molecule")
	}
	work := mol.Clone()
	trace := &Trace{}

	var sys *gb.System
	var radii []float64
	refresh := func() error {
		surf, err := surface.Build(work, surfCfg)
		if err != nil {
			return err
		}
		sys, err = gb.NewSystem(work, surf, params)
		if err != nil {
			return err
		}
		radii, _ = sys.BornRadii()
		return nil
	}
	if err := refresh(); err != nil {
		return nil, err
	}

	energy := func() (epol, rep float64) {
		e, _ := sys.Epol(radii)
		return e, repulsionEnergy(work, cfg.RepulsionK)
	}
	gradient := func() []geom.Vec3 {
		dEdx, _ := sys.EnergyGradients(radii)
		addRepulsionGradient(work, cfg.RepulsionK, dEdx)
		return dEdx
	}

	epol, rep := energy()
	prevTotal := epol + rep
	eta := cfg.StepSize
	for step := 1; step <= cfg.Steps; step++ {
		grad := gradient()
		rms := gradRMS(grad)
		if rms < cfg.Tol {
			trace.Converged = true
			break
		}
		// Normalize so eta is a physical displacement of the steepest
		// atom.
		maxG := 0.0
		for _, g := range grad {
			if n := g.Norm(); n > maxG {
				maxG = n
			}
		}
		// Backtracking line search on the total energy.
		saved := snapshot(work)
		accepted := false
		for try := 0; try < 12; try++ {
			scale := eta / maxG
			for i := range work.Atoms {
				work.Atoms[i].Pos = saved[i].Sub(grad[i].Scale(scale))
			}
			// Moving atoms invalidates the prepared system: rebuild it
			// for the trial energy (radii stay frozen for the epoch).
			surf, err := surface.Build(work, surfCfg)
			if err != nil {
				return nil, err
			}
			sys, err = gb.NewSystem(work, surf, params)
			if err != nil {
				return nil, err
			}
			epol, rep = energy()
			if epol+rep < prevTotal {
				accepted = true
				eta *= 1.1
				break
			}
			eta /= 2
		}
		if !accepted {
			restore(work, saved)
			break
		}
		prevTotal = epol + rep
		trace.Steps = append(trace.Steps, Step{
			Index: step, Epol: epol, Repulsion: rep, Total: prevTotal,
			GradientRMS: rms, StepSize: eta / 1.1,
		})
		if step%cfg.RadiiRefresh == 0 {
			if err := refresh(); err != nil {
				return nil, err
			}
			e2, r2 := energy()
			prevTotal = e2 + r2
		}
	}
	trace.Final = work
	return trace, nil
}

func snapshot(m *molecule.Molecule) []geom.Vec3 {
	out := make([]geom.Vec3, len(m.Atoms))
	for i, a := range m.Atoms {
		out[i] = a.Pos
	}
	return out
}

func restore(m *molecule.Molecule, pos []geom.Vec3) {
	for i := range m.Atoms {
		m.Atoms[i].Pos = pos[i]
	}
}

func gradRMS(grad []geom.Vec3) float64 {
	s := 0.0
	for _, g := range grad {
		s += g.Norm2()
	}
	return math.Sqrt(s / float64(len(grad)))
}

// repulsionOverlap is the pair distance fraction below which the
// soft-sphere term engages.
const repulsionOverlap = 0.8

// repulsionEnergy is the soft-sphere clash penalty Σ k·max(0, σ−d)² with
// σ = 0.8(rᵢ+rⱼ), evaluated over a cell grid.
func repulsionEnergy(m *molecule.Molecule, k float64) float64 {
	positions := m.Positions()
	maxR := m.MaxRadius()
	grid := nblist.NewCellGrid(positions, 2*maxR)
	e := 0.0
	for i, a := range m.Atoms {
		grid.ForEachWithin(a.Pos, repulsionOverlap*(a.Radius+maxR), func(j int) bool {
			if j <= i {
				return true
			}
			sigma := repulsionOverlap * (a.Radius + m.Atoms[j].Radius)
			d := a.Pos.Dist(positions[j])
			if d < sigma {
				e += k * (sigma - d) * (sigma - d)
			}
			return true
		})
	}
	return e
}

// addRepulsionGradient accumulates the clash-penalty gradient into dEdx.
func addRepulsionGradient(m *molecule.Molecule, k float64, dEdx []geom.Vec3) {
	positions := m.Positions()
	maxR := m.MaxRadius()
	grid := nblist.NewCellGrid(positions, 2*maxR)
	for i, a := range m.Atoms {
		grid.ForEachWithin(a.Pos, repulsionOverlap*(a.Radius+maxR), func(j int) bool {
			if j <= i {
				return true
			}
			sigma := repulsionOverlap * (a.Radius + m.Atoms[j].Radius)
			diff := a.Pos.Sub(positions[j])
			d := diff.Norm()
			if d >= sigma || d == 0 {
				return true
			}
			// ∂/∂xᵢ k(σ−d)² = −2k(σ−d)·d̂.
			g := diff.Scale(-2 * k * (sigma - d) / d)
			dEdx[i] = dEdx[i].Add(g)
			dEdx[j] = dEdx[j].Sub(g)
			return true
		})
	}
}
