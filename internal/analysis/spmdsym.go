package analysis

import (
	"go/ast"
	"go/types"
)

// collectiveNames are the simmpi.Comm methods every rank must call in the
// same sequence.
var collectiveNames = map[string]bool{
	"Barrier":    true,
	"Bcast":      true,
	"Reduce":     true,
	"Allreduce":  true,
	"Gather":     true,
	"Allgatherv": true,
}

// SPMDSym flags simmpi collective calls reachable only under
// rank-dependent conditionals — the classic SPMD-mismatch deadlock: if
// rank 0 enters a Barrier the other ranks skip, the world hangs (or, with
// the fault runtime, aborts). Point-to-point calls (Send/Recv) under rank
// conditionals are normal master/worker structure and are not flagged;
// only the collectives must be symmetric.
//
// Rank dependence is tracked per function: the condition of an if/switch
// is rank-dependent when it mentions a call to (*simmpi.Comm).Rank or a
// local variable (transitively) assigned from one.
//
// A rank-dependent branch is still symmetric when every path through it
// issues the same collective sequence — the master/worker Allgatherv
// idiom (`if rank > 0 { c.Allgatherv(seg) } else { c.Allgatherv(nil) }`)
// is legal SPMD. An if with both branches carrying identical collective
// sequences, or a switch whose every case (default included) does, is
// therefore not flagged; only branches where some rank would skip or
// reorder a collective are.
var SPMDSym = &Analyzer{
	Name: "spmdsym",
	Doc:  "collective calls guarded by rank-dependent conditionals break SPMD symmetry",
	Run:  runSPMDSym,
}

func runSPMDSym(pass *Pass) {
	info := pass.Pkg.Info
	walkFuncs(pass.Pkg, func(body *ast.BlockStmt) {
		tainted := rankTaintedVars(info, body)
		taintedExpr := func(e ast.Expr) bool {
			found := false
			ast.Inspect(e, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if v, ok := info.Uses[n].(*types.Var); ok && tainted[v] {
						found = true
					}
				case *ast.CallExpr:
					if isMethodOn(info, n, "internal/simmpi", "Comm", map[string]bool{"Rank": true}) {
						found = true
					}
				}
				return !found
			})
			return found
		}

		var walk func(n ast.Node, rankCond bool)
		walkAll := func(rankCond bool, nodes ...ast.Node) {
			for _, n := range nodes {
				if n != nil {
					walk(n, rankCond)
				}
			}
		}
		walk = func(n ast.Node, rankCond bool) {
			switch n := n.(type) {
			case nil:
				return
			case *ast.IfStmt:
				walkAll(rankCond, n.Init, n.Cond)
				inner := rankCond
				if !inner && taintedExpr(n.Cond) && !ifSymmetric(info, n) {
					inner = true
				}
				walkAll(inner, n.Body, n.Else)
			case *ast.SwitchStmt:
				walkAll(rankCond, n.Init, n.Tag)
				tainted := n.Tag != nil && taintedExpr(n.Tag)
				if !tainted && n.Body != nil {
					for _, cc := range n.Body.List {
						for _, e := range cc.(*ast.CaseClause).List {
							if taintedExpr(e) {
								tainted = true
							}
						}
					}
				}
				inner := rankCond
				if !inner && tainted && !switchSymmetric(info, n) {
					inner = true
				}
				walkAll(inner, n.Body)
			case *ast.ForStmt:
				walkAll(rankCond, n.Init, n.Post)
				inner := rankCond || (n.Cond != nil && taintedExpr(n.Cond))
				walkAll(inner, n.Cond, n.Body)
			case *ast.CallExpr:
				if rankCond && isMethodOn(info, n, "internal/simmpi", "Comm", collectiveNames) {
					name := calleeFunc(info, n).Name()
					pass.Reportf(n.Pos(),
						"collective %s is only reached under a rank-dependent condition: every rank must execute the same collective sequence or the world deadlocks", name)
				}
				for _, child := range n.Args {
					walk(child, rankCond)
				}
				walk(n.Fun, rankCond)
			default:
				// Generic traversal preserving the rankCond flag.
				ast.Inspect(n, func(c ast.Node) bool {
					if c == nil || c == n {
						return true
					}
					walk(c, rankCond)
					return false
				})
			}
		}
		walk(body, false)
	})
}

// collectiveSeq returns the ordered collective method names invoked in a
// subtree (nil-safe). Calls inside nested function literals count too —
// conservative, but a closure issuing collectives inside one branch is
// already suspect.
func collectiveSeq(info *types.Info, n ast.Node) []string {
	var seq []string
	if n == nil {
		return seq
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if isMethodOn(info, call, "internal/simmpi", "Comm", collectiveNames) {
				seq = append(seq, calleeFunc(info, call).Name())
			}
		}
		return true
	})
	return seq
}

func seqEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ifSymmetric reports whether a rank-dependent if issues the same
// collective sequence on both paths. A missing else is the empty
// sequence, so `if rank == 0 { c.Barrier() }` stays asymmetric.
func ifSymmetric(info *types.Info, n *ast.IfStmt) bool {
	var elseSeq []string
	if n.Else != nil {
		elseSeq = collectiveSeq(info, n.Else)
	}
	return seqEqual(collectiveSeq(info, n.Body), elseSeq)
}

// switchSymmetric reports whether every path through a rank-dependent
// switch issues the same collective sequence. Without a default clause
// the fall-through path is the empty sequence and must match too.
func switchSymmetric(info *types.Info, n *ast.SwitchStmt) bool {
	if n.Body == nil {
		return true
	}
	hasDefault := false
	var ref []string
	first := true
	for _, stmt := range n.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		seq := collectiveSeq(info, &ast.BlockStmt{List: cc.Body})
		if first {
			ref, first = seq, false
		} else if !seqEqual(ref, seq) {
			return false
		}
	}
	if !hasDefault && len(ref) > 0 {
		return false
	}
	return true
}

// rankTaintedVars computes the local variables whose value derives from
// (*simmpi.Comm).Rank within one function body, by fixpoint over simple
// assignments.
func rankTaintedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	tainted := make(map[*types.Var]bool)
	exprTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if v, ok := info.Uses[n].(*types.Var); ok && tainted[v] {
					found = true
				}
			case *ast.CallExpr:
				if isMethodOn(info, n, "internal/simmpi", "Comm", map[string]bool{"Rank": true}) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	lhsVar := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		v, _ := info.Uses[id].(*types.Var)
		return v
	}
	for iter := 0; iter < 8; iter++ {
		changed := false
		mark := func(v *types.Var) {
			if v != nil && !tainted[v] {
				tainted[v] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					if exprTainted(n.Rhs[0]) {
						for _, l := range n.Lhs {
							mark(lhsVar(l))
						}
					}
					return true
				}
				for i, l := range n.Lhs {
					if i < len(n.Rhs) && exprTainted(n.Rhs[i]) {
						mark(lhsVar(l))
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						rhsTainted := false
						if len(vs.Values) == 1 && len(vs.Names) > 1 {
							rhsTainted = exprTainted(vs.Values[0])
						} else if i < len(vs.Values) {
							rhsTainted = exprTainted(vs.Values[i])
						}
						if rhsTainted {
							if v, ok := info.Defs[name].(*types.Var); ok {
								mark(v)
							}
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return tainted
}
