package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree writes a file under root, creating parents.
func writeTree(t *testing.T, root, rel, src string) {
	t.Helper()
	p := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// brokenTestdataSrc would fail type-checking (and, were it ever
// loaded, carry findings) — reaching it at all is the regression.
const brokenTestdataSrc = "package broken\n\nfunc Bad() int { return undefinedSymbol }\n"

// TestLoadModuleSkipsNestedTestdata: testdata trees at any depth never
// become module packages — the module walk must neither fail on their
// (corpus-import-path) sources nor surface findings from them.
func TestLoadModuleSkipsNestedTestdata(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, "go.mod", "module tdmod\n\ngo 1.24\n")
	writeTree(t, root, "kern/kern.go", "package kern\n\n// Double doubles.\nfunc Double(x int) int { return 2 * x }\n")
	writeTree(t, root, "kern/testdata/src/broken/broken.go", brokenTestdataSrc)
	writeTree(t, root, "testdata/top.go", brokenTestdataSrc)

	l := NewLoader()
	pkgs, err := l.LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule walked into a testdata tree: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "tdmod/kern" {
		var paths []string
		for _, p := range pkgs {
			paths = append(paths, p.Path)
		}
		t.Fatalf("loaded %v, want exactly [tdmod/kern]", paths)
	}
	if findings := Analyze(l.Fset, pkgs, All); len(findings) != 0 {
		t.Fatalf("testdata sources leaked findings into the module run: %v", findings)
	}
}

// TestLoadDirsSkipsNestedTestdata: a directory loaded directly (the
// gblint corpus path) contributes only its own files; a nested
// testdata tree below it stays invisible.
func TestLoadDirsSkipsNestedTestdata(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, "ok.go", "package ok\n\n// Id is the identity.\nfunc Id(x int) int { return x }\n")
	writeTree(t, dir, "testdata/broken.go", brokenTestdataSrc)

	l := NewLoader()
	pkgs, err := l.LoadDirs(map[string]string{"corpus/ok": dir})
	if err != nil {
		t.Fatalf("LoadDirs reached into the nested testdata tree: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("loaded %d packages / %d files, want exactly 1 package with 1 file",
			len(pkgs), len(pkgs[0].Files))
	}
	if findings := Analyze(l.Fset, pkgs, All); len(findings) != 0 {
		t.Fatalf("nested testdata leaked findings: %v", findings)
	}
}
