package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural substrate of the suite: a module-local
// call graph built on go/types, shared by the analyzers that must see
// across function boundaries (collectivesym, ctxflow). The graph is
// deliberately conservative rather than clever:
//
//   - static calls to package-level functions resolve to their nodes;
//   - method calls resolve when the receiver's static type is concrete
//     (go/types already gives us the *types.Func); interface-method
//     calls do NOT resolve — the edge is recorded as unknown;
//   - function values resolve through one level of local assignment:
//     a local variable assigned exactly once from a function literal, a
//     package function, or a concrete method value (f := helper,
//     f := c.Barrier, f := func() {...}) routes calls of f to that
//     target. Reassigned or escaping variables are unknown;
//   - calls into packages outside the loaded set (the standard library)
//     have no bodies here and resolve to nil callees; analyzers decide
//     what that means (collectivesym: stdlib cannot call simmpi, so the
//     effect is empty; the Unknown flag still records the blind spot).
//
// Every unresolved call marks the calling node Unknown, so analyzers can
// surface (or at least account for) their blind spots instead of
// silently treating them as no-ops.

// CGNode is one function in the call graph: a declared function or
// method (Decl != nil) or a function literal (Lit != nil).
type CGNode struct {
	// Func is the types object for declared functions; nil for literals.
	Func *types.Func
	// Decl / Lit hold the syntax (exactly one is non-nil).
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Pkg is the package the function's body lives in.
	Pkg *Package
	// Calls are the node's call sites in source order.
	Calls []CGEdge
	// Unknown records that the node makes at least one call the graph
	// could not resolve to a module-local body (interface dispatch,
	// escaping function value, or a callee outside the loaded set).
	Unknown bool
	// scc is the node's strongly-connected-component index; components
	// are numbered in reverse topological order (callees before callers)
	// by condense.
	scc int
}

// Name returns a human-readable name: "pkg.Func", "(pkg.T).Method", or
// "func literal" for anonymous functions.
func (n *CGNode) Name() string {
	if n.Func == nil {
		return "func literal"
	}
	sig := n.Func.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + n.Func.Name()
		}
	}
	return n.Func.Name()
}

// Body returns the function's block statement.
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// CGEdge is one call site.
type CGEdge struct {
	// Call is the call expression.
	Call *ast.CallExpr
	// Callee is the resolved target, nil when unresolved.
	Callee *CGNode
}

// CallGraph is the module-local call graph over a set of loaded packages.
type CallGraph struct {
	// Nodes maps declared functions and methods to their nodes.
	Nodes map[*types.Func]*CGNode
	// Lits maps function literals to their (synthetic) nodes.
	Lits map[*ast.FuncLit]*CGNode
	// ordered holds every node in a deterministic order (file position).
	ordered []*CGNode
	// sccs holds the strongly connected components in reverse topological
	// order: every call from sccs[i] lands in sccs[j] with j <= i.
	sccs [][]*CGNode
}

// All returns every node in deterministic (position) order.
func (g *CallGraph) All() []*CGNode { return g.ordered }

// SCCs returns the strongly connected components in bottom-up order
// (callees before callers); mutually recursive functions share a
// component. Analyzers compute summaries by iterating components in
// this order, fixpointing within each component.
func (g *CallGraph) SCCs() [][]*CGNode { return g.sccs }

// SameSCC reports whether two nodes are mutually recursive.
func (g *CallGraph) SameSCC(a, b *CGNode) bool { return a.scc == b.scc }

// buildCallGraph constructs the graph for a package set.
func buildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes: make(map[*types.Func]*CGNode),
		Lits:  make(map[*ast.FuncLit]*CGNode),
	}
	// Pass 1: create nodes for every declared function/method and every
	// function literal, so edges can resolve forward references.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.Nodes[fn] = &CGNode{Func: fn, Decl: fd, Pkg: pkg}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					g.Lits[lit] = &CGNode{Lit: lit, Pkg: pkg}
				}
				return true
			})
		}
	}
	// Pass 2: resolve call edges within each body.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, _ := pkg.Info.Defs[fd.Name].(*types.Func); fn != nil {
						g.addEdges(g.Nodes[fn], pkg, fd.Body)
					}
				}
			}
		}
	}
	for lit, node := range g.Lits {
		g.addEdges(node, node.Pkg, lit.Body)
	}
	// Deterministic order, then condense.
	for _, n := range g.Nodes {
		g.ordered = append(g.ordered, n)
	}
	for _, n := range g.Lits {
		g.ordered = append(g.ordered, n)
	}
	sort.Slice(g.ordered, func(i, j int) bool {
		return g.ordered[i].posKey(fset) < g.ordered[j].posKey(fset)
	})
	g.condense()
	return g
}

// posKey orders nodes by file then offset.
func (n *CGNode) posKey(fset *token.FileSet) string {
	var pos token.Position
	if n.Decl != nil {
		pos = fset.Position(n.Decl.Pos())
	} else {
		pos = fset.Position(n.Lit.Pos())
	}
	return pos.Filename + "\x00" + fixedWidth(pos.Offset)
}

// fixedWidth renders an offset sortable as a string.
func fixedWidth(off int) string {
	buf := [12]byte{'0', '0', '0', '0', '0', '0', '0', '0', '0', '0', '0', '0'}
	for i := len(buf) - 1; off > 0 && i >= 0; i-- {
		buf[i] = byte('0' + off%10)
		off /= 10
	}
	return string(buf[:])
}

// addEdges walks one body, skipping nested literals (they are their own
// nodes; the enclosing function gets an edge only where the literal is
// actually called or locally bound and called).
func (g *CallGraph) addEdges(node *CGNode, pkg *Package, body *ast.BlockStmt) {
	info := pkg.Info
	binds := localFuncBindings(info, body, g)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				if c != n {
					return false // nested literal: its calls belong to its own node
				}
			case *ast.CallExpr:
				g.addCall(node, pkg, c, binds)
			}
			return true
		})
	}
	walk(body)
}

// addCall resolves one call expression to an edge.
func (g *CallGraph) addCall(node *CGNode, pkg *Package, call *ast.CallExpr, binds map[*types.Var]*CGNode) {
	info := pkg.Info
	fun := ast.Unparen(call.Fun)

	// Conversions and builtins are not calls for the graph's purposes.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}

	// Immediately-invoked literal: func(){...}().
	if lit, ok := fun.(*ast.FuncLit); ok {
		node.Calls = append(node.Calls, CGEdge{Call: call, Callee: g.Lits[lit]})
		return
	}

	// Static function or concrete-receiver method call.
	if f := calleeFunc(info, call); f != nil {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				// Interface dispatch: target unknowable.
				node.Unknown = true
				node.Calls = append(node.Calls, CGEdge{Call: call})
				return
			}
		}
		if target, ok := g.Nodes[f]; ok {
			node.Calls = append(node.Calls, CGEdge{Call: call, Callee: target})
		} else {
			// Outside the loaded set (standard library): no body here.
			node.Calls = append(node.Calls, CGEdge{Call: call})
			node.Unknown = true
		}
		return
	}

	// Call through a variable: resolve single-assignment local bindings.
	if id, ok := fun.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			if target, ok := binds[v]; ok && target != nil {
				node.Calls = append(node.Calls, CGEdge{Call: call, Callee: target})
				return
			}
		}
	}
	node.Calls = append(node.Calls, CGEdge{Call: call})
	node.Unknown = true
}

// localFuncBindings maps local variables bound exactly once to a
// resolvable function value — a literal (f := func(){...}), a package
// function (f := helper), or a concrete method value (f := c.Barrier).
// A variable assigned more than once, or assigned anything else, maps to
// nil (explicitly unknown).
func localFuncBindings(info *types.Info, body *ast.BlockStmt, g *CallGraph) map[*types.Var]*CGNode {
	binds := make(map[*types.Var]*CGNode)
	seen := make(map[*types.Var]int)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v, _ := info.Defs[id].(*types.Var)
		if v == nil {
			v, _ = info.Uses[id].(*types.Var)
		}
		if v == nil {
			return
		}
		seen[v]++
		if seen[v] > 1 {
			binds[v] = nil // reassigned: unknown
			return
		}
		binds[v] = resolveFuncValue(info, rhs, g)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if isFuncValued(info, n.Rhs[i]) {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						if isFuncValued(info, vs.Values[i]) {
							record(vs.Names[i], vs.Values[i])
						}
					}
				}
			}
		}
		return true
	})
	return binds
}

// isFuncValued reports whether an expression has function type.
func isFuncValued(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// resolveFuncValue resolves a function-valued expression to a node:
// literals, package-function references, and concrete method values.
// Anything else (parameters, results of calls, interface method values)
// returns nil.
func resolveFuncValue(info *types.Info, e ast.Expr, g *CallGraph) *CGNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.Lits[e]
	case *ast.Ident:
		if f, ok := info.Uses[e].(*types.Func); ok {
			return g.Nodes[f]
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			if f, ok := sel.Obj().(*types.Func); ok {
				return g.Nodes[f]
			}
		}
		// Qualified package function: pkg.Func.
		if f, ok := info.Uses[e.Sel].(*types.Func); ok {
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() == nil {
				return g.Nodes[f]
			}
		}
	}
	return nil
}

// condense computes strongly connected components with Tarjan's
// algorithm (iterative, so deep module call chains cannot overflow the
// goroutine stack) and stores them in reverse topological order.
func (g *CallGraph) condense() {
	index := make(map[*CGNode]int)
	low := make(map[*CGNode]int)
	onStack := make(map[*CGNode]bool)
	var stack []*CGNode
	next := 0

	type frame struct {
		node *CGNode
		edge int
	}
	for _, root := range g.ordered {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{node: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			advanced := false
			for f.edge < len(f.node.Calls) {
				e := f.node.Calls[f.edge]
				f.edge++
				w := e.Callee
				if w == nil {
					continue
				}
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{node: w})
					advanced = true
					break
				} else if onStack[w] && low[f.node] > index[w] {
					low[f.node] = index[w]
				}
			}
			if advanced {
				continue
			}
			v := f.node
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if low[parent] > low[v] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []*CGNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				for _, m := range comp {
					m.scc = len(g.sccs)
				}
				g.sccs = append(g.sccs, comp)
			}
		}
	}
}
