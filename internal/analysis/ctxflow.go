package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow polices cooperative cancellation — the invariant the serving
// layer's graceful drain (PR 6) depends on and, before this analyzer,
// enforced only by convention. A function *receives a context* when a
// parameter or receiver is a context.Context, or is a struct (or
// pointer to one) carrying a context.Context field — gb.RunSpec.Ctx and
// supervise.Spec.Context are the module's two such structs, but the
// rule is structural so corpus and future specs match too. In every
// such function:
//
//  1. blocking operations reachable without a ctx.Done() select are
//     flagged: bare channel sends and receives (including ranging over
//     a channel), time.Sleep, simmpi's blocking Recv and collectives,
//     and sync.WaitGroup.Wait. A send/receive appearing as a case of a
//     select that also has a ctx.Done() case (or a default) is guarded
//     and clean. Calls to module-local functions that themselves block
//     unguarded — and do NOT receive a context to do better — are
//     flagged at the call site (one level through the call graph: the
//     callee is where the fix belongs, the caller is where the context
//     was available);
//  2. calls that pass context.Background() or context.TODO() are
//     flagged: a context is in scope, so starting a fresh root silently
//     disconnects the callee from cancellation.
//
// Blocking operations inside nested function literals are attributed to
// the literal, not the enclosing function: a goroutine body is its own
// cancellation domain (the module's rank workers observe cancellation
// cooperatively at phase boundaries instead). Functions that do not
// receive a context are not policed — they have no ctx to select on.
// Where blocking is the contract (a drain that must wait for workers),
// a //lint:ignore ctxflow directive with the reason documents it.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "unguarded blocking and dropped contexts in context-receiving functions",
	Run:  runCtxFlow,
}

// ctxSummary records whether a node receives a context and whether its
// own body (literals excluded) contains an unguarded blocking
// operation.
type ctxSummary struct {
	receivesCtx bool
	// blocks describes the node's first unguarded blocking operation,
	// "" when none.
	blocks string
}

// ctxSummaries computes (once per Program) every node's summary.
func (p *Program) ctxSummaries() map[*CGNode]*ctxSummary {
	p.ctxOnce.Do(func() {
		g := p.CallGraph()
		sums := make(map[*CGNode]*ctxSummary, len(g.All()))
		for _, n := range g.All() {
			sums[n] = &ctxSummary{receivesCtx: receivesContext(n)}
		}
		for _, n := range g.All() {
			walkBlockingOps(n, func(_ ast.Node, desc string) {
				if sums[n].blocks == "" {
					sums[n].blocks = desc
				}
			})
		}
		p.ctxSums = sums
	})
	return p.ctxSums
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// carriesContext reports whether t is a context, or a struct (or
// pointer to one) with a context-typed field, one level deep.
func carriesContext(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// receivesContext reports whether a node's parameters or receiver carry
// a context.
func receivesContext(n *CGNode) bool {
	sig := nodeSignature(n.Pkg.Info, n)
	if sig == nil {
		return false
	}
	if recv := sig.Recv(); recv != nil && carriesContext(recv.Type()) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if carriesContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// walkBlockingOps visits every unguarded blocking operation in a node's
// own body (nested literals excluded — they are their own nodes). The
// guardedComm flag covers exactly the communication operation of a
// select clause whose select can always proceed (a ctx.Done() case or a
// default); nothing below that operation inherits the guard.
func walkBlockingOps(n *CGNode, visit func(at ast.Node, desc string)) {
	info := n.Pkg.Info
	var walk func(node ast.Node, guardedComm bool)
	walkChildren := func(node ast.Node) {
		ast.Inspect(node, func(c ast.Node) bool {
			if c == nil || c == node {
				return true
			}
			walk(c, false)
			return false
		})
	}
	walk = func(node ast.Node, guardedComm bool) {
		switch x := node.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // its own cancellation domain
		case *ast.SelectStmt:
			guarded := selectGuarded(info, x)
			for _, cl := range x.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm != nil {
					walk(cc.Comm, guarded)
				}
				for _, b := range cc.Body {
					walk(b, false)
				}
			}
			return
		case *ast.SendStmt:
			if !guardedComm {
				visit(x, "channel send")
			}
			walk(x.Chan, false)
			walk(x.Value, false)
			return
		case *ast.AssignStmt:
			if guardedComm {
				// A select case of the form `v := <-ch:` — the receive
				// itself is guarded; its operands are not.
				for _, l := range x.Lhs {
					walk(l, false)
				}
				for _, r := range x.Rhs {
					if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						walk(u.X, false)
						continue
					}
					walk(r, false)
				}
				return
			}
		case *ast.ExprStmt:
			if guardedComm {
				if u, ok := ast.Unparen(x.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					walk(u.X, false)
					return
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if !guardedComm && !isDoneRecv(info, x) {
					visit(x, "channel receive")
				}
				walk(x.X, false)
				return
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					visit(x, "range over channel")
				}
			}
		case *ast.CallExpr:
			if desc := blockingCall(info, x); desc != "" {
				visit(x, desc)
			}
		}
		walkChildren(node)
	}
	walk(n.Body(), false)
}

// selectGuarded reports whether a select can always proceed: it has a
// default clause or a <-ctx.Done() case.
func selectGuarded(info *types.Info, s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default
		}
		found := false
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op.String() == "<-" && isDoneRecv(info, u) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isDoneRecv reports whether a receive reads a context's Done channel.
func isDoneRecv(info *types.Info, u *ast.UnaryExpr) bool {
	call, ok := ast.Unparen(u.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && isContextType(t)
}

// simmpiBlocking are the Comm methods that block until every (live)
// rank arrives or a message lands: the collectives plus the bare Recv.
// RecvTimeout and TryRecv are the non-blocking escape hatches.
var simmpiBlocking = map[string]bool{
	"Recv": true, "Barrier": true, "Sync": true, "Bcast": true,
	"Reduce": true, "Allreduce": true, "Gather": true, "Allgatherv": true,
}

// blockingCall classifies a call as a known blocking primitive.
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	if isPkgFunc(info, call, "time", "Sleep") {
		return "time.Sleep"
	}
	if isMethodOn(info, call, "internal/simmpi", "Comm", simmpiBlocking) {
		return "simmpi blocking " + calleeFunc(info, call).Name()
	}
	if f := calleeFunc(info, call); f != nil && f.Name() == "Wait" {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				if obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
					return "sync.WaitGroup.Wait"
				}
			}
		}
	}
	return ""
}

// isFreshRootCtx reports whether an expression is context.Background()
// or context.TODO().
func isFreshRootCtx(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" {
		return "", false
	}
	if f.Name() == "Background" || f.Name() == "TODO" {
		return "context." + f.Name(), true
	}
	return "", false
}

func runCtxFlow(pass *Pass) {
	sums := pass.Prog.ctxSummaries()
	info := pass.Pkg.Info
	for _, n := range pass.Prog.CallGraph().All() {
		if n.Pkg != pass.Pkg || !sums[n].receivesCtx {
			continue
		}
		// 1a: direct unguarded blocking operations.
		walkBlockingOps(n, func(at ast.Node, desc string) {
			pass.Reportf(at.Pos(),
				"%s in a context-receiving function is not guarded by a ctx.Done() select: cancellation cannot interrupt it", desc)
		})
		// 1b: calls into module-local callees that block unguarded and
		// have no context of their own to do better.
		for _, e := range n.Calls {
			if e.Callee == nil {
				continue
			}
			cs := sums[e.Callee]
			if cs.blocks != "" && !cs.receivesCtx {
				pass.Reportf(e.Call.Pos(),
					"call blocks (%s inside %s) with no way to observe the context in scope: thread the context or guard the callee",
					cs.blocks, e.Callee.Name())
			}
		}
		// 2: dropped contexts.
		ast.Inspect(n.Body(), func(c ast.Node) bool {
			if lit, ok := c.(*ast.FuncLit); ok && lit.Body != n.Body() {
				return false
			}
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, a := range call.Args {
				if name, ok := isFreshRootCtx(info, a); ok {
					pass.Reportf(a.Pos(),
						"%s passed while a context is in scope: the callee is silently disconnected from cancellation", name)
				}
			}
			return true
		})
	}
}
