package analysis

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point operands. Energies and
// radii emerge from long non-associative reductions; exact comparison is
// either a latent bug or an undocumented bitwise contract — the latter
// should spell itself out via math.Float64bits (as the determinism tests
// do). Comparisons against the exact constant 0 are permitted: zero is
// exactly representable and the repo uses it pervasively as the "field
// unset" sentinel in config structs.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "float64 compared with == or !=",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := info.TypeOf(be.X), info.TypeOf(be.Y)
			if xt == nil || yt == nil || (!isFloatType(xt) && !isFloatType(yt)) {
				return true
			}
			if isExactZero(info, be.X) || isExactZero(info, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point values compared with %s: use a tolerance, or math.Float64bits for an explicit bitwise contract", be.Op)
			return true
		})
	}
}
