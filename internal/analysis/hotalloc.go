package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc polices per-iteration heap allocation in the hot numeric
// packages — the ns/op floor the bench trajectory gates (ROADMAP item 5)
// is lost one `make` at a time, and benchdiff only catches the
// regression after it ships. Inside every loop body in a hot package it
// reports:
//
//   - make calls (slice, map, or channel built fresh each iteration);
//   - append calls whose destination was not preallocated with a
//     capacity (`make(T, n)` / `make(T, 0, c)`) in the enclosing
//     function — append into a preallocated buffer is the idiom the
//     kernels are supposed to use. Preallocation is recognized through
//     plain variables, struct fields (`s.buf = make(...)` and
//     `&T{buf: make(...)}` construction), and the caller-owns-buffer
//     idiom: appending to a slice-typed *parameter* is the callee
//     honoring the caller's allocation decision, so the caller is where
//     a finding belongs;
//   - slice and map composite literals, and &T{...} pointer literals
//     (value struct literals are free: they live in registers or on the
//     stack);
//   - implicit interface conversions at call sites: a concrete
//     non-pointer value passed to an interface parameter boxes on the
//     heap. Pointer-shaped values (pointers, chans, maps, funcs) fit
//     the interface word and are exempt, as are variadic ...any sinks
//     (log/error formatting is policed by perf budgets, not here);
//   - function literals that capture outer variables (the closure cell
//     allocates each iteration; capture-free literals are hoisted by
//     the compiler and exempt). The literal's own body is then analyzed
//     as a function in its own right — the work-stealing worker bodies
//     hold the innermost kernel loops;
//   - string concatenation (+ or += on strings builds a fresh backing
//     array every iteration).
//
// One structural exemption: an allocation stored straight into a
// field, map entry, or slice element (`s.Hists[name] = make(...)`,
// `p.workers[i] = &Worker{...}`) is *construction* — the loop's product
// is N live objects, not N pieces of garbage — and is not reported.
// Intentional per-iteration allocation that remains — wire-message
// literals, spawn closures, growth whose bound is genuinely unknown —
// is documented in place with //lint:ignore hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "per-iteration heap allocation in hot-package loop bodies",
	Run:  runHotAlloc,
}

// hotPkgSuffixes are the packages hotalloc polices: the inner-loop
// compute kernels plus the scheduler that drives them. This is
// deliberately narrower than kernelPkgSuffixes — bench, molecule, perf,
// and obs allocate by design (setup, parsing, rendering) and gating
// them would bury the signal (see DESIGN.md §"Static invariants").
var hotPkgSuffixes = []string{
	"internal/gb",
	"internal/octree",
	"internal/quadrature",
	"internal/surface",
	"internal/sched",
}

func isHotPkg(path string) bool {
	for _, s := range hotPkgSuffixes {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) {
	if !isHotPkg(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					hotFunc(pass, info, funcDeclParams(info, d), d.Body)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						ast.Inspect(v, func(n ast.Node) bool {
							if fl, ok := n.(*ast.FuncLit); ok {
								hotFunc(pass, info, funcLitParams(info, fl), fl.Body)
								return false
							}
							return true
						})
					}
				}
			}
		}
	}
}

// hotFunc analyzes one function body: it computes the preallocation set
// (capacity-carrying makes plus the function's own slice parameters),
// then finds the outermost loops and hands them to checkHotLoop, which
// covers everything nested inside.
func hotFunc(pass *Pass, info *types.Info, params map[*types.Var]bool, body *ast.BlockStmt) {
	prealloc := preallocatedSlices(info, body)
	for v := range params {
		prealloc[v] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			checkHotLoop(pass, info, l.Body, prealloc)
			return false
		case *ast.RangeStmt:
			checkHotLoop(pass, info, l.Body, prealloc)
			return false
		case *ast.FuncLit:
			if l.Body != body {
				// A literal outside any loop runs once per call of the
				// enclosing function; its loops are hot in their own
				// right.
				hotFunc(pass, info, funcLitParams(info, l), l.Body)
				return false
			}
		}
		return true
	})
}

// funcDeclParams returns the slice-typed parameters of a declaration —
// append targets the caller chose to (or not to) preallocate.
func funcDeclParams(info *types.Info, d *ast.FuncDecl) map[*types.Var]bool {
	return fieldListParams(info, d.Type)
}

func funcLitParams(info *types.Info, l *ast.FuncLit) map[*types.Var]bool {
	return fieldListParams(info, l.Type)
}

func fieldListParams(info *types.Info, ft *ast.FuncType) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	if ft == nil || ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
					out[v] = true
				}
			}
		}
	}
	return out
}

// preallocatedSlices returns the set of variables and struct fields
// bound (anywhere in the function) to a make call that states a length
// or capacity — the "allocate once, append into it" idiom the kernels
// use. Field preallocation is recognized both by assignment
// (`s.buf = make(...)`) and by composite-literal construction
// (`&T{buf: make(...)}`).
func preallocatedSlices(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		if !isCapMake(info, rhs) {
			return
		}
		if v := sliceDestVar(info, lhs); v != nil {
			out[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					record(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					record(s.Names[i], s.Values[i])
				}
			}
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok || !isCapMake(info, kv.Value) {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					if v, ok := info.ObjectOf(key).(*types.Var); ok {
						out[v] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// isCapMake reports whether e is a make call stating a length/capacity.
func isCapMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}

// sliceDestVar resolves an assignment destination to the variable or
// struct field it names: `x`, `s.buf`, or `(s.buf)`.
func sliceDestVar(info *types.Info, lhs ast.Expr) *types.Var {
	switch d := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(d).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.ObjectOf(d.Sel).(*types.Var); ok {
			return v
		}
	}
	return nil
}

// constructionSink reports whether an assignment stores into a field,
// map entry, or slice element — building a persistent structure rather
// than producing per-iteration scratch.
func constructionSink(lhs ast.Expr) bool {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// checkHotLoop reports every per-iteration allocation in a loop body.
// Nested loops are per-iteration too, so the walk descends into them;
// function literals are flagged as closures (when they capture), then
// analyzed as functions in their own right.
func checkHotLoop(pass *Pass, info *types.Info, body *ast.BlockStmt, prealloc map[*types.Var]bool) {
	// Allocations whose assignment destination is a construction sink.
	exempt := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || a.Tok != token.ASSIGN || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i := range a.Lhs {
			if constructionSink(a.Lhs[i]) {
				exempt[ast.Unparen(a.Rhs[i])] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if exempt[n] {
			return true // the sink absolves only the node itself
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			if capturesOuter(info, x) {
				pass.Reportf(x.Pos(), "closure capturing outer variables allocates every iteration; hoist it out of the loop")
			}
			hotFunc(pass, info, funcLitParams(info, x), x.Body)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&composite literal allocates every iteration; hoist it or reuse a buffer")
					// The literal's elements may allocate too, but don't
					// double-report the literal itself.
					for _, el := range lit.Elts {
						checkHotExpr(pass, info, el, prealloc)
					}
					return false
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(x.Pos(), "slice literal allocates every iteration; hoist it out of the loop")
				case *types.Map:
					pass.Reportf(x.Pos(), "map literal allocates every iteration; hoist it out of the loop")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
				pass.Reportf(x.Pos(), "string concatenation allocates every iteration; use a strings.Builder outside the loop")
				return false // one report per concat chain
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(info.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.Pos(), "string += allocates every iteration; use a strings.Builder outside the loop")
			}
		case *ast.CallExpr:
			checkHotCall(pass, info, x, prealloc)
		}
		return true
	})
}

// checkHotExpr runs the loop-body walk over one expression.
func checkHotExpr(pass *Pass, info *types.Info, e ast.Expr, prealloc map[*types.Var]bool) {
	checkHotLoop(pass, info, &ast.BlockStmt{List: []ast.Stmt{&ast.ExprStmt{X: e}}}, prealloc)
}

// checkHotCall handles the call-shaped allocation rules: make, append
// without preallocation, and interface-boxing arguments.
func checkHotCall(pass *Pass, info *types.Info, call *ast.CallExpr, prealloc map[*types.Var]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates every iteration; hoist it out of the loop and reuse the buffer")
				return
			case "append":
				if len(call.Args) > 0 {
					if v := sliceDestVar(info, call.Args[0]); v != nil && prealloc[v] {
						return // append into a preallocated buffer
					}
				}
				pass.Reportf(call.Pos(), "append without preallocated capacity may reallocate every iteration; make the slice with a capacity before the loop")
				return
			}
		}
	}
	// Interface boxing: a concrete non-pointer-shaped argument passed to
	// an interface parameter.
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		if sig.Variadic() && i >= params.Len()-1 {
			break // ...any sinks exempt
		}
		pt := params.At(i).Type()
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || boxingFree(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "concrete value boxed into interface parameter allocates every iteration; pass a pointer or restructure the call")
	}
}

// boxingFree reports whether storing a value of type t in an interface
// avoids a heap allocation: interfaces themselves, and pointer-shaped
// types whose value fits the interface data word.
func boxingFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map,
		*types.Signature:
		return true
	}
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturesOuter reports whether a function literal references a variable
// declared outside its own body (a closure capture).
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// A variable used inside the literal but declared outside it
		// (and not package-scoped — globals are not captured).
		if v.Parent() != nil && v.Pkg() != nil && v.Parent() != v.Pkg().Scope() &&
			!posWithin(v.Pos(), lit.Pos(), lit.End()) {
			captured = true
		}
		return true
	})
	return captured
}

func posWithin(p, lo, hi token.Pos) bool {
	return p >= lo && p <= hi
}
