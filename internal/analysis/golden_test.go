package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// corpusDirs maps the golden corpora onto import paths chosen so the
// path-sensitive analyzers see each package the way they would see the
// real module: the simmpi/fault stubs sit on gbpolar/internal/... paths,
// the determinism corpus on a kernel suffix, the panicfree corpus under
// /internal/, and its command-side negative outside it.
var corpusDirs = map[string]string{
	"gbpolar/internal/simmpi":    "simmpi",
	"gbpolar/internal/fault":     "fault",
	"gbpolar/internal/fault/fs":  "faultfs",
	"errcorp/internal/supervise": "osfiledur",
	"corpus/osfileok":            "osfileok",
	"gbpolar/internal/obs":       "obs",
	"corpus/spmdsym":             "spmdsym",
	"corpus/erretcheck":          "erretcheck",
	"detcorp/internal/gb":        "determinism",
	"corpus/detskip":             "detskip",
	"corpus/internal/panicfree":  "panicfree",
	"corpus/toplevelok":          "toplevelok",
	"corpus/floateq":             "floateq",
	"corpus/ignore":              "ignore",
	"corpus/badignore":           "badignore",
	"corpus/collectivesym":       "collectivesym",
	"corpus/ctxflow":             "ctxflow",
	"hotcorp/internal/gb":        "hotalloc",
	"corpus/hotskip":             "hotskip",
	"corpus/callgraph":           "callgraph",
}

var (
	corpusOnce sync.Once
	corpusFset *token.FileSet
	corpusPkgs map[string]*Package
	corpusErr  error
)

// loadCorpus parses and type-checks every corpus package once per test
// binary; the shared loader also caches type-checked standard-library
// packages across corpora.
func loadCorpus(t *testing.T) (*token.FileSet, map[string]*Package) {
	t.Helper()
	corpusOnce.Do(func() {
		l := NewLoader()
		dirs := make(map[string]string, len(corpusDirs))
		for imp, d := range corpusDirs {
			dirs[imp] = filepath.Join("testdata", "src", d)
		}
		pkgs, err := l.LoadDirs(dirs)
		if err != nil {
			corpusErr = err
			return
		}
		corpusFset = l.Fset
		corpusPkgs = make(map[string]*Package, len(pkgs))
		for _, p := range pkgs {
			corpusPkgs[p.Path] = p
		}
	})
	if corpusErr != nil {
		t.Fatalf("loading corpus: %v", corpusErr)
	}
	return corpusFset, corpusPkgs
}

// want is one expectation parsed from a `// want "substring"` comment.
type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// collectWants scans a corpus directory's sources for want comments.
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	names, err := goSources(dir)
	if err != nil {
		t.Fatalf("listing %s: %v", dir, err)
	}
	var wants []*want
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				wants = append(wants, &want{file: path, line: i + 1, substr: m[1]})
			}
		}
	}
	return wants
}

// TestGolden checks every analyzer against its positive and negative
// corpus: each finding must match a `// want` on its exact line, and
// each want must be hit exactly once.
func TestGolden(t *testing.T) {
	cases := []struct {
		name      string
		pkg       string
		analyzers []*Analyzer
	}{
		{"spmdsym", "corpus/spmdsym", []*Analyzer{SPMDSym}},
		{"erretcheck", "corpus/erretcheck", []*Analyzer{ErrRetCheck}},
		// The os.File durability rule: positives on an import path inside
		// the durability set, and the same shapes clean outside it.
		{"erretcheck-osfile", "errcorp/internal/supervise", []*Analyzer{ErrRetCheck}},
		{"erretcheck-osfile-nondur", "corpus/osfileok", []*Analyzer{ErrRetCheck}},
		{"determinism", "detcorp/internal/gb", []*Analyzer{Determinism}},
		{"determinism-nonkernel", "corpus/detskip", []*Analyzer{Determinism}},
		{"panicfree", "corpus/internal/panicfree", []*Analyzer{PanicFree}},
		{"panicfree-cmd", "corpus/toplevelok", []*Analyzer{PanicFree}},
		{"floateq", "corpus/floateq", []*Analyzer{FloatEq}},
		{"ignore", "corpus/ignore", []*Analyzer{FloatEq}},
		// The interprocedural suite: each corpus holds its positives and
		// their clean negative twins; the hotalloc corpus additionally has
		// a whole-package twin under a non-hot import path.
		{"collectivesym", "corpus/collectivesym", []*Analyzer{CollectiveSym}},
		{"ctxflow", "corpus/ctxflow", []*Analyzer{CtxFlow}},
		{"hotalloc", "hotcorp/internal/gb", []*Analyzer{HotAlloc}},
		{"hotalloc-nonhot", "corpus/hotskip", []*Analyzer{HotAlloc}},
		// The stubs model real packages and must be clean under the full
		// suite — in particular simmpi's rankCrashed panic (the panicfree
		// allowlist) and its error-returning collectives.
		{"stub-simmpi-clean", "gbpolar/internal/simmpi", All},
		{"stub-fault-clean", "gbpolar/internal/fault", All},
		{"stub-faultfs-clean", "gbpolar/internal/fault/fs", All},
		// The obs stub sits on the kernel list: it must be determinism-
		// clean by construction (injected clock, no map-order output).
		{"stub-obs-clean", "gbpolar/internal/obs", All},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, pkgs := loadCorpus(t)
			pkg := pkgs[tc.pkg]
			if pkg == nil {
				t.Fatalf("corpus package %q not loaded", tc.pkg)
			}
			findings := Analyze(fset, []*Package{pkg}, tc.analyzers)
			wants := collectWants(t, pkg.Dir)
			for _, f := range findings {
				ok := false
				for _, w := range wants {
					if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line &&
						strings.Contains(f.Message, w.substr) {
						w.matched = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: no finding containing %q", w.file, w.line, w.substr)
				}
			}
		})
	}
}

// TestMalformedIgnore asserts by hand what a want comment cannot express
// (it would merge into the directive it documents): a reasonless
// //lint:ignore produces a hygiene finding and suppresses nothing.
func TestMalformedIgnore(t *testing.T) {
	fset, pkgs := loadCorpus(t)
	pkg := pkgs["corpus/badignore"]
	if pkg == nil {
		t.Fatal("corpus package corpus/badignore not loaded")
	}
	findings := Analyze(fset, []*Package{pkg}, []*Analyzer{FloatEq})
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (hygiene + unsuppressed floateq):\n%v", len(findings), findings)
	}
	var haveLint, haveFloat bool
	for _, f := range findings {
		switch f.Analyzer {
		case "lint":
			haveLint = strings.Contains(f.Message, "a reason is required")
		case "floateq":
			haveFloat = true
		}
	}
	if !haveLint || !haveFloat {
		t.Errorf("missing expected findings (lint hygiene: %v, floateq: %v):\n%v", haveLint, haveFloat, findings)
	}
}

// TestModuleClean loads the real module through the same path gblint
// uses and requires it to be finding-free — the repo must hold its own
// invariants.
func TestModuleClean(t *testing.T) {
	l := NewLoader()
	pkgs, err := l.LoadModule("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d): module walk is broken", len(pkgs))
	}
	for _, f := range Analyze(l.Fset, pkgs, All) {
		t.Errorf("%s", f)
	}
}
