package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces bitwise reproducibility in the numeric kernel
// packages (internal/gb, octree, quadrature, surface, bench, molecule,
// perf, obs):
//
//   - ranging over a map while accumulating floats or appending to a
//     slice — Go randomizes map iteration order, float addition is not
//     associative, and slice order becomes run-dependent. Appends are
//     tolerated when the same function sorts the slice afterwards.
//   - package-level math/rand calls (rand.Intn, rand.Float64, ...) —
//     these share the globally-seeded source; kernels must thread an
//     explicit rand.New(rand.NewSource(seed)).
//   - time.Now — clock reads belong behind the perf measurement
//     boundary (perf.Stopwatch), never inside kernel math.
//
// The perf package is the measurement boundary itself, so the clock/RNG
// rules skip it; the map-order rule still applies (perf aggregates float
// statistics).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "map-order float accumulation, unseeded RNGs, and clock reads in numeric kernels",
	Run:  runDeterminism,
}

// randAllowed are the receiver-less math/rand functions that construct
// explicitly seeded sources rather than consume the global one.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) {
	path := pass.Pkg.Path
	if !isKernelPkg(path) {
		return
	}
	info := pass.Pkg.Info
	isPerf := hasPathSuffix(path, "internal/perf")

	walkFuncs(pass.Pkg, func(body *ast.BlockStmt) {
		sorted := sortedSlices(info, body)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isMapRange(info, n) {
					checkMapRangeBody(pass, info, n, sorted)
				}
			case *ast.CallExpr:
				if isPerf {
					return true
				}
				if f := calleeFunc(info, n); f != nil && f.Pkg() != nil {
					sig, _ := f.Type().(*types.Signature)
					receiverless := sig != nil && sig.Recv() == nil
					if receiverless && f.Pkg().Path() == "math/rand" && !randAllowed[f.Name()] {
						pass.Reportf(n.Pos(),
							"rand.%s uses the shared global source: kernels must thread an explicit rand.New(rand.NewSource(seed))", f.Name())
					}
				}
				if isPkgFunc(info, n, "time", "Now") {
					pass.Reportf(n.Pos(),
						"time.Now in a numeric kernel: clock reads belong behind the perf measurement boundary (perf.StartTimer)")
				}
			}
			return true
		})
	})
}

// checkMapRangeBody flags float accumulation and unsorted appends inside
// the body of a map-range statement.
func checkMapRangeBody(pass *Pass, info *types.Info, rs *ast.RangeStmt, sorted map[*types.Var]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, l := range as.Lhs {
				if t := info.TypeOf(l); t != nil && isFloatType(t) {
					pass.Reportf(as.Pos(),
						"float accumulation over map iteration: iteration order is randomized and float addition is not associative; iterate sorted keys")
					return true
				}
			}
		case token.ASSIGN, token.DEFINE:
			for i, r := range as.Rhs {
				call, ok := ast.Unparen(r).(*ast.CallExpr)
				if !ok || i >= len(as.Lhs) {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				if v := identVar(info, as.Lhs[i]); v != nil && sorted[v] {
					continue // order restored by a sort.* call in this function
				}
				pass.Reportf(as.Pos(),
					"append inside map iteration yields a run-dependent order; sort the result or iterate sorted keys")
			}
		}
		return true
	})
}

// sortedSlices collects the local variables passed to a sort.* call
// anywhere in the function body — evidence that map-order appends are
// re-ordered before use (the bench IDs() idiom).
func sortedSlices(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil || f.Pkg() == nil || len(call.Args) == 0 {
			return true
		}
		p := f.Pkg().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		if v := identVar(info, call.Args[0]); v != nil {
			out[v] = true
		}
		return true
	})
	return out
}

// identVar resolves an expression to the local/package variable it names,
// or nil for anything more structured.
func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}
