package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicFree forbids panic, log.Fatal*, and os.Exit in library packages
// (import paths containing "/internal/"). The fault runtime propagates
// rank failures as errors so drivers can heal or degrade; a library panic
// or process exit bypasses that machinery and kills the whole simulated
// world. Commands (cmd/*) and examples keep the right to exit.
//
// One allowlisted exception: simmpi's internal rankCrashed control-flow
// panic, which never escapes the package (it is recovered at the worker
// boundary and converted to an error).
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "panic/log.Fatal/os.Exit in library packages",
	Run:  runPanicFree,
}

var logFatalNames = map[string]bool{"Fatal": true, "Fatalf": true, "Fatalln": true}

func runPanicFree(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path, "/internal/") {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if !isRankCrashedPanic(info, call) {
						pass.Reportf(call.Pos(),
							"panic in a library package: return an error so the fault runtime can heal the world")
					}
				}
				return true
			}
			if isPkgFunc(info, call, "os", "Exit") {
				pass.Reportf(call.Pos(),
					"os.Exit in a library package: only commands may terminate the process")
			}
			if f := calleeFunc(info, call); f != nil && f.Pkg() != nil &&
				f.Pkg().Path() == "log" && logFatalNames[f.Name()] {
				pass.Reportf(call.Pos(),
					"log.%s in a library package: log the error and return it instead", f.Name())
			}
			return true
		})
	}
}

// isRankCrashedPanic recognizes simmpi's sanctioned control-flow panic:
// panic(rankCrashed{...}) inside internal/simmpi, recovered before it can
// escape the package.
func isRankCrashedPanic(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	t := info.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "rankCrashed" && obj.Pkg() != nil &&
		hasPathSuffix(obj.Pkg().Path(), "internal/simmpi")
}
