package analysis

import (
	"go/ast"
	"go/types"
)

// errPkgSuffixes are the packages whose error returns exist precisely so
// callers cannot ignore crashes: simmpi's communication errors (rank
// lost, dropped, aborted) and fault's plan parsing/validation.
var errPkgSuffixes = []string{"internal/simmpi", "internal/fault"}

// ErrRetCheck flags calls to simmpi and fault APIs whose error result is
// discarded: expression statements, go/defer statements, and assignments
// that send every error result to the blank identifier. PR 1 made the
// runtime error-returning instead of deadlocking exactly so that drivers
// must observe crashes; dropping the error silently reintroduces the lie.
var ErrRetCheck = &Analyzer{
	Name: "erretcheck",
	Doc:  "ignored error results from simmpi/fault APIs",
	Run:  runErrRetCheck,
}

func runErrRetCheck(pass *Pass) {
	info := pass.Pkg.Info

	// check reports the call if its callee is a simmpi/fault function or
	// method returning an error.
	check := func(call *ast.CallExpr, how string) {
		f := calleeFunc(info, call)
		if f == nil || f.Pkg() == nil {
			return
		}
		match := false
		for _, s := range errPkgSuffixes {
			if hasPathSuffix(f.Pkg().Path(), s) {
				match = true
				break
			}
		}
		if !match {
			return
		}
		sig := f.Type().(*types.Signature)
		if len(errorResultIndices(sig)) == 0 {
			return
		}
		pass.Reportf(call.Pos(), "error result of %s.%s is %s: simmpi/fault errors signal rank loss and must be handled",
			f.Pkg().Name(), f.Name(), how)
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					check(call, "dropped")
				}
			case *ast.GoStmt:
				check(n.Call, "dropped by go statement")
			case *ast.DeferStmt:
				check(n.Call, "dropped by defer")
			case *ast.AssignStmt:
				// x, _ := f() — flag only when every error position is
				// blanked; handling one error result of a multi-error
				// return (none exist today) would still count as handled.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(info, call)
				if f == nil {
					return true
				}
				sig, ok := f.Type().(*types.Signature)
				if !ok {
					return true
				}
				idx := errorResultIndices(sig)
				if len(idx) == 0 || len(n.Lhs) != sig.Results().Len() {
					return true
				}
				allBlank := true
				for _, i := range idx {
					id, isIdent := ast.Unparen(n.Lhs[i]).(*ast.Ident)
					if !isIdent || id.Name != "_" {
						allBlank = false
					}
				}
				if allBlank {
					check(call, "assigned to the blank identifier")
				}
			}
			return true
		})
	}
}
