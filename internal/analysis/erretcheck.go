package analysis

import (
	"go/ast"
	"go/types"
)

// errPkgSuffixes are the packages whose error returns exist precisely so
// callers cannot ignore crashes: simmpi's communication errors (rank
// lost, dropped, aborted), fault's plan parsing/validation, and fault/fs
// — the storage fault surface, where every error is an injected or real
// disk failure (ENOSPC, short write, fsync error) that a durability site
// must observe.
var errPkgSuffixes = []string{"internal/simmpi", "internal/fault", "internal/fault/fs"}

// durabilityPkgSuffixes are the packages whose os.File usage IS the
// durability story: checkpoint stores and the job/result/trace
// persistence layer. A dropped (*os.File).Close or Sync error there can
// silently lose an acknowledged write — the OS reports delayed-write
// failures on exactly those calls.
var durabilityPkgSuffixes = []string{"internal/supervise", "internal/serve"}

// ErrRetCheck flags calls to simmpi and fault APIs whose error result is
// discarded: expression statements, go/defer statements, and assignments
// that send every error result to the blank identifier. PR 1 made the
// runtime error-returning instead of deadlocking exactly so that drivers
// must observe crashes; dropping the error silently reintroduces the lie.
// In the durability packages (supervise, serve) it additionally flags
// dropped (*os.File).Close/Sync errors — the same lie, storage edition.
var ErrRetCheck = &Analyzer{
	Name: "erretcheck",
	Doc:  "ignored error results from simmpi/fault APIs and os.File durability calls",
	Run:  runErrRetCheck,
}

// isOSFileCloseSync reports whether f is (*os.File).Close or
// (*os.File).Sync — the two calls where the kernel surfaces deferred
// write-back errors.
func isOSFileCloseSync(f *types.Func) bool {
	if f.Pkg() == nil || f.Pkg().Path() != "os" {
		return false
	}
	if f.Name() != "Close" && f.Name() != "Sync" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "File"
}

func runErrRetCheck(pass *Pass) {
	info := pass.Pkg.Info

	// inDurabilityPkg: the os.File rule is scoped to the packages whose
	// file handling carries the durability contract; elsewhere a dropped
	// Close is ordinary errcheck territory, not a gblint invariant.
	inDurabilityPkg := false
	for _, s := range durabilityPkgSuffixes {
		if hasPathSuffix(pass.Pkg.Path, s) {
			inDurabilityPkg = true
			break
		}
	}

	// check reports the call if its callee is a simmpi/fault function or
	// method returning an error — or, inside a durability package, an
	// os.File close/sync whose deferred-write-back error is discarded.
	check := func(call *ast.CallExpr, how string) {
		f := calleeFunc(info, call)
		if f == nil || f.Pkg() == nil {
			return
		}
		sig, ok := f.Type().(*types.Signature)
		if !ok || len(errorResultIndices(sig)) == 0 {
			return
		}
		for _, s := range errPkgSuffixes {
			if hasPathSuffix(f.Pkg().Path(), s) {
				pass.Reportf(call.Pos(), "error result of %s.%s is %s: simmpi/fault errors signal rank loss and must be handled",
					f.Pkg().Name(), f.Name(), how)
				return
			}
		}
		if inDurabilityPkg && isOSFileCloseSync(f) {
			pass.Reportf(call.Pos(), "error result of (*os.File).%s is %s: close/sync is where the kernel reports a failed write-back — in checkpoint/jobstore code that error is the durability signal",
				f.Name(), how)
		}
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					check(call, "dropped")
				}
			case *ast.GoStmt:
				check(n.Call, "dropped by go statement")
			case *ast.DeferStmt:
				check(n.Call, "dropped by defer")
			case *ast.AssignStmt:
				// x, _ := f() — flag only when every error position is
				// blanked; handling one error result of a multi-error
				// return (none exist today) would still count as handled.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(info, call)
				if f == nil {
					return true
				}
				sig, ok := f.Type().(*types.Signature)
				if !ok {
					return true
				}
				idx := errorResultIndices(sig)
				if len(idx) == 0 || len(n.Lhs) != sig.Results().Len() {
					return true
				}
				allBlank := true
				for _, i := range idx {
					id, isIdent := ast.Unparen(n.Lhs[i]).(*ast.Ident)
					if !isIdent || id.Name != "_" {
						allBlank = false
					}
				}
				if allBlank {
					check(call, "assigned to the blank identifier")
				}
			}
			return true
		})
	}
}
