package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// calleeFunc resolves the *types.Func a call invokes (package function or
// method), or nil for builtins, conversions, and indirect calls through
// variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	default:
		return nil
	}
	f, _ := obj.(*types.Func)
	return f
}

// isPkgFunc reports whether a call invokes the named package-level
// function of a package whose import path ends in pkgSuffix.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgSuffix, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Name() != name {
		return false
	}
	if f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return hasPathSuffix(f.Pkg().Path(), pkgSuffix)
}

// isMethodOn reports whether a call invokes a method (any of names; nil
// names matches every method) on the named type defined in a package
// whose import path ends in pkgSuffix.
func isMethodOn(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName string, names map[string]bool) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if names != nil && !names[f.Name()] {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && hasPathSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// returnsError reports whether a function signature includes an error
// result, and at which positions.
func errorResultIndices(sig *types.Signature) []int {
	var idx []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

// isFloatType reports whether t's underlying type is a floating-point
// basic type (including untyped float constants).
func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactZero reports whether expr is a constant whose exact value is 0
// (the "unset sentinel" comparisons floateq permits: zero is exactly
// representable and assignments of the literal compare reliably).
func isExactZero(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isMapRange reports whether a range statement iterates a map.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
