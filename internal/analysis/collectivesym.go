package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CollectiveSym is the interprocedural extension of spmdsym: it computes
// a per-function *collective-effect summary* — the ordered sequence of
// simmpi collective kinds a call of the function may execute, including
// via its callees — propagates summaries bottom-up over the call graph's
// strongly connected components, and reports rank-dependent branch
// points whose paths have divergent effects anywhere in the transitive
// call tree. This is the deadlock class a cross-function refactor (the
// sharded-octree plan) is most likely to introduce: the collective moves
// two calls down, the branch stays where it was, and the per-function
// spmdsym can no longer see the pair.
//
// The summary lattice, bottom to top:
//
//	known sequence  — the function executes exactly this ordered list of
//	                  collective kinds (each element carries the call
//	                  path it was inlined through, for reporting);
//	mixed           — the effect depends on data or iteration count
//	                  (diverging non-rank branches, loops with
//	                  collective bodies, capped or non-converging
//	                  recursion). Mixed is uniform across ranks — every
//	                  rank takes the same data-dependent path — so it
//	                  compares equal to anything in the divergence
//	                  check: precision is sacrificed, soundness of the
//	                  "no false positives on uniform control flow" rule
//	                  is kept.
//
// Conservatism rules (all recorded on the summary's Unknown flag rather
// than silently dropped): interface-method calls and calls through
// escaping function values resolve to no body and contribute no effect;
// calls into the standard library likewise (the library cannot call
// back into simmpi except through a function value, and escaping
// function literals are inlined at their creation point to cover
// exactly that case). Within an SCC, summaries are iterated to a
// fixpoint with the sequence length capped (maxCollSeq); recursion that
// keeps growing its sequence converges to mixed.
var CollectiveSym = &Analyzer{
	Name: "collectivesym",
	Doc:  "rank-dependent branches with divergent collective effects anywhere in the call tree",
	Run:  runCollectiveSym,
}

// maxCollSeq caps summary sequences; longer effects degrade to mixed.
const maxCollSeq = 16

// maxSCCIters bounds the within-component fixpoint iteration.
const maxSCCIters = 8

// collEvent is one collective in a summary sequence.
type collEvent struct {
	kind string // Barrier, Allreduce, ...
	path string // call chain the event was inlined through; "" = direct
}

func (e collEvent) describe() string {
	if e.path == "" {
		return e.kind
	}
	return e.kind + " (via " + e.path + ")"
}

// collEffect is a point in the summary lattice.
type collEffect struct {
	seq     []collEvent
	mixed   bool
	kinds   map[string]bool // union of kinds possibly executed (mixed)
	unknown bool
}

func (e collEffect) empty() bool { return !e.mixed && len(e.seq) == 0 }

func (e collEffect) kindSet() map[string]bool {
	out := make(map[string]bool, len(e.kinds)+len(e.seq))
	for k := range e.kinds {
		out[k] = true
	}
	for _, ev := range e.seq {
		out[ev.kind] = true
	}
	return out
}

// mixedEffect collapses an effect to the mixed lattice point.
func mixedEffect(parts ...collEffect) collEffect {
	out := collEffect{mixed: true, kinds: map[string]bool{}}
	for _, p := range parts {
		for k := range p.kindSet() {
			out.kinds[k] = true
		}
		out.unknown = out.unknown || p.unknown
	}
	return out
}

// concatEffect sequences two effects.
func concatEffect(a, b collEffect) collEffect {
	if a.mixed || b.mixed {
		return mixedEffect(a, b)
	}
	out := collEffect{unknown: a.unknown || b.unknown}
	out.seq = append(append([]collEvent{}, a.seq...), b.seq...)
	if len(out.seq) > maxCollSeq {
		return mixedEffect(a, b)
	}
	return out
}

// mergeEffect joins two branch arms: equal known sequences stay known,
// anything else degrades to mixed.
func mergeEffect(a, b collEffect) collEffect {
	if !a.mixed && !b.mixed && collSeqEqual(a.seq, b.seq) {
		return collEffect{seq: a.seq, unknown: a.unknown || b.unknown}
	}
	return mixedEffect(a, b)
}

// collSeqEqual compares the kinds of two sequences (paths are
// provenance, not identity: Barrier-via-f equals Barrier-via-g).
func collSeqEqual(a, b []collEvent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].kind != b[i].kind {
			return false
		}
	}
	return true
}

func effectEqual(a, b collEffect) bool {
	if a.mixed != b.mixed || a.unknown != b.unknown {
		return false
	}
	if a.mixed {
		if len(a.kinds) != len(b.kinds) {
			return false
		}
		for k := range a.kinds {
			if !b.kinds[k] {
				return false
			}
		}
		return true
	}
	return collSeqEqual(a.seq, b.seq)
}

// collSummary is a node's computed summary.
type collSummary struct {
	eff collEffect
}

// collectiveSummaries computes (once per Program) every node's summary,
// bottom-up over SCCs with within-component fixpointing.
func (p *Program) collectiveSummaries() map[*CGNode]*collSummary {
	p.collOnce.Do(func() {
		g := p.CallGraph()
		sums := make(map[*CGNode]*collSummary, len(g.All()))
		for _, n := range g.All() {
			sums[n] = &collSummary{}
		}
		taint := p.rankParamTaint(g)
		p.collTaint = taint
		for _, comp := range g.SCCs() {
			for iter := 0; ; iter++ {
				changed := false
				for _, n := range comp {
					c := &collComputer{prog: p, node: n, sums: sums, taint: taint}
					eff := c.summarize()
					if !effectEqual(sums[n].eff, eff) {
						sums[n].eff = eff
						changed = true
					}
				}
				if !changed {
					break
				}
				if iter >= maxSCCIters {
					// Force convergence: the component's effect is mixed.
					parts := make([]collEffect, 0, len(comp))
					for _, n := range comp {
						parts = append(parts, sums[n].eff)
					}
					m := mixedEffect(parts...)
					for _, n := range comp {
						sums[n].eff = m
					}
					break
				}
			}
		}
		p.collSums = sums
	})
	return p.collSums
}

// rankParamTaint propagates rank taint interprocedurally: a parameter is
// rank-tainted when any call site passes it a rank-derived argument, and
// taint seeds the callee's local analysis in turn. Fixpoint over the
// whole graph, bounded by the total parameter count.
func (p *Program) rankParamTaint(g *CallGraph) map[*types.Var]bool {
	taint := make(map[*types.Var]bool)
	for iter := 0; iter < 16; iter++ {
		changed := false
		for _, n := range g.All() {
			info := n.Pkg.Info
			local := localRankTaint(info, n, taint)
			for _, e := range n.Calls {
				if e.Callee == nil || e.Callee.Func == nil {
					continue
				}
				sig, ok := e.Callee.Func.Type().(*types.Signature)
				if !ok || sig.Variadic() || sig.Params().Len() != len(e.Call.Args) {
					continue
				}
				for i, arg := range e.Call.Args {
					if rankTaintedExpr(info, arg, local) {
						pv := sig.Params().At(i)
						if !taint[pv] {
							taint[pv] = true
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return taint
}

// localRankTaint computes a node's rank-tainted local variables, seeded
// with interprocedurally tainted parameters.
func localRankTaint(info *types.Info, n *CGNode, paramTaint map[*types.Var]bool) map[*types.Var]bool {
	tainted := rankTaintedVars(info, n.Body())
	sig := nodeSignature(info, n)
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if pv := sig.Params().At(i); paramTaint[pv] {
				tainted[pv] = true
			}
		}
	}
	return tainted
}

// nodeSignature returns a node's *types.Signature.
func nodeSignature(info *types.Info, n *CGNode) *types.Signature {
	if n.Func != nil {
		sig, _ := n.Func.Type().(*types.Signature)
		return sig
	}
	if t := info.TypeOf(n.Lit); t != nil {
		sig, _ := t.(*types.Signature)
		return sig
	}
	return nil
}

// rankTaintedExpr reports whether an expression derives from the rank:
// it mentions a tainted variable or calls (*simmpi.Comm).Rank.
// Error-typed values are never rank taint: simmpi's world aborts on any
// rank's error (all blocked and future communication fails everywhere),
// so `if err != nil { return err }` after a collective is rank-uniform
// by the library's own semantics — the sanctioned error idiom must not
// read as a divergent branch.
func rankTaintedExpr(info *types.Info, e ast.Expr, tainted map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && tainted[v] && !isErrorType(v.Type()) {
				found = true
			}
		case *ast.CallExpr:
			if isMethodOn(info, n, "internal/simmpi", "Comm", map[string]bool{"Rank": true}) {
				found = true
			}
		}
		return !found
	})
	return found
}

// collComputer evaluates one node's effect with continuation semantics:
// the effect of a statement list is computed right-to-left, so an early
// return in one branch arm naturally drops the collectives the other
// arm still executes — the divergence the analyzer exists to catch.
type collComputer struct {
	prog  *Program
	node  *CGNode
	sums  map[*CGNode]*collSummary
	taint map[*types.Var]bool

	// report, when non-nil, receives divergence findings (reporting
	// pass); nil during summary fixpointing.
	report func(pos ast.Node, format string, args ...any)

	edges     map[*ast.CallExpr]*CGNode
	boundLits map[*ast.FuncLit]bool
	local     map[*types.Var]bool
}

func (c *collComputer) init() {
	c.edges = make(map[*ast.CallExpr]*CGNode, len(c.node.Calls))
	for _, e := range c.node.Calls {
		if e.Callee != nil {
			c.edges[e.Call] = e.Callee
		}
	}
	c.boundLits = make(map[*ast.FuncLit]bool)
	for _, t := range localFuncBindings(c.node.Pkg.Info, c.node.Body(), c.prog.CallGraph()) {
		if t != nil && t.Lit != nil {
			c.boundLits[t.Lit] = true
		}
	}
	c.local = localRankTaint(c.node.Pkg.Info, c.node, c.taint)
}

func (c *collComputer) summarize() collEffect {
	c.init()
	return c.stmts(c.node.Body().List, collEffect{})
}

// check re-runs the interpreter with reporting enabled, using the final
// summaries.
func (c *collComputer) check(report func(pos ast.Node, format string, args ...any)) {
	c.report = report
	c.init()
	c.stmts(c.node.Body().List, collEffect{})
}

// stmts computes the effect of executing a statement list followed by
// the continuation effect rest.
func (c *collComputer) stmts(list []ast.Stmt, rest collEffect) collEffect {
	eff := rest
	for i := len(list) - 1; i >= 0; i-- {
		eff = c.stmt(list[i], eff)
	}
	return eff
}

// stmt computes the effect of one statement followed by rest.
func (c *collComputer) stmt(s ast.Stmt, rest collEffect) collEffect {
	switch s := s.(type) {
	case nil:
		return rest
	case *ast.BlockStmt:
		return c.stmts(s.List, rest)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, rest)
	case *ast.ReturnStmt:
		eff := collEffect{}
		for _, r := range s.Results {
			eff = concatEffect(eff, c.expr(r))
		}
		return eff // the continuation is dropped
	case *ast.BranchStmt:
		// break/continue/goto end this list's straight-line execution;
		// the loop level already degrades non-empty bodies to mixed.
		return collEffect{}
	case *ast.IfStmt:
		pre := c.initEff(s.Init)
		pre = concatEffect(pre, c.expr(s.Cond))
		contThen := c.stmts(s.Body.List, rest)
		contElse := rest
		if s.Else != nil {
			contElse = c.stmt(s.Else, rest)
		}
		c.checkDivergence(s, s.Cond, contThen, contElse)
		return concatEffect(pre, mergeEffect(contThen, contElse))
	case *ast.SwitchStmt:
		pre := c.initEff(s.Init)
		if s.Tag != nil {
			pre = concatEffect(pre, c.expr(s.Tag))
		}
		return concatEffect(pre, c.switchArms(s, s.Tag, s.Body, rest))
	case *ast.TypeSwitchStmt:
		pre := c.initEff(s.Init)
		return concatEffect(pre, c.switchArms(s, nil, s.Body, rest))
	case *ast.SelectStmt:
		arms := collEffect{}
		first := true
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			arm := c.stmts(cc.Body, rest)
			if cc.Comm != nil {
				arm = concatEffect(c.stmt(cc.Comm, collEffect{}), arm)
			}
			if first {
				arms, first = arm, false
			} else {
				arms = mergeEffect(arms, arm)
			}
		}
		if first {
			return rest
		}
		return arms
	case *ast.ForStmt:
		pre := c.initEff(s.Init)
		condEff := collEffect{}
		if s.Cond != nil {
			condEff = c.expr(s.Cond)
		}
		body := c.stmts(s.Body.List, collEffect{})
		body = concatEffect(body, c.initEff(s.Post))
		loop := c.loopEffect(s, s.Cond, concatEffect(condEff, body))
		return concatEffect(pre, concatEffect(loop, rest))
	case *ast.RangeStmt:
		pre := c.expr(s.X)
		body := c.stmts(s.Body.List, collEffect{})
		loop := c.loopEffect(s, nil, body)
		return concatEffect(pre, concatEffect(loop, rest))
	case *ast.DeferStmt:
		// Approximation: deferred effects are inlined at the defer site
		// rather than reordered to function exit.
		return concatEffect(c.expr(s.Call), rest)
	case *ast.GoStmt:
		// A spawned goroutine's effect is counted where it is spawned:
		// rank workers execute their bodies in lockstep with the phase
		// that spawned them.
		return concatEffect(c.expr(s.Call), rest)
	default:
		// Expression statements, assignments, declarations: the effect
		// of the contained expressions in source order.
		eff := collEffect{}
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				eff = concatEffect(eff, c.call(n))
				return false
			case *ast.FuncLit:
				eff = concatEffect(eff, c.funcLit(n))
				return false
			}
			return true
		})
		return concatEffect(eff, rest)
	}
}

// switchArms merges the continuations of a switch's cases; a missing
// default contributes the bare continuation (the fall-past path).
func (c *collComputer) switchArms(stmt ast.Stmt, tag ast.Expr, body *ast.BlockStmt, rest collEffect) collEffect {
	if body == nil || len(body.List) == 0 {
		return rest
	}
	info := c.node.Pkg.Info
	tainted := tag != nil && rankTaintedExpr(info, tag, c.local)
	arms := make([]collEffect, 0, len(body.List)+1)
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			if rankTaintedExpr(info, e, c.local) {
				tainted = true
			}
		}
		arms = append(arms, c.stmts(cc.Body, rest))
	}
	if !hasDefault {
		arms = append(arms, rest)
	}
	out := arms[0]
	diverged := false
	for _, a := range arms[1:] {
		if !out.mixed && !a.mixed && !collSeqEqual(out.seq, a.seq) {
			diverged = true
		}
		out = mergeEffect(out, a)
	}
	if tainted && diverged && c.report != nil {
		c.reportDivergence(stmt, arms)
	}
	return out
}

// loopEffect models iteration: an effect-free body contributes nothing;
// anything else is mixed (the trip count is data — and possibly rank —
// dependent). A rank-dependent trip count over a collective-bearing
// body is itself a divergence.
func (c *collComputer) loopEffect(stmt ast.Stmt, cond ast.Expr, body collEffect) collEffect {
	if body.empty() {
		return collEffect{unknown: body.unknown}
	}
	if cond != nil && rankTaintedExpr(c.node.Pkg.Info, cond, c.local) && c.report != nil {
		kinds := sortedKindList(body.kindSet())
		c.report(stmt,
			"loop with a rank-dependent trip count executes collectives %v: ranks fall out of step after the first divergent iteration", kinds)
	}
	return mixedEffect(body)
}

// initEff evaluates an init/post simple statement.
func (c *collComputer) initEff(s ast.Stmt) collEffect {
	if s == nil {
		return collEffect{}
	}
	return c.stmt(s, collEffect{})
}

// expr computes an expression's effect (calls and literals, in source
// order).
func (c *collComputer) expr(e ast.Expr) collEffect {
	eff := collEffect{}
	if e == nil {
		return eff
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			eff = concatEffect(eff, c.call(n))
			return false
		case *ast.FuncLit:
			eff = concatEffect(eff, c.funcLit(n))
			return false
		}
		return true
	})
	return eff
}

// call computes a call's effect: argument effects, then the callee's.
func (c *collComputer) call(call *ast.CallExpr) collEffect {
	info := c.node.Pkg.Info
	eff := collEffect{}
	// The function expression itself may contain calls (a().b()).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		eff = concatEffect(eff, c.expr(sel.X))
	}
	for _, a := range call.Args {
		eff = concatEffect(eff, c.expr(a))
	}
	if isMethodOn(info, call, "internal/simmpi", "Comm", collectiveNames) {
		return concatEffect(eff, collEffect{seq: []collEvent{{kind: calleeFunc(info, call).Name()}}})
	}
	if callee, ok := c.edges[call]; ok {
		sum := c.sums[callee]
		callEff := sum.eff
		if !callEff.mixed && callee.Func != nil {
			prefixed := make([]collEvent, len(callEff.seq))
			for i, ev := range callEff.seq {
				p := callee.Name()
				if ev.path != "" {
					p += " > " + ev.path
				}
				prefixed[i] = collEvent{kind: ev.kind, path: p}
			}
			callEff = collEffect{seq: prefixed, unknown: callEff.unknown}
		}
		return concatEffect(eff, callEff)
	}
	// Unresolved: interface dispatch, escaping function value, or a
	// callee outside the loaded set. No effect, but the blind spot is
	// recorded.
	eff.unknown = true
	return eff
}

// funcLit computes a literal's contribution at its creation point:
// locally-bound literals contribute at their call sites instead;
// escaping literals are inlined here (the sort.Slice(less) case).
func (c *collComputer) funcLit(lit *ast.FuncLit) collEffect {
	if c.boundLits[lit] {
		return collEffect{}
	}
	if n, ok := c.prog.CallGraph().Lits[lit]; ok {
		return c.sums[n].eff
	}
	return collEffect{unknown: true}
}

// checkDivergence reports a rank-dependent if whose continuations have
// provably different collective effects.
func (c *collComputer) checkDivergence(stmt *ast.IfStmt, cond ast.Expr, contThen, contElse collEffect) {
	if c.report == nil {
		return
	}
	if !rankTaintedExpr(c.node.Pkg.Info, cond, c.local) {
		return
	}
	if contThen.mixed || contElse.mixed || collSeqEqual(contThen.seq, contElse.seq) {
		return
	}
	c.reportDivergence(stmt, []collEffect{contThen, contElse})
}

// reportDivergence renders the first differing collective of the arms.
func (c *collComputer) reportDivergence(stmt ast.Stmt, arms []collEffect) {
	// Find two known arms that differ, preferring the earliest pair.
	for i := 0; i < len(arms); i++ {
		for j := i + 1; j < len(arms); j++ {
			a, b := arms[i], arms[j]
			if a.mixed || b.mixed || collSeqEqual(a.seq, b.seq) {
				continue
			}
			k := 0
			for k < len(a.seq) && k < len(b.seq) && a.seq[k].kind == b.seq[k].kind {
				k++
			}
			left, right := "no further collective", "no further collective"
			if k < len(a.seq) {
				left = a.seq[k].describe()
			}
			if k < len(b.seq) {
				right = b.seq[k].describe()
			}
			c.report(stmt,
				"rank-dependent branch has divergent collective effects: one path executes %s where another executes %s; every rank must execute the same collective sequence or the world deadlocks",
				left, right)
			return
		}
	}
}

// sortedKindList renders a kind set deterministically.
func sortedKindList(kinds map[string]bool) []string {
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func runCollectiveSym(pass *Pass) {
	sums := pass.Prog.collectiveSummaries()
	taint := pass.Prog.collParamTaint()
	for _, n := range pass.Prog.CallGraph().All() {
		if n.Pkg != pass.Pkg {
			continue
		}
		c := &collComputer{prog: pass.Prog, node: n, sums: sums, taint: taint}
		c.check(func(at ast.Node, format string, args ...any) {
			pass.Reportf(at.Pos(), format, args...)
		})
	}
}

// collParamTaint exposes the interprocedural taint computed alongside
// the summaries (cached on the Program via the same once).
func (p *Program) collParamTaint() map[*types.Var]bool {
	p.collectiveSummaries()
	return p.collTaint
}
