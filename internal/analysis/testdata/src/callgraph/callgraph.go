// Package callgraph exercises the call-graph substrate directly (see
// callgraph_test.go): mutual-recursion summary convergence, literal
// and method-value edge resolution, and unknown-callee conservatism.
// It is deliberately not a golden corpus — the unit tests assert graph
// structure, not findings.
package callgraph

import (
	"sort"

	"gbpolar/internal/simmpi"
)

// pingA / pingB are mutually recursive and each execute a collective:
// their SCC's summary fixpoint must converge (to the mixed lattice
// point carrying Barrier) instead of growing a sequence forever.
func pingA(c *simmpi.Comm, depth int) {
	_ = c.Barrier()
	if depth > 0 {
		pingB(c, depth-1)
	}
}

func pingB(c *simmpi.Comm, depth int) {
	_ = c.Barrier()
	if depth > 0 {
		pingA(c, depth-1)
	}
}

// callsLit binds a literal to a local and calls it through the
// binding: the edge must resolve to the literal's node.
func callsLit() int {
	f := func() int { return 1 }
	return f()
}

// callsMethodValue binds a concrete method value and calls it: the
// edge must resolve to (Comm).Barrier.
func callsMethodValue(c *simmpi.Comm) error {
	barrier := c.Barrier
	return barrier()
}

// callsInterface dispatches through an interface: unresolvable, and
// the node must record the blind spot.
func callsInterface(s sort.Interface) int {
	return s.Len()
}

// callsStdlib calls outside the loaded set: no body here, also a
// recorded blind spot.
func callsStdlib(xs []int) {
	sort.Ints(xs)
}

// reassigned binds a function variable twice: the binding must resolve
// to nothing (explicitly unknown), not to either target.
func reassigned(flip bool) int {
	f := func() int { return 1 }
	if flip {
		f = func() int { return 2 }
	}
	return f()
}
