// Corpus for the floateq analyzer: energies come out of non-associative
// reductions, so exact comparison is a latent bug unless it is the
// exact-zero sentinel idiom.
package floateq

// Positive: classic tolerance bug.
func eq(a, b float64) bool {
	return a == b // want "floating-point values compared with =="
}

// Positive: negated form.
func neq(a, b float64) bool {
	return a != b // want "floating-point values compared with !="
}

// Positive: float32 counts too.
func eq32(a, b float32) bool {
	return a == b // want "floating-point values compared with =="
}

// Positive: a non-zero constant is not exactly representable in general.
func third(x float64) bool {
	return x == 0.3 // want "floating-point values compared with =="
}

// Negative: zero is exact — the pervasive "field unset" config sentinel.
func zeroSentinel(cutoff float64) bool {
	return cutoff == 0
}

// Negative: exact zero on either side, spelled as a float literal.
func zeroLeft(x float64) bool {
	return 0.0 != x
}

// Negative: integer comparison is exact.
func ints(a, b int) bool {
	return a == b
}
