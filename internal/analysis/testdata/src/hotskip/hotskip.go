// Package hotskip is the hot-package gate's negative twin: the same
// per-iteration allocation shapes as the hotalloc corpus, under an
// import path outside the hot list. Setup, parsing, and rendering code
// allocates by design — the analyzer must not look here at all.
package hotskip

func makesFreely(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		scratch := make([]float64, 8)
		scratch[0] = float64(i)
		total += scratch[0]
	}
	return total
}

func growsFreely(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

func closesFreely(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		add := func() int { return i }
		total += add()
	}
	return total
}
