// Package fault is a corpus stub standing in for gbpolar/internal/fault.
package fault

// Plan is a parsed fault-injection plan.
type Plan struct {
	Events int
}

// Parse parses the fault plan mini-language.
func Parse(spec string) (*Plan, error) { return &Plan{}, nil }

// Validate checks a plan against a world size.
func (p *Plan) Validate() error { return nil }
