// Corpus stub of internal/obs, loaded on the kernel import path
// gbpolar/internal/obs: the recorder never reads a clock itself — time
// is injected at construction (by perf, behind the measurement
// boundary), which is exactly the invariant the determinism analyzer
// enforces now that obs sits on the kernel list. The stub must stay
// findings-clean under the full suite.
package obs

import "time"

// Recorder collects spans and counters against an injected clock.
type Recorder struct {
	clock    func() time.Duration
	counters map[string]int64
	hists    map[string]*histogram
	spans    []spanData
}

type spanData struct {
	rank  int
	name  string
	start time.Duration
	end   time.Duration
}

// Span is a handle to an open span; the zero Span is inert.
type Span struct {
	r   *Recorder
	idx int
}

// NewRecorder builds a recorder around the injected clock; nil means a
// zero clock (spans carry no wall time but counters still work).
func NewRecorder(clock func() time.Duration) *Recorder {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	return &Recorder{clock: clock, counters: make(map[string]int64)}
}

// StartSpan opens a span on a rank's timeline. Nil recorders are inert.
func (r *Recorder) StartSpan(rank int, name string) Span {
	if r == nil {
		return Span{}
	}
	r.spans = append(r.spans, spanData{rank: rank, name: name, start: r.clock()})
	return Span{r: r, idx: len(r.spans) - 1}
}

// End closes the span.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.r.spans[s.idx].end = s.r.clock()
}

// Count adds n to a named counter. Nil recorders are inert.
func (r *Recorder) Count(name string, n int64) {
	if r == nil {
		return
	}
	r.counters[name] += n
}

// histogram mirrors the real fixed log-bucket layout: pure integer
// state, so observing from a kernel introduces no float or clock
// hazards — the property that keeps Observe callable on the kernel list.
type histogram struct {
	count   int64
	sum     int64
	buckets [8]int64
}

func histBucketIndex(v int64) int {
	i := 0
	for b := int64(1); b < v && i < len(histogram{}.buckets)-1; b <<= 1 {
		i++
	}
	return i
}

// Observe adds v to a named log-bucket histogram. Nil recorders are
// inert.
func (r *Recorder) Observe(name string, v int64) {
	if r == nil {
		return
	}
	if r.hists == nil {
		r.hists = make(map[string]*histogram)
	}
	h := r.hists[name]
	if h == nil {
		h = &histogram{}
		r.hists[name] = h
	}
	h.count++
	h.sum += v
	h.buckets[histBucketIndex(v)]++
}
