// Negative corpus for the panicfree analyzer: this package's import path
// has no /internal/ segment (it models a cmd/ main package), so process
// exits are its prerogative.
package toplevelok

import (
	"log"
	"os"
)

// Die exits like any CLI entry point may.
func Die(err error) {
	log.Fatalf("toplevelok: %v", err)
	os.Exit(2)
}
