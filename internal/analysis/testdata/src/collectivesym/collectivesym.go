// Package collectivesym is the golden corpus for the interprocedural
// collective-symmetry analyzer. The positives put the divergence where
// the per-function spmdsym cannot see it — behind calls — including the
// acceptance case of a collective buried two calls deep, reported with
// its full call path. The negatives are the clean twins: symmetric
// effects reached through different call paths, the sanctioned
// error-guard idiom after a collective, and uniform (non-rank) data
// dependence.
package collectivesym

import "gbpolar/internal/simmpi"

// --- positives ---

// deepDiverge is the acceptance case: rank 0 executes a Barrier two
// calls down while the other ranks execute nothing. The finding must
// carry the full call path.
func deepDiverge(c *simmpi.Comm, v []float64) {
	if c.Rank() == 0 { // want "one path executes Barrier (via rootSide > leafBarrier) where another executes no further collective"
		rootSide(c, v)
	}
}

func rootSide(c *simmpi.Comm, v []float64) {
	leafBarrier(c)
}

func leafBarrier(c *simmpi.Comm) {
	_ = c.Barrier()
}

// earlyReturn diverges by skipping: rank 0 returns before the
// collective the other ranks go on to execute.
func earlyReturn(c *simmpi.Comm, v []float64) error {
	if c.Rank() == 0 { // want "one path executes no further collective where another executes Allreduce"
		return nil
	}
	_, err := c.Allreduce(v, simmpi.Sum)
	return err
}

// switchDiverge puts different collectives in the arms of a
// rank-tagged switch.
func switchDiverge(c *simmpi.Comm, v []float64) {
	switch c.Rank() { // want "rank-dependent branch has divergent collective effects"
	case 0:
		_ = c.Barrier()
	default:
		_, _ = c.Gather(v, 0)
	}
}

// rankTrip runs a collective a rank-dependent number of times: the
// ranks fall out of step after the first divergent iteration.
func rankTrip(c *simmpi.Comm) {
	for i := 0; i < c.Rank(); i++ { // want "loop with a rank-dependent trip count executes collectives [Barrier]"
		_ = c.Barrier()
	}
}

// --- negatives ---

// symmetricPaths is deepDiverge's clean twin: both arms reach the same
// collective sequence, through different call paths — paths are
// provenance, not identity.
func symmetricPaths(c *simmpi.Comm, v []float64) {
	if c.Rank() == 0 {
		viaDirect(c)
	} else {
		viaNested(c)
	}
}

func viaDirect(c *simmpi.Comm) { _ = c.Barrier() }

func viaNested(c *simmpi.Comm) { leafBarrier(c) }

// errGuard is the sanctioned error idiom: contrib is rank-derived, so
// the multi-assign taints err too — but simmpi aborts the whole world
// on any rank's error, so the guard is rank-uniform and must stay
// clean even though the then-arm skips the trailing Barrier.
func errGuard(c *simmpi.Comm) error {
	contrib := []float64{float64(c.Rank())}
	out, err := c.Allreduce(contrib, simmpi.Sum)
	if err != nil {
		return err
	}
	_ = out
	return c.Barrier()
}

// uniformBranch diverges on data, not rank: every rank computes the
// same condition, so every rank takes the same arm.
func uniformBranch(c *simmpi.Comm, v []float64, big bool) error {
	if big {
		_, err := c.Allreduce(v, simmpi.Sum)
		return err
	}
	return c.Barrier()
}

// rankLocalWork branches on the rank but executes no collectives in
// either continuation: nothing to diverge.
func rankLocalWork(c *simmpi.Comm, v []float64) float64 {
	if c.Rank() == 0 && len(v) > 0 {
		return v[0]
	}
	return 0
}
