// Corpus for the determinism analyzer, loaded under a kernel import path
// (suffix internal/gb): map-order float math, global RNGs, and clock
// reads all make kernel results run-dependent.
package gb

import (
	"math/rand"
	"sort"
	"time"

	"gbpolar/internal/obs"
)

// Positive: float accumulation order follows randomized map iteration.
func mapAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation over map iteration"
	}
	return sum
}

// Positive: the slice's element order is a coin flip per run.
func mapAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append inside map iteration yields a run-dependent order"
	}
	return out
}

// Negative: a later sort re-establishes a canonical order (the bench
// experiment-registry IDs idiom).
func mapAppendSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Negative: the canonical fix — accumulate over sorted keys.
func sortedKeyAccum(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// Negative: integer accumulation is associative; order cannot matter.
func mapCount(m map[int]float64) int {
	total := 0
	for range m {
		total += 1
	}
	return total
}

// Positive: the package-level source is shared, globally seeded state.
func globalRand() float64 {
	return rand.Float64() // want "uses the shared global source"
}

// Negative: an explicitly seeded source is a pure function of its seed.
func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Positive: wall-clock reads belong behind the perf boundary.
func wallClock() int64 {
	return time.Now().UnixNano() // want "clock reads belong behind the perf measurement boundary"
}

// Negative: obs instrumentation inside a kernel is fine — spans and
// counters take no clock reads of their own (the recorder's clock is
// injected at construction, behind the perf boundary), so timing stays
// observational and never feeds the numerics.
func instrumentedKernel(rec *obs.Recorder, xs []float64) float64 {
	sp := rec.StartSpan(0, "kernel")
	defer sp.End()
	var sum float64
	for _, x := range xs {
		sum += x
	}
	rec.Count("kernel.ops", int64(len(xs)))
	return sum
}

// Positive: timing instrumentation with a direct clock read bypasses
// both the injected clock and the perf measurement boundary.
func selfClockedSpan(rec *obs.Recorder) int64 {
	start := time.Now() // want "clock reads belong behind the perf measurement boundary"
	rec.Count("kernel.ops", 1)
	return time.Since(start).Nanoseconds()
}

// Negative: histogram observations from a kernel are pure integer
// updates against injected state — no clock, no floats, no map-order
// dependence — so instrumenting pair splits is clean.
func histObservingKernel(rec *obs.Recorder, near, far []int) int {
	rec.Observe("pairs.split.near", int64(len(near)))
	rec.Observe("pairs.split.far", int64(len(far)))
	return len(near) + len(far)
}

// Positive: rendering histogram lines straight off map iteration makes
// the exported summary differ between identical runs.
func histSummaryUnsorted(hists map[string]int64) []string {
	var lines []string
	for name := range hists {
		lines = append(lines, name) // want "append inside map iteration yields a run-dependent order"
	}
	return lines
}

// Positive: averaging histogram sums in map order reassociates the
// float reduction per run.
func histMeanUnsorted(sums map[string]float64) float64 {
	var total float64
	for _, s := range sums {
		total += s // want "float accumulation over map iteration"
	}
	return total / float64(len(sums))
}

// Negative: the exporter idiom — walk histogram names in sorted order,
// then render; byte-identical output run to run.
func histSummarySorted(hists map[string]int64) []string {
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	lines := make([]string, 0, len(names))
	for _, name := range names {
		lines = append(lines, name)
	}
	return lines
}

// Positive: a checkpoint encoder that serializes its counter table in
// map order produces a different byte stream (and CRC) on every run,
// so resume-equivalence checks against a re-encoded snapshot can never
// be bitwise.
func encodeCheckpointUnsorted(counters map[string]int64) []byte {
	var buf []byte
	for name, v := range counters {
		buf = append(buf, name...) // want "append inside map iteration yields a run-dependent order"
		buf = append(buf, byte(v)) // want "append inside map iteration yields a run-dependent order"
	}
	return buf
}

// Negative: the checkpoint encoder idiom — snapshot the keys, sort,
// then emit records in canonical order; the encoded payload and its
// checksum are identical run to run.
func encodeCheckpointSorted(counters map[string]int64) []byte {
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf []byte
	for _, name := range names {
		buf = append(buf, name...)
		buf = append(buf, byte(counters[name]))
	}
	return buf
}

// Positive: folding restored per-phase partial sums back into the
// accumulator in map order reassociates the float reduction, so a
// resumed run diverges from the uninterrupted one in the last ulps.
func decodeCheckpointPartials(partials map[int]float64) float64 {
	var epol float64
	for _, p := range partials {
		epol += p // want "float accumulation over map iteration"
	}
	return epol
}

// Negative: restore in rank order — the resumed accumulation order
// matches the order the uninterrupted run would have used, keeping
// resume bitwise-identical.
func decodeCheckpointByRank(partials map[int]float64) float64 {
	ranks := make([]int, 0, len(partials))
	for r := range partials {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var epol float64
	for _, r := range ranks {
		epol += partials[r]
	}
	return epol
}
