// Package fs is a corpus stub standing in for gbpolar/internal/fault/fs:
// the storage fault surface whose every error return is a real or
// injected disk failure.
package fs

// File is one open file on the (possibly faulty) filesystem.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem seam the durability sites write through.
type FS interface {
	MkdirAll(path string) error
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	ReadFile(path string) ([]byte, error)
}

// WriteFileAtomic publishes data at path via temp+fsync+rename.
func WriteFileAtomic(fsys FS, path string, data []byte) error { return nil }
