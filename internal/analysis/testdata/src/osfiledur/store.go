// Package supervise is a corpus stub on a durability-package import path
// (errcorp/internal/supervise): here a dropped (*os.File).Close or Sync
// error can silently lose an acknowledged checkpoint, so erretcheck
// polices those calls like simmpi/fault errors.
package supervise

import "os"

// Positives: the kernel reports deferred write-back failures on exactly
// these calls; dropping them un-learns the failure. The dropped Write is
// deliberately unflagged — the rule keys on Close/Sync, where write-back
// errors surface; a short Write fails loudly at the call site already.
func droppedCloseSync(path string, data []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Write(data)
	f.Sync()        // want "error result of (*os.File).Sync is dropped"
	defer f.Close() // want "error result of (*os.File).Close is dropped by defer"
}

func blankedClose(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	_ = f.Close() // want "error result of (*os.File).Close is assigned to the blank identifier"
}

// Negative: close and sync errors observed and propagated — the shape
// every durability site must have.
func handled(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// Negative: Close on a non-os.File type is not a durability call even
// here — the rule keys on the os package's File, not on the method name.
type nopCloser struct{}

func (nopCloser) Close() error { return nil }

func otherCloser() {
	var c nopCloser
	c.Close()
}

// Negative: error-free os.File methods have nothing to drop.
func noError(f *os.File) string { return f.Name() }
