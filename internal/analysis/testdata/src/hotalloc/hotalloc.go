// Package gb is the hotalloc golden corpus. Its import path ends in
// internal/gb, so the analyzer treats it as a hot kernel package; the
// same allocation shapes under a non-hot path live in corpus/hotskip
// and must stay silent. Each positive has a clean twin below showing
// the idiom the kernels are supposed to use instead.
package gb

type vec struct{ x, y float64 }

type accum struct{ buf []float64 }

// consume is an interface sink for the boxing cases.
func consume(v any) {}

// --- positives ---

func makesPerIteration(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		scratch := make([]float64, 8) // want "make allocates every iteration"
		scratch[0] = float64(i)
		total += scratch[0]
	}
	return total
}

func growsUnbounded(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // want "append without preallocated capacity"
	}
	return out
}

func pointerLiteral(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		p := &vec{x: float64(i)} // want "&composite literal allocates every iteration"
		total += p.x
	}
	return total
}

func sliceLiteral(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		row := []int{i, i + 1} // want "slice literal allocates every iteration"
		total += row[0]
	}
	return total
}

func mapLiteral(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := map[int]int{i: i} // want "map literal allocates every iteration"
		total += m[i]
	}
	return total
}

func capturingClosure(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		add := func() int { return i } // want "closure capturing outer variables allocates every iteration"
		total += add()
	}
	return total
}

func boxesArgument(n int) {
	for i := 0; i < n; i++ {
		consume(vec{x: float64(i)}) // want "concrete value boxed into interface parameter"
	}
}

func concatenates(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want "string += allocates every iteration"
	}
	return s
}

// --- negatives ---

// appendsPreallocated is growsUnbounded's clean twin: the capacity is
// stated before the loop, so append never reallocates.
func appendsPreallocated(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	return out
}

// fieldPreallocated recognizes preallocation through composite-literal
// construction of a struct field.
func fieldPreallocated(n int) *accum {
	a := &accum{buf: make([]float64, 0, n)}
	for i := 0; i < n; i++ {
		a.buf = append(a.buf, float64(i))
	}
	return a
}

// callerOwnsBuffer appends into a slice parameter: the caller made the
// allocation decision; a finding here would blame the wrong function.
func callerOwnsBuffer(dst []float64, n int) []float64 {
	for i := 0; i < n; i++ {
		dst = append(dst, float64(i))
	}
	return dst
}

// constructsTable stores each allocation straight into the structure
// being built: N live objects is the product, not garbage.
func constructsTable(n int) [][]float64 {
	t := make([][]float64, n)
	for i := range t {
		t[i] = make([]float64, 4)
	}
	return t
}

// hoistableClosureIsFree captures nothing: the compiler hoists it, so
// no closure cell allocates.
func hoistableClosureIsFree(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		double := func(x int) int { return 2 * x }
		total += double(i)
	}
	return total
}

// valueLiteralIsFree: a value struct literal lives in registers or on
// the stack.
func valueLiteralIsFree(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		v := vec{x: float64(i), y: 1}
		total += v.x + v.y
	}
	return total
}

// passesPointerShaped: pointer-shaped values fit the interface word
// without boxing.
func passesPointerShaped(n int) {
	v := &vec{}
	for i := 0; i < n; i++ {
		consume(v)
	}
}

// --- moment accumulation ---
// The order-p far-field kernels accumulate per-node moment tensors in
// one traversal: scalar, gradient, and 9-component second-moment
// buffers sized by the node count up front, indexed writes in the
// loop, value tensors on the stack, and &buf[i] handed to the
// innermost accumulator. The positives are the shapes those kernels
// must avoid; the negatives pin the idioms they do use as silent.

type mat3 [9]float64

type momentAcc struct {
	nodeS []float64
	nodeH []mat3
}

// makesMomentScratchPerNode builds a fresh tensor slice for every node
// visited — the per-iteration garbage the preallocated nodeH buffer
// exists to avoid.
func makesMomentScratchPerNode(centers []float64) float64 {
	total := 0.0
	for _, c := range centers {
		h := make([]float64, 9) // want "make allocates every iteration"
		h[0] = c * c
		total += h[0]
	}
	return total
}

// growsMomentList collects node moments by append without stating the
// capacity, though the node count is known before the loop.
func growsMomentList(centers []float64) []mat3 {
	var out []mat3
	for _, c := range centers {
		var m mat3
		m[0] = c
		out = append(out, m) // want "append without preallocated capacity"
	}
	return out
}

// accumulatesIntoPreallocated is the kernels' shape: buffers sized by
// the node count once, indexed += inside the traversal loop.
func accumulatesIntoPreallocated(centers []float64) *momentAcc {
	a := &momentAcc{
		nodeS: make([]float64, len(centers)),
		nodeH: make([]mat3, len(centers)),
	}
	for i, c := range centers {
		a.nodeS[i] += c
		a.nodeH[i][0] += c * c
	}
	return a
}

// valueTensorIsFree: a fixed-size array tensor is a value; one per
// iteration lives in registers or on the stack, unlike a slice literal.
func valueTensorIsFree(centers []float64) float64 {
	total := 0.0
	for _, c := range centers {
		m := mat3{c, 0, 0, 0, c, 0, 0, 0, c}
		total += m[0] + m[4] + m[8]
	}
	return total
}

// pointerIntoPreallocatedSlot: taking the address of a buffer element
// for the innermost accumulator allocates nothing — &buf[i] must not be
// confused with an &composite literal.
func pointerIntoPreallocatedSlot(centers []float64) float64 {
	a := momentAcc{nodeH: make([]mat3, len(centers))}
	for i, c := range centers {
		h := &a.nodeH[i]
		h[0] += c
	}
	return a.nodeH[0][0]
}

// documentedAllocation shows the escape hatch: intentional
// per-iteration allocation carries its reason in place.
func documentedAllocation(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		//lint:ignore hotalloc corpus case: the fresh payload each iteration is the point
		fresh := make([]float64, 4)
		fresh[0] = float64(i)
		total += fresh[0]
	}
	return total
}
