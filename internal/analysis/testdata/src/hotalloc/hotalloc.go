// Package gb is the hotalloc golden corpus. Its import path ends in
// internal/gb, so the analyzer treats it as a hot kernel package; the
// same allocation shapes under a non-hot path live in corpus/hotskip
// and must stay silent. Each positive has a clean twin below showing
// the idiom the kernels are supposed to use instead.
package gb

type vec struct{ x, y float64 }

type accum struct{ buf []float64 }

// consume is an interface sink for the boxing cases.
func consume(v any) {}

// --- positives ---

func makesPerIteration(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		scratch := make([]float64, 8) // want "make allocates every iteration"
		scratch[0] = float64(i)
		total += scratch[0]
	}
	return total
}

func growsUnbounded(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // want "append without preallocated capacity"
	}
	return out
}

func pointerLiteral(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		p := &vec{x: float64(i)} // want "&composite literal allocates every iteration"
		total += p.x
	}
	return total
}

func sliceLiteral(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		row := []int{i, i + 1} // want "slice literal allocates every iteration"
		total += row[0]
	}
	return total
}

func mapLiteral(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		m := map[int]int{i: i} // want "map literal allocates every iteration"
		total += m[i]
	}
	return total
}

func capturingClosure(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		add := func() int { return i } // want "closure capturing outer variables allocates every iteration"
		total += add()
	}
	return total
}

func boxesArgument(n int) {
	for i := 0; i < n; i++ {
		consume(vec{x: float64(i)}) // want "concrete value boxed into interface parameter"
	}
}

func concatenates(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want "string += allocates every iteration"
	}
	return s
}

// --- negatives ---

// appendsPreallocated is growsUnbounded's clean twin: the capacity is
// stated before the loop, so append never reallocates.
func appendsPreallocated(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	return out
}

// fieldPreallocated recognizes preallocation through composite-literal
// construction of a struct field.
func fieldPreallocated(n int) *accum {
	a := &accum{buf: make([]float64, 0, n)}
	for i := 0; i < n; i++ {
		a.buf = append(a.buf, float64(i))
	}
	return a
}

// callerOwnsBuffer appends into a slice parameter: the caller made the
// allocation decision; a finding here would blame the wrong function.
func callerOwnsBuffer(dst []float64, n int) []float64 {
	for i := 0; i < n; i++ {
		dst = append(dst, float64(i))
	}
	return dst
}

// constructsTable stores each allocation straight into the structure
// being built: N live objects is the product, not garbage.
func constructsTable(n int) [][]float64 {
	t := make([][]float64, n)
	for i := range t {
		t[i] = make([]float64, 4)
	}
	return t
}

// hoistableClosureIsFree captures nothing: the compiler hoists it, so
// no closure cell allocates.
func hoistableClosureIsFree(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		double := func(x int) int { return 2 * x }
		total += double(i)
	}
	return total
}

// valueLiteralIsFree: a value struct literal lives in registers or on
// the stack.
func valueLiteralIsFree(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		v := vec{x: float64(i), y: 1}
		total += v.x + v.y
	}
	return total
}

// passesPointerShaped: pointer-shaped values fit the interface word
// without boxing.
func passesPointerShaped(n int) {
	v := &vec{}
	for i := 0; i < n; i++ {
		consume(v)
	}
}

// documentedAllocation shows the escape hatch: intentional
// per-iteration allocation carries its reason in place.
func documentedAllocation(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		//lint:ignore hotalloc corpus case: the fresh payload each iteration is the point
		fresh := make([]float64, 4)
		fresh[0] = float64(i)
		total += fresh[0]
	}
	return total
}
