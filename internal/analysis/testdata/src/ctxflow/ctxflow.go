// Package ctxflow is the golden corpus for the cancellation-propagation
// analyzer. The positives block (or drop the context) inside functions
// that receive a context — directly, through a ctx-carrying spec
// struct, and one call away through a blocking helper. The negatives
// are the guarded twins: ctx.Done() selects, try-selects with a
// default, the Done receive itself, and functions with no context to
// observe in the first place.
package ctxflow

import (
	"context"
	"sync"
	"time"

	"gbpolar/internal/simmpi"
)

// Spec carries its context the way gb.RunSpec and supervise.Spec do;
// the receives-a-context rule is structural, so this corpus struct
// must match too.
type Spec struct {
	Ctx context.Context
	N   int
}

// --- positives ---

func sleeps(ctx context.Context, d time.Duration) {
	time.Sleep(d) // want "time.Sleep in a context-receiving function is not guarded by a ctx.Done() select"
}

func recvBare(ctx context.Context, ch chan int) int {
	return <-ch // want "channel receive in a context-receiving function is not guarded"
}

func sendBare(ctx context.Context, ch chan<- int) {
	ch <- 1 // want "channel send in a context-receiving function is not guarded"
}

func rangesOverChannel(ctx context.Context, ch chan int) int {
	total := 0
	for v := range ch { // want "range over channel in a context-receiving function is not guarded"
		total += v
	}
	return total
}

func runSpec(s Spec, c *simmpi.Comm) error {
	_, err := c.Recv(0) // want "simmpi blocking Recv in a context-receiving function is not guarded"
	return err
}

func waitsOnGroup(ctx context.Context, wg *sync.WaitGroup) {
	wg.Wait() // want "sync.WaitGroup.Wait in a context-receiving function is not guarded"
}

func dropsCtx(ctx context.Context, ch chan int) {
	_ = guarded(context.Background(), ch) // want "context.Background passed while a context is in scope"
}

func callsBlockingHelper(ctx context.Context, ch chan int) {
	drainOne(ch) // want "call blocks (channel receive inside drainOne) with no way to observe the context in scope"
}

// drainOne blocks but receives no context — clean on its own (it has
// nothing to select on); the finding belongs at context-bearing call
// sites like callsBlockingHelper's.
func drainOne(ch chan int) int {
	return <-ch
}

// --- negatives ---

// guarded is recvBare's clean twin: the receive is a case of a select
// that also observes ctx.Done().
func guarded(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// trySend is sendBare's clean twin: the default clause means the
// select can always proceed.
func trySend(ctx context.Context, ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// observesDone blocks on the Done channel itself: that receive IS the
// cancellation observation.
func observesDone(ctx context.Context) {
	<-ctx.Done()
}

// rootAtTheRoot passes a fresh root context from a function with no
// context in scope — the only place Background belongs.
func rootAtTheRoot(ch chan int) int {
	return guarded(context.Background(), ch)
}
