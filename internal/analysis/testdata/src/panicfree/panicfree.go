// Corpus for the panicfree analyzer, loaded under an internal/ import
// path: library packages must propagate errors, never kill the world.
package panicfree

import (
	"errors"
	"fmt"
	"log"
	"os"
)

// Positive: a library panic bypasses the fault runtime's healing.
func explode(n int) {
	if n < 0 {
		panic("negative count") // want "panic in a library package"
	}
}

// Positives: log.Fatal* is an exit in disguise.
func fatal(err error) {
	log.Fatal(err)              // want "log.Fatal in a library package"
	log.Fatalf("died: %v", err) // want "log.Fatalf in a library package"
}

// Positive: only commands may terminate the process.
func quit() {
	os.Exit(1) // want "os.Exit in a library package"
}

// Negative: returning an error is the sanctioned failure path.
func polite(n int) error {
	if n < 0 {
		return errors.New("negative count")
	}
	return nil
}

// Negative: non-fatal logging is fine.
func chatty(err error) error {
	log.Printf("recovering: %v", err)
	return fmt.Errorf("wrapped: %w", err)
}
