// Negative corpus for the determinism analyzer: this package is not in
// the kernel set, so the same patterns that fire in the determinism
// corpus are out of scope here. (CLI layers may read clocks and iterate
// maps for display; only kernels owe bitwise reproducibility.)
package detskip

import "time"

func timestamp() int64 {
	return time.Now().UnixNano()
}

func display(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
