// Corpus for the spmdsym analyzer: collectives under rank-dependent
// conditionals deadlock the world unless every branch issues the same
// collective sequence.
package spmdsym

import "gbpolar/internal/simmpi"

// Positive: only rank 0 reaches the Barrier; everyone else sails past.
func asymmetricIf(c *simmpi.Comm) error {
	if c.Rank() == 0 {
		if err := c.Barrier(); err != nil { // want "collective Barrier is only reached under a rank-dependent condition"
			return err
		}
	}
	return nil
}

// Positive: rank dependence flows through local variables.
func taintedVariable(c *simmpi.Comm) error {
	r := c.Rank()
	leader := r == 0
	if leader {
		return c.Bcast(nil, 0) // want "collective Bcast is only reached under a rank-dependent condition"
	}
	return nil
}

// Positive: a switch on rank with no matching collectives elsewhere.
func asymmetricSwitch(c *simmpi.Comm) error {
	switch c.Rank() {
	case 0:
		return c.Barrier() // want "collective Barrier is only reached under a rank-dependent condition"
	}
	return nil
}

// Positive: loop trip count depends on rank, so ranks disagree on how
// many Barriers they run.
func rankBoundedLoop(c *simmpi.Comm) error {
	for i := 0; i < c.Rank(); i++ {
		if err := c.Barrier(); err != nil { // want "collective Barrier is only reached under a rank-dependent condition"
			return err
		}
	}
	return nil
}

// Documented limitation: early-return symmetry is not modeled — the
// analyzer compares an if body against its (here missing) else, so the
// tail-return shape is flagged even though both paths call Allgatherv.
// Restructure as an explicit if/else (below) or carry a lint:ignore.
func tailReturnShape(c *simmpi.Comm, seg []float64) ([]float64, error) {
	if c.Rank() > 0 {
		return c.Allgatherv(seg) // want "collective Allgatherv is only reached under a rank-dependent condition"
	}
	return c.Allgatherv(nil)
}

// Negative: both branches issue the same collective sequence — the
// master/worker Allgatherv idiom is legal SPMD.
func symmetricIfElse(c *simmpi.Comm, seg []float64) ([]float64, error) {
	if c.Rank() > 0 {
		all, err := c.Allgatherv(seg)
		if err != nil {
			return nil, err
		}
		return all, nil
	} else {
		all, err := c.Allgatherv(nil)
		if err != nil {
			return nil, err
		}
		return all, nil
	}
}

// Negative: every case (default included) issues the same sequence.
func symmetricSwitch(c *simmpi.Comm) error {
	switch c.Rank() {
	case 0:
		return c.Bcast(nil, 0)
	default:
		return c.Bcast(nil, 0)
	}
}

// Negative: point-to-point calls under rank conditionals are normal
// master/worker structure.
func masterWorker(c *simmpi.Comm) error {
	if c.Rank() == 0 {
		return c.Send(1, []float64{1})
	}
	_, err := c.Recv(0)
	return err
}

// Negative: a variable merely named rank is not the comm rank; every
// rank runs this loop identically.
func rankIsJustAName(c *simmpi.Comm, p int) error {
	for rank := 0; rank < p; rank++ {
		if rank == 0 {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Negative: unconditional collectives are the SPMD happy path.
func unconditional(c *simmpi.Comm, v []float64) ([]float64, error) {
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	return c.Allreduce(v, simmpi.Sum)
}
