// Corpus for //lint:ignore handling, exercised through floateq findings.
package ignore

// Suppressed: a directive on the offending line, scoped to the analyzer.
func sameLine(a, b float64) bool {
	return a == b //lint:ignore floateq corpus: exact comparison intended
}

// Suppressed: a directive on the line above, unscoped (covers every
// analyzer).
func lineAbove(a, b float64) bool {
	//lint:ignore corpus: bitwise contract documented here
	return a == b
}

// Not suppressed: the directive is scoped to a different analyzer, so
// the floateq finding survives.
func wrongScope(a, b float64) bool {
	return a == b //lint:ignore spmdsym corpus: scope mismatch on purpose // want "floating-point values compared with =="
}

// Not suppressed: the directive is two lines up; only same-line and
// line-above placements count.
func tooFarAway(a, b float64) bool {
	//lint:ignore corpus: too far from the finding to apply

	return a == b // want "floating-point values compared with =="
}
