// Corpus for the erretcheck analyzer: simmpi/fault error results signal
// rank loss and plan errors; discarding them is always a bug.
package erretcheck

import (
	"fmt"

	"gbpolar/internal/fault"
	"gbpolar/internal/simmpi"
)

// Positives: the three discard shapes for statement calls.
func dropped(c *simmpi.Comm) {
	c.Barrier()          // want "error result of simmpi.Barrier is dropped"
	go c.Barrier()       // want "error result of simmpi.Barrier is dropped by go statement"
	defer c.Barrier()    // want "error result of simmpi.Barrier is dropped by defer"
	fault.Parse("bad@@") // want "error result of fault.Parse is dropped"
}

// Positives: blanking every error position discards it just as surely.
func blanked(c *simmpi.Comm) {
	_, _ = c.Allreduce(nil, simmpi.Sum) // want "error result of simmpi.Allreduce is assigned to the blank identifier"
	v, _ := c.Gather(nil, 0)            // want "error result of simmpi.Gather is assigned to the blank identifier"
	_ = v
	_, _ = fault.Parse("chaos:5") // want "error result of fault.Parse is assigned to the blank identifier"
}

// Negative: the error is named and handled.
func handled(c *simmpi.Comm) error {
	if err := c.Barrier(); err != nil {
		return err
	}
	v, err := c.Allreduce(nil, simmpi.Sum)
	if err != nil {
		return err
	}
	_ = v
	p, err := fault.Parse("crash:1@4")
	if err != nil {
		return err
	}
	return p.Validate()
}

// Negative: the analyzer polices simmpi and fault only — other dropped
// errors are vet/errcheck territory, not an SPMD invariant.
func otherPackages() {
	fmt.Println("fmt errors are not simmpi errors")
}

// Negative: error-free simmpi methods have nothing to drop.
func noError(c *simmpi.Comm) int {
	return c.Rank() + c.Size()
}
