// Corpus for the erretcheck analyzer: simmpi/fault error results signal
// rank loss and plan errors; discarding them is always a bug.
package erretcheck

import (
	"fmt"

	"gbpolar/internal/fault"
	"gbpolar/internal/fault/fs"
	"gbpolar/internal/simmpi"
)

// Positives: the three discard shapes for statement calls.
func dropped(c *simmpi.Comm) {
	c.Barrier()          // want "error result of simmpi.Barrier is dropped"
	go c.Barrier()       // want "error result of simmpi.Barrier is dropped by go statement"
	defer c.Barrier()    // want "error result of simmpi.Barrier is dropped by defer"
	fault.Parse("bad@@") // want "error result of fault.Parse is dropped"
}

// Positives: blanking every error position discards it just as surely.
func blanked(c *simmpi.Comm) {
	_, _ = c.Allreduce(nil, simmpi.Sum) // want "error result of simmpi.Allreduce is assigned to the blank identifier"
	v, _ := c.Gather(nil, 0)            // want "error result of simmpi.Gather is assigned to the blank identifier"
	_ = v
	_, _ = fault.Parse("chaos:5") // want "error result of fault.Parse is assigned to the blank identifier"
}

// Negative: the error is named and handled.
func handled(c *simmpi.Comm) error {
	if err := c.Barrier(); err != nil {
		return err
	}
	v, err := c.Allreduce(nil, simmpi.Sum)
	if err != nil {
		return err
	}
	_ = v
	p, err := fault.Parse("crash:1@4")
	if err != nil {
		return err
	}
	return p.Validate()
}

// Positives: the storage fault surface — every fault/fs error is a disk
// failure a durability site must observe.
func droppedStorage(fsys fs.FS, f fs.File) {
	fsys.Rename("a.tmp", "a")              // want "error result of fs.Rename is dropped"
	defer f.Sync()                         // want "error result of fs.Sync is dropped by defer"
	_ = fs.WriteFileAtomic(fsys, "p", nil) // want "error result of fs.WriteFileAtomic is assigned to the blank identifier"
	_, _ = fsys.CreateTemp("d", "x-*")     // want "error result of fs.CreateTemp is assigned to the blank identifier"
}

// Negative: storage errors that are named and handled.
func handledStorage(fsys fs.FS, path string, data []byte) error {
	if err := fsys.MkdirAll("d"); err != nil {
		return err
	}
	f, err := fsys.CreateTemp("d", "x-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(f.Name(), path)
}

// Negative: the analyzer polices simmpi and fault only — other dropped
// errors are vet/errcheck territory, not an SPMD invariant.
func otherPackages() {
	fmt.Println("fmt errors are not simmpi errors")
}

// Negative: error-free simmpi methods have nothing to drop.
func noError(c *simmpi.Comm) int {
	return c.Rank() + c.Size()
}
