// Package osfileok is the negative twin of the os.File durability rule:
// the same dropped Close/Sync shapes on an import path OUTSIDE the
// durability packages (corpus/osfileok) must produce zero findings —
// ordinary file handling is errcheck territory, not a gblint invariant.
package osfileok

import "os"

func droppedOutsideDurability(path string, data []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Write(data)
	f.Sync()
	defer f.Close()
}

func blankedOutsideDurability(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	_ = f.Close()
}
