// Corpus for malformed //lint:ignore directives: an ignore without a
// reason is itself a finding, and it suppresses nothing. Checked by
// TestMalformedIgnore with explicit assertions (a want comment cannot
// share the line without becoming part of the directive).
package badignore

func malformed(a, b float64) bool {
	return a != b //lint:ignore
}
