// Package simmpi is a corpus stub standing in for gbpolar/internal/simmpi:
// the analyzers match methods by receiver type name and package-path
// suffix, so this stub exercises them exactly as the real package does.
// It must stay finding-free under every analyzer — the rankCrashed panic
// below is the panicfree allowlist's negative case.
package simmpi

// Op selects a reduction operator.
type Op int

// Sum adds elementwise.
const Sum Op = iota

// Comm is one rank's endpoint in a simulated world.
type Comm struct {
	rank, size int
}

// Rank returns the calling rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.size }

// Barrier blocks until every rank arrives.
func (c *Comm) Barrier() error { return nil }

// Bcast broadcasts buf from root.
func (c *Comm) Bcast(buf []float64, root int) error { return nil }

// Reduce combines contributions at root.
func (c *Comm) Reduce(v []float64, op Op, root int) ([]float64, error) { return v, nil }

// Allreduce combines contributions everywhere.
func (c *Comm) Allreduce(v []float64, op Op) ([]float64, error) { return v, nil }

// Gather collects contributions at root.
func (c *Comm) Gather(v []float64, root int) ([]float64, error) { return v, nil }

// Allgatherv concatenates variable-length contributions everywhere.
func (c *Comm) Allgatherv(v []float64) ([]float64, error) { return v, nil }

// Send is point-to-point and carries no symmetry obligation.
func (c *Comm) Send(to int, v []float64) error { return nil }

// Recv is point-to-point and carries no symmetry obligation.
func (c *Comm) Recv(from int) ([]float64, error) { return nil, nil }

// rankCrashed is the sanctioned control-flow panic: thrown when a fault
// kills a rank mid-collective, recovered at the worker boundary.
type rankCrashed struct{ rank int }

func (c *Comm) crash() {
	panic(rankCrashed{c.rank})
}
