// Package analysis is the project's static-analysis suite (`gblint`). It
// enforces the invariants the compiler cannot see but the paper's
// correctness story rests on:
//
//   - every rank executes the same sequence of collectives, within one
//     function body (spmdsym) and across the whole call tree
//     (collectivesym);
//   - simmpi/fault error returns are never silently dropped (erretcheck);
//   - numeric kernels are bitwise deterministic — no map-order float
//     accumulation, no unseeded RNGs, no clock reads (determinism);
//   - library packages never panic or exit the process (panicfree);
//   - float64 values are never compared with == / != (floateq);
//   - functions that receive a context never block unguarded and never
//     drop the context for a fresh root (ctxflow);
//   - the hot kernel loops never allocate per iteration (hotalloc).
//
// The interprocedural analyzers (collectivesym, ctxflow) share a
// module-local call graph (see callgraph.go) built once per Analyze call
// and exposed to passes via Pass.Prog.
//
// The suite is built on the standard library only (go/ast, go/parser,
// go/types): go.mod stays dependency-free. Findings carry file:line
// positions; a `//lint:ignore reason` comment on the offending line or
// the line above suppresses them (optionally scoped to one analyzer:
// `//lint:ignore floateq exact sentinel comparison`). DESIGN.md §"Static
// invariants" documents the analyzers and the ignore policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Finding is one diagnostic.
type Finding struct {
	// Analyzer names the analyzer that produced the finding ("lint" for
	// directive-hygiene diagnostics from the driver itself).
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Program is the whole-module view shared by every pass of one Analyze
// call: the loaded package set plus lazily-built interprocedural
// infrastructure. Analyzers that only need their own package ignore it.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	cgOnce sync.Once
	cg     *CallGraph

	collOnce  sync.Once
	collSums  map[*CGNode]*collSummary
	collTaint map[*types.Var]bool

	ctxOnce sync.Once
	ctxSums map[*CGNode]*ctxSummary
}

// CallGraph returns the module-local call graph, built on first use.
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = buildCallGraph(p.Fset, p.Pkgs) })
	return p.cg
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// Prog is the whole-module view for interprocedural analyzers. A
	// pass must still report only positions inside Pkg, so //lint:ignore
	// suppression and finding attribution stay per-package.
	Prog *Program

	analyzer *Analyzer
	report   func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All holds the eight project analyzers in reporting order: the five
// per-function checks, then the interprocedural suite.
var All = []*Analyzer{SPMDSym, ErrRetCheck, Determinism, PanicFree, FloatEq,
	CollectiveSym, CtxFlow, HotAlloc}

// byName maps analyzer names for directive scoping.
var byName = func() map[string]*Analyzer {
	m := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		m[a.Name] = a
	}
	return m
}()

// Analyze runs the analyzers over the packages, applies `//lint:ignore`
// directives, and returns the surviving findings sorted by position.
func Analyze(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Finding {
	prog := &Program{Fset: fset, Pkgs: pkgs}
	var all []Finding
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(fset, pkg)
		var found []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Fset:     fset,
				Pkg:      pkg,
				Prog:     prog,
				analyzer: a,
				report:   func(f Finding) { found = append(found, f) },
			}
			a.Run(pass)
		}
		found = append(found, bad...)
		all = append(all, suppress(found, dirs)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	file     string
	line     int
	analyzer string // "" suppresses every analyzer
}

// collectDirectives parses the //lint:ignore comments of a package and
// returns them plus hygiene findings for malformed ones (an ignore
// without a reason is itself an error: the reason IS the review record).
func collectDirectives(fset *token.FileSet, pkg *Package) ([]directive, []Finding) {
	var dirs []directive
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are not directives
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:ignore")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := directive{file: pos.Filename, line: pos.Line}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					if _, isAnalyzer := byName[fields[0]]; isAnalyzer {
						d.analyzer = fields[0]
						fields = fields[1:]
					}
				}
				if len(fields) == 0 {
					bad = append(bad, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore: a reason is required",
					})
					continue
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs, bad
}

// suppress drops findings covered by a directive on the same line or the
// line directly above.
func suppress(findings []Finding, dirs []directive) []Finding {
	if len(dirs) == 0 {
		return findings
	}
	out := findings[:0]
	for _, f := range findings {
		ignored := false
		for _, d := range dirs {
			if d.file == f.Pos.Filename &&
				(d.line == f.Pos.Line || d.line == f.Pos.Line-1) &&
				(d.analyzer == "" || d.analyzer == f.Analyzer) {
				ignored = true
				break
			}
		}
		if !ignored {
			out = append(out, f)
		}
	}
	return out
}

// --- shared helpers -----------------------------------------------------

// hasPathSuffix reports whether an import path is suffix or ends in
// "/suffix" — "internal/simmpi" matches "gbpolar/internal/simmpi" both in
// the real module and in the golden-test corpora.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// kernelPkgSuffixes are the numeric kernel packages the determinism
// analyzer polices. perf is included for the map-iteration rule but
// exempt from the clock/RNG rule: it is the designated measurement
// boundary (see internal/perf/clock.go). obs is policed like a kernel:
// the recorder must never read a clock itself — its clock is injected at
// construction (by perf, behind the measurement boundary).
var kernelPkgSuffixes = []string{
	"internal/gb",
	"internal/octree",
	"internal/quadrature",
	"internal/surface",
	"internal/bench",
	"internal/molecule",
	"internal/perf",
	"internal/obs",
}

func isKernelPkg(path string) bool {
	for _, s := range kernelPkgSuffixes {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

// walkFuncs visits every function body in the package: declarations and
// (nested) literals, each paired with its outermost enclosing body so
// per-function context (taint, sort calls) can be computed once.
func walkFuncs(pkg *Package, visit func(body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd.Body)
			}
		}
		// Function literals bound at package scope (var f = func() {...}).
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					ast.Inspect(v, func(n ast.Node) bool {
						if fl, ok := n.(*ast.FuncLit); ok {
							visit(fl.Body)
							return false
						}
						return true
					})
				}
			}
		}
	}
}
