package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the target module.
type Package struct {
	// Path is the package's import path (module path + directory).
	Path string
	// Dir is the absolute directory the files came from.
	Dir string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks a set of module-local packages using only
// the standard library: module-internal imports resolve to the loaded set,
// and everything else (the standard library itself) is type-checked from
// source via go/importer's "source" compiler. go.mod therefore stays
// dependency-free — no golang.org/x/tools.
type Loader struct {
	Fset *token.FileSet

	std  types.ImporterFrom
	pkgs map[string]*pkgState
}

type pkgState struct {
	pkg      *Package
	checking bool
	done     bool
	err      error
}

// NewLoader creates a loader with a fresh FileSet. A single loader caches
// type-checked standard-library packages across Load calls, so tests load
// many small package sets through one loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*pkgState),
	}
}

// LoadModule discovers every package under the module rooted at or above
// dir (the directory containing go.mod), parses its non-test files, and
// type-checks the lot. Packages are returned sorted by import path.
func (l *Loader) LoadModule(dir string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if p != root && skipDirName(d.Name()) {
			return filepath.SkipDir
		}
		files, err := goSources(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		if err := l.add(imp, p); err != nil {
			return err
		}
		paths = append(paths, imp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l.checkAll(paths)
}

// skipDirName reports whether a directory subtree is never part of a
// package set: hidden and underscore-prefixed trees, vendor, and —
// at ANY nesting depth — testdata. Golden corpora under testdata
// compile only against their own corpus import paths (see
// golden_test.go); loading them as module packages would both fail
// type-checking and leak corpus findings into module runs.
func skipDirName(name string) bool {
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
		name == "testdata" || name == "vendor"
}

// LoadDirs loads an explicit importPath → directory set (the golden-test
// corpora): every listed package is parsed and type-checked, with imports
// among the set resolved internally. Only each listed directory's own
// files become the package — nested trees (testdata especially) are
// never picked up; TestLoadDirsSkipsNestedTestdata pins this.
func (l *Loader) LoadDirs(dirs map[string]string) ([]*Package, error) {
	var paths []string
	for imp := range dirs {
		paths = append(paths, imp)
	}
	sort.Strings(paths)
	for _, imp := range paths {
		if err := l.add(imp, dirs[imp]); err != nil {
			return nil, err
		}
	}
	return l.checkAll(paths)
}

// add parses a package directory and registers it for type-checking.
func (l *Loader) add(importPath, dir string) error {
	if _, ok := l.pkgs[importPath]; ok {
		return fmt.Errorf("analysis: duplicate package %q", importPath)
	}
	names, err := goSources(dir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	pkg := &Package{Path: importPath, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		pkg.Files = append(pkg.Files, f)
	}
	l.pkgs[importPath] = &pkgState{pkg: pkg}
	return nil
}

// checkAll type-checks the named packages (dependencies first, on demand)
// and returns them sorted by import path.
func (l *Loader) checkAll(paths []string) ([]*Package, error) {
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		if _, err := l.ImportFrom(p, "", 0); err != nil {
			return nil, err
		}
		out = append(out, l.pkgs[p].pkg)
	}
	return out, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom resolves module-local packages from the loaded set and
// defers everything else to the standard-library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	st, ok := l.pkgs[path]
	if !ok {
		return l.std.ImportFrom(path, dir, mode)
	}
	if st.done {
		return st.pkg.Types, st.err
	}
	if st.checking {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	st.checking = true
	defer func() { st.checking = false; st.done = true }()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, st.pkg.Files, info)
	st.pkg.Types = tpkg
	st.pkg.Info = info
	if len(typeErrs) > 0 {
		st.err = fmt.Errorf("analysis: type errors in %s: %v", path, typeErrs[0])
	}
	return tpkg, st.err
}

// goSources lists the non-test .go files of dir in sorted order, skipping
// files opting out of the build with a `//go:build ignore` constraint.
func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if buildIgnored(string(src)) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// buildIgnored reports whether a file's header carries a `//go:build
// ignore` (or legacy `// +build ignore`) constraint.
func buildIgnored(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			return false
		}
		if line == "//go:build ignore" || strings.HasPrefix(line, "// +build ignore") {
			return true
		}
	}
	return false
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		d = parent
	}
}
