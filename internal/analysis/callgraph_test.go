package analysis

import "testing"

// callgraphProgram builds a Program over the callgraph corpus plus the
// simmpi stub it calls into, sharing the corpus loader's cache.
func callgraphProgram(t *testing.T) *Program {
	t.Helper()
	fset, pkgs := loadCorpus(t)
	cg := pkgs["corpus/callgraph"]
	mpi := pkgs["gbpolar/internal/simmpi"]
	if cg == nil || mpi == nil {
		t.Fatal("callgraph corpus or simmpi stub not loaded")
	}
	return &Program{Fset: fset, Pkgs: []*Package{cg, mpi}}
}

// findNode locates a declared function/method by its display name.
func findNode(t *testing.T, g *CallGraph, name string) *CGNode {
	t.Helper()
	var found *CGNode
	for _, n := range g.All() {
		if n.Decl != nil && n.Name() == name {
			if found != nil {
				t.Fatalf("duplicate node %q", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node %q in the graph", name)
	}
	return found
}

// TestCallGraphMutualRecursion: pingA and pingB call each other, so
// they must share an SCC, and the collective-summary fixpoint over
// that component must converge — to the mixed lattice point that still
// remembers Barrier is involved — rather than growing forever.
func TestCallGraphMutualRecursion(t *testing.T) {
	prog := callgraphProgram(t)
	g := prog.CallGraph()
	a := findNode(t, g, "pingA")
	b := findNode(t, g, "pingB")
	if !g.SameSCC(a, b) {
		t.Fatal("pingA and pingB are mutually recursive but not in the same SCC")
	}
	if g.SameSCC(a, findNode(t, g, "callsLit")) {
		t.Fatal("callsLit wrongly merged into the pingA/pingB component")
	}
	sums := prog.collectiveSummaries()
	for _, n := range []*CGNode{a, b} {
		eff := sums[n].eff
		if !eff.mixed {
			t.Errorf("%s: recursive summary did not converge to mixed: %+v", n.Name(), eff)
		}
		if !eff.kindSet()["Barrier"] {
			t.Errorf("%s: converged summary lost the Barrier kind: %+v", n.Name(), eff)
		}
	}
}

// TestCallGraphResolvedEdges: a locally-bound literal and a concrete
// method value both resolve to real callee nodes, leaving no recorded
// blind spot.
func TestCallGraphResolvedEdges(t *testing.T) {
	g := callgraphProgram(t).CallGraph()

	lit := findNode(t, g, "callsLit")
	var litEdge bool
	for _, e := range lit.Calls {
		if e.Callee != nil && e.Callee.Lit != nil {
			litEdge = true
		}
	}
	if !litEdge {
		t.Error("callsLit: call through the local binding did not resolve to the literal's node")
	}
	if lit.Unknown {
		t.Error("callsLit: fully resolved node wrongly marked Unknown")
	}

	mv := findNode(t, g, "callsMethodValue")
	var mvEdge bool
	for _, e := range mv.Calls {
		if e.Callee != nil && e.Callee.Name() == "Comm.Barrier" {
			mvEdge = true
		}
	}
	if !mvEdge {
		t.Error("callsMethodValue: method-value call did not resolve to Comm.Barrier")
	}
	if mv.Unknown {
		t.Error("callsMethodValue: fully resolved node wrongly marked Unknown")
	}
}

// TestCallGraphUnknownConservatism: interface dispatch, stdlib calls,
// and reassigned function variables must be recorded as blind spots —
// an unresolved edge plus the node's Unknown flag — never silently
// resolved.
func TestCallGraphUnknownConservatism(t *testing.T) {
	g := callgraphProgram(t).CallGraph()
	for _, name := range []string{"callsInterface", "callsStdlib", "reassigned"} {
		n := findNode(t, g, name)
		if !n.Unknown {
			t.Errorf("%s: unresolvable call did not mark the node Unknown", name)
		}
		var nilEdge bool
		for _, e := range n.Calls {
			if e.Callee == nil {
				nilEdge = true
			}
		}
		if !nilEdge {
			t.Errorf("%s: expected at least one unresolved (nil-callee) edge", name)
		}
	}
	// And a reassigned binding must not resolve to either literal.
	re := findNode(t, g, "reassigned")
	for _, e := range re.Calls {
		if e.Callee != nil && e.Callee.Lit != nil {
			t.Error("reassigned: call through a twice-assigned variable wrongly resolved to a literal")
		}
	}
}
