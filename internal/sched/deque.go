// Package sched implements a Cilk-style randomized work-stealing task
// scheduler (Blumofe & Leiserson), the shared-memory parallel substrate of
// the paper's OCT_CILK and OCT_MPI+CILK programs. Each worker owns a
// double-ended queue: newly spawned tasks are pushed to the bottom and
// popped from the bottom by the owner (depth-first, cache-friendly), while
// idle workers steal from the top of a random victim's deque (oldest,
// largest-granularity work — the property the paper credits for low
// inter-thread communication).
package sched

import "sync"

// Task is a unit of work executed on some worker.
type Task func(w *Worker)

// deque is a mutex-protected double-ended work queue. The mutex version is
// deliberately chosen over a lock-free Chase-Lev deque: the contention
// profile of fork-join tree traversals is owner-dominated, and the mutex
// cost is invisible next to the numeric kernels while being trivially
// correct under the race detector.
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

// pushBottom adds a task at the owner end.
func (d *deque) pushBottom(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

// popBottom removes the most recently pushed task (owner end). It returns
// nil when the deque is empty.
func (d *deque) popBottom() Task {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	d.mu.Unlock()
	return t
}

// stealTop removes the oldest task (thief end). It returns nil when the
// deque is empty.
func (d *deque) stealTop() Task {
	d.mu.Lock()
	if len(d.tasks) == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.tasks[0]
	copy(d.tasks, d.tasks[1:])
	d.tasks[len(d.tasks)-1] = nil
	d.tasks = d.tasks[:len(d.tasks)-1]
	d.mu.Unlock()
	return t
}

// size returns the current task count (racy snapshot).
func (d *deque) size() int {
	d.mu.Lock()
	n := len(d.tasks)
	d.mu.Unlock()
	return n
}
