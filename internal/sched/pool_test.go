package sched

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunExecutes(t *testing.T) {
	p := New(4)
	defer p.Close()
	ran := false
	p.Run(func(w *Worker) { ran = true })
	if !ran {
		t.Fatal("Run did not execute the task")
	}
}

func TestSpawnWaitCompletesAll(t *testing.T) {
	p := New(4)
	defer p.Close()
	var count atomic.Int64
	p.Run(func(w *Worker) {
		var g Group
		for i := 0; i < 1000; i++ {
			w.Spawn(&g, func(inner *Worker) { count.Add(1) })
		}
		w.Wait(&g)
	})
	if count.Load() != 1000 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestNestedSpawns(t *testing.T) {
	p := New(4)
	defer p.Close()
	var count atomic.Int64
	// Fibonacci-style recursive fork-join.
	var fib func(w *Worker, n int) int
	fib = func(w *Worker, n int) int {
		count.Add(1)
		if n < 2 {
			return n
		}
		var g Group
		var left int
		w.Spawn(&g, func(inner *Worker) { left = fib(inner, n-1) })
		right := fib(w, n-2)
		w.Wait(&g)
		return left + right
	}
	var result int
	p.Run(func(w *Worker) { result = fib(w, 15) })
	if result != 610 {
		t.Fatalf("fib(15) = %d, want 610", result)
	}
	if count.Load() == 0 {
		t.Fatal("no recursive calls counted")
	}
}

func TestParallelRangeCoversAllIndices(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, grain := range []int{0, 1, 16, 1000} {
			marks := make([]atomic.Int32, max(n, 1))
			p.ParallelRange(n, grain, func(w *Worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					marks[i].Add(1)
				}
			})
			for i := 0; i < n; i++ {
				if got := marks[i].Load(); got != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, got)
				}
			}
		}
	}
}

func TestParallelRangeGrainBoundsChunks(t *testing.T) {
	p := New(2)
	defer p.Close()
	const n, grain = 1000, 32
	var maxChunk atomic.Int64
	p.ParallelRange(n, grain, func(w *Worker, lo, hi int) {
		c := int64(hi - lo)
		for {
			old := maxChunk.Load()
			if c <= old || maxChunk.CompareAndSwap(old, c) {
				break
			}
		}
	})
	if maxChunk.Load() > grain {
		t.Fatalf("chunk of %d exceeds grain %d", maxChunk.Load(), grain)
	}
}

func TestStaticRangeCoversAllIndices(t *testing.T) {
	p := New(3)
	defer p.Close()
	const n = 500
	marks := make([]atomic.Int32, n)
	p.StaticRange(n, func(w *Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i].Add(1)
		}
	})
	for i := range marks {
		if marks[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, marks[i].Load())
		}
	}
}

func TestStealsHappenUnderImbalance(t *testing.T) {
	p := New(4)
	defer p.Close()
	// Spawn many tasks from one worker: with 4 workers, some must steal.
	var count atomic.Int64
	p.Run(func(w *Worker) {
		var g Group
		for i := 0; i < 5000; i++ {
			w.Spawn(&g, func(inner *Worker) {
				// A little work so thieves have time to engage.
				s := 0
				for k := 0; k < 100; k++ {
					s += k
				}
				if s < 0 {
					t.Error("impossible")
				}
				count.Add(1)
			})
		}
		w.Wait(&g)
	})
	if count.Load() != 5000 {
		t.Fatalf("count = %d", count.Load())
	}
	if p.Steals() == 0 {
		t.Error("no steals occurred despite imbalance")
	}
	loads := p.WorkerLoads()
	total := int64(0)
	for _, l := range loads {
		total += l
	}
	if total < 5000 {
		t.Errorf("worker loads sum to %d", total)
	}
}

func TestPoolMinimumOneWorker(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.NumWorkers() != 1 {
		t.Fatalf("workers = %d", p.NumWorkers())
	}
	done := false
	p.Run(func(w *Worker) { done = true })
	if !done {
		t.Fatal("single-worker pool did not run task")
	}
}

func TestSequentialRunsReusePool(t *testing.T) {
	p := New(2)
	defer p.Close()
	for round := 0; round < 10; round++ {
		var sum atomic.Int64
		p.ParallelRange(100, 10, func(w *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(int64(i))
			}
		})
		if sum.Load() != 4950 {
			t.Fatalf("round %d: sum = %d", round, sum.Load())
		}
	}
}

// Property: ParallelRange computes the same reduction as a serial loop for
// arbitrary sizes.
func TestParallelRangeEquivalentToSerial(t *testing.T) {
	p := New(4)
	defer p.Close()
	f := func(n uint16, grain uint8) bool {
		size := int(n % 2000)
		var sum atomic.Int64
		p.ParallelRange(size, int(grain), func(w *Worker, lo, hi int) {
			local := int64(0)
			for i := lo; i < hi; i++ {
				local += int64(i * i)
			}
			sum.Add(local)
		})
		want := int64(0)
		for i := 0; i < size; i++ {
			want += int64(i * i)
		}
		return sum.Load() == want
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDequeOrdering(t *testing.T) {
	var d deque
	order := []int{}
	for i := 0; i < 3; i++ {
		i := i
		d.pushBottom(func(*Worker) { order = append(order, i) })
	}
	// Owner pops LIFO.
	d.popBottom()(nil)
	// Thief steals FIFO (oldest).
	d.stealTop()(nil)
	d.popBottom()(nil)
	if order[0] != 2 || order[1] != 0 || order[2] != 1 {
		t.Fatalf("order = %v, want [2 0 1]", order)
	}
	if d.popBottom() != nil || d.stealTop() != nil {
		t.Fatal("empty deque returned a task")
	}
	if d.size() != 0 {
		t.Fatalf("size = %d", d.size())
	}
}

func TestWorkerAccessors(t *testing.T) {
	p := New(3)
	defer p.Close()
	var id int
	var owner *Pool
	p.Run(func(w *Worker) {
		id = w.ID()
		owner = w.Pool()
	})
	if id < 0 || id >= 3 {
		t.Errorf("worker ID = %d", id)
	}
	if owner != p {
		t.Error("Pool() did not return the owning pool")
	}
	if p.TasksSpawned() < 0 {
		t.Error("TasksSpawned negative")
	}
	var g Group
	p.Run(func(w *Worker) {
		w.Spawn(&g, func(*Worker) {})
		w.Wait(&g)
	})
	if p.TasksSpawned() == 0 {
		t.Error("TasksSpawned did not count")
	}
}
