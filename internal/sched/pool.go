package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gbpolar/internal/obs"
)

// Pool is a fixed set of workers executing fork-join task graphs with
// randomized work stealing.
type Pool struct {
	workers []*Worker
	steals  atomic.Int64
	spawned atomic.Int64
	parks   atomic.Int64

	mu     sync.Mutex
	cond   *sync.Cond
	idle   int
	closed bool
	rec    *obs.Recorder
}

// Observe attaches an observability recorder: Close flushes the pool's
// lifetime steal and spawn totals into the "sched.steals"/"sched.tasks"
// gauges and each worker's executed-task count into the
// "sched.tasks_per_worker" gauge-side histogram (gauges, not counters —
// stealing is scheduling-dependent by design). Several pools may share
// one recorder; their totals add up.
func (p *Pool) Observe(rec *obs.Recorder) {
	p.mu.Lock()
	p.rec = rec
	p.mu.Unlock()
}

// Worker is one scheduler thread. Tasks receive the worker they run on so
// they can spawn children onto its deque.
type Worker struct {
	pool *Pool
	id   int
	rng  uint64
	dq   deque
	// executed counts tasks this worker ran (load-balance statistics fed
	// into the performance model).
	executed atomic.Int64
}

// ID returns the worker's index in the pool.
func (w *Worker) ID() int { return w.id }

// Pool returns the owning pool.
func (w *Worker) Pool() *Pool { return w.pool }

// New creates a pool with the given number of workers (minimum 1).
// The workers are goroutines; on a machine with fewer cores they simply
// interleave, preserving the scheduling semantics.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.workers = make([]*Worker, workers)
	for i := range p.workers {
		p.workers[i] = &Worker{pool: p, id: i, rng: uint64(i)*0x9e3779b97f4a7c15 + 1}
	}
	for _, w := range p.workers {
		go w.loop()
	}
	return p
}

// NumWorkers returns the worker count.
func (p *Pool) NumWorkers() int { return len(p.workers) }

// Steals returns the number of successful steals so far.
func (p *Pool) Steals() int64 { return p.steals.Load() }

// Parks returns how often a worker ran out of local and stealable work
// and went to sleep — the pool-level steal-idle signal the critical-path
// attribution reads alongside comm time (a high park count with low comm
// means the layout starves workers, not the network).
func (p *Pool) Parks() int64 { return p.parks.Load() }

// TasksSpawned returns the number of tasks spawned so far.
func (p *Pool) TasksSpawned() int64 { return p.spawned.Load() }

// WorkerLoads returns per-worker executed-task counts.
func (p *Pool) WorkerLoads() []int64 {
	out := make([]int64, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.executed.Load()
	}
	return out
}

// Close shuts the pool down. Outstanding tasks are abandoned; Close is
// meant to be called after all Run calls have returned.
func (p *Pool) Close() {
	p.mu.Lock()
	alreadyClosed := p.closed
	p.closed = true
	rec := p.rec
	p.mu.Unlock()
	p.cond.Broadcast()
	if !alreadyClosed && rec != nil {
		rec.GaugeAdd("sched.steals", p.steals.Load())
		rec.GaugeAdd("sched.tasks", p.spawned.Load())
		rec.GaugeAdd("sched.parks", p.parks.Load())
		for _, w := range p.workers {
			rec.ObserveGauge("sched.tasks_per_worker", w.executed.Load())
		}
	}
}

// loop is the worker main loop: run local work, steal, or park.
func (w *Worker) loop() {
	p := w.pool
	for {
		t := w.dq.popBottom()
		if t == nil {
			t = w.trySteal()
		}
		if t != nil {
			w.executed.Add(1)
			t(w)
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		// Re-check under the lock via a last steal attempt to avoid a
		// missed wakeup between the failed steal and parking.
		p.idle++
		p.parks.Add(1)
		p.cond.Wait()
		p.idle--
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
	}
}

// nextRand advances the worker's xorshift generator.
func (w *Worker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// trySteal makes one pass over the other workers in random order and
// returns a stolen task, or nil.
func (w *Worker) trySteal() Task {
	p := w.pool
	n := len(p.workers)
	if n == 1 {
		return nil
	}
	start := int(w.nextRand() % uint64(n))
	for k := 0; k < n; k++ {
		v := p.workers[(start+k)%n]
		if v == w {
			continue
		}
		if t := v.dq.stealTop(); t != nil {
			p.steals.Add(1)
			return t
		}
	}
	return nil
}

// Group tracks a set of spawned tasks for a join: Spawn increments the
// count, task completion decrements it, Wait helps run work until it
// reaches zero.
type Group struct {
	pending atomic.Int64
}

// Spawn schedules fn on w's deque as part of group g.
func (w *Worker) Spawn(g *Group, fn Task) {
	g.pending.Add(1)
	w.pool.spawned.Add(1)
	w.dq.pushBottom(func(inner *Worker) {
		fn(inner)
		g.pending.Add(-1)
	})
	// Wake a parked worker if any.
	p := w.pool
	p.mu.Lock()
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// Wait blocks until every task spawned into g has completed, executing
// local and stolen work while it waits (the Cilk "work-first" discipline:
// a waiting worker never idles while runnable work exists).
func (w *Worker) Wait(g *Group) {
	for g.pending.Load() > 0 {
		t := w.dq.popBottom()
		if t == nil {
			t = w.trySteal()
		}
		if t != nil {
			w.executed.Add(1)
			t(w)
			continue
		}
		runtime.Gosched()
	}
}

// Run executes fn on worker 0's context and blocks until fn returns. Work
// spawned by fn (transitively) is balanced across the pool. Run calls must
// not overlap.
func (p *Pool) Run(fn Task) {
	done := make(chan struct{})
	w := p.workers[0]
	w.dq.pushBottom(func(inner *Worker) {
		fn(inner)
		close(done)
	})
	p.mu.Lock()
	if p.idle > 0 {
		p.cond.Signal()
	}
	p.mu.Unlock()
	<-done
}

// ParallelRange runs fn over [0, n) by recursive binary splitting down to
// the given grain, spawning the halves so idle workers steal the large
// top-of-deque subranges first. fn receives the worker plus the half-open
// subrange. grain < 1 defaults to 1.
func (p *Pool) ParallelRange(n, grain int, fn func(w *Worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p.Run(func(w *Worker) {
		var g Group
		var split func(w *Worker, lo, hi int)
		split = func(w *Worker, lo, hi int) {
			for hi-lo > grain {
				mid := lo + (hi-lo)/2
				rlo, rhi := mid, hi // capture by value: hi mutates below
				//lint:ignore hotalloc the spawn closure IS the task; grain bounds live tasks to O(n/grain)
				w.Spawn(&g, func(inner *Worker) { split(inner, rlo, rhi) })
				hi = mid
			}
			fn(w, lo, hi)
		}
		split(w, 0, n)
		w.Wait(&g)
	})
}

// StaticRange runs fn over [0, n) split into one contiguous chunk per
// worker with no stealing — the static-chunking ablation contrasted with
// work stealing in the benchmarks.
func (p *Pool) StaticRange(n int, fn func(w *Worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	p.Run(func(w *Worker) {
		var g Group
		nw := len(p.workers)
		for i := 0; i < nw; i++ {
			lo := i * n / nw
			hi := (i + 1) * n / nw
			if lo == hi {
				continue
			}
			//lint:ignore hotalloc the spawn closure IS the task; one per worker per call
			w.Spawn(&g, func(inner *Worker) { fn(inner, lo, hi) })
		}
		w.Wait(&g)
	})
}
