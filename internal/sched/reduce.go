package sched

import "math/bits"

// ParallelReduce runs fn over [0, n) with the same recursive binary
// splitting (and therefore the same stealing behavior) as ParallelRange,
// but gives every subrange its own accumulator and combines them with
// merge in ascending-range order along the split tree.
//
// The split tree — and hence the merge order — is a pure function of
// (n, grain): which worker executes which subrange varies run to run under
// randomized stealing, but the reduction ORDER does not. For
// non-commutative merges (floating-point summation foremost) the result is
// therefore bitwise identical across runs, which is what lets the drivers
// in internal/gb promise bitwise-reproducible energies while still load
// balancing dynamically. (This is the classic Cilk "reducer" discipline.)
//
// mk must return a fresh zero accumulator; fn folds one subrange into the
// accumulator it is handed; merge folds src into dst, where every element
// of src covers ranges strictly above those already in dst. At most
// O(n/grain) accumulators are live at once — size grain accordingly when
// accumulators are large.
//
// It is a package-level function rather than a Pool method only because Go
// methods cannot have type parameters.
func ParallelReduce[T any](p *Pool, n, grain int, mk func() T, fn func(w *Worker, lo, hi int, acc T), merge func(dst, src T)) T {
	root := mk()
	if n <= 0 {
		return root
	}
	if grain < 1 {
		grain = 1
	}
	p.Run(func(w *Worker) {
		var rec func(w *Worker, lo, hi int, acc T)
		rec = func(w *Worker, lo, hi int, acc T) {
			var g Group
			// children[i] accumulates the i-th spawned right half; spawn
			// order walks downward, so children hold DESCENDING ranges —
			// at most one per halving, so ⌈log2((hi−lo)/grain)⌉+1 caps it.
			children := make([]T, 0, bits.Len(uint((hi-lo)/grain))+1)
			for hi-lo > grain {
				mid := lo + (hi-lo)/2
				child := mk()
				children = append(children, child)
				rlo, rhi := mid, hi // capture by value: hi mutates below
				//lint:ignore hotalloc the spawn closure IS the task; one per split, O(log(n/grain)) per branch
				w.Spawn(&g, func(inner *Worker) { rec(inner, rlo, rhi, child) })
				hi = mid
			}
			fn(w, lo, hi, acc)
			w.Wait(&g)
			// Merge in ascending-range order: reverse of spawn order.
			for i := len(children) - 1; i >= 0; i-- {
				merge(acc, children[i])
			}
		}
		rec(w, 0, n, root)
	})
	return root
}
