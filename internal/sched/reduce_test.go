package sched

import (
	"math"
	"testing"
)

// TestParallelReduceOrdered drives a non-commutative merge (sequence
// concatenation) through heavy stealing and asserts the reduction order is
// exactly ascending range order: the root must see 0..n-1 in order no
// matter which workers ran which subranges.
func TestParallelReduceOrdered(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		for rep := 0; rep < 5; rep++ {
			got := ParallelReduce(p, n, 3,
				func() *[]int { s := make([]int, 0, n); return &s },
				func(_ *Worker, lo, hi int, acc *[]int) {
					for i := lo; i < hi; i++ {
						*acc = append(*acc, i)
					}
				},
				func(dst, src *[]int) { *dst = append(*dst, *src...) })
			if len(*got) != n {
				t.Fatalf("workers=%d: %d elements, want %d", workers, len(*got), n)
			}
			for i, v := range *got {
				if v != i {
					t.Fatalf("workers=%d rep=%d: element %d = %d, reduction order not ascending", workers, rep, i, v)
				}
			}
		}
		p.Close()
	}
}

// TestParallelReduceBitwiseStable sums floats whose addition order changes
// the low bits, and asserts the result is bitwise identical across
// repeats and worker counts at a fixed grain.
func TestParallelReduceBitwiseStable(t *testing.T) {
	const n = 4096
	vals := make([]float64, n)
	x := uint64(12345)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = math.Ldexp(float64(x%1000003), int(x%40)-20)
	}
	sum := func(workers int) float64 {
		p := New(workers)
		defer p.Close()
		got := ParallelReduce(p, n, 7,
			func() *float64 { return new(float64) },
			func(_ *Worker, lo, hi int, acc *float64) {
				for i := lo; i < hi; i++ {
					*acc += vals[i]
				}
			},
			func(dst, src *float64) { *dst += *src })
		return *got
	}
	want := sum(1)
	for _, workers := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 5; rep++ {
			if got := sum(workers); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("workers=%d rep=%d: %x != %x", workers, rep, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

func TestParallelReduceEmpty(t *testing.T) {
	p := New(2)
	defer p.Close()
	got := ParallelReduce(p, 0, 1,
		func() *int { return new(int) },
		func(_ *Worker, lo, hi int, acc *int) { *acc += hi - lo },
		func(dst, src *int) { *dst += *src })
	if *got != 0 {
		t.Fatalf("empty range reduced to %d", *got)
	}
}
