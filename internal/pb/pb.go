// Package pb implements a finite-difference Poisson solver for molecular
// electrostatics — the reference model the paper's introduction positions
// GB against ("The Poisson-Boltzmann model can be used to approximate
// Epol. However, due to high computational costs [it] is rarely used for
// large molecules", §I). It exists to validate the GB pipeline: the
// polarization energy is the reaction-field energy
//
//	Epol = ½ Σᵢ qᵢ·(φ_solvated(xᵢ) − φ_uniform(xᵢ))
//
// where φ solves ∇·(ε∇φ) = −4πκρ on a grid with ε = EpsIn inside the
// van der Waals volume and EpsOut outside. Subtracting the
// uniform-dielectric solve on the SAME grid cancels the grid self-energy.
//
// The solver is successive over-relaxation (SOR) on the standard 7-point
// stencil with harmonic-mean face dielectrics and analytic Coulomb
// boundary conditions — deliberately simple and dependency-free; it is a
// validation oracle, not a production PB code (which is exactly the
// paper's point).
package pb

import (
	"fmt"
	"math"

	"gbpolar/internal/gb"
	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
)

// Config controls the solver.
type Config struct {
	// Dim is the grid points per axis (Dim³ unknowns). Default 65.
	Dim int
	// PaddingÅ is the margin between the molecule and the boundary.
	// Default 8 Å.
	PaddingÅ float64
	// EpsIn / EpsOut are the solute and solvent dielectrics (1 / 80).
	EpsIn, EpsOut float64
	// MaxIter bounds SOR sweeps (default 2000); Tol is the residual
	// reduction target (default 1e-6).
	MaxIter int
	Tol     float64
	// Omega is the SOR relaxation factor (default 1.9).
	Omega float64
	// DielectricProbeÅ inflates the atomic radii of the dielectric map,
	// closing the crevices a water molecule cannot enter so they stay at
	// EpsIn (consistent with the surface sampler's accessibility
	// culling). The default 0.6 Å is calibrated so the PB cavity matches
	// the GB contact-surface convention on protein-like globules (the
	// full water probe 1.4 Å would give the larger SAS volume and
	// weaker solvation). Negative disables.
	DielectricProbeÅ float64
}

// DefaultConfig returns validation-oracle defaults.
func DefaultConfig() Config {
	return Config{Dim: 65, PaddingÅ: 8, EpsIn: 1, EpsOut: gb.DefaultSolventDielectric,
		MaxIter: 2000, Tol: 1e-6, Omega: 1.9}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Dim == 0 {
		c.Dim = d.Dim
	}
	if c.PaddingÅ == 0 {
		c.PaddingÅ = d.PaddingÅ
	}
	if c.EpsIn == 0 {
		c.EpsIn = d.EpsIn
	}
	if c.EpsOut == 0 {
		c.EpsOut = d.EpsOut
	}
	if c.MaxIter == 0 {
		c.MaxIter = d.MaxIter
	}
	if c.Tol == 0 {
		c.Tol = d.Tol
	}
	if c.Omega == 0 {
		c.Omega = d.Omega
	}
	if c.DielectricProbeÅ == 0 {
		c.DielectricProbeÅ = 0.6
	}
	if c.DielectricProbeÅ < 0 {
		c.DielectricProbeÅ = 0
	}
	return c
}

// Result carries the solve outcome.
type Result struct {
	// Epol is the reaction-field (polarization) energy, kcal/mol.
	Epol float64
	// Iterations actually used by the solvated-system solve.
	Iterations int
	// GridDim and SpacingÅ document the discretization.
	GridDim  int
	SpacingÅ float64
}

// grid is one scalar field on the cube.
type grid struct {
	dim     int
	h       float64
	origin  geom.Vec3
	phi     []float64
	rho     []float64 // charge density × 4πκ/h² source term
	epsFace [3][]float64
}

func (g *grid) idx(i, j, k int) int { return (k*g.dim+j)*g.dim + i }

// Solve computes the PB polarization energy of the molecule.
func Solve(m *molecule.Molecule, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim < 9 || cfg.Dim > 257 {
		return nil, fmt.Errorf("pb: grid dim %d out of range [9, 257]", cfg.Dim)
	}
	if m.NumAtoms() == 0 {
		return nil, fmt.Errorf("pb: empty molecule")
	}
	b := m.Bounds()
	// Inflate by the largest radius plus padding, and cube it.
	pad := m.MaxRadius() + cfg.PaddingÅ
	b = geom.AABB{
		Min: b.Min.Sub(geom.V(pad, pad, pad)),
		Max: b.Max.Add(geom.V(pad, pad, pad)),
	}.Cube()
	h := b.MaxExtent() / float64(cfg.Dim-1)

	solvated := newGrid(cfg.Dim, h, b.Min)
	solvated.fillDielectric(m, cfg.EpsIn, cfg.EpsOut, cfg.DielectricProbeÅ)
	solvated.spreadCharges(m)
	solvated.setBoundary(m, cfg.EpsOut)
	iters := solvated.sor(cfg)

	uniform := newGrid(cfg.Dim, h, b.Min)
	uniform.fillUniform(cfg.EpsIn)
	uniform.spreadCharges(m)
	uniform.setBoundary(m, cfg.EpsIn)
	uniform.sor(cfg)

	e := 0.0
	for _, a := range m.Atoms {
		e += 0.5 * a.Charge * (solvated.interp(a.Pos) - uniform.interp(a.Pos))
	}
	return &Result{Epol: e, Iterations: iters, GridDim: cfg.Dim, SpacingÅ: h}, nil
}

func newGrid(dim int, h float64, origin geom.Vec3) *grid {
	g := &grid{dim: dim, h: h, origin: origin}
	n := dim * dim * dim
	g.phi = make([]float64, n)
	g.rho = make([]float64, n)
	for a := 0; a < 3; a++ {
		g.epsFace[a] = make([]float64, n)
	}
	return g
}

// fillUniform sets every face dielectric to eps.
func (g *grid) fillUniform(eps float64) {
	for a := 0; a < 3; a++ {
		for i := range g.epsFace[a] {
			g.epsFace[a][i] = eps
		}
	}
}

// fillDielectric assigns EpsIn inside any (probe-inflated) atom sphere
// and EpsOut outside, smoothing the boundary over one grid spacing (the
// staircase dielectric otherwise makes grid refinement non-monotone).
// Face values are harmonic means of the adjacent cells, the standard FD
// treatment of the dielectric jump.
func (g *grid) fillDielectric(m *molecule.Molecule, epsIn, epsOut float64, probe float64) {
	dim := g.dim
	// inside[i] is the solute volume fraction of cell i in [0, 1].
	inside := make([]float64, dim*dim*dim)
	for _, a := range m.Atoms {
		r := a.Radius + probe
		reach := r + g.h
		lo := a.Pos.Sub(geom.V(reach, reach, reach)).Sub(g.origin).Scale(1 / g.h)
		hi := a.Pos.Add(geom.V(reach, reach, reach)).Sub(g.origin).Scale(1 / g.h)
		for k := clampI(int(lo.Z), dim); k <= clampI(int(hi.Z)+1, dim); k++ {
			for j := clampI(int(lo.Y), dim); j <= clampI(int(hi.Y)+1, dim); j++ {
				for i := clampI(int(lo.X), dim); i <= clampI(int(hi.X)+1, dim); i++ {
					p := g.origin.Add(geom.V(float64(i), float64(j), float64(k)).Scale(g.h))
					// Smoothed indicator: 1 deep inside, 0 outside,
					// linear across one spacing around the sphere.
					f := (r-p.Dist(a.Pos))/g.h + 0.5
					if f <= 0 {
						continue
					}
					if f > 1 {
						f = 1
					}
					c := g.idx(i, j, k)
					if f > inside[c] {
						inside[c] = f
					}
				}
			}
		}
	}
	cell := make([]float64, dim*dim*dim)
	for i, f := range inside {
		// Harmonic mix of the two phases by volume fraction.
		cell[i] = 1 / (f/epsIn + (1-f)/epsOut)
	}
	// Face dielectrics: harmonic mean of the adjacent cells.
	hm := func(a, b float64) float64 { return 2 * a * b / (a + b) }
	for k := 0; k < dim; k++ {
		for j := 0; j < dim; j++ {
			for i := 0; i < dim; i++ {
				c := cell[g.idx(i, j, k)]
				if i+1 < dim {
					g.epsFace[0][g.idx(i, j, k)] = hm(c, cell[g.idx(i+1, j, k)])
				}
				if j+1 < dim {
					g.epsFace[1][g.idx(i, j, k)] = hm(c, cell[g.idx(i, j+1, k)])
				}
				if k+1 < dim {
					g.epsFace[2][g.idx(i, j, k)] = hm(c, cell[g.idx(i, j, k+1)])
				}
			}
		}
	}
}

func clampI(v, dim int) int {
	if v < 0 {
		return 0
	}
	if v >= dim {
		return dim - 1
	}
	return v
}

// spreadCharges deposits atom charges onto the 8 surrounding grid points
// (trilinear / cloud-in-cell), building the 4πκ·ρ/h³·h² source term.
func (g *grid) spreadCharges(m *molecule.Molecule) {
	const fourPiK = 4 * math.Pi * gb.CoulombKcal
	for _, a := range m.Atoms {
		p := a.Pos.Sub(g.origin).Scale(1 / g.h)
		i0, j0, k0 := int(p.X), int(p.Y), int(p.Z)
		fx, fy, fz := p.X-float64(i0), p.Y-float64(j0), p.Z-float64(k0)
		for dk := 0; dk <= 1; dk++ {
			for dj := 0; dj <= 1; dj++ {
				for di := 0; di <= 1; di++ {
					i, j, k := i0+di, j0+dj, k0+dk
					if i < 0 || j < 0 || k < 0 || i >= g.dim || j >= g.dim || k >= g.dim {
						continue
					}
					w := pick(fx, di) * pick(fy, dj) * pick(fz, dk)
					// Source term: ∇·(ε∇φ) = −4πκρ; dividing the point
					// charge by h³ (density) and multiplying the stencil
					// by h² leaves q·4πκ/h.
					g.rho[g.idx(i, j, k)] += fourPiK * a.Charge * w / g.h
				}
			}
		}
	}
}

func pick(f float64, d int) float64 {
	if d == 1 {
		return f
	}
	return 1 - f
}

// setBoundary fixes the outer faces to the analytic Coulomb potential in
// the surrounding dielectric.
func (g *grid) setBoundary(m *molecule.Molecule, epsOut float64) {
	dim := g.dim
	set := func(i, j, k int) {
		p := g.origin.Add(geom.V(float64(i), float64(j), float64(k)).Scale(g.h))
		v := 0.0
		for _, a := range m.Atoms {
			d := p.Dist(a.Pos)
			if d < 1e-9 {
				d = 1e-9
			}
			v += gb.CoulombKcal * a.Charge / (epsOut * d)
		}
		g.phi[g.idx(i, j, k)] = v
	}
	for j := 0; j < dim; j++ {
		for i := 0; i < dim; i++ {
			set(i, j, 0)
			set(i, j, dim-1)
		}
	}
	for k := 0; k < dim; k++ {
		for i := 0; i < dim; i++ {
			set(i, 0, k)
			set(i, dim-1, k)
		}
	}
	for k := 0; k < dim; k++ {
		for j := 0; j < dim; j++ {
			set(0, j, k)
			set(dim-1, j, k)
		}
	}
}

// sor runs red-black successive over-relaxation until the residual drops
// by cfg.Tol or MaxIter sweeps pass. Returns the sweep count.
func (g *grid) sor(cfg Config) int {
	dim := g.dim
	var firstRes float64
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		res := 0.0
		for color := 0; color <= 1; color++ {
			for k := 1; k < dim-1; k++ {
				for j := 1; j < dim-1; j++ {
					start := 1 + (j+k+color)%2
					for i := start; i < dim-1; i += 2 {
						c := g.idx(i, j, k)
						eW := g.epsFace[0][g.idx(i-1, j, k)]
						eE := g.epsFace[0][c]
						eS := g.epsFace[1][g.idx(i, j-1, k)]
						eN := g.epsFace[1][c]
						eD := g.epsFace[2][g.idx(i, j, k-1)]
						eU := g.epsFace[2][c]
						diag := eW + eE + eS + eN + eD + eU
						sum := eW*g.phi[c-1] + eE*g.phi[c+1] +
							eS*g.phi[c-dim] + eN*g.phi[c+dim] +
							eD*g.phi[c-dim*dim] + eU*g.phi[c+dim*dim]
						r := (sum+g.rho[c])/diag - g.phi[c]
						g.phi[c] += cfg.Omega * r
						res += r * r
					}
				}
			}
		}
		res = math.Sqrt(res)
		if iter == 1 {
			firstRes = res
			if firstRes == 0 {
				return iter
			}
			continue
		}
		if res <= cfg.Tol*firstRes {
			return iter
		}
	}
	return cfg.MaxIter
}

// interp evaluates φ at an arbitrary position by trilinear interpolation.
func (g *grid) interp(p geom.Vec3) float64 {
	q := p.Sub(g.origin).Scale(1 / g.h)
	i0, j0, k0 := int(q.X), int(q.Y), int(q.Z)
	if i0 < 0 || j0 < 0 || k0 < 0 || i0 >= g.dim-1 || j0 >= g.dim-1 || k0 >= g.dim-1 {
		return 0
	}
	fx, fy, fz := q.X-float64(i0), q.Y-float64(j0), q.Z-float64(k0)
	v := 0.0
	for dk := 0; dk <= 1; dk++ {
		for dj := 0; dj <= 1; dj++ {
			for di := 0; di <= 1; di++ {
				w := pick(fx, di) * pick(fy, dj) * pick(fz, dk)
				v += w * g.phi[g.idx(i0+di, j0+dj, k0+dk)]
			}
		}
	}
	return v
}
