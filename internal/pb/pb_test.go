package pb

import (
	"math"
	"testing"

	"gbpolar/internal/gb"
	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

func ion(q, r float64) *molecule.Molecule {
	return &molecule.Molecule{Name: "ion", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: r, Charge: q},
	}}
}

// The Born ion has the analytic solution Epol = −(τ/2)·κ·q²/a: the
// fundamental validation anchor shared with the GB pipeline.
func TestBornIonAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("dense PB grid solve")
	}
	const a, q = 2.0, 1.0
	res, err := Solve(ion(q, a), Config{Dim: 81, DielectricProbeÅ: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := -0.5 * gb.Tau(gb.DefaultSolventDielectric) * gb.CoulombKcal * q * q / a
	rel := math.Abs(res.Epol-want) / math.Abs(want)
	if rel > 0.08 {
		t.Errorf("Born ion: PB %v vs analytic %v (%.1f%% off)", res.Epol, want, rel*100)
	}
	if res.Iterations == 0 || res.SpacingÅ <= 0 {
		t.Errorf("result metadata: %+v", res)
	}
}

// Energy scales with q² (linearity of the Poisson operator).
func TestChargeSquaredScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("dense PB grid solve")
	}
	r1, err := Solve(ion(1, 2), Config{Dim: 49, DielectricProbeÅ: -1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(ion(2, 2), Config{Dim: 49, DielectricProbeÅ: -1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Epol-4*r1.Epol)/math.Abs(4*r1.Epol) > 1e-6 {
		t.Errorf("E(2q)=%v, want 4·E(q)=%v", r2.Epol, 4*r1.Epol)
	}
}

// A larger ion is less strongly solvated (|E| ∝ 1/a).
func TestRadiusDependence(t *testing.T) {
	if testing.Short() {
		t.Skip("dense PB grid solve")
	}
	small, err := Solve(ion(1, 1.5), Config{Dim: 65, DielectricProbeÅ: -1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Solve(ion(1, 3.0), Config{Dim: 65, DielectricProbeÅ: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !(math.Abs(large.Epol) < math.Abs(small.Epol)) {
		t.Errorf("|E(a=3)| = %v not below |E(a=1.5)| = %v", large.Epol, small.Epol)
	}
	ratio := small.Epol / large.Epol
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("energy ratio %v, analytic 2.0", ratio)
	}
}

// Grid refinement converges toward the analytic value.
func TestGridConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("dense PB grid solve")
	}
	const a, q = 2.0, 1.0
	want := -0.5 * gb.Tau(gb.DefaultSolventDielectric) * gb.CoulombKcal * q * q / a
	prevErr := math.Inf(1)
	for _, dim := range []int{33, 65, 97} {
		res, err := Solve(ion(q, a), Config{Dim: dim, DielectricProbeÅ: -1})
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(res.Epol - want)
		if e > prevErr*1.15 { // allow slight non-monotonicity from staircase dielectric
			t.Errorf("dim %d: error %v did not improve on %v", dim, e, prevErr)
		}
		prevErr = e
	}
}

// GB with surface-r6 radii should track PB on a small molecule — the
// point of the whole GB enterprise (§I). Loose band: GB is an
// approximation and our PB is a coarse oracle.
func TestGBTracksPB(t *testing.T) {
	if testing.Short() {
		t.Skip("dense PB grid solve")
	}
	mol := molecule.Exactly(molecule.Globule("pbgb", 120, 77), 120, 77)
	pbRes, err := Solve(mol, Config{Dim: 81})
	if err != nil {
		t.Fatal(err)
	}
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gb.NewSystem(mol, surf, gb.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	radii, _ := sys.NaiveBornRadiiR6()
	gbE, _ := sys.NaiveEpol(radii)
	if pbRes.Epol >= 0 || gbE >= 0 {
		t.Fatalf("energies not negative: PB %v GB %v", pbRes.Epol, gbE)
	}
	ratio := gbE / pbRes.Epol
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("GB %v vs PB %v: ratio %v outside sanity band", gbE, pbRes.Epol, ratio)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(&molecule.Molecule{Name: "empty"}, Config{}); err == nil {
		t.Error("empty molecule accepted")
	}
	if _, err := Solve(ion(1, 2), Config{Dim: 3}); err == nil {
		t.Error("absurd grid accepted")
	}
	if _, err := Solve(ion(1, 2), Config{Dim: 1001}); err == nil {
		t.Error("huge grid accepted")
	}
}
