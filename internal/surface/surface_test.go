package surface

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/sched"
)

func singleAtom(r float64) *molecule.Molecule {
	return &molecule.Molecule{Name: "atom", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: r, Charge: 1},
	}}
}

func TestSingleAtomAreaExact(t *testing.T) {
	// The weight correction makes a free sphere integrate to 4πr² exactly
	// at every level/degree.
	for _, level := range []int{1, 2, 3} {
		for _, deg := range []int{1, 2, 4} {
			const r = 1.7
			s, err := Build(singleAtom(r), Config{IcoLevel: level, RuleDegree: deg})
			if err != nil {
				t.Fatal(err)
			}
			want := 4 * math.Pi * r * r
			if math.Abs(s.Area-want)/want > 1e-12 {
				t.Errorf("level %d deg %d: area = %v, want %v", level, deg, s.Area, want)
			}
			if s.ExposedAtoms != 1 {
				t.Errorf("ExposedAtoms = %d", s.ExposedAtoms)
			}
		}
	}
}

func TestSingleAtomPointsOnSphereOutwardNormals(t *testing.T) {
	const r = 2.0
	s, err := Build(singleAtom(r), Config{IcoLevel: 2, RuleDegree: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range s.Points {
		if math.Abs(q.Pos.Norm()-r) > 1e-12 {
			t.Fatalf("point %d at radius %v", i, q.Pos.Norm())
		}
		if q.Normal.Dot(q.Pos) <= 0 {
			t.Fatalf("point %d has inward normal", i)
		}
		if math.Abs(q.Normal.Norm()-1) > 1e-12 {
			t.Fatalf("point %d normal not unit: %v", i, q.Normal.Norm())
		}
		if q.Weight <= 0 {
			t.Fatalf("point %d non-positive weight", i)
		}
		if q.Atom != 0 {
			t.Fatalf("point %d atom = %d", i, q.Atom)
		}
	}
}

// Born-radius anchor: for a free sphere of radius r, the surface r⁶
// integral Σ w (p−x)·n/|p−x|⁶ must equal 4π/r³ exactly (so R = r).
func TestSingleAtomBornIntegralExact(t *testing.T) {
	const r = 1.5
	s, err := Build(singleAtom(r), Config{IcoLevel: 1, RuleDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	x := geom.V(0, 0, 0)
	for _, q := range s.Points {
		d := q.Pos.Sub(x)
		sum += q.Weight * d.Dot(q.Normal) / math.Pow(d.Norm(), 6)
	}
	want := 4 * math.Pi / (r * r * r)
	if math.Abs(sum-want)/want > 1e-12 {
		t.Errorf("integral = %v, want %v", sum, want)
	}
}

func TestBuriedAtomContributesNothing(t *testing.T) {
	// A small atom at the center of a big one is fully buried.
	m := &molecule.Molecule{Name: "buried", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1.0},
		{Pos: geom.V(0, 0, 0), Radius: 3.0},
	}}
	s, err := Build(m, Config{IcoLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range s.Points {
		if q.Atom == 0 {
			t.Fatal("buried atom produced surface points")
		}
	}
	// The outer sphere is fully exposed.
	wantArea := 4 * math.Pi * 9.0
	if math.Abs(s.Area-wantArea)/wantArea > 1e-12 {
		t.Errorf("area = %v, want %v", s.Area, wantArea)
	}
	if s.ExposedAtoms != 1 {
		t.Errorf("ExposedAtoms = %d", s.ExposedAtoms)
	}
}

func TestTwoOverlappingAtomsLoseArea(t *testing.T) {
	m := &molecule.Molecule{Name: "pair", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1.5},
		{Pos: geom.V(1.5, 0, 0), Radius: 1.5},
	}}
	s, err := Build(m, Config{IcoLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	full := 2 * 4 * math.Pi * 1.5 * 1.5
	if s.Area >= full {
		t.Errorf("overlapping pair area %v >= two full spheres %v", s.Area, full)
	}
	// Analytic: each sphere loses a cap of height h = r − d/2 = 0.75;
	// cap area = 2πrh. Exposed = full − 2·2πrh.
	want := full - 2*2*math.Pi*1.5*0.75
	if math.Abs(s.Area-want)/want > 0.05 {
		t.Errorf("area = %v, analytic %v (>5%% off)", s.Area, want)
	}
	// No point of atom 0 may be inside atom 1 and vice versa.
	for _, q := range s.Points {
		other := m.Atoms[1-int(q.Atom)]
		if q.Pos.Dist(other.Pos) < other.Radius-1e-6 {
			t.Fatalf("point of atom %d buried inside the other", q.Atom)
		}
	}
}

func TestProbeAffectsCullingNotGeometry(t *testing.T) {
	// A free atom's surface is identical at any probe radius: the probe
	// only governs accessibility culling, never the integration sphere.
	m := singleAtom(1.5)
	s0, err := Build(m, Config{IcoLevel: 1, ProbeRadius: 0})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Build(m, Config{IcoLevel: 1, ProbeRadius: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.Area-s0.Area) > 1e-12 {
		t.Errorf("probe changed a free atom's area: %v vs %v", s1.Area, s0.Area)
	}
	// But in a crevice, the probe culls patches a bare vdW test keeps:
	// two atoms at a gap the probe cannot enter.
	pair := &molecule.Molecule{Name: "gap", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1.5},
		{Pos: geom.V(3.4, 0, 0), Radius: 1.5}, // 0.4 Å gap — water cannot pass
	}}
	v0, err := Build(pair, Config{IcoLevel: 2, ProbeRadius: 0})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := Build(pair, Config{IcoLevel: 2, ProbeRadius: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Area >= v0.Area {
		t.Errorf("probe culling did not shrink crevice area: %v vs %v", v1.Area, v0.Area)
	}
}

func TestGlobuleSamplingDensity(t *testing.T) {
	m := molecule.Globule("g", 3000, 21)
	s, err := Build(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(s.NumPoints()) / float64(m.NumAtoms())
	// The paper's workloads carry ~4 q-points per atom (CMV: 3.8). The
	// sampler should land in the same regime for a protein-like globule.
	if ratio < 1 || ratio > 15 {
		t.Errorf("q-points per atom = %v, want O(4)", ratio)
	}
	// Interior atoms must be culled: far fewer points than atoms × 80.
	if s.NumPoints() >= m.NumAtoms()*80/2 {
		t.Errorf("culling ineffective: %d points for %d atoms", s.NumPoints(), m.NumAtoms())
	}
	if s.ExposedAtoms >= m.NumAtoms() {
		t.Error("every atom exposed in a globule interior")
	}
}

func TestConfigValidation(t *testing.T) {
	m := singleAtom(1)
	if _, err := Build(m, Config{IcoLevel: 9}); err == nil {
		t.Error("no error for absurd icosphere level")
	}
	if _, err := Build(m, Config{RuleDegree: 42}); err == nil {
		t.Error("no error for invalid rule degree")
	}
}

func TestApplyTransform(t *testing.T) {
	m := singleAtom(1.2)
	s, err := Build(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := geom.Translate(geom.V(10, 0, 0)).Compose(geom.Rotate(geom.V(0, 0, 1), 1.0))
	moved := s.ApplyTransform(tr)
	if moved.Area != s.Area || moved.NumPoints() != s.NumPoints() {
		t.Error("transform changed area or point count")
	}
	for i := range s.Points {
		if moved.Points[i].Pos.Dist(tr.Apply(s.Points[i].Pos)) > 1e-12 {
			t.Fatal("position not transformed")
		}
		if math.Abs(moved.Points[i].Normal.Norm()-1) > 1e-12 {
			t.Fatal("normal denormalized by transform")
		}
		if moved.Points[i].Weight != s.Points[i].Weight {
			t.Fatal("weight changed by transform")
		}
	}
	// Surface integral invariance: the Born integral of the moved surface
	// about the moved atom center matches the original.
	orig, movedSum := 0.0, 0.0
	x := geom.V(0, 0, 0)
	tx := tr.Apply(x)
	for i := range s.Points {
		d := s.Points[i].Pos.Sub(x)
		orig += s.Points[i].Weight * d.Dot(s.Points[i].Normal) / math.Pow(d.Norm(), 6)
		dm := moved.Points[i].Pos.Sub(tx)
		movedSum += moved.Points[i].Weight * dm.Dot(moved.Points[i].Normal) / math.Pow(dm.Norm(), 6)
	}
	if math.Abs(orig-movedSum)/math.Abs(orig) > 1e-10 {
		t.Errorf("integral changed under rigid motion: %v vs %v", orig, movedSum)
	}
}

func TestPerAtomAreaSumsToTotal(t *testing.T) {
	m := molecule.Globule("a", 600, 51)
	s, err := Build(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	areas := s.PerAtomArea(m.NumAtoms())
	sum := 0.0
	for _, a := range areas {
		sum += a
	}
	if math.Abs(sum-s.Area)/s.Area > 1e-12 {
		t.Errorf("per-atom areas sum to %v, total %v", sum, s.Area)
	}
	for i, a := range areas {
		if a < 0 {
			t.Fatalf("atom %d negative area %v", i, a)
		}
	}
}

func TestSurfacePositions(t *testing.T) {
	s, err := Build(singleAtom(1.0), Config{IcoLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps := s.Positions()
	if len(ps) != s.NumPoints() {
		t.Fatalf("Positions len = %d", len(ps))
	}
	for i := range ps {
		if ps[i] != s.Points[i].Pos {
			t.Fatal("Positions mismatch")
		}
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	m := molecule.Globule("p", 1500, 61)
	serial, err := Build(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.New(4)
	defer pool.Close()
	par, err := BuildParallel(m, DefaultConfig(), pool)
	if err != nil {
		t.Fatal(err)
	}
	if par.NumPoints() != serial.NumPoints() {
		t.Fatalf("points: %d vs %d", par.NumPoints(), serial.NumPoints())
	}
	if math.Abs(par.Area-serial.Area) > 1e-9 {
		t.Errorf("area: %v vs %v", par.Area, serial.Area)
	}
	if par.ExposedAtoms != serial.ExposedAtoms {
		t.Errorf("exposed: %d vs %d", par.ExposedAtoms, serial.ExposedAtoms)
	}
	for i := range serial.Points {
		if par.Points[i] != serial.Points[i] {
			t.Fatalf("point %d differs", i)
		}
	}
	// Nil pool falls back to the serial path.
	fallback, err := BuildParallel(m, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fallback.NumPoints() != serial.NumPoints() {
		t.Error("nil-pool fallback differs")
	}
}

func TestBuildParallelValidation(t *testing.T) {
	pool := sched.New(2)
	defer pool.Close()
	if _, err := BuildParallel(singleAtom(1), Config{IcoLevel: 9}, pool); err == nil {
		t.Error("absurd level accepted")
	}
	if _, err := BuildParallel(singleAtom(1), Config{RuleDegree: 42}, pool); err == nil {
		t.Error("bad rule degree accepted")
	}
}

func TestSurfaceExports(t *testing.T) {
	s, err := Build(singleAtom(1.5), Config{IcoLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var xyz bytes.Buffer
	if err := s.WriteXYZ(&xyz); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(xyz.String()), "\n")
	if len(lines) != s.NumPoints()+2 {
		t.Errorf("XYZ lines = %d, want %d", len(lines), s.NumPoints()+2)
	}
	if lines[0] != fmt.Sprint(s.NumPoints()) {
		t.Errorf("XYZ count line = %q", lines[0])
	}
	var ply bytes.Buffer
	if err := s.WritePLY(&ply); err != nil {
		t.Fatal(err)
	}
	out := ply.String()
	if !strings.HasPrefix(out, "ply\n") || !strings.Contains(out, "end_header") {
		t.Error("PLY header malformed")
	}
	body := out[strings.Index(out, "end_header\n")+len("end_header\n"):]
	if got := strings.Count(body, "\n"); got != s.NumPoints() {
		t.Errorf("PLY vertex lines = %d, want %d", got, s.NumPoints())
	}
}
