// Package surface samples Gaussian quadrature points from the molecular
// surface: the inputs the paper's r⁶ Born-radii integral consumes
// ("points sampled from the molecular surface", §II).
//
// The paper obtains its points by triangulating the Gaussian-quadrature
// representation of the molecular surface with external tooling; here the
// surface is the solvent-accessible union-of-spheres surface, tessellated
// per atom with an icosphere whose triangles are culled when buried inside
// neighboring atoms, and each surviving triangle carries a Dunavant
// quadrature rule. Weights are area-corrected so a free atom's sphere
// integrates exactly: the r⁶/r⁴ Born radius of an isolated atom is exact
// at any tessellation level, which anchors the numerical validation.
package surface

import (
	"fmt"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
	"gbpolar/internal/quadrature"
)

// QPoint is one quadrature point on the molecular surface: position,
// outward unit normal, integration weight (absolute, Å²), and the index of
// the atom whose sphere carries it.
type QPoint struct {
	Pos    geom.Vec3
	Normal geom.Vec3
	Weight float64
	Atom   int32
}

// Surface is the sampled molecular surface.
type Surface struct {
	Points []QPoint
	// Area is the total exposed area: the sum of quadrature weights.
	Area float64
	// ExposedAtoms counts atoms contributing at least one point.
	ExposedAtoms int
}

// Config controls surface sampling density.
type Config struct {
	// IcoLevel is the icosphere subdivision level per atom (default 1:
	// 80 triangles per sphere).
	IcoLevel int
	// RuleDegree is the Dunavant rule degree per triangle (default 1:
	// one point per triangle).
	RuleDegree int
	// ProbeRadius is the solvent-probe radius used for ACCESSIBILITY
	// culling: a surface patch survives only if the probe-inflated
	// spheres leave it uncovered. The quadrature points themselves are
	// always placed on the van der Waals sphere (with vdW-area weights),
	// approximating the solvent-excluded surface by its contact patches —
	// crevices a water molecule cannot reach are not molecular surface,
	// but the integration surface stays the physical one the r⁶ Born
	// integral (Eq. 4) is defined on. 0 reduces to plain vdW culling.
	ProbeRadius float64
}

// DefaultConfig is the sampling density used throughout the benchmarks:
// the solvent-accessible surface (water probe, 1.4 Å) at icosphere level 1
// with a 1-point rule. With it a protein-like globule yields a handful of
// quadrature points per atom, the regime of the paper's workloads (CMV:
// 3.8 q-points/atom). The probe also closes the crevices between
// lattice-generated synthetic atoms so interior atoms are properly buried.
func DefaultConfig() Config { return Config{IcoLevel: 1, RuleDegree: 1, ProbeRadius: 1.4} }

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.IcoLevel == 0 {
		c.IcoLevel = 1
	}
	if c.RuleDegree == 0 {
		c.RuleDegree = 1
	}
	return c
}

// Build samples the molecular surface of m under cfg.
func Build(m *molecule.Molecule, cfg Config) (*Surface, error) {
	cfg = cfg.withDefaults()
	if cfg.IcoLevel < 0 || cfg.IcoLevel > 6 {
		return nil, fmt.Errorf("surface: icosphere level %d out of range [0,6]", cfg.IcoLevel)
	}
	rule, err := quadrature.Dunavant(cfg.RuleDegree)
	if err != nil {
		return nil, err
	}
	mesh := quadrature.Icosphere(cfg.IcoLevel)
	// Spherical-area correction: the inscribed triangulation underestimates
	// the sphere area by a constant factor at a given level; scaling the
	// planar weights by 4π/meshArea makes a full sphere integrate exactly.
	corr := 4 * 3.141592653589793 / mesh.Area()

	positions := m.Positions()
	maxR := m.MaxRadius() + cfg.ProbeRadius
	grid := nblist.NewCellGrid(positions, 2*maxR)

	s := &Surface{}
	var scaled []geom.Vec3 // reused per atom: mesh vertices on the atom sphere
	scaled = make([]geom.Vec3, len(mesh.Vertices))
	var neighbors []int
	var qbuf []quadrature.QuadPoint
	// The grid visitor is hoisted out of the atom loop (one closure for
	// the whole build, not one per atom); the per-atom state it needs is
	// threaded through these locals.
	var curI int
	var curPos geom.Vec3
	var curRAcc float64
	collectNeighbors := func(j int) bool {
		if j != curI {
			rj := m.Atoms[j].Radius + cfg.ProbeRadius
			if positions[j].Dist(curPos) < curRAcc+rj {
				neighbors = append(neighbors, j)
			}
		}
		return true
	}
	for i, a := range m.Atoms {
		rAcc := a.Radius + cfg.ProbeRadius // accessibility (culling) radius
		rVdW := a.Radius                   // integration radius
		// Gather neighbors that could bury part of this sphere.
		neighbors = neighbors[:0]
		curI, curPos, curRAcc = i, a.Pos, rAcc
		grid.ForEachWithin(a.Pos, rAcc+maxR, collectNeighbors)
		for vi, v := range mesh.Vertices {
			scaled[vi] = a.Pos.Add(v.Scale(rVdW))
		}
		exposedAny := false
		for _, tr := range mesh.Triangles {
			// Cull by the probe-inflated sphere: the patch contributes
			// iff its center on the accessible sphere is outside every
			// inflated neighbor.
			cen := mesh.Vertices[tr.A].Add(mesh.Vertices[tr.B]).Add(mesh.Vertices[tr.C]).Unit()
			p := a.Pos.Add(cen.Scale(rAcc))
			if buried(p, m, cfg.ProbeRadius, neighbors) {
				continue
			}
			exposedAny = true
			qbuf = rule.ForTriangle(qbuf[:0], scaled[tr.A], scaled[tr.B], scaled[tr.C])
			for _, qp := range qbuf {
				// Project the quadrature point radially onto the vdW
				// sphere so normals are exact; keep the (corrected)
				// planar weight.
				dir := qp.P.Sub(a.Pos).Unit()
				w := qp.W * corr
				s.Points = append(s.Points, QPoint{
					Pos:    a.Pos.Add(dir.Scale(rVdW)),
					Normal: dir,
					Weight: w,
					Atom:   int32(i),
				})
				s.Area += w
			}
		}
		if exposedAny {
			s.ExposedAtoms++
		}
	}
	return s, nil
}

// buried reports whether point p lies strictly inside any of the listed
// neighbor atoms (radii expanded by probe).
func buried(p geom.Vec3, m *molecule.Molecule, probe float64, neighbors []int) bool {
	const tol = 1e-9
	for _, j := range neighbors {
		rj := m.Atoms[j].Radius + probe
		if p.Dist2(m.Atoms[j].Pos) < (rj-tol)*(rj-tol) {
			return true
		}
	}
	return false
}

// NumPoints returns the number of quadrature points.
func (s *Surface) NumPoints() int { return len(s.Points) }

// Positions returns a freshly allocated slice of the point positions.
func (s *Surface) Positions() []geom.Vec3 {
	ps := make([]geom.Vec3, len(s.Points))
	for i, q := range s.Points {
		ps[i] = q.Pos
	}
	return ps
}

// ApplyTransform returns a copy of the surface with positions and normals
// mapped through the rigid transform tr — the docking-scan reuse path
// (§IV-C Step 1: move the octree instead of rebuilding).
func (s *Surface) ApplyTransform(tr geom.Transform) *Surface {
	out := &Surface{
		Points:       make([]QPoint, len(s.Points)),
		Area:         s.Area,
		ExposedAtoms: s.ExposedAtoms,
	}
	for i, q := range s.Points {
		out.Points[i] = QPoint{
			Pos:    tr.Apply(q.Pos),
			Normal: tr.ApplyVector(q.Normal),
			Weight: q.Weight,
			Atom:   q.Atom,
		}
	}
	return out
}

// PerAtomArea returns each atom's exposed surface area (the sum of its
// quadrature weights): the solvent-accessible-surface-area (SASA)
// decomposition that the nonpolar half of GB/SA solvation consumes.
func (s *Surface) PerAtomArea(numAtoms int) []float64 {
	areas := make([]float64, numAtoms)
	for _, q := range s.Points {
		if int(q.Atom) < numAtoms {
			areas[q.Atom] += q.Weight
		}
	}
	return areas
}
