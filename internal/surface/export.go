package surface

import (
	"bufio"
	"fmt"
	"io"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
	"gbpolar/internal/quadrature"
	"gbpolar/internal/sched"
)

// WriteXYZ writes the quadrature points as an XYZ point cloud (element
// column "S" for surface), loadable by any molecular viewer.
func (s *Surface) WriteXYZ(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\nsurface quadrature points\n", len(s.Points)); err != nil {
		return err
	}
	for _, q := range s.Points {
		if _, err := fmt.Fprintf(bw, "S %.4f %.4f %.4f\n", q.Pos.X, q.Pos.Y, q.Pos.Z); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePLY writes the quadrature points as an ASCII PLY point cloud with
// per-point normals and the integration weight as a "quality" property —
// the standard interchange format for surface inspection tools.
func (s *Surface) WritePLY(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := "ply\nformat ascii 1.0\n" +
		fmt.Sprintf("element vertex %d\n", len(s.Points)) +
		"property float x\nproperty float y\nproperty float z\n" +
		"property float nx\nproperty float ny\nproperty float nz\n" +
		"property float quality\nend_header\n"
	if _, err := bw.WriteString(header); err != nil {
		return err
	}
	for _, q := range s.Points {
		if _, err := fmt.Fprintf(bw, "%.4f %.4f %.4f %.4f %.4f %.4f %.6f\n",
			q.Pos.X, q.Pos.Y, q.Pos.Z,
			q.Normal.X, q.Normal.Y, q.Normal.Z, q.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BuildParallel is Build with the per-atom tessellation fanned out over a
// work-stealing pool — surface construction is the pipeline's second
// largest serial cost after the energy kernels. Results are identical to
// Build (each atom's points are produced independently and concatenated
// in atom order).
func BuildParallel(m *molecule.Molecule, cfg Config, pool *sched.Pool) (*Surface, error) {
	if pool == nil || pool.NumWorkers() == 1 {
		return Build(m, cfg)
	}
	cfg = cfg.withDefaults()
	if cfg.IcoLevel < 0 || cfg.IcoLevel > 6 {
		return nil, fmt.Errorf("surface: icosphere level %d out of range [0,6]", cfg.IcoLevel)
	}
	rule, err := quadrature.Dunavant(cfg.RuleDegree)
	if err != nil {
		return nil, err
	}
	mesh := quadrature.Icosphere(cfg.IcoLevel)
	corr := 4 * 3.141592653589793 / mesh.Area()
	positions := m.Positions()
	maxR := m.MaxRadius() + cfg.ProbeRadius
	grid := nblist.NewCellGrid(positions, 2*maxR)

	perAtom := make([][]QPoint, m.NumAtoms())
	grain := m.NumAtoms()/(8*pool.NumWorkers()) + 1
	pool.ParallelRange(m.NumAtoms(), grain, func(w *sched.Worker, lo, hi int) {
		scaled := make([]geom.Vec3, len(mesh.Vertices))
		var neighbors []int
		var qbuf []quadrature.QuadPoint
		// One grid visitor per chunk, not per atom (see Build).
		var curI int
		var curPos geom.Vec3
		var curRAcc float64
		collectNeighbors := func(j int) bool {
			if j != curI {
				rj := m.Atoms[j].Radius + cfg.ProbeRadius
				if positions[j].Dist(curPos) < curRAcc+rj {
					neighbors = append(neighbors, j)
				}
			}
			return true
		}
		for i := lo; i < hi; i++ {
			a := m.Atoms[i]
			rAcc := a.Radius + cfg.ProbeRadius
			rVdW := a.Radius
			neighbors = neighbors[:0]
			curI, curPos, curRAcc = i, a.Pos, rAcc
			grid.ForEachWithin(a.Pos, rAcc+maxR, collectNeighbors)
			for vi, v := range mesh.Vertices {
				scaled[vi] = a.Pos.Add(v.Scale(rVdW))
			}
			var pts []QPoint
			for _, tr := range mesh.Triangles {
				cen := mesh.Vertices[tr.A].Add(mesh.Vertices[tr.B]).Add(mesh.Vertices[tr.C]).Unit()
				p := a.Pos.Add(cen.Scale(rAcc))
				if buried(p, m, cfg.ProbeRadius, neighbors) {
					continue
				}
				qbuf = rule.ForTriangle(qbuf[:0], scaled[tr.A], scaled[tr.B], scaled[tr.C])
				for _, qp := range qbuf {
					dir := qp.P.Sub(a.Pos).Unit()
					//lint:ignore hotalloc exposed-patch count is data-dependent; worst-case preallocation would pin len(tris)*len(rule) points per atom
					pts = append(pts, QPoint{
						Pos:    a.Pos.Add(dir.Scale(rVdW)),
						Normal: dir,
						Weight: qp.W * corr,
						Atom:   int32(i),
					})
				}
			}
			perAtom[i] = pts
		}
	})
	s := &Surface{}
	for _, pts := range perAtom {
		if len(pts) > 0 {
			s.ExposedAtoms++
		}
		for _, q := range pts {
			s.Area += q.Weight
		}
		s.Points = append(s.Points, pts...)
	}
	return s, nil
}
