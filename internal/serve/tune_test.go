package serve

import (
	"encoding/json"
	"testing"
)

// TestTargetErrorReturnsAccuracyEnvelope pins the PR 8 serving contract:
// a job carrying target_error_kcal runs at a tuner-selected point and the
// result reports that point in its accuracy envelope; jobs without a
// target keep the envelope absent.
func TestTargetErrorReturnsAccuracyEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultProcesses: 2})
	mol := testMol(150, 11)

	code, data := postJob(t, ts.URL, JobRequest{Molecule: molSpec(mol), TargetErrorKcal: 1.0})
	if code != 202 {
		t.Fatalf("submit: status %d\n%s", code, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatalf("submit body: %v\n%s", err, data)
	}
	view := awaitTerminal(t, ts.URL, sub.ID)
	if view.State != StateDone || view.Result == nil {
		t.Fatalf("tuned job ended %s (error %+v)", view.State, view.Error)
	}
	acc := view.Result.Accuracy
	if acc == nil {
		t.Fatal("tuned result carries no accuracy envelope")
	}
	if acc.TargetErrorKcal != 1.0 {
		t.Errorf("envelope target %v, want 1.0", acc.TargetErrorKcal)
	}
	if !(acc.EpsBorn > 0) || !(acc.EpsEpol > 0) || !(acc.BinWidth > 0) {
		t.Errorf("envelope knobs not resolved: %+v", acc)
	}
	if acc.QuadOrder < 1 || acc.QuadOrder > 8 || acc.Order < 0 || acc.Order > 2 {
		t.Errorf("envelope orders out of range: %+v", acc)
	}
	if !(acc.PredictedErrorKcal > 0) {
		t.Errorf("envelope predicted error %v, want positive", acc.PredictedErrorKcal)
	}
	if view.Result.Epol >= 0 {
		t.Errorf("tuned Epol %v, must be negative", view.Result.Epol)
	}

	// Determinism across submissions: the tuner search is deterministic,
	// so a second identical job lands on the same point and the same bits.
	code, data = postJob(t, ts.URL, JobRequest{Molecule: molSpec(mol), TargetErrorKcal: 1.0})
	if code != 202 {
		t.Fatalf("resubmit: status %d\n%s", code, data)
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatalf("submit body: %v\n%s", err, data)
	}
	again := awaitTerminal(t, ts.URL, sub.ID)
	if again.State != StateDone || again.Result == nil || again.Result.Accuracy == nil {
		t.Fatalf("second tuned job ended %s", again.State)
	}
	if *again.Result.Accuracy != *acc {
		t.Errorf("tuned point not reproducible: %+v vs %+v", *again.Result.Accuracy, *acc)
	}
	if again.Result.EpolBits != view.Result.EpolBits {
		t.Errorf("tuned Epol bits differ across identical jobs: %s vs %s",
			again.Result.EpolBits, view.Result.EpolBits)
	}

	// No target: no envelope.
	code, data = postJob(t, ts.URL, JobRequest{Molecule: molSpec(mol)})
	if code != 202 {
		t.Fatalf("untuned submit: status %d\n%s", code, data)
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatalf("submit body: %v\n%s", err, data)
	}
	plain := awaitTerminal(t, ts.URL, sub.ID)
	if plain.State != StateDone || plain.Result == nil {
		t.Fatalf("untuned job ended %s", plain.State)
	}
	if plain.Result.Accuracy != nil {
		t.Errorf("untuned result carries an accuracy envelope: %+v", plain.Result.Accuracy)
	}
}
