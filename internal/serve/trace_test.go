package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gbpolar/internal/obs"
	"gbpolar/internal/obs/critpath"
)

// getTrace fetches /v1/traces/{tid} and returns the status and body.
func getTrace(t *testing.T, base, tid string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestTraceIDResolvesToPersistedTrace is the tentpole's serving-side
// contract: every result envelope carries a trace_id; the trace resolves
// over the API to a persisted Chrome trace whose spans cover every rank
// of the job's layout and carry the job and tenant tags; and the
// critical-path analyzer accepts it with attribution summing to the wall
// time.
func TestTraceIDResolvesToPersistedTrace(t *testing.T) {
	dataDir := t.TempDir()
	rec := obs.NewRecorder(nil)
	s, ts := newTestServer(t, Config{DataDir: dataDir, DefaultProcesses: 3, Obs: rec})

	code, data := postJob(t, ts.URL, JobRequest{Molecule: molSpec(testMol(120, 5)), Tenant: "acme"})
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", code, data)
	}
	var accepted JobView
	if err := json.Unmarshal(data, &accepted); err != nil {
		t.Fatal(err)
	}
	wantTID := "t-" + strings.TrimPrefix(accepted.ID, "j-")
	if accepted.TraceID != wantTID {
		t.Fatalf("admission trace_id %q, want %q", accepted.TraceID, wantTID)
	}

	done := awaitTerminal(t, ts.URL, accepted.ID)
	if done.State != StateDone || done.Result == nil {
		t.Fatalf("job view %+v", done)
	}
	if done.TraceID != wantTID {
		t.Errorf("terminal trace_id %q, want %q", done.TraceID, wantTID)
	}

	// The attempt trace is persisted next to the job's checkpoints.
	tracePath := filepath.Join(dataDir, accepted.ID, "trace", "attempt-1.json")
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("persisted trace: %v", err)
	}

	// The API serves the same bytes under the trace ID.
	tcode, tdata := getTrace(t, ts.URL, wantTID)
	if tcode != http.StatusOK {
		t.Fatalf("GET trace status %d: %s", tcode, tdata)
	}
	onDisk, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tdata, onDisk) {
		t.Error("API trace differs from persisted file")
	}

	runs, err := critpath.Parse(tdata)
	if err != nil {
		t.Fatalf("parsing served trace: %v", err)
	}
	if len(runs) != 1 {
		t.Fatalf("%d runs in trace, want 1", len(runs))
	}
	run := runs[0]
	if run.Trace.TraceID != wantTID || run.Trace.Job != accepted.ID ||
		run.Trace.Tenant != "acme" || run.Trace.Attempt != 1 {
		t.Errorf("trace identity %+v, want {%s %s acme 1}", run.Trace, wantTID, accepted.ID)
	}
	seen := map[int]bool{}
	for _, sp := range run.Spans {
		seen[sp.Rank] = true
	}
	for rank := 0; rank < 3; rank++ {
		if !seen[rank] {
			t.Errorf("no spans from rank %d in persisted trace", rank)
		}
	}
	rep := critpath.Analyze(run, 5)
	if rep.Ranks != 3 || rep.WallUs <= 0 || len(rep.Path) == 0 {
		t.Fatalf("analyzer on served trace: ranks=%d wall=%d path=%d",
			rep.Ranks, rep.WallUs, len(rep.Path))
	}
	for _, lane := range rep.PerRank {
		if got := lane.ComputeUs + lane.CommUs + lane.IdleUs; got != rep.WallUs {
			t.Errorf("rank %d attribution %d != wall %d", lane.Rank, got, rep.WallUs)
		}
	}

	// The server recorder picked up the critical-path gauges and the
	// per-tenant SLO histograms with the trace-ID exemplar (recorded
	// just after the view turns terminal — poll briefly).
	deadline := time.Now().Add(10 * time.Second)
	var metrics string
	for {
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf, rec); err != nil {
			t.Fatal(err)
		}
		metrics = buf.String()
		if strings.Contains(metrics, "slo.total_us.tenant.acme") ||
			strings.Contains(metrics, "gbpolar_slo_total_us_tenant_acme_bucket") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SLO histogram never appeared in metrics:\n%s", metrics)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		"gbpolar_slo_queue_wait_us_tenant_acme_bucket",
		"gbpolar_slo_run_us_tenant_acme_bucket",
		"gbpolar_slo_total_us_tenant_acme_bucket",
		`# {trace_id="` + wantTID + `"}`,
		"gbpolar_critpath_comm_frac",
		"gbpolar_critpath_slack_us_rank0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	_ = s
}

// TestDrainPersistsWellFormedTrace is satellite 3's library half: a job
// interrupted mid-run by drain still leaves a complete, parseable trace
// on disk — the gb drivers force-close open spans on the cancel path, so
// the sink always receives an export-ready recorder.
func TestDrainPersistsWellFormedTrace(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := New(Config{
		DataDir:          dataDir,
		DefaultProcesses: 3,
		CheckpointDelay:  80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()

	code, data := postJob(t, ts1.URL, JobRequest{Molecule: molSpec(testMol(150, 23)), Tenant: "drainer"})
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", code, data)
	}
	var accepted JobView
	if err := json.Unmarshal(data, &accepted); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, view := getJob(t, ts1.URL, accepted.ID); view.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // land inside the slowed phase pipeline
	s1.Drain()

	if view, ok := s1.lookup(accepted.ID); !ok || view.State != StateInterrupted {
		t.Fatalf("post-drain view %+v (ok=%v), want interrupted", view, ok)
	}

	// The interrupted attempt's trace is on disk and well-formed: it
	// parses, the spans are closed (end >= start), and the trace identity
	// matches the job.
	tracePath := filepath.Join(dataDir, accepted.ID, "trace", "attempt-1.json")
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("interrupted job's trace: %v", err)
	}
	runs, err := critpath.Parse(raw)
	if err != nil {
		t.Fatalf("parsing interrupted trace: %v", err)
	}
	if len(runs) != 1 || len(runs[0].Spans) == 0 {
		t.Fatalf("interrupted trace: %d runs, want 1 with spans", len(runs))
	}
	run := runs[0]
	if run.Trace.Job != accepted.ID || run.Trace.Tenant != "drainer" {
		t.Errorf("interrupted trace identity %+v", run.Trace)
	}
	for _, sp := range run.Spans {
		if sp.EndUs < sp.StartUs {
			t.Fatalf("unclosed span %q: [%d, %d]", sp.Name, sp.StartUs, sp.EndUs)
		}
	}

	// The API still serves the trace while the daemon drains.
	tcode, tdata := getTrace(t, ts1.URL, accepted.TraceID)
	if tcode != http.StatusOK {
		t.Fatalf("GET trace during drain: status %d: %s", tcode, tdata)
	}
}

// TestTraceEndpointRejects pins the endpoint's typed-error paths.
func TestTraceEndpointRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultProcesses: 2})
	for _, tid := range []string{"", "t-ffffffffffffffff", "j-123", "t-x/../../etc"} {
		code, data := getTrace(t, ts.URL, tid)
		if code != http.StatusNotFound {
			t.Errorf("GET trace %q: status %d, want 404 (%s)", tid, code, data)
		}
	}
}

// TestTenantSanitization keeps hostile tenant names out of the metric
// namespace.
func TestTenantSanitization(t *testing.T) {
	cases := map[string]string{
		"":           "default",
		"acme":       "acme",
		"a b/c{d}":   "a_b_c_d_",
		"Tenant-9_x": "Tenant-9_x",
	}
	for in, want := range cases {
		if got := sanitizeTenant(in); got != want {
			t.Errorf("sanitizeTenant(%q) = %q, want %q", in, got, want)
		}
	}
}
