package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"gbpolar/internal/molecule"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs           submit a job  → 202 {id, state, retry hints}
//	GET  /v1/jobs/{id}      poll a job    → 200 JobView
//	GET  /v1/traces/{t-id}  fetch a job's newest persisted attempt trace
//	                        (Chrome trace-event JSON, gbtrace-ready)
//	GET  /readyz            admission open? 200 / 503 while draining
//	GET  /livez             process up?     always 200
//
// Every non-2xx body is a typed ErrorDoc. The handler never panics on
// any input: malformed JSON, oversized bodies, NaN coordinates, and
// unknown IDs all map to typed errors (the http server would turn a
// panic into a dropped connection — and gblint's panicfree analyzer
// polices this package like the rest of internal/).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	mux.HandleFunc("/v1/traces/", s.handleTraceByID)
	mux.HandleFunc("/livez", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if ok, detail := s.Ready(); !ok {
			http.Error(w, "not ready: "+detail, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeJSON writes v with status code. Encoding our own response types
// cannot fail; a broken client connection is the client's problem.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a typed ErrorDoc, with a Retry-After header when
// the document carries one.
func writeError(w http.ResponseWriter, status int, doc ErrorDoc) {
	if doc.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", doc.RetryAfterSec))
	}
	writeJSON(w, status, struct {
		Error ErrorDoc `json:"error"`
	}{doc})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, ErrorDoc{
			Code: CodeMalformed, Message: "POST a JobRequest to /v1/jobs"})
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.count("serve.rejected.malformed", 1)
		writeError(w, http.StatusBadRequest, ErrorDoc{
			Code: CodeMalformed, Message: "decoding request: " + err.Error()})
		return
	}
	j, retryAfter, err := s.admit(&req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, j.snapshot())
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, ErrorDoc{
			Code: CodeDraining, Message: "daemon is draining; resubmit elsewhere or after restart"})
	case errors.Is(err, errOverQuota):
		writeError(w, http.StatusTooManyRequests, ErrorDoc{
			Code: CodeOverQuota, Message: fmt.Sprintf("tenant %q is over its admission quota", req.Tenant),
			RetryAfterSec: max(retryAfter, 1)})
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests, ErrorDoc{
			Code:          CodeOverloaded,
			Message:       fmt.Sprintf("admission queue is full (%d jobs); Retry-After models the queued work's cost", s.cfg.QueueDepth),
			RetryAfterSec: retryAfter})
	case errors.Is(err, errOverMemory):
		writeError(w, http.StatusTooManyRequests, ErrorDoc{
			Code:          CodeMemoryPressure,
			Message:       "modeled memory footprint exceeds the free budget at every layout; memory frees as running jobs finish",
			RetryAfterSec: retryAfter})
	case errors.Is(err, errTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, ErrorDoc{
			Code:    CodeTooLarge,
			Message: "modeled memory footprint exceeds the daemon's whole budget even at one process; retrying cannot help"})
	case errors.Is(err, molecule.ErrInvalidInput):
		writeError(w, http.StatusBadRequest, ErrorDoc{
			Code: CodeInvalidInput, Message: err.Error()})
	default:
		writeError(w, http.StatusInternalServerError, ErrorDoc{
			Code: CodeInternal, Message: err.Error()})
	}
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, ErrorDoc{
			Code: CodeMalformed, Message: "GET /v1/jobs/{id}"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, ErrorDoc{
			Code: CodeNotFound, Message: "job id missing or malformed"})
		return
	}
	view, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorDoc{
			Code: CodeNotFound, Message: fmt.Sprintf("no job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleTraceByID serves the newest persisted attempt trace of the job
// behind a trace ID. The t-/j- prefix mapping is derivational, so no
// lookup table can go stale; the job itself must still be known (running
// or done) — trace IDs are not a way to probe the data directory.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, ErrorDoc{
			Code: CodeMalformed, Message: "GET /v1/traces/{trace_id}"})
		return
	}
	tid := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if tid == "" || strings.Contains(tid, "/") || !strings.HasPrefix(tid, "t-") {
		writeError(w, http.StatusNotFound, ErrorDoc{
			Code: CodeNotFound, Message: "trace id missing or malformed (want t-<hex>)"})
		return
	}
	jobID := jobIDForTrace(tid)
	if _, ok := s.lookup(jobID); !ok {
		writeError(w, http.StatusNotFound, ErrorDoc{
			Code: CodeNotFound, Message: fmt.Sprintf("no trace %q", tid)})
		return
	}
	path := ""
	if s.cfg.DataDir != "" {
		path = s.latestTraceFile(jobID)
	}
	if path == "" {
		writeError(w, http.StatusNotFound, ErrorDoc{
			Code: CodeNotFound, Message: fmt.Sprintf("trace %q has no persisted attempts (job may not have run yet, or the daemon runs without a data dir)", tid)})
		return
	}
	data, err := s.cfg.FS.ReadFile(path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrorDoc{
			Code: CodeInternal, Message: "reading trace: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
