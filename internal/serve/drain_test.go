package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDrainMidJobResumesBitwise is the drain contract, in process:
// a job interrupted mid-run by Drain is re-queued by the next New over
// the same data dir, resumes from its mid-phase checkpoint, and its
// result is bitwise identical — same Epol bits, same Born CRC — to an
// uninterrupted run of the same request.
func TestDrainMidJobResumesBitwise(t *testing.T) {
	dataDir := t.TempDir()
	mol := testMol(150, 21)

	// Phase 1: a daemon whose checkpoint saves are slowed, so the drain
	// signal reliably lands while the job is mid-run.
	s1, err := New(Config{
		DataDir:          dataDir,
		DefaultProcesses: 3,
		CheckpointDelay:  80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())

	code, data := postJob(t, ts1.URL, JobRequest{Molecule: molSpec(mol)})
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", code, data)
	}
	var accepted JobView
	if err := json.Unmarshal(data, &accepted); err != nil {
		t.Fatal(err)
	}

	// Wait for the job to be running, then drain mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, view := getJob(t, ts1.URL, accepted.ID); view.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // land inside the slowed phase pipeline
	s1.Drain()

	view, ok := s1.lookup(accepted.ID)
	if !ok || view.State != StateInterrupted {
		t.Fatalf("post-drain view %+v (ok=%v), want interrupted", view, ok)
	}
	ts1.Close()

	// Phase 2: a fresh daemon over the same data dir resumes the job.
	s2, err := New(Config{DataDir: dataDir, DefaultProcesses: 3})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Drain()
	}()

	resumed := awaitTerminal(t, ts2.URL, accepted.ID)
	if resumed.State != StateDone || resumed.Result == nil {
		t.Fatalf("resumed job view %+v", resumed)
	}
	if !resumed.Result.Resumed {
		t.Error("resumed job not marked Resumed")
	}

	// The reference: the same request, never interrupted.
	ref := refRun(t, mol, 3)
	if resumed.Result.EpolBits != epolBits(ref.Result.Epol) {
		t.Errorf("resumed Epol bits %s != uninterrupted %s",
			resumed.Result.EpolBits, epolBits(ref.Result.Epol))
	}
	if want := bornCRCHex(ref.Result.Born); resumed.Result.BornCRC32 != want {
		t.Errorf("resumed Born CRC %s != uninterrupted %s", resumed.Result.BornCRC32, want)
	}
	if resumed.Result.Degraded {
		t.Error("clean resumed run marked Degraded")
	}
}

// TestRestartServesFinishedJobViews pins the other half of persistence:
// a restarted daemon still answers GET for jobs finished before the
// restart.
func TestRestartServesFinishedJobViews(t *testing.T) {
	dataDir := t.TempDir()
	s1, err := New(Config{DataDir: dataDir, DefaultProcesses: 2})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	code, data := postJob(t, ts1.URL, JobRequest{Molecule: molSpec(testMol(60, 9))})
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", code, data)
	}
	var accepted JobView
	if err := json.Unmarshal(data, &accepted); err != nil {
		t.Fatal(err)
	}
	first := awaitTerminal(t, ts1.URL, accepted.ID)
	if first.State != StateDone {
		t.Fatalf("job view %+v", first)
	}
	ts1.Close()
	s1.Drain()

	s2, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	codeAfter, after := getJob(t, ts2.URL, accepted.ID)
	if codeAfter != http.StatusOK || after.State != StateDone || after.Result == nil {
		t.Fatalf("restarted GET: %d %+v", codeAfter, after)
	}
	if after.Result.EpolBits != first.Result.EpolBits {
		t.Errorf("restart changed the stored result: %s vs %s",
			after.Result.EpolBits, first.Result.EpolBits)
	}
}
