package serve

import (
	"math"
	"sync"
	"time"
)

// QuotaConfig is a per-tenant token bucket: each admitted job takes one
// token, tokens refill at RatePerSec up to Burst. The zero value
// disables quotas.
type QuotaConfig struct {
	// RatePerSec is the sustained admission rate per tenant.
	RatePerSec float64
	// Burst is the bucket capacity (defaults to max(1, RatePerSec)).
	Burst float64
}

func (q QuotaConfig) enabled() bool { return q.RatePerSec > 0 }

func (q QuotaConfig) burst() float64 {
	if q.Burst > 0 {
		return q.Burst
	}
	return math.Max(1, q.RatePerSec)
}

// quotas tracks one token bucket per tenant name. Buckets are created
// full on first use; refill happens lazily on take, from the injected
// clock so tests never sleep.
type quotas struct {
	cfg   QuotaConfig
	clock func() time.Time

	mu sync.Mutex
	m  map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(cfg QuotaConfig, clock func() time.Time) *quotas {
	return &quotas{cfg: cfg, clock: clock, m: make(map[string]*bucket)}
}

// take spends one token from tenant's bucket. When the bucket is empty
// it reports ok=false and how long until the next token accrues.
func (q *quotas) take(tenant string) (ok bool, retryAfter time.Duration) {
	if q == nil || !q.cfg.enabled() {
		return true, 0
	}
	now := q.clock()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.m[tenant]
	if b == nil {
		b = &bucket{tokens: q.cfg.burst(), last: now}
		q.m[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.cfg.burst(), b.tokens+dt*q.cfg.RatePerSec)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.cfg.RatePerSec
	return false, time.Duration(need * float64(time.Second))
}
