// Package serve is the Epol serving layer: a long-lived daemon core
// that accepts molecule jobs over HTTP/JSON, runs each through the
// internal/supervise escalation ladder with per-request deadlines, and
// holds three promises under load and failure injection:
//
//   - Every response is exactly one of: a correct result, a Degraded
//     result carrying its rigorous ErrorBound, or a typed error. Never
//     a panic, never silence.
//   - Admission is bounded. A full queue answers 429 with a Retry-After
//     derived from the modeled cost of the work already queued (the
//     internal/perf machine model) — clients back off by cost, not by
//     guess, and goroutines never pile up without bound.
//   - Drain is graceful. SIGTERM stops admission, in-flight jobs are
//     checkpointed mid-phase to their per-job DirStore, and a restarted
//     daemon resumes them to bitwise-identical results (the supervised
//     runs always use the deterministic protocol path, so a resumed
//     energy is the same float64, bit for bit).
//
// The package is a library; cmd/gbd is the thin process wrapper that
// adds flags, signal handling, and the obs endpoint.
package serve

import (
	"fmt"
	"math"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
)

// Error codes of the typed error envelope. Every non-2xx response body
// is an ErrorDoc with one of these codes; clients dispatch on the code,
// not the message.
const (
	// CodeMalformed marks a request body that is not valid JSON or not
	// a JobRequest (400).
	CodeMalformed = "malformed_request"
	// CodeInvalidInput marks a molecule that parsed but fails
	// validation: NaN/Inf coordinates, non-positive radii, empty or
	// oversized rosters (400).
	CodeInvalidInput = "invalid_input"
	// CodeOverQuota marks a tenant whose token bucket is empty (429,
	// Retry-After until the next token).
	CodeOverQuota = "over_quota"
	// CodeOverloaded marks a full admission queue (429, Retry-After
	// from the modeled cost of the queued work).
	CodeOverloaded = "overloaded"
	// CodeMemoryPressure marks a job whose modeled footprint exceeds
	// the free memory budget even at the narrowest layout right now
	// (429, Retry-After from the modeled cost of the queued work —
	// memory frees as running jobs complete).
	CodeMemoryPressure = "memory_pressure"
	// CodeTooLarge marks a job whose modeled footprint exceeds the
	// whole memory budget at ANY layout (413): retrying cannot help.
	CodeTooLarge = "too_large"
	// CodeDraining marks a daemon that received SIGTERM and no longer
	// admits work (503).
	CodeDraining = "draining"
	// CodeNotFound marks an unknown job ID (404).
	CodeNotFound = "not_found"
	// CodeDeadlineExceeded marks a job whose deadline expired while it
	// was still queued — it never ran.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeInternal marks a run failure that is not the client's fault.
	CodeInternal = "internal"
)

// ErrorDoc is the typed error envelope.
type ErrorDoc struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSec is set on 429s: how long the client should wait.
	RetryAfterSec int64 `json:"retry_after_sec,omitempty"`
}

// AtomSpec is one atom of a job request.
type AtomSpec struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Z      float64 `json:"z"`
	Radius float64 `json:"radius"`
	Charge float64 `json:"charge"`
}

// MoleculeSpec is the molecule of a job request.
type MoleculeSpec struct {
	Name  string     `json:"name"`
	Atoms []AtomSpec `json:"atoms"`
}

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	Molecule MoleculeSpec `json:"molecule"`
	// Processes and Threads pick the run layout (defaults from the
	// server config).
	Processes int `json:"processes,omitempty"`
	Threads   int `json:"threads,omitempty"`
	// DeadlineMS bounds the job's supervised wall time: past it the
	// supervisor jumps to the always-completing fallback, and a job
	// still queued when it expires fails typed instead of running.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Tenant names the quota bucket ("" shares the default bucket).
	Tenant string `json:"tenant,omitempty"`
	// Seed seeds the supervisor's backoff jitter (deterministic audit
	// trails for a fixed seed).
	Seed int64 `json:"seed,omitempty"`
	// TargetErrorKcal asks the server to auto-tune the accuracy point:
	// the job runs at the cheapest point the internal/tune search admits
	// for this |Epol| error budget (kcal/mol), and the chosen point
	// comes back in the result's "accuracy" envelope. The supervisor's
	// accuracy-shedding ladder then steps down the tuner's admissible
	// frontier instead of scaling ε blindly. 0 keeps the calibrated
	// default accuracy.
	TargetErrorKcal float64 `json:"target_error_kcal,omitempty"`
}

// States of a job.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	// StateInterrupted marks a job stopped by drain: no result yet, its
	// checkpoint is durable, and a restarted daemon re-queues it.
	StateInterrupted = "interrupted"
)

// AccuracyDoc is the accuracy point a job ran at, reported whenever the
// request asked for auto-tuning (target_error_kcal > 0). The fields
// mirror gb.Accuracy; predicted_error_kcal is the tuner's bound for the
// FINAL point — if the supervisor shed accuracy down the ladder, this
// reflects the step actually run, and the shed error is also priced into
// error_bound.
type AccuracyDoc struct {
	EpsBorn            float64 `json:"eps_born"`
	EpsEpol            float64 `json:"eps_epol"`
	BinWidth           float64 `json:"bin_width"`
	QuadOrder          int     `json:"quad_order"`
	Order              int     `json:"order"`
	TargetErrorKcal    float64 `json:"target_error_kcal"`
	PredictedErrorKcal float64 `json:"predicted_error_kcal"`
}

// ResultDoc is the terminal payload of a successful job.
type ResultDoc struct {
	Epol float64 `json:"epol"`
	// EpolBits is Epol's exact bit pattern (hex of math.Float64bits):
	// the drain contract is asserted on bits, not on printed decimals.
	EpolBits string `json:"epol_bits"`
	// BornCRC32 is an IEEE CRC over the Born radii bytes in atom order
	// — a compact bitwise fingerprint of the full per-atom output.
	BornCRC32  string  `json:"born_crc32"`
	Atoms      int     `json:"atoms"`
	Degraded   bool    `json:"degraded"`
	ErrorBound float64 `json:"error_bound"`
	Rung       string  `json:"rung"`
	EpsFactor  float64 `json:"eps_factor"`
	Attempts   int     `json:"attempts"`
	// Shed reports the job was started on a relaxed rung by the
	// overload policy (queue pressure or unhealthy ranks).
	Shed bool `json:"shed,omitempty"`
	// Resumed reports the job picked its checkpoint back up after a
	// daemon restart.
	Resumed bool `json:"resumed,omitempty"`
	// ShrunkProcesses, when nonzero, is the process count the memory
	// admission gate shrank this job to (the request asked for more, the
	// budget's headroom fit fewer). The soak harness uses it to know a
	// result ran on a different layout than the clean oracle.
	ShrunkProcesses int `json:"shrunk_processes,omitempty"`
	// Accuracy is the tuned accuracy point the job ran at (requests
	// with target_error_kcal only).
	Accuracy *AccuracyDoc `json:"accuracy,omitempty"`
}

// JobView is the GET /v1/jobs/{id} body.
type JobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// TraceID is the job's request-trace identity, minted at admission
	// and stable across daemon restarts (it is derived from the job ID).
	// Every span of every attempt carries it, and GET
	// /v1/traces/{trace_id} returns the newest persisted attempt trace.
	TraceID string     `json:"trace_id,omitempty"`
	Result  *ResultDoc `json:"result,omitempty"`
	Error   *ErrorDoc  `json:"error,omitempty"`
}

// buildMolecule converts the wire molecule into a validated
// molecule.Molecule. Size violations are reported here; per-atom
// violations come back as molecule.InputError via Validate.
func buildMolecule(spec MoleculeSpec, maxAtoms int) (*molecule.Molecule, error) {
	if len(spec.Atoms) == 0 {
		return nil, &molecule.InputError{Molecule: spec.Name, Atom: -1, Field: "atoms",
			Msg: "molecule has no atoms"}
	}
	if maxAtoms > 0 && len(spec.Atoms) > maxAtoms {
		return nil, &molecule.InputError{Molecule: spec.Name, Atom: -1, Field: "atoms",
			Msg: fmt.Sprintf("roster of %d atoms exceeds the server's limit of %d", len(spec.Atoms), maxAtoms)}
	}
	name := spec.Name
	if name == "" {
		name = "unnamed"
	}
	m := &molecule.Molecule{Name: name, Atoms: make([]molecule.Atom, len(spec.Atoms))}
	for i, a := range spec.Atoms {
		m.Atoms[i] = molecule.Atom{
			Pos:    geom.V(a.X, a.Y, a.Z),
			Radius: a.Radius,
			Charge: a.Charge,
		}
	}
	return m, m.Validate()
}

// epolBits renders the exact bit pattern of a float64.
func epolBits(v float64) string { return fmt.Sprintf("%016x", math.Float64bits(v)) }
