package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gbpolar/internal/fault/fs"
)

// On-disk layout, one directory per job under Config.DataDir:
//
//	<id>/job.json     the admitted JobRequest — written before the job
//	                  is queued, so an admitted job survives a crash
//	<id>/ckpt/        the job's supervise.DirStore phase checkpoints
//	<id>/result.json  the terminal JobView — written once, atomically,
//	                  when the job finishes
//
// The pair (job.json present, result.json absent) IS the daemon's
// work-in-progress set: startup re-queues exactly those directories,
// and each resumes from its newest checkpoint. No separate queue file
// exists to get out of sync.

// jobRecord is the job.json schema.
type jobRecord struct {
	ID  string     `json:"id"`
	Req JobRequest `json:"request"`
}

// newJobID returns a fresh random job ID ("j-" + 8 random bytes hex).
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: generating job id: %w", err)
	}
	return "j-" + hex.EncodeToString(b[:]), nil
}

func (s *Server) jobDir(id string) string  { return filepath.Join(s.cfg.DataDir, id) }
func (s *Server) ckptDir(id string) string { return filepath.Join(s.jobDir(id), "ckpt") }

// writeFileAtomic writes data through the server's filesystem via the
// full durability discipline (temp file + write + fsync + rename) so a
// crash can never leave a truncated file where a complete one should
// be — and an acked write really is on stable storage, not just in the
// page cache.
func (s *Server) writeFileAtomic(path string, data []byte) error {
	return fs.WriteFileAtomic(s.cfg.FS, path, data)
}

// persistJob durably records an admitted job before it is queued.
func (s *Server) persistJob(id string, req *JobRequest) error {
	dir := s.jobDir(id)
	if err := s.cfg.FS.MkdirAll(dir); err != nil {
		return fmt.Errorf("serve: creating job dir: %w", err)
	}
	data, err := json.MarshalIndent(jobRecord{ID: id, Req: *req}, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding job: %w", err)
	}
	if err := s.writeFileAtomic(filepath.Join(dir, "job.json"), data); err != nil {
		return fmt.Errorf("serve: persisting job: %w", err)
	}
	return nil
}

// persistResult durably records a job's terminal view. After this the
// job's checkpoints are only a disk-footprint concern, not a
// correctness one.
func (s *Server) persistResult(id string, view *JobView) error {
	data, err := json.MarshalIndent(view, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encoding result: %w", err)
	}
	if err := s.writeFileAtomic(filepath.Join(s.jobDir(id), "result.json"), data); err != nil {
		return fmt.Errorf("serve: persisting result: %w", err)
	}
	return nil
}

// scanJobs reads DataDir and splits past jobs into finished (terminal
// JobViews to re-register for GET) and unfinished (jobRecords to
// re-queue for resume). Unreadable directories are skipped — a damaged
// job must not stop the daemon from serving new ones. Unfinished jobs
// come back sorted by ID so the re-queue order is stable.
func (s *Server) scanJobs() (finished []*JobView, unfinished []*jobRecord, err error) {
	entries, err := s.cfg.FS.ReadDir(s.cfg.DataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("serve: scanning data dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "j-") {
			continue
		}
		dir := filepath.Join(s.cfg.DataDir, e.Name())
		// A result.json that exists but fails to parse falls through to
		// the job.json branch: a torn terminal write (the atomic
		// discipline makes that a lying-fsync-only case) re-queues the
		// job instead of losing it — result.json is all-or-nothing.
		if data, err := s.cfg.FS.ReadFile(filepath.Join(dir, "result.json")); err == nil {
			var view JobView
			if json.Unmarshal(data, &view) == nil && view.ID != "" {
				finished = append(finished, &view)
				continue
			}
		}
		data, err := s.cfg.FS.ReadFile(filepath.Join(dir, "job.json"))
		if err != nil {
			continue
		}
		var recd jobRecord
		if json.Unmarshal(data, &recd) != nil || recd.ID == "" {
			continue
		}
		unfinished = append(unfinished, &recd)
	}
	sort.Slice(unfinished, func(i, j int) bool { return unfinished[i].ID < unfinished[j].ID })
	return finished, unfinished, nil
}
