package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/supervise"
	"gbpolar/internal/surface"
)

// molSpec converts a generated molecule into the wire format.
func molSpec(m *molecule.Molecule) MoleculeSpec {
	spec := MoleculeSpec{Name: m.Name, Atoms: make([]AtomSpec, len(m.Atoms))}
	for i, a := range m.Atoms {
		spec.Atoms[i] = AtomSpec{X: a.Pos.X, Y: a.Pos.Y, Z: a.Pos.Z,
			Radius: a.Radius, Charge: a.Charge}
	}
	return spec
}

func testMol(n int, seed int64) *molecule.Molecule {
	return molecule.Exactly(molecule.Globule("test", n, seed), n, seed)
}

// newTestServer builds, starts, and tears down a server over its
// httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func postJob(t *testing.T, base string, req JobRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, base, body)
}

func postRaw(t *testing.T, base string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func getJob(t *testing.T, base, id string) (int, JobView) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &view); err != nil {
			t.Fatalf("job view JSON: %v\n%s", err, data)
		}
	}
	return resp.StatusCode, view
}

// awaitTerminal polls until the job reaches a terminal state.
func awaitTerminal(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, view := getJob(t, base, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		switch view.State {
		case StateDone, StateFailed, StateInterrupted:
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobView{}
}

func decodeError(t *testing.T, data []byte) ErrorDoc {
	t.Helper()
	var doc struct {
		Error ErrorDoc `json:"error"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("error envelope JSON: %v\n%s", err, data)
	}
	return doc.Error
}

// refRun computes the reference outcome for a molecule at layout P via
// the same supervised path the daemon uses.
func refRun(t *testing.T, m *molecule.Molecule, P int) *supervise.Outcome {
	t.Helper()
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gb.NewSystem(m, surf, gb.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	out, err := supervise.Run(sys, supervise.Spec{Processes: P})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSubmitAndCompleteMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultProcesses: 3})
	mol := testMol(150, 11)

	code, data := postJob(t, ts.URL, JobRequest{Molecule: molSpec(mol)})
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", code, data)
	}
	var accepted JobView
	if err := json.Unmarshal(data, &accepted); err != nil || accepted.ID == "" {
		t.Fatalf("accepted view %s: %v", data, err)
	}
	view := awaitTerminal(t, ts.URL, accepted.ID)
	if view.State != StateDone || view.Result == nil {
		t.Fatalf("terminal view %+v", view)
	}
	ref := refRun(t, mol, 3)
	if view.Result.EpolBits != epolBits(ref.Result.Epol) {
		t.Errorf("served Epol bits %s, direct run %s", view.Result.EpolBits, epolBits(ref.Result.Epol))
	}
	if want := bornCRCHex(ref.Result.Born); view.Result.BornCRC32 != want {
		t.Errorf("served Born CRC %s, direct run %s", view.Result.BornCRC32, want)
	}
	if view.Result.Degraded || view.Result.ErrorBound != 0 {
		t.Errorf("clean run reported degraded=%v bound=%v", view.Result.Degraded, view.Result.ErrorBound)
	}
}

func TestMalformedAndInvalidRequestsAreTyped(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxAtoms: 50})

	// Not JSON at all.
	code, data := postRaw(t, ts.URL, []byte("{not json"))
	if code != http.StatusBadRequest || decodeError(t, data).Code != CodeMalformed {
		t.Errorf("garbage body: %d %s", code, data)
	}
	// Unknown field.
	code, data = postRaw(t, ts.URL, []byte(`{"molecule":{"atoms":[]},"surprise":1}`))
	if code != http.StatusBadRequest || decodeError(t, data).Code != CodeMalformed {
		t.Errorf("unknown field: %d %s", code, data)
	}
	// Empty roster.
	code, data = postJob(t, ts.URL, JobRequest{})
	if code != http.StatusBadRequest || decodeError(t, data).Code != CodeInvalidInput {
		t.Errorf("empty roster: %d %s", code, data)
	}
	// NaN coordinate survives JSON as a string? No — JSON has no NaN
	// literal, but a client can still send huge-but-finite garbage;
	// what CAN arrive as NaN is division artifacts on our side. Cover
	// the validator path with an inline NaN built server-side.
	spec := molSpec(testMol(10, 3))
	spec.Atoms[4].Radius = -1
	code, data = postJob(t, ts.URL, JobRequest{Molecule: spec})
	if code != http.StatusBadRequest || decodeError(t, data).Code != CodeInvalidInput {
		t.Errorf("negative radius: %d %s", code, data)
	}
	// Oversized roster.
	code, data = postJob(t, ts.URL, JobRequest{Molecule: molSpec(testMol(60, 4))})
	if code != http.StatusBadRequest {
		t.Errorf("oversized roster: %d %s", code, data)
	}
	if doc := decodeError(t, data); doc.Code != CodeInvalidInput || !strings.Contains(doc.Message, "limit of 50") {
		t.Errorf("oversized roster error %+v", decodeError(t, data))
	}
	// Unknown job.
	if code, _ := getJob(t, ts.URL, "j-doesnotexist"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d", code)
	}
}

func TestQuotaRejectsWithRetryAfter(t *testing.T) {
	var clockNanos atomic.Int64
	clockNanos.Store(time.Unix(1000, 0).UnixNano())
	clock := func() time.Time { return time.Unix(0, clockNanos.Load()) }
	_, ts := newTestServer(t, Config{
		Quota: QuotaConfig{RatePerSec: 0.5, Burst: 2},
		Clock: clock,
	})
	spec := molSpec(testMol(20, 5))

	for i := 0; i < 2; i++ {
		if code, data := postJob(t, ts.URL, JobRequest{Molecule: spec, Tenant: "acme"}); code != http.StatusAccepted {
			t.Fatalf("burst request %d rejected: %d %s", i, code, data)
		}
	}
	code, data := postJob(t, ts.URL, JobRequest{Molecule: spec, Tenant: "acme"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d: %s", code, data)
	}
	doc := decodeError(t, data)
	if doc.Code != CodeOverQuota || doc.RetryAfterSec < 1 {
		t.Errorf("over-quota error %+v", doc)
	}
	// Another tenant has its own bucket.
	if code, data := postJob(t, ts.URL, JobRequest{Molecule: spec, Tenant: "other"}); code != http.StatusAccepted {
		t.Errorf("other tenant rejected: %d %s", code, data)
	}
	// Tokens refill with the clock.
	clockNanos.Add(int64(2 * time.Second))
	if code, data := postJob(t, ts.URL, JobRequest{Molecule: spec, Tenant: "acme"}); code != http.StatusAccepted {
		t.Errorf("post-refill request rejected: %d %s", code, data)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	// No Start(): nothing drains the queue, so admission must bound it.
	s, err := New(Config{DataDir: t.TempDir(), QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	spec := molSpec(testMol(30, 6))

	for i := 0; i < 2; i++ {
		if code, data := postJob(t, ts.URL, JobRequest{Molecule: spec}); code != http.StatusAccepted {
			t.Fatalf("fill request %d: %d %s", i, code, data)
		}
	}
	code, data := postJob(t, ts.URL, JobRequest{Molecule: spec})
	if code != http.StatusTooManyRequests {
		t.Fatalf("full-queue status %d: %s", code, data)
	}
	doc := decodeError(t, data)
	if doc.Code != CodeOverloaded {
		t.Errorf("full-queue code %q", doc.Code)
	}
	if doc.RetryAfterSec < 1 {
		t.Errorf("full-queue Retry-After %d, want >= 1 (modeled cost of 2 queued jobs)", doc.RetryAfterSec)
	}
	// The modeled cost must scale with what is queued: two 30-atom jobs
	// at the seeded ops/atom rate.
	wantOps := int64(2 * 2000 * 30)
	if got := s.queuedOps.Load(); got != wantOps {
		t.Errorf("queued ops %d, want %d", got, wantOps)
	}
}

func TestDeadlineExpiredInQueueFailsTyped(t *testing.T) {
	// Stage a job with an already-hopeless deadline, then start workers.
	s, err := New(Config{DataDir: t.TempDir(), QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, data := postJob(t, ts.URL, JobRequest{Molecule: molSpec(testMol(30, 7)), DeadlineMS: 1})
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", code, data)
	}
	var accepted JobView
	if err := json.Unmarshal(data, &accepted); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the 1ms deadline lapse in queue
	s.Start()
	defer s.Drain()
	view := awaitTerminal(t, ts.URL, accepted.ID)
	if view.State != StateFailed || view.Error == nil || view.Error.Code != CodeDeadlineExceeded {
		t.Errorf("queued-past-deadline view %+v", view)
	}
}

func TestShedUnderQueuePressureIsPricedAndBounded(t *testing.T) {
	// ShedQueueDepth 0 defaults to half the queue; with depth 1 every
	// job admitted while another waits starts pre-shed.
	s, err := New(Config{DataDir: t.TempDir(), QueueDepth: 8, ShedQueueDepth: 1, DefaultProcesses: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	mol := testMol(150, 11)
	ids := make([]string, 3)
	for i := range ids {
		code, data := postJob(t, ts.URL, JobRequest{Molecule: molSpec(mol)})
		if code != http.StatusAccepted {
			t.Fatalf("POST %d: %d %s", i, code, data)
		}
		var v JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		ids[i] = v.ID
	}
	s.Start()
	defer s.Drain()
	ref := refRun(t, mol, 3)
	shed := 0
	for _, id := range ids {
		view := awaitTerminal(t, ts.URL, id)
		if view.State != StateDone || view.Result == nil {
			t.Fatalf("job %s: %+v", id, view)
		}
		if !view.Result.Shed {
			continue
		}
		shed++
		// Shedding is visible and priced: Degraded, factor > 1, and the
		// bound really contains the distance to the unrelaxed energy.
		if !view.Result.Degraded || view.Result.EpsFactor <= 1 || view.Result.ErrorBound <= 0 {
			t.Errorf("shed job %s not priced: %+v", id, view.Result)
		}
		if diff := math.Abs(view.Result.Epol - ref.Result.Epol); diff > view.Result.ErrorBound {
			t.Errorf("shed job %s: |Δ|=%g outside bound %g", id, diff, view.Result.ErrorBound)
		}
	}
	if shed == 0 {
		t.Error("queue of 3 jobs above ShedQueueDepth=1 shed nothing")
	}
}

func TestReadyzFlipsOnDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz before drain = %d", code)
	}
	if code := get("/livez"); code != http.StatusOK {
		t.Errorf("/livez before drain = %d", code)
	}
	s.Drain()
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain = %d", code)
	}
	if code := get("/livez"); code != http.StatusOK {
		t.Errorf("/livez after drain = %d (liveness must survive drain)", code)
	}
	// Admission is closed, typed.
	code, data := postJob(t, ts.URL, JobRequest{Molecule: molSpec(testMol(10, 1))})
	if code != http.StatusServiceUnavailable || decodeError(t, data).Code != CodeDraining {
		t.Errorf("post-drain POST: %d %s", code, data)
	}
}
