package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"gbpolar/internal/fault/fs"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
)

func diskPlan(t *testing.T, s string) *fs.Plan {
	t.Helper()
	p, err := fs.Parse(s)
	if err != nil {
		t.Fatalf("fs.Parse(%q): %v", s, err)
	}
	return p
}

func faultRecorder() *obs.Recorder {
	tm := perf.StartTimer()
	return obs.NewRecorder(tm.Elapsed)
}

// The 202 ack rides on a durable job.json: when the admission write's
// fsync fails, the request must be REJECTED — never acknowledged on the
// strength of the page cache — and no job registered.
func TestAdmissionFailsWhenJobPersistCannotSync(t *testing.T) {
	ffs := fs.NewFaultFS(diskPlan(t, "syncerr@0+1"))
	_, ts := newTestServer(t, Config{DataDir: "data", FS: ffs, DefaultProcesses: 2})

	code, data := postJob(t, ts.URL, JobRequest{Molecule: molSpec(testMol(40, 3))})
	if code != http.StatusInternalServerError {
		t.Fatalf("POST on unsyncable disk: status %d, body %s", code, data)
	}
	if doc := decodeError(t, data); doc.Code != CodeInternal {
		t.Fatalf("error code %q", doc.Code)
	}
	// Nothing half-admitted: no job.json landed, so a restart re-queues
	// nothing.
	ents, err := ffs.ReadDir("data")
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	for _, e := range ents {
		if _, err := ffs.ReadFile("data/" + e.Name() + "/job.json"); err == nil {
			t.Fatalf("job.json exists for rejected admission in %s", e.Name())
		}
	}
	// The disk heals (the plan window passed): the next POST is a 202.
	code, data = postJob(t, ts.URL, JobRequest{Molecule: molSpec(testMol(40, 3))})
	if code != http.StatusAccepted {
		t.Fatalf("POST after heal: status %d, body %s", code, data)
	}
}

// result.json is all-or-nothing: a torn terminal write (only possible
// past the atomic discipline when the fsync lied) must put the job back
// in the restart re-queue set, not serve a truncated result.
func TestTornResultRequeuedOnRestart(t *testing.T) {
	ffs := fs.NewFaultFS(nil)
	recJSON, err := json.Marshal(jobRecord{ID: "j-torn", Req: JobRequest{Molecule: molSpec(testMol(30, 5))}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ffs.MkdirAll("data/j-torn"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFileAtomic(ffs, "data/j-torn/job.json", recJSON); err != nil {
		t.Fatal(err)
	}
	// The post-crash survivor of a torn result.json: a JSON prefix.
	if err := fs.WriteFileAtomic(ffs, "data/j-torn/result.json", []byte(`{"id":"j-to`)); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{DataDir: "data", FS: ffs, DefaultProcesses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.ResumedJobs() != 1 {
		t.Fatalf("ResumedJobs = %d, want 1 (torn result must re-queue)", s.ResumedJobs())
	}
	view, ok := s.lookup("j-torn")
	if !ok || view.State != StateQueued {
		t.Fatalf("lookup after torn result: %+v ok=%v, want queued", view, ok)
	}
	// Contrast: an intact result.json is terminal, not re-queued.
	done := JobView{ID: "j-torn", State: StateDone, Result: &ResultDoc{Epol: -1}}
	doneJSON, err := json.Marshal(done)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFileAtomic(ffs, "data/j-torn/result.json", doneJSON); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{DataDir: "data", FS: ffs, DefaultProcesses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s2.ResumedJobs() != 0 {
		t.Fatalf("ResumedJobs = %d with intact result, want 0", s2.ResumedJobs())
	}
}

// Trace persistence under a failing fsync: the error is surfaced (and
// counted by the caller), never silently swallowed into a truncated
// trace file.
func TestTracePersistSyncError(t *testing.T) {
	ffs := fs.NewFaultFS(diskPlan(t, "syncerr@0+1"))
	rec := faultRecorder()
	s, err := New(Config{DataDir: "data", FS: ffs, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.persistAttemptTrace("j-x", 1, faultRecorder()); err == nil {
		t.Fatal("persistAttemptTrace under fsync error should fail")
	}
	if s.latestTraceFile("j-x") != "" {
		t.Fatal("failed trace persist left a published attempt file")
	}
	// Attempt 2 lands after the fault window.
	if err := s.persistAttemptTrace("j-x", 2, faultRecorder()); err != nil {
		t.Fatalf("persistAttemptTrace after heal: %v", err)
	}
	if got := s.latestTraceFile("j-x"); !strings.HasSuffix(got, "attempt-2.json") {
		t.Fatalf("latestTraceFile = %q", got)
	}
}

// Trace persistence under a torn write + fsync lie: the publish "works",
// and after the crash the file is a truncated prefix. Traces are
// observability, not correctness — the invariant is only that the torn
// file stays confined to the trace dir and never resurrects as a job.
func TestTracePersistTornWrite(t *testing.T) {
	ffs := fs.NewFaultFS(diskPlan(t, "torn:5@0+1,synclie@0+1"))
	s, err := New(Config{DataDir: "data", FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.persistAttemptTrace("j-x", 1, faultRecorder()); err != nil {
		t.Fatalf("torn trace persist reported failure: %v", err)
	}
	crashed := ffs.Crash(nil)
	data, err := crashed.ReadFile("data/j-x/trace/attempt-1.json")
	if err != nil || len(data) != 5 {
		t.Fatalf("post-crash torn trace: %d bytes, %v (want the 5 surviving)", len(data), err)
	}
	s2, err := New(Config{DataDir: "data", FS: crashed})
	if err != nil {
		t.Fatal(err)
	}
	if s2.ResumedJobs() != 0 {
		t.Fatalf("a torn trace resurrected %d jobs", s2.ResumedJobs())
	}
}

// The memory gate's three outcomes: too large at any layout (413,
// permanent), shrink to a narrower layout that fits (admit, visible in
// the counter), and no headroom at all (429 memory_pressure).
func TestMemoryBudgetAdmission(t *testing.T) {
	atoms := 100
	perProc := perf.EstimateDataBytes(atoms, 60*atoms)

	t.Run("too_large", func(t *testing.T) {
		_, ts := newTestServer(t, Config{DefaultProcesses: 4, MemBudgetBytes: perProc - 1})
		code, data := postJob(t, ts.URL, JobRequest{Molecule: molSpec(testMol(atoms, 7))})
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d: %s", code, data)
		}
		if doc := decodeError(t, data); doc.Code != CodeTooLarge {
			t.Fatalf("error code %q", doc.Code)
		}
	})

	t.Run("shrink", func(t *testing.T) {
		rec := faultRecorder()
		// Budget fits two processes, the request wants four: degrade to
		// the widest layout that fits instead of rejecting or OOMing.
		s, err := New(Config{DataDir: t.TempDir(), Obs: rec,
			DefaultProcesses: 4, MemBudgetBytes: 2*perProc + 1})
		if err != nil {
			t.Fatal(err)
		}
		j, _, err := s.admit(&JobRequest{Molecule: molSpec(testMol(atoms, 7)), Processes: 4})
		if err != nil {
			t.Fatalf("admit: %v", err)
		}
		if j.runP != 2 {
			t.Fatalf("runP = %d, want shrink to 2", j.runP)
		}
		if j.memBytes != 2*perProc {
			t.Fatalf("charged %d bytes, want %d", j.memBytes, 2*perProc)
		}
		if rec.Counters()["serve.jobs.memshrunk"] != 1 {
			t.Fatalf("counters = %v", rec.Counters())
		}
		if g := rec.Gauges()["storage.bytes_inflight"]; g != 2*perProc {
			t.Fatalf("storage.bytes_inflight = %d, want %d", g, 2*perProc)
		}
	})

	t.Run("memory_pressure", func(t *testing.T) {
		s, err := New(Config{DataDir: t.TempDir(), DefaultProcesses: 2,
			MemBudgetBytes: 4 * perProc})
		if err != nil {
			t.Fatal(err)
		}
		// Fill the budget as a running job would.
		s.memInflight.Store(4 * perProc)
		_, retryAfter, err := s.admit(&JobRequest{Molecule: molSpec(testMol(atoms, 7))})
		if err == nil || !strings.Contains(err.Error(), "memory") {
			t.Fatalf("admit with zero headroom: err = %v", err)
		}
		if retryAfter < 1 {
			t.Fatalf("retryAfter = %d, want >= 1", retryAfter)
		}
	})

	t.Run("http_memory_pressure", func(t *testing.T) {
		s, ts := newTestServer(t, Config{DefaultProcesses: 2, MemBudgetBytes: 4 * perProc})
		s.memInflight.Store(4 * perProc)
		code, data := postJob(t, ts.URL, JobRequest{Molecule: molSpec(testMol(atoms, 7))})
		if code != http.StatusTooManyRequests {
			t.Fatalf("status %d: %s", code, data)
		}
		doc := decodeError(t, data)
		if doc.Code != CodeMemoryPressure || doc.RetryAfterSec < 1 {
			t.Fatalf("error doc %+v", doc)
		}
	})
}

// Retry-After stays inside [1, MaxRetryAfterSec] whatever state the
// cost model is in — including the poisoned-EWMA and negative-queue
// edges a cold or buggy daemon could reach.
func TestRetryAfterClamp(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), MaxRetryAfterSec: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.retryAfter(); got != 1 {
		t.Fatalf("empty queue: retryAfter = %d, want 1", got)
	}
	s.queuedOps.Store(1 << 60)
	if got := s.retryAfter(); got != 7 {
		t.Fatalf("huge queue: retryAfter = %d, want the 7s clamp", got)
	}
	s.queuedOps.Store(-5)
	if got := s.retryAfter(); got != 1 {
		t.Fatalf("negative queue: retryAfter = %d, want 1", got)
	}
	// A poisoned EWMA must not break the ops estimate either: the
	// fallback density keeps estimates positive.
	s.opsPerAtom.Store(math.Float64bits(math.NaN()))
	if est := s.estimateOps(100); est <= 0 {
		t.Fatalf("estimateOps under NaN EWMA = %d, want positive", est)
	}
	s.opsPerAtom.Store(math.Float64bits(-10))
	if est := s.estimateOps(100); est <= 0 {
		t.Fatalf("estimateOps under negative EWMA = %d, want positive", est)
	}
}

// Graceful drain racing an ENOSPC disk: every checkpoint save fails,
// but drain must still stop the job at a phase boundary as interrupted
// — job.json present, result.json absent, nothing partial acked — and
// a restart on a healed disk completes it bitwise-identical to an
// undisturbed run.
func TestDrainRacingENOSPC(t *testing.T) {
	// Write op 0 is the admission's job.json; every write after it hits
	// ENOSPC, so no checkpoint or trace can land while the plan holds.
	ffs := fs.NewFaultFS(diskPlan(t, "enospc@1+10000"))
	mol := testMol(150, 23)
	s1, err := New(Config{
		DataDir:          "data",
		FS:               ffs,
		DefaultProcesses: 3,
		CheckpointDelay:  80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())

	code, data := postJob(t, ts1.URL, JobRequest{Molecule: molSpec(mol)})
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", code, data)
	}
	var accepted JobView
	if err := json.Unmarshal(data, &accepted); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, view := getJob(t, ts1.URL, accepted.ID); view.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // land inside the slowed, failing checkpoint pipeline
	s1.Drain()
	ts1.Close()

	view, ok := s1.lookup(accepted.ID)
	if !ok || view.State != StateInterrupted {
		t.Fatalf("post-drain view %+v (ok=%v), want interrupted — ENOSPC must not turn drain into a failure ack", view, ok)
	}
	if _, err := ffs.ReadFile("data/" + accepted.ID + "/result.json"); !os.IsNotExist(err) {
		t.Fatalf("drain acked a result on a full disk: %v", err)
	}

	// Restart on the healed disk (space freed): the job re-queues and
	// completes clean. Crash(nil) keeps exactly the durable bytes —
	// job.json, synced at admission, survives by construction.
	healed := ffs.Crash(nil)
	s2, err := New(Config{DataDir: "data", FS: healed, DefaultProcesses: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s2.ResumedJobs() != 1 {
		t.Fatalf("ResumedJobs = %d, want 1", s2.ResumedJobs())
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Drain()
	}()
	resumed := awaitTerminal(t, ts2.URL, accepted.ID)
	if resumed.State != StateDone || resumed.Result == nil {
		t.Fatalf("resumed job view %+v", resumed)
	}
	ref := refRun(t, mol, 3)
	if resumed.Result.EpolBits != epolBits(ref.Result.Epol) {
		t.Errorf("resumed Epol bits %s != undisturbed %s",
			resumed.Result.EpolBits, epolBits(ref.Result.Epol))
	}
	if resumed.Result.Degraded {
		t.Error("clean re-run marked Degraded")
	}
}
