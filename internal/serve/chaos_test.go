package serve

import (
	"encoding/json"
	"hash/fnv"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"gbpolar/internal/fault"
)

// TestChaosUnderLoad is the acceptance gate of the serving layer: nine
// concurrent clients — valid jobs, malformed bodies, invalid
// molecules, and a quota-blowing tenant — against a daemon whose runs
// are fault-injected with crash/drop/straggle chaos plans. The
// invariants:
//
//   - every admitted job reaches a terminal state, and that state is
//     OK (bitwise-checkable against a reference), Degraded with an
//     ErrorBound that contains the damage, or a typed error;
//   - every rejected request carries a typed error envelope;
//   - nothing panics (a panic fails the test run);
//   - no goroutines leak once the daemon drains.
func TestChaosUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const P = 3
	mol := testMol(150, 31)
	ref := refRun(t, mol, P)

	s, err := New(Config{
		DataDir:          t.TempDir(),
		DefaultProcesses: P,
		QueueDepth:       6,
		Retries:          1,
		Quota:            QuotaConfig{RatePerSec: 1, Burst: 3},
		PlanFor: func(jobID string, attempt int) *fault.Plan {
			// Deterministic per-job chaos — crashes, drops, delays,
			// stragglers, and (for half the jobs) payload corruption —
			// on early attempts; the ladder earns completion.
			h := fnv.New64a()
			h.Write([]byte(jobID))
			seed := int64(h.Sum64()%100000) + int64(attempt)
			if attempt >= 3 {
				return nil // let late rungs through: bounded test time
			}
			if seed%2 == 0 {
				return fault.ChaosWithCorruption(seed, P, 3)
			}
			return fault.Chaos(seed, P, 3)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())

	spec := molSpec(mol)
	var (
		mu       sync.Mutex
		jobIDs   []string
		rejects  = map[string]int{} // error code → count
		statuses = map[int]int{}
	)
	record := func(code int, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		statuses[code]++
		if code == http.StatusAccepted {
			var v JobView
			if json.Unmarshal(data, &v) == nil && v.ID != "" {
				jobIDs = append(jobIDs, v.ID)
			} else {
				t.Errorf("202 without a job view: %s", data)
			}
			return
		}
		var doc struct {
			Error ErrorDoc `json:"error"`
		}
		if json.Unmarshal(data, &doc) != nil || doc.Error.Code == "" {
			t.Errorf("status %d without a typed error envelope: %s", code, data)
			return
		}
		rejects[doc.Error.Code]++
	}

	var wg sync.WaitGroup
	client := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	// 4 well-behaved clients, distinct tenants, 2 jobs each.
	for c := 0; c < 4; c++ {
		tenant := string(rune('a' + c))
		client(func() {
			for i := 0; i < 2; i++ {
				code, data := postJob(t, ts.URL, JobRequest{Molecule: spec, Tenant: tenant})
				record(code, data)
			}
		})
	}
	// 2 clients sending invalid molecules (negative radius).
	for c := 0; c < 2; c++ {
		client(func() {
			bad := molSpec(mol)
			bad.Atoms[0].Radius = -4
			code, data := postJob(t, ts.URL, JobRequest{Molecule: bad, Tenant: "bad"})
			record(code, data)
		})
	}
	// 2 clients sending garbage bodies.
	for c := 0; c < 2; c++ {
		client(func() {
			code, data := postRaw(t, ts.URL, []byte(`{"molecule": [this is not json`))
			record(code, data)
		})
	}
	// 1 greedy tenant hammering one bucket.
	client(func() {
		for i := 0; i < 6; i++ {
			code, data := postJob(t, ts.URL, JobRequest{Molecule: spec, Tenant: "greedy"})
			record(code, data)
		}
	})
	wg.Wait()

	if statuses[http.StatusAccepted] == 0 {
		t.Fatal("no job was admitted")
	}
	if rejects[CodeInvalidInput] < 2 || rejects[CodeMalformed] < 2 {
		t.Errorf("typed rejections %v, want >=2 invalid_input and >=2 malformed", rejects)
	}
	if rejects[CodeOverQuota]+rejects[CodeOverloaded] == 0 {
		t.Errorf("greedy tenant (6 posts, burst 3) plus queue depth 6 drew no 429: %v", rejects)
	}

	// Every admitted job terminates as OK, Degraded-with-a-true-bound,
	// or a typed error.
	for _, id := range jobIDs {
		view := awaitTerminal(t, ts.URL, id)
		switch view.State {
		case StateDone:
			res := view.Result
			if res == nil {
				t.Errorf("job %s done without a result", id)
				continue
			}
			diff := math.Abs(res.Epol - ref.Result.Epol)
			if res.Degraded {
				if res.ErrorBound > 0 {
					if diff > res.ErrorBound {
						t.Errorf("job %s: degraded |Δ|=%g outside bound %g", id, diff, res.ErrorBound)
					}
				} else if diff > 1e-9*math.Abs(ref.Result.Epol) {
					// A zero-bound degraded result (clean fallback) is
					// numerically a full-accuracy run.
					t.Errorf("job %s: zero-bound degraded Epol off by %g", id, diff)
				}
			} else if diff > 1e-9*math.Abs(ref.Result.Epol) {
				// Healed runs match the reference to tight relative
				// tolerance even when ranks crashed and recovered.
				t.Errorf("job %s: non-degraded Epol %v vs reference %v", id, res.Epol, ref.Result.Epol)
			}
		case StateFailed:
			if view.Error == nil || view.Error.Code == "" {
				t.Errorf("job %s failed without a typed error: %+v", id, view)
			}
		default:
			t.Errorf("job %s in non-terminal state %q after completion wait", id, view.State)
		}
	}

	ts.Close()
	s.Drain()

	// Goroutine settle: everything the daemon started must wind down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
