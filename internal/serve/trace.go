package serve

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"gbpolar/internal/obs"
	"gbpolar/internal/obs/critpath"
)

// Trace persistence, one directory per job under the job's DataDir
// entry:
//
//	<id>/trace/attempt-<n>.json   the Chrome-trace export of attempt n
//	                              (1-based), written atomically right
//	                              after the attempt ends
//
// The trace ID is derived from the job ID ("j-<hex>" → "t-<hex>") so a
// resumed job recomputes the same trace identity without persisting a
// separate mapping, and GET /v1/traces/{trace_id} inverts it without a
// lookup table.

// traceIDFor derives a job's stable trace ID from its job ID.
func traceIDFor(jobID string) string { return "t-" + strings.TrimPrefix(jobID, "j-") }

// jobIDForTrace inverts traceIDFor.
func jobIDForTrace(traceID string) string { return "j-" + strings.TrimPrefix(traceID, "t-") }

func (s *Server) traceDir(jobID string) string { return filepath.Join(s.jobDir(jobID), "trace") }

// traceFor mints the request identity stamped on every span, flight
// event, and comm record of the job's runs.
func (s *Server) traceFor(j *job) obs.TraceContext {
	return obs.TraceContext{TraceID: traceIDFor(j.id), Job: j.id, Tenant: j.req.Tenant}
}

// persistAttemptTrace durably records one attempt's Chrome trace next to
// the job's checkpoints. Persistence failures are counted, never fatal:
// a job must not fail because its trace could not be written.
func (s *Server) persistAttemptTrace(jobID string, attempt int, rec *obs.Recorder) error {
	dir := s.traceDir(jobID)
	if err := s.cfg.FS.MkdirAll(dir); err != nil {
		return fmt.Errorf("serve: creating trace dir: %w", err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec); err != nil {
		return fmt.Errorf("serve: encoding trace: %w", err)
	}
	name := fmt.Sprintf("attempt-%d.json", attempt)
	if err := s.writeFileAtomic(filepath.Join(dir, name), buf.Bytes()); err != nil {
		return fmt.Errorf("serve: persisting trace: %w", err)
	}
	return nil
}

// latestTraceFile returns the newest attempt's persisted trace for a
// job, or "" when none exists.
func (s *Server) latestTraceFile(jobID string) string {
	entries, err := s.cfg.FS.ReadDir(s.traceDir(jobID))
	if err != nil {
		return ""
	}
	best, bestN := "", -1
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "attempt-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "attempt-"), ".json"))
		if err != nil {
			continue
		}
		if n > bestN {
			bestN, best = n, filepath.Join(s.traceDir(jobID), name)
		}
	}
	return best
}

// sanitizeTenant maps a tenant name onto the metric-name alphabet so it
// can label the per-tenant SLO series ("" shares the default bucket,
// mirroring the quota layer).
func sanitizeTenant(tenant string) string {
	if tenant == "" {
		return "default"
	}
	var b strings.Builder
	for _, r := range tenant {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// observeSLO records a finished job's per-tenant latency split — queue
// wait, run, total — as gauge-side histograms with the job's trace ID as
// exemplar, so a bad percentile on /metrics links straight to a
// persisted trace.
func (s *Server) observeSLO(j *job, queueWait, run time.Duration) {
	tenant := sanitizeTenant(j.req.Tenant)
	tid := traceIDFor(j.id)
	s.rec.ObserveGaugeEx("slo.queue_wait_us.tenant."+tenant, queueWait.Microseconds(), tid)
	s.rec.ObserveGaugeEx("slo.run_us.tenant."+tenant, run.Microseconds(), tid)
	s.rec.ObserveGaugeEx("slo.total_us.tenant."+tenant, (queueWait + run).Microseconds(), tid)
}

// publishCritPath runs the cross-rank critical-path analyzer over a
// successful job's winning attempt and publishes its gauges
// (critpath.comm_frac, critpath.slack_us.rank*) onto the server
// recorder. Analysis is observational: it reads the recorder, never
// mutates it.
func (s *Server) publishCritPath(rec *obs.Recorder) {
	if rec == nil || s.rec == nil {
		return
	}
	rep := critpath.Analyze(critpath.FromRecorder(rec), 0)
	if rep.WallUs <= 0 {
		return
	}
	critpath.PublishGauges(s.rec, rep)
}
