package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gbpolar/internal/fault"
	"gbpolar/internal/fault/fs"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
	"gbpolar/internal/supervise"
	"gbpolar/internal/surface"
	"gbpolar/internal/tune"
)

// Config configures a Server. The zero value plus DataDir is usable.
type Config struct {
	// DataDir is the job persistence root. Empty disables persistence
	// (jobs cannot survive a restart — fine for tests, wrong for gbd).
	DataDir string
	// QueueDepth bounds the admission queue (default 16). A full queue
	// rejects with 429 + Retry-After; it never grows.
	QueueDepth int
	// Workers is the number of concurrent supervised runs (default 1:
	// the simulated cluster is itself parallel, and one run at a time
	// keeps the checkpoint/IO story simple to reason about).
	Workers int
	// MaxAtoms caps the roster size of a request (default 20000).
	MaxAtoms int
	// MaxBodyBytes caps the request body (default 16 MiB).
	MaxBodyBytes int64
	// DefaultProcesses / DefaultThreads are the layout used when a
	// request does not pick one (defaults 4 and 1).
	DefaultProcesses int
	DefaultThreads   int
	// Retries is the supervised retry budget per job (default 2).
	Retries int
	// Machine is the perf model used to turn queued work into the
	// Retry-After seconds of a 429 (default Lonestar4, the paper's
	// Table I machine).
	Machine perf.Machine
	// MaxRetryAfterSec clamps the modeled Retry-After of every 429 to
	// [1, MaxRetryAfterSec] seconds (default 60): the model prices the
	// queued work, the clamp keeps a mis-modeled burst from telling
	// clients to go away for an hour.
	MaxRetryAfterSec int64
	// MemBudgetBytes caps the modeled resident bytes of admitted work
	// (running + queued), priced from the perf machine model's
	// replicated-data estimate: atoms × bytes-per-atom × processes. A
	// job that would exceed the headroom is first shrunk to the widest
	// process count that fits (degrade, not OOM), then rejected with
	// 429 memory_pressure; a job too large for the whole budget at P=1
	// is rejected 413. Default 1 GiB; negative disables the gate.
	MemBudgetBytes int64
	// FS is the filesystem all persistence (job.json, result.json,
	// checkpoints, traces) goes through; nil means the real disk
	// (fs.OS). The soak harness hands in a fault-injecting fs.FaultFS.
	FS fs.FS
	// Quota is the per-tenant admission quota (zero disables it).
	Quota QuotaConfig
	// ShedQueueDepth is the queue depth at which newly started jobs are
	// pre-shed onto the relax rung (ShedEpsFactor). 0 defaults to
	// QueueDepth/2; negative disables depth-based shedding. Jobs are
	// also shed when the previous run's health view reports lost or
	// straggling ranks — the cluster is struggling, so buy slack.
	ShedQueueDepth int
	// ShedEpsFactor is the pre-relaxation used when shedding (default
	// 1.5). The shed accuracy is priced into the response's ErrorBound
	// and the result is marked Degraded — shedding is visible, never
	// silent. In Accuracy terms the factor maps onto
	// gb.Accuracy.Relaxed(ShedEpsFactor) applied to the job's point
	// (tuned or default) — see supervise.Spec.StartEpsFactor.
	ShedEpsFactor float64
	// KeepCheckpoints is the per-config snapshot retention passed to
	// DirStore.Prune after a job completes (default 1).
	KeepCheckpoints int
	// Obs receives request-level counters and histograms. Nil is inert.
	Obs *obs.Recorder
	// Clock is the time source (default time.Now; injectable so quota
	// and deadline tests never sleep).
	Clock func() time.Time
	// PlanFor injects a fault plan per (job, attempt) — the chaos
	// tests' hook. Nil means no injection.
	PlanFor func(jobID string, attempt int) *fault.Plan
	// CheckpointDelay slows every checkpoint save (test hook: it widens
	// the phase-boundary window so a drain signal reliably lands while
	// a job is mid-run).
	CheckpointDelay time.Duration
}

func (c *Config) fillDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxAtoms <= 0 {
		c.MaxAtoms = 20000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.DefaultProcesses <= 0 {
		c.DefaultProcesses = 4
	}
	if c.DefaultThreads <= 0 {
		c.DefaultThreads = 1
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
	if c.Machine.OpsPerSecond <= 0 {
		c.Machine = perf.Lonestar4()
	}
	if c.ShedQueueDepth == 0 {
		c.ShedQueueDepth = c.QueueDepth / 2
		if c.ShedQueueDepth < 1 {
			c.ShedQueueDepth = 1
		}
	}
	if c.ShedEpsFactor <= 1 {
		c.ShedEpsFactor = 1.5
	}
	if c.KeepCheckpoints <= 0 {
		c.KeepCheckpoints = 1
	}
	if c.MaxRetryAfterSec <= 0 {
		c.MaxRetryAfterSec = 60
	}
	if c.MemBudgetBytes == 0 {
		c.MemBudgetBytes = 1 << 30
	}
	if c.FS == nil {
		c.FS = fs.OS
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// job is the in-memory state of one admitted job.
type job struct {
	id      string
	req     JobRequest
	mol     *molecule.Molecule
	resumed bool
	// estOps is the modeled interaction count charged to the queue at
	// admission and released at dequeue.
	estOps int64
	// memBytes is the modeled resident footprint charged against the
	// memory budget at admission and released when the job leaves the
	// server (terminal or interrupted).
	memBytes int64
	// runP, when nonzero, overrides the request's process count: the
	// memory gate shrank the layout to fit the budget headroom.
	runP int
	// enqueued is when the job entered the queue (deadline accounting).
	enqueued time.Time

	mu   sync.Mutex
	view JobView
}

func (j *job) setView(mutate func(v *JobView)) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	mutate(&j.view)
	return j.view
}

func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.view
}

// Server is the daemon core. Create with New, serve its Handler, stop
// with Drain.
type Server struct {
	cfg Config
	rec *obs.Recorder

	queue       chan *job
	queuedOps   atomic.Int64  // modeled ops waiting in the queue
	opsPerAtom  atomic.Uint64 // EWMA of measured ops/atom, as float bits
	memInflight atomic.Int64  // modeled bytes charged against MemBudgetBytes

	draining atomic.Bool
	runCtx   context.Context
	stop     context.CancelFunc
	wg       sync.WaitGroup

	quotas *quotas

	// unhealthy is set when the last run's health view reported lost or
	// straggling ranks; the next job then starts pre-shed.
	unhealthy atomic.Bool

	// resumed counts jobs re-queued from disk at startup (gbd's startup
	// log line reports it).
	resumed int

	mu   sync.Mutex
	jobs map[string]*job
	done map[string]*JobView // terminal views reloaded from disk
}

// New builds a Server: it scans DataDir, registers finished jobs'
// terminal views, and re-queues unfinished ones (each will resume from
// its newest checkpoint). Start launches the workers.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{
		cfg:  cfg,
		rec:  cfg.Obs,
		jobs: make(map[string]*job),
		done: make(map[string]*JobView),
	}
	s.runCtx, s.stop = context.WithCancel(context.Background())
	s.quotas = newQuotas(cfg.Quota, cfg.Clock)
	// Seed the cost model with a generic octree workload density; real
	// measurements take over after the first completed job.
	s.opsPerAtom.Store(math.Float64bits(2000))

	var finished []*JobView
	var unfinished []*jobRecord
	if cfg.DataDir != "" {
		var err error
		finished, unfinished, err = s.scanJobs()
		if err != nil {
			return nil, err
		}
	}
	// The queue must hold every resumed job plus the configured depth.
	s.queue = make(chan *job, cfg.QueueDepth+len(unfinished))
	for _, v := range finished {
		s.done[v.ID] = v
	}
	for _, recd := range unfinished {
		mol, err := buildMolecule(recd.Req.Molecule, s.cfg.MaxAtoms)
		if err != nil {
			// The persisted request no longer validates (limits may have
			// changed): finish it as a typed input error instead of
			// resurrecting it forever.
			s.finishInvalid(recd.ID, err)
			continue
		}
		j := &job{id: recd.ID, req: recd.Req, mol: mol, resumed: true,
			estOps: s.estimateOps(mol.NumAtoms()), enqueued: cfg.Clock(),
			view: JobView{ID: recd.ID, State: StateQueued, TraceID: traceIDFor(recd.ID)}}
		// Resumed jobs were admitted by a past incarnation: charge their
		// footprint but never reject them — a restart must not drop a
		// 202-acknowledged job because the budget shrank.
		s.chargeMem(j, s.estimateBytes(mol.NumAtoms(), s.jobProcesses(&j.req)))
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		s.queuedOps.Add(j.estOps)
		s.queue <- j
		s.resumed++
		s.count("serve.jobs.resumed", 1)
	}
	return s, nil
}

// Start launches the worker goroutines. It is separate from New so
// tests can stage the queue before anything runs.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker()
		}()
	}
}

// Drain gracefully stops the server: admission closes (new POSTs get a
// typed 503), the run context is canceled — each in-flight job stops at
// its next phase boundary with its checkpoint durable — and Drain
// returns when every worker has exited. Jobs still queued or
// interrupted keep their job.json and no result.json, so the next New
// re-queues them.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.stop()
	//lint:ignore ctxflow blocking until workers exit is Drain's contract; stop() just canceled runCtx, so every worker unblocks and Wait terminates
	s.wg.Wait()
}

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueDepth reports how many jobs are waiting in the admission queue
// right now (gbd's structured log lines report it at startup and drain).
func (s *Server) QueueDepth() int { return len(s.queue) }

// ResumedJobs reports how many unfinished jobs New re-queued from disk.
func (s *Server) ResumedJobs() int { return s.resumed }

// Ready is the readiness probe for obs.Server.SetReadySource: false
// once draining (liveness stays true — the process is still
// checkpointing, don't kill it).
func (s *Server) Ready() (bool, string) {
	if s.draining.Load() {
		return false, "draining: admission closed, in-flight jobs checkpointing"
	}
	return true, ""
}

func (s *Server) count(name string, delta int64) {
	s.rec.Count(name, delta)
}

// worker pulls jobs until drain. A canceled context wins over more
// queued work: queued jobs are durable and belong to the next process.
func (s *Server) worker() {
	for {
		select {
		case <-s.runCtx.Done():
			return
		default:
		}
		select {
		case <-s.runCtx.Done():
			return
		case j := <-s.queue:
			s.queuedOps.Add(-j.estOps)
			s.runJob(j)
		}
	}
}

// seedOpsPerAtom is the generic octree workload density the cost model
// starts from (and falls back to if the EWMA is ever driven to a
// non-positive or NaN state); real measurements take over after the
// first completed job.
const seedOpsPerAtom = 2000

// estimateOps models a job's interaction count from the measured
// ops-per-atom EWMA. It deliberately overestimates small molecules
// rather than underestimating large ones: Retry-After built on it errs
// toward clients backing off slightly long.
func (s *Server) estimateOps(atoms int) int64 {
	perAtom := math.Float64frombits(s.opsPerAtom.Load())
	if math.IsNaN(perAtom) || perAtom <= 0 {
		perAtom = seedOpsPerAtom
	}
	return int64(perAtom * float64(atoms))
}

// estimateBytes models a job's peak resident footprint from the perf
// machine model: the paper's replicated-data layout holds the full
// atom + quadrature data on every process, so the bytes the machine
// model prices for one rank are multiplied by the process count.
func (s *Server) estimateBytes(atoms, procs int) int64 {
	if procs < 1 {
		procs = 1
	}
	return perf.EstimateDataBytes(atoms, 60*atoms) * int64(procs)
}

// jobProcesses resolves a request's effective process count.
func (s *Server) jobProcesses(req *JobRequest) int {
	if req.Processes > 0 {
		return req.Processes
	}
	return s.cfg.DefaultProcesses
}

// chargeMem records a job's modeled footprint against the budget (and
// the storage.bytes_inflight gauge); releaseMem undoes it exactly once.
func (s *Server) chargeMem(j *job, bytes int64) {
	j.memBytes = bytes
	s.memInflight.Add(bytes)
	s.rec.GaugeAdd("storage.bytes_inflight", bytes)
}

func (s *Server) releaseMem(j *job) {
	if j.memBytes == 0 {
		return
	}
	s.memInflight.Add(-j.memBytes)
	s.rec.GaugeAdd("storage.bytes_inflight", -j.memBytes)
	j.memBytes = 0
}

// learnOps folds a completed job's measured ops into the EWMA.
func (s *Server) learnOps(atoms int, perCore []int64) {
	if atoms <= 0 {
		return
	}
	total := int64(0)
	for _, o := range perCore {
		total += o
	}
	if total <= 0 {
		return
	}
	measured := float64(total) / float64(atoms)
	for {
		oldBits := s.opsPerAtom.Load()
		old := math.Float64frombits(oldBits)
		next := 0.7*old + 0.3*measured
		if s.opsPerAtom.CompareAndSwap(oldBits, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfter turns the modeled cost of the queued work into whole
// seconds for a 429's Retry-After, clamped to [1, MaxRetryAfterSec].
// The lower clamp also absorbs every degenerate model state — an empty
// queue, a cold or poisoned EWMA driving queuedOps to zero or negative,
// a zero-rate machine config — so the header is always a sane positive
// number of seconds.
func (s *Server) retryAfter() int64 {
	cores := float64(s.cfg.DefaultProcesses * s.cfg.DefaultThreads)
	secs := 0.0
	if rate := s.cfg.Machine.OpsPerSecond * cores; rate > 0 {
		secs = float64(s.queuedOps.Load()) / rate
	}
	if math.IsNaN(secs) || secs < 1 {
		return 1
	}
	if secs > float64(s.cfg.MaxRetryAfterSec) {
		return s.cfg.MaxRetryAfterSec
	}
	return int64(math.Ceil(secs))
}

// Admission errors, distinguished by sentinel so the HTTP layer can map
// them without string matching.
var (
	errDraining   = errors.New("serve: draining")
	errQueueFull  = errors.New("serve: queue full")
	errOverQuota  = errors.New("serve: over quota")
	errOverMemory = errors.New("serve: over memory budget")
	errTooLarge   = errors.New("serve: job exceeds memory budget at any layout")
	errPersistJob = errors.New("serve: persisting job")
)

// admitMemory runs the memory-budget gate for a validated request:
// charge the modeled footprint if it fits, shrink the process count to
// the widest layout that does (degrade, not OOM — the shrink is visible
// in serve.jobs.memshrunk and in the job's layout), or reject. It
// returns the effective process-count override (0: run as requested).
func (s *Server) admitMemory(j *job, atoms, reqP int) (runP int, err error) {
	budget := s.cfg.MemBudgetBytes
	if budget <= 0 {
		return 0, nil
	}
	if s.estimateBytes(atoms, 1) > budget {
		// No layout of this molecule ever fits: a 429 would invite a
		// retry that can never succeed, so this one is permanent (413).
		s.count("serve.rejected.toolarge", 1)
		return 0, errTooLarge
	}
	headroom := budget - s.memInflight.Load()
	if need := s.estimateBytes(atoms, reqP); need <= headroom {
		s.chargeMem(j, need)
		return 0, nil
	}
	p := reqP
	for p > 1 && s.estimateBytes(atoms, p) > headroom {
		p--
	}
	if s.estimateBytes(atoms, p) > headroom {
		s.count("serve.rejected.memory", 1)
		return 0, errOverMemory
	}
	s.chargeMem(j, s.estimateBytes(atoms, p))
	s.count("serve.jobs.memshrunk", 1)
	return p, nil
}

// admit validates, persists, and enqueues a request. It returns the
// job, or one of the sentinel admission errors (with retryAfter
// seconds for the 429s), or a molecule.ErrInvalidInput-wrapping error.
func (s *Server) admit(req *JobRequest) (j *job, retryAfterSec int64, err error) {
	s.count("serve.requests", 1)
	if s.draining.Load() {
		s.count("serve.rejected.draining", 1)
		return nil, 0, errDraining
	}
	if ok, wait := s.quotas.take(req.Tenant); !ok {
		s.count("serve.rejected.quota", 1)
		return nil, int64(math.Ceil(wait.Seconds())), errOverQuota
	}
	mol, err := buildMolecule(req.Molecule, s.cfg.MaxAtoms)
	if err != nil {
		s.count("serve.rejected.invalid", 1)
		return nil, 0, err
	}
	// Bound the queue and the memory budget BEFORE persisting: a
	// rejected request leaves no trace on disk.
	if len(s.queue) >= s.cfg.QueueDepth {
		s.count("serve.rejected.overload", 1)
		return nil, s.retryAfter(), errQueueFull
	}
	j = &job{req: *req, mol: mol,
		estOps: s.estimateOps(mol.NumAtoms()), enqueued: s.cfg.Clock()}
	runP, err := s.admitMemory(j, mol.NumAtoms(), s.jobProcesses(req))
	if err != nil {
		return nil, s.retryAfter(), err
	}
	j.runP = runP
	id, err := newJobID()
	if err != nil {
		s.releaseMem(j)
		return nil, 0, fmt.Errorf("%w: %w", errPersistJob, err)
	}
	j.id = id
	j.view = JobView{ID: id, State: StateQueued, TraceID: traceIDFor(id)}
	if s.cfg.DataDir != "" {
		// The 202 ack rides on this write being durable: persistJob goes
		// through the full temp+write+fsync+rename discipline, and a
		// failure here fails the admission — the client is never told
		// "accepted" on the strength of a page cache.
		if err := s.persistJob(id, req); err != nil {
			s.releaseMem(j)
			return nil, 0, fmt.Errorf("%w: %w", errPersistJob, err)
		}
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.mu.Unlock()
	select {
	case s.queue <- j:
	default:
		// Lost the race for the last slot; withdraw the job.
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.releaseMem(j)
		s.count("serve.rejected.overload", 1)
		return nil, s.retryAfter(), errQueueFull
	}
	s.queuedOps.Add(j.estOps)
	s.rec.Gauge("serve.queue.depth", int64(len(s.queue)))
	s.count("serve.admitted", 1)
	return j, 0, nil
}

// lookup returns a job's current view.
func (s *Server) lookup(id string) (JobView, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	v, done := s.done[id]
	s.mu.Unlock()
	if j != nil {
		return j.snapshot(), true
	}
	if done {
		return *v, true
	}
	return JobView{}, false
}

// finishInvalid records a terminal typed-input-error view for a job
// that never got to run (used for resumed jobs that no longer
// validate).
func (s *Server) finishInvalid(id string, err error) {
	view := &JobView{ID: id, State: StateFailed, TraceID: traceIDFor(id),
		Error: &ErrorDoc{Code: CodeInvalidInput, Message: err.Error()}}
	if s.cfg.DataDir != "" {
		if perr := s.persistResult(id, view); perr != nil {
			s.count("serve.persist_errors", 1)
		}
	}
	s.mu.Lock()
	s.done[id] = view
	s.mu.Unlock()
}

// delaySink widens the checkpoint window (see Config.CheckpointDelay).
type delaySink struct {
	supervise.Store
	d time.Duration
}

func (d delaySink) Save(phase gb.CheckpointPhase, encoded []byte) error {
	time.Sleep(d.d)
	return d.Store.Save(phase, encoded)
}

// runJob executes one job through the supervised ladder and records its
// terminal view. Every exit is one of: done (possibly Degraded with a
// bound), failed with a typed error, or interrupted by drain with a
// durable checkpoint.
func (s *Server) runJob(j *job) {
	j.setView(func(v *JobView) { v.State = StateRunning })
	start := s.cfg.Clock()
	queueWait := start.Sub(j.enqueued)

	deadline := time.Duration(j.req.DeadlineMS) * time.Millisecond
	if deadline > 0 {
		if queueWait >= deadline {
			s.finishJob(j, nil, &ErrorDoc{Code: CodeDeadlineExceeded,
				Message: fmt.Sprintf("deadline of %v expired after %v in queue", deadline, queueWait.Round(time.Millisecond))})
			s.observeSLO(j, queueWait, 0)
			return
		}
		deadline -= queueWait
	}

	// Overload-aware shedding: under queue pressure, or when the last
	// run's health view says ranks were lost or straggling, start on
	// the relax rung. The job completes sooner at priced accuracy
	// instead of competing at full cost.
	shed := false
	startEps := 0.0
	if (s.cfg.ShedQueueDepth > 0 && len(s.queue) >= s.cfg.ShedQueueDepth) || s.unhealthy.Load() {
		shed = true
		startEps = s.cfg.ShedEpsFactor
		s.count("serve.jobs.shed", 1)
	}

	out, sel, runErr := s.superviseJob(j, deadline, startEps)

	if runErr != nil {
		if errors.Is(runErr, supervise.ErrCanceled) {
			// Drain won: the newest checkpoint is durable, job.json is
			// still there, result.json is not — the restarted daemon
			// re-queues this job and resumes bitwise-identically. The
			// interrupted attempt's trace was already force-closed and
			// persisted by the trace sink.
			j.setView(func(v *JobView) { v.State = StateInterrupted })
			s.releaseMem(j)
			s.count("serve.jobs.interrupted", 1)
			return
		}
		s.finishJob(j, nil, &ErrorDoc{Code: CodeInternal, Message: runErr.Error()})
		s.observeSLO(j, queueWait, s.cfg.Clock().Sub(start))
		return
	}

	res := out.Result
	doc := &ResultDoc{
		Epol:            res.Epol,
		EpolBits:        epolBits(res.Epol),
		BornCRC32:       bornCRCHex(res.Born),
		Atoms:           j.mol.NumAtoms(),
		Degraded:        out.Degraded,
		ErrorBound:      res.ErrorBound,
		Rung:            out.Rung.String(),
		EpsFactor:       out.EpsFactor,
		Attempts:        len(out.Attempts),
		Shed:            shed,
		Resumed:         j.resumed,
		ShrunkProcesses: j.runP,
	}
	if sel != nil {
		// The outcome's point reflects any supervisor shedding, so the
		// envelope reports the accuracy the job actually ran at; predicted
		// error follows the final point (a shed step's prediction is its
		// ladder RelError, already priced into error_bound).
		acc := out.Accuracy
		pred := sel.Point.PredictedError
		if out.RelError > 0 {
			pred = out.RelError * math.Abs(res.Epol)
		}
		doc.Accuracy = &AccuracyDoc{
			EpsBorn: acc.EpsBorn, EpsEpol: acc.EpsEpol, BinWidth: acc.BinWidth,
			QuadOrder: acc.QuadOrder, Order: acc.Order,
			TargetErrorKcal:    j.req.TargetErrorKcal,
			PredictedErrorKcal: pred,
		}
	}
	s.learnOps(doc.Atoms, res.PerCoreOps)
	if hv, ok := out.Recorder.Health(); ok {
		s.unhealthy.Store(len(hv.Lost) > 0 || len(hv.Straggling) > 0)
	}
	s.finishJob(j, doc, nil)
	if out.Degraded {
		s.count("serve.jobs.degraded", 1)
	}
	runDur := s.cfg.Clock().Sub(start)
	s.observeSLO(j, queueWait, runDur)
	s.publishCritPath(out.Recorder)
	s.rec.ObserveGauge("serve.job.wall_us", runDur.Microseconds())
}

// superviseJob builds the system and runs the ladder. Requests with a
// target error first go through the tuner: the job runs at the cheapest
// admitted accuracy point, and the supervisor's relax rung steps down
// the tuner's frontier (selection returned for the result envelope).
func (s *Server) superviseJob(j *job, deadline time.Duration, startEps float64) (*supervise.Outcome, *tune.Selection, error) {
	var (
		sys    *gb.System
		sel    *tune.Selection
		ladder []supervise.RelaxStep
	)
	if j.req.TargetErrorKcal > 0 {
		var err error
		sel, err = tune.Select(j.mol, j.req.TargetErrorKcal, tune.Options{Obs: s.rec})
		if err != nil {
			return nil, nil, fmt.Errorf("tuning accuracy: %w", err)
		}
		sys = sel.System
		for _, p := range sel.Ladder {
			ladder = append(ladder, supervise.RelaxStep{Accuracy: p.Acc, RelError: p.PredictedRelError})
		}
	} else {
		surf, err := surface.Build(j.mol, surface.DefaultConfig())
		if err != nil {
			return nil, nil, fmt.Errorf("building surface: %w", err)
		}
		sys, err = gb.NewSystem(j.mol, surf, gb.DefaultParams())
		if err != nil {
			return nil, nil, fmt.Errorf("building system: %w", err)
		}
	}
	P := s.jobProcesses(&j.req)
	if j.runP > 0 {
		// The memory gate shrank the layout at admission; honor it.
		P = j.runP
	}
	threads := j.req.Threads
	if threads <= 0 {
		threads = s.cfg.DefaultThreads
	}
	var store supervise.Store
	if s.cfg.DataDir != "" {
		store = &supervise.DirStore{Dir: s.ckptDir(j.id), FS: s.cfg.FS, Obs: s.rec}
	} else {
		store = supervise.NewMemStore()
	}
	if s.cfg.CheckpointDelay > 0 {
		store = delaySink{Store: store, d: s.cfg.CheckpointDelay}
	}
	var planFn func(int) *fault.Plan
	if s.cfg.PlanFor != nil {
		id := j.id
		planFn = func(attempt int) *fault.Plan { return s.cfg.PlanFor(id, attempt) }
	}
	// Every attempt's trace is persisted next to the job's checkpoints —
	// including failed and drain-canceled attempts, whose traces are the
	// ones a post-mortem needs most.
	var sink func(attempt int, rec *obs.Recorder)
	if s.cfg.DataDir != "" {
		id := j.id
		sink = func(attempt int, rec *obs.Recorder) {
			if err := s.persistAttemptTrace(id, attempt, rec); err != nil {
				s.count("serve.trace_persist_errors", 1)
			}
		}
	}
	out, err := supervise.Run(sys, supervise.Spec{
		Processes:         P,
		ThreadsPerProcess: threads,
		Plan:              planFn,
		Deadline:          deadline,
		Retries:           s.cfg.Retries,
		Seed:              j.req.Seed,
		Store:             store,
		Obs:               s.rec,
		Trace:             s.traceFor(j),
		TraceSink:         sink,
		Clock:             s.cfg.Clock,
		Context:           s.runCtx,
		AccuracyLadder:    ladder,
		StartEpsFactor:    startEps,
	})
	return out, sel, err
}

// finishJob records a terminal view (exactly one of doc/errDoc is
// non-nil), persists it, prunes the job's checkpoints, and moves the
// job to the done set.
func (s *Server) finishJob(j *job, doc *ResultDoc, errDoc *ErrorDoc) {
	var view JobView
	if errDoc != nil {
		view = j.setView(func(v *JobView) {
			v.State = StateFailed
			v.Error = errDoc
		})
		s.count("serve.jobs.failed", 1)
	} else {
		view = j.setView(func(v *JobView) {
			v.State = StateDone
			v.Result = doc
		})
		s.count("serve.jobs.done", 1)
	}
	if s.cfg.DataDir != "" {
		if err := s.persistResult(j.id, &view); err != nil {
			s.count("serve.persist_errors", 1)
		}
		ds := &supervise.DirStore{Dir: s.ckptDir(j.id), FS: s.cfg.FS, Obs: s.rec}
		if _, err := ds.Prune(s.cfg.KeepCheckpoints); err != nil {
			s.count("serve.prune_errors", 1)
		}
	}
	s.releaseMem(j)
	s.mu.Lock()
	s.done[j.id] = &view
	delete(s.jobs, j.id)
	s.mu.Unlock()
}

// bornCRC fingerprints the Born radii bit-exactly: IEEE CRC-32 over the
// little-endian bytes of each float64 in atom order.
func bornCRC(born []float64) uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	for _, b := range born {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(b))
		h.Write(buf[:])
	}
	return h.Sum32()
}

// bornCRCHex is bornCRC rendered the way ResultDoc carries it.
func bornCRCHex(born []float64) string { return fmt.Sprintf("%08x", bornCRC(born)) }
