package simmpi

import (
	"errors"
	"testing"
	"time"

	"gbpolar/internal/fault"
	"gbpolar/internal/obs"
)

// TestCollectiveCorruptionRetransmits: one corrupted contribution to an
// Allreduce must be detected by every rank, retransmitted, and the final
// value must be exactly the clean sum — detection plus bounded recovery,
// never silent damage.
func TestCollectiveCorruptionRetransmits(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Corrupt, Rank: 1, AtOp: 0, Count: 1},
	}}
	rec := obs.NewRecorder(nil)
	stats, err := RunPlanObs(3, plan, rec, func(c *Comm) error {
		got, err := c.Allreduce([]float64{float64(c.Rank() + 1)}, Sum)
		if err != nil {
			return err
		}
		if got[0] != 6 {
			t.Errorf("rank %d: corrupted allreduce = %v, want 6", c.Rank(), got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corruptions < 1 {
		t.Errorf("Corruptions = %d, want at least 1", stats.Corruptions)
	}
	if stats.Retransmits < 1 {
		t.Errorf("Retransmits = %d, want at least 1", stats.Retransmits)
	}
	counters := rec.Counters()
	if counters["fault.corruptions.detected"] < 1 {
		t.Errorf("no detection counted: %v", counters)
	}
	if counters["comm.retransmits"] < 1 {
		t.Errorf("no retransmit counted: %v", counters)
	}
}

// TestPersistentCorruptionEscalates: when every retransmit round is
// corrupted too, the collective must give up with ErrCorrupt on every
// rank — in lockstep, not by deadlock or by delivering damaged floats.
func TestPersistentCorruptionEscalates(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Corrupt, Rank: 1, AtOp: 0, Count: 64},
	}}
	_, err := RunPlan(3, plan, func(c *Comm) error {
		_, err := c.Allreduce([]float64{1}, Sum)
		if err == nil {
			t.Errorf("rank %d: persistently corrupted allreduce succeeded", c.Rank())
			return nil
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("rank %d: err = %v, want ErrCorrupt", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPointToPointCorruptionDetected: a corrupted Send is consumed by the
// receiver as ErrCorrupt, and the sender's checksum always covers the
// authentic data.
func TestPointToPointCorruptionDetected(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Corrupt, Rank: 0, AtOp: 0, Count: 1},
	}}
	stats, err := RunPlan(2, plan, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, []float64{1, 2, 3})
		}
		_, err := c.Recv(0)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("Recv err = %v, want ErrCorrupt", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corruptions != 1 {
		t.Errorf("Corruptions = %d, want 1", stats.Corruptions)
	}
}

// TestTryRecvDiscardsCorrupt: the polling primitive reports a damaged
// message as absent rather than delivering it.
func TestTryRecvDiscardsCorrupt(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Corrupt, Rank: 0, AtOp: 0, Count: 1},
	}}
	_, err := RunPlan(2, plan, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, []float64{9}); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if data, ok := c.TryRecv(0); ok {
			t.Errorf("TryRecv delivered corrupted data %v", data)
		}
		// The damaged message was consumed, not left to poison later polls.
		if _, ok := c.TryRecv(0); ok {
			t.Error("corrupt message still queued")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCleanPlanChecksumNeutral: an injector with no corrupt events pays
// the checksum cost but must behave identically — no corruption, no
// retransmit, values exact.
func TestCleanPlanChecksumNeutral(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Delay, Rank: 0, To: -1, AtOp: 50, Count: 1, Dur: time.Millisecond},
	}}
	stats, err := RunPlan(4, plan, func(c *Comm) error {
		got, err := c.Allreduce([]float64{float64(c.Rank())}, Sum)
		if err != nil {
			return err
		}
		if got[0] != 6 {
			t.Errorf("allreduce = %v", got[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corruptions != 0 || stats.Retransmits != 0 {
		t.Errorf("clean plan counted corruption: %+v", stats)
	}
}

// TestRecvTimeoutBackoffUnderDropStraggleChaos is the satellite scenario:
// a sender whose messages are dropped AND who straggles, a receiver
// polling with RecvTimeout, and a bounded retry loop with modeled
// exponential backoff between attempts. The message must get through,
// the retries and backoff must land in Stats, and the straggler must be
// visible in the health view.
func TestRecvTimeoutBackoffUnderDropStraggleChaos(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Drop, Rank: 1, To: 0, AtOp: 0, Count: 2},
		{Kind: fault.Straggle, Rank: 1, AtOp: 0, Count: 4, Dur: 200 * time.Microsecond},
	}}
	const base = 50 * time.Microsecond
	wantBackoff := time.Duration(0)
	for i := 0; i < 2; i++ {
		wantBackoff += base << uint(i)
	}
	stats, err := RunPlan(2, plan, func(c *Comm) error {
		if c.Rank() == 1 {
			for attempt := 0; ; attempt++ {
				if attempt > 5 {
					t.Error("sender exhausted its retry budget")
					return nil
				}
				err := c.Send(0, []float64{42})
				if err == nil {
					return nil
				}
				if !errors.Is(err, ErrDropped) {
					return err
				}
				c.RecordRetry(base << uint(attempt))
			}
		}
		// Receiver: each short deadline may expire while the sender's
		// attempts are being dropped; keep polling a bounded number of
		// times.
		for poll := 0; poll < 200; poll++ {
			data, err := c.RecvTimeout(1, 2*time.Millisecond)
			if errors.Is(err, ErrTimeout) {
				continue
			}
			if err != nil {
				return err
			}
			if len(data) != 1 || data[0] != 42 {
				t.Errorf("received %v, want [42]", data)
			}
			if h := c.Health(); len(h.Straggling) != 1 || h.Straggling[0] != 1 {
				t.Errorf("Straggling = %v, want [1]", h.Straggling)
			}
			return nil
		}
		t.Error("receiver never got the message")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (the two dropped attempts)", stats.Retries)
	}
	if stats.BackoffNanos != int64(wantBackoff) {
		t.Errorf("BackoffNanos = %d, want %d", stats.BackoffNanos, int64(wantBackoff))
	}
	if stats.Drops != 2 {
		t.Errorf("Drops = %d, want 2", stats.Drops)
	}
}

// TestRecvTimeoutExhaustionUnderPersistentDrop: when every send attempt
// is dropped and the sender's budget runs out, the receiver's RecvTimeout
// must surface ErrTimeout — a clean, typed failure, not a hang.
func TestRecvTimeoutExhaustionUnderPersistentDrop(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Drop, Rank: 1, To: 0, AtOp: 0, Count: 1000},
		{Kind: fault.Straggle, Rank: 1, AtOp: 0, Count: 8, Dur: 100 * time.Microsecond},
	}}
	_, err := RunPlan(2, plan, func(c *Comm) error {
		if c.Rank() == 1 {
			for attempt := 0; attempt < 4; attempt++ {
				if err := c.Send(0, []float64{1}); err == nil {
					t.Error("send succeeded under a persistent drop window")
					return nil
				} else if !errors.Is(err, ErrDropped) {
					return err
				}
				c.RecordRetry(50 * time.Microsecond << uint(attempt))
			}
			return c.Barrier() // give up; meet the receiver at the barrier
		}
		_, err := c.RecvTimeout(1, 5*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("RecvTimeout err = %v, want ErrTimeout", err)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
