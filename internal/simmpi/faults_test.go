package simmpi

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gbpolar/internal/fault"
)

func TestRunPlanEmptyPlanMatchesRun(t *testing.T) {
	stats, err := RunPlan(3, &fault.Plan{}, func(c *Comm) error {
		_, err := c.Allreduce([]float64{1}, Sum)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.LostRanks) != 0 || stats.Drops != 0 {
		t.Errorf("empty plan produced fault traffic: %+v", stats)
	}
}

func TestInjectedCrashSurvivorsComplete(t *testing.T) {
	// Rank 1 dies at its first op; the survivors' collectives must release
	// and combine only live contributions, and Run must report the loss in
	// stats — not as an error (recovery policy belongs to the caller).
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 1, AtOp: 0}}}
	var sum atomic.Value
	stats, err := RunPlan(4, plan, func(c *Comm) error {
		got, err := c.Allreduce([]float64{float64(c.Rank() + 1)}, Sum)
		if err != nil {
			return err
		}
		sum.Store(got[0])
		if err := c.Barrier(); err != nil {
			return err
		}
		lost := c.Lost()
		if len(lost) != 1 || lost[0] != 1 {
			t.Errorf("rank %d: Lost = %v", c.Rank(), lost)
		}
		if c.Alive(1) {
			t.Error("rank 1 reported alive after crash")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.LostRanks) != 1 || stats.LostRanks[0] != 1 {
		t.Errorf("LostRanks = %v", stats.LostRanks)
	}
	// 1 + 3 + 4 (rank 1's +2 is missing).
	if got := sum.Load().(float64); got != 8 {
		t.Errorf("survivor Allreduce = %v, want 8", got)
	}
}

func TestInjectedDropReturnsErrDropped(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Drop, Rank: 0, To: 1, AtOp: 0, Count: 1},
	}}
	stats, err := RunPlan(2, plan, func(c *Comm) error {
		if c.Rank() == 0 {
			err := c.Send(1, []float64{1, 2})
			if !errors.Is(err, ErrDropped) {
				t.Errorf("first send err = %v, want ErrDropped", err)
			}
			c.RecordRetry(100 * time.Microsecond)
			if err := c.Send(1, []float64{1, 2}); err != nil {
				return err
			}
		} else {
			m, err := c.Recv(0)
			if err != nil {
				return err
			}
			if len(m) != 2 {
				t.Errorf("Recv = %v", m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Drops != 1 || stats.Retries != 1 || stats.BackoffNanos != 100_000 {
		t.Errorf("fault stats = %+v", stats)
	}
	// Both the dropped attempt and the retry pay wire cost.
	if stats.P2PMessages != 2 || stats.P2PBytes != 32 {
		t.Errorf("p2p stats = %+v", stats)
	}
}

func TestRecvFromCrashedRank(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 1, AtOp: 0}}}
	_, err := RunPlan(2, plan, func(c *Comm) error {
		if c.Rank() == 1 {
			return c.Barrier() // crashes at the fault point before waiting
		}
		_, err := c.Recv(1)
		var lost *RankLostError
		if !errors.As(err, &lost) || lost.Ranks[0] != 1 {
			t.Errorf("Recv err = %v, want RankLostError{1}", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToCrashedRank(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 1, AtOp: 0}}}
	_, err := RunPlan(2, plan, func(c *Comm) error {
		if c.Rank() == 1 {
			return c.Barrier()
		}
		// Wait for the crash to land, then observe it on Send.
		for c.Alive(1) {
			time.Sleep(50 * time.Microsecond)
		}
		err := c.Send(1, []float64{1})
		var lost *RankLostError
		if !errors.As(err, &lost) {
			t.Errorf("Send err = %v, want RankLostError", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInjectedDelayAndStraggleRecorded(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Delay, Rank: 0, To: -1, AtOp: 0, Count: 1, Dur: 3 * time.Millisecond},
		{Kind: fault.Straggle, Rank: 1, AtOp: 0, Count: 2, Dur: 5 * time.Millisecond},
	}}
	stats, err := RunPlan(2, plan, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, []float64{1}); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(0); err != nil {
				return err
			}
			if err := c.Tick(); err != nil {
				return err
			}
			h := c.Health()
			if len(h.Straggling) != 1 || h.Straggling[0] != 1 {
				t.Errorf("Straggling = %v", h.Straggling)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DelayNanos != 3e6 {
		t.Errorf("DelayNanos = %d, want 3e6 (full modeled duration)", stats.DelayNanos)
	}
	if stats.StragglerNanos != 10e6 {
		t.Errorf("StragglerNanos = %d, want 10e6", stats.StragglerNanos)
	}
}

func TestCrashDuringBarrierWaitReleasesSurvivors(t *testing.T) {
	// Rank 2's crash strikes at its second op — after it already entered
	// the first barrier. The survivors' *next* barrier must still release
	// (live count shrinks under them).
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 2, AtOp: 1}}}
	_, err := RunPlan(3, plan, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil { // rank 2 dies at this fault point
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhaseMarkersSurviveCrash(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 1, AtOp: 2}}}
	_, err := RunPlan(3, plan, func(c *Comm) error {
		c.Post(7)
		if err := c.Barrier(); err != nil { // op 0
			return err
		}
		if err := c.Barrier(); err != nil { // op 1
			return err
		}
		if err := c.Barrier(); err != nil { // op 2: rank 1 dies here
			return err
		}
		if got := c.PhaseOf(1); got != 7 {
			t.Errorf("PhaseOf(1) = %d, want frozen marker 7", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastDeadRoot(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 0, AtOp: 0}}}
	_, err := RunPlan(3, plan, func(c *Comm) error {
		_, err := c.Bcast(0, []float64{1})
		if c.Rank() != 0 {
			var lost *RankLostError
			if !errors.As(err, &lost) {
				t.Errorf("rank %d: Bcast err = %v, want RankLostError", c.Rank(), err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChaosPlanNoDeadlock(t *testing.T) {
	// Chaos schedules across many seeds: whatever the injected mix, every
	// run must terminate — survivors either finish or observe errors, never
	// hang. Run under -race this doubles as the collectives' data-race
	// check in the presence of deaths.
	for seed := int64(1); seed <= 8; seed++ {
		plan := fault.Chaos(seed, 6, 10)
		_, err := RunPlan(6, plan, func(c *Comm) error {
			for i := 0; i < 6; i++ {
				if _, err := c.Allreduce([]float64{1}, Sum); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
