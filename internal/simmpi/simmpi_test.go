package simmpi

import (
	"math"
	"sync/atomic"
	"testing"
)

// must unwraps a collective result inside rank functions: the happy-path
// tests treat any communication error as fatal. Curried so call sites can
// forward a (data, err) pair directly: must(t)(c.Allreduce(...)).
func must(t *testing.T) func(data []float64, err error) []float64 {
	return func(data []float64, err error) []float64 {
		t.Helper()
		if err != nil {
			t.Fatalf("collective failed: %v", err)
		}
		return data
	}
}

func TestRunAllRanksExecute(t *testing.T) {
	var count atomic.Int64
	stats, err := Run(8, func(c *Comm) error {
		count.Add(1)
		if c.Size() != 8 {
			t.Errorf("Size = %d", c.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("ranks run = %d", count.Load())
	}
	if stats.P2PMessages != 0 {
		t.Errorf("unexpected p2p traffic: %+v", stats)
	}
}

func TestRunInvalidSize(t *testing.T) {
	if _, err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestRunCapturesPanic(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestRunPropagatesError(t *testing.T) {
	want := "rank 2 gave up"
	_, err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return errInjected(want)
		}
		return nil
	})
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %q", err, want)
	}
}

type errInjected string

func (e errInjected) Error() string { return string(e) }

func TestSendRecv(t *testing.T) {
	stats, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, []float64{1, 2, 3})
		}
		got, err := c.Recv(0)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[0] != 1 || got[2] != 3 {
			t.Errorf("Recv = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.P2PMessages != 1 || stats.P2PBytes != 24 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSendCopiesData(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{42}
			if err := c.Send(1, buf); err != nil {
				return err
			}
			buf[0] = 0 // mutation after send must not affect the receiver
			return nil
		}
		got, err := c.Recv(0)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			t.Errorf("Recv = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const P = 16
	var phase atomic.Int64
	_, err := Run(P, func(c *Comm) error {
		phase.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		// After the barrier every rank must observe all P arrivals.
		if got := phase.Load(); got != P {
			t.Errorf("rank %d saw phase %d", c.Rank(), got)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	const P = 7
	stats, err := Run(P, func(c *Comm) error {
		data := []float64{float64(c.Rank()), 1}
		got := must(t)(c.Allreduce(data, Sum))
		wantFirst := float64(P * (P - 1) / 2)
		if got[0] != wantFirst || got[1] != P {
			t.Errorf("rank %d: Allreduce = %v", c.Rank(), got)
		}
		// Input must be unmodified.
		if data[0] != float64(c.Rank()) {
			t.Error("Allreduce modified input")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := stats.Collectives[KindAllreduce]; s.Calls != 1 || s.Bytes != 16 {
		t.Errorf("allreduce stats = %+v", s)
	}
}

func TestAllreduceMinMax(t *testing.T) {
	_, err := Run(5, func(c *Comm) error {
		v := []float64{float64(c.Rank())}
		if got := must(t)(c.Allreduce(v, Min)); got[0] != 0 {
			t.Errorf("Min = %v", got)
		}
		if got := must(t)(c.Allreduce(v, Max)); got[0] != 4 {
			t.Errorf("Max = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceDeterministicOrder(t *testing.T) {
	// Floating-point sums depend on order; the rank-ordered reduction must
	// give bit-identical results on every rank and across repeats.
	vals := []float64{1e-17, 1.0, -1e17, 1e17, 3.14}
	var first atomic.Value
	for trial := 0; trial < 3; trial++ {
		_, err := Run(5, func(c *Comm) error {
			got := must(t)(c.Allreduce([]float64{vals[c.Rank()]}, Sum))
			if prev := first.Load(); prev == nil {
				first.Store(got[0])
			} else if prev.(float64) != got[0] {
				t.Errorf("non-deterministic allreduce: %v vs %v", prev, got[0])
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceLengthMismatchError(t *testing.T) {
	// Satellite: a shape mismatch must surface as an error on every rank
	// (and through Run) instead of panicking the process.
	var sawErr atomic.Int64
	_, err := Run(3, func(c *Comm) error {
		data := []float64{1}
		if c.Rank() == 2 {
			data = []float64{1, 2}
		}
		_, err := c.Allreduce(data, Sum)
		if err != nil {
			sawErr.Add(1)
		}
		return err
	})
	if err == nil {
		t.Fatal("length mismatch not reported by Run")
	}
	if sawErr.Load() != 3 {
		t.Errorf("%d of 3 ranks observed the mismatch", sawErr.Load())
	}
}

func TestReduceOnlyRoot(t *testing.T) {
	_, err := Run(4, func(c *Comm) error {
		got := must(t)(c.Reduce(2, []float64{1}, Sum))
		if c.Rank() == 2 {
			if got == nil || got[0] != 4 {
				t.Errorf("root got %v", got)
			}
		} else if got != nil {
			t.Errorf("non-root rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(6, func(c *Comm) error {
		var data []float64
		if c.Rank() == 3 {
			data = []float64{9, 8, 7}
		}
		got := must(t)(c.Bcast(3, data))
		if len(got) != 3 || got[0] != 9 || got[2] != 7 {
			t.Errorf("rank %d: Bcast = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	_, err := Run(4, func(c *Comm) error {
		// Rank r contributes r+1 copies of float64(r).
		data := make([]float64, c.Rank()+1)
		for i := range data {
			data[i] = float64(c.Rank())
		}
		got := must(t)(c.Allgatherv(data))
		if len(got) != 1+2+3+4 {
			t.Fatalf("rank %d: len = %d", c.Rank(), len(got))
		}
		idx := 0
		for r := 0; r < 4; r++ {
			for i := 0; i <= r; i++ {
				if got[idx] != float64(r) {
					t.Fatalf("rank %d: got[%d] = %v, want %d", c.Rank(), idx, got[idx], r)
				}
				idx++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		got := must(t)(c.Gather(0, []float64{float64(c.Rank() * 10)}))
		if c.Rank() == 0 {
			if len(got) != 3 || got[1] != 10 || got[2] != 20 {
				t.Errorf("Gather = %v", got)
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Many back-to-back collectives exercise barrier generation reuse.
	_, err := Run(5, func(c *Comm) error {
		acc := 0.0
		for i := 0; i < 50; i++ {
			got := must(t)(c.Allreduce([]float64{1}, Sum))
			acc += got[0]
		}
		if acc != 250 {
			t.Errorf("rank %d: acc = %v", c.Rank(), acc)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankWorld(t *testing.T) {
	_, err := Run(1, func(c *Comm) error {
		if got := must(t)(c.Allreduce([]float64{5}, Sum)); got[0] != 5 {
			t.Errorf("Allreduce = %v", got)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := must(t)(c.Allgatherv([]float64{1, 2})); len(got) != 2 {
			t.Errorf("Allgatherv = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargeWorld(t *testing.T) {
	// 144 ranks — the paper's 12 nodes × 12 cores configuration.
	const P = 144
	_, err := Run(P, func(c *Comm) error {
		got := must(t)(c.Allreduce([]float64{1}, Sum))
		if got[0] != P {
			t.Errorf("rank %d: %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpApply(t *testing.T) {
	dst := []float64{1, 5, -2}
	Sum.apply(dst, []float64{1, 1, 1})
	if dst[0] != 2 || dst[1] != 6 || dst[2] != -1 {
		t.Errorf("Sum = %v", dst)
	}
	Min.apply(dst, []float64{0, 10, math.Inf(-1)})
	if dst[0] != 0 || dst[1] != 6 || !math.IsInf(dst[2], -1) {
		t.Errorf("Min = %v", dst)
	}
	Max.apply(dst, []float64{100, -1, 0})
	if dst[0] != 100 || dst[1] != 6 || dst[2] != 0 {
		t.Errorf("Max = %v", dst)
	}
}

func TestTryRecv(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Phase 1: nothing can have been sent before the first
			// barrier — TryRecv must report empty without blocking.
			if _, ok := c.TryRecv(1); ok {
				t.Error("TryRecv returned a phantom message")
			}
			if err := c.Barrier(); err != nil { // rank 1 sends after this
				return err
			}
			if err := c.Barrier(); err != nil { // send completed before this
				return err
			}
			m, ok := c.TryRecv(1)
			if !ok || len(m) != 1 || m[0] != 42 {
				t.Errorf("TryRecv = %v, %v", m, ok)
			}
			// Mailbox drained again.
			if _, ok := c.TryRecv(1); ok {
				t.Error("TryRecv returned a second phantom")
			}
			return nil
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := c.Send(0, []float64{42}); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherTotalBytesRecorded(t *testing.T) {
	stats, err := Run(3, func(c *Comm) error {
		must(t)(c.Allgatherv(make([]float64, c.Rank()+1))) // 1+2+3 = 6 floats
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Collectives[KindAllgatherv].Bytes; got != 6*8 {
		t.Errorf("allgatherv bytes = %d, want 48 (total gathered vector)", got)
	}
}

// --- satellite edge cases -------------------------------------------------

func TestBarrierUnderPanickingRank(t *testing.T) {
	// A rank that panics must not deadlock peers blocked in Barrier: the
	// world aborts and the barrier returns the causal error.
	var released atomic.Int64
	_, err := Run(4, func(c *Comm) error {
		if c.Rank() == 3 {
			panic("rank 3 exploded")
		}
		err := c.Barrier()
		if err != nil {
			released.Add(1)
		}
		return err
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
	// Note: ranks 0-2 may have been released normally if rank 3's retire
	// happened after they all arrived — either way nobody deadlocked, which
	// is the property under test (the test completing at all proves it).
	_ = released.Load()
}

func TestBarrierUnderErroringRank(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return errInjected("early failure")
		}
		return c.Barrier()
	})
	if err == nil {
		t.Fatal("error not reported")
	}
}

func TestZeroLengthPayloads(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		if got := must(t)(c.Bcast(0, nil)); len(got) != 0 {
			t.Errorf("Bcast(nil) = %v", got)
		}
		got, err := c.Gather(1, nil)
		if err != nil {
			return err
		}
		if len(got) != 0 {
			t.Errorf("Gather(nil) = %v", got)
		}
		if got := must(t)(c.Allgatherv(nil)); len(got) != 0 {
			t.Errorf("Allgatherv(nil) = %v", got)
		}
		if got := must(t)(c.Allreduce([]float64{}, Sum)); len(got) != 0 {
			t.Errorf("Allreduce(empty) = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutExpires(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.RecvTimeout(1, 5e6) // 5ms, nothing is ever sent
			if err != ErrTimeout {
				t.Errorf("RecvTimeout err = %v, want ErrTimeout", err)
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutDeliversPending(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			if err := c.Send(0, []float64{7}); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		m, err := c.RecvTimeout(1, 1e9)
		if err != nil || len(m) != 1 || m[0] != 7 {
			t.Errorf("RecvTimeout = %v, %v", m, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutInvalidDeadline(t *testing.T) {
	_, err := Run(1, func(c *Comm) error {
		if _, err := c.RecvTimeout(0, 0); err == nil {
			t.Error("zero deadline accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendInvalidRank(t *testing.T) {
	_, err := Run(2, func(c *Comm) error {
		if err := c.Send(5, []float64{1}); err == nil {
			t.Error("Send to out-of-range rank accepted")
		}
		if _, err := c.Recv(-1); err == nil {
			t.Error("Recv from out-of-range rank accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHealthAllAlive(t *testing.T) {
	_, err := Run(3, func(c *Comm) error {
		h := c.Health()
		if len(h.Live) != 3 || len(h.Lost) != 0 || len(h.Straggling) != 0 {
			t.Errorf("Health = %+v", h)
		}
		if !c.Alive(2) || c.Alive(7) {
			t.Error("Alive misreports")
		}
		if c.LiveCount() != 3 {
			t.Errorf("LiveCount = %d", c.LiveCount())
		}
		// Hold every rank until all have sampled: a rank returning early
		// retires and would legitimately shrink the others' live view.
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEarlyReturnDoesNotDeadlockBarrier(t *testing.T) {
	// A rank returning nil early (normal completion) must not wedge peers
	// in a barrier: the live count shrinks and the barrier releases.
	_, err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return nil // leaves before the barrier
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
