package simmpi

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestRunAllRanksExecute(t *testing.T) {
	var count atomic.Int64
	stats, err := Run(8, func(c *Comm) {
		count.Add(1)
		if c.Size() != 8 {
			t.Errorf("Size = %d", c.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("ranks run = %d", count.Load())
	}
	if stats.P2PMessages != 0 {
		t.Errorf("unexpected p2p traffic: %+v", stats)
	}
}

func TestRunInvalidSize(t *testing.T) {
	if _, err := Run(0, func(c *Comm) {}); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestRunCapturesPanic(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestSendRecv(t *testing.T) {
	stats, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, []float64{1, 2, 3})
		} else {
			got := c.Recv(0)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("Recv = %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.P2PMessages != 1 || stats.P2PBytes != 24 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSendCopiesData(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, buf)
			buf[0] = 0 // mutation after send must not affect the receiver
		} else {
			if got := c.Recv(0); got[0] != 42 {
				t.Errorf("Recv = %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const P = 16
	var phase atomic.Int64
	_, err := Run(P, func(c *Comm) {
		phase.Add(1)
		c.Barrier()
		// After the barrier every rank must observe all P arrivals.
		if got := phase.Load(); got != P {
			t.Errorf("rank %d saw phase %d", c.Rank(), got)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	const P = 7
	stats, err := Run(P, func(c *Comm) {
		data := []float64{float64(c.Rank()), 1}
		got := c.Allreduce(data, Sum)
		wantFirst := float64(P * (P - 1) / 2)
		if got[0] != wantFirst || got[1] != P {
			t.Errorf("rank %d: Allreduce = %v", c.Rank(), got)
		}
		// Input must be unmodified.
		if data[0] != float64(c.Rank()) {
			t.Error("Allreduce modified input")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := stats.Collectives[KindAllreduce]; s.Calls != 1 || s.Bytes != 16 {
		t.Errorf("allreduce stats = %+v", s)
	}
}

func TestAllreduceMinMax(t *testing.T) {
	_, err := Run(5, func(c *Comm) {
		v := []float64{float64(c.Rank())}
		if got := c.Allreduce(v, Min); got[0] != 0 {
			t.Errorf("Min = %v", got)
		}
		if got := c.Allreduce(v, Max); got[0] != 4 {
			t.Errorf("Max = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceDeterministicOrder(t *testing.T) {
	// Floating-point sums depend on order; the rank-ordered reduction must
	// give bit-identical results on every rank and across repeats.
	vals := []float64{1e-17, 1.0, -1e17, 1e17, 3.14}
	var first atomic.Value
	for trial := 0; trial < 3; trial++ {
		_, err := Run(5, func(c *Comm) {
			got := c.Allreduce([]float64{vals[c.Rank()]}, Sum)
			if prev := first.Load(); prev == nil {
				first.Store(got[0])
			} else if prev.(float64) != got[0] {
				t.Errorf("non-deterministic allreduce: %v vs %v", prev, got[0])
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduceOnlyRoot(t *testing.T) {
	_, err := Run(4, func(c *Comm) {
		got := c.Reduce(2, []float64{1}, Sum)
		if c.Rank() == 2 {
			if got == nil || got[0] != 4 {
				t.Errorf("root got %v", got)
			}
		} else if got != nil {
			t.Errorf("non-root rank %d got %v", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(6, func(c *Comm) {
		var data []float64
		if c.Rank() == 3 {
			data = []float64{9, 8, 7}
		}
		got := c.Bcast(3, data)
		if len(got) != 3 || got[0] != 9 || got[2] != 7 {
			t.Errorf("rank %d: Bcast = %v", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	_, err := Run(4, func(c *Comm) {
		// Rank r contributes r+1 copies of float64(r).
		data := make([]float64, c.Rank()+1)
		for i := range data {
			data[i] = float64(c.Rank())
		}
		got := c.Allgatherv(data)
		if len(got) != 1+2+3+4 {
			t.Fatalf("rank %d: len = %d", c.Rank(), len(got))
		}
		idx := 0
		for r := 0; r < 4; r++ {
			for i := 0; i <= r; i++ {
				if got[idx] != float64(r) {
					t.Fatalf("rank %d: got[%d] = %v, want %d", c.Rank(), idx, got[idx], r)
				}
				idx++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	_, err := Run(3, func(c *Comm) {
		got := c.Gather(0, []float64{float64(c.Rank() * 10)})
		if c.Rank() == 0 {
			if len(got) != 3 || got[1] != 10 || got[2] != 20 {
				t.Errorf("Gather = %v", got)
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Many back-to-back collectives exercise barrier generation reuse.
	_, err := Run(5, func(c *Comm) {
		acc := 0.0
		for i := 0; i < 50; i++ {
			got := c.Allreduce([]float64{1}, Sum)
			acc += got[0]
		}
		if acc != 250 {
			t.Errorf("rank %d: acc = %v", c.Rank(), acc)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankWorld(t *testing.T) {
	_, err := Run(1, func(c *Comm) {
		if got := c.Allreduce([]float64{5}, Sum); got[0] != 5 {
			t.Errorf("Allreduce = %v", got)
		}
		c.Barrier()
		if got := c.Allgatherv([]float64{1, 2}); len(got) != 2 {
			t.Errorf("Allgatherv = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargeWorld(t *testing.T) {
	// 144 ranks — the paper's 12 nodes × 12 cores configuration.
	const P = 144
	_, err := Run(P, func(c *Comm) {
		got := c.Allreduce([]float64{1}, Sum)
		if got[0] != P {
			t.Errorf("rank %d: %v", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpApply(t *testing.T) {
	dst := []float64{1, 5, -2}
	Sum.apply(dst, []float64{1, 1, 1})
	if dst[0] != 2 || dst[1] != 6 || dst[2] != -1 {
		t.Errorf("Sum = %v", dst)
	}
	Min.apply(dst, []float64{0, 10, math.Inf(-1)})
	if dst[0] != 0 || dst[1] != 6 || !math.IsInf(dst[2], -1) {
		t.Errorf("Min = %v", dst)
	}
	Max.apply(dst, []float64{100, -1, 0})
	if dst[0] != 100 || dst[1] != 6 || dst[2] != 0 {
		t.Errorf("Max = %v", dst)
	}
}

func TestTryRecv(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			// Phase 1: nothing can have been sent before the first
			// barrier — TryRecv must report empty without blocking.
			if _, ok := c.TryRecv(1); ok {
				t.Error("TryRecv returned a phantom message")
			}
			c.Barrier() // rank 1 sends after this
			c.Barrier() // ... and the send completes before this returns
			m, ok := c.TryRecv(1)
			if !ok || len(m) != 1 || m[0] != 42 {
				t.Errorf("TryRecv = %v, %v", m, ok)
			}
			// Mailbox drained again.
			if _, ok := c.TryRecv(1); ok {
				t.Error("TryRecv returned a second phantom")
			}
		} else {
			c.Barrier()
			c.Send(0, []float64{42})
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherTotalBytesRecorded(t *testing.T) {
	stats, err := Run(3, func(c *Comm) {
		c.Allgatherv(make([]float64, c.Rank()+1)) // 1+2+3 = 6 floats total
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Collectives[KindAllgatherv].Bytes; got != 6*8 {
		t.Errorf("allgatherv bytes = %d, want 48 (total gathered vector)", got)
	}
}
