// Package simmpi is an in-process message-passing runtime standing in for
// MPI (Go has no MPI ecosystem): ranks are goroutines, point-to-point
// messages move through per-pair channels, and collectives (Barrier,
// Bcast, Reduce, Allreduce, Gather, Allgatherv) are implemented over a
// reusable generation barrier with real data movement.
//
// All communication traffic is recorded (message counts, byte volumes,
// collective events, and — under fault injection — drops, retries and
// modeled stall time) so the performance model in internal/perf can price
// runs with the ts/tw (α–β) cost model the paper uses in §IV-C — the
// computation is executed for real, only the *time* of the interconnect is
// modeled.
//
// Collective reductions are computed in rank order on every rank, so
// results are deterministic and identical across ranks and across runs
// with the same rank count.
//
// # Fault model
//
// RunPlan accepts a fault.Plan whose events the world injects at
// communication operations: ranks crash, sends are dropped or delayed,
// stragglers stall. The runtime itself never deadlocks on a lost rank:
//
//   - the generation barrier releases once every *live* rank has arrived,
//     and a rank dying mid-wait re-evaluates the release condition;
//   - collectives combine the contributions of the ranks that are alive
//     this round (dead ranks are skipped, not waited for);
//   - Recv unblocks with a *RankLostError when its peer dies, and
//     RecvTimeout adds a deadline;
//   - a rank returning an error, or genuinely panicking, aborts the world:
//     every blocked operation returns the causal error instead of hanging.
//
// Recovering lost work (or degrading gracefully) is the *driver's* job —
// the runtime provides the health view (Alive, Lost, PhaseOf) and the
// error returns that make those policies implementable without deadlock.
package simmpi

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gbpolar/internal/fault"
	"gbpolar/internal/obs"
)

// Op is a reduction operator.
type Op int

const (
	// Sum adds elementwise.
	Sum Op = iota
	// Min takes the elementwise minimum.
	Min
	// Max takes the elementwise maximum.
	Max
)

func (o Op) apply(dst, src []float64) {
	switch o {
	case Sum:
		for i, v := range src {
			dst[i] += v
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
}

// CollectiveKind labels a collective operation in the traffic log.
type CollectiveKind string

// Collective kinds recorded in Stats.
const (
	KindBarrier    CollectiveKind = "barrier"
	KindBcast      CollectiveKind = "bcast"
	KindReduce     CollectiveKind = "reduce"
	KindAllreduce  CollectiveKind = "allreduce"
	KindGather     CollectiveKind = "gather"
	KindAllgatherv CollectiveKind = "allgatherv"
)

// CollectiveStat aggregates the calls of one collective kind.
type CollectiveStat struct {
	Calls int64
	// Bytes is the per-rank payload volume summed over calls (the "m" of
	// the ts + m·tw cost model).
	Bytes int64
}

// Stats is the world's accumulated communication traffic.
type Stats struct {
	P2PMessages int64
	P2PBytes    int64
	Collectives map[CollectiveKind]CollectiveStat

	// Fault-injection traffic: Drops counts send attempts lost in
	// transit, Retries the re-sends drivers issued in response (recorded
	// via RecordRetry), BackoffNanos the modeled retry backoff stall,
	// DelayNanos the modeled injected wire latency, and StragglerNanos
	// the modeled injected compute slowdown. internal/perf prices these
	// as recovery cost.
	Drops          int64
	Retries        int64
	BackoffNanos   int64
	DelayNanos     int64
	StragglerNanos int64
	// Corruptions counts payloads bit-flipped in transit by injected
	// Corrupt events; Retransmits the extra collective rounds spent
	// re-sending after a detected corruption. Every injected corruption is
	// detected by the payload checksums (asserted by the chaos matrix) —
	// these count the recovery work, not silent damage.
	Corruptions int64
	Retransmits int64
	// Checkpoints and CheckpointBytes count the phase snapshots recorded
	// via RecordCheckpoint and their encoded volume; internal/perf prices
	// them as stable-storage writes.
	Checkpoints     int64
	CheckpointBytes int64
	// LostRanks are the ranks killed by injected crashes, sorted.
	LostRanks []int
}

// ErrDropped is returned by Send when the attempt was lost to an injected
// drop fault; the caller may retry.
var ErrDropped = errors.New("simmpi: message dropped in transit")

// ErrTimeout is returned by RecvTimeout when the deadline expires first.
var ErrTimeout = errors.New("simmpi: receive timed out")

// ErrCorrupt reports a payload whose checksum no longer matches — an
// injected corruption that was detected. Collectives retransmit a bounded
// number of times before returning it; for point-to-point receives the
// caller decides (retry, rebuild locally, or escalate to the supervisor).
var ErrCorrupt = errors.New("simmpi: payload corrupted in transit")

// RankLostError reports that an operation could not complete because the
// named peer ranks crashed.
type RankLostError struct {
	Ranks []int
}

func (e *RankLostError) Error() string {
	return fmt.Sprintf("simmpi: rank(s) %v lost", e.Ranks)
}

// Health is a snapshot of the world's per-rank state.
type Health struct {
	// Live holds the ranks still executing.
	Live []int
	// Lost holds the ranks killed by injected crashes.
	Lost []int
	// Straggling holds the ranks the fault plan slows down.
	Straggling []int
}

// envelope is one payload in transit plus its checksum. The checksum is
// computed only under fault injection (sum stays zero otherwise): clean
// runs pay nothing for the integrity machinery.
type envelope struct {
	data []float64
	sum  uint32
}

// World is one communicator instance shared by all ranks of a Run.
type World struct {
	size int

	// point-to-point mailboxes: mail[to][from].
	mail [][]chan envelope

	// generation barrier + collective scratch, all guarded by mu. live is
	// the number of ranks still executing: the barrier releases when every
	// live rank has arrived, and retiring a rank (crash or normal return)
	// re-checks the condition so nobody waits for the dead.
	mu       sync.Mutex
	cond     *sync.Cond
	arrived  int
	gen      uint64
	live     int
	gone     []bool // retired (crashed or returned), by rank
	slotOK   []bool // slot contributed to the collective round in flight
	slots    [][]float64
	slotSum  []uint32 // per-slot payload checksums (under injection only)
	abortErr error
	lost     []int // injected-crash ranks

	// deadCh[r] closes when rank r retires; abortCh closes on world abort.
	// Blocked point-to-point operations select on these to stay deadlock-
	// free.
	deadCh  []chan struct{}
	abortCh chan struct{}

	// phase[r] is rank r's driver-posted progress marker (Post/PhaseOf):
	// the recovery protocols use it to decide which phases a dead rank
	// completed.
	phase []atomic.Int64

	inj *fault.Injector

	// rec is the optional observability recorder: collectives open
	// "comm:<kind>" spans on the calling rank and count calls/bytes per
	// kind; fault points count injected events. All obs methods are
	// nil-safe, so a nil rec costs nothing.
	rec *obs.Recorder

	p2pMessages     atomic.Int64
	p2pBytes        atomic.Int64
	drops           atomic.Int64
	retries         atomic.Int64
	backoffNanos    atomic.Int64
	delayNanos      atomic.Int64
	stragglerNanos  atomic.Int64
	corruptions     atomic.Int64
	retransmits     atomic.Int64
	checkpoints     atomic.Int64
	checkpointBytes atomic.Int64
	collMu          sync.Mutex
	collectives     map[CollectiveKind]CollectiveStat
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int
	// commSeq counts this rank's collective rounds per kind (1-based).
	// Each round's count rides its comm span as the seq tag
	// (obs.StartSpanSeq), which is how the critical-path analyzer
	// matches one logical collective across ranks without comparing
	// wall clocks. Only the rank's own goroutine touches it.
	commSeq map[CollectiveKind]int64
}

const float64Bytes = 8

// maxRealSleep caps the real in-process sleep of injected delay/straggle
// faults; the full duration is recorded in the modeled stall statistics.
const maxRealSleep = 2 * time.Millisecond

// rankCrashed is the panic sentinel an injected crash uses to unwind the
// rank's stack; Run recognizes it and does not treat it as a failure of
// the program under test.
type rankCrashed struct{ rank int }

// Run executes fn on `size` ranks concurrently and returns the world's
// traffic statistics once every rank has returned. A rank returning an
// error, or panicking, aborts the world: blocked communication on the
// surviving ranks returns the causal error instead of deadlocking, and
// Run reports that cause.
func Run(size int, fn func(c *Comm) error) (Stats, error) {
	return RunPlan(size, nil, fn)
}

// RunPlan is Run under fault injection: the plan's events are applied at
// the ranks' communication operations. Injected crashes do NOT abort the
// world — survivors keep running (collectives skip the dead) and the lost
// ranks are reported in Stats.LostRanks, leaving recovery policy to the
// caller.
func RunPlan(size int, plan *fault.Plan, fn func(c *Comm) error) (Stats, error) {
	return RunPlanObs(size, plan, nil, fn)
}

// RunPlanObs is RunPlan with an observability recorder: collectives and
// fault events are recorded per rank, and every rank goroutine runs under
// a pprof "simmpi_rank" label so CPU profiles split by rank. A nil rec is
// exactly RunPlan.
func RunPlanObs(size int, plan *fault.Plan, rec *obs.Recorder, fn func(c *Comm) error) (Stats, error) {
	if size < 1 {
		return Stats{}, fmt.Errorf("simmpi: size %d < 1", size)
	}
	w := &World{
		size:        size,
		live:        size,
		gone:        make([]bool, size),
		slotOK:      make([]bool, size),
		slots:       make([][]float64, size),
		slotSum:     make([]uint32, size),
		deadCh:      make([]chan struct{}, size),
		abortCh:     make(chan struct{}),
		phase:       make([]atomic.Int64, size),
		collectives: make(map[CollectiveKind]CollectiveStat),
		rec:         rec,
	}
	if !plan.Empty() {
		w.inj = plan.NewInjector(size)
	}
	// Publish the world's live-rank view on the recorder so obs.Serve can
	// answer /healthz during the run. obs cannot import simmpi (the
	// dependency runs the other way), so the view crosses as a closure.
	// The snapshot keeps working after Run returns: a finished world
	// reports every surviving rank as retired-normally, i.e. Lost stays
	// the injected-crash list.
	rec.SetHealthSource(func() obs.HealthView {
		h := (&Comm{world: w, rank: 0}).Health()
		return obs.HealthView{Live: h.Live, Lost: h.Lost, Straggling: h.Straggling}
	})
	w.cond = sync.NewCond(&w.mu)
	for r := range w.deadCh {
		w.deadCh[r] = make(chan struct{})
	}
	w.mail = make([][]chan envelope, size)
	for to := range w.mail {
		w.mail[to] = make([]chan envelope, size)
		for from := range w.mail[to] {
			w.mail[to][from] = make(chan envelope, 64)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				rec := recover()
				if rec == nil {
					w.retire(rank, false)
					return
				}
				if _, crashed := rec.(rankCrashed); crashed {
					return // already retired by kill
				}
				err := fmt.Errorf("simmpi: rank %d panicked: %v", rank, rec)
				errs[rank] = err
				w.abort(err)
				w.retire(rank, false)
			}()
			body := func() {
				if err := fn(&Comm{world: w, rank: rank}); err != nil {
					errs[rank] = err
					w.abort(err)
				}
			}
			if w.rec == nil {
				body()
				return
			}
			// Label the rank's goroutine (and everything it spawns) so CPU
			// profiles can be split per rank. A crash panic propagates
			// through pprof.Do to the recover above.
			pprof.Do(context.Background(),
				pprof.Labels("simmpi_rank", strconv.Itoa(rank)),
				func(context.Context) { body() })
		}(r)
	}
	wg.Wait()
	stats := w.stats()
	if cause := w.aborted(); cause != nil {
		return stats, cause
	}
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// retire removes a rank from the live set — on crash (injected = true) or
// normal return — releasing any barrier now satisfied by the survivors
// and unblocking peers waiting on this rank.
func (w *World) retire(rank int, injected bool) {
	w.mu.Lock()
	if w.gone[rank] {
		w.mu.Unlock()
		return
	}
	w.gone[rank] = true
	w.slotOK[rank] = false
	w.slots[rank] = nil
	w.live--
	if injected {
		w.lost = append(w.lost, rank)
	}
	close(w.deadCh[rank])
	if w.live > 0 && w.arrived >= w.live {
		w.releaseLocked()
	} else {
		// Wake waiters so they re-check abort state.
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

func (w *World) releaseLocked() {
	w.arrived = 0
	w.gen++
	w.cond.Broadcast()
}

// abort cancels the world with a causal error: all blocked and future
// communication returns it.
func (w *World) abort(err error) {
	w.mu.Lock()
	if w.abortErr == nil {
		w.abortErr = err
		close(w.abortCh)
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// aborted returns the abort cause, or nil.
func (w *World) aborted() error {
	select {
	case <-w.abortCh:
		w.mu.Lock()
		err := w.abortErr
		w.mu.Unlock()
		return err
	default:
		return nil
	}
}

func (w *World) stats() Stats {
	w.collMu.Lock()
	coll := make(map[CollectiveKind]CollectiveStat, len(w.collectives))
	for k, v := range w.collectives {
		coll[k] = v
	}
	w.collMu.Unlock()
	w.mu.Lock()
	lost := append([]int(nil), w.lost...)
	w.mu.Unlock()
	sort.Ints(lost)
	return Stats{
		P2PMessages:     w.p2pMessages.Load(),
		P2PBytes:        w.p2pBytes.Load(),
		Collectives:     coll,
		Drops:           w.drops.Load(),
		Retries:         w.retries.Load(),
		BackoffNanos:    w.backoffNanos.Load(),
		DelayNanos:      w.delayNanos.Load(),
		StragglerNanos:  w.stragglerNanos.Load(),
		Corruptions:     w.corruptions.Load(),
		Retransmits:     w.retransmits.Load(),
		Checkpoints:     w.checkpoints.Load(),
		CheckpointBytes: w.checkpointBytes.Load(),
		LostRanks:       lost,
	}
}

func (w *World) recordCollective(kind CollectiveKind, bytesPerRank int64) {
	w.collMu.Lock()
	s := w.collectives[kind]
	s.Calls++
	s.Bytes += bytesPerRank
	w.collectives[kind] = s
	w.collMu.Unlock()
	// Exactly one rank per collective call reaches here, so the counters
	// count calls, not call×ranks. The per-call payload distribution is a
	// workload property too, so it histograms on the counter side.
	w.rec.Count("comm."+string(kind)+".calls", 1)
	w.rec.Count("comm."+string(kind)+".bytes", bytesPerRank)
	w.rec.Observe("comm."+string(kind)+".bytes.percall", bytesPerRank)
}

// span opens a "comm:<kind>" span on this rank — inert when the world has
// no recorder. Opened before the collective's fault point so injected
// stall time shows up inside the communication slice.
func (c *Comm) span(kind CollectiveKind) obs.Span {
	if c.commSeq == nil {
		c.commSeq = make(map[CollectiveKind]int64)
	}
	c.commSeq[kind]++
	return c.world.rec.StartSpanSeq(c.rank, "comm:"+string(kind), c.commSeq[kind])
}

// faultPoint is consulted at every communication operation: it applies
// the injected faults for this op and returns ErrDropped for a dropped
// send, the abort cause if the world is canceled, or nil. An injected
// crash does not return — it retires the rank and unwinds via panic. The
// returned Action carries the verdicts the *caller* must apply (today
// only Corrupt: the payload, if any, is bit-flipped in transit).
func (c *Comm) faultPoint(send bool, to int) (fault.Action, error) {
	w := c.world
	if err := w.aborted(); err != nil {
		return fault.Action{}, err
	}
	if w.inj == nil {
		return fault.Action{}, nil
	}
	act := w.inj.Advance(c.rank, send, to)
	if act.Straggle > 0 {
		w.rec.Count("fault.straggles", 1)
		w.rec.Event(c.rank, "fault", "straggle")
		w.stragglerNanos.Add(int64(act.Straggle))
		sleepCapped(act.Straggle)
	}
	if act.Delay > 0 {
		w.rec.Count("fault.delays", 1)
		w.rec.Event(c.rank, "fault", "delay")
		w.delayNanos.Add(int64(act.Delay))
		sleepCapped(act.Delay)
	}
	if act.Crash {
		w.rec.Count("fault.crashes", 1)
		w.rec.Event(c.rank, "fault", "crash")
		w.retire(c.rank, true)
		panic(rankCrashed{c.rank})
	}
	if act.Drop {
		w.rec.Count("fault.drops", 1)
		w.rec.Event(c.rank, "fault", "drop")
		w.drops.Add(1)
		return act, ErrDropped
	}
	return act, nil
}

// payloadChecksum is the CRC32 (IEEE) of the payload's float bit
// patterns. Bitwise — two NaNs with different payloads differ — because
// the integrity check must detect any transit bit-flip, not semantic
// inequality.
func payloadChecksum(data []float64) uint32 {
	crc := crc32.NewIEEE()
	var b [8]byte
	for _, v := range data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		crc.Write(b[:]) // hash.Hash.Write is documented to never fail
	}
	return crc.Sum32()
}

// corruptPayload returns a copy of data with one high bit of the first
// element flipped — the smallest injected damage that any honest
// checksum must catch. An empty payload has no bits to flip and is
// returned as-is (corruption of a zero-length message is vacuous).
func corruptPayload(data []float64) []float64 {
	out := make([]float64, len(data))
	copy(out, data)
	if len(out) > 0 {
		out[0] = math.Float64frombits(math.Float64bits(out[0]) ^ (1 << 62))
	}
	return out
}

// applyCorrupt implements an Action.Corrupt verdict on a payload: it
// records the injection and returns the damaged copy. Callers gate on
// w.inj != nil (the verdict can only be true under injection).
func (w *World) applyCorrupt(rank int, data []float64) []float64 {
	if len(data) == 0 {
		return data
	}
	w.rec.Count("fault.corruptions", 1)
	w.rec.Event(rank, "fault", "corrupt")
	w.corruptions.Add(1)
	return corruptPayload(data)
}

func sleepCapped(d time.Duration) {
	if d > maxRealSleep {
		d = maxRealSleep
	}
	time.Sleep(d)
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks the world started with (crashed ranks
// included — rank ids are stable).
func (c *Comm) Size() int { return c.world.size }

// Alive reports whether the rank is still executing.
func (c *Comm) Alive(rank int) bool {
	w := c.world
	w.mu.Lock()
	alive := rank >= 0 && rank < w.size && !w.gone[rank]
	w.mu.Unlock()
	return alive
}

// Lost returns the ranks killed by injected crashes so far, sorted. This
// is each rank's *local instantaneous* view; recovery protocols that need
// an identical view on every rank should agree on one through a
// collective (see internal/gb's agreeLost).
func (c *Comm) Lost() []int {
	w := c.world
	w.mu.Lock()
	lost := append([]int(nil), w.lost...)
	w.mu.Unlock()
	sort.Ints(lost)
	return lost
}

// LiveCount returns the number of ranks still executing.
func (c *Comm) LiveCount() int {
	w := c.world
	w.mu.Lock()
	n := w.live
	w.mu.Unlock()
	return n
}

// Health returns the world's per-rank health snapshot.
func (c *Comm) Health() Health {
	w := c.world
	h := Health{Lost: c.Lost(), Straggling: w.inj.Stragglers()}
	w.mu.Lock()
	for r := 0; r < w.size; r++ {
		if !w.gone[r] {
			h.Live = append(h.Live, r)
		}
	}
	w.mu.Unlock()
	return h
}

// Post publishes this rank's progress marker (a driver-defined monotone
// phase id). Survivors read it with PhaseOf to decide which phases a dead
// rank completed; markers are frozen at death.
func (c *Comm) Post(v int64) { c.world.phase[c.rank].Store(v) }

// PhaseOf reads rank's last posted progress marker.
func (c *Comm) PhaseOf(rank int) int64 { return c.world.phase[rank].Load() }

// Tick is a communication-free fault point for compute loops: it advances
// this rank's operation counter so crash and straggler events can strike
// mid-phase, and returns the abort cause if the world is canceled. Safe
// to call only from the rank's own goroutine (a crash unwinds the calling
// stack). There is no payload, so a Corrupt verdict here is inert.
func (c *Comm) Tick() error {
	_, err := c.faultPoint(false, -1)
	return err
}

// RecordRetry accounts one driver-level re-send after a drop plus the
// backoff the driver would have waited; internal/perf prices it.
func (c *Comm) RecordRetry(backoff time.Duration) {
	c.world.rec.Count("fault.retries", 1)
	c.world.retries.Add(1)
	c.world.backoffNanos.Add(int64(backoff))
}

// Send delivers a copy of data to rank `to`. It blocks only if the
// destination mailbox is full (64 outstanding messages), and unblocks
// with a *RankLostError if the destination dies. Under fault injection it
// can return ErrDropped (the attempt is lost; the caller may retry).
func (c *Comm) Send(to int, data []float64) error {
	w := c.world
	if to < 0 || to >= w.size {
		return fmt.Errorf("simmpi: Send to invalid rank %d (world size %d)", to, w.size)
	}
	act, err := c.faultPoint(true, to)
	if err != nil && !errors.Is(err, ErrDropped) {
		return err
	}
	// The wire attempt is paid whether or not the message arrives: the
	// performance model prices dropped attempts as wasted transfers.
	w.p2pMessages.Add(1)
	w.p2pBytes.Add(int64(len(data)) * float64Bytes)
	if err != nil {
		return err
	}
	if !c.Alive(to) {
		return &RankLostError{Ranks: []int{to}}
	}
	buf := make([]float64, len(data))
	copy(buf, data)
	env := envelope{data: buf}
	if w.inj != nil {
		// Checksum the authentic payload, then apply any corruption verdict
		// to the copy in flight: the receiver's verification sees exactly
		// what a damaged wire would deliver.
		env.sum = payloadChecksum(data)
		if act.Corrupt {
			env.data = w.applyCorrupt(c.rank, buf)
		}
	}
	select {
	case w.mail[to][c.rank] <- env:
		return nil
	case <-w.deadCh[to]:
		return &RankLostError{Ranks: []int{to}}
	case <-w.abortCh:
		return w.aborted()
	}
}

// Recv blocks until a message from rank `from` arrives and returns it. It
// unblocks with a *RankLostError if `from` dies with an empty mailbox, or
// with the abort cause if the world is canceled.
func (c *Comm) Recv(from int) ([]float64, error) {
	return c.recvDeadline(from, 0)
}

// RecvTimeout is Recv with a deadline: it returns ErrTimeout if no
// message arrives within d.
func (c *Comm) RecvTimeout(from int, d time.Duration) ([]float64, error) {
	if d <= 0 {
		return nil, fmt.Errorf("simmpi: RecvTimeout needs a positive deadline, got %v", d)
	}
	return c.recvDeadline(from, d)
}

func (c *Comm) recvDeadline(from int, d time.Duration) ([]float64, error) {
	w := c.world
	if from < 0 || from >= w.size {
		return nil, fmt.Errorf("simmpi: Recv from invalid rank %d (world size %d)", from, w.size)
	}
	if _, err := c.faultPoint(false, -1); err != nil {
		return nil, err
	}
	box := w.mail[c.rank][from]
	select {
	case m := <-box:
		return c.openEnvelope(from, m)
	default:
	}
	var timeout <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case m := <-box:
		return c.openEnvelope(from, m)
	case <-w.deadCh[from]:
		// The peer died — but a message may already be in flight.
		select {
		case m := <-box:
			return c.openEnvelope(from, m)
		default:
			return nil, &RankLostError{Ranks: []int{from}}
		}
	case <-w.abortCh:
		return nil, w.aborted()
	case <-timeout:
		return nil, ErrTimeout
	}
}

// openEnvelope verifies a received payload against its transit checksum.
// The message is consumed either way: a corrupt delivery returns
// ErrCorrupt (never silent data), and the caller decides whether to ask
// for a retransmit, rebuild locally, or escalate.
func (c *Comm) openEnvelope(from int, env envelope) ([]float64, error) {
	w := c.world
	if w.inj != nil && payloadChecksum(env.data) != env.sum {
		w.rec.Count("fault.corruptions.detected", 1)
		return nil, fmt.Errorf("simmpi: message from rank %d to rank %d: %w", from, c.rank, ErrCorrupt)
	}
	return env.data, nil
}

// TryRecv returns a pending message from rank `from` without blocking;
// ok is false when the mailbox is empty. This is the polling primitive
// the dynamic load-balancing coordinator uses to serve many workers. It
// is not a fault point: polling frequency is scheduler-dependent, and
// charging it to the op counter would make fault replay nondeterministic.
// A message whose transit checksum fails verification is consumed,
// counted, and reported as absent (ok = false) — detected and discarded,
// never delivered silently damaged.
func (c *Comm) TryRecv(from int) (data []float64, ok bool) {
	select {
	case m := <-c.world.mail[c.rank][from]:
		out, err := c.openEnvelope(from, m)
		if err != nil {
			return nil, false
		}
		return out, true
	default:
		return nil, false
	}
}

// Barrier blocks until every live rank has entered it. It returns the
// abort cause if the world is canceled while waiting — never deadlocking
// on a crashed or panicked rank.
func (c *Comm) Barrier() error {
	w := c.world
	sp := c.span(KindBarrier)
	defer sp.End()
	if _, err := c.faultPoint(false, -1); err != nil {
		return err
	}
	if c.rank == 0 {
		w.recordCollective(KindBarrier, 0)
	}
	return c.barrierNoRecord()
}

// Sync blocks until every live rank arrives, like Barrier, but is NOT a
// fault point, opens no span, and records no traffic. It exists for
// checkpoint coordination: bracketing a snapshot with Syncs must not
// shift the per-rank operation counters a fault plan replays against,
// and must not add counters that would break the Summary identity
// between a resumed and an uninterrupted run.
func (c *Comm) Sync() error { return c.barrierNoRecord() }

// RecordCheckpoint accounts one phase snapshot of the given encoded size
// on the traffic statistics (priced by internal/perf as a
// stable-storage write) and on the observational gauges. Deliberately
// NOT a deterministic counter: an uninterrupted run saves every phase
// while a resumed run saves only the remaining ones, and the checkpoint
// ledger must not break the counter-side Summary identity between them.
func (c *Comm) RecordCheckpoint(bytes int64) {
	w := c.world
	w.checkpoints.Add(1)
	w.checkpointBytes.Add(bytes)
	w.rec.GaugeAdd("ckpt.saves", 1)
	w.rec.GaugeAdd("ckpt.bytes", bytes)
}

// barrierNoRecord is Barrier without a traffic-log entry, used internally
// by collectives (their cost already covers synchronization).
func (c *Comm) barrierNoRecord() error {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.abortErr != nil {
		return w.abortErr
	}
	gen := w.gen
	w.arrived++
	if w.arrived >= w.live {
		w.releaseLocked()
		return nil
	}
	for w.gen == gen && w.abortErr == nil {
		w.cond.Wait()
	}
	if w.gen == gen {
		return w.abortErr
	}
	return nil
}

// contribute publishes this rank's slice for the collective round in
// flight, applying an injected corruption verdict to the copy in flight
// (the checksum always covers the authentic data, so the damage is
// detectable). Writes are per-rank-indexed and ordered by the barrier
// mutex, so no extra locking is needed.
func (c *Comm) contribute(data []float64, corrupt bool) {
	w := c.world
	if w.inj != nil {
		w.slotSum[c.rank] = payloadChecksum(data)
		if corrupt {
			data = w.applyCorrupt(c.rank, data)
		}
	}
	w.slots[c.rank] = data
	w.slotOK[c.rank] = true
}

// contributors returns the ranks whose slots belong to this round — the
// ranks alive when the round's first barrier released. Call only between
// the two barriers of a collective.
func (w *World) contributors() []int {
	out := make([]int, 0, w.size)
	for r := 0; r < w.size; r++ {
		if w.slotOK[r] {
			out = append(out, r)
		}
	}
	return out
}

// corruptContributors returns the contributing ranks whose slot fails
// checksum verification, in rank order. Slots are shared memory, so
// every live rank computes the identical verdict and takes the same
// retransmit-or-escalate branch — no divergence, no deadlock. Call only
// between the two barriers of a collective, under injection.
func (w *World) corruptContributors() []int {
	var bad []int
	for r := 0; r < w.size; r++ {
		if w.slotOK[r] && payloadChecksum(w.slots[r]) != w.slotSum[r] {
			bad = append(bad, r)
		}
	}
	return bad
}

// maxRetransmits bounds the re-contribution rounds a collective spends
// on detected corruption before escalating ErrCorrupt to the caller
// (and, through the drivers, to the run supervisor).
const maxRetransmits = 3

// contributeVerified is the integrity-checked head of every collective:
// contribute (when this rank has a payload in the round), synchronize,
// verify every contribution, and retransmit a bounded number of times if
// any slot arrived corrupted. On success the slots hold authentic data.
// Each retransmit round consumes one fault-plan op per rank (a real
// re-attempt, like a driver's send retry) and re-synchronizes before
// re-contributing so slot writes never race verification reads.
func (c *Comm) contributeVerified(kind CollectiveKind, data []float64, contributing bool, act fault.Action) error {
	w := c.world
	for attempt := 0; ; attempt++ {
		if contributing {
			c.contribute(data, act.Corrupt)
		}
		if err := c.barrierNoRecord(); err != nil {
			return err
		}
		if w.inj == nil {
			// Clean runs: no checksums were computed, nothing to verify —
			// and no extra barriers, so op alignment matches the seed.
			return nil
		}
		bad := w.corruptContributors()
		if len(bad) == 0 {
			return nil
		}
		// Detection and retransmit are counted once per round by the lowest
		// contributor, while the slots are still race-free to read.
		leader := false
		if ranks := w.contributors(); len(ranks) > 0 && c.rank == ranks[0] {
			leader = true
		}
		if leader {
			w.rec.Count("fault.corruptions.detected", 1)
		}
		if attempt >= maxRetransmits {
			// Every rank takes this branch on the shared verdict, but a fast
			// rank returning here exits fn and retires, which clears its slot
			// state — so re-sync first, or a slower peer still verifying would
			// read an emptied slot table and conclude the round was clean.
			if err := c.barrierNoRecord(); err != nil {
				return err
			}
			return fmt.Errorf("simmpi: %s payload from rank(s) %v still corrupt after %d retransmits: %w",
				kind, bad, maxRetransmits, ErrCorrupt)
		}
		if leader {
			w.retransmits.Add(1)
			w.rec.Count("comm.retransmits", 1)
			w.rec.Event(c.rank, "comm", "retransmit")
		}
		// Resync so nobody re-contributes while a peer is still verifying,
		// then consume a fresh op: the retransmit is a real re-attempt and
		// may itself be corrupted (or crash the rank).
		if err := c.barrierNoRecord(); err != nil {
			return err
		}
		var err error
		act, err = c.faultPoint(false, -1)
		if err != nil {
			return err
		}
	}
}

// Bcast distributes root's data to every rank: on the root, data is
// returned unchanged; on other ranks a copy of root's slice is returned
// (data may be nil there). If the root is dead, every rank receives a
// *RankLostError.
func (c *Comm) Bcast(root int, data []float64) ([]float64, error) {
	w := c.world
	sp := c.span(KindBcast)
	defer sp.End()
	act, err := c.faultPoint(false, -1)
	if err != nil {
		return nil, err
	}
	if c.rank == root {
		w.recordCollective(KindBcast, int64(len(data))*float64Bytes)
	}
	if err := c.contributeVerified(KindBcast, data, c.rank == root, act); err != nil {
		return nil, err
	}
	if !w.slotOK[root] {
		// Consistent verdict on every live rank: all skip the close
		// barrier together.
		return nil, &RankLostError{Ranks: []int{root}}
	}
	var out []float64
	if c.rank == root {
		out = data
	} else {
		out = make([]float64, len(w.slots[root]))
		copy(out, w.slots[root])
	}
	if err := c.barrierNoRecord(); err != nil {
		return nil, err
	}
	return out, nil
}

// Allreduce combines data elementwise across the live ranks with op and
// returns the combined vector on every rank. All ranks must pass
// equal-length slices: a mismatch returns an error (on every live rank,
// consistently) instead of panicking. The input is not modified.
func (c *Comm) Allreduce(data []float64, op Op) ([]float64, error) {
	w := c.world
	sp := c.span(KindAllreduce)
	defer sp.End()
	act, err := c.faultPoint(false, -1)
	if err != nil {
		return nil, err
	}
	if err := c.contributeVerified(KindAllreduce, data, true, act); err != nil {
		return nil, err
	}
	ranks := w.contributors()
	first := ranks[0]
	out := make([]float64, len(w.slots[first]))
	copy(out, w.slots[first])
	for _, r := range ranks[1:] {
		if len(w.slots[r]) != len(out) {
			// Every live rank computes the same verdict from the same
			// slots and returns here, skipping the close barrier in
			// lockstep; the error then propagates out of Run via fn.
			return nil, fmt.Errorf("simmpi: Allreduce length mismatch: rank %d has %d elements, rank %d has %d",
				r, len(w.slots[r]), first, len(out))
		}
		op.apply(out, w.slots[r])
	}
	if c.rank == first {
		w.recordCollective(KindAllreduce, int64(len(out))*float64Bytes)
	}
	if err := c.barrierNoRecord(); err != nil {
		return nil, err
	}
	return out, nil
}

// Reduce combines data across the live ranks onto the root, which
// receives the combined vector; other ranks receive nil. A dead root is
// an error on every rank.
func (c *Comm) Reduce(root int, data []float64, op Op) ([]float64, error) {
	w := c.world
	sp := c.span(KindReduce)
	defer sp.End()
	act, err := c.faultPoint(false, -1)
	if err != nil {
		return nil, err
	}
	if err := c.contributeVerified(KindReduce, data, true, act); err != nil {
		return nil, err
	}
	if !w.slotOK[root] {
		return nil, &RankLostError{Ranks: []int{root}}
	}
	ranks := w.contributors()
	if c.rank == ranks[0] {
		w.recordCollective(KindReduce, int64(len(data))*float64Bytes)
	}
	var out []float64
	var redErr error
	if c.rank == root {
		out = make([]float64, len(data))
		copy(out, w.slots[ranks[0]])
		for _, r := range ranks[1:] {
			if len(w.slots[r]) != len(out) {
				redErr = fmt.Errorf("simmpi: Reduce length mismatch: rank %d has %d elements, want %d",
					r, len(w.slots[r]), len(out))
				break
			}
			op.apply(out, w.slots[r])
		}
	}
	if berr := c.barrierNoRecord(); berr != nil {
		return nil, berr
	}
	if redErr != nil {
		return nil, redErr
	}
	return out, nil
}

// Allgatherv concatenates every live rank's (variable-length)
// contribution in rank order and returns the concatenation on every rank.
// Crashed ranks contribute nothing — callers running a recovery protocol
// should encode (index, value) pairs rather than relying on positional
// concatenation.
func (c *Comm) Allgatherv(data []float64) ([]float64, error) {
	w := c.world
	sp := c.span(KindAllgatherv)
	defer sp.End()
	act, err := c.faultPoint(false, -1)
	if err != nil {
		return nil, err
	}
	if err := c.contributeVerified(KindAllgatherv, data, true, act); err != nil {
		return nil, err
	}
	ranks := w.contributors()
	total := 0
	for _, r := range ranks {
		total += len(w.slots[r])
	}
	if c.rank == ranks[0] {
		// Bytes records the full gathered vector (the "m" of the
		// ts + tw·m·(P−1)/P cost model).
		w.recordCollective(KindAllgatherv, int64(total)*float64Bytes)
	}
	out := make([]float64, 0, total)
	for _, r := range ranks {
		out = append(out, w.slots[r]...)
	}
	if err := c.barrierNoRecord(); err != nil {
		return nil, err
	}
	return out, nil
}

// Gather concatenates the live ranks' contributions in rank order onto
// the root; other ranks receive nil. A dead root is an error on every
// rank.
func (c *Comm) Gather(root int, data []float64) ([]float64, error) {
	w := c.world
	sp := c.span(KindGather)
	defer sp.End()
	act, err := c.faultPoint(false, -1)
	if err != nil {
		return nil, err
	}
	if err := c.contributeVerified(KindGather, data, true, act); err != nil {
		return nil, err
	}
	if !w.slotOK[root] {
		return nil, &RankLostError{Ranks: []int{root}}
	}
	ranks := w.contributors()
	if c.rank == ranks[0] {
		total := 0
		for _, r := range ranks {
			total += len(w.slots[r])
		}
		w.recordCollective(KindGather, int64(total)*float64Bytes)
	}
	var out []float64
	if c.rank == root {
		for _, r := range ranks {
			out = append(out, w.slots[r]...)
		}
	}
	if err := c.barrierNoRecord(); err != nil {
		return nil, err
	}
	return out, nil
}
