// Package simmpi is an in-process message-passing runtime standing in for
// MPI (Go has no MPI ecosystem): ranks are goroutines, point-to-point
// messages move through per-pair channels, and collectives (Barrier,
// Bcast, Reduce, Allreduce, Gather, Allgatherv) are implemented over a
// reusable generation barrier with real data movement.
//
// All communication traffic is recorded (message counts, byte volumes,
// collective events) so the performance model in internal/perf can price
// runs with the ts/tw (α–β) cost model the paper uses in §IV-C — the
// computation is executed for real, only the *time* of the interconnect is
// modeled.
//
// Collective reductions are computed in rank order on every rank, so
// results are deterministic and identical across ranks and across runs
// with the same rank count.
package simmpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Op is a reduction operator.
type Op int

const (
	// Sum adds elementwise.
	Sum Op = iota
	// Min takes the elementwise minimum.
	Min
	// Max takes the elementwise maximum.
	Max
)

func (o Op) apply(dst, src []float64) {
	switch o {
	case Sum:
		for i, v := range src {
			dst[i] += v
		}
	case Min:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	case Max:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
}

// CollectiveKind labels a collective operation in the traffic log.
type CollectiveKind string

// Collective kinds recorded in Stats.
const (
	KindBarrier    CollectiveKind = "barrier"
	KindBcast      CollectiveKind = "bcast"
	KindReduce     CollectiveKind = "reduce"
	KindAllreduce  CollectiveKind = "allreduce"
	KindGather     CollectiveKind = "gather"
	KindAllgatherv CollectiveKind = "allgatherv"
)

// CollectiveStat aggregates the calls of one collective kind.
type CollectiveStat struct {
	Calls int64
	// Bytes is the per-rank payload volume summed over calls (the "m" of
	// the ts + m·tw cost model).
	Bytes int64
}

// Stats is the world's accumulated communication traffic.
type Stats struct {
	P2PMessages int64
	P2PBytes    int64
	Collectives map[CollectiveKind]CollectiveStat
}

// World is one communicator instance shared by all ranks of a Run.
type World struct {
	size int

	// point-to-point mailboxes: mail[to][from].
	mail [][]chan []float64

	// generation barrier + collective scratch.
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	gen     uint64
	slots   [][]float64

	p2pMessages atomic.Int64
	p2pBytes    atomic.Int64
	collMu      sync.Mutex
	collectives map[CollectiveKind]CollectiveStat
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int
}

const float64Bytes = 8

// Run executes fn on `size` ranks concurrently and returns the world's
// traffic statistics once every rank has returned. A panic on any rank is
// captured and returned as an error (after all surviving ranks finish or
// deadlock is avoided by the panicking rank releasing the barrier is NOT
// attempted — collectives must not be conditionally skipped by callers).
func Run(size int, fn func(c *Comm)) (Stats, error) {
	if size < 1 {
		return Stats{}, fmt.Errorf("simmpi: size %d < 1", size)
	}
	w := &World{
		size:        size,
		slots:       make([][]float64, size),
		collectives: make(map[CollectiveKind]CollectiveStat),
	}
	w.cond = sync.NewCond(&w.mu)
	w.mail = make([][]chan []float64, size)
	for to := range w.mail {
		w.mail[to] = make([]chan []float64, size)
		for from := range w.mail[to] {
			w.mail[to][from] = make(chan []float64, 64)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("simmpi: rank %d panicked: %v", rank, rec)
				}
			}()
			fn(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return w.stats(), err
		}
	}
	return w.stats(), nil
}

func (w *World) stats() Stats {
	w.collMu.Lock()
	coll := make(map[CollectiveKind]CollectiveStat, len(w.collectives))
	for k, v := range w.collectives {
		coll[k] = v
	}
	w.collMu.Unlock()
	return Stats{
		P2PMessages: w.p2pMessages.Load(),
		P2PBytes:    w.p2pBytes.Load(),
		Collectives: coll,
	}
}

func (w *World) recordCollective(kind CollectiveKind, bytesPerRank int64) {
	w.collMu.Lock()
	s := w.collectives[kind]
	s.Calls++
	s.Bytes += bytesPerRank
	w.collectives[kind] = s
	w.collMu.Unlock()
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.size }

// Send delivers a copy of data to rank `to`. It blocks only if the
// destination mailbox is full (64 outstanding messages).
func (c *Comm) Send(to int, data []float64) {
	w := c.world
	buf := make([]float64, len(data))
	copy(buf, data)
	w.mail[to][c.rank] <- buf
	w.p2pMessages.Add(1)
	w.p2pBytes.Add(int64(len(data)) * float64Bytes)
}

// Recv blocks until a message from rank `from` arrives and returns it.
func (c *Comm) Recv(from int) []float64 {
	return <-c.world.mail[c.rank][from]
}

// TryRecv returns a pending message from rank `from` without blocking;
// ok is false when the mailbox is empty. This is the polling primitive
// the dynamic load-balancing coordinator uses to serve many workers.
func (c *Comm) TryRecv(from int) (data []float64, ok bool) {
	select {
	case m := <-c.world.mail[c.rank][from]:
		return m, true
	default:
		return nil, false
	}
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	w := c.world
	if c.rank == 0 {
		w.recordCollective(KindBarrier, 0)
	}
	w.mu.Lock()
	gen := w.gen
	w.arrived++
	if w.arrived == w.size {
		w.arrived = 0
		w.gen++
		w.cond.Broadcast()
	} else {
		for w.gen == gen {
			w.cond.Wait()
		}
	}
	w.mu.Unlock()
}

// barrierNoRecord is Barrier without a traffic-log entry, used internally
// by collectives (their cost already covers synchronization).
func (c *Comm) barrierNoRecord() {
	w := c.world
	w.mu.Lock()
	gen := w.gen
	w.arrived++
	if w.arrived == w.size {
		w.arrived = 0
		w.gen++
		w.cond.Broadcast()
	} else {
		for w.gen == gen {
			w.cond.Wait()
		}
	}
	w.mu.Unlock()
}

// Bcast distributes root's data to every rank: on the root, data is
// returned unchanged; on other ranks a copy of root's slice is returned
// (data may be nil there).
func (c *Comm) Bcast(root int, data []float64) []float64 {
	w := c.world
	if c.rank == root {
		w.slots[root] = data
		w.recordCollective(KindBcast, int64(len(data))*float64Bytes)
	}
	c.barrierNoRecord()
	var out []float64
	if c.rank == root {
		out = data
	} else {
		out = make([]float64, len(w.slots[root]))
		copy(out, w.slots[root])
	}
	c.barrierNoRecord()
	return out
}

// Allreduce combines data elementwise across all ranks with op and returns
// the combined vector on every rank. All ranks must pass equal-length
// slices. The input is not modified.
func (c *Comm) Allreduce(data []float64, op Op) []float64 {
	w := c.world
	w.slots[c.rank] = data
	if c.rank == 0 {
		w.recordCollective(KindAllreduce, int64(len(data))*float64Bytes)
	}
	c.barrierNoRecord()
	out := make([]float64, len(data))
	copy(out, w.slots[0])
	for r := 1; r < w.size; r++ {
		if len(w.slots[r]) != len(out) {
			panic(fmt.Sprintf("simmpi: Allreduce length mismatch: rank %d has %d, rank 0 has %d",
				r, len(w.slots[r]), len(out)))
		}
		op.apply(out, w.slots[r])
	}
	c.barrierNoRecord()
	return out
}

// Reduce combines data across ranks onto the root, which receives the
// combined vector; other ranks receive nil.
func (c *Comm) Reduce(root int, data []float64, op Op) []float64 {
	w := c.world
	w.slots[c.rank] = data
	if c.rank == 0 {
		w.recordCollective(KindReduce, int64(len(data))*float64Bytes)
	}
	c.barrierNoRecord()
	var out []float64
	if c.rank == root {
		out = make([]float64, len(data))
		copy(out, w.slots[0])
		for r := 1; r < w.size; r++ {
			op.apply(out, w.slots[r])
		}
	}
	c.barrierNoRecord()
	return out
}

// Allgatherv concatenates every rank's (variable-length) contribution in
// rank order and returns the concatenation on every rank.
func (c *Comm) Allgatherv(data []float64) []float64 {
	w := c.world
	w.slots[c.rank] = data
	c.barrierNoRecord()
	total := 0
	for r := 0; r < w.size; r++ {
		total += len(w.slots[r])
	}
	if c.rank == 0 {
		// Bytes records the full gathered vector (the "m" of the
		// ts + tw·m·(P−1)/P cost model).
		w.recordCollective(KindAllgatherv, int64(total)*float64Bytes)
	}
	out := make([]float64, 0, total)
	for r := 0; r < w.size; r++ {
		out = append(out, w.slots[r]...)
	}
	c.barrierNoRecord()
	return out
}

// Gather concatenates contributions in rank order onto the root; other
// ranks receive nil.
func (c *Comm) Gather(root int, data []float64) []float64 {
	w := c.world
	w.slots[c.rank] = data
	c.barrierNoRecord()
	if c.rank == 0 {
		total := 0
		for r := 0; r < w.size; r++ {
			total += len(w.slots[r])
		}
		w.recordCollective(KindGather, int64(total)*float64Bytes)
	}
	var out []float64
	if c.rank == root {
		for r := 0; r < w.size; r++ {
			out = append(out, w.slots[r]...)
		}
	}
	c.barrierNoRecord()
	return out
}
