// Package supervise is the run-level robustness layer above the gb
// drivers: it owns a wall-clock deadline, a retry budget with seeded
// exponential backoff and jitter, phase-checkpoint persistence, and an
// accuracy-shedding escalation ladder. Where internal/gb heals WITHIN a
// run (heal-by-redo over the live set), the supervisor decides what to
// do when a whole run attempt fails — crashed quorum, exhausted
// retransmits, persistent corruption — and trades accuracy for
// completion one deliberate notch at a time:
//
//	retry     same configuration, resumed from the newest checkpoint
//	shrink    resume with membership shrunk to the checkpoint's live set
//	relax     relax the ε tolerances one ladder notch (priced into
//	          the returned ErrorBound) and resume
//	degrade   accept a partial energy with the rigorous missing-mass
//	          bound (gb's Degrade policy)
//	fallback  serial single-rank run, no injection, resumed from the
//	          newest checkpoint — always completes, always Degraded
//
// Every attempt and escalation is recorded as supervise.* counters and
// rank-0 flight events on the supervisor's recorder, so a post-mortem
// shows not just that a run finished but what it cost to finish.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"gbpolar/internal/fault"
	"gbpolar/internal/gb"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
)

// ErrCanceled marks a supervised computation stopped by Spec.Context —
// the ladder is abandoned immediately (no fallback: a draining caller
// wants the checkpoint kept for resume, not a best-effort completion).
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) both
// hold on the returned error.
var ErrCanceled = errors.New("supervise: canceled")

// Rung identifies a level of the escalation ladder.
type Rung int

const (
	// RungInitial is the first attempt at the requested configuration.
	RungInitial Rung = iota
	// RungRetry re-runs the same configuration, resumed from the newest
	// checkpoint, after a modeled backoff.
	RungRetry
	// RungShrink resumes with the process count shrunk to the
	// checkpoint's agreed live membership.
	RungShrink
	// RungRelax relaxes the ε tolerances one notch (gb.WithRelaxedEps)
	// and prices the shed accuracy into ErrorBound.
	RungRelax
	// RungDegrade switches to gb's Degrade policy: accept a partial
	// energy with its rigorous missing-mass bound.
	RungDegrade
	// RungFallback is the terminal rung: a serial single-rank run with no
	// injection, resumed from the newest checkpoint. It cannot fail and
	// its result is always marked Degraded.
	RungFallback
)

// String implements fmt.Stringer.
func (r Rung) String() string {
	switch r {
	case RungInitial:
		return "initial"
	case RungRetry:
		return "retry"
	case RungShrink:
		return "shrink"
	case RungRelax:
		return "relax"
	case RungDegrade:
		return "degrade"
	case RungFallback:
		return "fallback"
	}
	return fmt.Sprintf("Rung(%d)", int(r))
}

// RelaxStep is one notch of an accuracy-shedding ladder expressed as a
// full gb.Accuracy point rather than a scalar ε factor: the tuner
// (internal/tune) hands the supervisor its admissible frontier, and the
// relax rung steps DOWN that frontier — cheaper points, larger predicted
// error — instead of blindly scaling ε. RelError is the step's predicted
// relative Epol error; it prices the shed accuracy into the returned
// ErrorBound as |Epol|·RelError·1.25 (the same slack the scalar
// epsPenalty and gb's degraded bound use).
type RelaxStep struct {
	Accuracy gb.Accuracy
	RelError float64
}

// Store persists checkpoints across attempts: a gb.CheckpointSink the
// runs save into plus retrieval of the newest (highest-phase) snapshot.
// Latest returns (nil, nil) when nothing has been saved.
type Store interface {
	gb.CheckpointSink
	Latest() (*gb.Checkpoint, error)
}

// Spec configures one supervised computation.
type Spec struct {
	// Processes and ThreadsPerProcess are the requested layout.
	Processes         int
	ThreadsPerProcess int
	// Policy is the in-run fault policy of the early rungs (the degrade
	// rung forces gb.Degrade regardless).
	Policy gb.FaultPolicy
	// Plan supplies the fault-injection plan for each attempt (attempt
	// numbers are global across rungs, starting at 0). Nil means no
	// injection. The fallback rung never injects.
	Plan func(attempt int) *fault.Plan
	// Deadline bounds the supervised computation's wall time. When it
	// expires, remaining rungs are skipped and the supervisor jumps
	// straight to the fallback. Zero means no deadline.
	Deadline time.Duration
	// Retries is the retry-rung budget (default 2).
	Retries int
	// BackoffBase is the first retry's modeled backoff, doubled per retry
	// with seeded jitter in [1,2) (default 2ms). The backoff is modeled
	// (accumulated in Outcome.BackoffModeled), not slept: like gb's
	// sendRetry backoff it prices the protocol without making the test
	// suite wait for it.
	BackoffBase time.Duration
	// Seed seeds the jitter generator — same seed, same ladder walk.
	Seed int64
	// EpsLadder are the relax-rung tolerance factors, tried in order
	// (default {1.5, 2.25}). Ignored when AccuracyLadder is set.
	//
	// Deprecated: prefer AccuracyLadder, which sheds along the tuner's
	// admissible frontier instead of scaling ε blindly.
	EpsLadder []float64
	// AccuracyLadder replaces the scalar relax rung with the tuner's
	// admissible frontier: each step is a full accuracy point plus its
	// predicted relative error (see RelaxStep). Steps are tried in
	// order; steps that do not loosen the energy criterion beyond the
	// current point are skipped (escalation only ever relaxes further).
	// A step that changes the expansion order changes the checkpoint
	// payload shape — the supervisor detects the mismatch and resumes
	// from scratch instead of failing the attempt.
	AccuracyLadder []RelaxStep
	// Store persists checkpoints across attempts (default: an in-memory
	// MemStore, so even without explicit storage a retry resumes rather
	// than recomputes).
	Store Store
	// Obs is the supervisor-level recorder: supervise.* counters,
	// escalation flight events. Per-attempt run recorders are created
	// fresh internally (the winner's is returned in Outcome.Recorder).
	Obs *obs.Recorder
	// Trace is the request identity of the job this computation serves.
	// Each attempt's run recorder carries it with Attempt set to the
	// 1-based global attempt number, so every span of every rung — and
	// every trace file TraceSink persists — resolves back to the
	// request. The zero value disables stamping.
	Trace obs.TraceContext
	// TraceSink, when set, receives every attempt's run recorder right
	// after the attempt ends — successful, failed, or canceled; the gb
	// drivers have force-closed the spans by then, so the recorder is
	// always export-ready. The serving layer persists each one next to
	// the job's checkpoints. attempt is 1-based, matching the recorder's
	// TraceContext.Attempt.
	TraceSink func(attempt int, rec *obs.Recorder)
	// Clock reads wall time for the deadline (default time.Now;
	// injectable for tests).
	Clock func() time.Time
	// Context cancels the supervised computation cooperatively: it is
	// checked before every attempt and passed into each run (gb checks
	// it at phase boundaries, after the completed phase's checkpoint is
	// durable). On cancellation Run returns ErrCanceled instead of
	// escalating — the store keeps the newest snapshot, so a later
	// supervised run over the same store resumes bitwise-identically.
	// Nil means never canceled.
	Context context.Context
	// StartEpsFactor pre-relaxes the ε tolerances before the first
	// attempt (1 or 0 = unrelaxed). This is the serving layer's
	// overload-shedding knob: under queue pressure a request starts on
	// the relax rung directly, trading priced accuracy (the factor's
	// epsPenalty lands in ErrorBound and the Outcome is Degraded) for
	// admission capacity. Ladder entries at or below the factor are
	// skipped — escalation only ever relaxes further.
	//
	// Deprecated: the factor now maps onto Accuracy scaling — the
	// pre-shed system is gb.WithRelaxedEps(factor), whose accuracy
	// point is exactly Params.Accuracy.Relaxed(factor). Callers with a
	// tuned ladder should prefer starting on AccuracyLadder[0].
	StartEpsFactor float64
}

// AttemptRecord describes one attempt of the ladder walk.
type AttemptRecord struct {
	// Attempt is the global attempt number, starting at 0.
	Attempt int
	// Rung is the ladder rung the attempt ran at.
	Rung Rung
	// Processes is the attempt's process count.
	Processes int
	// EpsFactor is the ε relaxation in effect (1 = unrelaxed). On an
	// AccuracyLadder step it is the step's EpsEpol over the base EpsEpol
	// (informational).
	EpsFactor float64
	// Accuracy is the accuracy point of an AccuracyLadder step (zero on
	// the scalar rungs).
	Accuracy gb.Accuracy
	// ResumedFrom is the checkpoint phase the attempt resumed from
	// (gb.PhaseNone = from scratch).
	ResumedFrom gb.CheckpointPhase
	// DroppedCheckpoint reports that a stored snapshot could not resume
	// this attempt's configuration (e.g. the expansion order changed its
	// payload shape) and the attempt recomputed from scratch.
	DroppedCheckpoint bool
	// Err is the attempt's failure, "" on success.
	Err string
}

// Outcome is the supervised result.
type Outcome struct {
	// Result is the final run's result. Never nil: the fallback rung
	// cannot fail.
	Result *gb.Result
	// Rung is the ladder rung that produced Result.
	Rung Rung
	// EpsFactor is the final ε relaxation (1 = unrelaxed).
	EpsFactor float64
	// Accuracy is the final attempt's accuracy point (the system's own
	// point, after any pre-shed or ladder step).
	Accuracy gb.Accuracy
	// RelError is the final AccuracyLadder step's predicted relative
	// error (0 when no accuracy step was taken); it has already been
	// priced into Result.ErrorBound.
	RelError float64
	// Degraded reports a best-effort result: either the run itself
	// degraded (partial energy) or accuracy was shed on the way
	// (relaxed ε, fallback). Result.ErrorBound then bounds the damage.
	Degraded bool
	// Attempts is the full ladder walk, in order.
	Attempts []AttemptRecord
	// BackoffModeled is the total modeled (not slept) retry backoff.
	BackoffModeled time.Duration
	// DeadlineExceeded reports that the deadline forced the jump to the
	// fallback rung.
	DeadlineExceeded bool
	// Recorder is the successful attempt's run recorder: restored
	// snapshot plus the final attempt's work — approximately the whole
	// logical run. Use it for metrics/trace export.
	Recorder *obs.Recorder
}

// epsPenalty prices a relaxed far-field tolerance into the error bound:
// the octree truncation error of both phases is first-order in ε, so
// relaxing by factor adds at most about |Epol|·ε_epol·(factor−1),
// widened by the same 1.25 slack gb.degradedBound uses. This is a
// first-order accuracy model (the same one the ε parameters themselves
// express), not a worst-case theorem like the degraded bound.
func epsPenalty(epol, baseEps, factor float64) float64 {
	if factor <= 1 {
		return 0
	}
	mag := epol
	if mag < 0 {
		mag = -mag
	}
	return mag * baseEps * (factor - 1) * 1.25
}

// relErrPenalty prices an AccuracyLadder step's predicted relative error
// into the bound with the same 1.25 slack as epsPenalty. The two agree
// on the scalar ladder: a factor-f relaxation predicts a relative error
// of about baseEps·(f−1), which is exactly epsPenalty's model.
func relErrPenalty(epol, relErr float64) float64 {
	if relErr <= 0 {
		return 0
	}
	mag := epol
	if mag < 0 {
		mag = -mag
	}
	return mag * relErr * 1.25
}

// Run executes one supervised computation of s.
func Run(s *gb.System, spec Spec) (*Outcome, error) {
	if spec.Processes < 1 {
		return nil, fmt.Errorf("supervise: Processes=%d must be at least 1", spec.Processes)
	}
	retries := spec.Retries
	if retries <= 0 {
		retries = 2
	}
	backoffBase := spec.BackoffBase
	if backoffBase <= 0 {
		backoffBase = 2 * time.Millisecond
	}
	ladder := spec.EpsLadder
	if len(ladder) == 0 {
		ladder = []float64{1.5, 2.25}
	}
	store := spec.Store
	if store == nil {
		store = NewMemStore()
	}
	clock := spec.Clock
	if clock == nil {
		clock = time.Now
	}
	var deadline time.Time
	if spec.Deadline > 0 {
		deadline = clock().Add(spec.Deadline)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	rec := spec.Obs

	out := &Outcome{EpsFactor: 1}
	curSys := s
	curP := spec.Processes
	curFactor := 1.0
	curRelErr := 0.0
	var curAcc gb.Accuracy
	baseEps := s.Params.EpsEpol
	if spec.StartEpsFactor > 1 {
		curFactor = spec.StartEpsFactor
		curSys = s.WithRelaxedEps(curFactor)
		rec.Count("supervise.preshed", 1)
		rec.Event(0, "supervise", fmt.Sprintf("pre-shed: start at eps factor %.3g", curFactor))
	}

	expired := func() bool {
		return !deadline.IsZero() && clock().After(deadline)
	}
	canceled := func() error {
		if spec.Context == nil {
			return nil
		}
		if err := spec.Context.Err(); err != nil {
			rec.Count("supervise.canceled", 1)
			return fmt.Errorf("%w: %w", ErrCanceled, err)
		}
		return nil
	}

	// attempt runs one rung. On success it finalizes out and returns true.
	attemptNo := 0
	attempt := func(rung Rung, policy gb.FaultPolicy, inject bool) (bool, error) {
		if err := canceled(); err != nil {
			return false, err
		}
		n := attemptNo
		attemptNo++
		rec.Count("supervise.attempts", 1)
		rec.Event(0, "supervise", fmt.Sprintf("attempt %d rung=%s P=%d eps=%.3g", n, rung, curP, curFactor))

		var cfg *gb.FaultConfig
		if inject && spec.Plan != nil {
			cfg = &gb.FaultConfig{Plan: spec.Plan(n), Policy: policy, ForceProtocol: true}
		} else {
			cfg = &gb.FaultConfig{Policy: policy, ForceProtocol: true}
		}
		resume, err := store.Latest()
		if err != nil {
			return false, fmt.Errorf("supervise: reading checkpoint store: %w", err)
		}
		dropped := false
		if resume != nil {
			if rerr := curSys.CanResume(resume); rerr != nil {
				// The stored snapshot cannot resume this configuration —
				// typically an AccuracyLadder step changed the expansion
				// order and with it the integral payload shape. Recompute
				// from scratch instead of failing the attempt.
				resume = nil
				dropped = true
				rec.Count("supervise.checkpoint_dropped", 1)
				rec.Event(0, "supervise", fmt.Sprintf("attempt %d drops stale checkpoint: %v", n, rerr))
			}
		}
		// The attempt recorder reads time through the perf boundary so its
		// spans carry real durations — without a clock every trace the
		// sink persists would be zero-width. Summary stays deterministic
		// either way (it never renders timestamps).
		runRec := obs.NewRecorder(perf.StartTimer().Elapsed)
		tc := spec.Trace
		if !tc.IsZero() {
			tc.Attempt = n + 1
			runRec.SetLabel(fmt.Sprintf("%s attempt %d", tc.Job, n+1))
		}
		res, err := curSys.Run(gb.RunSpec{
			Processes:         curP,
			ThreadsPerProcess: spec.ThreadsPerProcess,
			Faults:            cfg,
			Obs:               runRec,
			Trace:             tc,
			Checkpoint:        store,
			Resume:            resume,
			Ctx:               spec.Context,
		})
		if spec.TraceSink != nil {
			spec.TraceSink(n+1, runRec)
		}
		ar := AttemptRecord{
			Attempt: n, Rung: rung, Processes: curP, EpsFactor: curFactor,
			Accuracy: curAcc, DroppedCheckpoint: dropped,
		}
		if resume != nil {
			ar.ResumedFrom = resume.Phase
		}
		if err != nil {
			ar.Err = err.Error()
			out.Attempts = append(out.Attempts, ar)
			rec.Count("supervise.failures", 1)
			rec.Event(0, "supervise", fmt.Sprintf("attempt %d failed: %v", n, err))
			// A cancellation abandons the ladder: the run already saved
			// its newest phase snapshot, and the caller (a draining
			// daemon) will resume it in a later process.
			if errors.Is(err, gb.ErrRunCanceled) {
				return false, fmt.Errorf("%w: %w", ErrCanceled, err)
			}
			if cerr := canceled(); cerr != nil {
				return false, cerr
			}
			return false, nil
		}
		out.Attempts = append(out.Attempts, ar)
		if curRelErr > 0 {
			res.ErrorBound += relErrPenalty(res.Epol, curRelErr)
		} else {
			res.ErrorBound += epsPenalty(res.Epol, baseEps, curFactor)
		}
		out.Result = res
		out.Rung = rung
		out.EpsFactor = curFactor
		out.Accuracy = curSys.Params.EffectiveAccuracy()
		out.RelError = curRelErr
		out.Degraded = res.Degraded || curFactor > 1 || curRelErr > 0 || rung == RungFallback
		out.Result.Degraded = out.Degraded
		out.Recorder = runRec
		rec.Count("supervise.successes", 1)
		return true, nil
	}

	escalate := func(to Rung) {
		rec.Count("supervise.escalations", 1)
		rec.Event(0, "supervise", "escalate to "+to.String())
	}

	fallback := func() (*Outcome, error) {
		escalate(RungFallback)
		curP = 1
		// The fallback keeps the current (possibly relaxed) system: its
		// checkpoints — saved under relaxed ε — stay internally
		// consistent, and the ε penalty already accrued stays priced in.
		ok, err := attempt(RungFallback, gb.Recover, false)
		if err != nil {
			return nil, err
		}
		if !ok {
			// A serial run with no injection cannot crash or time out; a
			// failure here means the environment itself is broken.
			return nil, fmt.Errorf("supervise: fallback attempt failed: %s", out.Attempts[len(out.Attempts)-1].Err)
		}
		return out, nil
	}

	// Rung: initial.
	ok, err := attempt(RungInitial, spec.Policy, true)
	if err != nil {
		return nil, err
	}
	if ok {
		return out, nil
	}

	// Rung: retry (budgeted, backoff modeled).
	for r := 0; r < retries; r++ {
		if expired() {
			out.DeadlineExceeded = true
			rec.Count("supervise.deadline_exceeded", 1)
			return fallback()
		}
		backoff := backoffBase << uint(r)
		backoff += time.Duration(rng.Int63n(int64(backoff))) // jitter in [1,2)·base
		out.BackoffModeled += backoff
		if r == 0 {
			escalate(RungRetry)
		}
		if ok, err := attempt(RungRetry, spec.Policy, true); err != nil || ok {
			return out, err
		}
	}

	// Rung: shrink to the checkpoint's live membership.
	if expired() {
		out.DeadlineExceeded = true
		rec.Count("supervise.deadline_exceeded", 1)
		return fallback()
	}
	if ck, err := store.Latest(); err == nil && ck != nil && len(ck.Live) > 0 && len(ck.Live) < curP {
		escalate(RungShrink)
		curP = len(ck.Live)
		if ok, err := attempt(RungShrink, spec.Policy, true); err != nil || ok {
			return out, err
		}
	}

	// Rung: relax, one notch per attempt. With an AccuracyLadder the
	// notches are the tuner's admissible-frontier points (skipping any
	// that do not loosen the energy criterion beyond the current point);
	// otherwise the scalar ε factors. Scalar notches at or below a
	// pre-shed StartEpsFactor are already in effect and are skipped.
	if len(spec.AccuracyLadder) > 0 {
		for _, step := range spec.AccuracyLadder {
			cur := curSys.Params.EffectiveAccuracy()
			if step.Accuracy.OpeningFactor(1) >= cur.OpeningFactor(1) {
				continue // not looser than where we already are
			}
			if expired() {
				out.DeadlineExceeded = true
				rec.Count("supervise.deadline_exceeded", 1)
				return fallback()
			}
			escalate(RungRelax)
			ws, werr := s.WithAccuracy(step.Accuracy)
			if werr != nil {
				return nil, fmt.Errorf("supervise: accuracy ladder step: %w", werr)
			}
			curSys = ws
			curAcc = step.Accuracy
			curRelErr = step.RelError
			if baseEps > 0 {
				curFactor = curSys.Params.EpsEpol / baseEps
			}
			if ok, err := attempt(RungRelax, spec.Policy, true); err != nil || ok {
				return out, err
			}
		}
	} else {
		for _, f := range ladder {
			if f <= curFactor {
				continue
			}
			if expired() {
				out.DeadlineExceeded = true
				rec.Count("supervise.deadline_exceeded", 1)
				return fallback()
			}
			escalate(RungRelax)
			curFactor = f
			curSys = s.WithRelaxedEps(f)
			if ok, err := attempt(RungRelax, spec.Policy, true); err != nil || ok {
				return out, err
			}
		}
	}

	// Rung: degrade — accept a partial energy with its rigorous bound.
	if !expired() {
		escalate(RungDegrade)
		if ok, err := attempt(RungDegrade, gb.Degrade, true); err != nil || ok {
			return out, err
		}
	} else {
		out.DeadlineExceeded = true
		rec.Count("supervise.deadline_exceeded", 1)
	}

	return fallback()
}
