package supervise

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gbpolar/internal/fault"
	"gbpolar/internal/gb"
)

// fakeClock advances by step on every read, so deadline checks see time
// passing without the test sleeping.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (c *fakeClock) read() time.Time {
	c.now = c.now.Add(c.step)
	return c.now
}

// alwaysCrash returns a Plan func killing every rank of a P-rank world
// on every injected attempt.
func alwaysCrash(P int) func(int) *fault.Plan {
	return func(int) *fault.Plan { return crashAll(P, 1) }
}

func rungs(out *Outcome) []Rung {
	rs := make([]Rung, len(out.Attempts))
	for i, a := range out.Attempts {
		rs[i] = a.Rung
	}
	return rs
}

func TestZeroDeadlineWalksTheWholeLadder(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	out, err := Run(s, Spec{
		Processes: P,
		Plan:      alwaysCrash(P),
		Retries:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.DeadlineExceeded {
		t.Error("zero deadline reported DeadlineExceeded")
	}
	want := []Rung{RungInitial, RungRetry, RungRelax, RungRelax, RungDegrade, RungFallback}
	if got := rungs(out); !reflect.DeepEqual(got, want) {
		t.Errorf("ladder walk %v, want %v", got, want)
	}
	if out.Rung != RungFallback || !out.Degraded || out.Result == nil {
		t.Errorf("terminal outcome rung=%s degraded=%v", out.Rung, out.Degraded)
	}
}

// TestExpiredDeadlineBeforeFirstRetry pins the deadline edge case: the
// budget is already spent when the first attempt fails, so every
// intermediate rung is skipped and the supervisor jumps straight to the
// fallback — exactly two attempts, initial and fallback.
func TestExpiredDeadlineBeforeFirstRetry(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	clk := &fakeClock{now: time.Unix(1000, 0), step: 10 * time.Millisecond}
	out, err := Run(s, Spec{
		Processes: P,
		Plan:      alwaysCrash(P),
		Deadline:  time.Millisecond, // expired by the first post-attempt check
		Clock:     clk.read,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.DeadlineExceeded {
		t.Error("expired deadline not reported")
	}
	want := []Rung{RungInitial, RungFallback}
	if got := rungs(out); !reflect.DeepEqual(got, want) {
		t.Errorf("ladder walk %v, want %v", got, want)
	}
	if out.Result == nil || out.Rung != RungFallback || !out.Degraded {
		t.Errorf("fallback outcome rung=%s degraded=%v", out.Rung, out.Degraded)
	}
}

// TestRetryBudgetExhaustedAtEveryRung pins the budget accounting: with a
// plan that kills every attempt, each rung consumes exactly its budget
// (Retries for the retry rung, one per ladder notch, one for degrade)
// before the terminal fallback completes.
func TestRetryBudgetExhaustedAtEveryRung(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	out, err := Run(s, Spec{
		Processes: P,
		Plan:      alwaysCrash(P),
		Retries:   3,
		EpsLadder: []float64{1.5, 2.25, 4.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Rung{RungInitial, RungRetry, RungRetry, RungRetry,
		RungRelax, RungRelax, RungRelax, RungDegrade, RungFallback}
	if got := rungs(out); !reflect.DeepEqual(got, want) {
		t.Errorf("ladder walk %v, want %v", got, want)
	}
	for i, a := range out.Attempts[:len(out.Attempts)-1] {
		if a.Err == "" {
			t.Errorf("attempt %d (%s) recorded no failure", i, a.Rung)
		}
	}
	if last := out.Attempts[len(out.Attempts)-1]; last.Err != "" || last.Processes != 1 {
		t.Errorf("fallback record %+v, want success at P=1", last)
	}
}

// TestAuditOrderingUnderSeededBackoff pins the audit trail: attempt
// numbers are dense and ascending, the eps factors follow the ladder,
// and the same seed reproduces the identical walk and modeled backoff
// while a different seed draws different jitter.
func TestAuditOrderingUnderSeededBackoff(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	run := func(seed int64) *Outcome {
		out, err := Run(s, Spec{
			Processes: P,
			Plan:      alwaysCrash(P),
			Retries:   2,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	if !reflect.DeepEqual(a.Attempts, b.Attempts) {
		t.Errorf("same seed produced different audit trails:\n%+v\n%+v", a.Attempts, b.Attempts)
	}
	if a.BackoffModeled != b.BackoffModeled {
		t.Errorf("same seed, different modeled backoff: %v vs %v", a.BackoffModeled, b.BackoffModeled)
	}
	if a.BackoffModeled == c.BackoffModeled {
		t.Errorf("different seeds drew identical backoff jitter %v", a.BackoffModeled)
	}
	for i, ar := range a.Attempts {
		if ar.Attempt != i {
			t.Errorf("attempt record %d carries number %d", i, ar.Attempt)
		}
		if i > 0 && ar.Rung < a.Attempts[i-1].Rung {
			t.Errorf("rung regressed at attempt %d: %s after %s", i, ar.Rung, a.Attempts[i-1].Rung)
		}
		if i > 0 && ar.EpsFactor < a.Attempts[i-1].EpsFactor {
			t.Errorf("eps factor regressed at attempt %d", i)
		}
	}
}

func TestCanceledContextAbandonsLadder(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	out, err := Run(s, Spec{
		Processes: P,
		Context:   ctx,
		Plan: func(attempt int) *fault.Plan {
			// The drain signal arrives while the first attempt is failing.
			cancel()
			return crashAll(P, 1)
		},
	})
	if out != nil || err == nil {
		t.Fatalf("canceled supervision returned out=%v err=%v", out, err)
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap ErrCanceled and context.Canceled", err)
	}
}

func TestPreCanceledContextRunsNothing(t *testing.T) {
	s := buildSys(t, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(s, Spec{Processes: 2, Context: ctx})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled context: err=%v, want ErrCanceled", err)
	}
}

// TestStartEpsFactorPreShedsAccuracy pins the overload-shedding knob: a
// clean run started on the relax rung completes on the first attempt,
// is Degraded with the relaxation priced into ErrorBound, and the bound
// really contains the distance to the unrelaxed result.
func TestStartEpsFactorPreShedsAccuracy(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	ref, err := Run(s, Spec{Processes: P})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(s, Spec{Processes: P, StartEpsFactor: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungInitial || len(out.Attempts) != 1 {
		t.Errorf("pre-shed clean run escalated: rung=%s attempts=%d", out.Rung, len(out.Attempts))
	}
	if !out.Degraded || out.EpsFactor != 1.5 || out.Result.ErrorBound <= 0 {
		t.Errorf("pre-shed outcome degraded=%v eps=%v bound=%v",
			out.Degraded, out.EpsFactor, out.Result.ErrorBound)
	}
	if diff := math.Abs(out.Result.Epol - ref.Result.Epol); diff > out.Result.ErrorBound {
		t.Errorf("relaxed Epol %v vs %v outside bound %v",
			out.Result.Epol, ref.Result.Epol, out.Result.ErrorBound)
	}
	// A ladder notch at the pre-shed factor is skipped on escalation: the
	// walk under a killing plan never repeats factor 1.5.
	out2, err := Run(s, Spec{
		Processes:      P,
		StartEpsFactor: 1.5,
		Plan:           alwaysCrash(P),
		Retries:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	relaxed := 0
	for _, a := range out2.Attempts {
		if a.Rung == RungRelax {
			relaxed++
			if a.EpsFactor <= 1.5 {
				t.Errorf("relax rung re-ran pre-shed factor %v", a.EpsFactor)
			}
		}
	}
	if relaxed != 1 {
		t.Errorf("relax rung ran %d notches, want 1 (2.25 only)", relaxed)
	}
}

// encodeSnap builds a minimal valid encoded checkpoint for store tests.
func encodeSnap(phase gb.CheckpointPhase, tag uint32) []byte {
	return (&gb.Checkpoint{Phase: phase, Processes: 2, ConfigTag: tag,
		Payload: []float64{1, 2, 3}}).Encode()
}

func TestDirStorePrune(t *testing.T) {
	dir := t.TempDir()
	d := &DirStore{Dir: dir}
	// Two config tags interleaved in one directory, a corrupt snapshot,
	// and a stale temp file.
	if err := d.Save(gb.PhaseIntegrals, encodeSnap(gb.PhaseIntegrals, 0xAAAA)); err != nil {
		t.Fatal(err)
	}
	if err := d.Save(gb.PhaseRadii, encodeSnap(gb.PhaseRadii, 0xAAAA)); err != nil {
		t.Fatal(err)
	}
	if err := d.Save(gb.PhaseEpol, encodeSnap(gb.PhaseEpol, 0xBBBB)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "phase-9-bogus.gbcp"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".ckpt-stale"), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}

	removed, err := d.Prune(1)
	if err != nil {
		t.Fatal(err)
	}
	// Evicted: the corrupt file, the stale temp, and tag AAAA's older
	// integrals snapshot. Kept: AAAA's radii and BBBB's epol.
	if removed != 3 {
		t.Errorf("Prune removed %d files, want 3", removed)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range left {
		names[e.Name()] = true
	}
	if len(names) != 2 || !names["phase-2-radii.gbcp"] || !names["phase-4-epol.gbcp"] {
		t.Errorf("surviving files %v, want radii (tag AAAA) and epol (tag BBBB)", names)
	}
	ck, err := d.Latest()
	if err != nil || ck == nil || ck.Phase != gb.PhaseEpol {
		t.Errorf("Latest after prune = %v, %v", ck, err)
	}
	// Idempotent: a second prune removes nothing.
	if removed, err := d.Prune(1); err != nil || removed != 0 {
		t.Errorf("second Prune removed %d, err %v", removed, err)
	}
	// Missing directory is a no-op.
	if removed, err := (&DirStore{Dir: filepath.Join(dir, "absent")}).Prune(1); err != nil || removed != 0 {
		t.Errorf("absent-dir Prune removed %d, err %v", removed, err)
	}
}
