package supervise

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gbpolar/internal/fault/fs"
	"gbpolar/internal/gb"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
)

func testRecorder() *obs.Recorder {
	t := perf.StartTimer()
	return obs.NewRecorder(t.Elapsed)
}

func encodedSnap(phase gb.CheckpointPhase) []byte {
	return (&gb.Checkpoint{Phase: phase, Processes: 2, ConfigTag: 7,
		Payload: []float64{1, 2, 3}}).Encode()
}

func planOrDie(t *testing.T, s string) *fs.Plan {
	t.Helper()
	p, err := fs.Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return p
}

// A transient fsync error must be absorbed by the save retry: the
// checkpoint lands durable, and the counters record what happened.
func TestDirStoreSaveRetriesSyncError(t *testing.T) {
	ffs := fs.NewFaultFS(planOrDie(t, "syncerr@0+1"))
	rec := testRecorder()
	d := &DirStore{Dir: "ckpt", FS: ffs, Obs: rec}
	if err := d.Save(gb.PhaseEpol, encodedSnap(gb.PhaseEpol)); err != nil {
		t.Fatalf("Save under one transient sync error: %v", err)
	}
	ck, err := d.Latest()
	if err != nil || ck == nil || ck.Phase != gb.PhaseEpol {
		t.Fatalf("Latest after retried save: %v %v", ck, err)
	}
	counters := rec.Counters()
	if counters["storage.sync_errors"] != 1 || counters["storage.retries"] != 1 {
		t.Fatalf("counters = %v, want sync_errors=1 retries=1", counters)
	}
	// The retried save must also survive a crash whole.
	after := &DirStore{Dir: "ckpt", FS: ffs.Crash(nil)}
	ck, err = after.Latest()
	if err != nil || ck == nil || ck.Phase != gb.PhaseEpol {
		t.Fatalf("post-crash Latest: %v %v", ck, err)
	}
}

// A disk that stays broken past the retry budget must surface the error
// to the supervisor — and leave no partial .gbcp behind.
func TestDirStoreSavePersistentENOSPC(t *testing.T) {
	ffs := fs.NewFaultFS(planOrDie(t, "enospc@0+8"))
	rec := testRecorder()
	d := &DirStore{Dir: "ckpt", FS: ffs, Obs: rec}
	if err := d.Save(gb.PhaseEpol, encodedSnap(gb.PhaseEpol)); err == nil {
		t.Fatal("Save on a full disk should fail")
	}
	if ck, err := d.Latest(); err != nil || ck != nil {
		t.Fatalf("Latest after failed save: %v %v (want nil, nil)", ck, err)
	}
	ents, err := ffs.ReadDir("ckpt")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed save left files behind: %v", ents)
	}
	if rec.Counters()["storage.retries"] != 1 {
		t.Fatalf("counters = %v, want retries=1", rec.Counters())
	}
}

// A torn write whose fsync also lies passes Save silently — the classic
// worst case. The CRC in the GBCP encoding catches it after the crash,
// and Latest quarantines the specimen instead of resuming from it.
func TestDirStoreTornWriteCaughtAfterCrash(t *testing.T) {
	ffs := fs.NewFaultFS(planOrDie(t, "torn:10@0+1,synclie@0+1"))
	d := &DirStore{Dir: "ckpt", FS: ffs}
	if err := d.Save(gb.PhaseEpol, encodedSnap(gb.PhaseEpol)); err != nil {
		t.Fatalf("torn+lied save reported failure: %v", err)
	}
	crashed := ffs.Crash(nil)
	rec := testRecorder()
	var lines []string
	after := &DirStore{Dir: "ckpt", FS: crashed, Obs: rec,
		Logf: func(f string, a ...any) { lines = append(lines, fmt.Sprintf(f, a...)) }}
	ck, err := after.Latest()
	if err != nil || ck != nil {
		t.Fatalf("Latest over torn snapshot: %v %v (want nil, nil)", ck, err)
	}
	if rec.Counters()["storage.quarantines"] != 1 {
		t.Fatalf("counters = %v, want quarantines=1", rec.Counters())
	}
	if len(lines) == 0 || !strings.Contains(lines[0], "quarantined corrupt checkpoint") {
		t.Fatalf("log lines = %v", lines)
	}
	qents, err := crashed.ReadDir("ckpt/quarantine")
	if err != nil || len(qents) != 1 {
		t.Fatalf("quarantine dir: %v %v (want the one torn file)", qents, err)
	}
}

// Double corruption of the same phase file: the second specimen gets a
// collision suffix; neither is lost, and resume still degrades to the
// surviving earlier phase.
func TestDirStoreQuarantineDoubleCorrupt(t *testing.T) {
	dir := t.TempDir()
	rec := testRecorder()
	d := &DirStore{Dir: dir, Obs: rec}
	if err := d.Save(gb.PhaseIntegrals, encodedSnap(gb.PhaseIntegrals)); err != nil {
		t.Fatalf("save integrals: %v", err)
	}
	epolPath := d.path(gb.PhaseEpol)
	for round := 1; round <= 2; round++ {
		if err := os.WriteFile(epolPath, []byte(fmt.Sprintf("garbage round %d", round)), 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := d.Latest()
		if err != nil || ck == nil || ck.Phase != gb.PhaseIntegrals {
			t.Fatalf("round %d: Latest = %v %v, want the integrals snapshot", round, ck, err)
		}
	}
	qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatalf("quarantine dir: %v", err)
	}
	if len(qents) != 2 {
		t.Fatalf("quarantine holds %d files, want both specimens: %v", len(qents), qents)
	}
	base := filepath.Base(epolPath)
	if qents[0].Name() != base || qents[1].Name() != base+".1" {
		t.Fatalf("quarantine names: %s, %s (want %s and %s.1)",
			qents[0].Name(), qents[1].Name(), base, base)
	}
	if rec.Counters()["storage.quarantines"] != 2 {
		t.Fatalf("counters = %v, want quarantines=2", rec.Counters())
	}
	// The quarantine subdirectory must not count against, or be touched
	// by, Prune.
	if _, err := d.Prune(1); err != nil {
		t.Fatalf("Prune with quarantine present: %v", err)
	}
	if qents, _ := os.ReadDir(filepath.Join(dir, "quarantine")); len(qents) != 2 {
		t.Fatalf("Prune disturbed the quarantine: %v", qents)
	}
}
