package supervise

import (
	"math"
	"reflect"
	"testing"

	"gbpolar/internal/fault"
	"gbpolar/internal/gb"
	"gbpolar/internal/obs"
)

// crashFirst builds a plan source that crashes every rank of the first n
// attempts at op and injects nothing afterwards.
func crashFirst(n int, P int, op int64) func(int) *fault.Plan {
	return func(attempt int) *fault.Plan {
		if attempt < n {
			return crashAll(P, op)
		}
		return nil
	}
}

// TestAccuracyLadderStepsFrontier pins the PR 8 relax rung: with an
// AccuracyLadder set, escalation steps down the tuner's admissible
// frontier instead of scaling ε blindly — the winning attempt runs at
// the step's full accuracy point, the step's predicted relative error is
// priced into ErrorBound, and the outcome reports both.
func TestAccuracyLadderStepsFrontier(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	steps := []RelaxStep{
		{Accuracy: gb.Accuracy{EpsBorn: 1.35, EpsEpol: 1.35, QuadOrder: 1, Order: 1}, RelError: 0.03},
		{Accuracy: gb.Accuracy{EpsBorn: 2.0, EpsEpol: 2.0, QuadOrder: 1, Order: 1}, RelError: 0.05},
	}
	rec := obs.NewRecorder(nil)
	out, err := Run(s, Spec{
		Processes:      P,
		Plan:           crashFirst(2, P, 1),
		Retries:        1,
		AccuracyLadder: steps,
		Obs:            rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rungs(out), []Rung{RungInitial, RungRetry, RungRelax}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ladder walk %v, want %v", got, want)
	}
	if !out.Degraded {
		t.Error("accuracy-shed outcome not marked Degraded")
	}
	if out.RelError != steps[0].RelError {
		t.Errorf("RelError = %v, want the step's %v", out.RelError, steps[0].RelError)
	}
	if out.Accuracy.EpsEpol != 1.35 || out.Accuracy.Order != 1 {
		t.Errorf("outcome accuracy %+v, want the first ladder step's point", out.Accuracy)
	}
	wantBound := math.Abs(out.Result.Epol) * steps[0].RelError * 1.25
	if out.Result.ErrorBound < wantBound {
		t.Errorf("ErrorBound %v does not price the shed accuracy (want ≥ %v)",
			out.Result.ErrorBound, wantBound)
	}
	last := out.Attempts[len(out.Attempts)-1]
	if last.Accuracy.EpsEpol != 1.35 {
		t.Errorf("winning attempt record carries accuracy %+v", last.Accuracy)
	}
	if last.Err != "" {
		t.Errorf("winning attempt recorded failure %q", last.Err)
	}
}

// TestAccuracyLadderSkipsTighterSteps pins the skip rule: a ladder step
// that does not loosen the energy criterion beyond the current point is
// skipped without consuming an attempt — escalation only ever relaxes.
func TestAccuracyLadderSkipsTighterSteps(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	steps := []RelaxStep{
		// Tighter than the default 0.9 point: must be skipped.
		{Accuracy: gb.Accuracy{EpsBorn: 0.45, EpsEpol: 0.45, QuadOrder: 1, Order: 1}, RelError: 0.001},
		{Accuracy: gb.Accuracy{EpsBorn: 1.35, EpsEpol: 1.35, QuadOrder: 1, Order: 1}, RelError: 0.03},
	}
	out, err := Run(s, Spec{
		Processes:      P,
		Plan:           crashFirst(2, P, 1),
		Retries:        1,
		AccuracyLadder: steps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rungs(out), []Rung{RungInitial, RungRetry, RungRelax}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ladder walk %v, want %v (tight step must not consume an attempt)", got, want)
	}
	if out.Accuracy.EpsEpol != 1.35 {
		t.Errorf("outcome accuracy %+v, want the loosening step's point", out.Accuracy)
	}
	if out.RelError != 0.03 {
		t.Errorf("RelError = %v, want 0.03", out.RelError)
	}
}

// TestAccuracyLadderDropsMismatchedCheckpoint pins the payload-shape
// guard: when a ladder step changes the expansion order, the checkpoint
// saved by earlier attempts cannot resume the new configuration — the
// supervisor detects it, recomputes from scratch, and counts the drop,
// instead of failing the attempt on a codec error.
func TestAccuracyLadderDropsMismatchedCheckpoint(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	steps := []RelaxStep{
		// Order 2 at the same ε is looser on the energy criterion (the
		// order-aware factor shrinks with p) but its integrals payload has
		// 9 extra floats per surface point.
		{Accuracy: gb.Accuracy{EpsBorn: 0.9, EpsEpol: 0.9, QuadOrder: 1, Order: 2}, RelError: 0.02},
	}
	rec := obs.NewRecorder(nil)
	out, err := Run(s, Spec{
		Processes: P,
		// Attempt 0 crashes past the integrals tick, leaving a
		// PhaseIntegrals snapshot (at the base dipole shape) in the store;
		// the retry crashes immediately after resuming, before it can save
		// a later (order-independent) radii snapshot — so the relax step
		// faces the shape-mismatched integrals checkpoint.
		Plan: func(attempt int) *fault.Plan {
			switch attempt {
			case 0:
				return crashAll(P, 4)
			case 1:
				return crashAll(P, 1)
			}
			return nil
		},
		Retries:        1,
		AccuracyLadder: steps,
		Obs:            rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungRelax || out.Accuracy.Order != 2 {
		t.Fatalf("outcome rung=%s accuracy=%+v, want the order-2 relax step", out.Rung, out.Accuracy)
	}
	last := out.Attempts[len(out.Attempts)-1]
	if !last.DroppedCheckpoint {
		t.Error("order-changing step did not report the dropped checkpoint")
	}
	if last.ResumedFrom != gb.PhaseNone {
		t.Errorf("order-changing step resumed from %s, want from scratch", last.ResumedFrom)
	}
	if rec.Counters()["supervise.checkpoint_dropped"] == 0 {
		t.Error("supervise.checkpoint_dropped counter not incremented")
	}
}
