package supervise

import (
	"math"
	"os"
	"testing"
	"time"

	"gbpolar/internal/fault"
	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/surface"
)

func buildSys(t *testing.T, n int) *gb.System {
	t.Helper()
	m := molecule.Globule("supervised", n, 7)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := gb.NewSystem(m, surf, gb.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// crashAll returns a plan killing every rank of a P-rank world at op.
func crashAll(P int, op int64) *fault.Plan {
	pl := &fault.Plan{}
	for r := 0; r < P; r++ {
		pl.Events = append(pl.Events, fault.Event{Kind: fault.Crash, Rank: r, AtOp: op})
	}
	return pl
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}

func TestCleanRunStaysOnInitialRung(t *testing.T) {
	s := buildSys(t, 300)
	out, err := Run(s, Spec{Processes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungInitial || out.Degraded || len(out.Attempts) != 1 {
		t.Fatalf("clean run escalated: rung=%s degraded=%v attempts=%d", out.Rung, out.Degraded, len(out.Attempts))
	}
	serial := s.RunSerial()
	if rel := relDiff(out.Result.Epol, serial.Epol); rel > 1e-10 {
		t.Errorf("supervised Epol off serial by %v", rel)
	}
	if out.Recorder == nil || out.Recorder.Summary() == "" {
		t.Error("no run recorder returned")
	}
}

func TestRetryResumesFromCheckpoint(t *testing.T) {
	// The first attempt's quorum dies entering the energy phase — after
	// the aggregates checkpoint. The retry must resume there, complete,
	// and be bitwise the uninterrupted forced-protocol run.
	const P = 4
	s := buildSys(t, 300)

	ref, err := s.Run(gb.RunSpec{Processes: P, Faults: &gb.FaultConfig{ForceProtocol: true}})
	if err != nil {
		t.Fatal(err)
	}

	out, err := Run(s, Spec{
		Processes: P,
		Plan: func(attempt int) *fault.Plan {
			if attempt == 0 {
				return crashAll(P, 7)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungRetry {
		t.Fatalf("rung = %s, want retry", out.Rung)
	}
	if out.Degraded || out.Result.Degraded {
		t.Error("successful resumed retry marked Degraded")
	}
	if out.Result.Epol != ref.Epol {
		t.Errorf("resumed retry Epol %v != uninterrupted %v", out.Result.Epol, ref.Epol)
	}
	if len(out.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want 2", out.Attempts)
	}
	if out.Attempts[1].ResumedFrom != gb.PhaseAggregates {
		t.Errorf("retry resumed from %s, want aggregates", out.Attempts[1].ResumedFrom)
	}
	if out.BackoffModeled <= 0 {
		t.Error("no backoff modeled for the retry")
	}
}

func TestShrinkRungUsesCheckpointMembership(t *testing.T) {
	// The store holds an aggregates checkpoint whose agreed live set is
	// {0, 1}; every full-width attempt dies instantly. The shrink rung
	// must resume at P = 2 and complete.
	const P = 4
	s := buildSys(t, 300)

	// Capture the run's aggregates snapshot, then shrink its membership.
	store := NewMemStore()
	full, err := s.Run(gb.RunSpec{Processes: P, Faults: &gb.FaultConfig{ForceProtocol: true}, Checkpoint: rewindSink{store, gb.PhaseAggregates}})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := store.Latest()
	if err != nil || ck == nil || ck.Phase != gb.PhaseAggregates {
		t.Fatalf("rewound store latest = %+v, %v", ck, err)
	}
	ck.Live = []int{0, 1}
	ck.Lost = []int{2, 3}
	if err := store.Save(ck.Phase, ck.Encode()); err != nil {
		t.Fatal(err)
	}

	out, err := Run(s, Spec{
		Processes: P,
		Retries:   1,
		Store:     store,
		Plan: func(attempt int) *fault.Plan {
			if attempt <= 1 { // initial + the single retry
				return crashAll(P, 0)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungShrink {
		t.Fatalf("rung = %s, want shrink (attempts %+v)", out.Rung, out.Attempts)
	}
	last := out.Attempts[len(out.Attempts)-1]
	if last.Processes != 2 || last.ResumedFrom != gb.PhaseAggregates {
		t.Errorf("shrink attempt = %+v, want P=2 resumed from aggregates", last)
	}
	if rel := relDiff(out.Result.Epol, full.Epol); rel > 1e-9 {
		t.Errorf("shrunk resume Epol off by %v", rel)
	}
}

// rewindSink forwards saves up to and including maxPhase, so a store can
// be left holding a mid-run snapshot of a completed run.
type rewindSink struct {
	dst      Store
	maxPhase gb.CheckpointPhase
}

func (r rewindSink) Save(phase gb.CheckpointPhase, encoded []byte) error {
	if phase > r.maxPhase {
		return nil
	}
	return r.dst.Save(phase, encoded)
}

func TestQuorumLossDescendsToDegradedFallback(t *testing.T) {
	// Every injected attempt dies at op 0, before any checkpoint exists:
	// retries, relaxed-ε attempts, and the degrade attempt all fail. The
	// fallback must still return a finite, Degraded result instead of an
	// error — the tentpole acceptance scenario.
	const P = 4
	s := buildSys(t, 300)
	rec := obs.NewRecorder(nil)
	out, err := Run(s, Spec{
		Processes: P,
		Obs:       rec,
		Plan:      func(int) *fault.Plan { return crashAll(P, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungFallback {
		t.Fatalf("rung = %s, want fallback (attempts %+v)", out.Rung, out.Attempts)
	}
	if !out.Degraded || !out.Result.Degraded {
		t.Error("fallback result not marked Degraded")
	}
	if !(out.Result.ErrorBound > 0) || math.IsInf(out.Result.ErrorBound, 0) || math.IsNaN(out.Result.ErrorBound) {
		t.Errorf("ErrorBound = %v, want finite and positive (ε was relaxed on the way down)", out.Result.ErrorBound)
	}
	serial := s.RunSerial()
	if math.Abs(out.Result.Epol-serial.Epol) > out.Result.ErrorBound+1e-9*math.Abs(serial.Epol) {
		t.Errorf("|Epol−serial| = %v exceeds bound %v", math.Abs(out.Result.Epol-serial.Epol), out.Result.ErrorBound)
	}
	if out.EpsFactor <= 1 {
		t.Errorf("EpsFactor = %v, want relaxed", out.EpsFactor)
	}
	counters := rec.Counters()
	if counters["supervise.attempts"] < 5 {
		t.Errorf("supervise.attempts = %d, want the whole ladder walked", counters["supervise.attempts"])
	}
	if counters["supervise.escalations"] < 3 {
		t.Errorf("supervise.escalations = %d, want at least retry→relax→fallback", counters["supervise.escalations"])
	}
}

func TestSupervisorIsDeterministic(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	run := func() *Outcome {
		out, err := Run(s, Spec{
			Processes: P,
			Seed:      42,
			Plan:      func(int) *fault.Plan { return crashAll(P, 0) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.BackoffModeled != b.BackoffModeled {
		t.Errorf("backoff differs across same-seed walks: %v vs %v", a.BackoffModeled, b.BackoffModeled)
	}
	if len(a.Attempts) != len(b.Attempts) || a.Rung != b.Rung {
		t.Errorf("ladder walk differs: %d/%s vs %d/%s", len(a.Attempts), a.Rung, len(b.Attempts), b.Rung)
	}
	if a.Result.Epol != b.Result.Epol {
		t.Errorf("same-seed supervised Epol differs: %v vs %v", a.Result.Epol, b.Result.Epol)
	}
}

func TestDeadlineJumpsToFallback(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	// A clock that leaps an hour per reading: the deadline is already
	// history when the first retry would start.
	now := time.Unix(0, 0)
	clock := func() time.Time {
		now = now.Add(time.Hour)
		return now
	}
	out, err := Run(s, Spec{
		Processes: P,
		Deadline:  time.Minute,
		Clock:     clock,
		Plan:      func(int) *fault.Plan { return crashAll(P, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.DeadlineExceeded {
		t.Error("DeadlineExceeded not set")
	}
	if out.Rung != RungFallback {
		t.Errorf("rung = %s, want fallback", out.Rung)
	}
	if len(out.Attempts) != 2 {
		t.Errorf("attempts = %+v, want initial + fallback only", out.Attempts)
	}
	if !out.Degraded {
		t.Error("deadline fallback not marked Degraded")
	}
}

func TestDirStore(t *testing.T) {
	s := buildSys(t, 300)
	dir := t.TempDir()
	store := &DirStore{Dir: dir}
	if ck, err := store.Latest(); err != nil || ck != nil {
		t.Fatalf("empty store Latest = %+v, %v", ck, err)
	}
	if _, err := s.Run(gb.RunSpec{Processes: 2, Checkpoint: store}); err != nil {
		t.Fatal(err)
	}
	ck, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Phase != gb.PhaseEpol {
		t.Fatalf("Latest phase = %v, want epol", ck)
	}
	// Damage the newest file: Latest must fall back to the previous phase
	// instead of failing or trusting the bytes.
	if err := writeFileGarbage(store.path(gb.PhaseEpol)); err != nil {
		t.Fatal(err)
	}
	ck, err = store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Phase != gb.PhaseAggregates {
		t.Fatalf("Latest after damage = %+v, want aggregates", ck)
	}
}

func writeFileGarbage(path string) error {
	return os.WriteFile(path, []byte("truncated or corrupt checkpoint bytes"), 0o644)
}

func TestMemStoreKeepsNewestPhase(t *testing.T) {
	s := buildSys(t, 300)
	store := NewMemStore()
	if _, err := s.Run(gb.RunSpec{Processes: 2, Checkpoint: store}); err != nil {
		t.Fatal(err)
	}
	ck, _ := store.Latest()
	if ck.Phase != gb.PhaseEpol {
		t.Fatalf("phase = %s", ck.Phase)
	}
	// An earlier-phase save (a resumed run re-entering mid-pipeline) must
	// not regress the stored snapshot.
	if err := store.Save(gb.PhaseIntegrals, []byte("ignored")); err != nil {
		t.Fatal(err)
	}
	ck, _ = store.Latest()
	if ck == nil || ck.Phase != gb.PhaseEpol {
		t.Fatal("MemStore regressed to an earlier phase")
	}
}

// TestTraceThreadedThroughAttempts: the Spec's trace identity lands on
// every attempt's run recorder with the 1-based attempt number, the
// TraceSink fires for failed and successful attempts alike, and every
// sunk recorder has a balanced (fully closed) span tree with spans from
// every rank.
func TestTraceThreadedThroughAttempts(t *testing.T) {
	const P = 3
	s := buildSys(t, 300)
	type sunk struct {
		attempt int
		rec     *obs.Recorder
	}
	var got []sunk
	out, err := Run(s, Spec{
		Processes: P,
		Trace:     obs.TraceContext{TraceID: "t-trace", Job: "j-trace", Tenant: "acme"},
		TraceSink: func(attempt int, rec *obs.Recorder) {
			got = append(got, sunk{attempt, rec})
		},
		Plan: func(attempt int) *fault.Plan {
			if attempt == 0 {
				return crashAll(P, 7)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungRetry {
		t.Fatalf("rung = %s, want retry", out.Rung)
	}
	if len(got) != 2 {
		t.Fatalf("sink fired %d times, want 2 (failed initial + successful retry)", len(got))
	}
	for i, sk := range got {
		if sk.attempt != i+1 {
			t.Errorf("sink %d: attempt = %d, want %d", i, sk.attempt, i+1)
		}
		tc := sk.rec.Trace()
		if tc.TraceID != "t-trace" || tc.Job != "j-trace" || tc.Tenant != "acme" || tc.Attempt != i+1 {
			t.Errorf("sink %d: trace = %+v", i, tc)
		}
		if open := sk.rec.OpenSpans(); open != 0 {
			t.Errorf("sink %d: %d spans left open", i, open)
		}
	}
	// The winner's recorder is the last sunk one, and its spans carry
	// real (clocked) durations and cover every rank.
	if out.Recorder != got[len(got)-1].rec {
		t.Error("Outcome.Recorder is not the last sunk recorder")
	}
	ranks := map[int]bool{}
	var maxEnd time.Duration
	for _, sp := range out.Recorder.Spans() {
		ranks[sp.Rank] = true
		if sp.End > maxEnd {
			maxEnd = sp.End
		}
	}
	for r := 0; r < P; r++ {
		if !ranks[r] {
			t.Errorf("winner trace lacks spans from rank %d", r)
		}
	}
	if maxEnd <= 0 {
		t.Error("attempt recorder has zero-width spans: the perf clock is not wired")
	}
}

// TestNoTraceMeansNoStamp: without a Spec.Trace, attempt recorders stay
// untraced (and the sink still fires when set).
func TestNoTraceMeansNoStamp(t *testing.T) {
	s := buildSys(t, 200)
	fired := 0
	out, err := Run(s, Spec{
		Processes: 2,
		TraceSink: func(attempt int, rec *obs.Recorder) {
			fired++
			if !rec.Trace().IsZero() {
				t.Errorf("attempt %d recorder carries a trace: %+v", attempt, rec.Trace())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 || len(out.Attempts) != 1 {
		t.Errorf("sink fired %d times over %d attempts", fired, len(out.Attempts))
	}
}
