package supervise

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gbpolar/internal/gb"
)

// MemStore is an in-process Store: it keeps the highest-phase snapshot
// seen. It is the default store, so a supervised retry resumes from the
// crashed attempt's progress even when nothing is persisted to disk.
type MemStore struct {
	mu    sync.Mutex
	phase gb.CheckpointPhase
	data  []byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements gb.CheckpointSink, keeping the newest (highest-phase)
// snapshot. A later attempt re-saving an earlier phase (a resumed run
// re-entering mid-pipeline) does not regress the stored snapshot.
func (m *MemStore) Save(phase gb.CheckpointPhase, encoded []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if phase < m.phase {
		return nil
	}
	m.phase = phase
	m.data = append(m.data[:0], encoded...)
	return nil
}

// Latest implements Store.
func (m *MemStore) Latest() (*gb.Checkpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.data == nil {
		return nil, nil
	}
	return gb.DecodeCheckpoint(m.data)
}

// DirStore persists snapshots under a directory, one file per phase
// ("phase-<N>-<name>.gbcp"), written atomically (temp file + rename) so
// a crash mid-write can never leave a truncated checkpoint where a
// valid one should be — and the CRC in the encoding catches anything
// that slips past.
type DirStore struct {
	// Dir is the checkpoint directory. It is created on first Save.
	Dir string
}

func (d *DirStore) path(phase gb.CheckpointPhase) string {
	return filepath.Join(d.Dir, fmt.Sprintf("phase-%d-%s.gbcp", int(phase), phase))
}

// Save implements gb.CheckpointSink.
func (d *DirStore) Save(phase gb.CheckpointPhase, encoded []byte) error {
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return fmt.Errorf("supervise: creating checkpoint dir: %w", err)
	}
	tmp, err := os.CreateTemp(d.Dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("supervise: creating checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(encoded); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("supervise: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("supervise: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, d.path(phase)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("supervise: publishing checkpoint: %w", err)
	}
	return nil
}

// Prune bounds the store's disk footprint: without it a long-lived
// daemon checkpointing every job grows the directory without limit. It
// removes, in order: stale ".ckpt-*" temp files (a crash between
// CreateTemp and Rename orphans them), corrupt or truncated ".gbcp"
// files (they can never be resumed, so they are evicted before any
// valid snapshot is considered), and then, per config tag, every valid
// snapshot but the newest keep (newest = highest phase: a later phase
// strictly supersedes an earlier one for resume). Each removal is a
// single atomic unlink and Latest tolerates missing files, so a Prune
// racing a reader degrades resume at worst to a newer snapshot, never
// to a torn one. keep below 1 keeps 1. Returns the number of files
// removed; a missing directory is an empty store, not an error.
func (d *DirStore) Prune(keep int) (int, error) {
	if keep < 1 {
		keep = 1
	}
	entries, err := os.ReadDir(d.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("supervise: reading checkpoint dir: %w", err)
	}
	removed := 0
	remove := func(name string) error {
		if err := os.Remove(filepath.Join(d.Dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("supervise: pruning %s: %w", name, err)
		}
		removed++
		return nil
	}
	type snap struct {
		name  string
		phase gb.CheckpointPhase
	}
	byTag := make(map[uint32][]snap)
	var tags []uint32
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
			continue
		case strings.HasPrefix(name, ".ckpt-"):
			if err := remove(name); err != nil {
				return removed, err
			}
		case strings.HasSuffix(name, ".gbcp"):
			data, err := os.ReadFile(filepath.Join(d.Dir, name))
			var ck *gb.Checkpoint
			if err == nil {
				ck, err = gb.DecodeCheckpoint(data)
			}
			if err != nil {
				// Corrupt-first eviction: an undecodable snapshot never
				// counts against the keep budget of a valid one.
				if err := remove(name); err != nil {
					return removed, err
				}
				continue
			}
			if len(byTag[ck.ConfigTag]) == 0 {
				tags = append(tags, ck.ConfigTag)
			}
			byTag[ck.ConfigTag] = append(byTag[ck.ConfigTag], snap{name, ck.Phase})
		}
	}
	for _, tag := range tags {
		snaps := byTag[tag]
		sort.Slice(snaps, func(i, j int) bool { return snaps[i].phase > snaps[j].phase })
		for _, s := range snaps[min(keep, len(snaps)):] {
			if err := remove(s.name); err != nil {
				return removed, err
			}
		}
	}
	return removed, nil
}

// Latest implements Store: the highest-phase valid checkpoint file in
// the directory. Unreadable or corrupt files are skipped (a damaged
// late checkpoint degrades resume to the previous phase instead of
// failing it); a missing directory means no checkpoint yet.
func (d *DirStore) Latest() (*gb.Checkpoint, error) {
	var best *gb.Checkpoint
	for phase := gb.PhaseEpol; phase >= gb.PhaseIntegrals; phase-- {
		data, err := os.ReadFile(d.path(phase))
		if err != nil {
			continue
		}
		ck, err := gb.DecodeCheckpoint(data)
		if err != nil {
			continue
		}
		best = ck
		break
	}
	return best, nil
}
