package supervise

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gbpolar/internal/fault/fs"
	"gbpolar/internal/gb"
	"gbpolar/internal/obs"
)

// MemStore is an in-process Store: it keeps the highest-phase snapshot
// seen. It is the default store, so a supervised retry resumes from the
// crashed attempt's progress even when nothing is persisted to disk.
type MemStore struct {
	mu    sync.Mutex
	phase gb.CheckpointPhase
	data  []byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Save implements gb.CheckpointSink, keeping the newest (highest-phase)
// snapshot. A later attempt re-saving an earlier phase (a resumed run
// re-entering mid-pipeline) does not regress the stored snapshot.
func (m *MemStore) Save(phase gb.CheckpointPhase, encoded []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if phase < m.phase {
		return nil
	}
	m.phase = phase
	m.data = append(m.data[:0], encoded...)
	return nil
}

// Latest implements Store.
func (m *MemStore) Latest() (*gb.Checkpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.data == nil {
		return nil, nil
	}
	return gb.DecodeCheckpoint(m.data)
}

// DirStore persists snapshots under a directory, one file per phase
// ("phase-<N>-<name>.gbcp"), written via the full atomic durability
// discipline (temp file + write + fsync + rename) so a crash mid-write
// can never leave a truncated checkpoint where a valid one should be —
// and the CRC in the encoding catches anything that slips past,
// including a lying fsync: Latest quarantines whatever fails to decode.
type DirStore struct {
	// Dir is the checkpoint directory. It is created on first Save.
	Dir string
	// FS is the filesystem to persist through; nil means the real disk
	// (fs.OS). Tests and the soak harness hand in a fault-injecting FS.
	FS fs.FS
	// Obs, when non-nil, receives the storage.* counters: sync_errors,
	// write_errors, retries, quarantines.
	Obs *obs.Recorder
	// Logf, when non-nil, receives one line per quarantine and per
	// abandoned temp file (the events an operator should see).
	Logf func(format string, args ...any)
}

func (d *DirStore) fsys() fs.FS {
	if d.FS != nil {
		return d.FS
	}
	return fs.OS
}

func (d *DirStore) count(name string) {
	d.Obs.Count(name, 1)
}

func (d *DirStore) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

func (d *DirStore) path(phase gb.CheckpointPhase) string {
	return filepath.Join(d.Dir, fmt.Sprintf("phase-%d-%s.gbcp", int(phase), phase))
}

// Save implements gb.CheckpointSink. A failed save is retried once from
// the top — transient ENOSPC or EIO windows are exactly what the fault
// plans inject, and a checkpoint that fails twice surfaces to the
// supervisor as an attempt failure rather than silently skipping the
// snapshot.
func (d *DirStore) Save(phase gb.CheckpointPhase, encoded []byte) error {
	first := d.saveOnce(phase, encoded)
	if first == nil {
		return nil
	}
	d.count("storage.retries")
	if retry := d.saveOnce(phase, encoded); retry != nil {
		return fmt.Errorf("%w (after retry; first error: %v)", retry, first)
	}
	return nil
}

func (d *DirStore) saveOnce(phase gb.CheckpointPhase, encoded []byte) error {
	fsys := d.fsys()
	if err := fsys.MkdirAll(d.Dir); err != nil {
		d.count("storage.write_errors")
		return fmt.Errorf("supervise: creating checkpoint dir: %w", err)
	}
	tmp, err := fsys.CreateTemp(d.Dir, ".ckpt-*")
	if err != nil {
		d.count("storage.write_errors")
		return fmt.Errorf("supervise: creating checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	discard := func() {
		if err := fsys.Remove(tmpName); err != nil && !os.IsNotExist(err) {
			d.logf("supervise: checkpoint temp %s left behind: %v", tmpName, err)
		}
	}
	if _, err := tmp.Write(encoded); err != nil {
		d.count("storage.write_errors")
		//lint:ignore erretcheck the write error supersedes the cleanup close; the temp file is discarded either way
		tmp.Close()
		discard()
		return fmt.Errorf("supervise: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		d.count("storage.sync_errors")
		//lint:ignore erretcheck the sync error supersedes the cleanup close; the temp file is discarded either way
		tmp.Close()
		discard()
		return fmt.Errorf("supervise: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		d.count("storage.write_errors")
		discard()
		return fmt.Errorf("supervise: closing checkpoint: %w", err)
	}
	if err := fsys.Rename(tmpName, d.path(phase)); err != nil {
		d.count("storage.write_errors")
		discard()
		return fmt.Errorf("supervise: publishing checkpoint: %w", err)
	}
	return nil
}

// Prune bounds the store's disk footprint: without it a long-lived
// daemon checkpointing every job grows the directory without limit. It
// removes, in order: stale ".ckpt-*" temp files (a crash between
// CreateTemp and Rename orphans them), corrupt or truncated ".gbcp"
// files (they can never be resumed, so they are evicted before any
// valid snapshot is considered), and then, per config tag, every valid
// snapshot but the newest keep (newest = highest phase: a later phase
// strictly supersedes an earlier one for resume). Each removal is a
// single atomic unlink and Latest tolerates missing files, so a Prune
// racing a reader degrades resume at worst to a newer snapshot, never
// to a torn one. keep below 1 keeps 1. Returns the number of files
// removed; a missing directory is an empty store, not an error.
func (d *DirStore) Prune(keep int) (int, error) {
	if keep < 1 {
		keep = 1
	}
	fsys := d.fsys()
	entries, err := fsys.ReadDir(d.Dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("supervise: reading checkpoint dir: %w", err)
	}
	removed := 0
	remove := func(name string) error {
		if err := fsys.Remove(filepath.Join(d.Dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("supervise: pruning %s: %w", name, err)
		}
		removed++
		return nil
	}
	type snap struct {
		name  string
		phase gb.CheckpointPhase
	}
	byTag := make(map[uint32][]snap)
	var tags []uint32
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
			continue
		case strings.HasPrefix(name, ".ckpt-"):
			if err := remove(name); err != nil {
				return removed, err
			}
		case strings.HasSuffix(name, ".gbcp"):
			data, err := fsys.ReadFile(filepath.Join(d.Dir, name))
			var ck *gb.Checkpoint
			if err == nil {
				ck, err = gb.DecodeCheckpoint(data)
			}
			if err != nil {
				// Corrupt-first eviction: an undecodable snapshot never
				// counts against the keep budget of a valid one.
				if err := remove(name); err != nil {
					return removed, err
				}
				continue
			}
			if len(byTag[ck.ConfigTag]) == 0 {
				tags = append(tags, ck.ConfigTag)
			}
			byTag[ck.ConfigTag] = append(byTag[ck.ConfigTag], snap{name, ck.Phase})
		}
	}
	for _, tag := range tags {
		snaps := byTag[tag]
		sort.Slice(snaps, func(i, j int) bool { return snaps[i].phase > snaps[j].phase })
		for _, s := range snaps[min(keep, len(snaps)):] {
			if err := remove(s.name); err != nil {
				return removed, err
			}
		}
	}
	return removed, nil
}

// Latest implements Store: the highest-phase valid checkpoint file in
// the directory. Unreadable files are skipped (a damaged late
// checkpoint degrades resume to the previous phase instead of failing
// it); files that read but fail to DECODE are quarantined to
// <dir>/quarantine/ — moved aside, counted, and logged — so a corrupt
// snapshot is preserved as evidence for the operator instead of being
// silently re-skipped on every resume, and can never poison a later
// phase scan. A missing directory means no checkpoint yet.
func (d *DirStore) Latest() (*gb.Checkpoint, error) {
	fsys := d.fsys()
	var best *gb.Checkpoint
	for phase := gb.PhaseEpol; phase >= gb.PhaseIntegrals; phase-- {
		path := d.path(phase)
		data, err := fsys.ReadFile(path)
		if err != nil {
			continue
		}
		ck, err := gb.DecodeCheckpoint(data)
		if err != nil {
			d.quarantine(path, err)
			continue
		}
		best = ck
		break
	}
	return best, nil
}

// quarantine moves a corrupt snapshot to <dir>/quarantine/, suffixing
// the name on collision so repeated corruption of the same phase file
// (the double-corrupt case) keeps every specimen. Quarantine failures
// only log: resume must proceed on whatever valid snapshots remain.
func (d *DirStore) quarantine(path string, cause error) {
	fsys := d.fsys()
	qdir := filepath.Join(d.Dir, "quarantine")
	if err := fsys.MkdirAll(qdir); err != nil {
		d.logf("supervise: creating quarantine dir for corrupt checkpoint %s: %v", path, err)
		return
	}
	base := filepath.Base(path)
	dst := filepath.Join(qdir, base)
	for i := 1; i <= 32; i++ {
		if _, err := fsys.ReadFile(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := fsys.Rename(path, dst); err != nil {
		d.logf("supervise: quarantining corrupt checkpoint %s: %v", path, err)
		return
	}
	d.count("storage.quarantines")
	d.logf("supervise: quarantined corrupt checkpoint %s -> %s: %v", path, dst, cause)
}
