package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyAABB(t *testing.T) {
	b := EmptyAABB()
	if !b.IsEmpty() {
		t.Fatal("EmptyAABB not empty")
	}
	if b.HalfDiagonal() != 0 {
		t.Errorf("HalfDiagonal of empty = %v", b.HalfDiagonal())
	}
	if b.Size() != (Vec3{}) {
		t.Errorf("Size of empty = %v", b.Size())
	}
	b = b.ExtendPoint(V(1, 2, 3))
	if b.IsEmpty() {
		t.Fatal("box empty after ExtendPoint")
	}
	if b.Min != V(1, 2, 3) || b.Max != V(1, 2, 3) {
		t.Errorf("degenerate box = %v", b)
	}
}

func TestBoundPoints(t *testing.T) {
	pts := []Vec3{V(1, 0, -1), V(-2, 3, 0), V(0, 0, 5)}
	b := BoundPoints(pts)
	if b.Min != V(-2, 0, -1) || b.Max != V(1, 3, 5) {
		t.Errorf("BoundPoints = %v", b)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box does not contain %v", p)
		}
	}
}

func TestAABBUnionIntersects(t *testing.T) {
	a := AABB{V(0, 0, 0), V(1, 1, 1)}
	b := AABB{V(2, 2, 2), V(3, 3, 3)}
	if a.Intersects(b) {
		t.Error("disjoint boxes intersect")
	}
	u := a.Union(b)
	if u.Min != V(0, 0, 0) || u.Max != V(3, 3, 3) {
		t.Errorf("Union = %v", u)
	}
	c := AABB{V(0.5, 0.5, 0.5), V(2.5, 2.5, 2.5)}
	if !a.Intersects(c) || !b.Intersects(c) {
		t.Error("overlapping boxes do not intersect")
	}
	if got := a.Union(EmptyAABB()); got != a {
		t.Errorf("Union with empty = %v", got)
	}
	if got := EmptyAABB().Union(a); got != a {
		t.Errorf("empty Union a = %v", got)
	}
	if a.Intersects(EmptyAABB()) {
		t.Error("box intersects empty")
	}
}

func TestAABBCube(t *testing.T) {
	b := AABB{V(0, 0, 0), V(4, 2, 1)}
	c := b.Cube()
	s := c.Size()
	if s.X != 4 || s.Y != 4 || s.Z != 4 {
		t.Errorf("Cube size = %v", s)
	}
	if c.Center() != b.Center() {
		t.Errorf("Cube center moved: %v vs %v", c.Center(), b.Center())
	}
	// Cube must contain the original box.
	if !c.Contains(b.Min) || !c.Contains(b.Max) {
		t.Error("Cube does not contain original corners")
	}
}

func TestOctants(t *testing.T) {
	b := AABB{V(0, 0, 0), V(2, 2, 2)}
	// The 8 octants must tile the box: equal total volume, disjoint
	// interiors, and OctantIndex must be consistent with Octant.
	for i := 0; i < 8; i++ {
		o := b.Octant(i)
		s := o.Size()
		if s.X != 1 || s.Y != 1 || s.Z != 1 {
			t.Errorf("octant %d size = %v", i, s)
		}
		c := o.Center()
		if got := b.OctantIndex(c); got != i {
			t.Errorf("OctantIndex(center of octant %d) = %d", i, got)
		}
	}
	// Points exactly at the box center go to the upper octant (7).
	if got := b.OctantIndex(b.Center()); got != 7 {
		t.Errorf("OctantIndex(center) = %d, want 7", got)
	}
}

func TestEnclosingBall(t *testing.T) {
	c, r := EnclosingBall(nil)
	if c != (Vec3{}) || r != 0 {
		t.Errorf("EnclosingBall(nil) = %v, %v", c, r)
	}
	// Symmetric set: ball is exact.
	pts := []Vec3{V(1, 0, 0), V(-1, 0, 0), V(0, 1, 0), V(0, -1, 0)}
	c, r = EnclosingBall(pts)
	if !vecAlmostEq(c, Vec3{}, eps) || !almostEq(r, 1, eps) {
		t.Errorf("EnclosingBall = %v, %v", c, r)
	}
}

// Property: every input point is inside the enclosing ball.
func TestEnclosingBallContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		pts := make([]Vec3, n)
		for i := range pts {
			pts[i] = V(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10)
		}
		c, r := EnclosingBall(pts)
		for _, p := range pts {
			if c.Dist(p) > r*(1+1e-12)+1e-12 {
				t.Fatalf("point %v outside ball c=%v r=%v", p, c, r)
			}
		}
	}
}

// Property: Union is commutative and contains both operands' corners.
func TestUnionProperties(t *testing.T) {
	f := func(a1, a2, b1, b2 [3]float64) bool {
		toV := func(a [3]float64) Vec3 { return V(clamp(a[0]), clamp(a[1]), clamp(a[2])) }
		a := BoundPoints([]Vec3{toV(a1), toV(a2)})
		b := BoundPoints([]Vec3{toV(b1), toV(b2)})
		u1, u2 := a.Union(b), b.Union(a)
		return u1 == u2 && u1.Contains(a.Min) && u1.Contains(a.Max) &&
			u1.Contains(b.Min) && u1.Contains(b.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHalfDiagonal(t *testing.T) {
	b := AABB{V(0, 0, 0), V(2, 2, 2)}
	if !almostEq(b.HalfDiagonal(), math.Sqrt(3), eps) {
		t.Errorf("HalfDiagonal = %v", b.HalfDiagonal())
	}
}
