package geom

import "math"

// Mat3 is a 3×3 matrix in row-major order.
type Mat3 [9]float64

// Identity3 returns the identity matrix.
func Identity3() Mat3 {
	return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1}
}

// MulVec applies the matrix to a vector.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z,
		m[3]*v.X + m[4]*v.Y + m[5]*v.Z,
		m[6]*v.X + m[7]*v.Y + m[8]*v.Z,
	}
}

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[3*i+k] * n[3*k+j]
			}
			r[3*i+j] = s
		}
	}
	return r
}

// Transpose returns the matrix transpose.
func (m Mat3) Transpose() Mat3 {
	return Mat3{
		m[0], m[3], m[6],
		m[1], m[4], m[7],
		m[2], m[5], m[8],
	}
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// RotationX returns the rotation matrix about the X axis by angle radians.
func RotationX(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{
		1, 0, 0,
		0, c, -s,
		0, s, c,
	}
}

// RotationY returns the rotation matrix about the Y axis by angle radians.
func RotationY(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{
		c, 0, s,
		0, 1, 0,
		-s, 0, c,
	}
}

// RotationZ returns the rotation matrix about the Z axis by angle radians.
func RotationZ(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{
		c, -s, 0,
		s, c, 0,
		0, 0, 1,
	}
}

// RotationAxis returns the rotation by angle radians about the given axis
// (Rodrigues' formula). The axis need not be normalized; a zero axis yields
// the identity.
func RotationAxis(axis Vec3, angle float64) Mat3 {
	u := axis.Unit()
	if u.Norm2() == 0 {
		return Identity3()
	}
	c, s := math.Cos(angle), math.Sin(angle)
	t := 1 - c
	x, y, z := u.X, u.Y, u.Z
	return Mat3{
		t*x*x + c, t*x*y - s*z, t*x*z + s*y,
		t*x*y + s*z, t*y*y + c, t*y*z - s*x,
		t*x*z - s*y, t*y*z + s*x, t*z*z + c,
	}
}

// Transform is a rigid-body transform: rotation followed by translation.
// The paper reuses octrees across ligand placements in docking by applying
// rigid transforms instead of rebuilding (Section IV-C, Step 1); Transform
// is the tool for that.
type Transform struct {
	R Mat3
	T Vec3
}

// IdentityTransform returns the no-op transform.
func IdentityTransform() Transform { return Transform{R: Identity3()} }

// Translate returns a pure-translation transform.
func Translate(t Vec3) Transform { return Transform{R: Identity3(), T: t} }

// Rotate returns a pure-rotation transform about the origin.
func Rotate(axis Vec3, angle float64) Transform {
	return Transform{R: RotationAxis(axis, angle)}
}

// Apply maps a point through the transform.
func (tr Transform) Apply(p Vec3) Vec3 { return tr.R.MulVec(p).Add(tr.T) }

// ApplyVector maps a direction (normal) through the transform: rotation
// only, no translation.
func (tr Transform) ApplyVector(v Vec3) Vec3 { return tr.R.MulVec(v) }

// Compose returns the transform equivalent to applying `other` first and
// then tr: (tr ∘ other)(p) = tr(other(p)).
func (tr Transform) Compose(other Transform) Transform {
	return Transform{
		R: tr.R.Mul(other.R),
		T: tr.R.MulVec(other.T).Add(tr.T),
	}
}

// Inverse returns the inverse rigid transform (assumes R is a rotation).
func (tr Transform) Inverse() Transform {
	rt := tr.R.Transpose()
	return Transform{R: rt, T: rt.MulVec(tr.T).Neg()}
}
