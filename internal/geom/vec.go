// Package geom provides the small 3-D geometry kernel used throughout the
// library: vectors, axis-aligned boxes, enclosing balls and rigid
// transforms. Everything is plain float64 value types so the hot loops in
// the energy kernels stay allocation-free.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-D vector (or point) with float64 components.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Unit returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp returns the linear interpolation (1-t)*v + t*w.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// IsFinite reports whether all components are finite (no NaN/Inf).
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z)
}

// Centroid returns the arithmetic mean of the given points. It returns the
// zero vector for an empty slice.
func Centroid(pts []Vec3) Vec3 {
	if len(pts) == 0 {
		return Vec3{}
	}
	var c Vec3
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}
