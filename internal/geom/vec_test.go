package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(-4, 5, 0.5)
	if got := a.Add(b); got != V(-3, 7, 3.5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(5, -3, 2.5) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); got != -4+10+1.5 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVecCross(t *testing.T) {
	x, y, z := V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x×y = %v, want z", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y×z = %v, want x", got)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z×x = %v, want y", got)
	}
}

func TestVecNormDist(t *testing.T) {
	v := V(3, 4, 0)
	if v.Norm() != 5 {
		t.Errorf("Norm = %v", v.Norm())
	}
	if v.Norm2() != 25 {
		t.Errorf("Norm2 = %v", v.Norm2())
	}
	if d := V(1, 1, 1).Dist(V(2, 2, 2)); !almostEq(d, math.Sqrt(3), eps) {
		t.Errorf("Dist = %v", d)
	}
}

func TestVecUnit(t *testing.T) {
	u := V(0, 0, 9).Unit()
	if u != V(0, 0, 1) {
		t.Errorf("Unit = %v", u)
	}
	if z := (Vec3{}).Unit(); z != (Vec3{}) {
		t.Errorf("Unit(0) = %v, want zero", z)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, -10, 2)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(5, -5, 1) {
		t.Errorf("Lerp(.5) = %v", got)
	}
}

func TestVecMinMax(t *testing.T) {
	a, b := V(1, 5, -2), V(3, 0, -1)
	if got := a.Min(b); got != V(1, 0, -2) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V(3, 5, -1) {
		t.Errorf("Max = %v", got)
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Vec3{}) {
		t.Errorf("Centroid(nil) = %v", got)
	}
	pts := []Vec3{V(0, 0, 0), V(2, 0, 0), V(0, 2, 0), V(0, 0, 2)}
	if got := Centroid(pts); got != V(0.5, 0.5, 0.5) {
		t.Errorf("Centroid = %v", got)
	}
}

// Property: cross product is perpendicular to both operands and its norm
// obeys the Lagrange identity |a×b|² = |a|²|b|² − (a·b)².
func TestCrossProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V(clamp(ax), clamp(ay), clamp(az))
		b := V(clamp(bx), clamp(by), clamp(bz))
		c := a.Cross(b)
		tol := 1e-9
		lagrange := a.Norm2()*b.Norm2() - a.Dot(b)*a.Dot(b)
		return almostEq(c.Dot(a), 0, tol*(1+a.Norm2()*b.Norm2())) &&
			almostEq(c.Dot(b), 0, tol*(1+a.Norm2()*b.Norm2())) &&
			almostEq(c.Norm2(), lagrange, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Dist.
func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		a := V(clamp(ax), clamp(ay), clamp(az))
		b := V(clamp(bx), clamp(by), clamp(bz))
		c := V(clamp(cx), clamp(cy), clamp(cz))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp maps arbitrary float64s from testing/quick into a sane range and
// replaces non-finite values.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e6)
}
