package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestMat3Identity(t *testing.T) {
	id := Identity3()
	v := V(1, -2, 3)
	if id.MulVec(v) != v {
		t.Errorf("I·v = %v", id.MulVec(v))
	}
	if id.Mul(id) != id {
		t.Error("I·I != I")
	}
	if id.Det() != 1 {
		t.Errorf("det(I) = %v", id.Det())
	}
}

func TestRotationBasics(t *testing.T) {
	// Rz(90°) maps x to y.
	r := RotationZ(math.Pi / 2)
	got := r.MulVec(V(1, 0, 0))
	if !vecAlmostEq(got, V(0, 1, 0), 1e-12) {
		t.Errorf("Rz(90)·x = %v", got)
	}
	// Rx(90°) maps y to z.
	got = RotationX(math.Pi / 2).MulVec(V(0, 1, 0))
	if !vecAlmostEq(got, V(0, 0, 1), 1e-12) {
		t.Errorf("Rx(90)·y = %v", got)
	}
	// Ry(90°) maps z to x.
	got = RotationY(math.Pi / 2).MulVec(V(0, 0, 1))
	if !vecAlmostEq(got, V(1, 0, 0), 1e-12) {
		t.Errorf("Ry(90)·z = %v", got)
	}
}

func TestRotationAxisMatchesAxisRotations(t *testing.T) {
	angles := []float64{0, 0.3, -1.1, math.Pi, 2.5}
	for _, a := range angles {
		pairs := []struct{ ax Mat3 }{
			{RotationX(a)}, {RotationY(a)}, {RotationZ(a)},
		}
		axes := []Vec3{V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)}
		for i, p := range pairs {
			r := RotationAxis(axes[i], a)
			for j := 0; j < 9; j++ {
				if !almostEq(r[j], p.ax[j], 1e-12) {
					t.Fatalf("axis %v angle %v entry %d: %v vs %v", axes[i], a, j, r[j], p.ax[j])
				}
			}
		}
	}
}

func TestRotationAxisZero(t *testing.T) {
	if RotationAxis(Vec3{}, 1.0) != Identity3() {
		t.Error("zero axis should give identity")
	}
}

func TestRotationIsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		axis := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		r := RotationAxis(axis, rng.Float64()*2*math.Pi)
		// R·Rᵀ = I and det = +1.
		p := r.Mul(r.Transpose())
		id := Identity3()
		for j := 0; j < 9; j++ {
			if !almostEq(p[j], id[j], 1e-10) {
				t.Fatalf("R·Rᵀ entry %d = %v", j, p[j])
			}
		}
		if !almostEq(r.Det(), 1, 1e-10) {
			t.Fatalf("det = %v", r.Det())
		}
	}
}

func TestTransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		tr := Transform{
			R: RotationAxis(V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()), rng.Float64()*6),
			T: V(rng.NormFloat64()*5, rng.NormFloat64()*5, rng.NormFloat64()*5),
		}
		inv := tr.Inverse()
		p := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		back := inv.Apply(tr.Apply(p))
		if !vecAlmostEq(back, p, 1e-10) {
			t.Fatalf("round trip %v -> %v", p, back)
		}
	}
}

func TestTransformCompose(t *testing.T) {
	a := Rotate(V(0, 0, 1), math.Pi/2)
	b := Translate(V(1, 0, 0))
	// (a∘b)(p) = a(b(p)): translate then rotate.
	p := V(0, 0, 0)
	got := a.Compose(b).Apply(p)
	want := a.Apply(b.Apply(p)) // rotate (1,0,0) by 90° about z = (0,1,0)
	if !vecAlmostEq(got, want, 1e-12) || !vecAlmostEq(got, V(0, 1, 0), 1e-12) {
		t.Errorf("compose = %v, want %v", got, want)
	}
}

func TestTransformPreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := Transform{
		R: RotationAxis(V(1, 2, 3), 1.234),
		T: V(4, -5, 6),
	}
	for i := 0; i < 50; i++ {
		p := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		q := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if !almostEq(p.Dist(q), tr.Apply(p).Dist(tr.Apply(q)), 1e-10) {
			t.Fatal("rigid transform changed a distance")
		}
	}
}

func TestApplyVectorIgnoresTranslation(t *testing.T) {
	tr := Translate(V(100, 100, 100))
	n := V(0, 0, 1)
	if tr.ApplyVector(n) != n {
		t.Error("ApplyVector applied translation")
	}
}
