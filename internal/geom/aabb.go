package geom

import "math"

// AABB is an axis-aligned bounding box, described by its minimum and
// maximum corners. An AABB with Min > Max in any coordinate is "empty";
// EmptyAABB returns the canonical empty box.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns a box that contains nothing; extending it with any
// point yields a degenerate box at that point.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// BoundPoints returns the tightest AABB containing all the given points.
func BoundPoints(pts []Vec3) AABB {
	b := EmptyAABB()
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	return b
}

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// ExtendPoint returns the smallest box containing b and p.
func (b AABB) ExtendPoint(p Vec3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Union returns the smallest box containing both b and c.
func (b AABB) Union(c AABB) AABB {
	if b.IsEmpty() {
		return c
	}
	if c.IsEmpty() {
		return b
	}
	return AABB{Min: b.Min.Min(c.Min), Max: b.Max.Max(c.Max)}
}

// Center returns the center of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box extents along each axis.
func (b AABB) Size() Vec3 {
	if b.IsEmpty() {
		return Vec3{}
	}
	return b.Max.Sub(b.Min)
}

// MaxExtent returns the largest axis extent of the box.
func (b AABB) MaxExtent() float64 {
	s := b.Size()
	return math.Max(s.X, math.Max(s.Y, s.Z))
}

// HalfDiagonal returns the distance from the box center to a corner: the
// radius of the smallest ball centered at Center() that encloses the box.
func (b AABB) HalfDiagonal() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.Size().Norm() / 2
}

// Contains reports whether p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Intersects reports whether b and c overlap (sharing a boundary counts).
func (b AABB) Intersects(c AABB) bool {
	if b.IsEmpty() || c.IsEmpty() {
		return false
	}
	return b.Min.X <= c.Max.X && c.Min.X <= b.Max.X &&
		b.Min.Y <= c.Max.Y && c.Min.Y <= b.Max.Y &&
		b.Min.Z <= c.Max.Z && c.Min.Z <= b.Max.Z
}

// Cube returns the smallest cube sharing b's center that contains b. Octree
// construction uses cubical root boxes so octants subdivide uniformly.
func (b AABB) Cube() AABB {
	if b.IsEmpty() {
		return b
	}
	h := b.MaxExtent() / 2
	c := b.Center()
	d := Vec3{h, h, h}
	return AABB{Min: c.Sub(d), Max: c.Add(d)}
}

// Octant returns the i-th (0..7) octant of the box, splitting at the
// center. Bit 0 of i selects the upper half in X, bit 1 in Y, bit 2 in Z.
func (b AABB) Octant(i int) AABB {
	c := b.Center()
	o := b
	if i&1 != 0 {
		o.Min.X = c.X
	} else {
		o.Max.X = c.X
	}
	if i&2 != 0 {
		o.Min.Y = c.Y
	} else {
		o.Max.Y = c.Y
	}
	if i&4 != 0 {
		o.Min.Z = c.Z
	} else {
		o.Max.Z = c.Z
	}
	return o
}

// OctantIndex returns the index (0..7) of the octant of b that contains p,
// using the same bit convention as Octant. Points exactly on a splitting
// plane go to the upper octant.
func (b AABB) OctantIndex(p Vec3) int {
	c := b.Center()
	i := 0
	if p.X >= c.X {
		i |= 1
	}
	if p.Y >= c.Y {
		i |= 2
	}
	if p.Z >= c.Z {
		i |= 4
	}
	return i
}

// EnclosingBall returns the center and radius of a ball that encloses all
// points: the ball centered at the centroid with radius the maximum
// distance to any point. This is what the paper uses for node radii r_A,
// r_Q ("radius of the smallest ball that encloses all atom centers").
// It is within a factor ~1.16 of the optimal miniball radius and exact for
// symmetric point sets, and — critically — cheap and deterministic.
func EnclosingBall(pts []Vec3) (center Vec3, radius float64) {
	if len(pts) == 0 {
		return Vec3{}, 0
	}
	center = Centroid(pts)
	for _, p := range pts {
		if d := center.Dist2(p); d > radius {
			radius = d
		}
	}
	return center, math.Sqrt(radius)
}
