// Package baselines implements algorithmic stand-ins for the five
// comparator programs of Table II — Amber 12, Gromacs 4.5.3, NAMD 2.9,
// Tinker 6.0 and GBr6 — as the paper characterizes them: cutoff-based
// pairwise Generalized-Born codes built on nonbonded lists, each with its
// own Born-radius model (HCT, OBC, Still-style pairwise descreening, and
// GBr6's volume-based r⁶), plus the naïve exact evaluator. They reproduce
// the algorithm *class* (O(M·c³) work and memory, quadratic without a
// cutoff) so the octree-vs-nblist comparisons measure what the paper
// measured; per-package throughput constants are calibrated once in the
// benchmark harness (see EXPERIMENTS.md).
package baselines

import (
	"math"

	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
)

// BornModel selects the pairwise Born-radius scheme.
type BornModel int

const (
	// HCT is Hawkins–Cramer–Truhlar pairwise descreening (Amber/Gromacs).
	HCT BornModel = iota
	// OBC is Onufriev–Bashford–Case: HCT's integral fed through the
	// tanh rescaling (NAMD).
	OBC
	// StillPW is a Still-style pairwise descreening calibrated to the
	// systematically larger radii (and ~70%-of-naïve energies) the paper
	// observes for Tinker in Fig. 9.
	StillPW
	// VolumeR6 is GBr6's parameterization-free volume-based r⁶
	// descreening.
	VolumeR6
)

// DefaultScale returns the per-model descreening strength. For the HCT
// family it multiplies the descreening sum (the λ of 1/R = 1/ρ − λ·ΣI,
// playing the role of the fitted S_x tables real force fields carry); for
// VolumeR6 it scales the neighbor radii entering the volume integral.
// Values are calibrated so each emulated package reproduces its Fig. 9
// energy relation to the naïve reference (see TestProbeScaleCalibration
// and EXPERIMENTS.md).
func (m BornModel) DefaultScale() float64 {
	switch m {
	case HCT:
		return 2.80 // Amber/Gromacs land on the naïve energies (Fig. 9)
	case OBC:
		return 2.20 // NAMD lands on the naïve energies (Fig. 9)
	case StillPW:
		return 3.15 // Tinker reports ≈70% of the naïve energies (Fig. 9)
	case VolumeR6:
		return 0.90 // GBr6 lands on the naïve energies (Fig. 9)
	default:
		return 1.0
	}
}

// hctNeighborScale is the fixed S_x-style neighbor-radius scale of the
// HCT-family integrals.
const hctNeighborScale = 0.80

// hctIntegral is the closed-form pairwise descreening integral I(r, s) of
// the HCT family: the contribution of a sphere of (scaled) radius s at
// center distance r to the inverse Born radius of an atom with intrinsic
// radius rho. Zero when the sphere is fully engulfed by the atom.
func hctIntegral(r, s, rho float64) float64 {
	if rho >= r+s {
		return 0 // neighbor buried inside the atom
	}
	l := rho
	if d := math.Abs(r - s); d > l {
		l = d
	}
	u := r + s
	invL, invU := 1/l, 1/u
	return 0.5 * (invL - invU +
		(r/4-(s*s)/(4*r))*(invU*invU-invL*invL) +
		(1/(2*r))*math.Log(l/u))
}

// volumeR6Integral is the closed-form integral of |x−y|⁻⁶ over a ball of
// radius a at center distance r > a (Grycuk's volume formulation, the
// GBr6 building block).
func volumeR6Integral(r, a float64) float64 {
	if r <= a {
		// Overlapping spheres: clamp to the touching configuration; the
		// paper's comparator treats bonded overlaps heuristically.
		r = a * 1.0000001
	}
	t1 := r/(3*math.Pow(r-a, 3)) - 1/(2*(r-a)*(r-a)) + 1/(6*r*r)
	t2 := r/(3*math.Pow(r+a, 3)) - 1/(2*(r+a)*(r+a)) + 1/(6*r*r)
	return (math.Pi / (2 * r)) * (t1 - t2)
}

// obc tanh-rescaling constants (OBC II).
const (
	obcAlpha  = 1.0
	obcBeta   = 0.8
	obcGamma  = 4.85
	obcOffset = 0.09 // Å subtracted from intrinsic radii
)

// BornRadii computes pairwise Born radii for the molecule under the given
// model, using neighbor interactions within the cutoff from the supplied
// pair list. Returns the radii and the pair-evaluation count.
// BornRadii uses the model's default descreening scale.
func BornRadii(mol *molecule.Molecule, model BornModel, pl *nblist.PairList) ([]float64, int64) {
	return BornRadiiScaled(mol, model, model.DefaultScale(), pl)
}

// BornRadiiScaled computes pairwise Born radii with an explicit
// descreening scale (the calibration knob).
func BornRadiiScaled(mol *molecule.Molecule, model BornModel, scale float64, pl *nblist.PairList) ([]float64, int64) {
	n := mol.NumAtoms()
	radii := make([]float64, n)
	ops := int64(0)
	switch model {
	case HCT, OBC, StillPW:
		sum := make([]float64, n)
		pl.ForEachPair(func(i, j int) {
			r := mol.Atoms[i].Pos.Dist(mol.Atoms[j].Pos)
			rhoI := mol.Atoms[i].Radius - obcOffset
			rhoJ := mol.Atoms[j].Radius - obcOffset
			sum[i] += hctIntegral(r, hctNeighborScale*rhoJ, rhoI)
			sum[j] += hctIntegral(r, hctNeighborScale*rhoI, rhoJ)
			ops++
		})
		for i := range radii {
			rho := mol.Atoms[i].Radius - obcOffset
			switch model {
			case OBC:
				psi := scale * sum[i] * rho
				inv := 1/rho - math.Tanh(obcAlpha*psi-obcBeta*psi*psi+obcGamma*psi*psi*psi)/mol.Atoms[i].Radius
				radii[i] = clampRadius(1/inv, mol.Atoms[i].Radius)
			default:
				inv := 1/rho - scale*sum[i]
				radii[i] = clampRadius(1/inv, mol.Atoms[i].Radius)
			}
		}
	case VolumeR6:
		sum := make([]float64, n)
		pl.ForEachPair(func(i, j int) {
			r := mol.Atoms[i].Pos.Dist(mol.Atoms[j].Pos)
			sum[i] += volumeR6Integral(r, scale*mol.Atoms[j].Radius)
			sum[j] += volumeR6Integral(r, scale*mol.Atoms[i].Radius)
			ops++
		})
		for i := range radii {
			rho := mol.Atoms[i].Radius
			inv3 := 1/(rho*rho*rho) - (3/(4*math.Pi))*sum[i]
			if inv3 <= 0 {
				radii[i] = maxBaselineRadius
				continue
			}
			radii[i] = clampRadius(math.Cbrt(1/inv3), rho)
		}
	}
	return radii, ops
}

// maxBaselineRadius caps runaway radii (an atom descreened past bulk).
const maxBaselineRadius = 1000.0

func clampRadius(r, intrinsic float64) float64 {
	if math.IsNaN(r) || r < 0 || r > maxBaselineRadius {
		return maxBaselineRadius
	}
	if r < intrinsic {
		return intrinsic
	}
	return r
}
