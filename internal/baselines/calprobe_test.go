package baselines

import (
	"testing"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
	"gbpolar/internal/surface"
)

// TestProbeScaleCalibration sweeps the descreening scale per model and
// reports the energy ratio to naive — the calibration evidence for
// DefaultScale (kept as a diagnostic; see EXPERIMENTS.md).
func TestProbeScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	m := molecule.Exactly(molecule.Globule("g", 800, 73), 800, 73)
	surf, _ := surface.Build(m, surface.DefaultConfig())
	sys, _ := gb.NewSystem(m, surf, gb.DefaultParams())
	naive := NaiveResult(sys)
	pl, _ := nblist.BuildPairList(m.Positions(), 16, 0)
	full, _ := nblist.BuildPairList(m.Positions(), 1e9, 0)
	energy := func(mol *molecule.Molecule, radii []float64, list *nblist.PairList) float64 {
		sum := 0.0
		for i, a := range mol.Atoms {
			sum += a.Charge * a.Charge / radii[i]
		}
		list.ForEachPair(func(i, j int) {
			r2 := mol.Atoms[i].Pos.Dist2(mol.Atoms[j].Pos)
			sum += 2 * gb.PairTerm(mol.Atoms[i].Charge*mol.Atoms[j].Charge, r2, radii[i]*radii[j])
		})
		return -0.5 * gb.Tau(80) * gb.CoulombKcal * sum
	}
	for _, model := range []BornModel{HCT, OBC, StillPW, VolumeR6} {
		list := pl
		if model == StillPW || model == VolumeR6 {
			list = full
		}
		for _, scale := range []float64{0.88, 0.90, 0.92, 2.0, 2.2, 2.6, 3.0, 3.4, 3.8, 4.2, 4.8} {
			radii, _ := BornRadiiScaled(m, model, scale, list)
			e := energy(m, radii, list)
			t.Logf("model=%d scale=%.2f ratio=%.3f", model, scale, e/naive.Energy)
		}
	}
}
