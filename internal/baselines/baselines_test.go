package baselines

import (
	"math"
	"testing"

	"gbpolar/internal/gb"
	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
	"gbpolar/internal/quadrature"
	"gbpolar/internal/surface"
)

func TestHCTIntegralProperties(t *testing.T) {
	// Decreases with distance.
	prev := math.Inf(1)
	for _, r := range []float64{3, 4, 6, 10, 20} {
		v := hctIntegral(r, 1.2, 1.5)
		if v <= 0 {
			t.Errorf("r=%v: integral %v not positive", r, v)
		}
		if v >= prev {
			t.Errorf("r=%v: integral not decreasing", r)
		}
		prev = v
	}
	// Fully engulfed neighbor contributes nothing.
	if v := hctIntegral(0.5, 0.3, 1.5); v != 0 {
		t.Errorf("engulfed neighbor: %v", v)
	}
	// Far limit: I → volume-like decay ~ s³/r⁴ scale; just check small.
	if v := hctIntegral(100, 1.2, 1.5); v > 1e-5 {
		t.Errorf("far integral %v too large", v)
	}
}

// volumeR6Integral must match numerical quadrature of ∫ |y−x|⁻⁶ dV over a
// ball.
func TestVolumeR6IntegralAgainstQuadrature(t *testing.T) {
	const a = 1.6
	for _, r := range []float64{2.5, 4.0, 8.0} {
		// Shell decomposition with Gauss–Legendre in s and exact angular
		// integral (see derivation in the implementation).
		want := quadrature.Integrate1D(func(s float64) float64 {
			return (math.Pi * s / (2 * r)) * (math.Pow(r-s, -4) - math.Pow(r+s, -4))
		}, 0, a, 64)
		got := volumeR6Integral(r, a)
		if math.Abs(got-want)/want > 1e-10 {
			t.Errorf("r=%v: got %v want %v", r, got, want)
		}
	}
	// Far limit → (4/3)πa³/r⁶.
	r := 100.0
	want := 4 * math.Pi / 3 * a * a * a / math.Pow(r, 6)
	if got := volumeR6Integral(r, a); math.Abs(got-want)/want > 1e-3 {
		t.Errorf("far limit: got %v want %v", got, want)
	}
}

func TestBornRadiiIsolatedAtom(t *testing.T) {
	m := &molecule.Molecule{Name: "one", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1.7, Charge: 1},
	}}
	pl, err := nblist.BuildPairList(m.Positions(), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []BornModel{HCT, OBC, StillPW, VolumeR6} {
		radii, ops := BornRadii(m, model, pl)
		if ops != 0 {
			t.Errorf("model %d: ops = %d for isolated atom", model, ops)
		}
		// No descreening ⇒ R equals the (possibly offset-corrected)
		// intrinsic radius.
		lo, hi := 1.5, 1.75
		if radii[0] < lo || radii[0] > hi {
			t.Errorf("model %d: isolated radius %v outside [%v, %v]", model, radii[0], lo, hi)
		}
	}
}

func TestBornRadiiDescreeningRaisesRadii(t *testing.T) {
	// A buried atom must have a larger Born radius than an isolated one.
	m := molecule.Exactly(molecule.Globule("g", 500, 71), 500, 71)
	pl, err := nblist.BuildPairList(m.Positions(), 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []BornModel{HCT, OBC, VolumeR6} {
		radii, _ := BornRadii(m, model, pl)
		raised := 0
		for i, r := range radii {
			if r > mol0(m, i) {
				raised++
			}
			if r < mol0(m, i)-obcOffset-1e-9 {
				t.Fatalf("model %d: radius below intrinsic", model)
			}
		}
		if raised < len(radii)/2 {
			t.Errorf("model %d: only %d/%d atoms descreened", model, raised, len(radii))
		}
	}
}

func mol0(m *molecule.Molecule, i int) float64 { return m.Atoms[i].Radius }

func TestRegistryMatchesTableII(t *testing.T) {
	reg := Registry()
	if len(reg) != 5 {
		t.Fatalf("registry has %d entries", len(reg))
	}
	want := map[string]BornModel{
		"Amber": HCT, "Gromacs": HCT, "NAMD": OBC, "Tinker": StillPW, "GBr6": VolumeR6,
	}
	for _, sp := range reg {
		if m, ok := want[sp.Name]; !ok || m != sp.Model {
			t.Errorf("%s: model %d", sp.Name, sp.Model)
		}
	}
	if _, err := SpecByName("Amber"); err != nil {
		t.Error(err)
	}
	if _, err := SpecByName("CHARMM"); err == nil {
		t.Error("unknown package accepted")
	}
}

func TestPackagesEnergyCloseToNaive(t *testing.T) {
	// Fig. 9: Amber, GBr6, Gromacs, NAMD energies match naive closely;
	// Tinker is ≈70% of naive.
	m := molecule.Exactly(molecule.Globule("g", 800, 73), 800, 73)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gb.NewSystem(m, surf, gb.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	naive := NaiveResult(sys)
	if naive.Energy >= 0 {
		t.Fatal("naive energy not negative")
	}
	for _, sp := range Registry() {
		res, err := sp.Run(m, gb.DefaultSolventDielectric)
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if res.OOM {
			t.Fatalf("%s: unexpected OOM at 800 atoms", sp.Name)
		}
		ratio := res.Energy / naive.Energy
		if sp.Name == "Tinker" {
			if ratio < 0.45 || ratio > 0.95 {
				t.Errorf("Tinker ratio = %v, want ≈0.7", ratio)
			}
			continue
		}
		if ratio < 0.7 || ratio > 1.35 {
			t.Errorf("%s: energy ratio to naive = %v", sp.Name, ratio)
		}
		if res.Ops == 0 || res.MemBytes == 0 {
			t.Errorf("%s: missing accounting: ops=%d mem=%d", sp.Name, res.Ops, res.MemBytes)
		}
	}
}

func TestTinkerAndGBr6RunOutOfMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large memory-envelope sweep")
	}
	// §V-D: Tinker fails above ~12k atoms, GBr6 above ~13k. Use sparse
	// synthetic molecules (the pair-list *count* is what matters; build a
	// small helix so the full pair list is cheap to count but exceeds the
	// quadratic budget).
	big := molecule.Exactly(molecule.Globule("big", 13000, 75), 13000, 75)
	tinker, _ := SpecByName("Tinker")
	res, err := tinker.Run(big, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Error("Tinker did not OOM at 13k atoms")
	}
	gbr6, _ := SpecByName("GBr6")
	res, err = gbr6.Run(big, 80)
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Error("GBr6 OOMed at 13k atoms (limit is ~13.5k)")
	}
	bigger := molecule.Exactly(molecule.Globule("bigger", 14000, 76), 14000, 76)
	res, err = gbr6.Run(bigger, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Error("GBr6 did not OOM at 14k atoms")
	}
	// Amber's cutoff list survives large molecules.
	amber, _ := SpecByName("Amber")
	res, err = amber.Run(bigger, 80)
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Error("Amber OOMed despite cutoff list")
	}
}
