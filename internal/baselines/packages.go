package baselines

import (
	"fmt"

	"gbpolar/internal/gb"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
)

// Spec describes one emulated comparator program: its GB model and
// parallelism (Table II), its nonbonded-list behaviour, and the
// throughput constants that map its operation counts onto modeled time.
type Spec struct {
	// Name as the paper writes it.
	Name string
	// Model is the Born-radius scheme of Table II.
	Model BornModel
	// Parallel is the Table II parallelism label.
	Parallel string
	// Cores is the core count the paper runs the package on (12 for the
	// parallel packages, 1 for serial GBr6).
	Cores int
	// BornCutoff is the nonbonded-list cutoff (Å) for the Born-radius
	// phase; 0 means the package needs the full quadratic pair list
	// (Tinker/GBr6 — the §V-D out-of-memory failure mode).
	BornCutoff float64
	// The energy phase is evaluated without a cutoff (a direct O(M²)
	// loop, standard for single-point GB energies): this is what makes
	// every comparator quadratic in the molecule size while the octree
	// programs stay near-linear — the mechanism behind the paper's
	// speedups growing from ~11× at 16k atoms to ~500× at 509k.

	// RateFactor scales the machine's per-core pairwise rate for this
	// package; StartupSeconds is its fixed per-run setup cost. Both are
	// calibrated against Figures 8a/8b (EXPERIMENTS.md).
	RateFactor         float64
	ParallelEfficiency float64
	StartupSeconds     float64
	// MemLimitBytes bounds the stored pair list; exceeded ⇒ the run
	// fails like the real package ("Tinker and GBr6 do not work for
	// larger molecules (>12k and >13k) as they run out of memory", §V-D).
	MemLimitBytes int64
}

// Registry returns the five comparator programs of Table II with
// calibrated constants (targets: Fig. 8b on 12 cores — Gromacs ≈2.7×
// Amber at 16.3k atoms with a 6.2× peak at ≈2.3k; NAMD ≤1.1×; Tinker
// ≤2.1×; GBr6 ≤1.14×).
func Registry() []Spec {
	return []Spec{
		{Name: "Amber", Model: HCT, Parallel: "Distributed (MPI)", Cores: 12,
			BornCutoff: 16, RateFactor: 0.127, ParallelEfficiency: 0.80,
			StartupSeconds: 0.150},
		{Name: "Gromacs", Model: HCT, Parallel: "Distributed (MPI)", Cores: 12,
			BornCutoff: 16, RateFactor: 0.343, ParallelEfficiency: 0.80,
			StartupSeconds: 0.020},
		{Name: "NAMD", Model: OBC, Parallel: "Distributed (MPI)", Cores: 12,
			BornCutoff: 16, RateFactor: 0.14, ParallelEfficiency: 0.80,
			StartupSeconds: 0.400},
		{Name: "Tinker", Model: StillPW, Parallel: "Shared (OpenMP)", Cores: 12,
			BornCutoff: 0, RateFactor: 0.60, ParallelEfficiency: 0.55,
			StartupSeconds: 0.070, MemLimitBytes: tinkerMemLimit},
		{Name: "GBr6", Model: VolumeR6, Parallel: "Serial", Cores: 1,
			BornCutoff: 0, RateFactor: 1.3, ParallelEfficiency: 1,
			StartupSeconds: 0.135, MemLimitBytes: gbr6MemLimit},
	}
}

// Memory limits reproducing §V-D: full pair lists are 4·M·(M−1)/2 bytes
// (int32 half list), so Tinker dies between 12k and 13k atoms and GBr6
// between 13k and 14k.
const (
	tinkerMemLimit = int64(4) * 12500 * 12499 / 2
	gbr6MemLimit   = int64(4) * 13500 * 13499 / 2
)

// SpecByName returns the registry entry with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("baselines: unknown package %q", name)
}

// Result is the outcome of an emulated comparator run.
type Result struct {
	Name   string
	Energy float64 // kcal/mol
	Born   []float64
	// Ops is the pairwise-evaluation count (Born + energy phases).
	Ops int64
	// MemBytes is the stored nonbonded-list footprint.
	MemBytes int64
	// OOM reports the package running out of memory (Energy invalid).
	OOM bool
}

// Run executes the emulated package on the molecule: Born-phase
// nonbonded-list construction (with the package's memory budget),
// pairwise Born radii under its model, then the Eq. 2 GB energy as a
// direct quadratic loop plus self terms. epsSolvent is the solvent
// dielectric.
func (sp Spec) Run(mol *molecule.Molecule, epsSolvent float64) (*Result, error) {
	res := &Result{Name: sp.Name}
	positions := mol.Positions()
	cutoff := sp.BornCutoff
	if cutoff <= 0 {
		// The package stores the full pair list (quadratic memory).
		cutoff = mol.Bounds().Size().Norm() + 1
	}
	pl, err := nblist.BuildPairList(positions, cutoff, sp.MemLimitBytes)
	if err != nil {
		if _, ok := err.(*nblist.ErrMemoryLimit); ok {
			res.OOM = true
			return res, nil
		}
		return nil, err
	}
	res.MemBytes = pl.MemoryBytes()

	radii, bornOps := BornRadii(mol, sp.Model, pl)
	res.Born = radii
	res.Ops += bornOps

	energy, energyOps := GBEnergy(mol, radii, epsSolvent)
	res.Energy = energy
	res.Ops += energyOps
	return res, nil
}

// GBEnergy evaluates Eq. 2 as a direct quadratic loop (self terms plus
// each unordered pair once, doubled) for the given radii. Returns
// (kcal/mol, pair evaluations).
func GBEnergy(mol *molecule.Molecule, radii []float64, epsSolvent float64) (float64, int64) {
	sum := 0.0
	ops := int64(0)
	for i, a := range mol.Atoms {
		sum += a.Charge * a.Charge / radii[i]
		ops++
		for j := i + 1; j < len(mol.Atoms); j++ {
			r2 := a.Pos.Dist2(mol.Atoms[j].Pos)
			sum += 2 * gb.PairTerm(a.Charge*mol.Atoms[j].Charge, r2, radii[i]*radii[j])
			ops++
		}
	}
	return -0.5 * gb.Tau(epsSolvent) * gb.CoulombKcal * sum, ops
}

// NaiveResult computes the exact Eq. 2/Eq. 4 reference ("Naïve" in
// Table II) for the molecule using the gb package's surface-based r⁶
// radii and full quadratic energy.
func NaiveResult(sys *gb.System) *Result {
	radii, bornOps := sys.NaiveBornRadiiR6()
	e, epolOps := sys.NaiveEpol(radii)
	return &Result{Name: "Naïve", Energy: e, Born: radii, Ops: bornOps + epolOps}
}
