// Package perf models the paper's execution platform: it turns *measured*
// quantities from real in-process runs (per-core interaction counts,
// communication traffic from simmpi, working-set sizes) into modeled
// wall-clock seconds on a cluster of multicores.
//
// This is the documented substitution for the Lonestar4 cluster (DESIGN.md
// §2): the algorithms execute for real and produce exact energies; only
// the mapping from operation counts to seconds goes through this α–β
// (ts/tw) cost model — the same model the paper itself uses for its
// complexity analysis in §IV-C. The model captures the four mechanisms the
// paper credits for its scalability shapes:
//
//  1. per-core compute rate with a cache-capacity factor (smaller per-core
//     segments fit cache better — §V-B),
//  2. ts/tw communication costs growing with the rank count (OCT_MPI runs
//     6× the ranks of OCT_MPI+CILK — §V-B),
//  3. memory replication per distributed rank (12 single-thread ranks hold
//     ~6× the memory of 2×6-thread ranks — §V-B) with a thrashing penalty
//     once a node exceeds RAM,
//  4. hybrid-runtime overheads (cilk scheduling + MPI/cilk interfacing)
//     that dominate for small molecules — §V-C.
package perf

import (
	"fmt"
	"math"
	"math/rand"

	"gbpolar/internal/obs"
	"gbpolar/internal/simmpi"
)

// Machine describes a cluster of multicore nodes.
type Machine struct {
	Name         string
	Nodes        int
	CoresPerNode int
	// OpsPerSecond is the per-core rate of pairwise-interaction
	// evaluations (distance + exp + sqrt) with everything in cache.
	OpsPerSecond float64
	// L3BytesPerNode and RAMBytesPerNode bound the cache/memory capacity
	// factors.
	L3BytesPerNode  int64
	RAMBytesPerNode int64
	// Ts is the message startup latency (seconds); Tw the per-byte
	// transfer time (seconds/byte) across the interconnect.
	Ts, Tw float64
	// IntraNodeFactor scales Ts/Tw for traffic between ranks on the same
	// node (<1: shared memory is cheaper than the wire).
	IntraNodeFactor float64
	// CoresPerSocket bounds a single process's threads before its memory
	// traffic crosses sockets (the §V-A NUMA effect).
	CoresPerSocket int
	// DiskLatencySeconds and DiskBytesPerSecond model the stable-storage
	// target of phase checkpoints: a fixed per-snapshot commit latency
	// (metadata + fsync on the shared filesystem) plus a streaming write
	// rate. Zero values disable the respective term, so Machine literals
	// predating the checkpoint model price checkpointed runs as free
	// rather than dividing by zero.
	DiskLatencySeconds float64
	DiskBytesPerSecond float64
}

// Lonestar4 returns the paper's Table I machine: 12-core 3.33 GHz Westmere
// nodes, 24 GB RAM, 12 MB L3, QDR InfiniBand (40 Gb/s, ~1.5 µs latency).
// Nodes is set to 40 so the Figure 5/6 sweeps (up to 36 nodes) fit.
func Lonestar4() Machine {
	return Machine{
		Name:            "Lonestar4",
		Nodes:           40,
		CoresPerNode:    12,
		OpsPerSecond:    85e6, // ~40 flops/interaction at 3.33 GHz
		L3BytesPerNode:  12 << 20,
		RAMBytesPerNode: 24 << 30,
		Ts:              1.7e-6,
		Tw:              1.0 / (40e9 / 8 * 0.7), // 70% of 40 Gb/s
		IntraNodeFactor: 0.25,
		CoresPerSocket:  6, // dual-socket hexa-core Westmere
		// Lustre-class shared scratch: ~5 ms commit latency per snapshot,
		// ~300 MB/s sustained from one writer.
		DiskLatencySeconds: 5e-3,
		DiskBytesPerSecond: 300e6,
	}
}

// Calibration holds the model's tunable constants. Defaults reproduce the
// paper's qualitative shapes; every experiment records the calibration it
// used (EXPERIMENTS.md).
type Calibration struct {
	// CacheAlpha is the per-doubling slowdown once a core's active
	// segment exceeds its L3 share.
	CacheAlpha float64
	// CilkFactor multiplies compute time when threads-per-process > 1
	// (cilk-4.5.4 scheduling overhead, no thread affinity — §V-C).
	CilkFactor float64
	// InterfaceOverheadSeconds is the fixed per-run cost of interfacing
	// the work-stealing runtime with message passing (§V-C).
	InterfaceOverheadSeconds float64
	// ThrashBase is the slowdown per doubling of memory demand beyond a
	// node's RAM (page faults — §IV-B).
	ThrashBase float64
	// NoiseMPI / NoiseHybrid bound the per-rank uniform jitter used by
	// PriceNoisy: hybrid runs carry larger variance (randomized work
	// stealing), matching Figure 6's min/max envelopes.
	NoiseMPI, NoiseHybrid float64
	// CollectiveSkewSeconds is the per-collective synchronization cost
	// beyond the wire model: every collective waits for the slowest rank
	// (OS noise, scheduling skew), a cost that grows with log₂P. This is
	// what makes OCT_MPI pay a millisecond-scale floor on small
	// molecules (Fig. 7's "communication cost dominated computation
	// cost" regime).
	CollectiveSkewSeconds float64
	// NUMAPenalty multiplies compute when one process's threads span
	// more than a socket: cilk++ keeps no thread affinity, so the pure
	// shared-memory OCT_CILK (12 threads across two sockets) pays it
	// while the 2×6 hybrid — one process pinned per socket — does not
	// (§V-A).
	NUMAPenalty float64
}

// DefaultCalibration returns the constants used by the benchmark harness.
func DefaultCalibration() Calibration {
	return Calibration{
		CacheAlpha:               0.18,
		CilkFactor:               1.06,
		InterfaceOverheadSeconds: 2.5e-3,
		ThrashBase:               4.0,
		NoiseMPI:                 0.06,
		NoiseHybrid:              0.17,
		CollectiveSkewSeconds:    0.3e-3,
		NUMAPenalty:              1.5,
	}
}

// RunShape describes how a program was laid out on the machine.
type RunShape struct {
	// Processes is the number of message-passing ranks (P).
	Processes int
	// ThreadsPerProcess is the shared-memory width per rank (p); 1 for a
	// purely distributed run.
	ThreadsPerProcess int
	// DataBytes is the size of ONE copy of the input working set (atoms +
	// quadrature points + octrees). Every process replicates it
	// (§IV-A: "each process has a complete set of data"); threads within
	// a process share it.
	DataBytes int64
}

// Cores returns the total core count P×p.
func (s RunShape) Cores() int { return s.Processes * s.ThreadsPerProcess }

// Hybrid reports whether the run uses shared-memory parallelism inside
// ranks.
func (s RunShape) Hybrid() bool { return s.ThreadsPerProcess > 1 }

// Breakdown is a priced run.
type Breakdown struct {
	CompSeconds     float64
	CommSeconds     float64
	OverheadSeconds float64
	// FaultSeconds is the modeled recovery cost of a fault-injected run:
	// retry backoff waits, injected message delays, and straggler stalls.
	// The wire cost of retried/dropped messages is already in CommSeconds
	// (every send attempt is logged), so this is purely the waiting time.
	FaultSeconds float64
	// CheckpointSeconds is the modeled stable-storage cost of phase
	// snapshots: per-save disk latency plus streamed bytes, from the
	// machine's disk parameters. Zero for runs that never checkpoint.
	CheckpointSeconds float64
	TotalSeconds      float64
	CacheFactor       float64
	ThrashFactor      float64
	MemPerNodeBytes   int64
	NodesUsed         int
}

// Record publishes the priced breakdown into the recorder as gauges
// (modeled seconds are derived from deterministic inputs, but they are a
// model output, not a workload invariant — keep them out of Summary).
// The totals also feed the "perf.layout.total_us" gauge-side histogram,
// so a multi-layout sweep sharing one recorder exposes its distribution
// of modeled layout times on /metrics.
func (b Breakdown) Record(rec *obs.Recorder) {
	rec.Gauge("perf.comp_us", int64(b.CompSeconds*1e6))
	rec.Gauge("perf.comm_us", int64(b.CommSeconds*1e6))
	rec.Gauge("perf.overhead_us", int64(b.OverheadSeconds*1e6))
	rec.Gauge("perf.fault_us", int64(b.FaultSeconds*1e6))
	rec.Gauge("perf.checkpoint_us", int64(b.CheckpointSeconds*1e6))
	rec.Gauge("perf.total_us", int64(b.TotalSeconds*1e6))
	rec.ObserveGauge("perf.layout.total_us", int64(b.TotalSeconds*1e6))
}

// EstimateDataBytes returns the size of one copy of the input working set
// for a molecule with the given atom and quadrature-point counts: atom
// record + octree share (88 B) and quadrature record + octree share (60 B).
func EstimateDataBytes(atoms, qpoints int) int64 {
	return int64(atoms)*88 + int64(qpoints)*60
}

// Price maps a measured run onto the machine. perCoreOps holds the
// interaction-evaluation count of every core (rank for distributed runs,
// worker thread for hybrid ones): compute time follows the *maximum*
// (barrier semantics), so measured load imbalance shows up as modeled
// time. traffic is the simmpi communication log of the run.
func (m Machine) Price(cal Calibration, shape RunShape, perCoreOps []int64, traffic simmpi.Stats) (Breakdown, error) {
	if shape.Processes < 1 || shape.ThreadsPerProcess < 1 {
		return Breakdown{}, fmt.Errorf("perf: invalid shape %+v", shape)
	}
	cores := shape.Cores()
	if cores > m.Nodes*m.CoresPerNode {
		return Breakdown{}, fmt.Errorf("perf: shape needs %d cores, machine has %d",
			cores, m.Nodes*m.CoresPerNode)
	}
	if len(perCoreOps) == 0 {
		return Breakdown{}, fmt.Errorf("perf: no per-core op counts")
	}
	nodesUsed := (cores + m.CoresPerNode - 1) / m.CoresPerNode
	procsPerNode := (shape.Processes + nodesUsed - 1) / nodesUsed

	b := Breakdown{NodesUsed: nodesUsed}
	b.MemPerNodeBytes = int64(procsPerNode) * shape.DataBytes

	// --- compute ---------------------------------------------------------
	maxOps := int64(0)
	for _, ops := range perCoreOps {
		if ops > maxOps {
			maxOps = ops
		}
	}
	b.CacheFactor = 1
	segBytes := float64(shape.DataBytes) / float64(cores)
	cacheShare := float64(m.L3BytesPerNode) / float64(m.CoresPerNode)
	if segBytes > cacheShare {
		b.CacheFactor = 1 + cal.CacheAlpha*math.Log2(segBytes/cacheShare)
	}
	b.ThrashFactor = 1
	if b.MemPerNodeBytes > m.RAMBytesPerNode {
		over := math.Log2(float64(b.MemPerNodeBytes)/float64(m.RAMBytesPerNode)) + 1
		b.ThrashFactor = math.Pow(cal.ThrashBase, over)
	}
	b.CompSeconds = float64(maxOps) / m.OpsPerSecond * b.CacheFactor * b.ThrashFactor
	if shape.ThreadsPerProcess > 1 {
		// The work-stealing runtime's scheduling overhead (§V-C).
		b.CompSeconds *= cal.CilkFactor
	}
	if m.CoresPerSocket > 0 && shape.ThreadsPerProcess > m.CoresPerSocket && cal.NUMAPenalty > 0 {
		// One process's threads span sockets without affinity (§V-A).
		b.CompSeconds *= cal.NUMAPenalty
	}
	if shape.Hybrid() && shape.Processes > 1 {
		// Interfacing the work-stealing runtime with message passing
		// (§V-C) — a true-hybrid cost, not paid by pure OCT_CILK.
		b.OverheadSeconds += cal.InterfaceOverheadSeconds
	}

	// --- communication ---------------------------------------------------
	b.CommSeconds = m.commSeconds(cal, shape, procsPerNode, traffic)

	// --- fault recovery --------------------------------------------------
	b.FaultSeconds = float64(traffic.BackoffNanos+traffic.DelayNanos+traffic.StragglerNanos) / 1e9

	// --- checkpoints ------------------------------------------------------
	// Only the saver rank writes (one stream per snapshot), so the cost is
	// latency per save plus the bytes at the streaming rate — the other
	// ranks' wait is already covered by the collectives bracketing the save.
	if traffic.Checkpoints > 0 {
		b.CheckpointSeconds = float64(traffic.Checkpoints) * m.DiskLatencySeconds
		if m.DiskBytesPerSecond > 0 {
			b.CheckpointSeconds += float64(traffic.CheckpointBytes) / m.DiskBytesPerSecond
		}
	}

	b.TotalSeconds = b.CompSeconds + b.CommSeconds + b.OverheadSeconds + b.FaultSeconds + b.CheckpointSeconds
	return b, nil
}

// commSeconds prices the communication log with the ts/tw model the paper
// uses in §IV-C: Allreduce/Gather of m bytes over P ranks costs
// ts·log₂P + tw·m·(P−1)/P per call (both terms discounted for the
// fraction of rank pairs living on the same node).
func (m Machine) commSeconds(cal Calibration, shape RunShape, procsPerNode int, traffic simmpi.Stats) float64 {
	p := float64(shape.Processes)
	if shape.Processes <= 1 {
		return 0
	}
	intraFrac := 0.0
	if shape.Processes > 1 {
		intraFrac = float64(procsPerNode-1) / float64(shape.Processes-1)
	}
	disc := 1 - intraFrac*(1-m.IntraNodeFactor)
	ts := m.Ts * disc
	// Ranks on one node share a single NIC: their inter-node transfers
	// serialize, so the effective per-byte time scales with the number of
	// processes per node. This — not the aggregate volume, which is
	// nearly P-independent for ring-style collectives — is what makes a
	// 12-rank-per-node OCT_MPI run pay ~6× the wire time of a
	// 2-rank-per-node hybrid run (§V-B).
	tw := m.Tw * disc * float64(procsPerNode)
	logP := math.Log2(p)
	if logP < 1 {
		logP = 1
	}
	// Price collectives in sorted-kind order (the shared obs.SortedKeys
	// helper): Go randomizes map iteration, and accumulating float terms
	// in map order would make the priced seconds differ in the low bits
	// between runs of the same workload.
	total := 0.0
	for _, kind := range obs.SortedKeys(traffic.Collectives) {
		st := traffic.Collectives[kind]
		bytes := float64(st.Bytes)
		calls := float64(st.Calls)
		// Synchronization skew: each collective waits for the slowest of
		// P ranks.
		total += calls * cal.CollectiveSkewSeconds * logP
		switch kind {
		case simmpi.KindBarrier:
			total += calls * ts * logP
		case simmpi.KindAllreduce:
			// Reduce-scatter + allgather: data crosses the wire twice.
			total += calls*ts*logP + 2*tw*bytes*(p-1)/p
		case simmpi.KindReduce, simmpi.KindBcast, simmpi.KindGather, simmpi.KindAllgatherv:
			total += calls*ts*logP + tw*bytes*(p-1)/p
		default:
			total += calls*ts*logP + tw*bytes
		}
	}
	total += float64(traffic.P2PMessages)*ts + float64(traffic.P2PBytes)*tw
	return total
}

// PriceNoisy prices the run `samples` times with multiplicative per-rank
// jitter (OS noise + scheduling randomness; hybrid runs jitter more, per
// Calibration) and returns the minimum and maximum total seconds — the
// Figure 6 min/max envelope. Deterministic in seed.
func (m Machine) PriceNoisy(cal Calibration, shape RunShape, perCoreOps []int64, traffic simmpi.Stats, samples int, seed int64) (minSec, maxSec float64, err error) {
	base, err := m.Price(cal, shape, perCoreOps, traffic)
	if err != nil {
		return 0, 0, err
	}
	noise := cal.NoiseMPI
	if shape.Hybrid() {
		noise = cal.NoiseHybrid
	}
	rng := rand.New(rand.NewSource(seed))
	minSec, maxSec = math.Inf(1), 0
	for s := 0; s < samples; s++ {
		// The slowest rank sets the time: with n ranks the expected
		// maximum of n jitter draws grows like n/(n+1).
		worst := 0.0
		for r := 0; r < shape.Processes; r++ {
			if j := rng.Float64() * noise; j > worst {
				worst = j
			}
		}
		t := base.CompSeconds*(1+worst) + base.CommSeconds + base.OverheadSeconds + base.FaultSeconds + base.CheckpointSeconds
		if t < minSec {
			minSec = t
		}
		if t > maxSec {
			maxSec = t
		}
	}
	return minSec, maxSec, nil
}
