package perf

import "time"

// Stopwatch measures wall-clock elapsed time for run instrumentation
// (Result.Wall and friends).
//
// It lives in perf because this package is the project's measurement
// boundary: the `determinism` analyzer in internal/analysis forbids
// reading the clock inside numeric kernel packages, so that wall time is
// observably instrumentation — priced and reported, never fed back into
// the numbers a run produces. Kernels start a Stopwatch instead of
// calling time.Now directly.
type Stopwatch struct {
	start time.Time
}

// StartTimer starts a stopwatch.
func StartTimer() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the wall-clock time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
