package perf

import (
	"testing"

	"gbpolar/internal/simmpi"
)

func ops(n int, v int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestPriceValidation(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	if _, err := m.Price(cal, RunShape{Processes: 0, ThreadsPerProcess: 1}, ops(1, 1), simmpi.Stats{}); err == nil {
		t.Error("accepted zero processes")
	}
	if _, err := m.Price(cal, RunShape{Processes: 10000, ThreadsPerProcess: 12}, ops(1, 1), simmpi.Stats{}); err == nil {
		t.Error("accepted more cores than the machine has")
	}
	if _, err := m.Price(cal, RunShape{Processes: 1, ThreadsPerProcess: 1}, nil, simmpi.Stats{}); err == nil {
		t.Error("accepted empty op counts")
	}
}

func TestPriceComputeScalesWithOps(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	shape := RunShape{Processes: 1, ThreadsPerProcess: 1, DataBytes: 1 << 20}
	b1, err := m.Price(cal, shape, ops(1, 1e8), simmpi.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m.Price(cal, shape, ops(1, 2e8), simmpi.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	if b2.CompSeconds <= b1.CompSeconds*1.9 || b2.CompSeconds >= b1.CompSeconds*2.1 {
		t.Errorf("comp not ~linear in ops: %v vs %v", b1.CompSeconds, b2.CompSeconds)
	}
}

func TestPriceMaxRankDominates(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	shape := RunShape{Processes: 4, ThreadsPerProcess: 1, DataBytes: 1 << 20}
	balanced, _ := m.Price(cal, shape, []int64{100, 100, 100, 100}, simmpi.Stats{})
	imbalanced, _ := m.Price(cal, shape, []int64{10, 10, 10, 370}, simmpi.Stats{})
	if imbalanced.CompSeconds <= balanced.CompSeconds {
		t.Error("load imbalance did not slow the modeled run")
	}
}

func TestCacheFactorShrinksWithCores(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	data := int64(1 << 30) // 1 GB working set
	small, _ := m.Price(cal, RunShape{Processes: 12, ThreadsPerProcess: 1, DataBytes: data}, ops(12, 1e6), simmpi.Stats{})
	large, _ := m.Price(cal, RunShape{Processes: 144, ThreadsPerProcess: 1, DataBytes: data}, ops(144, 1e6), simmpi.Stats{})
	if large.CacheFactor >= small.CacheFactor {
		t.Errorf("cache factor did not shrink with cores: %v vs %v", small.CacheFactor, large.CacheFactor)
	}
}

func TestThrashFactorKicksInBeyondRAM(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	// 12 processes × 4 GB = 48 GB > 24 GB RAM.
	shape := RunShape{Processes: 12, ThreadsPerProcess: 1, DataBytes: 4 << 30}
	b, err := m.Price(cal, shape, ops(12, 1e6), simmpi.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	if b.ThrashFactor <= 1 {
		t.Errorf("ThrashFactor = %v", b.ThrashFactor)
	}
	// Hybrid 2×6 holds only 2 copies: 8 GB < RAM → no thrash.
	hshape := RunShape{Processes: 2, ThreadsPerProcess: 6, DataBytes: 4 << 30}
	hb, err := m.Price(cal, hshape, ops(12, 1e6), simmpi.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	if hb.ThrashFactor != 1 {
		t.Errorf("hybrid ThrashFactor = %v", hb.ThrashFactor)
	}
}

func TestMemoryReplicationRatio(t *testing.T) {
	// §V-B: 12 single-thread ranks hold ~6× the memory of 2×6 hybrid.
	m := Lonestar4()
	cal := DefaultCalibration()
	data := int64(700 << 20)
	mpi, _ := m.Price(cal, RunShape{Processes: 12, ThreadsPerProcess: 1, DataBytes: data}, ops(12, 1), simmpi.Stats{})
	hyb, _ := m.Price(cal, RunShape{Processes: 2, ThreadsPerProcess: 6, DataBytes: data}, ops(12, 1), simmpi.Stats{})
	ratio := float64(mpi.MemPerNodeBytes) / float64(hyb.MemPerNodeBytes)
	if ratio < 5.5 || ratio > 6.5 {
		t.Errorf("memory ratio = %v, want ≈6 (paper: 5.86)", ratio)
	}
}

func TestCommCostGrowsWithRanks(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	traffic := simmpi.Stats{Collectives: map[simmpi.CollectiveKind]simmpi.CollectiveStat{
		simmpi.KindAllreduce: {Calls: 1, Bytes: 8 << 20},
	}}
	few, _ := m.Price(cal, RunShape{Processes: 24, ThreadsPerProcess: 6, DataBytes: 1 << 20}, ops(144, 1), traffic)
	many, _ := m.Price(cal, RunShape{Processes: 144, ThreadsPerProcess: 1, DataBytes: 1 << 20}, ops(144, 1), traffic)
	if many.CommSeconds <= few.CommSeconds {
		t.Errorf("comm cost did not grow with rank count: %v vs %v", few.CommSeconds, many.CommSeconds)
	}
}

func TestSingleRankNoComm(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	traffic := simmpi.Stats{Collectives: map[simmpi.CollectiveKind]simmpi.CollectiveStat{
		simmpi.KindAllreduce: {Calls: 3, Bytes: 1 << 20},
	}}
	b, err := m.Price(cal, RunShape{Processes: 1, ThreadsPerProcess: 1, DataBytes: 1 << 20}, ops(1, 1e6), traffic)
	if err != nil {
		t.Fatal(err)
	}
	if b.CommSeconds != 0 {
		t.Errorf("single-rank comm = %v", b.CommSeconds)
	}
}

func TestHybridOverheadApplied(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	mpi, _ := m.Price(cal, RunShape{Processes: 12, ThreadsPerProcess: 1, DataBytes: 1 << 10}, ops(12, 1e8), simmpi.Stats{})
	hyb, _ := m.Price(cal, RunShape{Processes: 2, ThreadsPerProcess: 6, DataBytes: 1 << 10}, ops(12, 1e8), simmpi.Stats{})
	if hyb.CompSeconds <= mpi.CompSeconds {
		t.Error("cilk factor not applied to hybrid compute")
	}
	if hyb.OverheadSeconds == 0 {
		t.Error("interface overhead missing for hybrid run")
	}
	if mpi.OverheadSeconds != 0 {
		t.Error("interface overhead applied to pure-MPI run")
	}
}

func TestPriceNoisyEnvelope(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	shape := RunShape{Processes: 12, ThreadsPerProcess: 1, DataBytes: 1 << 20}
	lo, hi, err := m.PriceNoisy(cal, shape, ops(12, 1e8), simmpi.Stats{}, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < hi) {
		t.Errorf("noise envelope degenerate: [%v, %v]", lo, hi)
	}
	base, _ := m.Price(cal, shape, ops(12, 1e8), simmpi.Stats{})
	if lo < base.TotalSeconds {
		t.Errorf("min %v below noiseless %v", lo, base.TotalSeconds)
	}
	// Deterministic in seed.
	lo2, hi2, _ := m.PriceNoisy(cal, shape, ops(12, 1e8), simmpi.Stats{}, 20, 1)
	if lo != lo2 || hi != hi2 {
		t.Error("PriceNoisy not deterministic in seed")
	}
	// Hybrid jitters more.
	hshape := RunShape{Processes: 2, ThreadsPerProcess: 6, DataBytes: 1 << 20}
	hlo, hhi, _ := m.PriceNoisy(cal, hshape, ops(12, 1e8), simmpi.Stats{}, 20, 1)
	if (hhi-hlo)/hlo <= (hi-lo)/lo*0.5 {
		t.Errorf("hybrid variance (%v) not larger than MPI (%v)", hhi-hlo, hi-lo)
	}
}

func TestEstimateDataBytes(t *testing.T) {
	// BTV-scale: ~0.7 GB per copy, matching the paper's 1.4 GB for two
	// hybrid processes on one node.
	got := EstimateDataBytes(6000000, 3000000)
	if got < 600<<20 || got > 900<<20 {
		t.Errorf("BTV data = %d MB", got>>20)
	}
	if EstimateDataBytes(0, 0) != 0 {
		t.Error("empty molecule has nonzero data")
	}
}

func TestLonestar4Shape(t *testing.T) {
	m := Lonestar4()
	if m.CoresPerNode != 12 {
		t.Errorf("CoresPerNode = %d", m.CoresPerNode)
	}
	if m.Nodes < 36 {
		t.Errorf("Nodes = %d, must fit the Fig. 5 sweep", m.Nodes)
	}
	if m.RAMBytesPerNode != 24<<30 || m.L3BytesPerNode != 12<<20 {
		t.Error("Table I memory sizes wrong")
	}
}

func TestFaultRecoveryCostPriced(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	shape := RunShape{Processes: 2, ThreadsPerProcess: 1, DataBytes: 1 << 20}
	clean, err := m.Price(cal, shape, ops(2, 1e8), simmpi.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.FaultSeconds != 0 {
		t.Errorf("fault-free run priced FaultSeconds = %v", clean.FaultSeconds)
	}
	faulty, err := m.Price(cal, shape, ops(2, 1e8), simmpi.Stats{
		BackoffNanos:   2_000_000,
		DelayNanos:     3_000_000,
		StragglerNanos: 5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.FaultSeconds != 0.010 {
		t.Errorf("FaultSeconds = %v, want 0.010", faulty.FaultSeconds)
	}
	if faulty.TotalSeconds != clean.TotalSeconds+0.010 {
		t.Errorf("recovery cost not in the total: %v vs %v", faulty.TotalSeconds, clean.TotalSeconds)
	}
}

func TestCheckpointPricing(t *testing.T) {
	m := Lonestar4()
	cal := DefaultCalibration()
	shape := RunShape{Processes: 4, ThreadsPerProcess: 1, DataBytes: 1 << 20}

	clean, err := m.Price(cal, shape, ops(4, 1e6), simmpi.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.CheckpointSeconds != 0 {
		t.Errorf("un-checkpointed run priced CheckpointSeconds = %v", clean.CheckpointSeconds)
	}

	traffic := simmpi.Stats{Checkpoints: 4, CheckpointBytes: 3_000_000}
	ck, err := m.Price(cal, shape, ops(4, 1e6), traffic)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*m.DiskLatencySeconds + 3_000_000/m.DiskBytesPerSecond
	if ck.CheckpointSeconds != want {
		t.Errorf("CheckpointSeconds = %v, want %v", ck.CheckpointSeconds, want)
	}
	if ck.TotalSeconds != clean.TotalSeconds+want {
		t.Errorf("checkpoint cost not folded into the total: %v vs %v + %v",
			ck.TotalSeconds, clean.TotalSeconds, want)
	}

	// A Machine literal without disk parameters prices the latency and
	// bytes terms as free instead of dividing by zero.
	m.DiskLatencySeconds, m.DiskBytesPerSecond = 0, 0
	free, err := m.Price(cal, shape, ops(4, 1e6), traffic)
	if err != nil {
		t.Fatal(err)
	}
	if free.CheckpointSeconds != 0 {
		t.Errorf("disk-less machine priced checkpoints at %v", free.CheckpointSeconds)
	}
}
