// Package gb implements the paper's core contribution: Generalized-Born
// polarization energy with surface-based r⁶ Born radii, both exactly
// (naïve quadratic evaluation of Eqs. 2–4) and with the octree-based
// Greengard–Rokhlin near–far approximation of Figures 2–3, in serial,
// shared-memory (work stealing), distributed-memory (message passing) and
// hybrid flavors.
package gb

import (
	"math"
)

// CoulombKcal is the electrostatic constant in kcal·Å/(mol·e²): energies
// are returned in kcal/mol with distances in Å and charges in e.
const CoulombKcal = 332.0636

// DefaultSolventDielectric is water at 300 K, the ε_solv of Eq. 2.
const DefaultSolventDielectric = 80.0

// Tau returns the solvent prefactor τ = 1 − 1/ε_solv of Eq. 2.
func Tau(epsSolvent float64) float64 { return 1 - 1/epsSolvent }

// MathMode selects exact or approximate math for the inner kernels
// (§V-C: "We used approximate math for computing square root and power
// functions", ~1.42× faster with a small energy shift).
type MathMode int

const (
	// ExactMath uses the standard library throughout.
	ExactMath MathMode = iota
	// ApproxMath replaces 1/sqrt and exp with fast polynomial/bit-trick
	// approximations in the pair kernels.
	ApproxMath
)

// fGB is the Still pairwise denominator
// f = sqrt(r² + R_i R_j exp(−r²/(4 R_i R_j))) of Eq. 2.
func fGB(r2, RiRj float64) float64 {
	return math.Sqrt(r2 + RiRj*math.Exp(-r2/(4*RiRj)))
}

// invFGB returns 1/f_GB with exact math.
func invFGB(r2, RiRj float64) float64 {
	return 1 / fGB(r2, RiRj)
}

// invFGBApprox returns 1/f_GB using fast exp and fast inverse sqrt.
func invFGBApprox(r2, RiRj float64) float64 {
	return fastInvSqrt(r2 + RiRj*fastExp(-r2/(4*RiRj)))
}

// PairTerm returns one Eq. 2 summand q_i q_j / f_GB(r², R_iR_j) with exact
// math. Exported for the baseline package emulations, which share the GB
// energy form and differ only in how they obtain Born radii.
func PairTerm(qq, r2, RiRj float64) float64 { return qq * invFGB(r2, RiRj) }

// pairEnergyKernel returns the function computing q_i q_j / f_GB for the
// selected math mode. Isolating the choice here keeps the hot loops
// branch-free.
func pairEnergyKernel(mode MathMode) func(qq, r2, RiRj float64) float64 {
	if mode == ApproxMath {
		return func(qq, r2, RiRj float64) float64 { return qq * invFGBApprox(r2, RiRj) }
	}
	return func(qq, r2, RiRj float64) float64 { return qq * invFGB(r2, RiRj) }
}

// fastInvSqrt computes 1/sqrt(x) with the float64 bit trick refined by a
// single Newton iteration: relative error ≈ 2e-3 — the same
// speed-for-digits trade the paper's "approximate math for computing
// square root and power functions" makes (§V-C).
func fastInvSqrt(x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	i := math.Float64bits(x)
	i = 0x5fe6eb50c7b537a9 - i>>1
	y := math.Float64frombits(i)
	y = y * (1.5 - 0.5*x*y*y)
	return y
}

// fastExp computes e^x via the 2^k bit-shift construction with a degree-5
// minimax polynomial on the fractional part: relative error ≈ 1e-7 for
// the x ≤ 0 arguments the GB kernel produces.
func fastExp(x float64) float64 {
	if x < -700 {
		return 0
	}
	if x > 700 {
		return math.Inf(1)
	}
	// e^x = 2^(x·log2(e)) = 2^k · 2^f with k integer, f ∈ [-0.5, 0.5].
	const log2e = 1.4426950408889634
	const ln2 = 0.6931471805599453
	t := x * log2e
	k := math.Floor(t + 0.5)
	f := (t - k) * ln2 // e^x = 2^k · e^f, f ∈ [−ln2/2, ln2/2]
	// Degree-3 Taylor for e^f on the small interval (|f| ≤ ln2/2):
	// truncation error ≈ 6e-5 relative — crude and fast, like the
	// paper's approximate power functions.
	p := 1 + f*(1+f*(0.5+f*(1.0/6)))
	return math.Ldexp(p, int(k))
}

// bornRadiusFromIntegral converts the accumulated surface r⁶ integral
// s = Σ w_q (p_q−p_a)·n_q/|p_q−p_a|⁶ into a Born radius via
// 1/R³ = s/(4π), clamped below by the atom's intrinsic radius (Fig. 2's
// "max(r_a, ...)") and above by maxBornRadius when the integral is
// non-positive (an atom seeing no surface flux is effectively bulk).
func bornRadiusFromIntegral(s, intrinsic float64) float64 {
	if s <= 0 {
		return maxBornRadius
	}
	r := math.Cbrt(4 * math.Pi / s)
	if r < intrinsic {
		return intrinsic
	}
	if r > maxBornRadius {
		return maxBornRadius
	}
	return r
}

// bornRadiusFromIntegralR4 is the r⁴ (Coulomb-field, Eq. 3) counterpart:
// 1/R = s/(4π).
func bornRadiusFromIntegralR4(s, intrinsic float64) float64 {
	if s <= 0 {
		return maxBornRadius
	}
	r := 4 * math.Pi / s
	if r < intrinsic {
		return intrinsic
	}
	if r > maxBornRadius {
		return maxBornRadius
	}
	return r
}

// maxBornRadius caps Born radii: beyond ~1000 Å an atom is bulk solvent
// for every practical purpose and the cap keeps the class histograms of
// APPROX-Epol bounded.
const maxBornRadius = 1000.0
