package gb

import (
	"fmt"
	"time"

	"gbpolar/internal/geom"
	"gbpolar/internal/sched"
	"gbpolar/internal/simmpi"
)

// Result is the outcome of one full polarization-energy computation
// (Born radii + Epol) under some parallel driver.
type Result struct {
	// Epol is the polarization energy in kcal/mol.
	Epol float64
	// Born holds the Born radii indexed by original atom index.
	Born []float64
	// Processes and ThreadsPerProcess describe the layout (P and p).
	Processes, ThreadsPerProcess int
	// PerCoreOps holds the measured interaction-evaluation count of every
	// core (P×p entries): the input to the performance model.
	PerCoreOps []int64
	// Traffic is the communication log (empty for shared-memory runs).
	Traffic simmpi.Stats
	// Wall is the in-process wall-clock time of the run.
	Wall time.Duration
	// Steals counts work-stealing events (shared-memory runs).
	Steals int64
}

// TotalOps sums the per-core operation counts.
func (r *Result) TotalOps() int64 {
	t := int64(0)
	for _, o := range r.PerCoreOps {
		t += o
	}
	return t
}

// RunSerial computes Born radii and Epol with the serial octree algorithm
// (the OCT baseline at P = p = 1).
func (s *System) RunSerial() *Result {
	start := time.Now()
	radii, bornOps := s.BornRadii()
	e, epolOps := s.Epol(radii)
	return &Result{
		Epol: e, Born: radii,
		Processes: 1, ThreadsPerProcess: 1,
		PerCoreOps: []int64{bornOps + epolOps},
		Wall:       time.Since(start),
	}
}

// RunCilk is OCT_CILK: the shared-memory driver. Work is divided over the
// quadrature leaves (Born phase), atom segments (push phase) and atom
// leaves (energy phase) by recursive splitting onto the work-stealing
// pool, the paper's implicit dynamic load balancing.
func (s *System) RunCilk(pool *sched.Pool) *Result {
	start := time.Now()
	p := pool.NumWorkers()
	stealsBefore := pool.Steals()

	perWorkerOps := make([]int64, p)

	// Phase A: APPROX-INTEGRALS over quadrature leaves, thread-local
	// accumulators merged after the join.
	accs := make([]*bornAccum, p)
	for i := range accs {
		accs[i] = s.newBornAccum()
	}
	grain := len(s.qLeaves)/(8*p) + 1
	pool.ParallelRange(len(s.qLeaves), grain, func(w *sched.Worker, lo, hi int) {
		acc := accs[w.ID()]
		ops := int64(0)
		for _, q := range s.qLeaves[lo:hi] {
			ops += s.ApproxIntegrals(s.TA.Root(), q, acc)
		}
		perWorkerOps[w.ID()] += ops
	})
	acc := accs[0]
	for _, other := range accs[1:] {
		acc.add(other)
	}

	// Phase B: PUSH-INTEGRALS over atom segments.
	radii := make([]float64, s.NumAtoms())
	grain = s.NumAtoms()/(8*p) + 1
	pool.ParallelRange(s.NumAtoms(), grain, func(w *sched.Worker, lo, hi int) {
		perWorkerOps[w.ID()] += s.PushIntegralsToAtoms(acc, lo, hi, radii)
	})

	// Phase C: APPROX-Epol over atom leaves.
	agg := s.buildEpolAggregates(radii)
	sums := make([]float64, p)
	grain = len(s.aLeaves)/(8*p) + 1
	pool.ParallelRange(len(s.aLeaves), grain, func(w *sched.Worker, lo, hi int) {
		sum := 0.0
		ops := int64(0)
		for _, v := range s.aLeaves[lo:hi] {
			vs, vops := s.ApproxEpol(s.TA.Root(), v, radii, agg)
			sum += vs
			ops += vops
		}
		sums[w.ID()] += sum
		perWorkerOps[w.ID()] += ops
	})
	total := 0.0
	for _, v := range sums {
		total += v
	}

	return &Result{
		Epol:      -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * total,
		Born:      radii,
		Processes: 1, ThreadsPerProcess: p,
		PerCoreOps: balancePool(perWorkerOps),
		Wall:       time.Since(start),
		Steals:     pool.Steals() - stealsBefore,
	}
}

// balancePool redistributes a work-stealing pool's operation counts evenly
// across its workers. On the execution host the raw per-worker counts
// reflect goroutine scheduling, not the algorithm: the randomized
// work-stealing scheduler guarantees T_p ≤ W/p + O(span) on a real
// multicore, so the modeled per-core load is the fair share W/p (the
// remainder is spread over the first workers). Distribution across RANKS
// (static division) is left untouched — that imbalance is algorithmic.
func balancePool(ops []int64) []int64 {
	total := int64(0)
	for _, o := range ops {
		total += o
	}
	p := int64(len(ops))
	out := make([]int64, len(ops))
	for i := range out {
		out[i] = total / p
		if int64(i) < total%p {
			out[i]++
		}
	}
	return out
}

// RunMPI is OCT_MPI: P single-threaded message-passing ranks following
// Fig. 4 (static node-based division, Allreduce of partial integrals,
// Allgatherv of Born-radius segments, Allreduce of partial energies).
// With Params.Division == AtomNode the atom-based division of §IV is used
// instead.
func (s *System) RunMPI(P int) (*Result, error) {
	return s.runDistributed(P, 1)
}

// RunHybrid is OCT_MPI+CILK: P ranks × p work-stealing threads.
func (s *System) RunHybrid(P, p int) (*Result, error) {
	return s.runDistributed(P, p)
}

func (s *System) runDistributed(P, p int) (*Result, error) {
	if P < 1 || p < 1 {
		return nil, fmt.Errorf("gb: invalid layout P=%d p=%d", P, p)
	}
	start := time.Now()
	perCoreOps := make([]int64, P*p)
	radiiOut := make([]float64, s.NumAtoms())
	energy := 0.0
	var steals int64

	traffic, err := simmpi.Run(P, func(c *simmpi.Comm) {
		rank := c.Rank()
		var pool *sched.Pool
		if p > 1 {
			pool = sched.New(p)
			defer pool.Close()
		}
		coreBase := rank * p

		// ---- Phase 1+2: Born integrals for this rank's segment --------
		// One accumulator per worker thread (tasks on the same worker run
		// sequentially), merged after the join.
		accs := make([]*bornAccum, p)
		for i := range accs {
			accs[i] = s.newBornAccum()
		}
		switch s.Params.Division {
		case NodeNode:
			lo, hi := segment(len(s.qLeaves), P, rank)
			s.forRange(pool, hi-lo, func(worker int, i0, i1 int) {
				ops := int64(0)
				for _, q := range s.qLeaves[lo+i0 : lo+i1] {
					ops += s.ApproxIntegrals(s.TA.Root(), q, accs[worker])
				}
				perCoreOps[coreBase+worker] += ops
			})
		case AtomNode:
			alo, ahi := segment(s.NumAtoms(), P, rank)
			s.forRange(pool, len(s.qLeaves), func(worker int, i0, i1 int) {
				ops := int64(0)
				for _, q := range s.qLeaves[i0:i1] {
					ops += s.approxIntegralsAtomRange(s.TA.Root(), q, int32(alo), int32(ahi), accs[worker])
				}
				perCoreOps[coreBase+worker] += ops
			})
		}
		acc := accs[0]
		for _, other := range accs[1:] {
			acc.add(other)
		}

		// ---- Phase 3: gather partial integrals (Fig. 4 Step 3) --------
		flat := make([]float64, 0, 4*len(acc.nodeS)+len(acc.atomS))
		flat = append(flat, acc.nodeS...)
		for _, g := range acc.nodeG {
			flat = append(flat, g.X, g.Y, g.Z)
		}
		flat = append(flat, acc.atomS...)
		merged := c.Allreduce(flat, simmpi.Sum)
		copy(acc.nodeS, merged[:len(acc.nodeS)])
		gs := merged[len(acc.nodeS) : 4*len(acc.nodeS)]
		for i := range acc.nodeG {
			acc.nodeG[i] = geom.V(gs[3*i], gs[3*i+1], gs[3*i+2])
		}
		copy(acc.atomS, merged[4*len(acc.nodeS):])

		// ---- Phase 4: Born radii for this rank's atom segment ---------
		radii := make([]float64, s.NumAtoms())
		alo, ahi := segment(s.NumAtoms(), P, rank)
		s.forRange(pool, ahi-alo, func(worker int, i0, i1 int) {
			perCoreOps[coreBase+worker] += s.PushIntegralsToAtoms(acc, alo+i0, alo+i1, radii)
		})

		// ---- Phase 5: gather Born radii (octree item order) -----------
		seg := make([]float64, 0, ahi-alo)
		for pos := alo; pos < ahi; pos++ {
			seg = append(seg, radii[s.TA.Items[pos]])
		}
		all := c.Allgatherv(seg)
		for pos, r := range all {
			radii[s.TA.Items[pos]] = r
		}

		// ---- Phase 6: partial energies ---------------------------------
		agg := s.buildEpolAggregates(radii)
		kernel := pairEnergyKernel(s.Params.Math)
		factor := epolFarFactor(s.Params.EpsEpol, s.Params.OpeningScale)
		partials := make([]float64, max(p, 1))
		switch s.Params.Division {
		case NodeNode:
			lo, hi := segment(len(s.aLeaves), P, rank)
			s.forRange(pool, hi-lo, func(worker int, i0, i1 int) {
				sum := 0.0
				ops := int64(0)
				for _, v := range s.aLeaves[lo+i0 : lo+i1] {
					vs, vops := s.approxEpol(s.TA.Root(), v, radii, agg, kernel, factor)
					sum += vs
					ops += vops
				}
				partials[worker] += sum
				perCoreOps[coreBase+worker] += ops
			})
		case AtomNode:
			s.forRange(pool, ahi-alo, func(worker int, i0, i1 int) {
				sum := 0.0
				ops := int64(0)
				for pos := alo + i0; pos < alo+i1; pos++ {
					ai := s.TA.Items[pos]
					vs, vops := s.approxEpolAtom(ai, s.TA.Root(), radii, agg, kernel, factor)
					sum += vs
					ops += vops
				}
				partials[worker] += sum
				perCoreOps[coreBase+worker] += ops
			})
		}
		partial := 0.0
		for _, v := range partials {
			partial += v
		}

		// ---- Phase 7: master accumulates the final Epol ----------------
		sum := c.Allreduce([]float64{partial}, simmpi.Sum)
		if rank == 0 {
			energy = -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum[0]
			copy(radiiOut, radii)
		}
		if pool != nil && rank == 0 {
			steals = pool.Steals()
		}
	})
	if err != nil {
		return nil, err
	}
	if p > 1 {
		// Balance each rank's pool counts (see balancePool): the
		// cross-rank distribution stays as measured.
		for rank := 0; rank < P; rank++ {
			copy(perCoreOps[rank*p:(rank+1)*p], balancePool(perCoreOps[rank*p:(rank+1)*p]))
		}
	}
	return &Result{
		Epol: energy, Born: radiiOut,
		Processes: P, ThreadsPerProcess: p,
		PerCoreOps: perCoreOps,
		Traffic:    traffic,
		Wall:       time.Since(start),
		Steals:     steals,
	}, nil
}

// forRange runs fn over [0, n) either serially (pool nil: worker 0 gets
// everything) or via the rank's work-stealing pool. fn receives the
// worker index and a half-open subrange.
func (s *System) forRange(pool *sched.Pool, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if pool == nil {
		fn(0, 0, n)
		return
	}
	grain := n/(8*pool.NumWorkers()) + 1
	pool.ParallelRange(n, grain, func(w *sched.Worker, lo, hi int) {
		fn(w.ID(), lo, hi)
	})
}
