package gb

import (
	"fmt"
	"time"

	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
	"gbpolar/internal/sched"
	"gbpolar/internal/simmpi"
)

// Result is the outcome of one full polarization-energy computation
// (Born radii + Epol) under some parallel driver.
type Result struct {
	// Epol is the polarization energy in kcal/mol.
	Epol float64
	// Born holds the Born radii indexed by original atom index.
	Born []float64
	// Processes and ThreadsPerProcess describe the layout (P and p).
	Processes, ThreadsPerProcess int
	// PerCoreOps holds the measured interaction-evaluation count of every
	// core (P×p entries): the input to the performance model.
	PerCoreOps []int64
	// Traffic is the communication log (empty for shared-memory runs).
	Traffic simmpi.Stats
	// Wall is the in-process wall-clock time of the run.
	Wall time.Duration
	// Steals counts work-stealing events (shared-memory runs).
	Steals int64

	// Degraded marks a partial result: ranks died mid-run under the
	// Degrade policy and Epol is missing their final-phase contributions.
	// |Epol_serial − Epol| ≤ ErrorBound then holds (see degradedBound).
	Degraded bool
	// ErrorBound is the guaranteed bound on the missing energy mass of a
	// Degraded result, in kcal/mol. Zero when not degraded.
	ErrorBound float64
	// LostRanks are the ranks lost to injected crashes during the run.
	LostRanks []int
	// Recovered reports that lost or straggling ranks' work was
	// re-assigned to survivors (at least one phase was healed).
	Recovered bool
}

// TotalOps sums the per-core operation counts.
func (r *Result) TotalOps() int64 {
	t := int64(0)
	for _, o := range r.PerCoreOps {
		t += o
	}
	return t
}

// Span names of the algorithm phases; comm spans ("comm:<kind>") are
// opened inside simmpi and fault-recovery redo iterations carry a
// "redo:" prefix (see phaseName).
const (
	spanRank   = "rank"
	spanBorn   = "approx-integrals"
	spanPush   = "push-integrals-to-atoms"
	spanOctree = "octree-build"
	spanEpol   = "approx-epol"
	redoPrefix = "redo:"
)

// phaseName names a phase span, marking heal-by-redo repeat iterations.
func phaseName(base string, iter int) string {
	if iter == 0 {
		return base
	}
	return redoPrefix + base
}

// countPairSplit publishes an iteration's near/far evaluation split. The
// counts are work-done totals across ranks (and across redo iterations),
// so they are deterministic exactly when the iteration structure is —
// always for crash-free runs.
func countPairSplit(rec *obs.Recorder, bornNear, bornFar, epolNear, epolFar int64) {
	rec.Count("pairs.born.near", bornNear)
	rec.Count("pairs.born.far", bornFar)
	rec.Count("pairs.epol.near", epolNear)
	rec.Count("pairs.epol.far", epolFar)
}

// observePairSplit feeds one rank's (or the whole run's, for the
// non-distributed drivers) near/far split into the counter-side
// ".rank"-suffixed histograms: the distribution across ranks is how load
// imbalance of the static division shows up, and it is as deterministic
// as the per-rank totals themselves.
func observePairSplit(rec *obs.Recorder, bornNear, bornFar, epolNear, epolFar int64) {
	rec.Observe("pairs.born.near.rank", bornNear)
	rec.Observe("pairs.born.far.rank", bornFar)
	rec.Observe("pairs.epol.near.rank", epolNear)
	rec.Observe("pairs.epol.far.rank", epolFar)
}

// runSerial is the serial octree baseline (P = p = 1), instrumented. The
// phase structure and floating-point operation order are exactly
// BornRadii + Epol, so the result is bitwise identical to the
// uninstrumented pipeline (asserted by runspec_test.go).
func (s *System) runSerial(rec *obs.Recorder) *Result {
	sw := perf.StartTimer()
	root := rec.StartSpan(0, spanRank)
	defer root.End()

	sp := rec.StartSpan(0, spanBorn)
	acc := s.newBornAccum()
	bornOps := int64(0)
	for _, q := range s.qLeaves {
		bornOps += s.ApproxIntegrals(s.TA.Root(), q, acc)
	}
	sp.End()

	sp = rec.StartSpan(0, spanPush)
	radii := make([]float64, s.NumAtoms())
	bornOps += s.PushIntegralsToAtoms(acc, 0, s.NumAtoms(), radii)
	sp.End()

	sp = rec.StartSpan(0, spanOctree)
	agg := s.buildEpolAggregates(radii)
	sp.End()

	sp = rec.StartSpan(0, spanEpol)
	kernel := pairEnergyKernel(s.Params.Math)
	factor := s.epolFactor()
	var tally pairTally
	sum := 0.0
	epolOps := int64(0)
	for _, v := range s.aLeaves {
		vs, vops := s.approxEpol(s.TA.Root(), v, radii, agg, kernel, factor, &tally)
		sum += vs
		epolOps += vops
	}
	sp.End()

	countPairSplit(rec, acc.near, acc.far, tally.near, tally.far)
	observePairSplit(rec, acc.near, acc.far, tally.near, tally.far)
	return &Result{
		Epol:      -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum,
		Born:      radii,
		Processes: 1, ThreadsPerProcess: 1,
		PerCoreOps: []int64{bornOps + epolOps},
		Wall:       sw.Elapsed(),
	}
}

// epolPart is the energy-phase reduction accumulator: the partial raw sum
// plus the near/far evaluation tally riding along. The sum field is
// accumulated and merged exactly like the former bare *float64, so the
// reduction stays bitwise identical.
type epolPart struct {
	sum   float64
	tally pairTally
}

func newEpolPart() *epolPart { return new(epolPart) }

func (p *epolPart) merge(o *epolPart) {
	p.sum += o.sum
	p.tally.near += o.tally.near
	p.tally.far += o.tally.far
}

// runCilk is OCT_CILK, the shared-memory driver, instrumented.
func (s *System) runCilk(pool *sched.Pool, rec *obs.Recorder) *Result {
	sw := perf.StartTimer()
	root := rec.StartSpan(0, spanRank)
	defer root.End()
	p := pool.NumWorkers()
	stealsBefore := pool.Steals()

	perWorkerOps := make([]int64, p)

	// Phase A: APPROX-INTEGRALS over quadrature leaves. Accumulators are
	// per-SUBRANGE, not per-worker, and merged in range order: under
	// randomized stealing the leaf→worker assignment varies run to run, and
	// per-worker accumulation would make the floating-point merge order —
	// and hence the low bits of every radius and energy — scheduling-
	// dependent. ParallelReduce pins the reduction tree to (n, grain) so
	// results are bitwise reproducible (see determinism_test.go).
	sp := rec.StartSpan(0, spanBorn)
	grain := len(s.qLeaves)/(8*p) + 1
	acc := sched.ParallelReduce(pool, len(s.qLeaves), grain,
		s.newBornAccum,
		func(w *sched.Worker, lo, hi int, acc *bornAccum) {
			ops := int64(0)
			for _, q := range s.qLeaves[lo:hi] {
				ops += s.ApproxIntegrals(s.TA.Root(), q, acc)
			}
			perWorkerOps[w.ID()] += ops
		},
		(*bornAccum).add)
	sp.End()

	// Phase B: PUSH-INTEGRALS over atom segments.
	sp = rec.StartSpan(0, spanPush)
	radii := make([]float64, s.NumAtoms())
	grain = s.NumAtoms()/(8*p) + 1
	pool.ParallelRange(s.NumAtoms(), grain, func(w *sched.Worker, lo, hi int) {
		perWorkerOps[w.ID()] += s.PushIntegralsToAtoms(acc, lo, hi, radii)
	})
	sp.End()

	// Phase C: APPROX-Epol over atom leaves, reduced in range order for the
	// same bitwise reproducibility as phase A.
	sp = rec.StartSpan(0, spanOctree)
	agg := s.buildEpolAggregates(radii)
	sp.End()
	sp = rec.StartSpan(0, spanEpol)
	kernel := pairEnergyKernel(s.Params.Math)
	factor := s.epolFactor()
	grain = len(s.aLeaves)/(8*p) + 1
	totalP := sched.ParallelReduce(pool, len(s.aLeaves), grain,
		newEpolPart,
		func(w *sched.Worker, lo, hi int, part *epolPart) {
			sum := 0.0
			ops := int64(0)
			for _, v := range s.aLeaves[lo:hi] {
				vs, vops := s.approxEpol(s.TA.Root(), v, radii, agg, kernel, factor, &part.tally)
				sum += vs
				ops += vops
			}
			part.sum += sum
			perWorkerOps[w.ID()] += ops
		},
		(*epolPart).merge)
	total := totalP.sum
	sp.End()

	countPairSplit(rec, acc.near, acc.far, totalP.tally.near, totalP.tally.far)
	observePairSplit(rec, acc.near, acc.far, totalP.tally.near, totalP.tally.far)
	rec.GaugeAdd("sched.steals", pool.Steals()-stealsBefore)

	return &Result{
		Epol:      -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * total,
		Born:      radii,
		Processes: 1, ThreadsPerProcess: p,
		PerCoreOps: balancePool(perWorkerOps),
		Wall:       sw.Elapsed(),
		Steals:     pool.Steals() - stealsBefore,
	}
}

// balancePool redistributes a work-stealing pool's operation counts evenly
// across its workers. On the execution host the raw per-worker counts
// reflect goroutine scheduling, not the algorithm: the randomized
// work-stealing scheduler guarantees T_p ≤ W/p + O(span) on a real
// multicore, so the modeled per-core load is the fair share W/p (the
// remainder is spread over the first workers). Distribution across RANKS
// (static division) is left untouched — that imbalance is algorithmic.
func balancePool(ops []int64) []int64 {
	total := int64(0)
	for _, o := range ops {
		total += o
	}
	p := int64(len(ops))
	out := make([]int64, len(ops))
	for i := range out {
		out[i] = total / p
		if int64(i) < total%p {
			out[i]++
		}
	}
	return out
}

// validateLayout rejects impossible process layouts up front with a
// descriptive error instead of producing empty segments downstream.
func (s *System) validateLayout(P, p int) error {
	if P <= 0 {
		return fmt.Errorf("gb: invalid layout: processes P=%d must be positive", P)
	}
	if p <= 0 {
		return fmt.Errorf("gb: invalid layout: threads per process p=%d must be positive", p)
	}
	if P > s.NumAtoms() {
		return fmt.Errorf("gb: invalid layout: P=%d exceeds the %d atoms (at most one atom per rank segment)", P, s.NumAtoms())
	}
	if s.Params.Division == NodeNode {
		if n := len(s.qLeaves); P > n {
			return fmt.Errorf("gb: invalid layout: P=%d exceeds the %d quadrature leaves of the node division", P, n)
		}
		if n := len(s.aLeaves); P > n {
			return fmt.Errorf("gb: invalid layout: P=%d exceeds the %d atom leaves of the node division", P, n)
		}
	}
	return nil
}

// runDistributed executes the shared-data distributed algorithm. With an
// inactive fault config it reproduces the seed protocol bit-for-bit. With
// an active plan, every phase runs under the heal-by-redo discipline
// described in faulttol.go: partition over the agreed live set, run the
// phase, re-agree, and redo the phase over the shrunk set if membership
// changed — or, for the final energy phase under the Degrade policy,
// accept the partial sum and report a rigorous ErrorBound for the dead
// ranks' missing share.
//
// With spec.Checkpoint set, a snapshot of the world-global state is saved
// after each completed phase inside Sync brackets (quiet barriers), so
// the sink perturbs neither the numbers nor the counter-side Summary.
// With spec.Resume set, completed phases are skipped: their merged state
// comes from the snapshot and the run re-enters at the first incomplete
// phase. The restored obs.CounterSnapshot makes the resumed run's Summary
// cover the whole logical run; the initial membership agreement is
// skipped on resume because the snapshot's run already performed it (the
// resumed half starts with all its ranks live and agrees after its first
// phase as usual).
func (s *System) runDistributed(P, p int, spec RunSpec) (*Result, error) {
	cfg, rec, sink, resume := spec.Faults, spec.Obs, spec.Checkpoint, spec.Resume
	if err := s.validateLayout(P, p); err != nil {
		return nil, err
	}
	sw := perf.StartTimer()

	startPhase := PhaseNone
	if resume != nil {
		startPhase = resume.Phase
		rec.RestoreCounterSnapshot(resume.Obs)
		if startPhase >= PhaseEpol {
			// The snapshot is a finished run: reconstruct the Result without
			// spinning up a world. The Summary covers everything the snapshot
			// did (all phases); only the rank-root spans — open while the
			// snapshot was taken — are absent, since no world runs here.
			n := s.NumAtoms()
			radii := make([]float64, n)
			copy(radii, resume.Payload[:n])
			return &Result{
				Epol: resume.Payload[n], Born: radii,
				Processes: P, ThreadsPerProcess: p,
				PerCoreOps: make([]int64, P*p),
				Wall:       sw.Elapsed(),
				Degraded:   resume.Payload[n+1] != 0,
				ErrorBound: resume.Payload[n+2],
			}, nil
		}
	}
	perCoreOps := make([]int64, P*p)

	// Every rank that completes records its outcome in its own slot; the
	// lowest surviving rank's slot becomes the Result. (All survivors hold
	// identical agreed values — per-rank slots just keep the writes
	// race-free without electing a writer, which would itself be a
	// fault-prone protocol.)
	type rankOutcome struct {
		done      bool
		energy    float64
		radii     []float64
		steals    int64
		degraded  bool
		bound     float64
		recovered bool
	}
	outs := make([]rankOutcome, P)
	ft := cfg.active()

	//lint:ignore ctxflow the world's run IS this call; RunSpec.Ctx is observed cooperatively at phase boundaries (spec.canceled), not by interrupting ranks
	traffic, err := simmpi.RunPlanObs(P, cfg.plan(), rec, func(c *simmpi.Comm) error {
		rank := c.Rank()
		// The rank root span. Its deferred End force-closes any phase span
		// leaked by an error return or an injected crash (panic unwind), so
		// the exported span tree stays balanced on every path.
		rankSpan := rec.StartSpan(rank, spanRank)
		defer rankSpan.End()
		var pool *sched.Pool
		if p > 1 {
			pool = sched.New(p)
			pool.Observe(rec)
			defer pool.Close()
		}
		coreBase := rank * p

		var lost, live, stragglers []int
		recovered := false
		if ft {
			if startPhase == PhaseNone {
				var err error
				if lost, err = agreeLost(c); err != nil {
					return err
				}
			} else {
				// Resume: the saving run already performed the initial
				// membership agreement (it is part of the restored counter
				// snapshot), and every rank of this fresh world is live.
				// Running it again would double the op and counter cost
				// relative to an uninterrupted run; the first post-phase
				// agreement below catches any injected early crash.
				lost = nil
			}
			live = liveRanksOf(P, lost)
			stragglers = c.Health().Straggling
			if len(stragglers) > 0 {
				recovered = true // slowed ranks shed half their share
			}
		}
		// saveCheckpoint snapshots the agreed world-global state after a
		// completed phase. The bracket Syncs are quiet barriers: the first
		// guarantees every live rank finished the phase's counting before
		// the lowest live rank encodes (one writer, no concurrent Save),
		// the second holds the others until the write is durable. Nothing
		// here is a fault point or a deterministic counter, so a run with a
		// sink is op- and Summary-identical to one without.
		saveCheckpoint := func(phase CheckpointPhase, payload func() []float64) error {
			if sink == nil {
				return nil
			}
			if err := c.Sync(); err != nil {
				return err
			}
			liveNow := live
			if !ft {
				liveNow = liveRanksOf(P, nil)
			}
			if len(liveNow) > 0 && rank == liveNow[0] {
				enc := (&Checkpoint{
					Phase: phase, Processes: P,
					Live: liveNow, Lost: lost,
					ConfigTag: s.configTag(),
					EpsBorn:   s.Params.EpsBorn,
					EpsEpol:   s.Params.EpsEpol,
					Payload:   payload(),
					Obs:       rec.CounterSnapshot(),
				}).Encode()
				c.RecordCheckpoint(int64(len(enc)))
				if err := sink.Save(phase, enc); err != nil {
					return fmt.Errorf("gb: saving %s checkpoint: %w", phase, err)
				}
			}
			return c.Sync()
		}
		// share partitions n items: the seed's static segment without
		// faults, the agreed-live straggler-weighted partition with them.
		share := func(n int) (int, int) {
			if !ft {
				return segment(n, P, rank)
			}
			return liveShare(n, live, stragglers, rank)
		}

		// Flattened integral payload of Fig. 4 Step 3 (order-aware: the
		// Hessian block rides along only at OrderQuadrupole).
		encodeAcc := func(acc *bornAccum) []float64 { return acc.encode() }
		decodeAcc := func(acc *bornAccum, merged []float64) { acc.decode(merged) }

		// ---- Phase 1+2+3: Born integrals + Allreduce (Fig. 4 Steps 1-3),
		// healed by redo on membership change --------------------------
		// healIters tracks each phase loop's final iteration count; the
		// "redo.iterations" histogram is a workload property (zero on
		// every rank for crash-free plans, so crash-free summaries stay
		// byte-identical).
		var acc *bornAccum
		runIntegrals := func() error {
			healIters := 0
			for iter := 0; ; iter++ {
				healIters = iter
				if iter > P {
					return fmt.Errorf("gb: integral phase heal did not converge")
				}
				if ft {
					if err := c.Tick(); err != nil {
						return err
					}
				}
				sp := rec.StartSpan(rank, phaseName(spanBorn, iter))
				// One accumulator per subrange, merged in range order (see
				// reduceRange): scheduling never changes the float merge
				// order, so each rank's integral payload is bitwise
				// reproducible. Rebuilt fresh per iteration so a redo cannot
				// double-count.
				switch s.Params.Division {
				case NodeNode:
					lo, hi := share(len(s.qLeaves))
					acc = reduceRange(pool, hi-lo, s.newBornAccum,
						//lint:ignore hotalloc per-phase worker body; allocated once per Born iteration and amortized over its whole range
						func(worker, i0, i1 int, acc *bornAccum) {
							ops := int64(0)
							for _, q := range s.qLeaves[lo+i0 : lo+i1] {
								ops += s.ApproxIntegrals(s.TA.Root(), q, acc)
							}
							perCoreOps[coreBase+worker] += ops
						},
						(*bornAccum).add)
				case AtomNode:
					alo, ahi := share(s.NumAtoms())
					acc = reduceRange(pool, len(s.qLeaves), s.newBornAccum,
						//lint:ignore hotalloc per-phase worker body; allocated once per Born iteration and amortized over its whole range
						func(worker, i0, i1 int, acc *bornAccum) {
							ops := int64(0)
							for _, q := range s.qLeaves[i0:i1] {
								ops += s.approxIntegralsAtomRange(s.TA.Root(), q, int32(alo), int32(ahi), acc)
							}
							perCoreOps[coreBase+worker] += ops
						},
						(*bornAccum).add)
				}
				// Work-done counters: a redo iteration counts again, because the
				// evaluations really ran again. The per-rank values also feed
				// the cross-rank split histograms.
				rec.Count("pairs.born.near", acc.near)
				rec.Count("pairs.born.far", acc.far)
				rec.Observe("pairs.born.near.rank", acc.near)
				rec.Observe("pairs.born.far.rank", acc.far)
				merged, err := c.Allreduce(encodeAcc(acc), simmpi.Sum)
				if err != nil {
					return err
				}
				if ft {
					newLost, err := agreeLost(c)
					if err != nil {
						return err
					}
					if !equalInts(newLost, lost) {
						lost, live = newLost, liveRanksOf(P, newLost)
						recovered = true
						sp.End()
						continue
					}
				}
				decodeAcc(acc, merged)
				sp.End()
				break
			}
			rec.Observe("redo.iterations", int64(healIters))
			return nil
		}
		if startPhase < PhaseIntegrals {
			if err := runIntegrals(); err != nil {
				return err
			}
			if err := saveCheckpoint(PhaseIntegrals, func() []float64 { return encodeAcc(acc) }); err != nil {
				return err
			}
			// Phase boundary: the integrals checkpoint is durable, so a
			// cancellation here (and at the boundaries below) loses no
			// completed work. Every rank evaluates the same check at the
			// same program point; any rank returning the error aborts the
			// world, so no rank can block in the next phase's collective.
			if err := spec.canceled(); err != nil {
				return err
			}
		} else if startPhase == PhaseIntegrals {
			// Resume: the merged integrals come from the snapshot; nothing to
			// recompute or communicate. (Resuming past this phase, the
			// accumulator is never read and stays nil.)
			acc = s.newBornAccum()
			decodeAcc(acc, resume.Payload)
		}

		// ---- Phase 4+5: Born radii + gather (Fig. 4 Steps 4-5), healed
		// by redo ------------------------------------------------------
		radii := make([]float64, s.NumAtoms())
		runRadii := func() error {
			healIters := 0
			for iter := 0; ; iter++ {
				healIters = iter
				if iter > P {
					return fmt.Errorf("gb: radii phase heal did not converge")
				}
				if ft {
					if err := c.Tick(); err != nil {
						return err
					}
				}
				sp := rec.StartSpan(rank, phaseName(spanPush, iter))
				alo, ahi := share(s.NumAtoms())
				//lint:ignore hotalloc per-phase worker body; allocated once per Born iteration and amortized over its whole range
				s.forRange(pool, ahi-alo, func(worker int, i0, i1 int) {
					perCoreOps[coreBase+worker] += s.PushIntegralsToAtoms(acc, alo+i0, alo+i1, radii)
				})
				if !ft {
					// Seed protocol: positional concatenation in octree item
					// order (every rank present by construction).
					//lint:ignore hotalloc collective payload: simmpi slots retain the contributed slice, so each round needs a fresh buffer
					seg := make([]float64, 0, ahi-alo)
					for pos := alo; pos < ahi; pos++ {
						seg = append(seg, radii[s.TA.Items[pos]])
					}
					all, err := c.Allgatherv(seg)
					if err != nil {
						return err
					}
					for pos, r := range all {
						radii[s.TA.Items[pos]] = r
					}
					sp.End()
					break
				}
				// Fault-tolerant protocol: (atom index, radius) pairs, so a
				// missing rank cannot silently shift the concatenation.
				//lint:ignore hotalloc collective payload: simmpi slots retain the contributed slice, so each round needs a fresh buffer
				seg := make([]float64, 0, 2*(ahi-alo))
				for pos := alo; pos < ahi; pos++ {
					ai := s.TA.Items[pos]
					seg = append(seg, float64(ai), radii[ai])
				}
				all, err := c.Allgatherv(seg)
				if err != nil {
					return err
				}
				newLost, err := agreeLost(c)
				if err != nil {
					return err
				}
				if !equalInts(newLost, lost) {
					lost, live = newLost, liveRanksOf(P, newLost)
					recovered = true
					sp.End()
					continue
				}
				for i := 0; i+1 < len(all); i += 2 {
					radii[int(all[i])] = all[i+1]
				}
				sp.End()
				break
			}
			rec.Observe("redo.iterations", int64(healIters))
			return nil
		}
		if startPhase < PhaseRadii {
			if err := runRadii(); err != nil {
				return err
			}
			if err := saveCheckpoint(PhaseRadii, func() []float64 { return radii }); err != nil {
				return err
			}
			if err := spec.canceled(); err != nil {
				return err
			}
		} else {
			copy(radii, resume.Payload[:s.NumAtoms()])
		}

		// ---- Phase 6+7: partial energies + reduction (Fig. 4 Steps 6-7),
		// healed by redo or degraded with a bound ------------------------
		var agg *epolAggregates
		if startPhase < PhaseAggregates {
			osp := rec.StartSpan(rank, spanOctree)
			agg = s.buildEpolAggregates(radii)
			osp.End()
			if err := saveCheckpoint(PhaseAggregates, func() []float64 { return radii }); err != nil {
				return err
			}
			if err := spec.canceled(); err != nil {
				return err
			}
		} else {
			// The aggregates are a cheap deterministic function of the radii:
			// rebuild them rather than resurrect them from bytes, but without
			// opening a span — the restored snapshot already counted the
			// original octree-build spans.
			agg = s.buildEpolAggregates(radii)
		}
		kernel := pairEnergyKernel(s.Params.Math)
		factor := s.epolFactor()
		energy := 0.0
		degraded := false
		bound := 0.0
		healIters := 0
		for iter := 0; ; iter++ {
			healIters = iter
			if iter > P {
				return fmt.Errorf("gb: energy phase heal did not converge")
			}
			if ft {
				if err := c.Tick(); err != nil {
					return err
				}
			}
			sp := rec.StartSpan(rank, phaseName(spanEpol, iter))
			var partialP *epolPart
			switch s.Params.Division {
			case NodeNode:
				lo, hi := share(len(s.aLeaves))
				partialP = reduceRange(pool, hi-lo, newEpolPart,
					//lint:ignore hotalloc per-phase worker body; allocated once per energy round and amortized over its whole range
					func(worker, i0, i1 int, part *epolPart) {
						sum := 0.0
						ops := int64(0)
						for _, v := range s.aLeaves[lo+i0 : lo+i1] {
							vs, vops := s.approxEpol(s.TA.Root(), v, radii, agg, kernel, factor, &part.tally)
							sum += vs
							ops += vops
						}
						part.sum += sum
						perCoreOps[coreBase+worker] += ops
					},
					(*epolPart).merge)
			case AtomNode:
				alo, ahi := share(s.NumAtoms())
				partialP = reduceRange(pool, ahi-alo, newEpolPart,
					//lint:ignore hotalloc per-phase worker body; allocated once per energy round and amortized over its whole range
					func(worker, i0, i1 int, part *epolPart) {
						sum := 0.0
						ops := int64(0)
						for pos := alo + i0; pos < alo+i1; pos++ {
							ai := s.TA.Items[pos]
							vs, vops := s.approxEpolAtom(ai, s.TA.Root(), radii, agg, kernel, factor, &part.tally)
							sum += vs
							ops += vops
						}
						part.sum += sum
						perCoreOps[coreBase+worker] += ops
					},
					(*epolPart).merge)
			}
			partial := partialP.sum
			rec.Count("pairs.epol.near", partialP.tally.near)
			rec.Count("pairs.epol.far", partialP.tally.far)
			rec.Observe("pairs.epol.near.rank", partialP.tally.near)
			rec.Observe("pairs.epol.far.rank", partialP.tally.far)
			//lint:ignore hotalloc single-element reduce operand; simmpi slots retain it, so each round contributes a fresh slice
			sum, err := c.Allreduce([]float64{partial}, simmpi.Sum)
			if err != nil {
				return err
			}
			if !ft {
				energy = -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum[0]
				sp.End()
				break
			}
			prevLive := live
			newLost, err := agreeLost(c)
			if err != nil {
				return err
			}
			if equalInts(newLost, lost) {
				energy = -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum[0]
				sp.End()
				break
			}
			if cfg.Policy == Recover {
				lost, live = newLost, liveRanksOf(P, newLost)
				recovered = true
				sp.End()
				continue
			}
			// Degrade: accept the partial sum and bound the energy mass the
			// newly dead ranks' shares would have contributed. Conservative
			// for a rank that died after contributing (its real missing
			// mass is zero ≤ bound).
			var deadAtoms []int32
			j := 0
			for _, d := range newLost {
				for j < len(lost) && lost[j] < d {
					j++
				}
				if j < len(lost) && lost[j] == d {
					continue // lost before this phase: share already re-assigned
				}
				if s.Params.Division == NodeNode {
					lo, hi := liveShare(len(s.aLeaves), prevLive, stragglers, d)
					//lint:ignore hotalloc cold degrade path; the dead share's atom count is unknown until the walk completes
					deadAtoms = append(deadAtoms, s.shareAtomsNodeNode(lo, hi)...)
				} else {
					lo, hi := liveShare(s.NumAtoms(), prevLive, stragglers, d)
					//lint:ignore hotalloc cold degrade path; the dead share's atom count is unknown until the walk completes
					deadAtoms = append(deadAtoms, s.shareAtomsAtomNode(lo, hi)...)
				}
			}
			energy = -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum[0]
			bound = s.degradedBound(deadAtoms)
			degraded = true
			sp.End()
			break
		}
		rec.Observe("redo.iterations", int64(healIters))
		if err := saveCheckpoint(PhaseEpol, func() []float64 {
			pl := make([]float64, 0, s.NumAtoms()+3)
			pl = append(pl, radii...)
			deg := 0.0
			if degraded {
				deg = 1
			}
			return append(pl, energy, deg, bound)
		}); err != nil {
			return err
		}

		out := &outs[rank]
		out.energy = energy
		out.radii = radii
		out.degraded = degraded
		out.bound = bound
		out.recovered = recovered
		if pool != nil {
			out.steals = pool.Steals()
		}
		out.done = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	winner := -1
	for r := 0; r < P; r++ {
		if outs[r].done {
			winner = r
			break
		}
	}
	if winner < 0 {
		return nil, fmt.Errorf("gb: no rank survived the run (lost ranks %v)", traffic.LostRanks)
	}
	if p > 1 {
		// Balance each rank's pool counts (see balancePool): the
		// cross-rank distribution stays as measured.
		for rank := 0; rank < P; rank++ {
			copy(perCoreOps[rank*p:(rank+1)*p], balancePool(perCoreOps[rank*p:(rank+1)*p]))
		}
	}
	w := &outs[winner]
	return &Result{
		Epol: w.energy, Born: w.radii,
		Processes: P, ThreadsPerProcess: p,
		PerCoreOps: perCoreOps,
		Traffic:    traffic,
		Wall:       sw.Elapsed(),
		Steals:     w.steals,
		Degraded:   w.degraded,
		ErrorBound: w.bound,
		LostRanks:  traffic.LostRanks,
		Recovered:  w.recovered,
	}, nil
}

// forRange runs fn over [0, n) either serially (pool nil: worker 0 gets
// everything) or via the rank's work-stealing pool. fn receives the
// worker index and a half-open subrange.
// reduceRange is forRange with an ordered reduction: each subrange folds
// into its own accumulator and merge combines them in ascending-range
// order via sched.ParallelReduce, so a fixed (P, p) layout reduces in a
// fixed order and the result is bitwise identical run to run regardless
// of stealing. The serial (pool == nil) path is a single fold; its
// grouping differs from the parallel tree's, so results across DIFFERENT
// layouts still agree only to rounding (as the cross-layout tests assert).
func reduceRange[T any](pool *sched.Pool, n int, mk func() T, fn func(worker, lo, hi int, acc T), merge func(dst, src T)) T {
	if pool == nil {
		acc := mk()
		if n > 0 {
			fn(0, 0, n, acc)
		}
		return acc
	}
	grain := n/(8*pool.NumWorkers()) + 1
	return sched.ParallelReduce(pool, n, grain, mk,
		func(w *sched.Worker, lo, hi int, acc T) { fn(w.ID(), lo, hi, acc) },
		merge)
}

func (s *System) forRange(pool *sched.Pool, n int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if pool == nil {
		fn(0, 0, n)
		return
	}
	grain := n/(8*pool.NumWorkers()) + 1
	pool.ParallelRange(n, grain, func(w *sched.Worker, lo, hi int) {
		fn(w.ID(), lo, hi)
	})
}
