package gb

import (
	"strings"
	"testing"
	"time"

	"gbpolar/internal/fault"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
	"gbpolar/internal/sched"
)

// crashFreePlan builds a deterministic fault schedule without crashes:
// straggle/delay/drop recovery is replayed identically run to run, so
// results and metrics stay bitwise comparable (crash timing races make
// redo counts scheduling-dependent — those are exercised by the span
// tests below, not the bitwise ones).
func crashFreePlan() *fault.Plan {
	return &fault.Plan{Events: []fault.Event{
		{Kind: fault.Straggle, Rank: 1, AtOp: 2, Count: 3, Dur: 40 * time.Microsecond},
		{Kind: fault.Delay, Rank: 0, To: -1, AtOp: 1, Count: 2, Dur: 25 * time.Microsecond},
		{Kind: fault.Drop, Rank: 2, To: -1, AtOp: 3, Count: 1},
	}}
}

// TestRunMatchesLegacyWrappers pins the API redesign's core contract:
// Run(RunSpec) is bitwise-identical to every deprecated Run* entry
// point it replaces.
func TestRunMatchesLegacyWrappers(t *testing.T) {
	s := buildSys(t, 400, DefaultParams())

	t.Run("serial", func(t *testing.T) {
		legacy := s.RunSerial()
		res, err := s.Run(RunSpec{})
		if err != nil {
			t.Fatal(err)
		}
		bitwiseSame(t, "serial", legacy, res)
	})

	t.Run("cilk", func(t *testing.T) {
		pool := sched.New(4)
		defer pool.Close()
		legacy := s.RunCilk(pool)
		res, err := s.Run(RunSpec{Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		bitwiseSame(t, "cilk", legacy, res)
	})

	t.Run("mpi", func(t *testing.T) {
		legacy, err := s.RunMPI(3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(RunSpec{Processes: 3})
		if err != nil {
			t.Fatal(err)
		}
		bitwiseSame(t, "mpi", legacy, res)
	})

	t.Run("hybrid", func(t *testing.T) {
		legacy, err := s.RunHybrid(2, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(RunSpec{Processes: 2, ThreadsPerProcess: 3})
		if err != nil {
			t.Fatal(err)
		}
		bitwiseSame(t, "hybrid", legacy, res)
	})

	t.Run("mpi-faults", func(t *testing.T) {
		cfg := &FaultConfig{Plan: crashFreePlan()}
		legacy, err := s.RunMPIWithFaults(4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(RunSpec{Processes: 4, Faults: cfg})
		if err != nil {
			t.Fatal(err)
		}
		bitwiseSame(t, "mpi-faults", legacy, res)
	})

	t.Run("hybrid-faults", func(t *testing.T) {
		cfg := &FaultConfig{Plan: crashFreePlan()}
		legacy, err := s.RunHybridWithFaults(4, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(RunSpec{Processes: 4, ThreadsPerProcess: 2, Faults: cfg})
		if err != nil {
			t.Fatal(err)
		}
		bitwiseSame(t, "hybrid-faults", legacy, res)
	})
}

// TestRunSpecValidation walks the invalid-spec space: every conflicting
// combination must produce an error, not a silently-chosen driver.
func TestRunSpecValidation(t *testing.T) {
	s := buildSys(t, 120, DefaultParams())
	pool := sched.New(2)
	defer pool.Close()
	faulty := &FaultConfig{Plan: crashFreePlan()}

	bad := []struct {
		name string
		spec RunSpec
	}{
		{"negative-processes", RunSpec{Processes: -1}},
		{"negative-threads", RunSpec{ThreadsPerProcess: -2}},
		{"pool-with-processes", RunSpec{Pool: pool, Processes: 2}},
		{"pool-thread-mismatch", RunSpec{Pool: pool, ThreadsPerProcess: 5}},
		{"pool-with-faults", RunSpec{Pool: pool, Faults: faulty}},
		{"threads-without-layout", RunSpec{ThreadsPerProcess: 2}},
		{"faults-without-processes", RunSpec{Faults: faulty}},
	}
	for _, tc := range bad {
		if _, err := s.Run(tc.spec); err == nil {
			t.Errorf("%s: Run accepted an invalid spec", tc.name)
		}
	}

	// The legacy wrappers keep their historical validation errors.
	if _, err := s.RunMPI(0); err == nil {
		t.Error("RunMPI(0) must error")
	}
	if _, err := s.RunHybrid(0, 1); err == nil {
		t.Error("RunHybrid(0, 1) must error")
	}
	if _, err := s.RunHybrid(2, 0); err == nil {
		t.Error("RunHybrid(2, 0) must error")
	}

	// An inactive fault config is not an error anywhere.
	if _, err := s.Run(RunSpec{Faults: &FaultConfig{}}); err != nil {
		t.Errorf("inactive FaultConfig on a serial spec: %v", err)
	}
}

// TestObsDoesNotChangeNumbers is the instrumentation-neutrality
// invariant: attaching a recorder must leave every computed number
// bitwise unchanged.
func TestObsDoesNotChangeNumbers(t *testing.T) {
	s := buildSys(t, 400, DefaultParams())
	specs := []struct {
		name string
		spec RunSpec
	}{
		{"serial", RunSpec{}},
		{"mpi", RunSpec{Processes: 3}},
		{"hybrid", RunSpec{Processes: 2, ThreadsPerProcess: 3}},
		{"faults", RunSpec{Processes: 4, Faults: &FaultConfig{Plan: crashFreePlan()}}},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := s.Run(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			withObs := tc.spec
			withObs.Obs = obs.NewRecorder(perf.StartTimer().Elapsed)
			observed, err := s.Run(withObs)
			if err != nil {
				t.Fatal(err)
			}
			bitwiseSame(t, tc.name, plain, observed)
			if len(withObs.Obs.Spans()) == 0 {
				t.Error("recorder captured no spans")
			}
		})
	}
}

// TestSummaryDeterministic runs the same spec twice with fresh recorders
// and demands byte-identical metric summaries — the Summary excludes
// gauges and timings precisely so this holds. It also spot-checks that
// the workload counters the exporters promise are present.
func TestSummaryDeterministic(t *testing.T) {
	s := buildSys(t, 400, DefaultParams())
	run := func() string {
		rec := obs.NewRecorder(perf.StartTimer().Elapsed)
		rec.SetLabel("summary-test")
		spec := RunSpec{
			Processes: 3, ThreadsPerProcess: 2,
			Faults: &FaultConfig{Plan: crashFreePlan()},
			Obs:    rec,
		}
		if _, err := s.Run(spec); err != nil {
			t.Fatal(err)
		}
		return rec.Summary()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("summaries differ between identical runs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	for _, want := range []string{
		"counter pairs.born.near ",
		"counter pairs.born.far ",
		"counter pairs.epol.near ",
		"counter pairs.epol.far ",
		"counter comm.allreduce.calls ",
		"counter comm.allgatherv.bytes ",
		// Drop/Delay target point-to-point sends; this driver is pure
		// collectives, so only the straggle events leave a counter.
		"counter fault.straggles ",
		// Counter-side histograms: per-rank pair splits (one observation
		// per rank), per-call collective payloads, and the heal-loop
		// iteration counts (3 phases × 3 ranks, all zero crash-free).
		"hist comm.allreduce.bytes.percall ",
		"hist pairs.born.near.rank count=3 ",
		"hist pairs.epol.far.rank count=3 ",
		"hist redo.iterations count=9 ",
		"span approx-integrals ",
		"span push-integrals-to-atoms ",
		"span octree-build ",
		"span approx-epol ",
		"span rank ",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("summary lacks %q:\n%s", want, a)
		}
	}
}

// checkSpanTree asserts structural well-formedness of a recorder's span
// tree: everything closed, intervals ordered, children contained in
// their parents.
func checkSpanTree(t *testing.T, rec *obs.Recorder) []obs.SpanRecord {
	t.Helper()
	if n := rec.OpenSpans(); n != 0 {
		t.Errorf("%d spans left open", n)
	}
	spans := rec.Spans()
	for i, sp := range spans {
		if sp.End < sp.Start {
			t.Errorf("span %d %q: end %v before start %v", i, sp.Name, sp.End, sp.Start)
		}
		if sp.Parent >= 0 {
			p := spans[sp.Parent]
			if p.Rank != sp.Rank {
				t.Errorf("span %d %q: parent on rank %d, child on rank %d", i, sp.Name, p.Rank, sp.Rank)
			}
			if sp.Start < p.Start || sp.End > p.End {
				t.Errorf("span %d %q [%v,%v] escapes parent %q [%v,%v]",
					i, sp.Name, sp.Start, sp.End, p.Name, p.Start, p.End)
			}
		}
	}
	return spans
}

// TestSpanTreeUnderCrashRecovery drives a crash-and-heal run and asserts
// the span tree stays well-formed through the unwind: the rank root span
// force-closes anything the crash left open, redo iterations appear as
// redo:-prefixed spans, and every surviving rank carries all four
// algorithm phases.
func TestSpanTreeUnderCrashRecovery(t *testing.T) {
	s := buildSys(t, 400, DefaultParams())
	rec := obs.NewRecorder(perf.StartTimer().Elapsed)
	const P = 4
	res, err := s.Run(RunSpec{
		Processes: P,
		Faults: &FaultConfig{
			Plan:   &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 1, AtOp: 4}}},
			Policy: Recover,
		},
		Obs: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatal("crash plan did not trigger recovery")
	}
	spans := checkSpanTree(t, rec)

	lost := make(map[int]bool)
	for _, r := range res.LostRanks {
		lost[r] = true
	}
	phases := map[int]map[string]bool{}
	redo := false
	for _, sp := range spans {
		if phases[sp.Rank] == nil {
			phases[sp.Rank] = make(map[string]bool)
		}
		phases[sp.Rank][sp.Name] = true
		if strings.HasPrefix(sp.Name, redoPrefix) {
			redo = true
		}
	}
	if !redo {
		t.Error("recovered run recorded no redo: spans")
	}
	for rank := 0; rank < P; rank++ {
		if lost[rank] {
			continue
		}
		for _, phase := range []string{spanBorn, spanPush, spanOctree, spanEpol} {
			if !phases[rank][phase] {
				t.Errorf("surviving rank %d lacks %q span (has %v)", rank, phase, phases[rank])
			}
		}
	}
}

// TestSpanTreeUnderChaos replays seeded chaos schedules and requires the
// span tree to stay well-formed whatever the fault mix does to control
// flow — the structural counterpart of the chaos-smoke deadlock tests.
func TestSpanTreeUnderChaos(t *testing.T) {
	s := buildSys(t, 300, DefaultParams())
	for _, seed := range []int64{3, 11, 42} {
		rec := obs.NewRecorder(perf.StartTimer().Elapsed)
		_, err := s.Run(RunSpec{
			Processes: 4,
			Faults:    &FaultConfig{Plan: fault.Chaos(seed, 4, 6), Policy: Recover},
			Obs:       rec,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if t.Failed() {
			return
		}
		checkSpanTree(t, rec)
	}
}
