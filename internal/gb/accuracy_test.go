package gb

import (
	"math"
	"strings"
	"testing"

	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// TestAccuracyResolution pins how Params resolve to an effective
// accuracy point: a zero Accuracy falls back to the deprecated ε fields
// at the calibrated dipole default; a non-zero Accuracy wins and its own
// zero fields take the defaults — except Order, where 0 means monopole.
func TestAccuracyResolution(t *testing.T) {
	legacy := DefaultParams()
	legacy.EpsBorn, legacy.EpsEpol, legacy.EpsBin = 0.7, 0.5, 0.1
	got := legacy.EffectiveAccuracy()
	want := Accuracy{EpsBorn: 0.7, EpsEpol: 0.5, BinWidth: 0.1, QuadOrder: 1, Order: OrderDipole}
	if got != want {
		t.Errorf("legacy resolution: %+v, want %+v", got, want)
	}

	p := DefaultParams()
	p.EpsBorn = 0.1 // the deprecated field must lose
	p.Accuracy = Accuracy{EpsEpol: 0.5}
	got = p.EffectiveAccuracy()
	want = Accuracy{EpsBorn: 0.9, EpsEpol: 0.5, QuadOrder: 1, Order: OrderMonopole}
	if got != want {
		t.Errorf("explicit resolution: %+v, want %+v", got, want)
	}

	if d := DefaultAccuracy(); d.Order != OrderDipole || d.EpsBorn != 0.9 || d.QuadOrder != 1 {
		t.Errorf("DefaultAccuracy = %+v", d)
	}
	if !(Accuracy{}).IsZero() || DefaultAccuracy().IsZero() {
		t.Error("IsZero misclassifies")
	}
}

// TestAccuracyDefaultBitwiseCompatible is the CLI-migration pin: a system
// built with an explicit default Accuracy computes bitwise-identical
// results to one built on the deprecated fields alone.
func TestAccuracyDefaultBitwiseCompatible(t *testing.T) {
	m := molecule.Exactly(molecule.Globule("accdef", 300, 17), 300, 17)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oldSys, err := NewSystem(m, surf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Accuracy = Accuracy{EpsBorn: 0.9, EpsEpol: 0.9, QuadOrder: 1, Order: 1}
	newSys, err := NewSystem(m, surf, p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := oldSys.RunSerial(), newSys.RunSerial()
	if math.Float64bits(a.Epol) != math.Float64bits(b.Epol) {
		t.Errorf("explicit default Accuracy changed Epol: %v vs %v", b.Epol, a.Epol)
	}
	for i := range a.Born {
		if math.Float64bits(a.Born[i]) != math.Float64bits(b.Born[i]) {
			t.Fatalf("explicit default Accuracy changed Born[%d]: %v vs %v", i, b.Born[i], a.Born[i])
		}
	}
}

// TestAccuracyValidate pins the spec's own validation.
func TestAccuracyValidate(t *testing.T) {
	cases := []struct {
		name string
		acc  Accuracy
		ok   bool
	}{
		{"zero means defaults", Accuracy{}, true},
		{"default point", DefaultAccuracy(), true},
		{"negative eps", Accuracy{EpsBorn: -0.5}, false},
		{"bin wider than eps", Accuracy{EpsEpol: 0.5, BinWidth: 0.6}, false},
		{"bin wider than defaulted eps", Accuracy{BinWidth: 1.0}, false},
		{"negative bin", Accuracy{BinWidth: -0.1}, false},
		{"quad order too high", Accuracy{QuadOrder: 9}, false},
		{"order out of range", Accuracy{Order: 3}, false},
		{"negative order", Accuracy{Order: -1}, false},
		{"negative target", Accuracy{TargetError: -1}, false},
		{"quadrupole fine", Accuracy{Order: 2, QuadOrder: 3}, true},
	}
	for _, c := range cases {
		if err := c.acc.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestParamsRejectEpsBinAboveEpsEpol pins the PR 8 small fix: the
// deprecated EpsBin field is subject to the same bound as
// Accuracy.BinWidth — bins wider than the energy criterion silently
// degrade the Fig. 3 histogram bound and must be rejected, not absorbed.
func TestParamsRejectEpsBinAboveEpsEpol(t *testing.T) {
	p := DefaultParams()
	p.EpsEpol, p.EpsBin = 0.9, 1.5
	err := p.Validate()
	if err == nil {
		t.Fatal("EpsBin > EpsEpol passed Validate")
	}
	if !strings.Contains(err.Error(), "EpsEpol") {
		t.Errorf("rejection does not name the bound: %v", err)
	}
	m := molecule.Exactly(molecule.Globule("bin", 50, 3), 50, 3)
	surf, serr := surface.Build(m, surface.DefaultConfig())
	if serr != nil {
		t.Fatal(serr)
	}
	if _, err := NewSystem(m, surf, p); err == nil {
		t.Error("NewSystem accepted EpsBin > EpsEpol")
	}
}

// TestRunSpecAccuracyOverrideMatchesDedicatedSystem pins the override
// path: running a prepared quadrupole system at a looser dipole point via
// RunSpec.Accuracy is bitwise the same as building a system at that point
// directly (same surface) — one System serves many accuracy points.
func TestRunSpecAccuracyOverrideMatchesDedicatedSystem(t *testing.T) {
	m := molecule.Exactly(molecule.Globule("ovr", 300, 23), 300, 23)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Accuracy = Accuracy{EpsBorn: 0.3, EpsEpol: 0.3, BinWidth: 0.3 / 8, QuadOrder: 1, Order: OrderQuadrupole}
	host, err := NewSystem(m, surf, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, acc := range []Accuracy{
		{EpsBorn: 0.9, EpsEpol: 0.9, QuadOrder: 1, Order: OrderDipole},
		{EpsBorn: 1.2, EpsEpol: 1.2, QuadOrder: 1, Order: OrderMonopole},
		{EpsBorn: 0.6, EpsEpol: 0.6, QuadOrder: 1, Order: OrderQuadrupole},
	} {
		acc := acc
		over, err := host.Run(RunSpec{Accuracy: &acc})
		if err != nil {
			t.Fatalf("override %+v: %v", acc, err)
		}
		dp := DefaultParams()
		dp.Accuracy = acc
		dedicated, err := NewSystem(m, surf, dp)
		if err != nil {
			t.Fatal(err)
		}
		direct := dedicated.RunSerial()
		if math.Float64bits(over.Epol) != math.Float64bits(direct.Epol) {
			t.Errorf("override at %+v: Epol %v, dedicated system %v", acc, over.Epol, direct.Epol)
		}
	}
}

// TestWithAccuracyBuildsMissingMoments pins the shallow-copy contract:
// raising a dipole system to quadrupole via WithAccuracy builds the
// second-moment aggregates on the copy (the original is untouched) and
// matches a system built at quadrupole from scratch.
func TestWithAccuracyBuildsMissingMoments(t *testing.T) {
	m := molecule.Exactly(molecule.Globule("wacc", 300, 29), 300, 29)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewSystem(m, surf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	baseline := base.RunSerial()

	acc := Accuracy{EpsBorn: 0.9, EpsEpol: 0.9, QuadOrder: 1, Order: OrderQuadrupole}
	up, err := base.WithAccuracy(acc)
	if err != nil {
		t.Fatal(err)
	}
	dp := DefaultParams()
	dp.Accuracy = acc
	dedicated, err := NewSystem(m, surf, dp)
	if err != nil {
		t.Fatal(err)
	}
	got, want := up.RunSerial(), dedicated.RunSerial()
	if math.Float64bits(got.Epol) != math.Float64bits(want.Epol) {
		t.Errorf("WithAccuracy quadrupole Epol %v, dedicated %v", got.Epol, want.Epol)
	}

	// The original system is untouched.
	again := base.RunSerial()
	if math.Float64bits(again.Epol) != math.Float64bits(baseline.Epol) {
		t.Errorf("WithAccuracy perturbed the receiver: %v vs %v", again.Epol, baseline.Epol)
	}

	if _, err := base.WithAccuracy(Accuracy{EpsBorn: -1}); err == nil {
		t.Error("WithAccuracy accepted an invalid point")
	}
	same, err := base.WithAccuracy(Accuracy{})
	if err != nil || same != base {
		t.Errorf("zero accuracy should return the receiver unchanged (got %p vs %p, err %v)", same, base, err)
	}
}

// TestOrder2CheckpointResume is the PR 8 resume regression at p = 2: the
// quadrupole payload (9 extra floats per surface point in the integrals
// snapshot) round-trips through a kill/resume cycle to bitwise-identical
// results.
func TestOrder2CheckpointResume(t *testing.T) {
	const P = 4
	m := molecule.Exactly(molecule.Globule("ck2", 300, 31), 300, 31)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Accuracy = Accuracy{EpsBorn: 0.9, EpsEpol: 0.9, QuadOrder: 1, Order: OrderQuadrupole}
	s, err := NewSystem(m, surf, p)
	if err != nil {
		t.Fatal(err)
	}

	sinkA := &memSink{}
	resA, err := s.Run(RunSpec{Processes: P, Faults: &FaultConfig{ForceProtocol: true}, Checkpoint: sinkA})
	if err != nil {
		t.Fatal(err)
	}

	sinkB := &memSink{}
	_, err = s.Run(RunSpec{Processes: P, Faults: &FaultConfig{Plan: crashAllAt(P, 4)}, Checkpoint: sinkB})
	if err == nil {
		t.Fatal("killing every rank should fail the run")
	}
	ck := sinkB.latest(t)
	if ck.Phase != PhaseIntegrals {
		t.Fatalf("last checkpoint at phase %s, want %s", ck.Phase, PhaseIntegrals)
	}

	resB, err := s.Run(RunSpec{Processes: P, Faults: &FaultConfig{ForceProtocol: true}, Resume: ck})
	if err != nil {
		t.Fatalf("quadrupole resume failed: %v", err)
	}
	if math.Float64bits(resB.Epol) != math.Float64bits(resA.Epol) {
		t.Errorf("resumed quadrupole Epol %v != uninterrupted %v", resB.Epol, resA.Epol)
	}
	for i := range resA.Born {
		if math.Float64bits(resB.Born[i]) != math.Float64bits(resA.Born[i]) {
			t.Fatalf("resumed Born[%d] differs", i)
		}
	}
}

// TestCanResumeRejectsOrderMismatch pins the shape guard the supervisor
// leans on: a checkpoint saved at one expansion order cannot silently
// resume a system at another (the integrals payload shape differs), and
// CanResume reports it instead of corrupting the run.
func TestCanResumeRejectsOrderMismatch(t *testing.T) {
	const P = 3
	m := molecule.Exactly(molecule.Globule("ckmix", 200, 37), 200, 37)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mkSys := func(order int) *System {
		p := DefaultParams()
		p.Accuracy = Accuracy{EpsBorn: 0.9, EpsEpol: 0.9, QuadOrder: 1, Order: order}
		s, err := NewSystem(m, surf, p)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	dip, quad := mkSys(OrderDipole), mkSys(OrderQuadrupole)

	sink := &memSink{}
	if _, err := dip.Run(RunSpec{Processes: P, Faults: &FaultConfig{Plan: crashAllAt(P, 4)}, Checkpoint: sink}); err == nil {
		t.Fatal("killing every rank should fail the run")
	}
	ck := sink.latest(t)
	if ck.Phase != PhaseIntegrals {
		t.Fatalf("checkpoint phase %s, want %s", ck.Phase, PhaseIntegrals)
	}

	if err := dip.CanResume(ck); err != nil {
		t.Errorf("same-order CanResume rejected its own checkpoint: %v", err)
	}
	if err := quad.CanResume(ck); err == nil {
		t.Error("quadrupole system accepted a dipole integrals checkpoint")
	}
	if err := dip.CanResume(nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
}
