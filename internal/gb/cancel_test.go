package gb

import (
	"context"
	"errors"
	"testing"

	"gbpolar/internal/obs"
)

// cancelSink saves like memSink and cancels the context once the target
// phase's snapshot is durable — modeling a drain signal arriving while
// the run is mid-pipeline.
type cancelSink struct {
	memSink
	at     CheckpointPhase
	cancel context.CancelFunc
}

func (k *cancelSink) Save(phase CheckpointPhase, encoded []byte) error {
	if err := k.memSink.Save(phase, encoded); err != nil {
		return err
	}
	if phase == k.at {
		k.cancel()
	}
	return nil
}

func TestRunCanceledBeforeStart(t *testing.T) {
	s := buildSys(t, 200, DefaultParams())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Run(RunSpec{Processes: 2, Ctx: ctx})
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if !errors.Is(err, ErrRunCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap ErrRunCanceled and context.Canceled", err)
	}
}

func TestNilContextNeverCancels(t *testing.T) {
	s := buildSys(t, 200, DefaultParams())
	if _, err := s.Run(RunSpec{Processes: 2}); err != nil {
		t.Fatalf("nil-Ctx run failed: %v", err)
	}
}

// TestCancelAtPhaseBoundaryResumesBitwise is the drain contract: a run
// canceled at a phase boundary keeps its last completed phase's
// checkpoint, and resuming from it reproduces the uninterrupted run's
// Epol and Born radii bitwise.
func TestCancelAtPhaseBoundaryResumesBitwise(t *testing.T) {
	const P = 4
	s := buildSys(t, 300, DefaultParams())

	ref, err := s.Run(RunSpec{Processes: P, Faults: &FaultConfig{ForceProtocol: true}})
	if err != nil {
		t.Fatal(err)
	}

	for _, at := range []CheckpointPhase{PhaseIntegrals, PhaseRadii, PhaseAggregates} {
		ctx, cancel := context.WithCancel(context.Background())
		sink := &cancelSink{at: at, cancel: cancel}
		_, err := s.Run(RunSpec{
			Processes:  P,
			Faults:     &FaultConfig{ForceProtocol: true},
			Checkpoint: sink,
			Ctx:        ctx,
		})
		cancel()
		if !errors.Is(err, ErrRunCanceled) {
			t.Fatalf("cancel at %s: got error %v, want ErrRunCanceled", at, err)
		}
		ck := sink.latest(t)
		if ck.Phase != at {
			t.Fatalf("cancel at %s: last durable checkpoint is %s", at, ck.Phase)
		}

		rec := obs.NewRecorder(nil)
		res, err := s.Run(RunSpec{
			Processes: P,
			Faults:    &FaultConfig{ForceProtocol: true},
			Obs:       rec,
			Resume:    ck,
		})
		if err != nil {
			t.Fatalf("resume after cancel at %s: %v", at, err)
		}
		if res.Epol != ref.Epol {
			t.Errorf("cancel at %s: resumed Epol %v != uninterrupted %v", at, res.Epol, ref.Epol)
		}
		for i := range ref.Born {
			if res.Born[i] != ref.Born[i] {
				t.Errorf("cancel at %s: Born[%d] differs", at, i)
				break
			}
		}
	}
}
