package gb

import (
	"math"

	"gbpolar/internal/geom"
	"gbpolar/internal/octree"
)

// This file implements the ATOM-BASED-WORK-DIVISION alternative of §IV:
// atoms (not leaf nodes) are divided among processes, each process
// traverses both octrees but computes only for the atoms in its range.
// The paper observes it is slightly slower than node-based division and —
// because division boundaries split tree nodes — its approximation error
// varies with the process count, unlike the node-based scheme.

// approxIntegralsAtomRange is APPROX-INTEGRALS restricted to atoms whose
// octree item position lies in [lo, hi): far-field sums may only be
// collected at T_A nodes fully owned by the range (collecting at a
// partially-owned node would double-count across ranks), so boundary
// nodes are descended instead — the source of the P-dependent error.
func (s *System) approxIntegralsAtomRange(a, q int32, lo, hi int32, acc *bornAccum) int64 {
	an := &s.TA.Nodes[a]
	if an.End <= lo || an.Start >= hi {
		return 1
	}
	if an.Start >= lo && an.End <= hi {
		qn := &s.TQ.Nodes[q]
		return s.approxIntegrals(a, q, qn, s.nodeNormal[q], s.bornBeta(), s.order(), acc)
	}
	// Partially owned: cannot approximate here.
	if an.Leaf {
		r4Form := s.Params.Integral == IntegralR4
		ops := int64(0)
		for pos := max(an.Start, lo); pos < min(an.End, hi); pos++ {
			ai := s.TA.Items[pos]
			pa := s.atomPos[ai]
			sum := 0.0
			for _, qi := range s.TQ.ItemsOf(q) {
				qp := &s.Surf.Points[qi]
				dv := qp.Pos.Sub(pa)
				r2 := dv.Norm2()
				rp := r2 * r2
				if !r4Form {
					rp *= r2
				}
				sum += qp.Weight * dv.Dot(qp.Normal) / rp
				ops++
			}
			acc.atomS[ai] += sum
		}
		acc.near += ops
		return ops
	}
	ops := int64(1)
	for _, c := range an.Children {
		if c != octree.NoChild {
			ops += s.approxIntegralsAtomRange(c, q, lo, hi, acc)
		}
	}
	return ops
}

// approxEpolAtom computes one atom's interaction with the subtree under
// node u, Barnes-Hut style (the atom is a point, so the far criterion
// reduces to d > r_U·factor): the atom-based energy traversal. Returns the
// raw Σ_j q_i q_j/f sum and the evaluation count.
func (s *System) approxEpolAtom(ai int32, u int32, radii []float64, agg *epolAggregates,
	kernel func(qq, r2, RiRj float64) float64, factor float64, tally *pairTally) (float64, int64) {
	un := &s.TA.Nodes[u]
	pi := s.atomPos[ai]
	qi := s.Mol.Atoms[ai].Charge
	ri := radii[ai]
	d := un.Center.Dist(pi)
	if !un.Leaf && epolFar(d, un.Radius, 0, factor) {
		// Far: classes of U against the atom's exact radius — the order-p
		// expansion of farClassSum specialized to a point target (δ = m_a,
		// the source offset; the target side contributes no moments).
		r2 := d * d
		dhat := un.Center.Sub(pi).Scale(1 / d)
		ord := agg.order
		sum := 0.0
		ops := int64(0)
		base := int(u) * agg.M
		approx := s.Params.Math == ApproxMath
		for j := 0; j < agg.M; j++ {
			qu := agg.hist[base+j]
			var du float64
			if ord >= OrderDipole {
				du = dhat.Dot(agg.dip[base+j])
			}
			if qu == 0 && du == 0 &&
				(ord != OrderQuadrupole || agg.quad[base+j] == (geom.Mat3{})) {
				continue
			}
			// Class product representative: exact atom radius × class-mid
			// radius; powR[k] = Rmin²(1+εb)^(k+1), so the class-j mid
			// radius Rmin(1+εb)^(j+1/2) is sqrt(powR[2j]).
			t := ri * math.Sqrt(agg.powR[2*j])
			var e, invF float64
			if approx {
				e = fastExp(-r2 / (4 * t))
				invF = fastInvSqrt(r2 + t*e)
			} else {
				e = math.Exp(-r2 / (4 * t))
				invF = 1 / math.Sqrt(r2+t*e)
			}
			if ord == OrderMonopole {
				sum += qi * qu * invF
				ops++
				continue
			}
			gp := -d * (1 - e/4) * invF * invF * invF
			sum += qi*qu*invF + qi*gp*du
			if ord == OrderQuadrupole {
				up := 2 * d * (1 - e/4)
				upp := 2*(1-e/4) + (r2/(4*t))*e
				invF3 := invF * invF * invF
				gpp := 0.75*up*up*invF3*invF*invF - 0.5*upp*invF3
				ku := &agg.quad[base+j]
				a2 := dhat.Dot(ku.MulVec(dhat))
				b2 := ku[0] + ku[4] + ku[8]
				sum += qi * (0.5*gpp*a2 + (0.5*gp/d)*(b2-a2))
			}
			ops++
		}
		if ops == 0 {
			ops = 1
		}
		tally.addFar(ops)
		return sum, ops
	}
	if un.Leaf {
		sum := 0.0
		ops := int64(0)
		for _, vi := range s.TA.ItemsOf(u) {
			if vi == ai {
				sum += qi * qi / ri
				ops++
				continue
			}
			r2 := pi.Dist2(s.atomPos[vi])
			sum += kernel(qi*s.Mol.Atoms[vi].Charge, r2, ri*radii[vi])
			ops++
		}
		tally.addNear(ops)
		return sum, ops
	}
	sum := 0.0
	ops := int64(1)
	for _, c := range un.Children {
		if c != octree.NoChild {
			cs, cops := s.approxEpolAtom(ai, c, radii, agg, kernel, factor, tally)
			sum += cs
			ops += cops
		}
	}
	return sum, ops
}
