package gb

import (
	"math"
	"testing"
	"testing/quick"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// Physical invariant: Epol is invariant under rigid motion of the whole
// molecule (§IV-C Step 1 relies on this to reuse octrees in docking
// scans).
func TestEpolRigidMotionInvariance(t *testing.T) {
	mol := molecule.Exactly(molecule.Globule("inv", 500, 87), 500, 87)
	tr := geom.Translate(geom.V(17, -4, 9)).Compose(geom.Rotate(geom.V(1, 2, 3), 1.1))
	moved := mol.ApplyTransform(tr)

	run := func(m *molecule.Molecule) float64 {
		surf, err := surface.Build(m, surface.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(m, surf, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return sys.RunSerial().Epol
	}
	e0, e1 := run(mol), run(moved)
	// The octree decomposition is orientation-dependent (axis-aligned
	// cells), so the *approximation* differs slightly; the energies must
	// agree within the ε error band.
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.01 {
		t.Errorf("Epol changed by %.3f%% under rigid motion (%v vs %v)", rel*100, e0, e1)
	}
}

// The transformed-surface fast path must agree with rebuilding from the
// transformed molecule exactly for the naive evaluator (no octree
// orientation effects).
func TestNaiveRigidMotionViaTransformedSurface(t *testing.T) {
	mol := molecule.Exactly(molecule.Globule("inv2", 300, 88), 300, 88)
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(mol, surf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	radii, _ := sys.NaiveBornRadiiR6()
	e0, _ := sys.NaiveEpol(radii)

	tr := geom.Rotate(geom.V(0, 1, 0), 0.83).Compose(geom.Translate(geom.V(3, 3, 3)))
	movedMol := mol.ApplyTransform(tr)
	movedSurf := surf.ApplyTransform(tr)
	sys2, err := NewSystem(movedMol, movedSurf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	radii2, _ := sys2.NaiveBornRadiiR6()
	e1, _ := sys2.NaiveEpol(radii2)
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 1e-10 {
		t.Errorf("naive energy changed by %v under rigid motion", rel)
	}
	for i := range radii {
		if math.Abs(radii[i]-radii2[i]) > 1e-9 {
			t.Fatalf("Born radius %d changed: %v vs %v", i, radii[i], radii2[i])
		}
	}
}

// Property: f_GB is symmetric, positive, bounded below by max(r, 0) and
// above by sqrt(r² + RiRj).
func TestFGBProperties(t *testing.T) {
	f := func(rRaw, aRaw, bRaw float64) bool {
		r2 := math.Mod(math.Abs(rRaw), 1e4)
		ra := 0.5 + math.Mod(math.Abs(aRaw), 50)
		rb := 0.5 + math.Mod(math.Abs(bRaw), 50)
		if math.IsNaN(r2) || math.IsNaN(ra) || math.IsNaN(rb) {
			return true
		}
		v := fGB(r2, ra*rb)
		vSym := fGB(r2, rb*ra)
		upper := math.Sqrt(r2 + ra*rb)
		lower := math.Sqrt(r2)
		return v == vSym && v > 0 && v >= lower-1e-12 && v <= upper+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Born radii are monotone in the integral: a larger surface
// flux means a smaller radius.
func TestBornRadiusMonotone(t *testing.T) {
	f := func(aRaw, bRaw float64) bool {
		s1 := 1e-6 + math.Mod(math.Abs(aRaw), 10)
		s2 := 1e-6 + math.Mod(math.Abs(bRaw), 10)
		if math.IsNaN(s1) || math.IsNaN(s2) {
			return true
		}
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		r1 := bornRadiusFromIntegral(s1, 0.1)
		r2 := bornRadiusFromIntegral(s2, 0.1)
		return r1 >= r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Epol scales quadratically with uniform charge scaling (at
// fixed radii): E(λq) = λ²E(q).
func TestEpolChargeScaling(t *testing.T) {
	mol := molecule.Exactly(molecule.Globule("scale", 200, 89), 200, 89)
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(mol, surf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	radii, _ := sys.NaiveBornRadiiR6()
	e1, _ := sys.NaiveEpol(radii)

	scaled := mol.Clone()
	for i := range scaled.Atoms {
		scaled.Atoms[i].Charge *= 2
	}
	sys2, err := NewSystem(scaled, surf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := sys2.NaiveEpol(radii)
	if math.Abs(e2-4*e1)/math.Abs(4*e1) > 1e-12 {
		t.Errorf("E(2q) = %v, want 4·E(q) = %v", e2, 4*e1)
	}
}

// Larger solvent dielectric means more negative polarization energy
// (monotone in τ).
func TestEpolSolventMonotone(t *testing.T) {
	mol := molecule.Exactly(molecule.Globule("solv", 200, 90), 200, 90)
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, epsS := range []float64{2, 10, 80, 1000} {
		params := DefaultParams()
		params.EpsSolvent = epsS
		sys, err := NewSystem(mol, surf, params)
		if err != nil {
			t.Fatal(err)
		}
		radii, _ := sys.NaiveBornRadiiR6()
		e, _ := sys.NaiveEpol(radii)
		if e >= 0 {
			t.Fatalf("eps=%v: Epol %v not negative", epsS, e)
		}
		if i > 0 && e >= prev {
			t.Errorf("eps=%v: Epol %v not more negative than %v", epsS, e, prev)
		}
		prev = e
	}
}
