package gb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"

	"gbpolar/internal/obs"
)

// Phase checkpoints: after each completed algorithm phase the
// distributed driver can serialize a deterministic, versioned,
// checksummed snapshot of the run's world-global state through a
// CheckpointSink, and a later run can resume from the snapshot,
// re-entering the pipeline at the first incomplete phase.
//
// Three properties make resume exact (asserted by resume_test.go):
//
//   - the payload is world-global, not per-rank: after a phase's
//     collective every rank holds the full merged state, so a snapshot
//     resumes under ANY process count — in particular the supervisor's
//     shrunken-membership rung;
//   - the snapshot carries the counter-side observability state
//     (obs.CounterSnapshot), so a resumed run's Summary is byte-identical
//     to an uninterrupted run's;
//   - saving is communication-silent: the coordination uses simmpi.Sync
//     (not a fault point, no traffic counters), so a run with a sink
//     produces bitwise-identical numbers and summaries to one without.
//
// The configuration tag deliberately EXCLUDES the ε parameters: the
// supervisor's relax-ε rung resumes earlier-phase snapshots under
// relaxed parameters, and the induced accuracy loss is priced into the
// returned ErrorBound instead of rejected. That acceptance is
// one-directional: a snapshot records the ε it was computed under
// (format v2), and resume rejects a snapshot LOOSER than the resuming
// system — otherwise a run shed onto relaxed ε, killed, and resumed at
// full accuracy would silently launder relaxed-phase data into a result
// that reports itself non-degraded. The supervisor's drop-stale-
// checkpoint path turns the rejection into a recompute from scratch.

// CheckpointPhase identifies the last completed phase of a snapshot.
type CheckpointPhase int

const (
	// PhaseNone is the zero value: no phase completed (not a valid
	// snapshot phase).
	PhaseNone CheckpointPhase = iota
	// PhaseIntegrals: the merged Born surface integrals (Fig. 4 Step 3).
	// Payload: the flattened accumulator (node sums, node gradients, atom
	// sums).
	PhaseIntegrals
	// PhaseRadii: the complete Born radii (Fig. 4 Step 5). Payload: one
	// radius per atom.
	PhaseRadii
	// PhaseAggregates: the energy-phase octree aggregates are built.
	// Payload: the radii again — the aggregates are a cheap deterministic
	// function of them and are rebuilt on resume rather than serialized.
	PhaseAggregates
	// PhaseEpol: the finished run. Payload: the radii plus the energy,
	// degraded flag, and error bound.
	PhaseEpol
)

// String implements fmt.Stringer.
func (p CheckpointPhase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseIntegrals:
		return "integrals"
	case PhaseRadii:
		return "radii"
	case PhaseAggregates:
		return "aggregates"
	case PhaseEpol:
		return "epol"
	}
	return fmt.Sprintf("CheckpointPhase(%d)", int(p))
}

// Checkpoint is one decoded phase snapshot.
type Checkpoint struct {
	// Phase is the last completed phase.
	Phase CheckpointPhase
	// Processes is the world size of the run that saved the snapshot. The
	// payload is world-global, so a resume may use a different P.
	Processes int
	// Live and Lost are the agreed rank membership at save time — the
	// supervisor's shrink rung resumes with P = len(Live).
	Live, Lost []int
	// ConfigTag fingerprints the System the snapshot belongs to (atom and
	// quadrature counts, division, integral form, math mode, leaf
	// capacities, and a molecule content probe — ε excluded, see above).
	ConfigTag uint32
	// EpsBorn and EpsEpol are the approximation tolerances the saving run
	// computed under. Resume accepts a snapshot at-or-tighter than the
	// resuming system (the accuracy loss of a tighter snapshot is zero;
	// of an equal one, already priced) and rejects a looser one — relaxed
	// phase data must not resume into a run that will report full
	// accuracy. Zero means unrecorded (a version-1 snapshot): the check
	// is skipped for compatibility.
	EpsBorn, EpsEpol float64
	// Payload is the phase's numeric state (see the phase constants).
	Payload []float64
	// Obs is the counter-side observability state at save time; restored
	// into the resumed run's recorder so summaries stay identical. Nil
	// when the saving run had no recorder.
	Obs *obs.CounterSnapshot
}

// CheckpointSink receives encoded snapshots as phases complete. Save is
// called by exactly one rank at a time (the lowest live rank, inside a
// synchronization bracket), never concurrently. Returning an error
// aborts the run — a sink that cannot persist is a failed run, not a
// silent loss of restart capability.
type CheckpointSink interface {
	Save(phase CheckpointPhase, encoded []byte) error
}

// Binary format (little-endian): "GBCP" magic, u32 version, then the
// fields in Checkpoint order, then a CRC32 (IEEE) of everything before
// it. Strings are u32 length + bytes; slices are u32 count + elements;
// floats are IEEE-754 bit patterns (the payload must survive bit-exact).
const (
	checkpointMagic   = "GBCP"
	checkpointVersion = 2 // v2 adds EpsBorn/EpsEpol after ConfigTag; v1 still decodes
)

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendIntSlice(b []byte, xs []int) []byte {
	b = appendU32(b, uint32(len(xs)))
	for _, x := range xs {
		b = appendI64(b, int64(x))
	}
	return b
}

// Encode serializes the checkpoint. The encoding is deterministic: map-
// backed sections render in sorted key order (obs.SortedKeys), so the
// same snapshot always encodes to the same bytes — byte-diffable
// checkpoints are part of the resume-identity test surface.
func (ck *Checkpoint) Encode() []byte {
	b := []byte(checkpointMagic)
	b = appendU32(b, checkpointVersion)
	b = appendI64(b, int64(ck.Phase))
	b = appendI64(b, int64(ck.Processes))
	b = appendIntSlice(b, ck.Live)
	b = appendIntSlice(b, ck.Lost)
	b = appendU32(b, ck.ConfigTag)
	b = appendFloat(b, ck.EpsBorn)
	b = appendFloat(b, ck.EpsEpol)
	b = appendU32(b, uint32(len(ck.Payload)))
	for _, v := range ck.Payload {
		b = appendFloat(b, v)
	}
	if ck.Obs == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		s := ck.Obs
		b = appendU32(b, uint32(len(s.Counters)))
		for _, name := range obs.SortedKeys(s.Counters) {
			b = appendString(b, name)
			b = appendI64(b, s.Counters[name])
		}
		b = appendU32(b, uint32(len(s.Hists)))
		for _, name := range obs.SortedKeys(s.Hists) {
			h := s.Hists[name]
			b = appendString(b, name)
			b = appendI64(b, h.Count)
			b = appendI64(b, h.Sum)
			b = appendU32(b, uint32(len(h.Buckets)))
			for _, v := range h.Buckets {
				b = appendI64(b, v)
			}
		}
		b = appendU32(b, uint32(len(s.SpanCounts)))
		for _, name := range obs.SortedKeys(s.SpanCounts) {
			b = appendString(b, name)
			b = appendI64(b, s.SpanCounts[name])
		}
	}
	return appendU32(b, crc32.ChecksumIEEE(b))
}

// checkpointReader is a bounds-checked cursor over an encoded snapshot.
type checkpointReader struct {
	b   []byte
	off int
	err error
}

func (r *checkpointReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("gb: truncated checkpoint (want %d bytes at offset %d of %d)", n, r.off, len(r.b))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *checkpointReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *checkpointReader) i64() int64 {
	if b := r.take(8); b != nil {
		return int64(binary.LittleEndian.Uint64(b))
	}
	return 0
}

func (r *checkpointReader) float() float64 {
	if b := r.take(8); b != nil {
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	return 0
}

func (r *checkpointReader) str() string {
	n := int(r.u32())
	if b := r.take(n); b != nil {
		return string(b)
	}
	return ""
}

func (r *checkpointReader) intSlice() []int {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, int(r.i64()))
	}
	return out
}

// DecodeCheckpoint parses and verifies an encoded snapshot: magic,
// version, structural bounds, and the trailing CRC (a corrupted or
// truncated checkpoint file is an error, never a silently wrong resume).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(checkpointMagic)+8 {
		return nil, fmt.Errorf("gb: checkpoint too short (%d bytes)", len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("gb: bad checkpoint magic %q (want %q)", data[:len(checkpointMagic)], checkpointMagic)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("gb: checkpoint checksum mismatch (stored %08x, computed %08x)", got, want)
	}
	r := &checkpointReader{b: body, off: len(checkpointMagic)}
	v := r.u32()
	if v != 1 && v != checkpointVersion {
		return nil, fmt.Errorf("gb: unsupported checkpoint version %d (want 1..%d)", v, checkpointVersion)
	}
	ck := &Checkpoint{}
	ck.Phase = CheckpointPhase(r.i64())
	ck.Processes = int(r.i64())
	ck.Live = r.intSlice()
	ck.Lost = r.intSlice()
	ck.ConfigTag = r.u32()
	if v >= 2 {
		ck.EpsBorn = r.float()
		ck.EpsEpol = r.float()
	}
	n := int(r.u32())
	if r.err == nil && n > 0 {
		ck.Payload = make([]float64, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			ck.Payload = append(ck.Payload, r.float())
		}
	}
	if flag := r.take(1); len(flag) == 1 && flag[0] == 1 {
		s := &obs.CounterSnapshot{
			Counters:   make(map[string]int64),
			Hists:      make(map[string]obs.HistState),
			SpanCounts: make(map[string]int64),
		}
		for i, cnt := 0, int(r.u32()); i < cnt && r.err == nil; i++ {
			name := r.str()
			s.Counters[name] = r.i64()
		}
		for i, cnt := 0, int(r.u32()); i < cnt && r.err == nil; i++ {
			name := r.str()
			h := obs.HistState{Count: r.i64(), Sum: r.i64()}
			nb := int(r.u32())
			if r.err == nil && nb > 0 {
				h.Buckets = make([]int64, 0, nb)
				for j := 0; j < nb && r.err == nil; j++ {
					h.Buckets = append(h.Buckets, r.i64())
				}
			}
			s.Hists[name] = h
		}
		for i, cnt := 0, int(r.u32()); i < cnt && r.err == nil; i++ {
			name := r.str()
			s.SpanCounts[name] = r.i64()
		}
		ck.Obs = s
	}
	if r.err != nil {
		return nil, r.err
	}
	if ck.Phase < PhaseIntegrals || ck.Phase > PhaseEpol {
		return nil, fmt.Errorf("gb: checkpoint names invalid phase %d", int(ck.Phase))
	}
	return ck, nil
}

// configTag fingerprints the system configuration a checkpoint is valid
// for: workload shape, division, integral form, math mode, and leaf
// capacities, plus a cheap molecule content probe (first/last atom
// charge, radius, and position bits). The ε parameters are excluded on
// purpose — see the file comment.
func (s *System) configTag() uint32 {
	h := fnv.New32a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:]) // hash.Hash.Write is documented to never fail
	}
	put(uint64(s.NumAtoms()))
	put(uint64(s.NumQPoints()))
	put(uint64(s.Params.Division))
	put(uint64(s.Params.Integral))
	put(uint64(s.Params.Math))
	put(uint64(s.Params.LeafAtoms))
	put(uint64(s.Params.LeafQPoints))
	for _, i := range []int{0, s.NumAtoms() - 1} {
		a := s.Mol.Atoms[i]
		put(math.Float64bits(a.Charge))
		put(math.Float64bits(a.Radius))
		put(math.Float64bits(s.atomPos[i].X))
	}
	return h.Sum32()
}

// validateResume rejects a snapshot that cannot resume this system: a
// different configuration, an invalid phase, or a payload whose shape
// does not match the phase.
// CanResume reports whether the snapshot can resume this system: nil
// means yes, otherwise the same typed error a Run with Resume set would
// return. The supervisor uses it when an escalation changes the
// expansion order — the integral-phase payload shape depends on the
// order, so a stale snapshot must be dropped (recompute from scratch)
// rather than failing the attempt.
func (s *System) CanResume(ck *Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("gb: nil checkpoint")
	}
	return s.validateResume(ck)
}

func (s *System) validateResume(ck *Checkpoint) error {
	if ck.Phase < PhaseIntegrals || ck.Phase > PhaseEpol {
		return fmt.Errorf("gb: cannot resume from phase %q", ck.Phase)
	}
	if got, want := ck.ConfigTag, s.configTag(); got != want {
		return fmt.Errorf("gb: checkpoint config tag %08x does not match this system (%08x): snapshot belongs to a different workload or parameterization", got, want)
	}
	// ε acceptance is one-directional: an at-or-tighter snapshot resumes
	// (relaxing it further is priced by the caller); a looser one would
	// smuggle relaxed-phase data into a run reporting full accuracy. The
	// slack absorbs float noise from normalized()/Relaxed round trips —
	// real relaxations are ≥1.5×. Zero eps: v1 snapshot, unrecorded.
	const slack = 1 + 1e-9
	if ck.EpsBorn > s.Params.EpsBorn*slack || ck.EpsEpol > s.Params.EpsEpol*slack {
		return fmt.Errorf("gb: checkpoint was computed at looser ε (born %.3g, epol %.3g) than this system requires (born %.3g, epol %.3g): resuming would silently degrade the result",
			ck.EpsBorn, ck.EpsEpol, s.Params.EpsBorn, s.Params.EpsEpol)
	}
	want := 0
	switch ck.Phase {
	case PhaseIntegrals:
		// The integral payload shape depends on the expansion order (the
		// Hessian block exists only at OrderQuadrupole), so an order
		// mismatch — the config tag deliberately excludes accuracy knobs so
		// relaxed retries can reuse snapshots — is caught here.
		want = 4*s.TA.NumNodes() + s.NumAtoms()
		if s.order() == OrderQuadrupole {
			want += 9 * s.TA.NumNodes()
		}
	case PhaseRadii, PhaseAggregates:
		want = s.NumAtoms()
	case PhaseEpol:
		want = s.NumAtoms() + 3
	}
	if len(ck.Payload) != want {
		return fmt.Errorf("gb: %s checkpoint payload has %d values, want %d", ck.Phase, len(ck.Payload), want)
	}
	return nil
}

// WithRelaxedEps returns a copy of the system whose far-field criteria
// use factor-times-relaxed approximation parameters (EpsBorn and
// EpsEpol). The octrees and precomputed data do not depend on ε, so the
// copy is shallow and shares them; only the traversal thresholds change.
// This is the supervisor's accuracy-shedding knob: under fault pressure
// a relaxed ε trades bounded accuracy for completion (the work/precision
// trade Knepley & Bardhan analyze), and the relaxation is priced into
// the returned ErrorBound by the supervisor.
//
// Deprecated: use WithAccuracy(s.Params.Accuracy.Relaxed(factor)); this
// wrapper remains for the legacy supervisor rung and behaves identically.
func (s *System) WithRelaxedEps(factor float64) *System {
	if factor <= 1 {
		return s
	}
	c := *s
	c.Params.EpsBorn *= factor
	c.Params.EpsEpol *= factor
	if !c.Params.Accuracy.IsZero() {
		// Keep the normalized mirror in sync (NewSystem always populates
		// it) so order() and the Accuracy readers see the relaxed point.
		c.Params.Accuracy.EpsBorn = c.Params.EpsBorn
		c.Params.Accuracy.EpsEpol = c.Params.EpsEpol
	}
	return &c
}
