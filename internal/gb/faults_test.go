package gb

import (
	"math"
	"testing"
	"time"

	"gbpolar/internal/fault"
	"gbpolar/internal/obs"
)

// Op-count map of runDistributed's fault-tolerant path (P ranks, no
// faults firing): op0 initial agree; integral phase: op1 Tick, op2
// Allreduce, op3 agree; radii phase: op4 Tick, op5 Allgatherv, op6
// agree; energy phase: op7 Tick, op8 Allreduce, op9 agree. The chaos
// tests below target crashes by these indices.

func TestFaultsEmptyPlanBitwiseIdentical(t *testing.T) {
	s := buildSys(t, 300, DefaultParams())
	base, err := s.RunMPI(3)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := s.RunMPIWithFaults(3, &FaultConfig{Plan: &fault.Plan{}})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Epol != base.Epol {
		t.Errorf("empty plan changed Epol: %v vs %v", ft.Epol, base.Epol)
	}
	for i := range base.Born {
		if ft.Born[i] != base.Born[i] {
			t.Fatalf("empty plan changed Born[%d]", i)
		}
	}
	if ft.Degraded || ft.Recovered || len(ft.LostRanks) != 0 {
		t.Errorf("empty plan set fault flags: %+v", ft)
	}

	hybBase, err := s.RunHybrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hybFT, err := s.RunHybridWithFaults(2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hybFT.Epol != hybBase.Epol {
		t.Errorf("nil config changed hybrid Epol: %v vs %v", hybFT.Epol, hybBase.Epol)
	}
}

func TestCrashRecoverMatchesSerial(t *testing.T) {
	// Rank 1 dies entering the radii phase (op 4). The survivors must
	// detect the loss, re-partition, redo the phase, and still produce the
	// full-accuracy answer — node division is P-invariant, so the healed
	// energy matches serial to reassociation noise.
	s := buildSys(t, 400, DefaultParams())
	serial := s.RunSerial()
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 1, AtOp: 4}}}
	r, err := s.RunMPIWithFaults(4, &FaultConfig{Plan: plan, Policy: Recover})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LostRanks) != 1 || r.LostRanks[0] != 1 {
		t.Errorf("LostRanks = %v, want [1]", r.LostRanks)
	}
	if !r.Recovered || r.Degraded {
		t.Errorf("flags: Recovered=%v Degraded=%v, want recovered and not degraded", r.Recovered, r.Degraded)
	}
	if rel := relDiff(r.Epol, serial.Epol); rel > 1e-10 {
		t.Errorf("healed Epol %v vs serial %v (rel %v)", r.Epol, serial.Epol, rel)
	}
	for i := range r.Born {
		if relDiff(r.Born[i], serial.Born[i]) > 1e-10 {
			t.Fatalf("healed Born[%d] differs: %v vs %v", i, r.Born[i], serial.Born[i])
		}
	}
}

func TestCrashDegradeHonestBound(t *testing.T) {
	// Rank 2 dies entering the energy phase (op 7): its share's V-side
	// terms are missing from the accepted partial sum. Under Degrade the
	// result must carry an ErrorBound that really contains the deficit.
	s := buildSys(t, 400, DefaultParams())
	serial := s.RunSerial()
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 2, AtOp: 7}}}
	r, err := s.RunMPIWithFaults(4, &FaultConfig{Plan: plan, Policy: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded {
		t.Fatal("result not marked Degraded")
	}
	if r.ErrorBound <= 0 {
		t.Fatalf("ErrorBound = %v, want positive", r.ErrorBound)
	}
	miss := math.Abs(r.Epol - serial.Epol)
	if miss > r.ErrorBound {
		t.Errorf("|Epol−serial| = %v exceeds ErrorBound %v", miss, r.ErrorBound)
	}
	if miss == 0 {
		t.Error("degraded energy equals serial — the crash injected nothing")
	}
	if len(r.LostRanks) != 1 || r.LostRanks[0] != 2 {
		t.Errorf("LostRanks = %v, want [2]", r.LostRanks)
	}
}

func TestStragglerShedsWork(t *testing.T) {
	// A straggling rank (known from the plan-derived health view) carries
	// half a share; its siblings absorb the rest. Node division keeps leaf
	// boundaries whole, so the answer is unchanged.
	s := buildSys(t, 600, DefaultParams())
	serial := s.RunSerial()
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Straggle, Rank: 1, AtOp: 0, Count: 10, Dur: 200 * time.Microsecond},
	}}
	r, err := s.RunMPIWithFaults(4, &FaultConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if rel := relDiff(r.Epol, serial.Epol); rel > 1e-10 {
		t.Errorf("Epol %v vs serial %v (rel %v)", r.Epol, serial.Epol, rel)
	}
	if !r.Recovered {
		t.Error("straggler shedding not reported as Recovered")
	}
	if r.Traffic.StragglerNanos == 0 {
		t.Error("no straggler time recorded in traffic stats")
	}
	if r.PerCoreOps[1] >= r.PerCoreOps[0] {
		t.Errorf("straggler rank 1 did %d ops, healthy rank 0 did %d — no shedding",
			r.PerCoreOps[1], r.PerCoreOps[0])
	}
}

func TestHybridCrashRecover(t *testing.T) {
	// The fault protocol must compose with per-rank work-stealing pools
	// (crash unwinding releases the pool via defer, survivors heal).
	s := buildSys(t, 400, DefaultParams())
	serial := s.RunSerial()
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 1, AtOp: 4}}}
	r, err := s.RunHybridWithFaults(3, 2, &FaultConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if rel := relDiff(r.Epol, serial.Epol); rel > 1e-10 {
		t.Errorf("Epol %v vs serial %v (rel %v)", r.Epol, serial.Epol, rel)
	}
	if !r.Recovered || len(r.LostRanks) != 1 {
		t.Errorf("Recovered=%v LostRanks=%v", r.Recovered, r.LostRanks)
	}
}

func TestChaosRecoverNeverDeadlocksOrLies(t *testing.T) {
	// The acceptance sweep: seeded chaos schedules (crashes, stragglers,
	// drops — the latter inert here, the shared-data driver is collective-
	// only) against the Recover policy. Every run must terminate, and a
	// completed non-degraded recovery is a full-accuracy answer.
	s := buildSys(t, 300, DefaultParams())
	serial := s.RunSerial()
	for seed := int64(1); seed <= 6; seed++ {
		plan := fault.Chaos(seed, 5, 8)
		r, err := s.RunMPIWithFaults(5, &FaultConfig{Plan: plan, Policy: Recover})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			continue
		}
		if r.Degraded {
			t.Errorf("seed %d: Recover policy produced a degraded result", seed)
		}
		if rel := relDiff(r.Epol, serial.Epol); rel > 1e-10 {
			t.Errorf("seed %d: Epol %v vs serial %v (rel %v, lost %v)",
				seed, r.Epol, serial.Epol, rel, r.LostRanks)
		}
	}
}

func TestLayoutValidation(t *testing.T) {
	s := buildSys(t, 200, DefaultParams())
	for _, P := range []int{0, -3, 201} {
		if _, err := s.RunMPI(P); err == nil {
			t.Errorf("RunMPI(%d) accepted", P)
		}
	}
	if _, err := s.RunHybrid(2, 0); err == nil {
		t.Error("RunHybrid(2, 0) accepted")
	}
	if _, err := s.RunHybrid(0, 2); err == nil {
		t.Error("RunHybrid(0, 2) accepted")
	}
	if _, err := s.RunMPIDistributedData(0); err == nil {
		t.Error("RunMPIDistributedData(0) accepted")
	}
	if _, err := s.RunMPIDistributedData(500); err == nil {
		t.Error("RunMPIDistributedData(500) accepted (more ranks than atoms)")
	}
	if _, err := s.RunMPIDynamic(1); err == nil {
		t.Error("RunMPIDynamic(1) accepted")
	}
}

// ---- distributed-data driver under faults ------------------------------

// Op map of runDistData's fault-tolerant path (P = 3): op0 initial
// agree; born ring round 1: op1 send, op2 recv; round 2: op3 send, op4
// recv; radii heal: op5 Tick, op6 Allgatherv, op7 agree; energy heal:
// op8 Tick, op9 Allreduce, op10 agree. (A retried send shifts the
// subsequent indices on that rank.)

func TestDistDataEmptyPlanBitwiseIdentical(t *testing.T) {
	s := buildSys(t, 300, DefaultParams())
	base, err := s.RunMPIDistributedData(3)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := s.RunMPIDistributedDataWithFaults(3, &FaultConfig{Plan: &fault.Plan{}})
	if err != nil {
		t.Fatal(err)
	}
	if ft.Epol != base.Epol {
		t.Errorf("empty plan changed Epol: %v vs %v", ft.Epol, base.Epol)
	}
	for i := range base.Born {
		if ft.Born[i] != base.Born[i] {
			t.Fatalf("empty plan changed Born[%d]", i)
		}
	}
}

func TestDistDataDropRetryRecovers(t *testing.T) {
	// Rank 0's first ring send (op 1, to rank 1) is dropped twice; the
	// bounded-retry loop must re-send and the run completes at full
	// accuracy, with the recovery cost visible in the traffic stats.
	s := buildSys(t, 300, DefaultParams())
	serial := s.RunSerial()
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Drop, Rank: 0, To: 1, AtOp: 1, Count: 2},
	}}
	r, err := s.RunMPIDistributedDataWithFaults(3, &FaultConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if r.Traffic.Drops != 2 || r.Traffic.Retries != 2 {
		t.Errorf("drops=%d retries=%d, want 2 and 2", r.Traffic.Drops, r.Traffic.Retries)
	}
	if r.Traffic.BackoffNanos == 0 {
		t.Error("no backoff recorded for the retries")
	}
	if rel := relDiff(r.Epol, serial.Epol); rel > 0.02 {
		t.Errorf("Epol %v vs serial %v (rel %v)", r.Epol, serial.Epol, rel)
	}
	if r.Degraded {
		t.Error("drop recovery must not degrade the result")
	}
}

func TestDistDataCrashAdoption(t *testing.T) {
	// Rank 1 dies immediately. Its quadrature bundle must be rebuilt
	// locally by the ring peers, and its atom segment's radii recomputed by
	// an adopting survivor — the Born vector comes back complete and the
	// energy within the driver's approximation band of serial.
	s := buildSys(t, 300, DefaultParams())
	serial := s.RunSerial()
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 1, AtOp: 0}}}
	r, err := s.RunMPIDistributedDataWithFaults(3, &FaultConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.LostRanks) != 1 || r.LostRanks[0] != 1 {
		t.Errorf("LostRanks = %v, want [1]", r.LostRanks)
	}
	if !r.Recovered || r.Degraded {
		t.Errorf("flags: Recovered=%v Degraded=%v", r.Recovered, r.Degraded)
	}
	for i, b := range r.Born {
		if b <= 0 {
			t.Fatalf("Born[%d] = %v — adoption left a hole in the radii vector", i, b)
		}
		if relDiff(b, serial.Born[i]) > 0.02 {
			t.Fatalf("Born[%d] = %v vs serial %v", i, b, serial.Born[i])
		}
	}
	if rel := relDiff(r.Epol, serial.Epol); rel > 0.02 {
		t.Errorf("Epol %v vs serial %v (rel %v)", r.Epol, serial.Epol, rel)
	}
}

func TestDistDataDegradeHonestBound(t *testing.T) {
	// Rank 2 dies entering the energy phase. The reference for the bound
	// check is the SAME fault-tolerant code path with a numerically inert
	// plan (one delayed send), so approximation differences between the
	// protocols cannot masquerade as bound violations.
	s := buildSys(t, 300, DefaultParams())
	inert := &fault.Plan{Events: []fault.Event{
		{Kind: fault.Delay, Rank: 0, To: 1, AtOp: 1, Count: 1, Dur: time.Millisecond},
	}}
	ref, err := s.RunMPIDistributedDataWithFaults(3, &FaultConfig{Plan: inert})
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 2, AtOp: 8}}}
	r, err := s.RunMPIDistributedDataWithFaults(3, &FaultConfig{Plan: plan, Policy: Degrade})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded || r.ErrorBound <= 0 {
		t.Fatalf("Degraded=%v ErrorBound=%v", r.Degraded, r.ErrorBound)
	}
	miss := math.Abs(r.Epol - ref.Epol)
	if miss > r.ErrorBound {
		t.Errorf("|Epol−ref| = %v exceeds ErrorBound %v", miss, r.ErrorBound)
	}
	if miss == 0 {
		t.Error("degraded energy equals reference — the crash injected nothing")
	}
}

func TestDistDataChaosNeverDeadlocks(t *testing.T) {
	s := buildSys(t, 200, DefaultParams())
	serial := s.RunSerial()
	for seed := int64(1); seed <= 4; seed++ {
		plan := fault.Chaos(seed, 4, 6)
		r, err := s.RunMPIDistributedDataWithFaults(4, &FaultConfig{Plan: plan, Policy: Recover})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			continue
		}
		if r.Degraded {
			t.Errorf("seed %d: Recover policy degraded", seed)
		}
		if rel := relDiff(r.Epol, serial.Epol); rel > 0.02 {
			t.Errorf("seed %d: Epol %v vs serial %v (rel %v, lost %v)",
				seed, r.Epol, serial.Epol, rel, r.LostRanks)
		}
	}
}

func TestChaosCorruptionNeverSilent(t *testing.T) {
	// The corruption acceptance matrix: seeded chaos schedules mixing
	// crashes, stragglers, drops, and payload corruption, across two world
	// widths. Every run must terminate. A run that completes cleanly (no
	// error, not degraded) must be full accuracy: an injected corruption is
	// always detected and either healed by retransmit or escalated as a
	// typed error — never absorbed into the answer.
	s := buildSys(t, 300, DefaultParams())
	serial := s.RunSerial()
	var injected, detected int64
	for _, P := range []int{3, 5} {
		for seed := int64(1); seed <= 6; seed++ {
			plan := fault.ChaosWithCorruption(seed, P, 10)
			rec := obs.NewRecorder(nil)
			r, err := s.Run(RunSpec{Processes: P, Faults: &FaultConfig{Plan: plan, Policy: Recover}, Obs: rec})
			c := rec.Counters()
			injected += c["fault.corruptions"]
			detected += c["fault.corruptions.detected"]
			if err != nil {
				// An escalated failure is acceptable: the run refused to
				// answer rather than answering wrong.
				continue
			}
			if r.Degraded {
				t.Errorf("P=%d seed %d: Recover policy produced a degraded result", P, seed)
				continue
			}
			if rel := relDiff(r.Epol, serial.Epol); rel > 1e-10 {
				t.Errorf("P=%d seed %d: silently wrong Epol %v vs serial %v (rel %v, lost %v)",
					P, seed, r.Epol, serial.Epol, rel, r.LostRanks)
			}
		}
	}
	if injected == 0 {
		t.Error("matrix injected no corruption — the chaos schedules are too small to exercise the checksums")
	}
	if detected == 0 {
		t.Error("corruption was injected but never detected")
	}
}
