package gb

import (
	"fmt"
	"runtime"

	"gbpolar/internal/perf"
	"gbpolar/internal/simmpi"
)

// This file implements the extension the paper's conclusion proposes:
// "we are planning to incorporate explicit dynamic load balancing
// techniques ... to improve the performance even further" — explicit
// dynamic load balancing ACROSS ranks, on top of the within-rank work
// stealing. Rank 0 acts as a coordinator serving guided-self-scheduling
// chunks of leaf work to the compute ranks on demand, so ranks that drew
// cheap leaves ask for more instead of idling at the phase barrier.

// chunk-protocol message layout: a worker sends {workerRank}; the
// coordinator answers {lo, hi} (hi ≤ lo means "phase drained").

// coordinator serves chunks of [0, total) to ranks 1..P−1 and returns
// when every worker has been told the phase is drained. Guided
// self-scheduling: each grant is remaining/(2·workers), floored at
// minChunk. Workers that die mid-phase are counted as drained so the
// coordinator cannot spin forever waiting for their requests.
func coordinate(c *simmpi.Comm, total int) error {
	const minChunk = 1
	workers := c.Size() - 1
	next := 0
	done := 0
	drained := make([]bool, c.Size())
	for done < workers {
		served := false
		for from := 1; from < c.Size(); from++ {
			if drained[from] {
				continue
			}
			if !c.Alive(from) {
				drained[from] = true
				done++
				served = true
				continue
			}
			if _, ok := c.TryRecv(from); !ok {
				continue
			}
			served = true
			if next >= total {
				//lint:ignore hotalloc two-word control message per protocol turn; Send copies it immediately
				if err := c.Send(from, []float64{0, 0}); err != nil { // drained
					return err
				}
				drained[from] = true
				done++
				continue
			}
			grant := (total - next) / (2 * workers)
			if grant < minChunk {
				grant = minChunk
			}
			lo, hi := next, min(next+grant, total)
			next = hi
			//lint:ignore hotalloc two-word control message per protocol turn; Send copies it immediately
			if err := c.Send(from, []float64{float64(lo), float64(hi)}); err != nil {
				return err
			}
		}
		if !served {
			runtime.Gosched()
		}
	}
	return nil
}

// drainChunks pulls chunks from the coordinator and invokes fn on each
// until the phase is drained.
func drainChunks(c *simmpi.Comm, fn func(lo, hi int)) error {
	for {
		//lint:ignore hotalloc one-word control message per protocol turn; Send copies it immediately
		if err := c.Send(0, []float64{float64(c.Rank())}); err != nil {
			return err
		}
		resp, err := c.Recv(0)
		if err != nil {
			return err
		}
		lo, hi := int(resp[0]), int(resp[1])
		if hi <= lo {
			return nil
		}
		fn(lo, hi)
	}
}

// RunMPIDynamic is OCT_MPI with explicit dynamic load balancing across
// ranks: rank 0 coordinates, ranks 1..P−1 compute leaf chunks on demand.
// One rank is sacrificed to coordination (P must be ≥ 2); the payoff is
// that per-rank work tracks the realized leaf costs instead of the
// static segment sizes — the cross-rank analogue of the within-rank work
// stealing, and the paper's proposed future extension.
func (s *System) RunMPIDynamic(P int) (*Result, error) {
	if P < 2 {
		return nil, fmt.Errorf("gb: dynamic load balancing needs P ≥ 2 (one coordinator), got %d", P)
	}
	if P-1 > s.NumAtoms() {
		return nil, fmt.Errorf("gb: invalid layout: %d compute ranks exceed the %d atoms to distribute",
			P-1, s.NumAtoms())
	}
	sw := perf.StartTimer()
	perCoreOps := make([]int64, P)
	radiiOut := make([]float64, s.NumAtoms())
	energy := 0.0

	traffic, err := simmpi.Run(P, func(c *simmpi.Comm) error {
		rank := c.Rank()

		// ---- Phase 1+2: Born integrals, dynamic chunks of q-leaves ----
		acc := s.newBornAccum()
		if rank == 0 {
			if err := coordinate(c, len(s.qLeaves)); err != nil {
				return err
			}
		} else {
			err := drainChunks(c, func(lo, hi int) {
				ops := int64(0)
				for _, q := range s.qLeaves[lo:hi] {
					ops += s.ApproxIntegrals(s.TA.Root(), q, acc)
				}
				perCoreOps[rank] += ops
			})
			if err != nil {
				return err
			}
		}

		// ---- Phase 3: merge partial integrals --------------------------
		merged, err := c.Allreduce(acc.encode(), simmpi.Sum)
		if err != nil {
			return err
		}
		acc.decode(merged)

		// ---- Phase 4+5: Born radii (static atom segments over the P−1
		// compute ranks — this pass is cheap and uniform) ----------------
		radii := make([]float64, s.NumAtoms())
		if rank > 0 {
			alo, ahi := segment(s.NumAtoms(), P-1, rank-1)
			perCoreOps[rank] += s.PushIntegralsToAtoms(acc, alo, ahi, radii)
			seg := make([]float64, 0, ahi-alo)
			for pos := alo; pos < ahi; pos++ {
				seg = append(seg, radii[s.TA.Items[pos]])
			}
			all, err := c.Allgatherv(seg)
			if err != nil {
				return err
			}
			for pos, r := range all {
				radii[s.TA.Items[pos]] = r
			}
		} else {
			all, err := c.Allgatherv(nil)
			if err != nil {
				return err
			}
			for pos, r := range all {
				radii[s.TA.Items[pos]] = r
			}
		}

		// ---- Phase 6: energy, dynamic chunks of atom leaves ------------
		agg := s.buildEpolAggregates(radii)
		partial := 0.0
		if rank == 0 {
			if err := coordinate(c, len(s.aLeaves)); err != nil {
				return err
			}
		} else {
			err := drainChunks(c, func(lo, hi int) {
				ops := int64(0)
				for _, v := range s.aLeaves[lo:hi] {
					vs, vops := s.ApproxEpol(s.TA.Root(), v, radii, agg)
					partial += vs
					ops += vops
				}
				perCoreOps[rank] += ops
			})
			if err != nil {
				return err
			}
		}

		// ---- Phase 7: final reduction ----------------------------------
		sum, err := c.Allreduce([]float64{partial}, simmpi.Sum)
		if err != nil {
			return err
		}
		if rank == 0 {
			energy = -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum[0]
			copy(radiiOut, radii)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Epol: energy, Born: radiiOut,
		Processes: P, ThreadsPerProcess: 1,
		PerCoreOps: perCoreOps,
		Traffic:    traffic,
		Wall:       sw.Elapsed(),
	}, nil
}
