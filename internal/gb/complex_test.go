package gb

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

func complexFixture(t *testing.T, recN, ligN int) (*System, *System, *Complex) {
	t.Helper()
	rec := buildSys(t, recN, DefaultParams())
	ligMol := molecule.Exactly(molecule.Globule("lig", ligN, 97), ligN, 97)
	ligSurf, err := surface.Build(ligMol, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lig, err := NewSystem(ligMol, ligSurf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cx, err := NewComplex(rec, lig)
	if err != nil {
		t.Fatal(err)
	}
	return rec, lig, cx
}

// A far-away ligand must not change either molecule's energetics: the
// complex energy is the sum of the solo energies and the Born radii match
// the solo radii.
func TestComplexFarPoseSeparates(t *testing.T) {
	rec, lig, cx := complexFixture(t, 400, 60)
	recSolo := rec.RunSerial()
	ligSolo := lig.RunSerial()
	res, err := cx.Epol(geom.Translate(geom.V(800, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	want := recSolo.Epol + ligSolo.Epol
	if rel := math.Abs(res.Epol-want) / math.Abs(want); rel > 5e-3 {
		t.Errorf("far-pose complex %v vs solo sum %v (rel %v)", res.Epol, want, rel)
	}
	for i := range res.RecBorn {
		if relDiff(res.RecBorn[i], recSolo.Born[i]) > 1e-3 {
			t.Fatalf("receptor Born radius %d shifted by a distant ligand", i)
		}
	}
	for i := range res.LigBorn {
		if relDiff(res.LigBorn[i], ligSolo.Born[i]) > 1e-3 {
			t.Fatalf("ligand Born radius %d shifted: %v vs %v", i, res.LigBorn[i], ligSolo.Born[i])
		}
	}
}

// The reuse path must track a from-scratch build of the merged complex.
// They are not identical — the merged build re-culls the surface at the
// interface (desolvation) while the reuse path freezes the surfaces, and
// the merged octree differs — so the comparison band is loose at contact
// distance and tight at separation.
func TestComplexTracksFullRebuild(t *testing.T) {
	rec, lig, cx := complexFixture(t, 500, 80)
	recBall, recR := geom.EnclosingBall(rec.Mol.Positions())
	_, ligR := geom.EnclosingBall(lig.Mol.Positions())
	cases := []struct {
		gap float64
		tol float64
	}{
		{25, 0.01},
		{8, 0.03},
		{2, 0.10},
	}
	for _, tc := range cases {
		tr := geom.Translate(recBall.Add(geom.V(recR+ligR+tc.gap, 0, 0)))
		fast, err := cx.Epol(tr)
		if err != nil {
			t.Fatal(err)
		}
		merged := molecule.Merge("cx", rec.Mol, lig.Mol.ApplyTransform(tr))
		surf, err := surface.Build(merged, surface.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		full, err := NewSystem(merged, surf, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		ref := full.RunSerial()
		rel := math.Abs(fast.Epol-ref.Epol) / math.Abs(ref.Epol)
		if rel > tc.tol {
			t.Errorf("gap %v Å: reuse %v vs rebuild %v (rel %v > %v)",
				tc.gap, fast.Epol, ref.Epol, rel, tc.tol)
		}
	}
}

// Pose energies must be invariant under the pose's rotational part when
// the translation keeps the same separation (isotropy sanity check).
func TestComplexRotationalSanity(t *testing.T) {
	_, _, cx := complexFixture(t, 300, 50)
	// Far enough that even the residual dipole–dipole cross term (∝ r⁻³)
	// is below the tolerance.
	base := geom.Translate(geom.V(900, 0, 0))
	e0, err := cx.Epol(base)
	if err != nil {
		t.Fatal(err)
	}
	// Rotating the ligand about its own placement axis changes nothing
	// for a far pose (no interaction).
	rot := base.Compose(geom.Rotate(geom.V(0, 0, 1), 1.3))
	e1, err := cx.Epol(rot)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(e1.Epol-e0.Epol) / math.Abs(e0.Epol); rel > 1e-6 {
		t.Errorf("far-pose energy changed under ligand rotation: %v", rel)
	}
}

func TestComplexParamsMismatch(t *testing.T) {
	rec := buildSys(t, 100, DefaultParams())
	p2 := DefaultParams()
	p2.EpsEpol = 0.5
	lig := buildSys(t, 100, p2)
	if _, err := NewComplex(rec, lig); err == nil {
		t.Error("mismatched params accepted")
	}
}

// Approaching poses must become more favorable than far ones for an
// attractive complex... at minimum, energies are finite, negative, and
// differ between near and far (the cross terms engage).
func TestComplexCrossTermsEngage(t *testing.T) {
	rec, lig, cx := complexFixture(t, 400, 60)
	recBall, recR := geom.EnclosingBall(rec.Mol.Positions())
	_, ligR := geom.EnclosingBall(lig.Mol.Positions())
	far, err := cx.Epol(geom.Translate(geom.V(700, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	near, err := cx.Epol(geom.Translate(recBall.Add(geom.V(recR+ligR+2, 0, 0))))
	if err != nil {
		t.Fatal(err)
	}
	if near.Epol == far.Epol {
		t.Error("near pose identical to far pose — cross terms inert")
	}
	if near.Epol >= 0 || far.Epol >= 0 {
		t.Error("complex energies not negative")
	}
	// Near pose raises Born radii of interface atoms (mutual descreening).
	raised := 0
	for i := range near.RecBorn {
		if near.RecBorn[i] > far.RecBorn[i]*1.001 {
			raised++
		}
	}
	if raised == 0 {
		t.Error("no receptor Born radii raised by a contact ligand")
	}
}
