package gb

import (
	"math"

	"gbpolar/internal/geom"
)

// This file provides analytic derivatives of the GB energy — the piece a
// molecular-dynamics adopter needs on top of the paper's single-point
// energies. Derivatives are taken at FROZEN Born radii (the positional
// part ∂E/∂x|_R plus, separately, the radius partials ∂E/∂R): the full
// MD force also chains ∂R/∂x through the surface integral, which changes
// with the surface discretization; the frozen-radii split is the
// standard decomposition GB force implementations build on.

// dInvFdR2 returns ∂(1/f_GB)/∂(r²) at squared distance r2 and radius
// product t = R_iR_j.
func dInvFdR2(r2, t float64) float64 {
	e := math.Exp(-r2 / (4 * t))
	f2 := r2 + t*e
	invF := 1 / math.Sqrt(f2)
	return -0.5 * invF * invF * invF * (1 - e/4)
}

// dInvFdRi returns ∂(1/f_GB)/∂R_i at squared distance r2 for radii ri, rj.
func dInvFdRi(r2, ri, rj float64) float64 {
	t := ri * rj
	e := math.Exp(-r2 / (4 * t))
	f2 := r2 + t*e
	invF := 1 / math.Sqrt(f2)
	// ∂f²/∂R_i = R_j·e·(1 + r²/(4 R_i R_j)).
	df2 := rj * e * (1 + r2/(4*t))
	return -0.5 * invF * invF * invF * df2
}

// EnergyGradients returns (∂E/∂x_i at frozen radii, ∂E/∂R_i) for the
// exact (naive) Eq. 2 energy with the given Born radii. Units:
// kcal/mol/Å and kcal/mol/Å respectively. O(M²).
func (s *System) EnergyGradients(radii []float64) (dEdx []geom.Vec3, dEdR []float64) {
	atoms := s.Mol.Atoms
	n := len(atoms)
	dEdx = make([]geom.Vec3, n)
	dEdR = make([]float64, n)
	pref := -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal

	for i := 0; i < n; i++ {
		// Self term: E_i = pref·q²/R ⇒ ∂E/∂R_i = −pref·q²/R².
		dEdR[i] += pref * (-atoms[i].Charge * atoms[i].Charge / (radii[i] * radii[i]))
	}
	for i := 0; i < n; i++ {
		qi, pi, ri := atoms[i].Charge, atoms[i].Pos, radii[i]
		for j := i + 1; j < n; j++ {
			qq := 2 * qi * atoms[j].Charge // ordered-pair double counting of Eq. 2
			diff := pi.Sub(atoms[j].Pos)
			r2 := diff.Norm2()
			t := ri * radii[j]
			// ∂E/∂x_i = pref·qq·d(1/f)/d(r²)·2(x_i−x_j); equal and
			// opposite on j.
			g := diff.Scale(pref * qq * dInvFdR2(r2, t) * 2)
			dEdx[i] = dEdx[i].Add(g)
			dEdx[j] = dEdx[j].Sub(g)
			dEdR[i] += pref * qq * dInvFdRi(r2, ri, radii[j])
			dEdR[j] += pref * qq * dInvFdRi(r2, radii[j], ri)
		}
	}
	return dEdx, dEdR
}

// Forces returns the frozen-radii forces −∂E/∂x on every atom.
func (s *System) Forces(radii []float64) []geom.Vec3 {
	dEdx, _ := s.EnergyGradients(radii)
	for i := range dEdx {
		dEdx[i] = dEdx[i].Neg()
	}
	return dEdx
}

// PerAtomEpol decomposes the exact Eq. 2 energy into per-atom
// contributions (self term plus half of every pair term): the sum over
// atoms equals NaiveEpol. Useful for hot-spot analysis in docking.
func (s *System) PerAtomEpol(radii []float64) []float64 {
	atoms := s.Mol.Atoms
	out := make([]float64, len(atoms))
	pref := -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal
	kernel := pairEnergyKernel(s.Params.Math)
	for i := range atoms {
		out[i] += pref * atoms[i].Charge * atoms[i].Charge / radii[i]
		for j := i + 1; j < len(atoms); j++ {
			r2 := atoms[i].Pos.Dist2(atoms[j].Pos)
			pair := pref * 2 * kernel(atoms[i].Charge*atoms[j].Charge, r2, radii[i]*radii[j])
			out[i] += pair / 2
			out[j] += pair / 2
		}
	}
	return out
}
