package gb

import (
	"errors"
	"fmt"
	"math"
	"time"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/octree"
	"gbpolar/internal/perf"
	"gbpolar/internal/simmpi"
	"gbpolar/internal/surface"
)

// This file implements the paper's second proposed extension
// (Conclusion: "Distributing data as well as computation is also an
// interesting approach to explore"): instead of every rank replicating
// the whole molecule (§IV-A), each rank owns one atom segment and one
// quadrature segment, builds octrees over just its data, and the
// segments' serialized tree bundles circulate through a ring — every
// rank holds at most its own bundle plus ONE remote bundle at a time, so
// per-rank memory drops from O(data) to O(data/P).
//
// The price is a different decomposition (P local trees instead of one
// global tree), so the realized approximation differs slightly from the
// shared-data drivers while staying inside the same ε error band, and
// the interconnect carries the bundles (P−1 rounds of point-to-point
// traffic priced by the performance model).

// qBundle is a serializable quadrature segment: its octree plus point
// data and far-field aggregates.
type qBundle struct {
	tree     *octree.Tree
	pts      []surface.QPoint
	normals  []geom.Vec3
	moments  []geom.Mat3
	moments2 []bornMom2 // nil below OrderQuadrupole
}

// aBundle is a serializable atom segment: its octree plus atom data,
// radii and energy aggregates.
type aBundle struct {
	tree   *octree.Tree
	pos    []geom.Vec3
	charge []float64
	radii  []float64
}

// buildQBundle constructs the quadrature bundle for a point subset at
// far-field expansion order ord.
func buildQBundle(pts []surface.QPoint, leafSize, ord int) *qBundle {
	pos := make([]geom.Vec3, len(pts))
	for i, q := range pts {
		pos[i] = q.Pos
	}
	b := &qBundle{tree: octree.Build(pos, leafSize), pts: pts}
	b.normals = make([]geom.Vec3, b.tree.NumNodes())
	b.moments = make([]geom.Mat3, b.tree.NumNodes())
	for i := b.tree.NumNodes() - 1; i >= 0; i-- {
		n := &b.tree.Nodes[i]
		if n.Leaf {
			var sum geom.Vec3
			var mom geom.Mat3
			for _, it := range b.tree.ItemsOf(int32(i)) {
				q := &pts[it]
				wn := q.Normal.Scale(q.Weight)
				sum = sum.Add(wn)
				addOuter(&mom, wn, q.Pos.Sub(n.Center))
			}
			b.normals[i] = sum
			b.moments[i] = mom
			continue
		}
		var sum geom.Vec3
		var mom geom.Mat3
		for _, c := range n.Children {
			if c == octree.NoChild {
				continue
			}
			sum = sum.Add(b.normals[c])
			shift := b.tree.Nodes[c].Center.Sub(n.Center)
			for k := 0; k < 9; k++ {
				mom[k] += b.moments[c][k]
			}
			addOuter(&mom, b.normals[c], shift)
		}
		b.normals[i] = sum
		b.moments[i] = mom
	}
	if ord == OrderQuadrupole {
		b.moments2 = buildQuadMoments(b.tree, pts, b.normals, b.moments)
	}
	return b
}

// encodeQ serializes the bundle's point data (the tree is rebuilt on the
// receiving side from the spatially sorted points, which is cheap and
// avoids shipping node arrays). Layout: n, then per point
// (pos3, normal3, weight).
func (b *qBundle) encode() []float64 {
	out := make([]float64, 0, 1+7*len(b.pts))
	out = append(out, float64(len(b.pts)))
	// Ship points in octree item order: the receiver's rebuild then sees
	// pre-sorted input and the bundles stay deterministic.
	for _, it := range b.tree.Items {
		q := b.pts[it]
		out = append(out, q.Pos.X, q.Pos.Y, q.Pos.Z,
			q.Normal.X, q.Normal.Y, q.Normal.Z, q.Weight)
	}
	return out
}

func decodeQ(data []float64, leafSize, ord int) *qBundle {
	n := int(data[0])
	pts := make([]surface.QPoint, n)
	for i := 0; i < n; i++ {
		f := data[1+7*i:]
		pts[i] = surface.QPoint{
			Pos:    geom.V(f[0], f[1], f[2]),
			Normal: geom.V(f[3], f[4], f[5]),
			Weight: f[6],
		}
	}
	return buildQBundle(pts, leafSize, ord)
}

// buildABundle constructs the atom bundle for an atom subset.
func buildABundle(pos []geom.Vec3, charge, radii []float64, leafSize int) *aBundle {
	return &aBundle{
		tree: octree.Build(pos, leafSize),
		pos:  pos, charge: charge, radii: radii,
	}
}

// encode layout: n, then per atom (pos3, charge, radius).
func (b *aBundle) encode() []float64 {
	out := make([]float64, 0, 1+5*len(b.pos))
	out = append(out, float64(len(b.pos)))
	for _, it := range b.tree.Items {
		out = append(out, b.pos[it].X, b.pos[it].Y, b.pos[it].Z,
			b.charge[it], b.radii[it])
	}
	return out
}

func decodeA(data []float64, leafSize int) *aBundle {
	n := int(data[0])
	pos := make([]geom.Vec3, n)
	charge := make([]float64, n)
	radii := make([]float64, n)
	for i := 0; i < n; i++ {
		f := data[1+5*i:]
		pos[i] = geom.V(f[0], f[1], f[2])
		charge[i] = f[3]
		radii[i] = f[4]
	}
	return buildABundle(pos, charge, radii, leafSize)
}

// distAtomSeg is one rank's atom segment (global octree item order). Any
// rank can rebuild any segment from the replicated molecule — the
// simulated analogue of re-reading a lost rank's input from disk, which
// is what makes the adoption recovery below possible.
type distAtomSeg struct {
	idx       []int32
	pos       []geom.Vec3
	charge    []float64
	intrinsic []float64
}

func (s *System) distAtomSeg(P, rank int) *distAtomSeg {
	alo, ahi := segment(s.NumAtoms(), P, rank)
	seg := &distAtomSeg{
		idx:       make([]int32, 0, ahi-alo),
		pos:       make([]geom.Vec3, 0, ahi-alo),
		charge:    make([]float64, 0, ahi-alo),
		intrinsic: make([]float64, 0, ahi-alo),
	}
	for p := alo; p < ahi; p++ {
		ai := s.TA.Items[p]
		seg.idx = append(seg.idx, ai)
		seg.pos = append(seg.pos, s.atomPos[ai])
		seg.charge = append(seg.charge, s.Mol.Atoms[ai].Charge)
		seg.intrinsic = append(seg.intrinsic, s.Mol.Atoms[ai].Radius)
	}
	return seg
}

// distQSeg rebuilds rank's quadrature-segment bundle from the replicated
// surface data.
func (s *System) distQSeg(P, rank int) *qBundle {
	qlo, qhi := segment(s.NumQPoints(), P, rank)
	pts := make([]surface.QPoint, 0, qhi-qlo)
	for p := qlo; p < qhi; p++ {
		pts = append(pts, s.Surf.Points[s.TQ.Items[p]])
	}
	return buildQBundle(pts, s.Params.LeafQPoints, s.order())
}

// distABundle reconstructs a segment's atom bundle from the full radii
// vector — how the fault-tolerant energy phase resurrects a dead rank's
// bundle without its owner.
func (s *System) distABundle(P, segRank int, radiiFull []float64) *aBundle {
	seg := s.distAtomSeg(P, segRank)
	radii := make([]float64, len(seg.idx))
	for k, ai := range seg.idx {
		radii[k] = radiiFull[ai]
	}
	return buildABundle(seg.pos, seg.charge, radii, s.Params.LeafAtoms)
}

// distSegRadii computes segment segRank's Born radii entirely locally —
// its atoms against every quadrature segment, all rebuilt from replicated
// input. This is the adoption path a survivor runs for a dead rank's
// segment. Returns (atom index, radius) pairs; ops are charged to the
// adopter.
func (s *System) distSegRadii(P, segRank int, ops *int64) []float64 {
	beta := s.bornBeta()
	ord := s.order()
	r4 := s.Params.Integral == IntegralR4
	seg := s.distAtomSeg(P, segRank)
	atomTree := octree.Build(seg.pos, s.Params.LeafAtoms)
	acc := &bornAccum{
		nodeS: make([]float64, atomTree.NumNodes()),
		nodeG: make([]geom.Vec3, atomTree.NumNodes()),
		atomS: make([]float64, len(seg.pos)),
	}
	if ord == OrderQuadrupole {
		acc.nodeH = make([]geom.Mat3, atomTree.NumNodes())
	}
	for q := 0; q < P; q++ {
		qb := s.distQSeg(P, q)
		//lint:ignore hotalloc one pass descriptor per remote segment, amortized over a full tree sweep
		bp := &bornPass{
			ta: atomTree, atomPos: seg.pos,
			tq: qb.tree, qpts: qb.pts,
			normals: qb.normals, moments: qb.moments, moments2: qb.moments2,
			beta: beta, ord: ord, r4: r4,
		}
		for _, ql := range qb.tree.Leaves() {
			*ops += bp.run(atomTree.Root(), ql, acc)
		}
	}
	radii := make([]float64, len(seg.pos))
	*ops += pushLocal(atomTree, seg.pos, seg.intrinsic, acc, radii, r4)
	pairs := make([]float64, 0, 2*len(radii))
	for k, r := range radii {
		pairs = append(pairs, float64(seg.idx[k]), r)
	}
	return pairs
}

// distSegEnergy computes segment vSeg's V-side energy — own×own plus
// every cross direction U→vSeg — entirely locally from the full radii
// vector. Coverage matches the ring protocol: each ordered cross pair is
// produced exactly once as long as every segment has exactly one owner.
func (s *System) distSegEnergy(P, vSeg int, radiiFull []float64, rmin, rmax float64, ops *int64) float64 {
	kernel := pairEnergyKernel(s.Params.Math)
	factor := s.epolFactor()
	vb := s.distABundle(P, vSeg, radiiFull)
	vView, vAgg := bundleView(s.Params, vb, rmin, rmax)
	partial := 0.0
	for _, v := range vb.tree.Leaves() {
		vs, vops := vView.approxEpol(vb.tree.Root(), v, vb.radii, vAgg, kernel, factor, nil)
		partial += vs
		*ops += vops
	}
	for u := 0; u < P; u++ {
		if u == vSeg {
			continue
		}
		ub := s.distABundle(P, u, radiiFull)
		uView, uAgg := bundleView(s.Params, ub, rmin, rmax)
		//lint:ignore hotalloc one pass descriptor per remote segment, amortized over a full tree sweep
		ep := &epolCrossPass{
			u: uView, uAgg: uAgg, uRadii: ub.radii,
			v: vView, vAgg: vAgg, vRadii: vb.radii,
			kernel: kernel, factor: factor,
		}
		for _, v := range vb.tree.Leaves() {
			vs, vops := ep.run(ub.tree.Root(), v)
			partial += vs
			*ops += vops
		}
	}
	return partial
}

// segOwner maps a data segment to the live rank that computes for it: a
// live rank owns its own segment; a lost rank's segment is adopted by a
// survivor chosen round-robin over the agreed live set.
func segOwner(segRank int, lost, live []int) int {
	for i, d := range lost {
		if d == segRank {
			return live[i%len(live)]
		}
	}
	return segRank
}

// distRecvDeadline bounds how long a fault-tolerant ring round waits for
// a peer's bundle before rebuilding it locally. Timing out early is safe
// (the rebuild is exact), just wasted compute.
const distRecvDeadline = 2 * time.Second

// RunMPIDistributedData computes Epol with both data AND computation
// distributed over P ranks: per-rank memory is O(data/P) plus one
// transient remote bundle, at the cost of P−1 ring-exchange rounds per
// phase and a slightly different (multi-tree) decomposition.
func (s *System) RunMPIDistributedData(P int) (*Result, error) {
	return s.runDistData(P, nil)
}

// RunMPIDistributedDataWithFaults is RunMPIDistributedData under fault
// injection. Dropped ring messages are retried with backoff; a dead
// peer's quadrature bundle is rebuilt locally from the replicated input;
// a dead rank's atom segment is adopted by a survivor that recomputes its
// radii; and the energy phase either re-assigns dead owners' segments
// (Recover) or reports the partial energy with a rigorous ErrorBound
// (Degrade).
func (s *System) RunMPIDistributedDataWithFaults(P int, cfg *FaultConfig) (*Result, error) {
	return s.runDistData(P, cfg)
}

func (s *System) runDistData(P int, cfg *FaultConfig) (*Result, error) {
	if P < 1 {
		return nil, fmt.Errorf("gb: invalid layout: processes P=%d must be positive", P)
	}
	if P > s.NumAtoms() || P > s.NumQPoints() {
		return nil, fmt.Errorf("gb: invalid layout: P=%d exceeds the %d atoms / %d quadrature points to distribute",
			P, s.NumAtoms(), s.NumQPoints())
	}
	sw := perf.StartTimer()
	perCoreOps := make([]int64, P)
	beta := s.bornBeta()
	ord := s.order()
	r4 := s.Params.Integral == IntegralR4
	ft := cfg.active()

	type rankOutcome struct {
		done      bool
		energy    float64
		radii     []float64
		degraded  bool
		bound     float64
		recovered bool
	}
	outs := make([]rankOutcome, P)

	traffic, err := simmpi.RunPlan(P, cfg.plan(), func(c *simmpi.Comm) error {
		rank := c.Rank()
		var lost, live []int
		recovered := false
		if ft {
			var err error
			if lost, err = agreeLost(c); err != nil {
				return err
			}
			live = liveRanksOf(P, lost)
		}

		// ---- Own segments (in global octree item order, so segment
		// boundaries match the shared-data drivers) -----------------------
		aseg := s.distAtomSeg(P, rank)
		qb := s.distQSeg(P, rank)
		ownQEnc := qb.encode()

		// ---- Born phase: own atoms × all quadrature segments ------------
		atomTree := octree.Build(aseg.pos, s.Params.LeafAtoms)
		acc := &bornAccum{
			nodeS: make([]float64, atomTree.NumNodes()),
			nodeG: make([]geom.Vec3, atomTree.NumNodes()),
			atomS: make([]float64, len(aseg.pos)),
		}
		if ord == OrderQuadrupole {
			acc.nodeH = make([]geom.Mat3, atomTree.NumNodes())
		}
		process := func(b *qBundle) {
			bp := &bornPass{
				ta: atomTree, atomPos: aseg.pos,
				tq: b.tree, qpts: b.pts,
				normals: b.normals, moments: b.moments, moments2: b.moments2,
				beta: beta, ord: ord, r4: r4,
			}
			for _, q := range b.tree.Leaves() {
				perCoreOps[rank] += bp.run(atomTree.Root(), q, acc)
			}
		}
		process(qb)
		for round := 1; round < P && P > 1; round++ {
			dst := (rank + round) % P
			src := (rank - round + P) % P
			if !ft {
				if err := c.Send(dst, ownQEnc); err != nil {
					return err
				}
				data, err := c.Recv(src)
				if err != nil {
					return err
				}
				process(decodeQ(data, s.Params.LeafQPoints, ord)) // transient
				continue
			}
			// Fault-tolerant ring round: retry dropped sends with backoff;
			// a dead destination just misses a bundle it can rebuild; a
			// dead, exhausted, or too-slow source's bundle is rebuilt here.
			if err := sendRetry(c, dst, ownQEnc, cfg); err != nil {
				var lostErr *simmpi.RankLostError
				if !errors.As(err, &lostErr) && !errors.Is(err, simmpi.ErrDropped) {
					return err
				}
			}
			data, err := c.RecvTimeout(src, distRecvDeadline)
			if err != nil {
				// A corrupted bundle (checksum mismatch) is handled exactly
				// like a lost or too-slow source: the data is shared, so the
				// receiver rebuilds the segment locally instead of trusting
				// damaged floats.
				var lostErr *simmpi.RankLostError
				if !errors.As(err, &lostErr) && !errors.Is(err, simmpi.ErrTimeout) &&
					!errors.Is(err, simmpi.ErrCorrupt) {
					return err
				}
				process(s.distQSeg(P, src))
				recovered = true
				continue
			}
			process(decodeQ(data, s.Params.LeafQPoints, ord))
		}

		// Push integrals over the LOCAL tree.
		radii := make([]float64, len(aseg.pos))
		perCoreOps[rank] += pushLocal(atomTree, aseg.pos, aseg.intrinsic, acc, radii, r4)

		ownPairs := make([]float64, 0, 2*len(radii))
		for k, r := range radii {
			ownPairs = append(ownPairs, float64(aseg.idx[k]), r)
		}

		radiiFull := make([]float64, s.NumAtoms())
		if !ft {
			// Publish radii so the master can assemble the full vector.
			all, err := c.Allgatherv(ownPairs)
			if err != nil {
				return err
			}
			if rank == 0 {
				for i := 0; i+1 < len(all); i += 2 {
					radiiFull[int(all[i])] = all[i+1]
				}
			}
		} else {
			// Heal loop: survivors adopt dead ranks' segments (recomputing
			// their radii from replicated input), the pairs gather repeats
			// until membership is stable, and EVERY rank assembles the full
			// vector — the energy phase reconstructs bundles from it.
			for iter := 0; ; iter++ {
				if iter > P {
					return fmt.Errorf("gb: distdata radii heal did not converge")
				}
				if err := c.Tick(); err != nil {
					return err
				}
				// Own segment plus up to len(lost) adopted segments of
				// comparable size.
				//lint:ignore hotalloc collective payload: simmpi slots retain the contributed slice, so each heal round needs a fresh buffer
				flat := make([]float64, 0, len(ownPairs)*(1+len(lost)))
				flat = append(flat, ownPairs...)
				for i, d := range lost {
					if live[i%len(live)] == rank {
						flat = append(flat, s.distSegRadii(P, d, &perCoreOps[rank])...)
					}
				}
				all, err := c.Allgatherv(flat)
				if err != nil {
					return err
				}
				newLost, err := agreeLost(c)
				if err != nil {
					return err
				}
				if !equalInts(newLost, lost) {
					lost, live = newLost, liveRanksOf(P, newLost)
					recovered = true
					continue
				}
				if len(lost) > 0 {
					recovered = true
				}
				for i := 0; i+1 < len(all); i += 2 {
					radiiFull[int(all[i])] = all[i+1]
				}
				break
			}
		}

		// ---- Epol phase: shared radius-class range ----------------------
		var rmin, rmax float64
		if !ft {
			localMin, localMax := math.Inf(1), math.Inf(-1)
			for _, r := range radii {
				localMin, localMax = math.Min(localMin, r), math.Max(localMax, r)
			}
			mins, err := c.Allreduce([]float64{localMin}, simmpi.Min)
			if err != nil {
				return err
			}
			maxs, err := c.Allreduce([]float64{localMax}, simmpi.Max)
			if err != nil {
				return err
			}
			rmin, rmax = mins[0], maxs[0]
		} else {
			// The full vector is local under the fault-tolerant protocol;
			// the range needs no collective (and no dead-rank gap).
			rmin, rmax = math.Inf(1), math.Inf(-1)
			for _, r := range radiiFull {
				rmin, rmax = math.Min(rmin, r), math.Max(rmax, r)
			}
		}

		energy := 0.0
		degraded := false
		bound := 0.0
		if !ft {
			ab := buildABundle(aseg.pos, aseg.charge, radii, s.Params.LeafAtoms)
			ownAEnc := ab.encode()
			ownView, ownAgg := bundleView(s.Params, ab, rmin, rmax)

			kernel := pairEnergyKernel(s.Params.Math)
			factor := s.epolFactor()
			partial := 0.0
			// Own × own (ordered pairs within the segment).
			for _, v := range ab.tree.Leaves() {
				vs, vops := ownView.approxEpol(ab.tree.Root(), v, ab.radii, ownAgg, kernel, factor, nil)
				partial += vs
				perCoreOps[rank] += vops
			}
			// Own × every remote segment: each rank computes the ordered
			// pairs (remote atom, own atom) with U the remote tree and V its
			// own leaves; over all ranks every cross ordered pair is counted
			// once.
			for round := 1; round < P && P > 1; round++ {
				dst := (rank + round) % P
				src := (rank - round + P) % P
				if err := c.Send(dst, ownAEnc); err != nil {
					return err
				}
				data, err := c.Recv(src)
				if err != nil {
					return err
				}
				remote := decodeA(data, s.Params.LeafAtoms)
				remView, remAgg := bundleView(s.Params, remote, rmin, rmax)
				//lint:ignore hotalloc one pass descriptor per received bundle, amortized over a full tree sweep
				ep := &epolCrossPass{
					u: remView, uAgg: remAgg, uRadii: remote.radii,
					v: ownView, vAgg: ownAgg, vRadii: ab.radii,
					kernel: kernel, factor: factor,
				}
				for _, v := range ab.tree.Leaves() {
					vs, vops := ep.run(remote.tree.Root(), v)
					// Ordered pairs in one direction only: remote→own. The
					// opposite direction is produced by the remote rank's
					// round against us, so no doubling here.
					partial += vs
					perCoreOps[rank] += vops
				}
			}
			sum, err := c.Allreduce([]float64{partial}, simmpi.Sum)
			if err != nil {
				return err
			}
			energy = -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum[0]
		} else {
			// Fault-tolerant energy phase: every segment (dead owners
			// included) is assigned to exactly one live rank, which
			// reconstructs the bundles it needs from the full radii vector.
			// No ring traffic — deaths cannot corrupt pair coverage, and
			// the heal loop below re-assigns on further losses.
			for iter := 0; ; iter++ {
				if iter > P {
					return fmt.Errorf("gb: distdata energy heal did not converge")
				}
				if err := c.Tick(); err != nil {
					return err
				}
				partial := 0.0
				for seg := 0; seg < P; seg++ {
					if segOwner(seg, lost, live) == rank {
						partial += s.distSegEnergy(P, seg, radiiFull, rmin, rmax, &perCoreOps[rank])
					}
				}
				//lint:ignore hotalloc single-element reduce operand; simmpi slots retain it, so each heal round contributes a fresh slice
				sum, err := c.Allreduce([]float64{partial}, simmpi.Sum)
				if err != nil {
					return err
				}
				newLost, err := agreeLost(c)
				if err != nil {
					return err
				}
				if equalInts(newLost, lost) {
					energy = -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum[0]
					break
				}
				if cfg.Policy == Recover {
					lost, live = newLost, liveRanksOf(P, newLost)
					recovered = true
					continue
				}
				// Degrade: bound the V-side energy mass of every segment the
				// newly dead ranks owned this iteration.
				var deadAtoms []int32
				j := 0
				for _, d := range newLost {
					for j < len(lost) && lost[j] < d {
						j++
					}
					if j < len(lost) && lost[j] == d {
						continue
					}
					for seg := 0; seg < P; seg++ {
						if segOwner(seg, lost, live) == d {
							alo, ahi := segment(s.NumAtoms(), P, seg)
							//lint:ignore hotalloc cold degrade path; the adopted-atom count is unknown until the ownership walk completes
							deadAtoms = append(deadAtoms, s.TA.Items[alo:ahi]...)
						}
					}
				}
				energy = -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum[0]
				bound = s.degradedBound(deadAtoms)
				degraded = true
				break
			}
		}

		out := &outs[rank]
		out.energy = energy
		out.radii = radiiFull
		out.degraded = degraded
		out.bound = bound
		out.recovered = recovered
		out.done = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	winner := -1
	for r := 0; r < P; r++ {
		if outs[r].done {
			winner = r
			break
		}
	}
	if winner < 0 {
		return nil, fmt.Errorf("gb: no rank survived the run (lost ranks %v)", traffic.LostRanks)
	}
	w := &outs[winner]
	return &Result{
		Epol: w.energy, Born: w.radii,
		Processes: P, ThreadsPerProcess: 1,
		PerCoreOps: perCoreOps,
		Traffic:    traffic,
		Wall:       sw.Elapsed(),
		Degraded:   w.degraded,
		ErrorBound: w.bound,
		LostRanks:  traffic.LostRanks,
		Recovered:  w.recovered,
	}, nil
}

// pushLocal is PUSH-INTEGRALS over a standalone segment tree. The
// quadratic carry mirrors System.pushIntegrals: the Hessian branches are
// guarded on acc.nodeH so the p≤1 arithmetic is untouched.
func pushLocal(tree *octree.Tree, pos []geom.Vec3, intrinsic []float64,
	acc *bornAccum, radii []float64, r4 bool) int64 {
	var walk func(a int32, carryS float64, carryG geom.Vec3, carryH geom.Mat3) int64
	walk = func(a int32, carryS float64, carryG geom.Vec3, carryH geom.Mat3) int64 {
		n := &tree.Nodes[a]
		carryS += acc.nodeS[a]
		carryG = carryG.Add(acc.nodeG[a])
		if acc.nodeH != nil {
			for t := 0; t < 9; t++ {
				carryH[t] += acc.nodeH[a][t]
			}
		}
		if n.Leaf {
			for _, it := range tree.ItemsOf(a) {
				xi := pos[it].Sub(n.Center)
				v := acc.atomS[it] + carryS + carryG.Dot(xi)
				if acc.nodeH != nil {
					v += 0.5 * xi.Dot(carryH.MulVec(xi))
				}
				if r4 {
					radii[it] = bornRadiusFromIntegralR4(v, intrinsic[it])
				} else {
					radii[it] = bornRadiusFromIntegral(v, intrinsic[it])
				}
			}
			return 1
		}
		ops := int64(1)
		for _, ch := range n.Children {
			if ch != octree.NoChild {
				shift := tree.Nodes[ch].Center.Sub(n.Center)
				cs := carryS + carryG.Dot(shift)
				cg := carryG
				if acc.nodeH != nil {
					hs := carryH.MulVec(shift)
					cs += 0.5 * shift.Dot(hs)
					cg = cg.Add(hs)
				}
				ops += walk(ch, cs, cg, carryH)
			}
		}
		return ops
	}
	return walk(tree.Root(), 0, geom.Vec3{}, geom.Mat3{})
}

// bundleView wraps an atom bundle as the minimal System view the energy
// traversals need (they read Mol.Atoms[i].Charge and atomPos), with
// aggregates over the shared radius range.
func bundleView(params Params, b *aBundle, rmin, rmax float64) (*System, *epolAggregates) {
	atoms := make([]molecule.Atom, len(b.pos))
	for i := range atoms {
		atoms[i] = molecule.Atom{Pos: b.pos[i], Radius: 1, Charge: b.charge[i]}
	}
	view := &System{
		Params:  params,
		Mol:     &molecule.Molecule{Name: "segment", Atoms: atoms},
		TA:      b.tree,
		atomPos: b.pos,
	}
	agg := view.buildEpolAggregatesRange(b.radii, rmin, rmax)
	return view, agg
}
