package gb

import (
	"fmt"
	"math"
	"time"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/octree"
	"gbpolar/internal/simmpi"
	"gbpolar/internal/surface"
)

// This file implements the paper's second proposed extension
// (Conclusion: "Distributing data as well as computation is also an
// interesting approach to explore"): instead of every rank replicating
// the whole molecule (§IV-A), each rank owns one atom segment and one
// quadrature segment, builds octrees over just its data, and the
// segments' serialized tree bundles circulate through a ring — every
// rank holds at most its own bundle plus ONE remote bundle at a time, so
// per-rank memory drops from O(data) to O(data/P).
//
// The price is a different decomposition (P local trees instead of one
// global tree), so the realized approximation differs slightly from the
// shared-data drivers while staying inside the same ε error band, and
// the interconnect carries the bundles (P−1 rounds of point-to-point
// traffic priced by the performance model).

// qBundle is a serializable quadrature segment: its octree plus point
// data and far-field aggregates.
type qBundle struct {
	tree    *octree.Tree
	pts     []surface.QPoint
	normals []geom.Vec3
	moments []geom.Mat3
}

// aBundle is a serializable atom segment: its octree plus atom data,
// radii and energy aggregates.
type aBundle struct {
	tree   *octree.Tree
	pos    []geom.Vec3
	charge []float64
	radii  []float64
}

// buildQBundle constructs the quadrature bundle for a point subset.
func buildQBundle(pts []surface.QPoint, leafSize int) *qBundle {
	pos := make([]geom.Vec3, len(pts))
	for i, q := range pts {
		pos[i] = q.Pos
	}
	b := &qBundle{tree: octree.Build(pos, leafSize), pts: pts}
	b.normals = make([]geom.Vec3, b.tree.NumNodes())
	b.moments = make([]geom.Mat3, b.tree.NumNodes())
	for i := b.tree.NumNodes() - 1; i >= 0; i-- {
		n := &b.tree.Nodes[i]
		if n.Leaf {
			var sum geom.Vec3
			var mom geom.Mat3
			for _, it := range b.tree.ItemsOf(int32(i)) {
				q := &pts[it]
				wn := q.Normal.Scale(q.Weight)
				sum = sum.Add(wn)
				addOuter(&mom, wn, q.Pos.Sub(n.Center))
			}
			b.normals[i] = sum
			b.moments[i] = mom
			continue
		}
		var sum geom.Vec3
		var mom geom.Mat3
		for _, c := range n.Children {
			if c == octree.NoChild {
				continue
			}
			sum = sum.Add(b.normals[c])
			shift := b.tree.Nodes[c].Center.Sub(n.Center)
			for k := 0; k < 9; k++ {
				mom[k] += b.moments[c][k]
			}
			addOuter(&mom, b.normals[c], shift)
		}
		b.normals[i] = sum
		b.moments[i] = mom
	}
	return b
}

// encodeQ serializes the bundle's point data (the tree is rebuilt on the
// receiving side from the spatially sorted points, which is cheap and
// avoids shipping node arrays). Layout: n, then per point
// (pos3, normal3, weight).
func (b *qBundle) encode() []float64 {
	out := make([]float64, 0, 1+7*len(b.pts))
	out = append(out, float64(len(b.pts)))
	// Ship points in octree item order: the receiver's rebuild then sees
	// pre-sorted input and the bundles stay deterministic.
	for _, it := range b.tree.Items {
		q := b.pts[it]
		out = append(out, q.Pos.X, q.Pos.Y, q.Pos.Z,
			q.Normal.X, q.Normal.Y, q.Normal.Z, q.Weight)
	}
	return out
}

func decodeQ(data []float64, leafSize int) *qBundle {
	n := int(data[0])
	pts := make([]surface.QPoint, n)
	for i := 0; i < n; i++ {
		f := data[1+7*i:]
		pts[i] = surface.QPoint{
			Pos:    geom.V(f[0], f[1], f[2]),
			Normal: geom.V(f[3], f[4], f[5]),
			Weight: f[6],
		}
	}
	return buildQBundle(pts, leafSize)
}

// buildABundle constructs the atom bundle for an atom subset.
func buildABundle(pos []geom.Vec3, charge, radii []float64, leafSize int) *aBundle {
	return &aBundle{
		tree: octree.Build(pos, leafSize),
		pos:  pos, charge: charge, radii: radii,
	}
}

// encode layout: n, then per atom (pos3, charge, radius).
func (b *aBundle) encode() []float64 {
	out := make([]float64, 0, 1+5*len(b.pos))
	out = append(out, float64(len(b.pos)))
	for _, it := range b.tree.Items {
		out = append(out, b.pos[it].X, b.pos[it].Y, b.pos[it].Z,
			b.charge[it], b.radii[it])
	}
	return out
}

func decodeA(data []float64, leafSize int) *aBundle {
	n := int(data[0])
	pos := make([]geom.Vec3, n)
	charge := make([]float64, n)
	radii := make([]float64, n)
	for i := 0; i < n; i++ {
		f := data[1+5*i:]
		pos[i] = geom.V(f[0], f[1], f[2])
		charge[i] = f[3]
		radii[i] = f[4]
	}
	return buildABundle(pos, charge, radii, leafSize)
}

// RunMPIDistributedData computes Epol with both data AND computation
// distributed over P ranks: per-rank memory is O(data/P) plus one
// transient remote bundle, at the cost of P−1 ring-exchange rounds per
// phase and a slightly different (multi-tree) decomposition.
func (s *System) RunMPIDistributedData(P int) (*Result, error) {
	if P < 1 {
		return nil, fmt.Errorf("gb: invalid layout P=%d", P)
	}
	start := time.Now()
	perCoreOps := make([]int64, P)
	radiiOut := make([]float64, s.NumAtoms())
	energy := 0.0
	beta := farBeta(s.Params.EpsBorn)
	r4 := s.Params.Integral == IntegralR4

	traffic, err := simmpi.Run(P, func(c *simmpi.Comm) {
		rank := c.Rank()
		// ---- Own segments (in global octree item order, so segment
		// boundaries match the shared-data drivers) -----------------------
		alo, ahi := segment(s.NumAtoms(), P, rank)
		ownAtomIdx := make([]int32, 0, ahi-alo)
		for pos := alo; pos < ahi; pos++ {
			ownAtomIdx = append(ownAtomIdx, s.TA.Items[pos])
		}
		pos := make([]geom.Vec3, len(ownAtomIdx))
		charge := make([]float64, len(ownAtomIdx))
		intrinsic := make([]float64, len(ownAtomIdx))
		for k, ai := range ownAtomIdx {
			pos[k] = s.atomPos[ai]
			charge[k] = s.Mol.Atoms[ai].Charge
			intrinsic[k] = s.Mol.Atoms[ai].Radius
		}
		qlo, qhi := segment(s.NumQPoints(), P, rank)
		ownQ := make([]surface.QPoint, 0, qhi-qlo)
		for p := qlo; p < qhi; p++ {
			ownQ = append(ownQ, s.Surf.Points[s.TQ.Items[p]])
		}
		qb := buildQBundle(ownQ, s.Params.LeafQPoints)
		ownQEnc := qb.encode()

		// ---- Born phase: own atoms × all quadrature segments ------------
		atomTree := octree.Build(pos, s.Params.LeafAtoms)
		acc := &bornAccum{
			nodeS: make([]float64, atomTree.NumNodes()),
			nodeG: make([]geom.Vec3, atomTree.NumNodes()),
			atomS: make([]float64, len(pos)),
		}
		process := func(b *qBundle) {
			bp := &bornPass{
				ta: atomTree, atomPos: pos,
				tq: b.tree, qpts: b.pts,
				normals: b.normals, moments: b.moments,
				beta: beta, r4: r4,
			}
			for _, q := range b.tree.Leaves() {
				perCoreOps[rank] += bp.run(atomTree.Root(), q, acc)
			}
		}
		process(qb)
		for round := 1; round < P && P > 1; round++ {
			dst := (rank + round) % P
			src := (rank - round + P) % P
			c.Send(dst, ownQEnc)
			remote := decodeQ(c.Recv(src), s.Params.LeafQPoints)
			process(remote) // transient: dropped after the pass
		}

		// Push integrals over the LOCAL tree.
		radii := make([]float64, len(pos))
		perCoreOps[rank] += pushLocal(atomTree, pos, intrinsic, acc, radii, r4)

		// Publish radii so the master can assemble the full vector.
		flat := make([]float64, 0, 2*len(radii))
		for k, r := range radii {
			flat = append(flat, float64(ownAtomIdx[k]), r)
		}
		all := c.Allgatherv(flat)
		if rank == 0 {
			for i := 0; i+1 < len(all); i += 2 {
				radiiOut[int(all[i])] = all[i+1]
			}
		}

		// ---- Epol phase: shared radius-class range ----------------------
		localMin, localMax := math.Inf(1), math.Inf(-1)
		for _, r := range radii {
			localMin, localMax = math.Min(localMin, r), math.Max(localMax, r)
		}
		rmin := c.Allreduce([]float64{localMin}, simmpi.Min)[0]
		rmax := c.Allreduce([]float64{localMax}, simmpi.Max)[0]

		ab := buildABundle(pos, charge, radii, s.Params.LeafAtoms)
		ownAEnc := ab.encode()
		ownView, ownAgg := bundleView(s.Params, ab, rmin, rmax)

		kernel := pairEnergyKernel(s.Params.Math)
		factor := epolFarFactor(s.Params.EpsEpol, s.Params.OpeningScale)
		partial := 0.0
		// Own × own (ordered pairs within the segment).
		for _, v := range ab.tree.Leaves() {
			vs, vops := ownView.approxEpol(ab.tree.Root(), v, ab.radii, ownAgg, kernel, factor)
			partial += vs
			perCoreOps[rank] += vops
		}
		// Own × every remote segment: each rank computes the ordered pairs
		// (remote atom, own atom) with U the remote tree and V its own
		// leaves; over all ranks every cross ordered pair is counted once.
		for round := 1; round < P && P > 1; round++ {
			dst := (rank + round) % P
			src := (rank - round + P) % P
			c.Send(dst, ownAEnc)
			remote := decodeA(c.Recv(src), s.Params.LeafAtoms)
			remView, remAgg := bundleView(s.Params, remote, rmin, rmax)
			ep := &epolCrossPass{
				u: remView, uAgg: remAgg, uRadii: remote.radii,
				v: ownView, vAgg: ownAgg, vRadii: ab.radii,
				kernel: kernel, factor: factor,
			}
			for _, v := range ab.tree.Leaves() {
				vs, vops := ep.run(remote.tree.Root(), v)
				// Ordered pairs in one direction only: remote→own. The
				// opposite direction is produced by the remote rank's
				// round against us, so no doubling here.
				partial += vs
				perCoreOps[rank] += vops
			}
		}
		sum := c.Allreduce([]float64{partial}, simmpi.Sum)
		if rank == 0 {
			energy = -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum[0]
		}
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Epol: energy, Born: radiiOut,
		Processes: P, ThreadsPerProcess: 1,
		PerCoreOps: perCoreOps,
		Traffic:    traffic,
		Wall:       time.Since(start),
	}, nil
}

// pushLocal is PUSH-INTEGRALS over a standalone segment tree.
func pushLocal(tree *octree.Tree, pos []geom.Vec3, intrinsic []float64,
	acc *bornAccum, radii []float64, r4 bool) int64 {
	var walk func(a int32, carryS float64, carryG geom.Vec3) int64
	walk = func(a int32, carryS float64, carryG geom.Vec3) int64 {
		n := &tree.Nodes[a]
		carryS += acc.nodeS[a]
		carryG = carryG.Add(acc.nodeG[a])
		if n.Leaf {
			for _, it := range tree.ItemsOf(a) {
				v := acc.atomS[it] + carryS + carryG.Dot(pos[it].Sub(n.Center))
				if r4 {
					radii[it] = bornRadiusFromIntegralR4(v, intrinsic[it])
				} else {
					radii[it] = bornRadiusFromIntegral(v, intrinsic[it])
				}
			}
			return 1
		}
		ops := int64(1)
		for _, ch := range n.Children {
			if ch != octree.NoChild {
				shift := tree.Nodes[ch].Center.Sub(n.Center)
				ops += walk(ch, carryS+carryG.Dot(shift), carryG)
			}
		}
		return ops
	}
	return walk(tree.Root(), 0, geom.Vec3{})
}

// bundleView wraps an atom bundle as the minimal System view the energy
// traversals need (they read Mol.Atoms[i].Charge and atomPos), with
// aggregates over the shared radius range.
func bundleView(params Params, b *aBundle, rmin, rmax float64) (*System, *epolAggregates) {
	atoms := make([]molecule.Atom, len(b.pos))
	for i := range atoms {
		atoms[i] = molecule.Atom{Pos: b.pos[i], Radius: 1, Charge: b.charge[i]}
	}
	view := &System{
		Params:  params,
		Mol:     &molecule.Molecule{Name: "segment", Atoms: atoms},
		TA:      b.tree,
		atomPos: b.pos,
	}
	agg := view.buildEpolAggregatesRange(b.radii, rmin, rmax)
	return view, agg
}
