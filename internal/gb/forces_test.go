package gb

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// numericalGradient computes ∂E/∂x by central differences at frozen
// radii.
func numericalGradient(t *testing.T, s *System, radii []float64, atom int) geom.Vec3 {
	t.Helper()
	const h = 1e-5
	grad := geom.Vec3{}
	orig := s.Mol.Atoms[atom].Pos
	eval := func(p geom.Vec3) float64 {
		s.Mol.Atoms[atom].Pos = p
		s.atomPos[atom] = p
		e, _ := s.NaiveEpol(radii)
		return e
	}
	for axis := 0; axis < 3; axis++ {
		d := geom.Vec3{}
		switch axis {
		case 0:
			d.X = h
		case 1:
			d.Y = h
		case 2:
			d.Z = h
		}
		plus := eval(orig.Add(d))
		minus := eval(orig.Sub(d))
		v := (plus - minus) / (2 * h)
		switch axis {
		case 0:
			grad.X = v
		case 1:
			grad.Y = v
		case 2:
			grad.Z = v
		}
	}
	eval(orig) // restore
	return grad
}

func TestEnergyGradientsMatchNumerical(t *testing.T) {
	s := buildSys(t, 60, DefaultParams())
	radii, _ := s.NaiveBornRadiiR6()
	dEdx, _ := s.EnergyGradients(radii)
	for _, atom := range []int{0, 7, 31, 59} {
		num := numericalGradient(t, s, radii, atom)
		if d := num.Sub(dEdx[atom]).Norm(); d > 1e-5*(1+num.Norm()) {
			t.Errorf("atom %d: analytic %v vs numerical %v", atom, dEdx[atom], num)
		}
	}
}

func TestEnergyGradientsRadiusPartials(t *testing.T) {
	s := buildSys(t, 50, DefaultParams())
	radii, _ := s.NaiveBornRadiiR6()
	_, dEdR := s.EnergyGradients(radii)
	const h = 1e-6
	for _, atom := range []int{0, 13, 49} {
		bumped := append([]float64(nil), radii...)
		bumped[atom] += h
		ePlus, _ := s.NaiveEpol(bumped)
		bumped[atom] -= 2 * h
		eMinus, _ := s.NaiveEpol(bumped)
		num := (ePlus - eMinus) / (2 * h)
		if math.Abs(num-dEdR[atom]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("atom %d: dE/dR analytic %v vs numerical %v", atom, dEdR[atom], num)
		}
	}
}

func TestForcesSumToZero(t *testing.T) {
	// Newton's third law: frozen-radii forces are internal pair forces,
	// so they must sum to (numerically) zero.
	s := buildSys(t, 300, DefaultParams())
	radii, _ := s.NaiveBornRadiiR6()
	forces := s.Forces(radii)
	var total geom.Vec3
	maxF := 0.0
	for _, f := range forces {
		total = total.Add(f)
		if f.Norm() > maxF {
			maxF = f.Norm()
		}
	}
	if total.Norm() > 1e-9*maxF*float64(len(forces)) {
		t.Errorf("net force %v (max single force %v)", total, maxF)
	}
}

func TestForcesSignConvention(t *testing.T) {
	// Two like charges near each other: GB screening energy rises as
	// they separate... verify Forces = −dEdx exactly.
	s := buildSys(t, 40, DefaultParams())
	radii, _ := s.NaiveBornRadiiR6()
	dEdx, _ := s.EnergyGradients(radii)
	forces := s.Forces(radii)
	for i := range forces {
		if forces[i].Add(dEdx[i]).Norm() > 1e-12 {
			t.Fatalf("atom %d: Forces != -dEdx", i)
		}
	}
}

func TestPerAtomEpolSumsToTotal(t *testing.T) {
	s := buildSys(t, 250, DefaultParams())
	radii, _ := s.NaiveBornRadiiR6()
	total, _ := s.NaiveEpol(radii)
	per := s.PerAtomEpol(radii)
	sum := 0.0
	for _, v := range per {
		sum += v
	}
	if math.Abs(sum-total)/math.Abs(total) > 1e-12 {
		t.Errorf("per-atom sum %v != total %v", sum, total)
	}
}

func TestPerAtomEpolChargedAtomsDominate(t *testing.T) {
	// A lone ion among neutral atoms carries almost all of the energy.
	m := &molecule.Molecule{Name: "ion-in-crowd", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 2, Charge: 1},
		{Pos: geom.V(6, 0, 0), Radius: 1.5, Charge: 0},
		{Pos: geom.V(0, 6, 0), Radius: 1.5, Charge: 0},
	}}
	s := newTestSystem(t, m, surface.Config{IcoLevel: 1}, DefaultParams())
	radii, _ := s.NaiveBornRadiiR6()
	per := s.PerAtomEpol(radii)
	if math.Abs(per[1]) > 1e-9 || math.Abs(per[2]) > 1e-9 {
		t.Errorf("neutral atoms carry energy: %v", per)
	}
	if per[0] >= 0 {
		t.Errorf("ion energy %v not negative", per[0])
	}
}
