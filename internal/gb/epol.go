package gb

import (
	"math"

	"gbpolar/internal/geom"
	"gbpolar/internal/octree"
)

// NaiveEpol evaluates Eq. 2 exactly: Epol = −(τ/2)·κ·Σ_{i,j} q_i q_j /
// f_GB(r_ij, R_i, R_j) over all ordered atom pairs including i = j (the
// self term q_i²/R_i). O(M²). Returns the energy in kcal/mol and the pair
// count.
func (s *System) NaiveEpol(radii []float64) (float64, int64) {
	kernel := pairEnergyKernel(s.Params.Math)
	atoms := s.Mol.Atoms
	sum := 0.0
	ops := int64(0)
	for i := range atoms {
		qi, pi, ri := atoms[i].Charge, atoms[i].Pos, radii[i]
		// Self term.
		sum += qi * qi / ri
		ops++
		for j := i + 1; j < len(atoms); j++ {
			r2 := pi.Dist2(atoms[j].Pos)
			sum += 2 * kernel(qi*atoms[j].Charge, r2, ri*radii[j])
			ops++
		}
	}
	return -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum, ops
}

// epolAggregates holds the per-node Born-radius-class charge histograms
// q_U[k] of Fig. 3: class k collects the total charge of atoms with Born
// radius in [Rmin(1+ε)^k, Rmin(1+ε)^(k+1)).
type epolAggregates struct {
	M       int       // number of classes: ceil(log_{1+ε}(Rmax/Rmin)), ≥ 1
	Rmin    float64   //
	hist    []float64 // dense [node*M + k] charge histogram
	powR    []float64 // powR[k] = Rmin²·(1+ε)^(k+1) for k ∈ [0, 2M)
	classOf []int     // per-atom class (original index)
	// dip[node*M + k] is the class-k charge dipole Σ q_a·(p_a − center)
	// about the node's ball center: the first-order (FMM p=1) correction
	// that the "Greengard–Rokhlin type" far field needs, because
	// protein charge distributions are locally dipolar and a pure
	// monopole histogram drops their leading far-field term.
	dip []geom.Vec3
	// order is the expansion order the far-field evaluation runs at
	// (always built from the owning system's accuracy spec). The dip
	// slice is populated regardless — it is cheap and Complex shares
	// aggregates across passes — but OrderMonopole evaluation ignores it.
	order int
	// quad[node*M + k] is the class-k charge quadrupole Σ q_a·m_a m_aᵀ
	// (m_a = p_a − center): the second-order moment of the p=2 far
	// field. Nil below OrderQuadrupole.
	quad []geom.Mat3
}

// maxEpolClasses caps the histogram width: below the corresponding bin
// width the far-field binning error is negligible next to the clustering
// error, and the cap bounds the O(M²) class-pair loops.
const maxEpolClasses = 128

// buildEpolAggregates computes the histograms for the given Born radii.
// The bin width is log(1+ε) unless that would exceed maxEpolClasses, in
// which case the bins are widened just enough to span [Rmin, Rmax].
func (s *System) buildEpolAggregates(radii []float64) *epolAggregates {
	rmin, rmax := math.Inf(1), 0.0
	for _, r := range radii {
		if r < rmin {
			rmin = r
		}
		if r > rmax {
			rmax = r
		}
	}
	return s.buildEpolAggregatesRange(radii, rmin, rmax)
}

// buildEpolAggregatesRange builds the histograms over an explicit radius
// range [rmin, rmax] — two systems sharing a range produce directly
// comparable class indices (the cross-molecule energy pass of Complex).
func (s *System) buildEpolAggregatesRange(radii []float64, rmin, rmax float64) *epolAggregates {
	eps := math.Min(s.Params.EpsEpol, defaultBinEps)
	if s.Params.EpsBin > 0 {
		eps = s.Params.EpsBin
	}
	agg := &epolAggregates{Rmin: rmin, order: s.order()}
	epsBin := eps
	if rmax > rmin {
		if need := math.Log(rmax/rmin) / math.Log1p(eps); need+1 > maxEpolClasses {
			epsBin = math.Expm1(math.Log(rmax/rmin) / (maxEpolClasses - 1))
		}
	}
	logBase := math.Log1p(epsBin)
	if rmax <= rmin {
		agg.M = 1
	} else {
		agg.M = int(math.Ceil(math.Log(rmax/rmin)/logBase)) + 1
		if agg.M > maxEpolClasses {
			agg.M = maxEpolClasses
		}
	}
	agg.classOf = make([]int, len(radii))
	for i, r := range radii {
		k := 0
		if r > rmin {
			k = int(math.Log(r/rmin) / logBase)
		}
		if k >= agg.M {
			k = agg.M - 1
		}
		agg.classOf[i] = k
	}
	// powR[k] = Rmin²(1+ε)^(k+1): the class-product representative at the
	// geometric middle of its cell (a pair (i, j) has true R_iR_j in
	// [Rmin²(1+ε)^(i+j), Rmin²(1+ε)^(i+j+2))), which halves the bias of
	// the paper's lower-edge (1+ε)^(i+j) form.
	agg.powR = make([]float64, 2*agg.M)
	for k := range agg.powR {
		agg.powR[k] = rmin * rmin * math.Pow(1+epsBin, float64(k+1))
	}
	// Bottom-up aggregation: parents precede children in DFS index order,
	// so iterating in reverse has every child ready before its parent.
	agg.hist = make([]float64, s.TA.NumNodes()*agg.M)
	agg.dip = make([]geom.Vec3, s.TA.NumNodes()*agg.M)
	if agg.order == OrderQuadrupole {
		agg.quad = make([]geom.Mat3, s.TA.NumNodes()*agg.M)
	}
	for i := s.TA.NumNodes() - 1; i >= 0; i-- {
		n := &s.TA.Nodes[i]
		base := i * agg.M
		if n.Leaf {
			for _, ai := range s.TA.ItemsOf(int32(i)) {
				k := agg.classOf[ai]
				q := s.Mol.Atoms[ai].Charge
				agg.hist[base+k] += q
				agg.dip[base+k] = agg.dip[base+k].Add(s.atomPos[ai].Sub(n.Center).Scale(q))
				if agg.quad != nil {
					m := s.atomPos[ai].Sub(n.Center)
					addOuter(&agg.quad[base+k], m.Scale(q), m)
				}
			}
			continue
		}
		for _, c := range n.Children {
			if c == octree.NoChild {
				continue
			}
			cn := &s.TA.Nodes[c]
			shift := cn.Center.Sub(n.Center)
			cbase := int(c) * agg.M
			for k := 0; k < agg.M; k++ {
				q := agg.hist[cbase+k]
				agg.hist[base+k] += q
				if agg.quad != nil {
					// Re-center the child quadrupole about the parent:
					// K' = K + s⊗D + D⊗s + q·s⊗s, with the child dipole D
					// taken BEFORE its own re-centering.
					cd := agg.dip[cbase+k]
					kq := &agg.quad[base+k]
					cq := &agg.quad[cbase+k]
					for t := 0; t < 9; t++ {
						kq[t] += cq[t]
					}
					addOuter(kq, shift, cd)
					addOuter(kq, cd, shift)
					addOuter(kq, shift.Scale(q), shift)
				}
				// Re-center the child dipole about the parent center.
				agg.dip[base+k] = agg.dip[base+k].Add(agg.dip[cbase+k]).Add(shift.Scale(q))
			}
		}
	}
	return agg
}

// epolOpeningScale multiplies Fig. 3's far threshold (1 + 2/ε). With the
// first-order dipole correction in farClassSum the printed criterion
// already lands the realized error in the paper's Fig. 10 band (≤1.5% at
// ε = 0.9), so the default is 1; the knob remains for the ablation bench.
const epolOpeningScale = 1.0

// defaultBinEps caps the Born-radius class width: the histogram binning
// error is the accuracy floor of the far field, and bins wider than
// ln(1.2) measurably bias f_GB (EXPERIMENTS.md calibration: at ε = 0.9
// the paper-style ln(1+ε) bins cost ~5% energy error versus ~0.6% at
// 0.2, for ~20% more work).
const defaultBinEps = 0.2

// epolFarFactor returns the threshold multiplier (1 + 2/ε)·scale of the
// energy far criterion.
func epolFarFactor(eps, scale float64) float64 {
	if scale <= 0 {
		scale = epolOpeningScale
	}
	return (1 + 2/eps) * scale
}

// epolFarFactorOrder generalizes epolFarFactor to the expansion order p:
// the clustering error of an order-p class field scales like
// ((r_U+r_V)/d)^(p+1) ≤ (1/factor)^(p+1), so holding the bound at the
// calibrated p=1 value (1/factor)² gives factor_p = factor^(2/(p+1)) —
// tighter (larger) for the monopole field, looser for the quadrupole
// field at the same target error. The p=1 branch returns the legacy
// factor literally so the default stays bitwise identical.
func epolFarFactorOrder(eps, scale float64, order int) float64 {
	f := epolFarFactor(eps, scale)
	if order == OrderDipole {
		return f
	}
	return math.Pow(f, 2/float64(order+1))
}

// epolFar reports whether node balls (separation d, radii ru, rv) satisfy
// the far criterion r_UV > (r_U+r_V)·factor.
func epolFar(d, ru, rv, factor float64) bool {
	return d > (ru+rv)*factor
}

// pairTally splits an energy traversal's evaluation count into exact
// (near) and class-approximated (far) pair evaluations for the obs
// counters. A nil tally disables counting, so callers that only want the
// sum (Complex, the distributed data variants) pass nil.
type pairTally struct{ near, far int64 }

func (t *pairTally) addNear(n int64) {
	if t != nil {
		t.near += n
	}
}

func (t *pairTally) addFar(n int64) {
	if t != nil {
		t.far += n
	}
}

// ApproxEpol is Fig. 3's APPROX-Epol(U, V): the raw pair sum
// Σ q_u q_v / f_GB between the atoms under U and the atoms under leaf V,
// approximated by class histograms when (U, V) is far, exact at leaves.
// Returns (sum, interaction evaluations).
func (s *System) ApproxEpol(u, v int32, radii []float64, agg *epolAggregates) (float64, int64) {
	kernel := pairEnergyKernel(s.Params.Math)
	factor := s.epolFactor()
	return s.approxEpol(u, v, radii, agg, kernel, factor, nil)
}

func (s *System) approxEpol(u, v int32, radii []float64, agg *epolAggregates,
	kernel func(qq, r2, RiRj float64) float64, factor float64, tally *pairTally) (float64, int64) {
	un := &s.TA.Nodes[u]
	vn := &s.TA.Nodes[v]
	d := un.Center.Dist(vn.Center)
	// The class-histogram approximation only applies when U is internal:
	// leaf–leaf pairs are evaluated exactly below at comparable cost
	// (≤ leaf² pairs vs nnz² class pairs), and skipping the binning there
	// matters because two small leaves can be geometrically "far" (tiny
	// radii) while still close on the f_GB scale √(R_iR_j), where binned
	// radii misprice the kernel.
	if u != v && !un.Leaf && epolFar(d, un.Radius, vn.Radius, factor) {
		return s.farClassSum(u, v, d, vn.Center.Sub(un.Center), agg, tally)
	}
	if un.Leaf {
		// Exact: ordered pairs (u-atom, v-atom); self terms arise when
		// U == V via r² = 0 ⇒ f = R_i (q_i²/R_i).
		sum := 0.0
		ops := int64(0)
		uItems := s.TA.ItemsOf(u)
		vItems := s.TA.ItemsOf(v)
		for _, ui := range uItems {
			qi, pi, ri := s.Mol.Atoms[ui].Charge, s.atomPos[ui], radii[ui]
			for _, vi := range vItems {
				if ui == vi {
					sum += qi * qi / ri
					ops++
					continue
				}
				r2 := pi.Dist2(s.atomPos[vi])
				sum += kernel(qi*s.Mol.Atoms[vi].Charge, r2, ri*radii[vi])
				ops++
			}
		}
		tally.addNear(ops)
		return sum, ops
	}
	sum := 0.0
	ops := int64(1)
	for _, c := range un.Children {
		if c != octree.NoChild {
			cs, cops := s.approxEpol(c, v, radii, agg, kernel, factor, tally)
			sum += cs
			ops += cops
		}
	}
	return sum, ops
}

// farClassSum evaluates the far-field interaction of node pair (U, V) at
// center distance d (direction vector dvec = c_V − c_U): for every
// non-empty Born-radius class pair (i, j), the order-p expansion of
// g(|d·d̂ + δ|) about δ = 0, with δ = m_v − m_u the pair offset and
// g(r) = 1/f_GB(r; R_iR_j ≈ Rmin²(1+ε)^(i+j+1)):
//
//	p ≥ 0:  Q_U[i]·Q_V[j]·g(d)
//	p ≥ 1:  + g'(d)·[Q_U[i]·(d̂·D_V[j]) − (d̂·D_U[i])·Q_V[j]]
//	p = 2:  + ½g″(d)·⟨(d̂·δ)²⟩ + ½(g'(d)/d)·⟨|δ|² − (d̂·δ)²⟩
//
// where the second-moment contractions come from the class quadrupoles:
// ⟨(d̂·δ)²⟩ = Q_U·d̂ᵀK_Vd̂ − 2(d̂·D_U)(d̂·D_V) + d̂ᵀK_Ud̂·Q_V and
// ⟨|δ|²⟩ = Q_U·tr K_V − 2 D_U·D_V + tr K_U·Q_V. The p=1 branch is the
// pre-Accuracy arithmetic verbatim. Returns (raw sum, evaluations).
func (s *System) farClassSum(u, v int32, d float64, dvec geom.Vec3, agg *epolAggregates, tally *pairTally) (float64, int64) {
	r2 := d * d
	dhat := dvec.Scale(1 / d)
	approx := s.Params.Math == ApproxMath
	ord := agg.order
	sum := 0.0
	ops := int64(0)
	ubase, vbase := int(u)*agg.M, int(v)*agg.M
	for i := 0; i < agg.M; i++ {
		qu := agg.hist[ubase+i]
		var du float64
		var dipU geom.Vec3
		if ord >= OrderDipole {
			dipU = agg.dip[ubase+i]
			du = dhat.Dot(dipU)
		}
		if qu == 0 && du == 0 &&
			(ord != OrderQuadrupole || agg.quad[ubase+i] == (geom.Mat3{})) {
			continue
		}
		for j := 0; j < agg.M; j++ {
			qv := agg.hist[vbase+j]
			var dv float64
			var dipV geom.Vec3
			if ord >= OrderDipole {
				dipV = agg.dip[vbase+j]
				dv = dhat.Dot(dipV)
			}
			if qv == 0 && dv == 0 &&
				(ord != OrderQuadrupole || agg.quad[vbase+j] == (geom.Mat3{})) {
				continue
			}
			t := agg.powR[i+j]
			var e float64
			if approx {
				e = fastExp(-r2 / (4 * t))
			} else {
				e = math.Exp(-r2 / (4 * t))
			}
			f2 := r2 + t*e
			var invF float64
			if approx {
				invF = fastInvSqrt(f2)
			} else {
				invF = 1 / math.Sqrt(f2)
			}
			if ord == OrderMonopole {
				sum += qu * qv * invF
				ops++
				continue
			}
			// g'(d) = −d·(1 − e/4)/f³.
			gp := -d * (1 - e/4) * invF * invF * invF
			sum += qu*qv*invF + gp*(qu*dv-du*qv)
			if ord == OrderQuadrupole {
				// g″(d) = ¾u'²/f⁵ − ½u″/f³ with u = f², u' = 2d(1−e/4),
				// u″ = 2(1−e/4) + (r²/4t)e.
				up := 2 * d * (1 - e/4)
				upp := 2*(1-e/4) + (r2/(4*t))*e
				invF3 := invF * invF * invF
				gpp := 0.75*up*up*invF3*invF*invF - 0.5*upp*invF3
				ku, kv := &agg.quad[ubase+i], &agg.quad[vbase+j]
				a2 := qu*dhat.Dot(kv.MulVec(dhat)) - 2*du*dv + dhat.Dot(ku.MulVec(dhat))*qv
				b2 := qu*(kv[0]+kv[4]+kv[8]) - 2*dipU.Dot(dipV) + (ku[0]+ku[4]+ku[8])*qv
				sum += 0.5*gpp*a2 + (0.5*gp/d)*(b2-a2)
			}
			ops++
		}
	}
	if ops == 0 {
		ops = 1
	}
	tally.addFar(ops)
	return sum, ops
}

// Epol runs the full serial octree energy pass: every atoms-octree leaf V
// interacts with the whole tree (Fig. 4 Step 6), the raw sums are scaled
// by −τκ/2. Returns the energy in kcal/mol and the interaction count.
func (s *System) Epol(radii []float64) (float64, int64) {
	agg := s.buildEpolAggregates(radii)
	sum := 0.0
	ops := int64(0)
	for _, v := range s.aLeaves {
		vs, vops := s.ApproxEpol(s.TA.Root(), v, radii, agg)
		sum += vs
		ops += vops
	}
	return -0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum, ops
}
