package gb

import (
	"math"
	"testing"

	"gbpolar/internal/sched"
)

// These tests are the dynamic counterpart of the static `determinism`
// analyzer in internal/analysis: the analyzer forbids sources of run-to-run
// variation the compiler can see (map iteration feeding float accumulation,
// unseeded RNGs, clock reads in kernels); these tests catch the ones it
// cannot — scheduling-order-dependent floating-point reduction. Every
// driver must produce bitwise-identical Epol and Born radii when run twice
// on the same system at the same (P, p) layout, or the ε-bounded
// approximation error and the fault-replay guarantees of PR 1 are
// meaningless.

// bitwiseSame fails the test unless two results are bit-for-bit equal.
func bitwiseSame(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if math.Float64bits(a.Epol) != math.Float64bits(b.Epol) {
		t.Errorf("%s: Epol not bitwise reproducible: %x vs %x (%v vs %v)",
			label, math.Float64bits(a.Epol), math.Float64bits(b.Epol), a.Epol, b.Epol)
	}
	if len(a.Born) != len(b.Born) {
		t.Fatalf("%s: Born lengths differ: %d vs %d", label, len(a.Born), len(b.Born))
	}
	for i := range a.Born {
		if math.Float64bits(a.Born[i]) != math.Float64bits(b.Born[i]) {
			t.Fatalf("%s: Born[%d] not bitwise reproducible: %v vs %v", label, i, a.Born[i], b.Born[i])
		}
	}
}

// TestCilkBitwiseDeterministic runs the shared-memory work-stealing driver
// twice per worker count: randomized stealing must not leak into the
// float reduction order (sched.ParallelReduce pins the merge tree).
func TestCilkBitwiseDeterministic(t *testing.T) {
	s := buildSys(t, 500, DefaultParams())
	for _, p := range []int{1, 2, 4, 7} {
		run := func() *Result {
			pool := sched.New(p)
			defer pool.Close()
			return s.RunCilk(pool)
		}
		a, b := run(), run()
		bitwiseSame(t, "cilk", a, b)
	}
}

// TestDistributedBitwiseDeterministic runs the message-passing drivers
// (pure MPI, hybrid MPI×Cilk, and the distributed-data variant) twice at
// a fixed layout and demands bitwise-identical results.
func TestDistributedBitwiseDeterministic(t *testing.T) {
	s := buildSys(t, 500, DefaultParams())

	for _, P := range []int{2, 5} {
		a, err := s.RunMPI(P)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.RunMPI(P)
		if err != nil {
			t.Fatal(err)
		}
		bitwiseSame(t, "mpi", a, b)
	}

	ha, err := s.RunHybrid(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := s.RunHybrid(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseSame(t, "hybrid", ha, hb)

	da, err := s.RunMPIDistributedData(3)
	if err != nil {
		t.Fatal(err)
	}
	db, err := s.RunMPIDistributedData(3)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseSame(t, "distdata", da, db)
}
