package gb

import (
	"math"
	"sort"
	"testing"

	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// TestProbeEpolError is a diagnostic scaffold (kept as a regression probe):
// it reports where the octree Epol error comes from.
func TestProbeEpolError(t *testing.T) {
	m := molecule.Globule("g", 600, 41)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	sys, err := NewSystem(m, surf, params)
	if err != nil {
		t.Fatal(err)
	}
	radii, _ := sys.NaiveBornRadiiR6()
	sorted := append([]float64(nil), radii...)
	sort.Float64s(sorted)
	t.Logf("radii: min=%v p50=%v p90=%v p99=%v max=%v",
		sorted[0], sorted[len(sorted)/2], sorted[len(sorted)*9/10],
		sorted[len(sorted)*99/100], sorted[len(sorted)-1])
	agg := sys.buildEpolAggregates(radii)
	t.Logf("M=%d Rmin=%v", agg.M, agg.Rmin)
	naive, _ := sys.NaiveEpol(radii)
	for _, eps := range []float64{0.01, 0.3, 0.9} {
		p2 := params
		p2.EpsEpol = eps
		s2, _ := NewSystem(m, surf, p2)
		e, ops := s2.Epol(radii)
		t.Logf("eps=%v: E=%v naive=%v rel=%v ops=%d", eps, e, naive,
			math.Abs(e-naive)/math.Abs(naive), ops)
	}
}

// TestProbeEpolErrorDecomposition separates binning error from clustering
// error at the working ε.
func TestProbeEpolErrorDecomposition(t *testing.T) {
	m := molecule.Globule("g", 600, 41)
	surf, _ := surface.Build(m, surface.DefaultConfig())
	params := DefaultParams()
	sys, _ := NewSystem(m, surf, params)
	radii, _ := sys.NaiveBornRadiiR6()
	naive, _ := sys.NaiveEpol(radii)
	for _, scale := range []float64{1, 2, 3} {
		for _, binEps := range []float64{0.9, 0.05} {
			p2 := params
			p2.EpsEpol = 0.9
			p2.EpsBin = binEps
			p2.OpeningScale = scale
			s2, _ := NewSystem(m, surf, p2)
			e, ops := s2.Epol(radii)
			t.Logf("scale=%v binEps=%v: rel=%+.4f%% ops=%d",
				scale, binEps, 100*(e-naive)/math.Abs(naive), ops)
		}
	}
}

// TestProbeEpolLarge checks error/work on a molecule large enough for the
// far field to dominate.
func TestProbeEpolLarge(t *testing.T) {
	m := molecule.Globule("g", 2500, 77)
	surf, _ := surface.Build(m, surface.DefaultConfig())
	params := DefaultParams()
	sys, _ := NewSystem(m, surf, params)
	radii, _ := sys.NaiveBornRadiiR6()
	naive, nops := sys.NaiveEpol(radii)
	t.Logf("naive E=%v halfops=%d", naive, nops)
	for _, scale := range []float64{1, 2} {
		for _, binEps := range []float64{0.9, 0.2, 0.05} {
			p2 := params
			p2.EpsEpol = 0.9
			p2.EpsBin = binEps
			p2.OpeningScale = scale
			s2, _ := NewSystem(m, surf, p2)
			e, ops := s2.Epol(radii)
			t.Logf("scale=%v binEps=%v: rel=%+.4f%% ops=%d", scale, binEps, 100*(e-naive)/math.Abs(naive), ops)
		}
	}
}

// TestEpolPairCoverage verifies the U-descent covers every ordered atom
// pair exactly once: with a counting kernel the total must be M².
func TestEpolPairCoverage(t *testing.T) {
	m := molecule.Globule("g", 1500, 79)
	surf, _ := surface.Build(m, surface.DefaultConfig())
	sys, _ := NewSystem(m, surf, DefaultParams())
	factor := epolFarFactor(0.9, 0) // default scale
	var count func(u, v int32) int64
	count = func(u, v int32) int64 {
		un := &sys.TA.Nodes[u]
		vn := &sys.TA.Nodes[v]
		d := un.Center.Dist(vn.Center)
		if u != v && epolFar(d, un.Radius, vn.Radius, factor) {
			return int64(un.Count()) * int64(vn.Count())
		}
		if un.Leaf {
			return int64(un.Count()) * int64(vn.Count())
		}
		tot := int64(0)
		for _, c := range un.Children {
			if c != -1 {
				tot += count(c, v)
			}
		}
		return tot
	}
	total := int64(0)
	for _, v := range sys.aLeaves {
		total += count(sys.TA.Root(), v)
	}
	want := int64(m.NumAtoms()) * int64(m.NumAtoms())
	if total != want {
		t.Errorf("covered %d ordered pairs, want %d", total, want)
	}
}

// TestProbeFarPairAccuracy compares each far-pair class-sum against the
// exact double loop, to localize the far-field error.
func TestProbeFarPairAccuracy(t *testing.T) {
	m := molecule.Globule("g", 1500, 79)
	surf, _ := surface.Build(m, surface.DefaultConfig())
	p := DefaultParams()
	p.EpsBin = 0.05
	sys, _ := NewSystem(m, surf, p)
	radii, _ := sys.NaiveBornRadiiR6()
	agg := sys.buildEpolAggregates(radii)
	factor := epolFarFactor(p.EpsEpol, p.OpeningScale)
	kernel := pairEnergyKernel(ExactMath)
	var farApprox, farExact, totDiff float64
	nfar := 0
	var walk func(u, v int32)
	walk = func(u, v int32) {
		un := &sys.TA.Nodes[u]
		vn := &sys.TA.Nodes[v]
		d := un.Center.Dist(vn.Center)
		if u != v && epolFar(d, un.Radius, vn.Radius, factor) {
			r2 := d * d
			apx := 0.0
			ub, vb := int(u)*agg.M, int(v)*agg.M
			for i := 0; i < agg.M; i++ {
				if agg.hist[ub+i] == 0 {
					continue
				}
				for j := 0; j < agg.M; j++ {
					if agg.hist[vb+j] == 0 {
						continue
					}
					apx += kernel(agg.hist[ub+i]*agg.hist[vb+j], r2, agg.powR[i+j])
				}
			}
			ext := 0.0
			for _, ui := range sys.TA.ItemsOf(u) {
				for _, vi := range sys.TA.ItemsOf(v) {
					rr := sys.atomPos[ui].Dist2(sys.atomPos[vi])
					ext += kernel(sys.Mol.Atoms[ui].Charge*sys.Mol.Atoms[vi].Charge, rr, radii[ui]*radii[vi])
				}
			}
			farApprox += apx
			farExact += ext
			totDiff += math.Abs(apx - ext)
			nfar++
			return
		}
		if un.Leaf {
			return
		}
		for _, c := range un.Children {
			if c != -1 {
				walk(c, v)
			}
		}
	}
	for _, v := range sys.aLeaves {
		walk(sys.TA.Root(), v)
	}
	naive, _ := sys.NaiveEpol(radii)
	rawNaive := naive / (-0.5 * Tau(80) * CoulombKcal)
	t.Logf("nfar=%d farApprox=%.6f farExact=%.6f sumAbsDiff=%.6f rawNaiveTotal=%.6f",
		nfar, farApprox, farExact, totDiff, rawNaive)
}

// TestProbeEpolTune8k tunes default scale/binEps at a larger size.
func TestProbeEpolTune8k(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	m := molecule.Globule("g", 8000, 99)
	surf, _ := surface.Build(m, surface.DefaultConfig())
	params := DefaultParams()
	sys, _ := NewSystem(m, surf, params)
	radii, _ := sys.NaiveBornRadiiR6()
	naive, _ := sys.NaiveEpol(radii)
	ordered := int64(m.NumAtoms()) * int64(m.NumAtoms())
	t.Logf("naive E=%v orderedOps=%d", naive, ordered)
	for _, scale := range []float64{1, 1.5} {
		for _, binEps := range []float64{0.3, 0.2, 0.1} {
			p2 := params
			p2.EpsEpol = 0.9
			p2.EpsBin = binEps
			p2.OpeningScale = scale
			s2, _ := NewSystem(m, surf, p2)
			e, ops := s2.Epol(radii)
			t.Logf("scale=%v binEps=%v: rel=%+.4f%% ops=%d (%.1fx)", scale, binEps,
				100*(e-naive)/math.Abs(naive), ops, float64(ordered)/float64(ops))
		}
	}
}
