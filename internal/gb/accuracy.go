package gb

import "fmt"

// Expansion orders of the far-field multipole approximation. The order p
// controls how much structure a far octree node keeps when it is
// collapsed to aggregates: each additional order keeps one more term of
// the Taylor expansion of the kernel about the node centers, which
// tightens the truncation error and therefore admits a LOOSER opening
// criterion at the same target error (the "Multibody Multipole Methods"
// trade: moments are cheap, near-field pairs are not).
const (
	// OrderMonopole (p = 0) is the paper's literal Fig. 2/3 scheme: a far
	// quadrature node is one pseudo-q-point (ñ = Σ w n), a far atom node
	// is a charge histogram (Q_U[k] = Σ q). Cheapest per far pair, but the
	// order-aware opening criterion must be tightest to compensate.
	OrderMonopole = 0
	// OrderDipole (p = 1) adds the first-order moments: the Q-side
	// normal-moment tensor T = Σ w n (p−c)ᵀ with the A-side collected
	// gradient on the Born path, and the per-class charge dipoles
	// D_U[k] = Σ q (p−c) on the energy path. This is the calibrated
	// default — bitwise identical to the pre-Accuracy behavior.
	OrderDipole = 1
	// OrderQuadrupole (p = 2) adds the second-order moments: the Q-side
	// rank-3 tensor S[i][jk] = Σ w n_i m_j m_k plus the A-side collected
	// Hessian on the Born path, and per-class charge quadrupoles
	// K_U[k] = Σ q m mᵀ on the energy path. Most work per far pair, but
	// the loosest opening criterion at equal error.
	OrderQuadrupole = 2
)

// Accuracy is the single validated work/precision specification of a
// run: every knob that trades energy error against work, in one struct.
// It is consumed by NewSystem (via Params.Accuracy), by RunSpec.Accuracy
// as a per-run override, by the checkpoint machinery (payload shapes
// depend on Order), by internal/tune's search, and by the serving
// layer's job envelope.
//
// The zero value means "unset": Params falls back to its deprecated
// EpsBorn/EpsEpol/EpsBin fields with the calibrated OrderDipole default,
// bitwise identical to the pre-Accuracy behavior. A non-zero Accuracy
// wins over the deprecated fields; its own zero fields take the
// calibrated defaults (eps 0.9, quadrature degree 1, derived bin width)
// EXCEPT Order, which is explicit: an explicit Accuracy with Order 0 is
// a genuine monopole request.
type Accuracy struct {
	// EpsBorn is the ε of the Born-radii far-field criterion (Fig. 2).
	// 0 means the calibrated default 0.9.
	EpsBorn float64
	// EpsEpol is the ε of the energy far-field criterion (Fig. 3).
	// 0 means the calibrated default 0.9.
	EpsEpol float64
	// BinWidth is the Born-radius class width of the Fig. 3 histograms.
	// 0 derives it as min(EpsEpol, 0.2) — the calibrated default. Must
	// not exceed EpsEpol: wider bins than the energy criterion silently
	// degrade the histogram bound (Validate rejects it).
	BinWidth float64
	// QuadOrder is the Dunavant rule degree of the surface quadrature
	// (1–8). 0 means the default degree 1. It is a surface-build-time
	// knob: NewSystem cannot change a prebuilt surface, so WithAccuracy
	// and the supervisor's ladder keep it fixed; tune.Select rebuilds
	// surfaces to search over it.
	QuadOrder int
	// Order is the far-field expansion order p ∈ {0, 1, 2} (see the
	// Order* constants). Note 0 IS monopole — the dipole default applies
	// only when the whole Accuracy struct is unset.
	Order int
	// TargetError optionally records the requested |Epol| error bound in
	// kcal/mol this point was tuned for (0: none). Informational to the
	// gb layer; tune.Select sets it on the points it returns.
	TargetError float64
}

// DefaultAccuracy is the calibrated default point: ε = 0.9 for both
// phases, derived bin width, Dunavant degree 1, dipole (p = 1) far
// field. A system built at DefaultAccuracy computes bitwise-identical
// results to one built with legacy DefaultParams.
func DefaultAccuracy() Accuracy {
	return Accuracy{EpsBorn: 0.9, EpsEpol: 0.9, QuadOrder: 1, Order: OrderDipole}
}

// IsZero reports the unset state (fall back to the deprecated Params
// fields).
func (a Accuracy) IsZero() bool { return a == Accuracy{} }

// normalized fills the unset (zero) fields with the calibrated defaults.
// Order is NOT defaulted: on an explicit Accuracy, 0 means monopole.
func (a Accuracy) normalized() Accuracy {
	if a.EpsBorn == 0 {
		a.EpsBorn = 0.9
	}
	if a.EpsEpol == 0 {
		a.EpsEpol = 0.9
	}
	if a.QuadOrder == 0 {
		a.QuadOrder = 1
	}
	return a
}

// Validate checks the spec. Zero fields are legal (they mean "default");
// the checks apply to the normalized values.
func (a Accuracy) Validate() error {
	n := a.normalized()
	if !(n.EpsBorn > 0) || !(n.EpsEpol > 0) {
		return fmt.Errorf("gb: accuracy eps pair must be positive (got %v, %v)", a.EpsBorn, a.EpsEpol)
	}
	if !(a.BinWidth >= 0) {
		return fmt.Errorf("gb: accuracy bin width %v must be non-negative", a.BinWidth)
	}
	if a.BinWidth > n.EpsEpol {
		return fmt.Errorf("gb: accuracy bin width %v exceeds EpsEpol %v: bins wider than the energy criterion degrade the Fig. 3 histogram bound", a.BinWidth, n.EpsEpol)
	}
	if n.QuadOrder < 1 || n.QuadOrder > 8 {
		return fmt.Errorf("gb: accuracy quadrature order %d outside the Dunavant range 1..8", a.QuadOrder)
	}
	if a.Order < OrderMonopole || a.Order > OrderQuadrupole {
		return fmt.Errorf("gb: accuracy expansion order %d outside {0, 1, 2}", a.Order)
	}
	if !(a.TargetError >= 0) {
		return fmt.Errorf("gb: accuracy target error %v must be non-negative", a.TargetError)
	}
	return nil
}

// Relaxed returns the point with the eps pair scaled by factor (> 1
// loosens). This is the Accuracy-space image of the deprecated
// WithRelaxedEps / supervise.Spec.StartEpsFactor knob: relaxing a point
// by factor and running it is bitwise identical to running the point and
// relaxing the system.
func (a Accuracy) Relaxed(factor float64) Accuracy {
	if factor <= 1 {
		return a
	}
	n := a.normalized()
	n.Order = a.Order
	n.EpsBorn *= factor
	n.EpsEpol *= factor
	return n
}

// OpeningBeta returns the order-aware Born far-field threshold β the
// point induces (see farBetaOrder): the criterion admits a node as far
// when d + s ≤ β·gap, so a larger β prunes more of the tree. Exposed for
// internal/tune's cost model and for documentation tooling.
func (a Accuracy) OpeningBeta() float64 {
	n := a.normalized()
	return farBetaOrder(n.EpsBorn, n.Order)
}

// OpeningFactor returns the order-aware energy far-field threshold
// multiplier at the given opening scale (use 1 for the Params default;
// see epolFarFactorOrder). The criterion admits a class pair as far when
// d > (r_u + r_v)·factor, so a smaller factor prunes more.
func (a Accuracy) OpeningFactor(scale float64) float64 {
	n := a.normalized()
	return epolFarFactorOrder(n.EpsEpol, scale, n.Order)
}

// EffectiveAccuracy resolves the accuracy point the params describe: the
// explicit Accuracy if set, else the deprecated EpsBorn/EpsEpol/EpsBin
// fields at the calibrated OrderDipole default.
func (p Params) EffectiveAccuracy() Accuracy {
	if p.Accuracy.IsZero() {
		return Accuracy{
			EpsBorn:   p.EpsBorn,
			EpsEpol:   p.EpsEpol,
			BinWidth:  p.EpsBin,
			QuadOrder: 1,
			Order:     OrderDipole,
		}
	}
	a := p.Accuracy.normalized()
	return a
}

// order is the effective expansion order of this system's far fields.
// Internal System views built by struct literal (bundle and complex
// views) copy a normalized Params, so the Accuracy field is always
// populated there; the IsZero fallback keeps hand-rolled test fixtures
// on the calibrated default.
func (s *System) order() int {
	if s.Params.Accuracy.IsZero() {
		return OrderDipole
	}
	return s.Params.Accuracy.Order
}

// bornBeta is the order-aware Born far-field threshold of this system.
func (s *System) bornBeta() float64 {
	return farBetaOrder(s.Params.EpsBorn, s.order())
}

// epolFactor is the order-aware energy far-field threshold multiplier.
func (s *System) epolFactor() float64 {
	return epolFarFactorOrder(s.Params.EpsEpol, s.Params.OpeningScale, s.order())
}

// WithAccuracy returns a copy of the system running at the given
// accuracy point. Like WithRelaxedEps the copy is shallow — octrees and
// first-order aggregates do not depend on the accuracy knobs — except
// that raising the order to quadrupole builds the second-moment
// aggregates if the system does not have them yet. QuadOrder cannot be
// honored on an existing system (the surface is prebuilt); it is
// recorded but only NewSystem callers and tune.Select act on it. A zero
// acc returns the system unchanged.
func (s *System) WithAccuracy(acc Accuracy) (*System, error) {
	if acc.IsZero() {
		return s, nil
	}
	if err := acc.Validate(); err != nil {
		return nil, err
	}
	acc = acc.normalized()
	c := *s
	c.Params.Accuracy = acc
	c.Params.EpsBorn = acc.EpsBorn
	c.Params.EpsEpol = acc.EpsEpol
	c.Params.EpsBin = acc.BinWidth
	if acc.Order == OrderQuadrupole && c.nodeMoment2 == nil && c.TQ != nil {
		c.nodeMoment2 = buildQuadMoments(c.TQ, c.Surf.Points, c.nodeNormal, c.nodeMoment)
	}
	return &c, nil
}
