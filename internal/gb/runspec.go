package gb

import (
	"context"
	"fmt"
	"io"

	"gbpolar/internal/obs"
	"gbpolar/internal/sched"
)

// RunSpec selects the driver for one full polarization-energy computation
// and carries its cross-cutting options. The zero value is the serial
// octree baseline; setting exactly one of Pool or Processes selects the
// shared-memory or distributed driver:
//
//	Run(RunSpec{})                                     // serial (P = p = 1)
//	Run(RunSpec{Pool: pool})                           // shared memory (OCT_CILK)
//	Run(RunSpec{Processes: 12})                        // message passing (OCT_MPI)
//	Run(RunSpec{Processes: 2, ThreadsPerProcess: 6})   // hybrid (OCT_MPI+CILK)
//
// Faults and Obs compose with the distributed layouts (Obs with every
// layout): there are no per-combination entry points.
type RunSpec struct {
	// Processes is the number of message-passing ranks P. Zero selects a
	// non-distributed driver (serial, or shared-memory when Pool is set).
	Processes int
	// ThreadsPerProcess is the per-rank work-stealing pool width p of the
	// hybrid driver. Zero means one thread. With Pool set it is redundant
	// and must be either zero or the pool's worker count.
	ThreadsPerProcess int
	// Pool runs the computation on a caller-owned work-stealing pool (the
	// shared-memory driver). The caller keeps ownership: Run does not
	// close it. Incompatible with Processes and Faults.
	Pool *sched.Pool
	// Faults replays a fault-injection plan against a distributed run (see
	// faulttol.go). Nil or inactive means a clean run.
	Faults *FaultConfig
	// Obs collects spans, counters, and gauges for the run (see
	// internal/obs). Nil disables instrumentation at zero cost; recording
	// never changes the computed numbers.
	Obs *obs.Recorder
	// Flight receives the recorder's flight dump — each rank's ring of
	// recent span/comm/fault events — when the run needed recovery or
	// came back Degraded, so post-mortems don't require re-running with
	// tracing on. Nil (or a nil Obs) disables the dump.
	Flight io.Writer
	// Checkpoint receives an encoded phase snapshot after each completed
	// algorithm phase (see checkpoint.go). Distributed layouts only.
	// Saving is communication- and counter-neutral: a run with a sink
	// produces bitwise-identical numbers and summaries to one without.
	Checkpoint CheckpointSink
	// Resume re-enters the pipeline at the snapshot's phase instead of
	// starting from scratch. The snapshot must come from a system with the
	// same configuration tag (ε may differ — see WithRelaxedEps); the
	// process count may differ from the saving run's. Distributed layouts
	// only.
	Resume *Checkpoint
	// Accuracy overrides the system's accuracy point for this run only:
	// the run executes on a shallow WithAccuracy copy, so one prepared
	// System serves many (target error, accuracy point) jobs without
	// rebuilding octrees. Nil (or the zero Accuracy) keeps the system's
	// own point. QuadOrder cannot be changed here — the surface is
	// prebuilt; use tune.Select/NewSystem to search over it.
	Accuracy *Accuracy
	// Trace is the request identity of the job this run serves (see
	// obs.TraceContext): Run stamps it onto Obs before the drivers open
	// their first span, so every span, flight event, and export of the
	// run carries it. The zero value leaves Obs untouched. Stamping is
	// write-only instrumentation — it never changes computed numbers.
	Trace obs.TraceContext
	// Ctx cancels the run cooperatively. The distributed driver checks it
	// at phase boundaries: a completed phase still saves its checkpoint,
	// then every rank returns ErrRunCanceled (wrapping ctx.Err()) before
	// starting the next phase — so a canceled run loses at most one
	// phase of work and its store resumes bitwise-identically later.
	// This is the graceful-drain hook of the serving layer. Nil means
	// never canceled. Non-distributed drivers only check it up front:
	// they have no checkpoints to protect mid-run.
	Ctx context.Context
}

// ErrRunCanceled marks a run stopped by RunSpec.Ctx at a phase boundary.
// The last completed phase's checkpoint (if a sink was attached) is
// durable; errors.Is(err, ErrRunCanceled) and errors.Is(err, ctx.Err())
// both hold on the returned error.
var ErrRunCanceled = fmt.Errorf("gb: run canceled")

// canceled returns the wrapped cancellation error if spec.Ctx is done.
func (spec *RunSpec) canceled() error {
	if spec.Ctx == nil {
		return nil
	}
	if err := spec.Ctx.Err(); err != nil {
		return fmt.Errorf("%w at phase boundary: %w", ErrRunCanceled, err)
	}
	return nil
}

// Run executes the computation the spec describes. It is the single
// driver entry point; the Run* methods below are deprecated wrappers.
func (s *System) Run(spec RunSpec) (*Result, error) {
	if !spec.Trace.IsZero() {
		spec.Obs.SetTrace(spec.Trace)
	}
	res, err := s.dispatch(spec)
	if err != nil {
		return nil, err
	}
	spec.Obs.Gauge("run.wall_us", res.Wall.Microseconds())
	if spec.Flight != nil && spec.Obs != nil && (res.Degraded || res.Recovered) {
		if _, werr := io.WriteString(spec.Flight, spec.Obs.FlightDump()); werr != nil {
			return nil, fmt.Errorf("gb: writing flight dump: %w", werr)
		}
	}
	return res, nil
}

func (s *System) dispatch(spec RunSpec) (*Result, error) {
	if err := spec.canceled(); err != nil {
		return nil, err
	}
	if spec.Processes < 0 {
		return nil, fmt.Errorf("gb: invalid spec: Processes=%d must be non-negative", spec.Processes)
	}
	if spec.ThreadsPerProcess < 0 {
		return nil, fmt.Errorf("gb: invalid spec: ThreadsPerProcess=%d must be non-negative", spec.ThreadsPerProcess)
	}
	if spec.Processes == 0 && (spec.Checkpoint != nil || spec.Resume != nil) {
		return nil, fmt.Errorf("gb: invalid spec: checkpointing needs the distributed driver (set Processes >= 1)")
	}
	if spec.Accuracy != nil {
		ws, err := s.WithAccuracy(*spec.Accuracy)
		if err != nil {
			return nil, fmt.Errorf("gb: invalid spec: %w", err)
		}
		s = ws
	}
	if spec.Resume != nil {
		if err := s.validateResume(spec.Resume); err != nil {
			return nil, err
		}
	}
	if spec.Pool != nil {
		if spec.Processes > 0 {
			return nil, fmt.Errorf("gb: invalid spec: Pool selects the shared-memory driver and cannot combine with Processes=%d", spec.Processes)
		}
		if t := spec.ThreadsPerProcess; t != 0 && t != spec.Pool.NumWorkers() {
			return nil, fmt.Errorf("gb: invalid spec: ThreadsPerProcess=%d disagrees with the %d-worker Pool", t, spec.Pool.NumWorkers())
		}
		if spec.Faults.active() {
			return nil, fmt.Errorf("gb: invalid spec: fault injection needs a distributed layout (set Processes, not Pool)")
		}
		return s.runCilk(spec.Pool, spec.Obs), nil
	}
	if spec.Processes == 0 {
		if spec.ThreadsPerProcess > 1 {
			return nil, fmt.Errorf("gb: invalid spec: ThreadsPerProcess=%d needs Processes >= 1 or a Pool", spec.ThreadsPerProcess)
		}
		if spec.Faults.active() {
			return nil, fmt.Errorf("gb: invalid spec: fault injection needs a distributed layout (set Processes)")
		}
		return s.runSerial(spec.Obs), nil
	}
	p := spec.ThreadsPerProcess
	if p == 0 {
		p = 1
	}
	return s.runDistributed(spec.Processes, p, spec)
}

// RunSerial computes Born radii and Epol with the serial octree algorithm
// (the OCT baseline at P = p = 1).
//
// Deprecated: use Run(RunSpec{}).
func (s *System) RunSerial() *Result {
	res, _ := s.Run(RunSpec{})
	return res
}

// RunCilk is OCT_CILK: the shared-memory driver. Work is divided over the
// quadrature leaves (Born phase), atom segments (push phase) and atom
// leaves (energy phase) by recursive splitting onto the work-stealing
// pool, the paper's implicit dynamic load balancing.
//
// Deprecated: use Run(RunSpec{Pool: pool}).
func (s *System) RunCilk(pool *sched.Pool) *Result {
	res, _ := s.Run(RunSpec{Pool: pool})
	return res
}

// RunMPI is OCT_MPI: P single-threaded message-passing ranks following
// Fig. 4 (static node-based division, Allreduce of partial integrals,
// Allgatherv of Born-radius segments, Allreduce of partial energies).
// With Params.Division == AtomNode the atom-based division of §IV is used
// instead.
//
// Deprecated: use Run(RunSpec{Processes: P}).
func (s *System) RunMPI(P int) (*Result, error) {
	if P < 1 {
		return nil, s.validateLayout(P, 1)
	}
	return s.Run(RunSpec{Processes: P})
}

// RunHybrid is OCT_MPI+CILK: P ranks × p work-stealing threads.
//
// Deprecated: use Run(RunSpec{Processes: P, ThreadsPerProcess: p}).
func (s *System) RunHybrid(P, p int) (*Result, error) {
	if P < 1 || p < 1 {
		return nil, s.validateLayout(P, p)
	}
	return s.Run(RunSpec{Processes: P, ThreadsPerProcess: p})
}

// RunMPIWithFaults is RunMPI under fault injection: the config's plan is
// replayed against the run and the driver self-heals (or degrades, per
// the policy) as ranks crash, messages drop, and stragglers stall. A nil
// or empty config is exactly RunMPI.
//
// Deprecated: use Run(RunSpec{Processes: P, Faults: cfg}).
func (s *System) RunMPIWithFaults(P int, cfg *FaultConfig) (*Result, error) {
	if P < 1 {
		return nil, s.validateLayout(P, 1)
	}
	return s.Run(RunSpec{Processes: P, Faults: cfg})
}

// RunHybridWithFaults is RunHybrid under fault injection.
//
// Deprecated: use Run(RunSpec{Processes: P, ThreadsPerProcess: p, Faults: cfg}).
func (s *System) RunHybridWithFaults(P, p int, cfg *FaultConfig) (*Result, error) {
	if P < 1 || p < 1 {
		return nil, s.validateLayout(P, p)
	}
	return s.Run(RunSpec{Processes: P, ThreadsPerProcess: p, Faults: cfg})
}
