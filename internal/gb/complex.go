package gb

import (
	"fmt"
	"math"

	"gbpolar/internal/geom"
	"gbpolar/internal/octree"
	"gbpolar/internal/surface"
)

// Complex implements the paper's §IV-C docking reuse: "for drug-design
// and docking where we need to place the ligand at thousands of different
// positions w.r.t. the receptor, we can move the same octree to different
// positions or rotate it as needed ... and then recompute the energy
// values. Therefore, we can consider the octree construction cost as a
// pre-processing cost".
//
// A Complex holds two prepared Systems. Scoring a pose transforms the
// ligand's trees and surface in O(n) (no rebuilds), reuses each
// molecule's cached self Born integrals, computes only the cross-surface
// integrals and the three energy interactions (rec–rec, lig–lig,
// rec–lig) with the pose-dependent radii. Like the paper's scheme, the
// molecular surfaces themselves are frozen: interface desolvation enters
// through the Born radii (each molecule's atoms see the other's surface
// flux), not through re-culling the surfaces.
type Complex struct {
	rec, lig *System
	// Cached pose-independent self integrals (accumulator of each
	// molecule's own surface against its own atom tree).
	recSelf, ligSelf *bornAccum
}

// NewComplex prepares a complex from two systems built with the same
// Params.
func NewComplex(rec, lig *System) (*Complex, error) {
	if rec.Params != lig.Params {
		return nil, fmt.Errorf("gb: receptor and ligand params differ")
	}
	c := &Complex{rec: rec, lig: lig}
	c.recSelf = rec.newBornAccum()
	for _, q := range rec.qLeaves {
		rec.ApproxIntegrals(rec.TA.Root(), q, c.recSelf)
	}
	c.ligSelf = lig.newBornAccum()
	for _, q := range lig.qLeaves {
		lig.ApproxIntegrals(lig.TA.Root(), q, c.ligSelf)
	}
	return c, nil
}

// PoseResult is the outcome of one pose evaluation.
type PoseResult struct {
	// Epol is the complex's polarization energy (kcal/mol).
	Epol float64
	// RecBorn / LigBorn are the pose-dependent Born radii.
	RecBorn, LigBorn []float64
	// Ops counts interaction evaluations.
	Ops int64
}

// Epol scores the complex with the ligand rigidly transformed by tr.
func (c *Complex) Epol(tr geom.Transform) (*PoseResult, error) {
	rec, lig := c.rec, c.lig
	res := &PoseResult{}

	// ---- Move the ligand: O(n) transforms, no rebuilds -----------------
	ligPos := make([]geom.Vec3, len(lig.atomPos))
	for i, p := range lig.atomPos {
		ligPos[i] = tr.Apply(p)
	}
	ligTA, err := lig.TA.Transformed(tr, ligPos)
	if err != nil {
		return nil, err
	}
	ligSurf := lig.Surf.ApplyTransform(tr)
	ligQPos := ligSurf.Positions()
	ligTQ, err := lig.TQ.Transformed(tr, ligQPos)
	if err != nil {
		return nil, err
	}
	// The ligand's aggregated normals/moments rotate with the pose.
	ligNormals := make([]geom.Vec3, len(lig.nodeNormal))
	for i, n := range lig.nodeNormal {
		ligNormals[i] = tr.ApplyVector(n)
	}
	ligMoments := make([]geom.Mat3, len(lig.nodeMoment))
	for i := range lig.nodeMoment {
		// T' = R T Rᵀ (both the normal and the offset rotate).
		ligMoments[i] = tr.R.Mul(lig.nodeMoment[i]).Mul(tr.R.Transpose())
	}
	var ligMoments2 []bornMom2
	if lig.nodeMoment2 != nil {
		// S'[i] = Σ_a R[i][a]·(R S[a] Rᵀ): the normal component mixes
		// through R while each offset pair rotates like a Mat3.
		ligMoments2 = make([]bornMom2, len(lig.nodeMoment2))
		for n := range lig.nodeMoment2 {
			var w bornMom2
			for a := 0; a < 3; a++ {
				w[a] = tr.R.Mul(lig.nodeMoment2[n][a]).Mul(tr.R.Transpose())
			}
			for i := 0; i < 3; i++ {
				for t := 0; t < 9; t++ {
					ligMoments2[n][i][t] = tr.R[3*i]*w[0][t] + tr.R[3*i+1]*w[1][t] + tr.R[3*i+2]*w[2][t]
				}
			}
		}
	}

	// ---- Born radii: cached self + cross-surface passes -----------------
	recAcc := rec.newBornAccum()
	copyAccum(recAcc, c.recSelf)
	cross := &bornPass{
		ta: rec.TA, atomPos: rec.atomPos,
		tq: ligTQ, qpts: ligSurf.Points,
		normals: ligNormals, moments: ligMoments, moments2: ligMoments2,
		beta: rec.bornBeta(), ord: rec.order(), r4: rec.Params.Integral == IntegralR4,
	}
	for _, q := range lig.qLeaves {
		res.Ops += cross.run(rec.TA.Root(), q, recAcc)
	}
	res.RecBorn = make([]float64, rec.NumAtoms())
	rec.PushIntegralsToAtoms(recAcc, 0, rec.NumAtoms(), res.RecBorn)

	ligAcc := lig.newBornAccum()
	// The cached ligand self integrals were computed in the reference
	// frame; the scalar flux sums are invariant under rigid motion of
	// both the atoms and the surface, but the collected gradient VECTORS
	// rotate with the pose.
	copyAccum(ligAcc, c.ligSelf)
	for i := range ligAcc.nodeG {
		ligAcc.nodeG[i] = tr.ApplyVector(c.ligSelf.nodeG[i])
	}
	if ligAcc.nodeH != nil {
		// The collected Hessians are rank-2 tensors: H' = R H Rᵀ.
		for i := range ligAcc.nodeH {
			ligAcc.nodeH[i] = tr.R.Mul(c.ligSelf.nodeH[i]).Mul(tr.R.Transpose())
		}
	}
	crossBack := &bornPass{
		ta: ligTA, atomPos: ligPos,
		tq: rec.TQ, qpts: rec.Surf.Points,
		normals: rec.nodeNormal, moments: rec.nodeMoment, moments2: rec.nodeMoment2,
		beta: rec.bornBeta(), ord: rec.order(), r4: rec.Params.Integral == IntegralR4,
	}
	for _, q := range rec.qLeaves {
		res.Ops += crossBack.run(ligTA.Root(), q, ligAcc)
	}
	res.LigBorn = make([]float64, lig.NumAtoms())
	pushLig := &System{ // minimal view for the push pass on moved trees
		Params: lig.Params, Mol: lig.Mol, TA: ligTA, atomPos: ligPos,
	}
	pushLig.PushIntegralsToAtoms(ligAcc, 0, lig.NumAtoms(), res.LigBorn)

	// ---- Energy: three interactions with shared radius classes ---------
	rmin, rmax := math.Inf(1), 0.0
	for _, r := range res.RecBorn {
		rmin, rmax = math.Min(rmin, r), math.Max(rmax, r)
	}
	for _, r := range res.LigBorn {
		rmin, rmax = math.Min(rmin, r), math.Max(rmax, r)
	}
	recView := &System{Params: rec.Params, Mol: rec.Mol, TA: rec.TA, atomPos: rec.atomPos}
	ligView := &System{Params: lig.Params, Mol: lig.Mol, TA: ligTA, atomPos: ligPos}
	recAgg := recView.buildEpolAggregatesRange(res.RecBorn, rmin, rmax)
	ligAgg := ligView.buildEpolAggregatesRange(res.LigBorn, rmin, rmax)

	kernel := pairEnergyKernel(rec.Params.Math)
	factor := rec.epolFactor()
	sum := 0.0
	// rec–rec and lig–lig (ordered pairs within each molecule).
	for _, v := range rec.aLeaves {
		vs, vops := recView.approxEpol(rec.TA.Root(), v, res.RecBorn, recAgg, kernel, factor, nil)
		sum += vs
		res.Ops += vops
	}
	for _, v := range ligTA.Leaves() {
		vs, vops := ligView.approxEpol(ligTA.Root(), v, res.LigBorn, ligAgg, kernel, factor, nil)
		sum += vs
		res.Ops += vops
	}
	// rec–lig cross terms, counted twice (ordered-pair convention).
	ep := &epolCrossPass{
		u: recView, uAgg: recAgg, uRadii: res.RecBorn,
		v: ligView, vAgg: ligAgg, vRadii: res.LigBorn,
		kernel: kernel, factor: factor,
	}
	for _, v := range ligTA.Leaves() {
		vs, vops := ep.run(rec.TA.Root(), v)
		sum += 2 * vs
		res.Ops += vops
	}
	res.Epol = -0.5 * Tau(rec.Params.EpsSolvent) * CoulombKcal * sum
	return res, nil
}

func copyAccum(dst, src *bornAccum) {
	copy(dst.nodeS, src.nodeS)
	copy(dst.nodeG, src.nodeG)
	copy(dst.nodeH, src.nodeH)
	copy(dst.atomS, src.atomS)
}

// bornPass is APPROX-INTEGRALS across two systems: atom tree ta (with
// atomPos) against quadrature tree tq (with its points and aggregates).
type bornPass struct {
	ta       *octree.Tree
	atomPos  []geom.Vec3
	tq       *octree.Tree
	qpts     []surface.QPoint
	normals  []geom.Vec3
	moments  []geom.Mat3
	moments2 []bornMom2 // second-order moments, nil below OrderQuadrupole
	beta     float64
	ord      int
	r4       bool
}

// run accumulates quadrature leaf q's contribution into acc (the same
// recursion as System.approxIntegrals, over explicit trees).
func (bp *bornPass) run(a, q int32, acc *bornAccum) int64 {
	an := &bp.ta.Nodes[a]
	qn := &bp.tq.Nodes[q]
	d := an.Center.Dist(qn.Center)
	pow := 6.0
	if bp.r4 {
		pow = 4
	}
	if bornFar(d, an.Radius, qn.Radius, bp.beta) {
		diff := qn.Center.Sub(an.Center)
		r2 := d * d
		rp := r2 * r2
		if !bp.r4 {
			rp *= r2
		}
		var m2 *bornMom2
		var hslot *geom.Mat3
		if bp.ord == OrderQuadrupole {
			m2 = &bp.moments2[q]
			hslot = &acc.nodeH[a]
		}
		bornFarNode(bp.ord, diff, d, rp, pow, bp.normals[q], &bp.moments[q], m2,
			&acc.nodeS[a], &acc.nodeG[a], hslot)
		return 1
	}
	if an.Leaf {
		ops := int64(0)
		qItems := bp.tq.ItemsOf(q)
		for _, ai := range bp.ta.ItemsOf(a) {
			pa := bp.atomPos[ai]
			sum := 0.0
			for _, qi := range qItems {
				qp := &bp.qpts[qi]
				dv := qp.Pos.Sub(pa)
				r2 := dv.Norm2()
				rp := r2 * r2
				if !bp.r4 {
					rp *= r2
				}
				sum += qp.Weight * dv.Dot(qp.Normal) / rp
			}
			acc.atomS[ai] += sum
			ops += int64(len(qItems))
		}
		return ops
	}
	ops := int64(1)
	for _, ch := range an.Children {
		if ch != octree.NoChild {
			ops += bp.run(ch, q, acc)
		}
	}
	return ops
}

// epolCrossPass is APPROX-Epol between two different atom trees: node u
// descends system u's tree against leaf v of system v's tree.
type epolCrossPass struct {
	u      *System
	uAgg   *epolAggregates
	uRadii []float64
	v      *System
	vAgg   *epolAggregates
	vRadii []float64
	kernel func(qq, r2, RiRj float64) float64
	factor float64
}

func (ep *epolCrossPass) run(u, v int32) (float64, int64) {
	un := &ep.u.TA.Nodes[u]
	vn := &ep.v.TA.Nodes[v]
	d := un.Center.Dist(vn.Center)
	if !un.Leaf && epolFar(d, un.Radius, vn.Radius, ep.factor) {
		return crossFarClassSum(ep.u, ep.uAgg, u, ep.v, ep.vAgg, v, d,
			vn.Center.Sub(un.Center), ep.u.Params.Math == ApproxMath)
	}
	if un.Leaf {
		sum := 0.0
		ops := int64(0)
		for _, ui := range ep.u.TA.ItemsOf(u) {
			qi, pi, ri := ep.u.Mol.Atoms[ui].Charge, ep.u.atomPos[ui], ep.uRadii[ui]
			for _, vi := range ep.v.TA.ItemsOf(v) {
				r2 := pi.Dist2(ep.v.atomPos[vi])
				sum += ep.kernel(qi*ep.v.Mol.Atoms[vi].Charge, r2, ri*ep.vRadii[vi])
				ops++
			}
		}
		return sum, ops
	}
	sum := 0.0
	ops := int64(1)
	for _, ch := range un.Children {
		if ch != octree.NoChild {
			cs, cops := ep.run(ch, v)
			sum += cs
			ops += cops
		}
	}
	return sum, ops
}

// crossFarClassSum is farClassSum across two aggregate sets sharing the
// same Rmin and bin base (guaranteed by buildEpolAggregatesRange).
func crossFarClassSum(us *System, uAgg *epolAggregates, u int32,
	vs *System, vAgg *epolAggregates, v int32,
	d float64, dvec geom.Vec3, approx bool) (float64, int64) {
	r2 := d * d
	dhat := dvec.Scale(1 / d)
	sum := 0.0
	ops := int64(0)
	ubase, vbase := int(u)*uAgg.M, int(v)*vAgg.M
	m := uAgg.M
	if vAgg.M < m {
		m = vAgg.M
	}
	ord := uAgg.order
	for i := 0; i < uAgg.M; i++ {
		qu := uAgg.hist[ubase+i]
		var du float64
		var dipU geom.Vec3
		if ord >= OrderDipole {
			dipU = uAgg.dip[ubase+i]
			du = dhat.Dot(dipU)
		}
		if qu == 0 && du == 0 &&
			(ord != OrderQuadrupole || uAgg.quad[ubase+i] == (geom.Mat3{})) {
			continue
		}
		for j := 0; j < vAgg.M; j++ {
			qv := vAgg.hist[vbase+j]
			var dv float64
			var dipV geom.Vec3
			if ord >= OrderDipole {
				dipV = vAgg.dip[vbase+j]
				dv = dhat.Dot(dipV)
			}
			if qv == 0 && dv == 0 &&
				(ord != OrderQuadrupole || vAgg.quad[vbase+j] == (geom.Mat3{})) {
				continue
			}
			// Both aggregate sets are built over the same [Rmin, Rmax]
			// and bin base, so the shared product table applies.
			t := uAgg.powR[i+j]
			var e, invF float64
			if approx {
				e = fastExp(-r2 / (4 * t))
				invF = fastInvSqrt(r2 + t*e)
			} else {
				e = math.Exp(-r2 / (4 * t))
				invF = 1 / math.Sqrt(r2+t*e)
			}
			if ord == OrderMonopole {
				sum += qu * qv * invF
				ops++
				continue
			}
			gp := -d * (1 - e/4) * invF * invF * invF
			sum += qu*qv*invF + gp*(qu*dv-du*qv)
			if ord == OrderQuadrupole {
				up := 2 * d * (1 - e/4)
				upp := 2*(1-e/4) + (r2/(4*t))*e
				invF3 := invF * invF * invF
				gpp := 0.75*up*up*invF3*invF*invF - 0.5*upp*invF3
				ku, kv := &uAgg.quad[ubase+i], &vAgg.quad[vbase+j]
				a2 := qu*dhat.Dot(kv.MulVec(dhat)) - 2*du*dv + dhat.Dot(ku.MulVec(dhat))*qv
				b2 := qu*(kv[0]+kv[4]+kv[8]) - 2*dipU.Dot(dipV) + (ku[0]+ku[4]+ku[8])*qv
				sum += 0.5*gpp*a2 + (0.5*gp/d)*(b2-a2)
			}
			ops++
		}
	}
	if ops == 0 {
		ops = 1
	}
	return sum, ops
}
