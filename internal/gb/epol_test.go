package gb

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// Analytic Born anchor: a single ion of charge q and radius a has
// Epol = −(τ/2)·κ·q²/a.
func TestNaiveEpolBornIon(t *testing.T) {
	const a = 2.0
	s := newTestSystem(t, ion(a), surface.Config{IcoLevel: 1}, DefaultParams())
	radii, _ := s.NaiveBornRadiiR6()
	e, ops := s.NaiveEpol(radii)
	want := -0.5 * Tau(80) * CoulombKcal * 1 / a
	if math.Abs(e-want)/math.Abs(want) > 1e-9 {
		t.Errorf("Epol = %v, want %v", e, want)
	}
	if ops != 1 {
		t.Errorf("ops = %d", ops)
	}
	if e >= 0 {
		t.Error("polarization energy must be negative")
	}
}

// Two distant unit charges: Epol ≈ self terms + cross term −τκ q1q2/r.
func TestNaiveEpolTwoIons(t *testing.T) {
	m := &molecule.Molecule{Name: "two", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 2, Charge: 1},
		{Pos: geom.V(50, 0, 0), Radius: 2, Charge: 1},
	}}
	s := newTestSystem(t, m, surface.Config{IcoLevel: 2}, DefaultParams())
	radii, _ := s.NaiveBornRadiiR6()
	e, _ := s.NaiveEpol(radii)
	// At r = 50 >> R the GB function f → r.
	want := -0.5 * Tau(80) * CoulombKcal * (1/radii[0] + 1/radii[1] + 2.0/50)
	if math.Abs(e-want)/math.Abs(want) > 1e-3 {
		t.Errorf("Epol = %v, want ≈ %v", e, want)
	}
}

// The octree Epol converges to naive as ε → 0 and stays within ~1.5% at
// the paper's working ε (Fig. 10's error band).
func TestOctreeEpolMatchesNaive(t *testing.T) {
	m := molecule.Globule("g", 600, 41)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	sys, err := NewSystem(m, surf, params)
	if err != nil {
		t.Fatal(err)
	}
	radii, _ := sys.NaiveBornRadiiR6()
	naive, naiveOps := sys.NaiveEpol(radii)

	cases := []struct {
		eps    float64
		maxRel float64
	}{
		{0.01, 1e-3},
		{0.3, 0.02},
		{0.9, 0.04},
	}
	prevRel := 0.0
	for _, tc := range cases {
		params.EpsEpol = tc.eps
		sys2, err := NewSystem(m, surf, params)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := sys2.Epol(radii)
		rel := math.Abs(e-naive) / math.Abs(naive)
		if rel > tc.maxRel {
			t.Errorf("eps=%v: relative error %v > %v (octree %v vs naive %v)",
				tc.eps, rel, tc.maxRel, e, naive)
		}
		if rel < prevRel {
			t.Errorf("eps=%v: error %v decreased from %v — speed/accuracy knob broken", tc.eps, rel, prevRel)
		}
		prevRel = rel
	}
	_ = naiveOps
}

// The octree's work advantage over naive O(M²) needs a molecule large
// enough for the far field to engage (§V-C: advantages grow with size).
func TestOctreeEpolWorkAdvantage(t *testing.T) {
	m := molecule.Globule("g", 4000, 49)
	s := newTestSystem(t, m, surface.DefaultConfig(), DefaultParams())
	radii, _ := s.BornRadii()
	_, ops := s.Epol(radii)
	// The octree evaluates ordered pairs; naive's ordered-equivalent count
	// is M².
	orderedNaive := int64(m.NumAtoms()) * int64(m.NumAtoms())
	if ops*2 >= orderedNaive {
		t.Errorf("octree Epol ops %d not < half of ordered naive %d", ops, orderedNaive)
	}
}

func TestEpolAggregatesHistogram(t *testing.T) {
	m := molecule.Globule("g", 200, 43)
	s := newTestSystem(t, m, surface.DefaultConfig(), DefaultParams())
	radii, _ := s.BornRadii()
	agg := s.buildEpolAggregates(radii)
	if agg.M < 1 || agg.M > maxEpolClasses {
		t.Fatalf("M = %d", agg.M)
	}
	// Root histogram must sum to the total charge.
	rootSum := 0.0
	for k := 0; k < agg.M; k++ {
		rootSum += agg.hist[k]
	}
	if math.Abs(rootSum-s.Mol.TotalCharge()) > 1e-9 {
		t.Errorf("root histogram sums to %v, total charge %v", rootSum, s.Mol.TotalCharge())
	}
	// Every atom's class must bracket its radius. Recover the realized bin
	// width from powR: powR[k] = Rmin²(1+εbin)^(k+1).
	binBase := agg.powR[1] / agg.powR[0]
	for i, r := range radii {
		k := agg.classOf[i]
		lo := agg.Rmin * math.Pow(binBase, float64(k))
		hi := lo * binBase
		if r < lo*(1-1e-9) || (r > hi*(1+1e-9) && k < agg.M-1) {
			t.Fatalf("atom %d: radius %v outside class %d [%v, %v)", i, r, k, lo, hi)
		}
	}
}

func TestEpolAggregatesUniformRadii(t *testing.T) {
	// All radii equal → a single class.
	m := &molecule.Molecule{Name: "u", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1, Charge: 0.5},
		{Pos: geom.V(5, 0, 0), Radius: 1, Charge: -0.5},
	}}
	s := newTestSystem(t, m, surface.Config{IcoLevel: 1}, DefaultParams())
	agg := s.buildEpolAggregates([]float64{2.0, 2.0})
	if agg.M != 1 {
		t.Errorf("M = %d, want 1", agg.M)
	}
}

func TestEpolFarCriterion(t *testing.T) {
	// Fig. 3: far iff d > (ru+rv)(1+2/ε); default scale is 1.
	f09 := epolFarFactor(0.9, 0)
	if math.Abs(f09-(1+2/0.9)) > 1e-12 {
		t.Errorf("factor(0.9) = %v, want %v", f09, 1+2/0.9)
	}
	if epolFar(6.0, 1, 1, f09) { // threshold 2·3.22 = 6.44
		t.Error("6.0 < 6.44 judged far")
	}
	if !epolFar(6.5, 1, 1, f09) {
		t.Error("6.5 > 6.44 not far")
	}
	// Smaller ε → stricter.
	if epolFar(6.5, 1, 1, epolFarFactor(0.1, 0)) {
		t.Error("ε=0.1 should need d > 42")
	}
	// Explicit scale override multiplies the threshold.
	if epolFar(6.5, 1, 1, epolFarFactor(0.9, 2)) {
		t.Error("scale=2 should need d > 12.9")
	}
}

// Approximate math must stay close to exact math while changing the
// result (so the ablation has something to measure).
func TestApproxMathEpol(t *testing.T) {
	m := molecule.Globule("g", 300, 47)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	exact := DefaultParams()
	approx := DefaultParams()
	approx.Math = ApproxMath
	se, err := NewSystem(m, surf, exact)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewSystem(m, surf, approx)
	if err != nil {
		t.Fatal(err)
	}
	radii, _ := se.BornRadii()
	ee, _ := se.Epol(radii)
	ea, _ := sa.Epol(radii)
	if rel := math.Abs(ee-ea) / math.Abs(ee); rel > 1e-2 {
		t.Errorf("approx math relative deviation %v too large", rel)
	}
	if ee == ea {
		t.Error("approximate math changed nothing")
	}
}

func TestFastMathKernels(t *testing.T) {
	for _, x := range []float64{1e-6, 0.1, 1, 2, 37.5, 1e6, 1e12} {
		got := fastInvSqrt(x)
		want := 1 / math.Sqrt(x)
		if math.Abs(got-want)/want > 3e-3 {
			t.Errorf("fastInvSqrt(%v) = %v, want %v", x, got, want)
		}
	}
	if !math.IsInf(fastInvSqrt(0), 1) || !math.IsInf(fastInvSqrt(-1), 1) {
		t.Error("fastInvSqrt non-positive handling")
	}
	for _, x := range []float64{0, -0.5, -1, -10, -100, 0.5, 1, 5} {
		got := fastExp(x)
		want := math.Exp(x)
		if math.Abs(got-want)/want > 1e-3 {
			t.Errorf("fastExp(%v) = %v, want %v", x, got, want)
		}
	}
	if fastExp(-1000) != 0 {
		t.Error("fastExp underflow")
	}
	if !math.IsInf(fastExp(1000), 1) {
		t.Error("fastExp overflow")
	}
}

func TestFGBLimits(t *testing.T) {
	// r → 0: f → sqrt(RiRj) (self-energy denominator).
	if math.Abs(fGB(0, 4)-2) > 1e-14 {
		t.Errorf("fGB(0) = %v", fGB(0, 4))
	}
	// r >> R: f → r.
	if math.Abs(fGB(1e6, 1)-1000) > 1e-3 {
		t.Errorf("fGB(large) = %v", fGB(1e6, 1))
	}
	// Monotone in r².
	if fGB(4, 1) >= fGB(9, 1) {
		t.Error("fGB not monotone in r²")
	}
}

func TestTau(t *testing.T) {
	if got := Tau(80); math.Abs(got-0.9875) > 1e-12 {
		t.Errorf("Tau(80) = %v", got)
	}
	if Tau(1) != 0 {
		t.Error("vacuum should give zero polarization prefactor")
	}
}
