package gb

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"gbpolar/internal/fault"
	"gbpolar/internal/obs"
	"gbpolar/internal/perf"
)

// TestFlightDumpOnRecovery pins the flight-recorder contract: a run that
// needed recovery writes a dump to RunSpec.Flight, the dump interleaves
// span, comm, and fault events per rank, and — for a crash-free
// deterministic plan — the dump text is byte-identical run to run.
func TestFlightDumpOnRecovery(t *testing.T) {
	s := buildSys(t, 400, DefaultParams())
	run := func() string {
		var buf bytes.Buffer
		rec := obs.NewRecorder(perf.StartTimer().Elapsed)
		rec.SetLabel("flight-test")
		res, err := s.Run(RunSpec{
			Processes: 3,
			Faults:    &FaultConfig{Plan: crashFreePlan()},
			Obs:       rec,
			Flight:    &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Recovered {
			t.Fatal("crash-free plan with a straggler should report Recovered")
		}
		return buf.String()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("recovered run wrote no flight dump")
	}
	if a != b {
		t.Errorf("flight dumps differ between identical runs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	for _, want := range []string{
		"flight recorder: flight-test\n",
		"rank 0:", "rank 1:", "rank 2:",
		"span  " + spanBorn + "\n",
		"comm  comm:allreduce\n",
		"fault straggle\n",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("flight dump lacks %q:\n%s", want, a)
		}
	}
}

// TestNoFlightDumpOnCleanRun: a clean run must stay silent even with a
// Flight writer armed.
func TestNoFlightDumpOnCleanRun(t *testing.T) {
	s := buildSys(t, 200, DefaultParams())
	var buf bytes.Buffer
	rec := obs.NewRecorder(perf.StartTimer().Elapsed)
	if _, err := s.Run(RunSpec{Processes: 2, Obs: rec, Flight: &buf}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("clean run wrote a flight dump:\n%s", buf.String())
	}
}

// TestServeDoesNotChangeNumbers is the live-endpoint acceptance
// criterion: a run with obs.Serve scraping the recorder mid-flight is
// bitwise identical to one with no recorder at all, and /metrics answers
// in Prometheus text while the run's recorder is attached.
func TestServeDoesNotChangeNumbers(t *testing.T) {
	s := buildSys(t, 400, DefaultParams())
	spec := RunSpec{Processes: 2, ThreadsPerProcess: 2}

	plain, err := s.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder(perf.StartTimer().Elapsed)
	rec.SetLabel("served")
	srv, err := obs.Serve("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	withServe := spec
	withServe.Obs = rec
	observed, err := s.Run(withServe)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseSame(t, "serve", plain, observed)

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE gbpolar_pairs_born_near counter\n",
		"# TYPE gbpolar_pairs_born_near_rank histogram\n",
		`gbpolar_pairs_born_near_rank_count{run="served"} 2` + "\n",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics lacks %q:\n%s", want, body)
		}
	}
}

// TestHealthSourceRegistered: a distributed run leaves a live-rank view
// on the recorder (registered by simmpi), so /healthz has data even
// after the run completes.
func TestHealthSourceRegistered(t *testing.T) {
	s := buildSys(t, 300, DefaultParams())
	rec := obs.NewRecorder(perf.StartTimer().Elapsed)
	res, err := s.Run(RunSpec{
		Processes: 4,
		Faults: &FaultConfig{
			Plan:   &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Rank: 2, AtOp: 4}}},
			Policy: Recover,
		},
		Obs: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := obs.Serve("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"lost":[2]`) {
		t.Errorf("/healthz does not report the crashed rank (lost %v):\n%s", res.LostRanks, body)
	}
}
