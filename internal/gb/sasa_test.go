package gb

import (
	"math"
	"testing"

	"gbpolar/internal/surface"
)

func TestNonpolarEnergySingleSphere(t *testing.T) {
	s := newTestSystem(t, ion(2.0), surface.Config{IcoLevel: 1}, DefaultParams())
	want := DefaultSurfaceTension * 4 * math.Pi * 4
	if got := s.NonpolarEnergy(DefaultSurfaceTension); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("nonpolar = %v, want %v", got, want)
	}
	// Solvation = polar + nonpolar.
	if got := s.SolvationEnergy(-10, DefaultSurfaceTension); math.Abs(got-(-10+want)) > 1e-12 {
		t.Errorf("solvation = %v", got)
	}
}

func TestPerAtomNonpolarSumsToTotal(t *testing.T) {
	s := buildSys(t, 500, DefaultParams())
	per := s.PerAtomNonpolar(DefaultSurfaceTension)
	sum := 0.0
	for _, v := range per {
		sum += v
	}
	total := s.NonpolarEnergy(DefaultSurfaceTension)
	if math.Abs(sum-total)/total > 1e-12 {
		t.Errorf("per-atom sum %v != total %v", sum, total)
	}
	// Buried atoms carry zero nonpolar energy.
	zero := 0
	for _, v := range per {
		if v == 0 {
			zero++
		}
	}
	if zero == 0 {
		t.Error("no buried atoms in a 500-atom globule?")
	}
}
