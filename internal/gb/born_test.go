package gb

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// newTestSystem builds a System for a molecule with the given surface and
// params, failing the test on error.
func newTestSystem(t *testing.T, m *molecule.Molecule, scfg surface.Config, p Params) *System {
	t.Helper()
	surf, err := surface.Build(m, scfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(m, surf, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ion(r float64) *molecule.Molecule {
	return &molecule.Molecule{Name: "ion", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: r, Charge: 1},
	}}
}

// Validation anchor (DESIGN.md §5): the r⁶ Born radius of an isolated
// sphere is exact.
func TestNaiveBornRadiusIsolatedSphere(t *testing.T) {
	for _, r := range []float64{1.0, 1.5, 2.3} {
		s := newTestSystem(t, ion(r), surface.Config{IcoLevel: 1}, DefaultParams())
		radii, ops := s.NaiveBornRadiiR6()
		if math.Abs(radii[0]-r)/r > 1e-10 {
			t.Errorf("r=%v: Born radius = %v", r, radii[0])
		}
		if ops != int64(s.NumQPoints()) {
			t.Errorf("ops = %d, want %d", ops, s.NumQPoints())
		}
	}
}

func TestNaiveBornRadiusR4IsolatedSphere(t *testing.T) {
	s := newTestSystem(t, ion(1.8), surface.Config{IcoLevel: 1}, DefaultParams())
	radii, _ := s.NaiveBornRadiiR4()
	if math.Abs(radii[0]-1.8)/1.8 > 1e-10 {
		t.Errorf("r4 Born radius = %v", radii[0])
	}
}

// Two distant atoms: each Born radius barely exceeds its intrinsic radius
// (the far sphere's flux is tiny), and the octree result matches naïve.
func TestBornRadiiTwoDistantAtoms(t *testing.T) {
	m := &molecule.Molecule{Name: "pair", Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Radius: 1.5, Charge: 1},
		{Pos: geom.V(40, 0, 0), Radius: 1.5, Charge: -1},
	}}
	s := newTestSystem(t, m, surface.Config{IcoLevel: 2}, DefaultParams())
	naive, _ := s.NaiveBornRadiiR6()
	for i, r := range naive {
		if r < 1.5 || r > 1.6 {
			t.Errorf("atom %d: Born radius %v, want ≈1.5", i, r)
		}
	}
}

// Octree Born radii converge to the naïve result as ε → 0 and stay within
// a few percent at the paper's working ε = 0.9.
func TestOctreeBornRadiiMatchesNaive(t *testing.T) {
	m := molecule.Globule("g", 400, 31)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	sys, err := NewSystem(m, surf, params)
	if err != nil {
		t.Fatal(err)
	}
	naive, naiveOps := sys.NaiveBornRadiiR6()

	cases := []struct {
		eps    float64
		maxRel float64
	}{
		{0.001, 1e-6},
		{0.1, 0.01},
		{0.9, 0.08},
	}
	prevOps := int64(math.MaxInt64)
	for _, tc := range cases {
		params.EpsBorn = tc.eps
		sys2, err := NewSystem(m, surf, params)
		if err != nil {
			t.Fatal(err)
		}
		oct, ops := sys2.BornRadii()
		worst := 0.0
		for i := range naive {
			rel := math.Abs(oct[i]-naive[i]) / naive[i]
			if rel > worst {
				worst = rel
			}
		}
		if worst > tc.maxRel {
			t.Errorf("eps=%v: worst relative error %v > %v", tc.eps, worst, tc.maxRel)
		}
		// Work shrinks as ε grows. (At tiny ε on a small molecule the
		// octree does the naive work plus traversal overhead, so only
		// non-increase is required until the far field engages.)
		if ops > prevOps {
			t.Errorf("eps=%v: ops %d increased (prev %d)", tc.eps, ops, prevOps)
		}
		prevOps = ops
	}
	// At the paper's working ε = 0.9 the octree must beat naive clearly.
	params.EpsBorn = 0.9
	sys3, err := NewSystem(m, surf, params)
	if err != nil {
		t.Fatal(err)
	}
	_, ops09 := sys3.BornRadii()
	if ops09*2 >= naiveOps {
		t.Errorf("eps=0.9: octree ops %d not < naive/2 (%d)", ops09, naiveOps/2)
	}
}

// The segmented PUSH-INTEGRALS pass must produce exactly the same radii as
// a single full pass, regardless of how the atoms are segmented.
func TestPushIntegralsSegmentsEquivalent(t *testing.T) {
	m := molecule.Globule("g", 300, 33)
	s := newTestSystem(t, m, surface.DefaultConfig(), DefaultParams())
	acc := s.newBornAccum()
	for _, q := range s.qLeaves {
		s.ApproxIntegrals(s.TA.Root(), q, acc)
	}
	full := make([]float64, s.NumAtoms())
	s.PushIntegralsToAtoms(acc, 0, s.NumAtoms(), full)

	for _, nseg := range []int{2, 3, 7} {
		seg := make([]float64, s.NumAtoms())
		for i := 0; i < nseg; i++ {
			lo, hi := segment(s.NumAtoms(), nseg, i)
			s.PushIntegralsToAtoms(acc, lo, hi, seg)
		}
		for i := range full {
			if seg[i] != full[i] {
				t.Fatalf("nseg=%d: atom %d differs: %v vs %v", nseg, i, seg[i], full[i])
			}
		}
	}
}

func TestBornRadiusClamps(t *testing.T) {
	// Non-positive integral → bulk cap.
	if got := bornRadiusFromIntegral(-1, 1.5); got != maxBornRadius {
		t.Errorf("negative integral: %v", got)
	}
	if got := bornRadiusFromIntegral(0, 1.5); got != maxBornRadius {
		t.Errorf("zero integral: %v", got)
	}
	// Intrinsic floor.
	huge := 4 * math.Pi / 1e-3 // R ≈ 0.1 < intrinsic... actually large s → small R
	if got := bornRadiusFromIntegral(huge*1e6, 1.5); got != 1.5 {
		t.Errorf("intrinsic floor: %v", got)
	}
	if got := bornRadiusFromIntegralR4(-1, 1); got != maxBornRadius {
		t.Errorf("r4 negative integral: %v", got)
	}
}

func TestFarCriterion(t *testing.T) {
	beta := farBeta(0.9)
	// Touching balls are never far.
	if bornFar(2.0, 1, 1, beta) {
		t.Error("touching balls judged far")
	}
	// Hugely separated balls are far.
	if !bornFar(1000, 1, 1, beta) {
		t.Error("distant balls not far")
	}
	// ε → 0 ⇒ β → 1 ⇒ nothing is far (exact algorithm).
	if bornFar(1000, 1, 1, farBeta(1e-12)) {
		t.Error("eps→0 still approximates")
	}
	// The threshold distance matches the §II closed form
	// (r_A+r_Q)(β+1)/(β−1).
	s := 2.0
	thresh := s * (beta + 1) / (beta - 1)
	if bornFar(thresh*0.999, 1, 1, beta) {
		t.Error("just inside threshold judged far")
	}
	if !bornFar(thresh*1.001, 1, 1, beta) {
		t.Error("just outside threshold not far")
	}
}

func TestNewSystemValidation(t *testing.T) {
	m := ion(1)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(m, surf, Params{}); err == nil {
		t.Error("zero params accepted")
	}
	empty := &molecule.Molecule{Name: "empty"}
	if _, err := NewSystem(empty, surf, DefaultParams()); err == nil {
		t.Error("empty molecule accepted")
	}
	if _, err := NewSystem(m, &surface.Surface{}, DefaultParams()); err == nil {
		t.Error("empty surface accepted")
	}
	bad := DefaultParams()
	bad.EpsBorn = -1
	if _, err := NewSystem(m, surf, bad); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestSystemDataBytesScales(t *testing.T) {
	s1 := newTestSystem(t, molecule.Globule("a", 200, 1), surface.DefaultConfig(), DefaultParams())
	s2 := newTestSystem(t, molecule.Globule("b", 2000, 2), surface.DefaultConfig(), DefaultParams())
	// Atoms scale 10×; quadrature points only ~n^(2/3) (surface), so the
	// working set grows ≥4×.
	if s2.DataBytes() < 4*s1.DataBytes() {
		t.Errorf("DataBytes not scaling: %d vs %d", s1.DataBytes(), s2.DataBytes())
	}
}

func TestSegment(t *testing.T) {
	covered := 0
	for i := 0; i < 7; i++ {
		lo, hi := segment(100, 7, i)
		covered += hi - lo
		if lo > hi {
			t.Fatalf("segment %d inverted", i)
		}
	}
	if covered != 100 {
		t.Fatalf("segments cover %d of 100", covered)
	}
	lo, hi := segment(3, 8, 7)
	if hi != 3 || lo > hi {
		t.Errorf("last sparse segment = [%d,%d)", lo, hi)
	}
}

func TestAccessorsAndStrings(t *testing.T) {
	s := newTestSystem(t, ion(1.5), surface.Config{IcoLevel: 1}, DefaultParams())
	if len(s.QLeaves()) == 0 || len(s.ALeaves()) == 0 {
		t.Error("leaf accessors empty")
	}
	if NodeNode.String() != "node-node" || AtomNode.String() != "atom-node" {
		t.Errorf("Division strings: %v %v", NodeNode, AtomNode)
	}
	if Division(99).String() == "" {
		t.Error("unknown division has empty string")
	}
	if IntegralR6.String() != "r6" || IntegralR4.String() != "r4" {
		t.Errorf("Integral strings: %v %v", IntegralR6, IntegralR4)
	}
	if PairTerm(1, 0, 4) != 0.5 { // q²/f(0) = 1/sqrt(4)
		t.Errorf("PairTerm = %v", PairTerm(1, 0, 4))
	}
}
