package gb

import (
	"math"

	"gbpolar/internal/geom"
	"gbpolar/internal/octree"
)

// bornMom2 is the second-order surface moment of a quadrature node: the
// rank-3 tensor S[i][jk] = Σ w_q n_i m_j m_k stored as three symmetric
// matrices, one per normal component i.
type bornMom2 [3]geom.Mat3

// farBeta returns the far-field threshold factor β of the Born-radii
// criterion: nodes A, Q are far iff r_AQ > (r_A+r_Q)·(β+1)/(β−1),
// equivalently (r_AQ+s)/(r_AQ−s) ≤ β.
//
// We use β = 1+ε, which makes the threshold (β+1)/(β−1) = 1+2/ε —
// exactly the Fig. 3 energy criterion. The Fig. 2 pseudocode prints
// β = (1+ε)^(1/6) (the worst-case bound on the 6th-power distance ratio),
// but that threshold is ≈19× the ball sum at the paper's working ε = 0.9:
// it would keep the algorithm effectively exact (quadratic) at every
// ZDock benchmark size, contradicting the paper's measured millisecond
// runtimes and its own O((1/ε³)·(M/P p + log M)) cost bound, which both
// require an opening distance that scales like (1/ε)·(r_A+r_Q). Signed
// cancellation across the surface normals keeps the realized Born-radius
// error at ε = 0.9 in the paper's ≤1% band (see EXPERIMENTS.md, Fig. 10).
func farBeta(eps float64) float64 { return 1 + eps }

// farBetaOrder generalizes farBeta to the expansion order p: the far
// truncation error of an order-p expansion scales like (s/gap)^(p+1)
// with s = r_A+r_Q and gap = d−s, and the criterion d+s ≤ β·gap implies
// s/gap ≤ (β−1)/2. Holding the bound ((β−1)/2)^(p+1) at the calibrated
// p=1 value (ε/2)² gives
//
//	β_p = 1 + 2·(ε/2)^(2/(p+1))
//
// which reduces to the classic 1+ε at p=1 (that branch is taken
// literally so the default stays bitwise identical), tightens the
// criterion for the monopole field, and loosens it for the quadrupole
// field at the same target error.
func farBetaOrder(eps float64, order int) float64 {
	if order == OrderDipole {
		return farBeta(eps)
	}
	return 1 + 2*math.Pow(eps/2, 2/float64(order+1))
}

// bornFar reports whether the ball pair (separation d, radii ra, rq) is
// far enough to approximate under threshold β.
func bornFar(d, ra, rq, beta float64) bool {
	s := ra + rq
	gap := d - s
	if gap <= 0 {
		return false
	}
	return d+s <= beta*gap
}

// NaiveBornRadiiR6 evaluates Eq. 4 exactly: for every atom, the full sum
// over all surface quadrature points. ops receives the number of pair
// evaluations. O(M·m).
func (s *System) NaiveBornRadiiR6() (radii []float64, ops int64) {
	radii = make([]float64, s.NumAtoms())
	for i, a := range s.Mol.Atoms {
		sum := 0.0
		for _, q := range s.Surf.Points {
			d := q.Pos.Sub(a.Pos)
			r2 := d.Norm2()
			r6 := r2 * r2 * r2
			sum += q.Weight * d.Dot(q.Normal) / r6
			ops++
		}
		radii[i] = bornRadiusFromIntegral(sum, a.Radius)
	}
	return radii, ops
}

// NaiveBornRadiiR4 evaluates the Coulomb-field approximation (Eq. 3)
// exactly. Included as the accuracy baseline the paper contrasts the r⁶
// form against (r⁶ is more accurate for protein-like solutes).
func (s *System) NaiveBornRadiiR4() (radii []float64, ops int64) {
	radii = make([]float64, s.NumAtoms())
	for i, a := range s.Mol.Atoms {
		sum := 0.0
		for _, q := range s.Surf.Points {
			d := q.Pos.Sub(a.Pos)
			r2 := d.Norm2()
			r4 := r2 * r2
			sum += q.Weight * d.Dot(q.Normal) / r4
			ops++
		}
		radii[i] = bornRadiusFromIntegralR4(sum, a.Radius)
	}
	return radii, ops
}

// bornAccum is the per-rank (or per-thread-group) accumulator of the
// APPROX-INTEGRALS pass: partial integrals collected at T_A internal nodes
// (far-field) and at individual atoms (near-field exact pairs).
type bornAccum struct {
	nodeS []float64 // s_A per T_A node (value at the node center)
	// nodeG is the collected gradient ∇s_A about the node center: the
	// A-side first-order term. PUSH-INTEGRALS evaluates the affine field
	// s_A + g_A·(x − c_A) at each atom position, removing the error of
	// spreading one scalar across the whole node.
	nodeG []geom.Vec3
	// nodeH is the collected Hessian ∇²s_A about the node center — the
	// A-side second-order term of the quadrupole (p=2) far field, so
	// PUSH-INTEGRALS evaluates the quadratic local field
	// s_A + g_A·ξ + ½ξᵀH_Aξ at each atom. Nil below OrderQuadrupole;
	// the p≤1 paths never touch it, keeping their arithmetic (and the
	// distributed payload shape) bitwise identical to before.
	nodeH []geom.Mat3
	atomS []float64 // s_a per atom (original index)
	// near/far tally the exact-pair and approximated evaluations for the
	// obs pair counters. They ride along with the numeric fields but stay
	// rank-local: encodeAcc/decodeAcc in the distributed driver exchange
	// only the numeric payload, so each rank reports its own work split.
	near, far int64
}

func (s *System) newBornAccum() *bornAccum {
	acc := &bornAccum{
		nodeS: make([]float64, s.TA.NumNodes()),
		nodeG: make([]geom.Vec3, s.TA.NumNodes()),
		atomS: make([]float64, s.NumAtoms()),
	}
	if s.order() == OrderQuadrupole {
		acc.nodeH = make([]geom.Mat3, s.TA.NumNodes())
	}
	return acc
}

// add merges another accumulator (used when thread-local accumulators are
// reduced within a rank).
func (b *bornAccum) add(o *bornAccum) {
	for i, v := range o.nodeS {
		b.nodeS[i] += v
	}
	for i, v := range o.nodeG {
		b.nodeG[i] = b.nodeG[i].Add(v)
	}
	if b.nodeH != nil {
		for i := range o.nodeH {
			for t := 0; t < 9; t++ {
				b.nodeH[i][t] += o.nodeH[i][t]
			}
		}
	}
	for i, v := range o.atomS {
		b.atomS[i] += v
	}
	b.near += o.near
	b.far += o.far
}

// ApproxIntegrals is Fig. 2's APPROX-INTEGRALS(A, Q): it accumulates the
// contribution of quadrature leaf Q into acc, approximating whenever the
// (A, Q) ball pair satisfies the ε far-field criterion, descending A
// otherwise, and computing exact atom×q-point sums at leaves. Returns the
// number of interaction evaluations (for the performance model).
func (s *System) ApproxIntegrals(a, q int32, acc *bornAccum) int64 {
	beta := s.bornBeta()
	qn := &s.TQ.Nodes[q]
	qNormal := s.nodeNormal[q]
	return s.approxIntegrals(a, q, qn, qNormal, beta, s.order(), acc)
}

// bornFarNode accumulates the order-ord far-field expansion of one
// (A-node, Q-node) far pair into the A-node accumulator slots. The
// kernel is K(u; n) = (u·n)/|u|ᵖᵒʷ with u pointing from the evaluation
// point toward the quadrature point; the bivariate Taylor expansion
// about the two centers is truncated at total degree ord in the Q-side
// offset m and the A-side offset ξ:
//
//	ord 0:  Σ w K(diff; n)                          = (diff·ñ)/dᵖᵒʷ
//	ord 1:  + Q-side (tr T − pow·d̂ᵀT d̂)/dᵖᵒʷ        (Σ w ∇K·m)
//	        + A-side gradient of the monopole        (−Σ w ∇K, for ξ)
//	ord 2:  + Q-side ½ Σ w mᵀ(∇²K)m                  (via S = nodeMoment2)
//	        + the m×ξ cross term −Σ w (∇²K m)·ξ      (folded into grad)
//	        + A-side Hessian of the monopole         (½ξᵀHξ, via nodeH)
//
// The ord==1 arithmetic is expression-for-expression the pre-Accuracy
// code: the calibrated default stays bitwise identical. mom2 and nodeH
// are only dereferenced at ord 2.
func bornFarNode(ord int, diff geom.Vec3, d, rp, pow float64,
	qNormal geom.Vec3, mom *geom.Mat3, mom2 *bornMom2,
	nodeS *float64, nodeG *geom.Vec3, nodeH *geom.Mat3) {
	if ord == OrderMonopole {
		*nodeS += diff.Dot(qNormal) / rp
		return
	}
	dhat := diff.Scale(1 / d)
	trT := mom[0] + mom[4] + mom[8]
	dTd := dhat.Dot(mom.MulVec(dhat))
	*nodeS += (diff.Dot(qNormal) + trT - pow*dTd) / rp
	// ∇_x [(q̄−x)·ñ/|q̄−x|ᵖ] = −ñ/dᵖ + p (d·ñ) d̂ / dᵖ⁺¹.
	grad := qNormal.Scale(-1 / rp).Add(dhat.Scale(pow * diff.Dot(qNormal) / (rp * d)))
	if ord == OrderQuadrupole {
		inv := 1 / (rp * d) // 1/dᵖᵒʷ⁺¹
		// Q-side quadratic term ½ Σ w mᵀ(∇²K)m contracted through S:
		//   A = Σ_ab S[a][ab] d̂_b,  B = Σ_a d̂_a tr S[a],
		//   C = Σ_a d̂_a (d̂ᵀ S[a] d̂)
		//   term = [pow(pow+2)·C − pow(2A+B)] / (2 dᵖᵒʷ⁺¹)
		dh := [3]float64{dhat.X, dhat.Y, dhat.Z}
		var sA, sB, sC float64
		for i := 0; i < 3; i++ {
			si := &mom2[i]
			sA += si[3*i]*dh[0] + si[3*i+1]*dh[1] + si[3*i+2]*dh[2]
			sB += dh[i] * (si[0] + si[4] + si[8])
			sC += dh[i] * dhat.Dot(si.MulVec(dhat))
		}
		*nodeS += (pow*(pow+2)*sC - pow*(2*sA+sB)) * inv / 2
		// Cross term −Σ w (∇²K m)·ξ ≡ ∇_x of the first-order T term:
		//   [pow·trT·d̂ + pow(T+Tᵀ)d̂ − pow(pow+2)(d̂ᵀTd̂)d̂] / dᵖᵒʷ⁺¹.
		tSym := mom.MulVec(dhat).Add(mom.Transpose().MulVec(dhat))
		grad = grad.Add(dhat.Scale(pow * trT).Add(tSym.Scale(pow)).
			Add(dhat.Scale(-pow * (pow + 2) * dTd)).Scale(inv))
		// A-side Hessian of the monopole field:
		//   [−pow(ñd̂ᵀ + d̂ñᵀ + (d̂·ñ)I) + pow(pow+2)(d̂·ñ)d̂d̂ᵀ] / dᵖᵒʷ⁺¹.
		dn := dhat.Dot(qNormal)
		var h geom.Mat3
		addOuter(&h, qNormal.Scale(-pow*inv), dhat)
		addOuter(&h, dhat.Scale(-pow*inv), qNormal)
		addOuter(&h, dhat.Scale(pow*(pow+2)*dn*inv), dhat)
		diag := -pow * dn * inv
		h[0] += diag
		h[4] += diag
		h[8] += diag
		for t := 0; t < 9; t++ {
			nodeH[t] += h[t]
		}
	}
	*nodeG = nodeG.Add(grad)
}

func (s *System) approxIntegrals(a, q int32, qn *octree.Node, qNormal geom.Vec3, beta float64, ord int, acc *bornAccum) int64 {
	an := &s.TA.Nodes[a]
	d := an.Center.Dist(qn.Center)
	// The integrand power: 6 for the r⁶ form (Eq. 4), 4 for the
	// Coulomb-field r⁴ form (Eq. 3).
	pow := 6.0
	r4Form := s.Params.Integral == IntegralR4
	if r4Form {
		pow = 4
	}
	if bornFar(d, an.Radius, qn.Radius, beta) {
		// Far: Q acts as a pseudo-q-point at its centroid, expanded to
		// the order the accuracy spec asks for (see bornFarNode).
		diff := qn.Center.Sub(an.Center)
		r2 := d * d
		rp := r2 * r2 // p = 4
		if !r4Form {
			rp *= r2 // p = 6
		}
		var m2 *bornMom2
		var hslot *geom.Mat3
		if ord == OrderQuadrupole {
			m2 = &s.nodeMoment2[q]
			hslot = &acc.nodeH[a]
		}
		bornFarNode(ord, diff, d, rp, pow, qNormal, &s.nodeMoment[q], m2,
			&acc.nodeS[a], &acc.nodeG[a], hslot)
		acc.far++
		return 1
	}
	if an.Leaf {
		// Exact: every atom under A against every q-point under Q.
		ops := int64(0)
		for _, ai := range s.TA.ItemsOf(a) {
			pa := s.atomPos[ai]
			sum := 0.0
			for _, qi := range s.TQ.ItemsOf(q) {
				qp := &s.Surf.Points[qi]
				dv := qp.Pos.Sub(pa)
				r2 := dv.Norm2()
				rp := r2 * r2
				if !r4Form {
					rp *= r2
				}
				sum += qp.Weight * dv.Dot(qp.Normal) / rp
			}
			acc.atomS[ai] += sum
			ops += int64(len(s.TQ.ItemsOf(q)))
		}
		acc.near += ops
		return ops
	}
	ops := int64(1)
	for _, c := range an.Children {
		if c != octree.NoChild {
			ops += s.approxIntegrals(c, q, qn, qNormal, beta, ord, acc)
		}
	}
	return ops
}

// PushIntegralsToAtoms is Fig. 2's top-down pass: it adds every ancestor's
// collected partial integral into the atoms below and converts the totals
// into Born radii, but only for atoms whose position in the octree item
// order falls inside [sid, eid) — the "ith segment of atoms" a rank owns.
// radii is indexed by original atom index; entries outside the segment are
// left untouched. Returns the number of tree nodes visited.
func (s *System) PushIntegralsToAtoms(acc *bornAccum, sid, eid int, radii []float64) int64 {
	return s.pushIntegrals(0, 0, geom.Vec3{}, geom.Mat3{}, acc, int32(sid), int32(eid), radii)
}

// pushIntegrals carries the local field (carryS, carryG, carryH) collected
// at ancestors, expressed about the current node's center: the field value
// at position x with ξ = x − c_node is carryS + carryG·ξ (+ ½ξᵀ·carryH·ξ
// at OrderQuadrupole). The Hessian branches are guarded on acc.nodeH so
// the p≤1 arithmetic stays expression-for-expression what it was — even
// adding an exact +0.0 could flip the sign bit of a −0.0 partial.
func (s *System) pushIntegrals(a int32, carryS float64, carryG geom.Vec3, carryH geom.Mat3, acc *bornAccum, sid, eid int32, radii []float64) int64 {
	an := &s.TA.Nodes[a]
	// Prune subtrees entirely outside the segment: node item ranges are
	// contiguous, so the overlap test is two comparisons.
	if an.End <= sid || an.Start >= eid {
		return 1
	}
	carryS += acc.nodeS[a]
	carryG = carryG.Add(acc.nodeG[a])
	if acc.nodeH != nil {
		for t := 0; t < 9; t++ {
			carryH[t] += acc.nodeH[a][t]
		}
	}
	if an.Leaf {
		r4Form := s.Params.Integral == IntegralR4
		for pos := max(an.Start, sid); pos < min(an.End, eid); pos++ {
			ai := s.TA.Items[pos]
			xi := s.atomPos[ai].Sub(an.Center)
			v := acc.atomS[ai] + carryS + carryG.Dot(xi)
			if acc.nodeH != nil {
				v += 0.5 * xi.Dot(carryH.MulVec(xi))
			}
			if r4Form {
				radii[ai] = bornRadiusFromIntegralR4(v, s.Mol.Atoms[ai].Radius)
			} else {
				radii[ai] = bornRadiusFromIntegral(v, s.Mol.Atoms[ai].Radius)
			}
		}
		return 1
	}
	ops := int64(1)
	for _, c := range an.Children {
		if c != octree.NoChild {
			// Re-center the local carry about the child's center:
			// S' = S + G·s + ½sᵀHs, G' = G + Hs, H' = H.
			shift := s.TA.Nodes[c].Center.Sub(an.Center)
			cs := carryS + carryG.Dot(shift)
			cg := carryG
			if acc.nodeH != nil {
				hs := carryH.MulVec(shift)
				cs += 0.5 * shift.Dot(hs)
				cg = cg.Add(hs)
			}
			ops += s.pushIntegrals(c, cs, cg, carryH, acc, sid, eid, radii)
		}
	}
	return ops
}

// payloadLen is the number of float64s in the accumulator's flat numeric
// payload (the Allreduce / checkpoint wire shape). The Hessian block is
// present only at OrderQuadrupole, so default-order payloads are
// byte-identical to the pre-Accuracy encoding.
func (b *bornAccum) payloadLen() int {
	n := 4*len(b.nodeS) + len(b.atomS)
	if b.nodeH != nil {
		n += 9 * len(b.nodeH)
	}
	return n
}

// encode flattens the numeric fields into the wire layout
// [nodeS | nodeG.X nodeG.Y nodeG.Z per node | (nodeH, 9 per node) | atomS].
// The near/far tallies stay rank-local by design.
func (b *bornAccum) encode() []float64 {
	flat := make([]float64, 0, b.payloadLen())
	flat = append(flat, b.nodeS...)
	for _, g := range b.nodeG {
		flat = append(flat, g.X, g.Y, g.Z)
	}
	if b.nodeH != nil {
		for i := range b.nodeH {
			flat = append(flat, b.nodeH[i][:]...)
		}
	}
	flat = append(flat, b.atomS...)
	return flat
}

// decode reads the encode layout back into the accumulator's slices.
func (b *bornAccum) decode(flat []float64) {
	copy(b.nodeS, flat)
	off := len(b.nodeS)
	for i := range b.nodeG {
		b.nodeG[i] = geom.V(flat[off], flat[off+1], flat[off+2])
		off += 3
	}
	if b.nodeH != nil {
		for i := range b.nodeH {
			copy(b.nodeH[i][:], flat[off:off+9])
			off += 9
		}
	}
	copy(b.atomS, flat[off:])
}

// BornRadii runs the full serial octree pipeline (APPROX-INTEGRALS over
// every quadrature leaf, then PUSH-INTEGRALS-TO-ATOMS over all atoms) and
// returns the Born radii and the interaction-evaluation count.
func (s *System) BornRadii() ([]float64, int64) {
	acc := s.newBornAccum()
	ops := int64(0)
	for _, q := range s.qLeaves {
		ops += s.ApproxIntegrals(s.TA.Root(), q, acc)
	}
	radii := make([]float64, s.NumAtoms())
	ops += s.PushIntegralsToAtoms(acc, 0, s.NumAtoms(), radii)
	return radii, ops
}
