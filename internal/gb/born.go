package gb

import (
	"gbpolar/internal/geom"
	"gbpolar/internal/octree"
)

// farBeta returns the far-field threshold factor β of the Born-radii
// criterion: nodes A, Q are far iff r_AQ > (r_A+r_Q)·(β+1)/(β−1),
// equivalently (r_AQ+s)/(r_AQ−s) ≤ β.
//
// We use β = 1+ε, which makes the threshold (β+1)/(β−1) = 1+2/ε —
// exactly the Fig. 3 energy criterion. The Fig. 2 pseudocode prints
// β = (1+ε)^(1/6) (the worst-case bound on the 6th-power distance ratio),
// but that threshold is ≈19× the ball sum at the paper's working ε = 0.9:
// it would keep the algorithm effectively exact (quadratic) at every
// ZDock benchmark size, contradicting the paper's measured millisecond
// runtimes and its own O((1/ε³)·(M/P p + log M)) cost bound, which both
// require an opening distance that scales like (1/ε)·(r_A+r_Q). Signed
// cancellation across the surface normals keeps the realized Born-radius
// error at ε = 0.9 in the paper's ≤1% band (see EXPERIMENTS.md, Fig. 10).
func farBeta(eps float64) float64 { return 1 + eps }

// bornFar reports whether the ball pair (separation d, radii ra, rq) is
// far enough to approximate under threshold β.
func bornFar(d, ra, rq, beta float64) bool {
	s := ra + rq
	gap := d - s
	if gap <= 0 {
		return false
	}
	return d+s <= beta*gap
}

// NaiveBornRadiiR6 evaluates Eq. 4 exactly: for every atom, the full sum
// over all surface quadrature points. ops receives the number of pair
// evaluations. O(M·m).
func (s *System) NaiveBornRadiiR6() (radii []float64, ops int64) {
	radii = make([]float64, s.NumAtoms())
	for i, a := range s.Mol.Atoms {
		sum := 0.0
		for _, q := range s.Surf.Points {
			d := q.Pos.Sub(a.Pos)
			r2 := d.Norm2()
			r6 := r2 * r2 * r2
			sum += q.Weight * d.Dot(q.Normal) / r6
			ops++
		}
		radii[i] = bornRadiusFromIntegral(sum, a.Radius)
	}
	return radii, ops
}

// NaiveBornRadiiR4 evaluates the Coulomb-field approximation (Eq. 3)
// exactly. Included as the accuracy baseline the paper contrasts the r⁶
// form against (r⁶ is more accurate for protein-like solutes).
func (s *System) NaiveBornRadiiR4() (radii []float64, ops int64) {
	radii = make([]float64, s.NumAtoms())
	for i, a := range s.Mol.Atoms {
		sum := 0.0
		for _, q := range s.Surf.Points {
			d := q.Pos.Sub(a.Pos)
			r2 := d.Norm2()
			r4 := r2 * r2
			sum += q.Weight * d.Dot(q.Normal) / r4
			ops++
		}
		radii[i] = bornRadiusFromIntegralR4(sum, a.Radius)
	}
	return radii, ops
}

// bornAccum is the per-rank (or per-thread-group) accumulator of the
// APPROX-INTEGRALS pass: partial integrals collected at T_A internal nodes
// (far-field) and at individual atoms (near-field exact pairs).
type bornAccum struct {
	nodeS []float64 // s_A per T_A node (value at the node center)
	// nodeG is the collected gradient ∇s_A about the node center: the
	// A-side first-order term. PUSH-INTEGRALS evaluates the affine field
	// s_A + g_A·(x − c_A) at each atom position, removing the error of
	// spreading one scalar across the whole node.
	nodeG []geom.Vec3
	atomS []float64 // s_a per atom (original index)
	// near/far tally the exact-pair and approximated evaluations for the
	// obs pair counters. They ride along with the numeric fields but stay
	// rank-local: encodeAcc/decodeAcc in the distributed driver exchange
	// only the numeric payload, so each rank reports its own work split.
	near, far int64
}

func (s *System) newBornAccum() *bornAccum {
	return &bornAccum{
		nodeS: make([]float64, s.TA.NumNodes()),
		nodeG: make([]geom.Vec3, s.TA.NumNodes()),
		atomS: make([]float64, s.NumAtoms()),
	}
}

// add merges another accumulator (used when thread-local accumulators are
// reduced within a rank).
func (b *bornAccum) add(o *bornAccum) {
	for i, v := range o.nodeS {
		b.nodeS[i] += v
	}
	for i, v := range o.nodeG {
		b.nodeG[i] = b.nodeG[i].Add(v)
	}
	for i, v := range o.atomS {
		b.atomS[i] += v
	}
	b.near += o.near
	b.far += o.far
}

// ApproxIntegrals is Fig. 2's APPROX-INTEGRALS(A, Q): it accumulates the
// contribution of quadrature leaf Q into acc, approximating whenever the
// (A, Q) ball pair satisfies the ε far-field criterion, descending A
// otherwise, and computing exact atom×q-point sums at leaves. Returns the
// number of interaction evaluations (for the performance model).
func (s *System) ApproxIntegrals(a, q int32, acc *bornAccum) int64 {
	beta := farBeta(s.Params.EpsBorn)
	qn := &s.TQ.Nodes[q]
	qNormal := s.nodeNormal[q]
	return s.approxIntegrals(a, q, qn, qNormal, beta, acc)
}

func (s *System) approxIntegrals(a, q int32, qn *octree.Node, qNormal geom.Vec3, beta float64, acc *bornAccum) int64 {
	an := &s.TA.Nodes[a]
	d := an.Center.Dist(qn.Center)
	// The integrand power: 6 for the r⁶ form (Eq. 4), 4 for the
	// Coulomb-field r⁴ form (Eq. 3).
	pow := 6.0
	r4Form := s.Params.Integral == IntegralR4
	if r4Form {
		pow = 4
	}
	if bornFar(d, an.Radius, qn.Radius, beta) {
		// Far: Q acts as a pseudo-q-point at its centroid. Beyond the
		// Fig. 2 monopole term d·ñ/dᵖ we keep the first-order pieces:
		// the Q-side normal-moment tensor (tr T − p·d̂ᵀT d̂)/dᵖ and the
		// A-side gradient of the monopole field, so PUSH-INTEGRALS can
		// evaluate the collected field at each atom's own position.
		diff := qn.Center.Sub(an.Center)
		r2 := d * d
		rp := r2 * r2 // p = 4
		if !r4Form {
			rp *= r2 // p = 6
		}
		dhat := diff.Scale(1 / d)
		mom := &s.nodeMoment[q]
		trT := mom[0] + mom[4] + mom[8]
		dTd := dhat.Dot(mom.MulVec(dhat))
		acc.nodeS[a] += (diff.Dot(qNormal) + trT - pow*dTd) / rp
		// ∇_x [(q̄−x)·ñ/|q̄−x|ᵖ] = −ñ/dᵖ + p (d·ñ) d̂ / dᵖ⁺¹.
		grad := qNormal.Scale(-1 / rp).Add(dhat.Scale(pow * diff.Dot(qNormal) / (rp * d)))
		acc.nodeG[a] = acc.nodeG[a].Add(grad)
		acc.far++
		return 1
	}
	if an.Leaf {
		// Exact: every atom under A against every q-point under Q.
		ops := int64(0)
		for _, ai := range s.TA.ItemsOf(a) {
			pa := s.atomPos[ai]
			sum := 0.0
			for _, qi := range s.TQ.ItemsOf(q) {
				qp := &s.Surf.Points[qi]
				dv := qp.Pos.Sub(pa)
				r2 := dv.Norm2()
				rp := r2 * r2
				if !r4Form {
					rp *= r2
				}
				sum += qp.Weight * dv.Dot(qp.Normal) / rp
			}
			acc.atomS[ai] += sum
			ops += int64(len(s.TQ.ItemsOf(q)))
		}
		acc.near += ops
		return ops
	}
	ops := int64(1)
	for _, c := range an.Children {
		if c != octree.NoChild {
			ops += s.approxIntegrals(c, q, qn, qNormal, beta, acc)
		}
	}
	return ops
}

// PushIntegralsToAtoms is Fig. 2's top-down pass: it adds every ancestor's
// collected partial integral into the atoms below and converts the totals
// into Born radii, but only for atoms whose position in the octree item
// order falls inside [sid, eid) — the "ith segment of atoms" a rank owns.
// radii is indexed by original atom index; entries outside the segment are
// left untouched. Returns the number of tree nodes visited.
func (s *System) PushIntegralsToAtoms(acc *bornAccum, sid, eid int, radii []float64) int64 {
	return s.pushIntegrals(0, 0, geom.Vec3{}, acc, int32(sid), int32(eid), radii)
}

// pushIntegrals carries the affine field (carryS, carryG) collected at
// ancestors, expressed about the current node's center: the field value
// at position x is carryS + carryG·(x − c_node).
func (s *System) pushIntegrals(a int32, carryS float64, carryG geom.Vec3, acc *bornAccum, sid, eid int32, radii []float64) int64 {
	an := &s.TA.Nodes[a]
	// Prune subtrees entirely outside the segment: node item ranges are
	// contiguous, so the overlap test is two comparisons.
	if an.End <= sid || an.Start >= eid {
		return 1
	}
	carryS += acc.nodeS[a]
	carryG = carryG.Add(acc.nodeG[a])
	if an.Leaf {
		r4Form := s.Params.Integral == IntegralR4
		for pos := max(an.Start, sid); pos < min(an.End, eid); pos++ {
			ai := s.TA.Items[pos]
			v := acc.atomS[ai] + carryS + carryG.Dot(s.atomPos[ai].Sub(an.Center))
			if r4Form {
				radii[ai] = bornRadiusFromIntegralR4(v, s.Mol.Atoms[ai].Radius)
			} else {
				radii[ai] = bornRadiusFromIntegral(v, s.Mol.Atoms[ai].Radius)
			}
		}
		return 1
	}
	ops := int64(1)
	for _, c := range an.Children {
		if c != octree.NoChild {
			// Re-center the affine carry about the child's center.
			shift := s.TA.Nodes[c].Center.Sub(an.Center)
			ops += s.pushIntegrals(c, carryS+carryG.Dot(shift), carryG, acc, sid, eid, radii)
		}
	}
	return ops
}

// BornRadii runs the full serial octree pipeline (APPROX-INTEGRALS over
// every quadrature leaf, then PUSH-INTEGRALS-TO-ATOMS over all atoms) and
// returns the Born radii and the interaction-evaluation count.
func (s *System) BornRadii() ([]float64, int64) {
	acc := s.newBornAccum()
	ops := int64(0)
	for _, q := range s.qLeaves {
		ops += s.ApproxIntegrals(s.TA.Root(), q, acc)
	}
	radii := make([]float64, s.NumAtoms())
	ops += s.PushIntegralsToAtoms(acc, 0, s.NumAtoms(), radii)
	return radii, ops
}
