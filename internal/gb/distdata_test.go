package gb

import (
	"math"
	"testing"

	"gbpolar/internal/simmpi"
)

func TestDistributedDataMatchesEpsilonBand(t *testing.T) {
	s := buildSys(t, 700, DefaultParams())
	serial := s.RunSerial()
	naiveR, _ := s.NaiveBornRadiiR6()
	naiveE, _ := s.NaiveEpol(naiveR)
	for _, P := range []int{1, 2, 4, 6} {
		r, err := s.RunMPIDistributedData(P)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		// The multi-tree decomposition differs from the shared-tree one,
		// so exact agreement with the serial driver is not expected — but
		// both must sit in the same ε band around the exact energy.
		relNaive := math.Abs(r.Epol-naiveE) / math.Abs(naiveE)
		if relNaive > 0.02 {
			t.Errorf("P=%d: distributed-data energy off naive by %.3f%%", P, relNaive*100)
		}
		relSerial := math.Abs(r.Epol-serial.Epol) / math.Abs(serial.Epol)
		if relSerial > 0.02 {
			t.Errorf("P=%d: %.3f%% from the shared-data result", P, relSerial*100)
		}
		// Born radii land within the Born ε band of the exact radii.
		worst := 0.0
		for i := range naiveR {
			if rel := math.Abs(r.Born[i]-naiveR[i]) / naiveR[i]; rel > worst {
				worst = rel
			}
		}
		if worst > 0.08 {
			t.Errorf("P=%d: worst Born radius error %.3f", P, worst)
		}
		if len(r.PerCoreOps) != P {
			t.Errorf("P=%d: %d counters", P, len(r.PerCoreOps))
		}
	}
}

func TestDistributedDataShipsBundles(t *testing.T) {
	s := buildSys(t, 500, DefaultParams())
	r, err := s.RunMPIDistributedData(4)
	if err != nil {
		t.Fatal(err)
	}
	// Ring exchange: two phases × P(P−1) sends.
	wantMsgs := int64(2 * 4 * 3)
	if r.Traffic.P2PMessages != wantMsgs {
		t.Errorf("p2p messages = %d, want %d", r.Traffic.P2PMessages, wantMsgs)
	}
	if r.Traffic.P2PBytes == 0 {
		t.Error("no bundle bytes shipped")
	}
	// Bundle traffic carries roughly the whole dataset (P−1)× per phase.
	atoms := int64(s.NumAtoms())
	qpts := int64(s.NumQPoints())
	approxBytes := 3 * ((qpts*7+1)*8 + (atoms*5+1)*8) // (P−1) copies of each
	if r.Traffic.P2PBytes < approxBytes/2 || r.Traffic.P2PBytes > approxBytes*2 {
		t.Errorf("bundle bytes = %d, expected ≈%d", r.Traffic.P2PBytes, approxBytes)
	}
}

func TestDistributedDataSingleRank(t *testing.T) {
	s := buildSys(t, 300, DefaultParams())
	r, err := s.RunMPIDistributedData(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Traffic.P2PMessages != 0 {
		t.Errorf("single rank sent %d messages", r.Traffic.P2PMessages)
	}
	serial := s.RunSerial()
	// One rank, one tree — but built over item-order-permuted subsets, so
	// allow tiny decomposition differences.
	if rel := math.Abs(r.Epol-serial.Epol) / math.Abs(serial.Epol); rel > 1e-3 {
		t.Errorf("P=1 energy differs from serial by %v", rel)
	}
}

func TestDistributedDataValidation(t *testing.T) {
	s := buildSys(t, 100, DefaultParams())
	if _, err := s.RunMPIDistributedData(0); err == nil {
		t.Error("P=0 accepted")
	}
	_ = simmpi.Stats{}
}
