package gb

import (
	"fmt"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/octree"
	"gbpolar/internal/surface"
)

// Division selects the paper's work-distribution scheme (§IV, "Different
// Work Distribution Approaches").
type Division int

const (
	// NodeNode divides octree leaf nodes among processes in both phases —
	// the paper's default: best time AND an approximation error that is
	// independent of the process count.
	NodeNode Division = iota
	// AtomNode divides atoms among processes: slightly slower, and the
	// error varies with the process count because division boundaries
	// split tree nodes.
	AtomNode
)

// String implements fmt.Stringer.
func (d Division) String() string {
	switch d {
	case NodeNode:
		return "node-node"
	case AtomNode:
		return "atom-node"
	}
	return fmt.Sprintf("Division(%d)", int(d))
}

// Integral selects the Born-radius surface integral.
type Integral int

const (
	// IntegralR6 is the surface-based r⁶ form (Eq. 4) — the paper's
	// contribution, more accurate for protein-like solutes (Grycuk).
	IntegralR6 Integral = iota
	// IntegralR4 is the Coulomb-field approximation (Eq. 3), kept for
	// the accuracy comparison the paper motivates in §II.
	IntegralR4
)

// String implements fmt.Stringer.
func (i Integral) String() string {
	if i == IntegralR4 {
		return "r4"
	}
	return "r6"
}

// Params are the tunables of the octree algorithms.
type Params struct {
	// EpsSolvent is the solvent dielectric of Eq. 2 (default 80).
	EpsSolvent float64
	// EpsBorn is the ε of the Born-radii far-field criterion (Fig. 2);
	// larger is faster and less accurate. The paper's default is 0.9.
	//
	// Deprecated: set Accuracy.EpsBorn. Kept as a thin wrapper with a
	// bitwise-identical default; ignored when Accuracy is non-zero.
	EpsBorn float64
	// EpsEpol is the ε of the energy far-field criterion and the
	// Born-radius class width of Fig. 3. The paper's default is 0.9.
	//
	// Deprecated: set Accuracy.EpsEpol. Kept as a thin wrapper with a
	// bitwise-identical default; ignored when Accuracy is non-zero.
	EpsEpol float64
	// LeafAtoms / LeafQPoints are the octree leaf capacities.
	LeafAtoms   int
	LeafQPoints int
	// Math selects exact or approximate kernels.
	Math MathMode
	// Division selects the work-distribution scheme.
	Division Division
	// Integral selects the r⁶ (default) or r⁴ Born-radius form.
	Integral Integral
	// EpsBin overrides the Born-radius class width of the Fig. 3
	// histograms (0: use EpsEpol). Exposed for the binning-resolution
	// ablation (DESIGN.md §6.5). Must not exceed EpsEpol.
	//
	// Deprecated: set Accuracy.BinWidth. Kept as a thin wrapper with a
	// bitwise-identical default; ignored when Accuracy is non-zero.
	EpsBin float64
	// OpeningScale overrides the far-criterion threshold multiplier of
	// the energy phase (0: the calibrated default). Exposed for the
	// opening-criterion ablation.
	OpeningScale float64
	// Accuracy is the unified work/precision spec (eps pair, bin width,
	// quadrature order, expansion order). The zero value falls back to
	// the deprecated EpsBorn/EpsEpol/EpsBin fields above at the
	// calibrated OrderDipole default; a non-zero Accuracy wins over
	// them. NewSystem normalizes: after construction the Accuracy field
	// is always populated and the deprecated fields mirror it, so both
	// read sides stay consistent.
	Accuracy Accuracy
}

// DefaultParams returns the paper's benchmark configuration: ε = 0.9 for
// both phases, node–node division, exact math.
func DefaultParams() Params {
	return Params{
		EpsSolvent:  DefaultSolventDielectric,
		EpsBorn:     0.9,
		EpsEpol:     0.9,
		LeafAtoms:   8,
		LeafQPoints: 32,
		Math:        ExactMath,
		Division:    NodeNode,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.EpsSolvent <= 1 {
		return fmt.Errorf("gb: solvent dielectric %v must exceed 1", p.EpsSolvent)
	}
	if p.Accuracy.IsZero() {
		if p.EpsBorn <= 0 || p.EpsEpol <= 0 {
			return fmt.Errorf("gb: approximation parameters must be positive (got %v, %v)", p.EpsBorn, p.EpsEpol)
		}
		if !(p.EpsBin >= 0) {
			return fmt.Errorf("gb: bin width %v must be non-negative", p.EpsBin)
		}
		if p.EpsBin > p.EpsEpol {
			return fmt.Errorf("gb: bin width %v exceeds EpsEpol %v: bins wider than the energy criterion degrade the Fig. 3 histogram bound", p.EpsBin, p.EpsEpol)
		}
	} else if err := p.Accuracy.Validate(); err != nil {
		return err
	}
	if p.LeafAtoms < 1 || p.LeafQPoints < 1 {
		return fmt.Errorf("gb: leaf capacities must be ≥ 1")
	}
	return nil
}

// System is a prepared molecule: positions, charges, surface quadrature
// points and the two octrees T_A (atoms) and T_Q (quadrature points). A
// System is immutable after construction and safe for concurrent use by
// any number of ranks/threads — the paper's compute nodes each build the
// same octrees (Fig. 4 Step 1); in-process the ranks share them read-only
// and the replication is accounted by the performance model (DESIGN.md
// §2).
type System struct {
	Params Params
	Mol    *molecule.Molecule
	Surf   *surface.Surface
	TA     *octree.Tree // octree over atom centers
	TQ     *octree.Tree // octree over quadrature points

	atomPos []geom.Vec3
	qPos    []geom.Vec3

	// Pseudo-q-point aggregates per T_Q node (Fig. 2): weighted normal
	// sums ñ = Σ w_q n_q, and the first-order normal-moment tensor
	// T = Σ w_q n_q (p_q − q̄)ᵀ about the node centroid. The tensor is
	// the Greengard–Rokhlin-style p=1 correction the far field needs:
	// a closed surface patch's weighted normals largely cancel (like the
	// charges of a neutral cluster), so the monopole ñ alone drops the
	// leading term of the r⁶ flux integral.
	nodeNormal []geom.Vec3
	nodeMoment []geom.Mat3
	// nodeMoment2 is the second-order (p=2) moment per T_Q node: the
	// rank-3 tensor S[i][jk] = Σ w_q n_i m_j m_k (m = p_q − q̄, symmetric
	// in jk), stored as three matrices indexed by the normal component.
	// Built only when the effective expansion order is OrderQuadrupole.
	nodeMoment2 []bornMom2

	// Leaf lists (deterministic order) for node-based work division.
	qLeaves []int32
	aLeaves []int32
}

// NewSystem builds the prepared system: surface octree aggregates and both
// trees. The surface must have been built from the same molecule.
func NewSystem(mol *molecule.Molecule, surf *surface.Surface, params Params) (*System, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := mol.Validate(); err != nil {
		return nil, err
	}
	if mol.NumAtoms() == 0 {
		return nil, fmt.Errorf("gb: molecule %q has no atoms", mol.Name)
	}
	if surf.NumPoints() == 0 {
		return nil, fmt.Errorf("gb: surface of %q has no quadrature points", mol.Name)
	}
	// Normalize the accuracy spec: after construction Params.Accuracy is
	// always populated and the deprecated eps fields mirror it, so the
	// traversals (which read the mirrors) and the tuner/serving layers
	// (which read the spec) agree by construction.
	acc := params.EffectiveAccuracy()
	params.Accuracy = acc
	params.EpsBorn = acc.EpsBorn
	params.EpsEpol = acc.EpsEpol
	params.EpsBin = acc.BinWidth
	s := &System{
		Params:  params,
		Mol:     mol,
		Surf:    surf,
		atomPos: mol.Positions(),
		qPos:    surf.Positions(),
	}
	s.TA = octree.Build(s.atomPos, params.LeafAtoms)
	s.TQ = octree.Build(s.qPos, params.LeafQPoints)
	s.qLeaves = s.TQ.Leaves()
	s.aLeaves = s.TA.Leaves()

	// Aggregate the weighted normal and normal-moment tensor of every
	// T_Q node bottom-up (children precede parents in reverse DFS index
	// order).
	s.nodeNormal = make([]geom.Vec3, s.TQ.NumNodes())
	s.nodeMoment = make([]geom.Mat3, s.TQ.NumNodes())
	for i := s.TQ.NumNodes() - 1; i >= 0; i-- {
		n := &s.TQ.Nodes[i]
		if n.Leaf {
			var sum geom.Vec3
			var mom geom.Mat3
			for _, it := range s.TQ.ItemsOf(int32(i)) {
				q := &surf.Points[it]
				wn := q.Normal.Scale(q.Weight)
				sum = sum.Add(wn)
				addOuter(&mom, wn, q.Pos.Sub(n.Center))
			}
			s.nodeNormal[i] = sum
			s.nodeMoment[i] = mom
			continue
		}
		var sum geom.Vec3
		var mom geom.Mat3
		for _, c := range n.Children {
			if c == octree.NoChild {
				continue
			}
			sum = sum.Add(s.nodeNormal[c])
			// Re-center the child tensor about the parent centroid:
			// T_p += T_c + ñ_c ⊗ (q̄_c − q̄_p).
			shift := s.TQ.Nodes[c].Center.Sub(n.Center)
			for k := 0; k < 9; k++ {
				mom[k] += s.nodeMoment[c][k]
			}
			addOuter(&mom, s.nodeNormal[c], shift)
		}
		s.nodeNormal[i] = sum
		s.nodeMoment[i] = mom
	}
	if acc.Order == OrderQuadrupole {
		s.nodeMoment2 = buildQuadMoments(s.TQ, surf.Points, s.nodeNormal, s.nodeMoment)
	}
	return s, nil
}

// buildQuadMoments aggregates the second-order surface moments
// S[i][jk] = Σ w_q n_i m_j m_k per node of a quadrature octree, bottom-up
// like the normal and first-moment passes. The translation of a child
// tensor to the parent centroid (m → m + s) follows from expanding the
// shifted product:
//
//	S'[i][jk] = S[i][jk] + s_j T[i][k] + s_k T[i][j] + s_j s_k ñ_i
//
// which needs the child's already-aggregated ñ and T, so the pass runs
// after (or alongside) those.
func buildQuadMoments(tree *octree.Tree, pts []surface.QPoint, normals []geom.Vec3, moments []geom.Mat3) []bornMom2 {
	m2 := make([]bornMom2, tree.NumNodes())
	for i := tree.NumNodes() - 1; i >= 0; i-- {
		n := &tree.Nodes[i]
		if n.Leaf {
			var s2 bornMom2
			for _, it := range tree.ItemsOf(int32(i)) {
				q := &pts[it]
				m := q.Pos.Sub(n.Center)
				wn := q.Normal.Scale(q.Weight)
				addOuter(&s2[0], m.Scale(wn.X), m)
				addOuter(&s2[1], m.Scale(wn.Y), m)
				addOuter(&s2[2], m.Scale(wn.Z), m)
			}
			m2[i] = s2
			continue
		}
		var s2 bornMom2
		for _, c := range n.Children {
			if c == octree.NoChild {
				continue
			}
			shift := tree.Nodes[c].Center.Sub(n.Center)
			cn := normals[c]
			cm := &moments[c]
			nvec := [3]float64{cn.X, cn.Y, cn.Z}
			for comp := 0; comp < 3; comp++ {
				dst := &s2[comp]
				src := &m2[c][comp]
				for t := 0; t < 9; t++ {
					dst[t] += src[t]
				}
				// Row comp of T is the (n_comp, m) first moment.
				row := geom.V(cm[3*comp], cm[3*comp+1], cm[3*comp+2])
				addOuter(dst, shift, row)
				addOuter(dst, row, shift)
				addOuter(dst, shift.Scale(nvec[comp]), shift)
			}
		}
		m2[i] = s2
	}
	return m2
}

// addOuter accumulates the outer product a ⊗ bᵀ into m (row-major).
func addOuter(m *geom.Mat3, a, b geom.Vec3) {
	m[0] += a.X * b.X
	m[1] += a.X * b.Y
	m[2] += a.X * b.Z
	m[3] += a.Y * b.X
	m[4] += a.Y * b.Y
	m[5] += a.Y * b.Z
	m[6] += a.Z * b.X
	m[7] += a.Z * b.Y
	m[8] += a.Z * b.Z
}

// NumAtoms returns the atom count.
func (s *System) NumAtoms() int { return s.Mol.NumAtoms() }

// NumQPoints returns the quadrature-point count.
func (s *System) NumQPoints() int { return s.Surf.NumPoints() }

// QLeaves returns the quadrature-octree leaves in work-division order.
func (s *System) QLeaves() []int32 { return s.qLeaves }

// ALeaves returns the atoms-octree leaves in work-division order.
func (s *System) ALeaves() []int32 { return s.aLeaves }

// DataBytes estimates the memory of one copy of the system's working set
// (the quantity each distributed rank replicates), for the performance
// model.
func (s *System) DataBytes() int64 {
	atoms := int64(s.NumAtoms())
	qpts := int64(s.NumQPoints())
	return atoms*(24+8+8+8+8) + qpts*(24+24+8) +
		s.TA.MemoryBytes() + s.TQ.MemoryBytes() + int64(len(s.nodeNormal))*24
}

// segment returns the half-open [lo, hi) bounds of the i-th of n equal
// segments over `total` items (the paper's "ith segment" static division).
func segment(total, n, i int) (lo, hi int) {
	lo = i * total / n
	hi = (i + 1) * total / n
	return lo, hi
}
