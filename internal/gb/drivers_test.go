package gb

import (
	"math"
	"testing"

	"gbpolar/internal/molecule"
	"gbpolar/internal/sched"
	"gbpolar/internal/simmpi"
	"gbpolar/internal/surface"
)

// buildSys prepares a medium test system shared by the driver tests.
func buildSys(t *testing.T, n int, params Params) *System {
	t.Helper()
	m := molecule.Exactly(molecule.Globule("drv", n, 61), n, 61)
	surf, err := surface.Build(m, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(m, surf, params)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunSerial(t *testing.T) {
	s := buildSys(t, 400, DefaultParams())
	r := s.RunSerial()
	if r.Epol >= 0 {
		t.Errorf("Epol = %v, must be negative", r.Epol)
	}
	if len(r.Born) != 400 {
		t.Fatalf("Born len = %d", len(r.Born))
	}
	if r.TotalOps() == 0 || len(r.PerCoreOps) != 1 {
		t.Errorf("ops = %v", r.PerCoreOps)
	}
	if r.Processes != 1 || r.ThreadsPerProcess != 1 {
		t.Errorf("layout = %d×%d", r.Processes, r.ThreadsPerProcess)
	}
}

func TestRunCilkMatchesSerial(t *testing.T) {
	s := buildSys(t, 400, DefaultParams())
	serial := s.RunSerial()
	for _, p := range []int{1, 2, 4} {
		pool := sched.New(p)
		r := s.RunCilk(pool)
		pool.Close()
		if math.Abs(r.Epol-serial.Epol)/math.Abs(serial.Epol) > 1e-12 {
			t.Errorf("p=%d: Epol %v vs serial %v", p, r.Epol, serial.Epol)
		}
		for i := range r.Born {
			if relDiff(r.Born[i], serial.Born[i]) > 1e-12 {
				t.Fatalf("p=%d: Born[%d] differs", p, i)
			}
		}
		if len(r.PerCoreOps) != p {
			t.Errorf("p=%d: %d core counters", p, len(r.PerCoreOps))
		}
		// Total interaction work is driver-independent up to duplicated
		// traversal bookkeeping on segment boundaries (<1%).
		if relOps := math.Abs(float64(r.TotalOps()-serial.TotalOps())) / float64(serial.TotalOps()); relOps > 0.01 {
			t.Errorf("p=%d: ops %d vs serial %d", p, r.TotalOps(), serial.TotalOps())
		}
	}
}

func TestRunMPIMatchesSerial(t *testing.T) {
	s := buildSys(t, 400, DefaultParams())
	serial := s.RunSerial()
	for _, P := range []int{1, 2, 4, 7} {
		r, err := s.RunMPI(P)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		// Node-based division: identical approximation at every P (§IV:
		// "the error is constant for constant parameters"); only
		// floating-point reassociation noise may differ.
		if math.Abs(r.Epol-serial.Epol)/math.Abs(serial.Epol) > 1e-12 {
			t.Errorf("P=%d: Epol %v vs serial %v", P, r.Epol, serial.Epol)
		}
		for i := range r.Born {
			if relDiff(r.Born[i], serial.Born[i]) > 1e-12 {
				t.Fatalf("P=%d: Born[%d] differs: %v vs %v", P, i, r.Born[i], serial.Born[i])
			}
		}
		if len(r.PerCoreOps) != P {
			t.Errorf("P=%d: %d counters", P, len(r.PerCoreOps))
		}
		if P > 1 {
			if r.Traffic.Collectives[simmpi.KindAllreduce].Calls == 0 {
				t.Errorf("P=%d: no allreduce traffic", P)
			}
			if r.Traffic.Collectives[simmpi.KindAllgatherv].Calls == 0 {
				t.Errorf("P=%d: no allgather traffic", P)
			}
		}
	}
}

func TestRunHybridMatchesSerial(t *testing.T) {
	s := buildSys(t, 400, DefaultParams())
	serial := s.RunSerial()
	cases := []struct{ P, p int }{{1, 2}, {2, 2}, {2, 3}, {3, 2}}
	for _, tc := range cases {
		r, err := s.RunHybrid(tc.P, tc.p)
		if err != nil {
			t.Fatalf("P=%d p=%d: %v", tc.P, tc.p, err)
		}
		if math.Abs(r.Epol-serial.Epol)/math.Abs(serial.Epol) > 1e-12 {
			t.Errorf("P=%d p=%d: Epol %v vs serial %v", tc.P, tc.p, r.Epol, serial.Epol)
		}
		for i := range r.Born {
			if relDiff(r.Born[i], serial.Born[i]) > 1e-12 {
				t.Fatalf("P=%d p=%d: Born[%d] differs", tc.P, tc.p, i)
			}
		}
		if len(r.PerCoreOps) != tc.P*tc.p {
			t.Errorf("P=%d p=%d: %d counters", tc.P, tc.p, len(r.PerCoreOps))
		}
	}
}

func TestRunMPIWorkBalance(t *testing.T) {
	s := buildSys(t, 2000, DefaultParams())
	r, err := s.RunMPI(4)
	if err != nil {
		t.Fatal(err)
	}
	// Static node-based division should be roughly balanced on a uniform
	// globule: no rank more than 3× the lightest.
	lo, hi := int64(math.MaxInt64), int64(0)
	for _, ops := range r.PerCoreOps {
		if ops < lo {
			lo = ops
		}
		if ops > hi {
			hi = ops
		}
	}
	if hi > 3*lo {
		t.Errorf("imbalance: min %d max %d", lo, hi)
	}
}

func TestAtomDivisionEnergyVariesWithP(t *testing.T) {
	params := DefaultParams()
	params.Division = AtomNode
	s := buildSys(t, 600, params)
	// §IV: with atom-based division the error changes with the process
	// count (division boundaries split tree nodes); with node-based
	// division it does not. Also the result must stay close to serial.
	serial := s.RunSerial()
	energies := map[float64]bool{}
	for _, P := range []int{1, 2, 5} {
		r, err := s.RunMPI(P)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(r.Epol-serial.Epol) / math.Abs(serial.Epol); rel > 0.05 {
			t.Errorf("P=%d: atom division energy off by %v", P, rel)
		}
		energies[r.Epol] = true
	}
	if len(energies) < 2 {
		t.Error("atom-based division produced identical energies for all P — expected P-dependence")
	}
}

func TestNodeDivisionEnergyConstantAcrossP(t *testing.T) {
	s := buildSys(t, 600, DefaultParams())
	var first float64
	for i, P := range []int{1, 2, 5, 8} {
		r, err := s.RunMPI(P)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = r.Epol
			continue
		}
		// The approximation is P-invariant; only summation-order noise
		// (a few ulps) may differ.
		if relDiff(r.Epol, first) > 1e-13 {
			t.Errorf("P=%d: energy %v differs from P=1's %v (node division must be P-invariant)",
				P, r.Epol, first)
		}
	}
}

// For a fixed P the distributed run must be bit-deterministic: rank-ordered
// reductions leave no room for scheduling noise.
func TestRunMPIDeterministicAtFixedP(t *testing.T) {
	s := buildSys(t, 500, DefaultParams())
	a, err := s.RunMPI(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunMPI(3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Epol != b.Epol {
		t.Errorf("energy not deterministic: %v vs %v", a.Epol, b.Epol)
	}
	for i := range a.Born {
		if a.Born[i] != b.Born[i] {
			t.Fatalf("Born[%d] not deterministic", i)
		}
	}
}

func TestHybridUsesFewerRanksSameEnergy(t *testing.T) {
	s := buildSys(t, 800, DefaultParams())
	mpi, err := s.RunMPI(6)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := s.RunHybrid(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(mpi.Epol, hyb.Epol) > 1e-13 {
		t.Errorf("energies differ: %v vs %v", mpi.Epol, hyb.Epol)
	}
	// Collective payloads are volume-equal (the hybrid advantage is NIC
	// serialization, modeled in perf); the gathered vector is the full
	// radii set either way.
	mb := mpi.Traffic.Collectives[simmpi.KindAllgatherv].Bytes
	hb := hyb.Traffic.Collectives[simmpi.KindAllgatherv].Bytes
	if mb != hb {
		t.Errorf("gathered volumes differ: hybrid %d vs MPI %d", hb, mb)
	}
}

// relDiff is the symmetric relative difference used for cross-layout
// comparisons.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestRunDistributedValidation(t *testing.T) {
	s := buildSys(t, 200, DefaultParams())
	if _, err := s.RunMPI(0); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := s.RunHybrid(2, 0); err == nil {
		t.Error("p=0 accepted")
	}
}
