package gb

// GB/SA: MD packages pair the polar GB term with a nonpolar solvation
// term proportional to the exposed surface area. This file provides that
// pairing so a downstream user gets the full solvation free energy the
// paper's intro frames Epol inside ("polar part of free energy of
// hydration" — the SA term is the other part).

// DefaultSurfaceTension is the standard GB/SA surface-tension coefficient
// γ in kcal/(mol·Å²) (the 5.4 cal convention of Still-style SA terms).
const DefaultSurfaceTension = 0.0054

// NonpolarEnergy returns γ·SASA, the cavity/dispersion term of GB/SA, in
// kcal/mol.
func (s *System) NonpolarEnergy(gamma float64) float64 {
	return gamma * s.Surf.Area
}

// SolvationEnergy returns the total solvation free energy estimate
// Epol + γ·SASA for the given polar energy.
func (s *System) SolvationEnergy(epol, gamma float64) float64 {
	return epol + s.NonpolarEnergy(gamma)
}

// PerAtomNonpolar decomposes the nonpolar term by atom (γ × exposed
// area), aligning with PerAtomEpol for full per-atom solvation analysis.
func (s *System) PerAtomNonpolar(gamma float64) []float64 {
	areas := s.Surf.PerAtomArea(s.NumAtoms())
	for i := range areas {
		areas[i] *= gamma
	}
	return areas
}
