package gb

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

func TestRunMPIDynamicMatchesSerial(t *testing.T) {
	s := buildSys(t, 600, DefaultParams())
	serial := s.RunSerial()
	for _, P := range []int{2, 4, 7} {
		r, err := s.RunMPIDynamic(P)
		if err != nil {
			t.Fatalf("P=%d: %v", P, err)
		}
		if math.Abs(r.Epol-serial.Epol)/math.Abs(serial.Epol) > 1e-12 {
			t.Errorf("P=%d: Epol %v vs serial %v", P, r.Epol, serial.Epol)
		}
		for i := range r.Born {
			if relDiff(r.Born[i], serial.Born[i]) > 1e-12 {
				t.Fatalf("P=%d: Born[%d] differs", P, i)
			}
		}
		// The coordinator does no leaf work.
		if r.PerCoreOps[0] != 0 {
			t.Errorf("P=%d: coordinator did %d ops", P, r.PerCoreOps[0])
		}
		// All compute ranks worked.
		for rank := 1; rank < P; rank++ {
			if r.PerCoreOps[rank] == 0 {
				t.Errorf("P=%d: rank %d idle", P, rank)
			}
		}
		// The dynamic protocol generates point-to-point traffic.
		if r.Traffic.P2PMessages == 0 {
			t.Errorf("P=%d: no chunk-protocol traffic", P)
		}
	}
}

func TestRunMPIDynamicValidation(t *testing.T) {
	s := buildSys(t, 200, DefaultParams())
	if _, err := s.RunMPIDynamic(1); err == nil {
		t.Error("P=1 accepted (needs a coordinator + a worker)")
	}
}

// On a workload with skewed leaf costs — a dense globule plus a sparse
// distant helix, so some octree leaves interact with far more near
// neighbors than others — dynamic balancing should even out per-rank
// work better than static segments.
func TestRunMPIDynamicBalancesSkew(t *testing.T) {
	dense := molecule.Exactly(molecule.Globule("dense", 2200, 5), 2200, 5)
	sparse := molecule.Helix("sparse", 800, 6).ApplyTransform(
		geom.Translate(geom.V(60, 0, 0)))
	mol := molecule.Merge("skew", dense, sparse)
	surf, err := surface.Build(mol, surface.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(mol, surf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const computeRanks = 5
	static, err := sys.RunMPI(computeRanks)
	if err != nil {
		t.Fatal(err)
	}
	// Chunk assignment depends on request arrival order (goroutine
	// scheduling), so take the best of a few dynamic runs: the claim is
	// that on-demand chunks CAN balance a skewed workload better than
	// static segments ever do.
	var dynamic *Result
	for attempt := 0; attempt < 3; attempt++ {
		d, err := sys.RunMPIDynamic(computeRanks + 1) // + coordinator
		if err != nil {
			t.Fatal(err)
		}
		if dynamic == nil || imbalanceOf(d.PerCoreOps) < imbalanceOf(dynamic.PerCoreOps) {
			dynamic = d
		}
	}
	si := imbalanceOf(static.PerCoreOps)
	di := imbalanceOf(dynamic.PerCoreOps)
	if di >= si {
		t.Errorf("dynamic imbalance %.3f not below static %.3f", di, si)
	}
	if math.Abs(dynamic.Epol-static.Epol)/math.Abs(static.Epol) > 1e-12 {
		t.Errorf("energies differ: %v vs %v", dynamic.Epol, static.Epol)
	}
}

// imbalanceOf is max/mean over the non-idle cores.
func imbalanceOf(ops []int64) float64 {
	maxOps, sum := int64(0), int64(0)
	n := 0
	for _, o := range ops {
		if o == 0 {
			continue // coordinator
		}
		sum += o
		n++
		if o > maxOps {
			maxOps = o
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(maxOps) * float64(n) / float64(sum)
}

// R4 integral: octree must match the naive r4 evaluation within the
// ε band, and r4 radii must differ from r6 radii (they are different
// approximations).
func TestOctreeR4MatchesNaiveR4(t *testing.T) {
	params := DefaultParams()
	params.Integral = IntegralR4
	s := buildSys(t, 500, params)
	naive, _ := s.NaiveBornRadiiR4()
	oct, _ := s.BornRadii()
	worst := 0.0
	for i := range naive {
		if rel := math.Abs(oct[i]-naive[i]) / naive[i]; rel > worst {
			worst = rel
		}
	}
	if worst > 0.05 {
		t.Errorf("worst r4 octree error %v", worst)
	}
	// r4 and r6 differ.
	r6params := DefaultParams()
	s6 := buildSys(t, 500, r6params)
	r6, _ := s6.BornRadii()
	same := true
	for i := range oct {
		if math.Abs(oct[i]-r6[i]) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Error("r4 and r6 radii identical — Integral knob inert")
	}
}

// The Coulomb-field r⁴ form is exact for an isolated sphere too, but for
// buried atoms it systematically OVERestimates Born radii — the Grycuk
// deficiency that motivates the paper's r⁶ form. Verify the direction on
// a globule.
func TestR4OverestimatesBuriedRadii(t *testing.T) {
	s := buildSys(t, 800, DefaultParams())
	r6, _ := s.NaiveBornRadiiR6()
	r4, _ := s.NaiveBornRadiiR4()
	higher := 0
	for i := range r6 {
		if r4[i] >= r6[i] {
			higher++
		}
	}
	if higher < len(r6)*3/4 {
		t.Errorf("r4 radii above r6 for only %d/%d atoms", higher, len(r6))
	}
}
