package gb

import (
	"errors"
	"fmt"
	"math"
	"time"

	"gbpolar/internal/fault"
	"gbpolar/internal/simmpi"
)

// This file holds the fault-tolerance policy layer the distributed
// drivers share. The runtime half lives in internal/simmpi (deadlock-free
// collectives over the live set, health view, error returns); this half
// turns those primitives into *self-healing*:
//
//   - agreeLost: survivors agree on one identical lost-rank set through a
//     Max-allreduce of crash-observation bitmasks, so every recovery
//     decision below is derived from agreed data and all live ranks take
//     the same control-flow branch (no divergence, no deadlock);
//   - liveShare: work partitioning over the agreed live set, with
//     straggler ranks down-weighted (straggler detection with work
//     re-assignment: a slowed rank gets half a share, its siblings absorb
//     the difference);
//   - heal-by-redo: each driver phase runs in a loop — compute the share,
//     run the phase collective, re-agree; if the lost set changed during
//     the phase, the iteration's result is discarded and the phase redone
//     over the shrunk live set. Discard-and-redo makes double-counting
//     impossible: a result is only accepted when no rank died between the
//     partition decision and the post-phase agreement;
//   - sendRetry: bounded retry with exponential backoff for dropped
//     point-to-point messages (the backoff is modeled, not slept, and
//     priced by internal/perf);
//   - degradedBound: a rigorous upper bound on the |Epol| mass of the
//     pair terms anchored at a lost rank's atoms, used by the Degrade
//     policy to return a partial energy with an honest error bar instead
//     of paying for a full phase redo.
//
// The degraded bound is honest because of two monotonicity facts: the
// clamp in bornRadiusFromIntegral guarantees every realized Born radius
// R_i ≥ ρ_i (the intrinsic radius), and f_GB(r; R_iR_j) is increasing in
// R_iR_j (d/da[a·e^{−r²/4a}] = e^{−u}(1+u) > 0 with u = r²/4a), so
// 1/f_GB evaluated at intrinsic radii dominates the magnitude of any
// realized pair term. Summing |q_i q_j|/f_GB(r²; ρ_iρ_j) over the missing
// ordered pairs therefore upper-bounds the missing energy mass,
// whatever radii the lost rank would have produced.

// FaultPolicy selects how a driver responds to ranks lost mid-run.
type FaultPolicy int

const (
	// Recover re-assigns lost work to the surviving ranks and redoes the
	// affected phase until the result is complete: the returned Epol is a
	// full-accuracy answer computed by fewer ranks.
	Recover FaultPolicy = iota
	// Degrade accepts the partial energy when ranks die during the final
	// energy phase and reports an explicit ErrorBound with Degraded set on
	// the Result. The cheap prerequisite phases (integrals, Born radii)
	// are still healed — without complete radii no honest bound on the
	// energy is possible.
	Degrade
)

func (p FaultPolicy) String() string {
	if p == Degrade {
		return "degrade"
	}
	return "recover"
}

// FaultConfig configures fault injection and recovery for a distributed
// run. The zero/nil config means no injection and seed-identical
// behavior.
type FaultConfig struct {
	// Plan is the injected fault schedule; nil or empty disables the
	// fault-tolerance protocol entirely (bitwise-identical results to the
	// fault-free driver).
	Plan *fault.Plan
	// Policy selects Recover (default) or Degrade.
	Policy FaultPolicy
	// MaxRetries bounds re-sends of a dropped message (default 3).
	MaxRetries int
	// BaseBackoff is the first retry's modeled backoff, doubled per
	// attempt (default 50µs).
	BaseBackoff time.Duration
	// ForceProtocol runs the fault-tolerance protocol (the agreement
	// rounds and ft collectives) even with an empty Plan. A run resumed
	// from a checkpoint executes the ft protocol, so an uninterrupted
	// reference run must too for its op sequence and counter-side Summary
	// to be comparable — the resume-identity tests set this on both sides.
	ForceProtocol bool
}

// active reports whether the fault-tolerance protocol should run.
func (cfg *FaultConfig) active() bool {
	return cfg != nil && (!cfg.Plan.Empty() || cfg.ForceProtocol)
}

func (cfg *FaultConfig) plan() *fault.Plan {
	if cfg == nil {
		return nil
	}
	return cfg.Plan
}

func (cfg *FaultConfig) maxRetries() int {
	if cfg == nil || cfg.MaxRetries <= 0 {
		return 3
	}
	return cfg.MaxRetries
}

func (cfg *FaultConfig) baseBackoff() time.Duration {
	if cfg == nil || cfg.BaseBackoff <= 0 {
		return 50 * time.Microsecond
	}
	return cfg.BaseBackoff
}

// sendRetry sends with bounded retry and exponential backoff on injected
// drops. The backoff is recorded in the traffic stats (modeled recovery
// cost), not slept. Non-drop errors (dead peer, abort) return
// immediately — retrying those cannot succeed.
func sendRetry(c *simmpi.Comm, to int, data []float64, cfg *FaultConfig) error {
	backoff := cfg.baseBackoff()
	for attempt := 0; ; attempt++ {
		err := c.Send(to, data)
		if !errors.Is(err, simmpi.ErrDropped) {
			return err
		}
		if attempt >= cfg.maxRetries() {
			return fmt.Errorf("gb: send to rank %d still dropped after %d retries: %w",
				to, cfg.maxRetries(), err)
		}
		c.RecordRetry(backoff)
		backoff *= 2
	}
}

// agreeLost produces one lost-rank set identical on every live rank: a
// Max-allreduce over per-rank crash-observation bitmasks. Local health
// views may lag (a crash is visible to some survivors before others);
// the union is what everyone commits to. A rank dying *during* this
// collective may be missing from the agreed set — that staleness is safe
// because every phase re-agrees after its collective and discards
// iterations whose membership changed.
func agreeLost(c *simmpi.Comm) ([]int, error) {
	mask := make([]float64, c.Size())
	for r := 0; r < c.Size(); r++ {
		if !c.Alive(r) {
			mask[r] = 1
		}
	}
	out, err := c.Allreduce(mask, simmpi.Max)
	if err != nil {
		return nil, err
	}
	lost := make([]int, 0, len(out))
	for r, v := range out {
		if v > 0 {
			lost = append(lost, r)
		}
	}
	return lost, nil
}

// liveRanksOf returns the ranks of a P-rank world not in the agreed lost
// set (which is sorted, as agreeLost produces it).
func liveRanksOf(P int, lost []int) []int {
	live := make([]int, 0, P-len(lost))
	j := 0
	for r := 0; r < P; r++ {
		if j < len(lost) && lost[j] == r {
			j++
			continue
		}
		live = append(live, r)
	}
	return live
}

// liveShare partitions n work items over the agreed live ranks and
// returns rank's half-open share. Straggler ranks (known from the fault
// plan via the health view) carry half weight, so detected-slow ranks
// shed work onto their healthy siblings. Deterministic in its inputs:
// every rank computes every other rank's share identically.
func liveShare(n int, live, stragglers []int, rank int) (lo, hi int) {
	slow := make(map[int]bool, len(stragglers))
	for _, r := range stragglers {
		slow[r] = true
	}
	weight := func(r int) int {
		if slow[r] {
			return 1
		}
		return 2
	}
	total := 0
	for _, r := range live {
		total += weight(r)
	}
	if total == 0 {
		return 0, 0
	}
	cum := 0
	for _, r := range live {
		next := cum + weight(r)
		if r == rank {
			return n * cum / total, n * next / total
		}
		cum = next
	}
	return 0, 0 // rank not in the live set: empty share
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// boundSlack pads the rigorous missing-pair bound for floating-point
// summation-order differences between the partial and the serial
// evaluation.
const boundSlack = 1.25

// degradedBound upper-bounds the |Epol| mass of every ordered pair term
// anchored at the given atoms (the V-side terms a lost rank's share would
// have produced): 0.5·τ·C·Σ_{v}[q_v²/ρ_v + Σ_{j≠v}|q_j q_v|/f_GB(r²;
// ρ_jρ_v)], evaluated at intrinsic radii ρ (see the monotonicity argument
// at the top of this file). O(|atoms|·N) — the price of an honest bound.
func (s *System) degradedBound(atoms []int32) float64 {
	sum := 0.0
	for _, v := range atoms {
		qv := math.Abs(s.Mol.Atoms[v].Charge)
		pv := s.atomPos[v]
		rhoV := s.Mol.Atoms[v].Radius
		sum += qv * qv / rhoV
		for j := range s.Mol.Atoms {
			if int32(j) == v {
				continue
			}
			r2 := pv.Dist2(s.atomPos[j])
			sum += qv * math.Abs(s.Mol.Atoms[j].Charge) *
				invFGB(r2, rhoV*s.Mol.Atoms[j].Radius)
		}
	}
	return boundSlack * 0.5 * Tau(s.Params.EpsSolvent) * CoulombKcal * sum
}

// shareAtomsNodeNode lists the atoms inside the atom-leaf range
// [lo, hi) of s.aLeaves — the V-side atoms of a NodeNode energy share.
func (s *System) shareAtomsNodeNode(lo, hi int) []int32 {
	out := make([]int32, 0, (hi-lo)*s.Params.LeafAtoms)
	for _, v := range s.aLeaves[lo:hi] {
		out = append(out, s.TA.ItemsOf(v)...)
	}
	return out
}

// shareAtomsAtomNode lists the atoms of the octree-position range
// [lo, hi) — the V-side atoms of an AtomNode energy share.
func (s *System) shareAtomsAtomNode(lo, hi int) []int32 {
	return s.TA.Items[lo:hi]
}
