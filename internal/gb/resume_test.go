package gb

import (
	"strings"
	"sync"
	"testing"

	"gbpolar/internal/fault"
	"gbpolar/internal/obs"
)

// memSink collects encoded checkpoints in memory, in save order.
type memSink struct {
	mu    sync.Mutex
	saves []struct {
		phase CheckpointPhase
		data  []byte
	}
}

func (k *memSink) Save(phase CheckpointPhase, encoded []byte) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.saves = append(k.saves, struct {
		phase CheckpointPhase
		data  []byte
	}{phase, append([]byte(nil), encoded...)})
	return nil
}

// latest decodes the highest-phase checkpoint saved.
func (k *memSink) latest(t *testing.T) *Checkpoint {
	t.Helper()
	k.mu.Lock()
	defer k.mu.Unlock()
	var best *Checkpoint
	for _, s := range k.saves {
		ck, err := DecodeCheckpoint(s.data)
		if err != nil {
			t.Fatalf("decoding saved %s checkpoint: %v", s.phase, err)
		}
		if best == nil || ck.Phase > best.Phase {
			best = ck
		}
	}
	if best == nil {
		t.Fatal("no checkpoint was saved")
	}
	return best
}

func (k *memSink) phases() []CheckpointPhase {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]CheckpointPhase, 0, len(k.saves))
	for _, s := range k.saves {
		out = append(out, s.phase)
	}
	return out
}

// crashAllAt builds a plan crashing every rank of a P-rank world at op.
func crashAllAt(P int, op int64) *fault.Plan {
	pl := &fault.Plan{}
	for r := 0; r < P; r++ {
		pl.Events = append(pl.Events, fault.Event{Kind: fault.Crash, Rank: r, AtOp: op})
	}
	return pl
}

// runResumeIdentity is the tentpole acceptance scenario at one kill
// point: run A uninterrupted (forced ft protocol so its op and counter
// structure matches a resumed run's), run B1 killed on every rank at
// killOp, run B2 resumed from B1's last checkpoint on a fresh recorder.
// B2's Epol and Born must be bitwise A's, and B2's counter-side Summary
// byte-identical to A's.
func runResumeIdentity(t *testing.T, killOp int64, wantPhase CheckpointPhase) {
	t.Helper()
	const P = 4
	s := buildSys(t, 300, DefaultParams())

	recA := obs.NewRecorder(nil)
	sinkA := &memSink{}
	resA, err := s.Run(RunSpec{
		Processes:  P,
		Faults:     &FaultConfig{ForceProtocol: true},
		Obs:        recA,
		Checkpoint: sinkA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sinkA.phases(); len(got) != 4 {
		t.Fatalf("uninterrupted run saved phases %v, want all four", got)
	}

	recB1 := obs.NewRecorder(nil)
	sinkB1 := &memSink{}
	_, err = s.Run(RunSpec{
		Processes:  P,
		Faults:     &FaultConfig{Plan: crashAllAt(P, killOp)},
		Obs:        recB1,
		Checkpoint: sinkB1,
	})
	if err == nil {
		t.Fatal("killing every rank should fail the run")
	}
	if !strings.Contains(err.Error(), "no rank survived") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
	ck := sinkB1.latest(t)
	if ck.Phase != wantPhase {
		t.Fatalf("last checkpoint at phase %s, want %s", ck.Phase, wantPhase)
	}
	if len(ck.Live) != P || len(ck.Lost) != 0 {
		t.Fatalf("checkpoint membership Live=%v Lost=%v, want all %d live", ck.Live, ck.Lost, P)
	}

	recB2 := obs.NewRecorder(nil)
	resB2, err := s.Run(RunSpec{
		Processes: P,
		Faults:    &FaultConfig{ForceProtocol: true},
		Obs:       recB2,
		Resume:    ck,
	})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}

	if resB2.Epol != resA.Epol {
		t.Errorf("resumed Epol %v != uninterrupted %v", resB2.Epol, resA.Epol)
	}
	for i := range resA.Born {
		if resB2.Born[i] != resA.Born[i] {
			t.Fatalf("resumed Born[%d] differs: %v vs %v", i, resB2.Born[i], resA.Born[i])
		}
	}
	if resB2.Degraded || resB2.Recovered {
		t.Errorf("clean resume set fault flags: %+v", resB2)
	}
	if got, want := recB2.Summary(), recA.Summary(); got != want {
		t.Errorf("resumed Summary differs from uninterrupted:\n--- resumed\n%s--- uninterrupted\n%s", got, want)
	}
}

func TestResumeAfterEnergyPhaseKill(t *testing.T) {
	// Every rank dies at op 7 (the energy-phase tick): the aggregates
	// checkpoint is the last one on disk.
	runResumeIdentity(t, 7, PhaseAggregates)
}

func TestResumeAfterRadiiPhaseKill(t *testing.T) {
	// Every rank dies at op 4 (the radii-phase tick): only the integral
	// checkpoint exists, and the resumed run redoes radii + energy.
	runResumeIdentity(t, 4, PhaseIntegrals)
}

func TestCheckpointSinkIsNeutral(t *testing.T) {
	// A sink must not perturb the run: same Epol, Born, and Summary with
	// and without one, both on the seed protocol and the forced ft
	// protocol.
	s := buildSys(t, 300, DefaultParams())
	for _, ft := range []bool{false, true} {
		var cfg, cfg2 *FaultConfig
		if ft {
			cfg = &FaultConfig{ForceProtocol: true}
			cfg2 = &FaultConfig{ForceProtocol: true}
		}
		recPlain := obs.NewRecorder(nil)
		plain, err := s.Run(RunSpec{Processes: 3, Faults: cfg, Obs: recPlain})
		if err != nil {
			t.Fatal(err)
		}
		recSink := obs.NewRecorder(nil)
		sink := &memSink{}
		withSink, err := s.Run(RunSpec{Processes: 3, Faults: cfg2, Obs: recSink, Checkpoint: sink})
		if err != nil {
			t.Fatal(err)
		}
		if withSink.Epol != plain.Epol {
			t.Errorf("ft=%v: sink changed Epol: %v vs %v", ft, withSink.Epol, plain.Epol)
		}
		for i := range plain.Born {
			if withSink.Born[i] != plain.Born[i] {
				t.Fatalf("ft=%v: sink changed Born[%d]", ft, i)
			}
		}
		if got, want := recSink.Summary(), recPlain.Summary(); got != want {
			t.Errorf("ft=%v: sink changed the Summary:\n--- with sink\n%s--- without\n%s", ft, got, want)
		}
		if got := sink.phases(); len(got) != 4 {
			t.Errorf("ft=%v: saved phases %v, want all four", ft, got)
		}
	}
}

func TestResumeFromFinishedRun(t *testing.T) {
	// A PhaseEpol checkpoint reconstructs the Result directly.
	s := buildSys(t, 300, DefaultParams())
	sink := &memSink{}
	resA, err := s.Run(RunSpec{Processes: 3, Checkpoint: sink})
	if err != nil {
		t.Fatal(err)
	}
	ck := sink.latest(t)
	if ck.Phase != PhaseEpol {
		t.Fatalf("latest phase %s, want epol", ck.Phase)
	}
	resB, err := s.Run(RunSpec{Processes: 3, Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Epol != resA.Epol {
		t.Errorf("Epol %v != %v", resB.Epol, resA.Epol)
	}
	for i := range resA.Born {
		if resB.Born[i] != resA.Born[i] {
			t.Fatalf("Born[%d] differs", i)
		}
	}
}

func TestCheckpointCodecRejectsDamage(t *testing.T) {
	s := buildSys(t, 300, DefaultParams())
	sink := &memSink{}
	if _, err := s.Run(RunSpec{Processes: 2, Checkpoint: sink}); err != nil {
		t.Fatal(err)
	}
	enc := sink.saves[0].data

	if _, err := DecodeCheckpoint(enc); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	// Re-encoding the decoded snapshot must reproduce the bytes — the
	// deterministic-serialization property the gblint corpus pins.
	ck, _ := DecodeCheckpoint(enc)
	if got := ck.Encode(); string(got) != string(enc) {
		t.Error("re-encoded checkpoint differs from original bytes")
	}

	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/2] ^= 0x10
	if _, err := DecodeCheckpoint(flipped); err == nil {
		t.Error("bit-flipped checkpoint decoded without error")
	}
	if _, err := DecodeCheckpoint(enc[:len(enc)-3]); err == nil {
		t.Error("truncated checkpoint decoded without error")
	}
	if _, err := DecodeCheckpoint([]byte("not a checkpoint at all")); err == nil {
		t.Error("garbage decoded without error")
	}
}

func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	// A snapshot from a different workload must be refused by the config
	// tag, but an ε-relaxed copy of the same system must accept it.
	s1 := buildSys(t, 300, DefaultParams())
	s2 := buildSys(t, 400, DefaultParams())
	sink := &memSink{}
	if _, err := s1.Run(RunSpec{Processes: 2, Checkpoint: sink}); err != nil {
		t.Fatal(err)
	}
	ck := sink.latest(t)
	if _, err := s2.Run(RunSpec{Processes: 2, Resume: ck}); err == nil {
		t.Error("foreign checkpoint accepted")
	}
	if _, err := s1.WithRelaxedEps(1.5).Run(RunSpec{Processes: 2, Resume: ck}); err != nil {
		t.Errorf("ε-relaxed resume of own checkpoint refused: %v", err)
	}
	if _, err := s1.Run(RunSpec{Resume: ck}); err == nil {
		t.Error("non-distributed resume accepted")
	}
}

func TestResumeRejectsLooserCheckpoint(t *testing.T) {
	// ε acceptance is one-directional. A snapshot saved under relaxed ε
	// (a shed or relax-rung run) must NOT resume a full-accuracy system:
	// its phase data carries the relaxed error, but the resumed run would
	// report itself non-degraded — exactly the laundering the soak
	// harness caught. The same snapshot stays valid for an equally
	// relaxed system, and a v1 snapshot (ε unrecorded) is grandfathered.
	s := buildSys(t, 300, DefaultParams())
	relaxed := s.WithRelaxedEps(1.5)
	sink := &memSink{}
	if _, err := relaxed.Run(RunSpec{Processes: 2, Checkpoint: sink}); err != nil {
		t.Fatal(err)
	}
	ck := sink.latest(t)
	if ck.EpsEpol != relaxed.Params.EpsEpol || ck.EpsBorn != relaxed.Params.EpsBorn {
		t.Fatalf("snapshot records ε (born %g, epol %g), want the relaxed system's (born %g, epol %g)",
			ck.EpsBorn, ck.EpsEpol, relaxed.Params.EpsBorn, relaxed.Params.EpsEpol)
	}

	_, err := s.Run(RunSpec{Processes: 2, Resume: ck})
	if err == nil {
		t.Fatal("full-accuracy run resumed a relaxed snapshot")
	}
	if !strings.Contains(err.Error(), "looser") {
		t.Errorf("rejection should name the looser ε, got: %v", err)
	}
	if err := s.CanResume(ck); err == nil {
		t.Error("CanResume accepted the relaxed snapshot for the tight system")
	}

	if _, err := relaxed.Run(RunSpec{Processes: 2, Resume: ck}); err != nil {
		t.Errorf("equally relaxed resume refused: %v", err)
	}

	// A v1-era snapshot decodes with zero ε: the direction check is
	// skipped rather than refusing every legacy store.
	legacy := *ck
	legacy.EpsBorn, legacy.EpsEpol = 0, 0
	if err := s.CanResume(&legacy); err != nil {
		t.Errorf("ε-unrecorded snapshot refused: %v", err)
	}
}
