package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamBasics(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.N() != 0 {
		t.Error("empty stream not zero-valued")
	}
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Std()-2) > 1e-12 { // classic example: σ = 2
		t.Errorf("Std = %v", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("extrema = %v, %v", s.Min(), s.Max())
	}
	if math.Abs(s.SampleVar()-32.0/7) > 1e-12 {
		t.Errorf("SampleVar = %v", s.SampleVar())
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

// Welford must agree with the two-pass formula on random data.
func TestStreamMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*37 + 11
	}
	mean, std := MeanStd(xs)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	m := sum / float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	v /= float64(len(xs))
	if math.Abs(mean-m) > 1e-9 || math.Abs(std-math.Sqrt(v)) > 1e-9 {
		t.Errorf("welford (%v, %v) vs two-pass (%v, %v)", mean, std, m, math.Sqrt(v))
	}
}

// Welford stays accurate with a huge offset (the case naive Σx² loses).
func TestStreamNumericalStability(t *testing.T) {
	var s Stream
	const offset = 1e9
	for _, x := range []float64{offset + 1, offset + 2, offset + 3} {
		s.Add(x)
	}
	if math.Abs(s.Mean()-(offset+2)) > 1e-6 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Var()-2.0/3) > 1e-6 {
		t.Errorf("Var = %v", s.Var())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
	if Percentile([]float64{42}, 50) != 42 {
		t.Error("singleton percentile")
	}
}

// Percentile must not mutate its input and must be monotone in p.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = math.Mod(x, 1e6)
		}
		orig := append([]float64(nil), xs...)
		a := math.Mod(math.Abs(aRaw), 100)
		b := math.Mod(math.Abs(bRaw), 100)
		if a > b {
			a, b = b, a
		}
		pa, pb := Percentile(xs, a), Percentile(xs, b)
		for i := range xs {
			if xs[i] != orig[i] {
				return false
			}
		}
		return pa <= pb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	counts, lo, width := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(counts) != 5 || lo != 0 || math.Abs(width-1.8) > 1e-12 {
		t.Fatalf("hist = %v lo=%v w=%v", counts, lo, width)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram loses samples: %v", counts)
	}
	// Degenerate cases.
	if c, _, _ := Histogram(nil, 4); c != nil {
		t.Error("empty histogram not nil")
	}
	c, _, w := Histogram([]float64{5, 5, 5}, 4)
	if len(c) != 1 || c[0] != 3 || w != 0 {
		t.Errorf("constant histogram = %v w=%v", c, w)
	}
}
