// Package stats provides the small statistical toolkit the benchmark
// harness reports with: streaming (Welford) moments, min/max, and
// percentiles over run samples — the quantities behind the paper's
// "minimum and maximum running times" (Fig. 6) and "avg ± std" error
// bands (Fig. 10).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates moments online (Welford's algorithm): numerically
// stable single-pass mean/variance plus extrema.
type Stream struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add feeds one sample.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll feeds a slice of samples.
func (s *Stream) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the sample count.
func (s *Stream) N() int64 { return s.n }

// Mean returns the running mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the population variance.
func (s *Stream) Var() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// SampleVar returns the unbiased (n−1) variance.
func (s *Stream) SampleVar() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the population standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Min and Max return the extrema (0 for an empty stream).
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the maximum sample.
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// String renders a compact summary.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.Std(), s.Min(), s.Max())
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	var s Stream
	s.AddAll(xs)
	return s.Mean(), s.Std()
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs by linear
// interpolation between order statistics. It copies and sorts; empty
// input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram bins xs into `bins` equal-width buckets over [min, max] and
// returns the bucket counts plus the bucket width. Degenerate input (all
// equal, or bins < 1) yields a single full bucket.
func Histogram(xs []float64, bins int) (counts []int, lo, width float64) {
	if len(xs) == 0 || bins < 1 {
		return nil, 0, 0
	}
	var s Stream
	s.AddAll(xs)
	lo = s.Min()
	span := s.Max() - lo
	if span == 0 {
		return []int{len(xs)}, lo, 0
	}
	counts = make([]int, bins)
	width = span / float64(bins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts, lo, width
}
