package fs

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Kind is the type of one injected storage fault.
type Kind uint8

const (
	// ENOSPC fails Count write operations starting at write op AtOp with
	// syscall.ENOSPC: the bytes are not written.
	ENOSPC Kind = iota
	// ShortWrite persists only Cut bytes of each affected write and
	// returns an error for the rest (the os.File contract: an error
	// whenever n < len(p)). Cut < 0 means half the buffer.
	ShortWrite
	// TornWrite reports each affected write as fully successful, but
	// only the first Cut bytes of it survive a simulated crash — the
	// classic partial-page/torn-sector failure, visible only through
	// FaultFS.Crash. Cut < 0 means half the buffer.
	TornWrite
	// SyncError fails Count fsync operations starting at sync op AtOp;
	// the data stays volatile (dropped by a crash) and the caller knows.
	SyncError
	// SyncLie acks Count fsync operations WITHOUT making the data
	// durable: the caller proceeds believing the data safe, and a
	// simulated crash drops it. FaultFS records the lied-to paths so a
	// harness can prove which acknowledged losses trace to the lie.
	SyncLie
	// CorruptRead flips one deterministic bit in the data returned by
	// Count ReadFile operations starting at read op AtOp. The on-disk
	// content is intact — this models a bad cable/DMA/bitrot read path,
	// and tests that every reader checksums what it trusts.
	CorruptRead
	// SlowIO stalls every filesystem operation in [AtOp, AtOp+Count) of
	// the global op counter by Dur each (real sleep capped so tests stay
	// fast, like the network Delay kind).
	SlowIO
)

func (k Kind) String() string {
	switch k {
	case ENOSPC:
		return "enospc"
	case ShortWrite:
		return "shortw"
	case TornWrite:
		return "torn"
	case SyncError:
		return "syncerr"
	case SyncLie:
		return "synclie"
	case CorruptRead:
		return "corrupt"
	case SlowIO:
		return "slow"
	}
	return "unknown"
}

// Event is one injected storage fault. Which per-FS operation counter
// AtOp indexes depends on the kind: write ops for ENOSPC/ShortWrite/
// TornWrite, sync ops for SyncError/SyncLie, ReadFile ops for
// CorruptRead, and the global op counter for SlowIO.
type Event struct {
	Kind Kind
	// Cut is the surviving byte count of a short or torn write; -1 (or
	// any negative) means half the affected buffer. Ignored otherwise.
	Cut int
	// AtOp is the first affected operation index.
	AtOp int64
	// Count is the number of affected operations; values < 1 mean 1.
	Count int64
	// Dur is the injected per-operation latency (SlowIO only).
	Dur time.Duration
}

// Plan is a replayable storage-fault schedule.
type Plan struct {
	// Seed records the chaos-generator seed the plan came from (0 for
	// hand-written plans); provenance only.
	Seed   int64
	Events []Event
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// The textual plan format, one comma-separated token per event, in the
// shape of the network grammar (kind[:cut]@OP[+N][~DUR]). The rank slot
// of the network grammar carries the surviving byte count of the
// partial-write kinds instead — a disk has no rank:
//
//	enospc@OP+N        N writes from write-op OP fail with ENOSPC
//	shortw:K@OP+N      matching writes persist only K bytes, then error
//	torn:K@OP+N        matching writes ack fully; only K bytes survive Crash
//	syncerr@OP+N       N fsyncs from sync-op OP fail (data stays volatile)
//	synclie@OP+N       N fsyncs ack without persisting (dropped on Crash)
//	corrupt@OP+N       N reads from read-op OP come back with a flipped bit
//	slow@OP+N~DUR      every op in [OP,OP+N) of the global counter stalls DUR
//
// Example: "enospc@2+1,torn:40@5,syncerr@0+2,slow@0+8~200us". This is
// the syntax of cmd/gbsoak's -disk-faults flag and the round-trip
// target of String. Omitting :K on shortw/torn cuts at half the buffer.

// String renders the plan in the textual format accepted by Parse.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, 0, len(p.Events))
	for _, ev := range p.Events {
		parts = append(parts, ev.String())
	}
	return strings.Join(parts, ",")
}

// String renders one event token.
func (e Event) String() string {
	count := e.Count
	if count < 1 {
		count = 1
	}
	head := e.Kind.String()
	if (e.Kind == ShortWrite || e.Kind == TornWrite) && e.Cut >= 0 {
		head = fmt.Sprintf("%s:%d", head, e.Cut)
	}
	s := fmt.Sprintf("%s@%d+%d", head, e.AtOp, count)
	if e.Kind == SlowIO {
		s += "~" + e.Dur.String()
	}
	return s
}

// Parse reads a plan from the textual format. An empty string yields an
// empty plan; duplicate (kind, op) pairs are rejected as almost-always
// typos, mirroring fault.Parse.
func Parse(s string) (*Plan, error) {
	p := &Plan{}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	type planKey struct {
		kind Kind
		atOp int64
	}
	seen := make(map[planKey]string)
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		ev, err := parseEvent(tok)
		if err != nil {
			return nil, err
		}
		key := planKey{kind: ev.Kind, atOp: ev.AtOp}
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("fault/fs: duplicate %s plan at op %d: %q conflicts with earlier %q",
				ev.Kind, ev.AtOp, tok, prev)
		}
		seen[key] = tok
		p.Events = append(p.Events, ev)
	}
	return p, nil
}

func parseEvent(tok string) (Event, error) {
	ev := Event{Cut: -1, Count: 1}
	head := tok
	if h, durStr, ok := strings.Cut(head, "~"); ok {
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return Event{}, fmt.Errorf("fault/fs: bad duration %q in token %q: %v", durStr, tok, err)
		}
		ev.Dur = d
		head = h
	}
	kindPart, opStr, ok := strings.Cut(head, "@")
	if !ok {
		return Event{}, fmt.Errorf("fault/fs: missing @op in token %q", tok)
	}
	if opPart, countStr, hasCount := strings.Cut(opStr, "+"); hasCount {
		n, err := strconv.ParseInt(countStr, 10, 64)
		if err != nil || n < 1 {
			return Event{}, fmt.Errorf("fault/fs: bad count %q in token %q (want an integer >= 1)", countStr, tok)
		}
		ev.Count = n
		opStr = opPart
	}
	op, err := strconv.ParseInt(opStr, 10, 64)
	if err != nil || op < 0 {
		return Event{}, fmt.Errorf("fault/fs: bad op index %q in token %q (want an integer >= 0)", opStr, tok)
	}
	ev.AtOp = op

	kindStr, cutStr, hasCut := strings.Cut(kindPart, ":")
	switch kindStr {
	case "enospc":
		ev.Kind = ENOSPC
	case "shortw":
		ev.Kind = ShortWrite
	case "torn":
		ev.Kind = TornWrite
	case "syncerr":
		ev.Kind = SyncError
	case "synclie":
		ev.Kind = SyncLie
	case "corrupt":
		ev.Kind = CorruptRead
	case "slow":
		ev.Kind = SlowIO
	default:
		return Event{}, fmt.Errorf("fault/fs: unknown event kind %q in token %q (want enospc, shortw, torn, syncerr, synclie, corrupt, or slow)", kindStr, tok)
	}
	if hasCut {
		if ev.Kind != ShortWrite && ev.Kind != TornWrite {
			return Event{}, fmt.Errorf("fault/fs: byte cut %q not valid for %s in token %q", ":"+cutStr, ev.Kind, tok)
		}
		cut, err := strconv.Atoi(cutStr)
		if err != nil || cut < 0 {
			return Event{}, fmt.Errorf("fault/fs: bad byte cut %q in token %q (want an integer >= 0)", cutStr, tok)
		}
		ev.Cut = cut
	}
	if ev.Kind == SlowIO && ev.Dur <= 0 {
		return Event{}, fmt.Errorf("fault/fs: slow event needs a ~duration in token %q", tok)
	}
	if ev.Kind != SlowIO && ev.Dur != 0 {
		return Event{}, fmt.Errorf("fault/fs: duration %q only valid for slow in token %q", ev.Dur, tok)
	}
	return ev, nil
}

// Chaos generates a random-but-reproducible plan of n events across all
// seven kinds. Like fault.Chaos it biases toward recoverable windows:
// short count-bounded bursts early in each counter's life, so a retry
// discipline (DirStore's re-save, supervise's ladder) can earn its keep
// instead of the disk being uniformly dead.
func Chaos(seed int64, n int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	type planKey struct {
		kind Kind
		atOp int64
	}
	seen := make(map[planKey]bool)
	// The (kind, op) space is ~80 slots; bound the re-roll loop so an
	// oversized n degrades to a shorter plan instead of spinning.
	attempts := 0
	for i := 0; i < n && attempts < 64*n+1024; i++ {
		attempts++
		kind := Kind(rng.Intn(7))
		ev := Event{Kind: kind, Cut: -1}
		switch kind {
		case ENOSPC:
			ev.AtOp = int64(rng.Intn(12))
			ev.Count = int64(1 + rng.Intn(2))
		case ShortWrite:
			ev.AtOp = int64(rng.Intn(12))
			ev.Count = 1
			ev.Cut = rng.Intn(64)
		case TornWrite:
			ev.AtOp = int64(rng.Intn(12))
			ev.Count = 1
			ev.Cut = rng.Intn(64)
		case SyncError:
			ev.AtOp = int64(rng.Intn(8))
			ev.Count = int64(1 + rng.Intn(2))
		case SyncLie:
			ev.AtOp = int64(rng.Intn(8))
			ev.Count = 1
		case CorruptRead:
			ev.AtOp = int64(rng.Intn(10))
			ev.Count = int64(1 + rng.Intn(2))
		case SlowIO:
			ev.AtOp = int64(rng.Intn(6))
			ev.Count = int64(4 + rng.Intn(12))
			ev.Dur = time.Duration(20+rng.Intn(200)) * time.Microsecond
		}
		// Parse rejects duplicate (kind, op) pairs, so the generator
		// must not emit them: re-roll the colliding slot. The extra rng
		// draw is itself deterministic, so replay still holds.
		if seen[planKey{kind: ev.Kind, atOp: ev.AtOp}] {
			i--
			continue
		}
		seen[planKey{kind: ev.Kind, atOp: ev.AtOp}] = true
		p.Events = append(p.Events, ev)
	}
	return p
}
