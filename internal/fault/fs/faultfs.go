package fs

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

// maxSlowSleep caps the real sleep a SlowIO event injects per operation
// so a mis-typed plan cannot stall a test run; the plan's Dur is still
// what String reports.
const maxSlowSleep = time.Millisecond

// Stats counts operations seen and faults injected by a FaultFS. The
// totals let a test assert a plan actually fired (a plan whose ops all
// land past the workload's counters injects nothing — silent vacuity).
type Stats struct {
	// Operation totals per counter class.
	Writes int64
	Syncs  int64
	Reads  int64
	Ops    int64
	// Injection counts per kind.
	Enospc       int64
	ShortWrites  int64
	TornWrites   int64
	SyncErrors   int64
	SyncLies     int64
	CorruptReads int64
	SlowOps      int64
}

// memFile is one file of the in-memory disk, modeling the gap between
// what a writer was told and what a crash preserves.
type memFile struct {
	// data is the current content — what ReadFile sees while the
	// process lives.
	data []byte
	// syncedLen is the honest-sync durable prefix: bytes guaranteed to
	// survive Crash.
	syncedLen int
	// tornSurvive is how many bytes past syncedLen survive Crash
	// anyway: unsynced dirty pages the (simulated) OS flushed on its
	// own, extended by torn-write events. Cleared by an honest sync.
	tornSurvive int
}

func (m *memFile) durableLen() int {
	n := m.syncedLen + m.tornSurvive
	if n > len(m.data) {
		n = len(m.data)
	}
	return n
}

// FaultFS is an in-memory filesystem that injects the faults of a
// seeded Plan. All triggers are operation counters — write ops for the
// write-path kinds, sync ops for the fsync kinds, ReadFile ops for
// corrupt reads, a global op counter for slow I/O — so a given (plan,
// workload) pair replays identically.
//
// Durability model: metadata operations (create, rename, remove,
// mkdir) are durable immediately, as on a metadata-journaling
// filesystem; file DATA is durable only up to the last honest Sync.
// Crash returns a new FaultFS holding only the durable bytes — the old
// instance stays valid, so a killed server's lingering goroutines
// write harmlessly into the discarded disk, exactly as after a real
// kill -9.
type FaultFS struct {
	mu    sync.Mutex
	plan  *Plan
	files map[string]*memFile
	dirs  map[string]bool
	// lied holds paths whose latest Sync was acked by a SyncLie event:
	// the writer believes the data durable and it is not. An honest
	// later Sync clears the entry; Rename follows the file.
	lied    map[string]bool
	writeOp int64
	syncOp  int64
	readOp  int64
	allOp   int64
	tempSeq int
	stats   Stats
}

// NewFaultFS builds an empty in-memory disk injecting plan (nil or
// empty plan: a perfectly honest disk, useful as a crash-only model).
func NewFaultFS(plan *Plan) *FaultFS {
	return &FaultFS{
		plan:  plan,
		files: make(map[string]*memFile),
		dirs:  map[string]bool{".": true, "/": true},
		lied:  make(map[string]bool),
	}
}

func (p *Plan) match(kind Kind, op int64) *Event {
	if p == nil {
		return nil
	}
	for i := range p.Events {
		ev := &p.Events[i]
		if ev.Kind != kind {
			continue
		}
		count := ev.Count
		if count < 1 {
			count = 1
		}
		if op >= ev.AtOp && op < ev.AtOp+count {
			return ev
		}
	}
	return nil
}

// tick advances the global op counter and returns how long the caller
// must sleep (after releasing the lock) for a matching SlowIO event.
func (f *FaultFS) tick() time.Duration {
	op := f.allOp
	f.allOp++
	f.stats.Ops++
	if ev := f.plan.match(SlowIO, op); ev != nil {
		f.stats.SlowOps++
		d := ev.Dur
		if d > maxSlowSleep {
			d = maxSlowSleep
		}
		return d
	}
	return 0
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

func notExist(op, path string) error {
	return &os.PathError{Op: op, Path: path, Err: os.ErrNotExist}
}

// MkdirAll implements FS. Directories are metadata: durable at once.
func (f *FaultFS) MkdirAll(path string) error {
	f.mu.Lock()
	d := f.tick()
	for p := filepath.Clean(path); p != "." && p != "/" && p != ""; p = filepath.Dir(p) {
		f.dirs[p] = true
	}
	f.mu.Unlock()
	sleep(d)
	return nil
}

// CreateTemp implements FS. Names are a deterministic sequence (the
// pattern's * becomes the next integer) so plans replay against
// identical paths.
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	f.mu.Lock()
	d := f.tick()
	dir = filepath.Clean(dir)
	if !f.dirs[dir] {
		f.mu.Unlock()
		sleep(d)
		return nil, notExist("createtemp", dir)
	}
	f.tempSeq++
	var base string
	if prefix, suffix, ok := strings.Cut(pattern, "*"); ok {
		base = fmt.Sprintf("%s%d%s", prefix, f.tempSeq, suffix)
	} else {
		base = fmt.Sprintf("%s%d", pattern, f.tempSeq)
	}
	path := filepath.Join(dir, base)
	mf := &memFile{}
	f.files[path] = mf
	f.mu.Unlock()
	sleep(d)
	return &faultFile{fs: f, path: path, mf: mf}, nil
}

// Rename implements FS. Metadata: durable at once, and the lie flag
// follows the file — renaming an un-durable temp into place does not
// launder the lie.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	d := f.tick()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	mf, ok := f.files[oldpath]
	if !ok {
		f.mu.Unlock()
		sleep(d)
		return notExist("rename", oldpath)
	}
	delete(f.files, oldpath)
	f.files[newpath] = mf
	if f.lied[oldpath] {
		delete(f.lied, oldpath)
		f.lied[newpath] = true
	} else {
		delete(f.lied, newpath)
	}
	f.mu.Unlock()
	sleep(d)
	return nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	d := f.tick()
	name = filepath.Clean(name)
	if _, ok := f.files[name]; ok {
		delete(f.files, name)
		delete(f.lied, name)
		f.mu.Unlock()
		sleep(d)
		return nil
	}
	if f.dirs[name] {
		delete(f.dirs, name)
		f.mu.Unlock()
		sleep(d)
		return nil
	}
	f.mu.Unlock()
	sleep(d)
	return notExist("remove", name)
}

// ReadFile implements FS. A CorruptRead event flips one deterministic
// bit — bit (readOp*31) mod size — in the returned copy; the stored
// content stays intact (the fault is in the read path, not the media).
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	d := f.tick()
	op := f.readOp
	f.readOp++
	f.stats.Reads++
	name = filepath.Clean(name)
	mf, ok := f.files[name]
	if !ok {
		if f.dirs[name] {
			f.mu.Unlock()
			sleep(d)
			return nil, &os.PathError{Op: "read", Path: name, Err: syscall.EISDIR}
		}
		f.mu.Unlock()
		sleep(d)
		return nil, notExist("open", name)
	}
	data := append([]byte(nil), mf.data...)
	if ev := f.plan.match(CorruptRead, op); ev != nil && len(data) > 0 {
		f.stats.CorruptReads++
		bit := (op * 31) % int64(len(data)*8)
		data[bit/8] ^= 1 << (bit % 8)
	}
	f.mu.Unlock()
	sleep(d)
	return data, nil
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(name string) ([]iofs.DirEntry, error) {
	f.mu.Lock()
	d := f.tick()
	name = filepath.Clean(name)
	if !f.dirs[name] {
		f.mu.Unlock()
		sleep(d)
		return nil, notExist("readdir", name)
	}
	var entries []iofs.DirEntry
	for p, mf := range f.files {
		if filepath.Dir(p) == name {
			entries = append(entries, dirEntry{name: filepath.Base(p), size: int64(len(mf.data))})
		}
	}
	for p := range f.dirs {
		if p != name && filepath.Dir(p) == name {
			entries = append(entries, dirEntry{name: filepath.Base(p), dir: true})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	f.mu.Unlock()
	sleep(d)
	return entries, nil
}

// Crash simulates kill -9 plus power loss: it returns a NEW FaultFS
// holding, for every file, only the bytes that were durable — the
// honest-sync prefix plus whatever torn-write events let survive —
// with metadata (paths, directories) intact and next as the new disk's
// plan (nil: an honest disk). The receiver remains usable so the dead
// process's lingering goroutines keep writing into the old, now
// discarded, disk without disturbing the restarted one.
func (f *FaultFS) Crash(next *Plan) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := NewFaultFS(next)
	for p, mf := range f.files {
		n.files[p] = &memFile{
			data:      append([]byte(nil), mf.data[:mf.durableLen()]...),
			syncedLen: mf.durableLen(),
		}
	}
	for p := range f.dirs {
		n.dirs[p] = true
	}
	return n
}

// Lied reports, sorted, the paths whose most recent Sync was
// acknowledged without making the data durable. A harness that finds
// an acknowledged job lost after Crash can check its files against
// this set: loss explained by a proven fsync lie is the disk's fault,
// anything else is the daemon's.
func (f *FaultFS) Lied() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	paths := make([]string, 0, len(f.lied))
	for p := range f.lied {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Plan returns the plan this disk injects (nil: an honest disk).
func (f *FaultFS) Plan() *Plan {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan
}

// Stats returns a snapshot of operation and injection counts.
func (f *FaultFS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// faultFile is a writable handle into a FaultFS.
type faultFile struct {
	fs     *FaultFS
	path   string
	mf     *memFile
	closed bool
}

// Name implements File.
func (h *faultFile) Name() string { return h.path }

// Write implements File, applying the write-path fault kinds in
// severity order: ENOSPC (nothing written), short write (a prefix
// written, error returned), torn write (all written and acked, only a
// prefix durable).
func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	d := h.fs.tick()
	if h.closed {
		h.fs.mu.Unlock()
		sleep(d)
		return 0, &os.PathError{Op: "write", Path: h.path, Err: os.ErrClosed}
	}
	op := h.fs.writeOp
	h.fs.writeOp++
	h.fs.stats.Writes++
	if h.fs.plan.match(ENOSPC, op) != nil {
		h.fs.stats.Enospc++
		h.fs.mu.Unlock()
		sleep(d)
		return 0, &os.PathError{Op: "write", Path: h.path, Err: syscall.ENOSPC}
	}
	if ev := h.fs.plan.match(ShortWrite, op); ev != nil {
		cut := cutOf(ev, len(p))
		h.mf.data = append(h.mf.data, p[:cut]...)
		h.fs.stats.ShortWrites++
		h.fs.mu.Unlock()
		sleep(d)
		return cut, &os.PathError{Op: "write", Path: h.path, Err: io.ErrShortWrite}
	}
	if ev := h.fs.plan.match(TornWrite, op); ev != nil {
		cut := cutOf(ev, len(p))
		h.mf.data = append(h.mf.data, p...)
		// The simulated OS flushed dirty pages through cut bytes of this
		// write: everything unsynced before it survives too, keeping the
		// surviving content a prefix (as on a real sequential log).
		if surv := len(h.mf.data) - len(p) + cut - h.mf.syncedLen; surv > h.mf.tornSurvive {
			h.mf.tornSurvive = surv
		}
		h.fs.stats.TornWrites++
		h.fs.mu.Unlock()
		sleep(d)
		return len(p), nil
	}
	h.mf.data = append(h.mf.data, p...)
	h.fs.mu.Unlock()
	sleep(d)
	return len(p), nil
}

func cutOf(ev *Event, n int) int {
	cut := ev.Cut
	if cut < 0 {
		cut = n / 2
	}
	if cut > n {
		cut = n
	}
	return cut
}

// Sync implements File. An honest sync makes the whole current content
// durable and clears any standing lie on the path; a SyncError event
// fails with EIO leaving the data volatile; a SyncLie event returns
// nil WITHOUT making the data durable and records the path in Lied.
func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	d := h.fs.tick()
	if h.closed {
		h.fs.mu.Unlock()
		sleep(d)
		return &os.PathError{Op: "sync", Path: h.path, Err: os.ErrClosed}
	}
	op := h.fs.syncOp
	h.fs.syncOp++
	h.fs.stats.Syncs++
	if h.fs.plan.match(SyncError, op) != nil {
		h.fs.stats.SyncErrors++
		h.fs.mu.Unlock()
		sleep(d)
		return &os.PathError{Op: "sync", Path: h.path, Err: syscall.EIO}
	}
	if h.fs.plan.match(SyncLie, op) != nil {
		h.fs.stats.SyncLies++
		h.fs.lied[h.path] = true
		h.fs.mu.Unlock()
		sleep(d)
		return nil
	}
	h.mf.syncedLen = len(h.mf.data)
	h.mf.tornSurvive = 0
	delete(h.fs.lied, h.path)
	h.fs.mu.Unlock()
	sleep(d)
	return nil
}

// Close implements File.
func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	d := h.fs.tick()
	h.closed = true
	h.fs.mu.Unlock()
	sleep(d)
	return nil
}

// dirEntry is the iofs.DirEntry of a FaultFS listing.
type dirEntry struct {
	name string
	dir  bool
	size int64
}

func (e dirEntry) Name() string { return e.name }
func (e dirEntry) IsDir() bool  { return e.dir }
func (e dirEntry) Type() iofs.FileMode {
	if e.dir {
		return iofs.ModeDir
	}
	return 0
}
func (e dirEntry) Info() (iofs.FileInfo, error) { return fileInfo{e}, nil }

type fileInfo struct{ e dirEntry }

func (i fileInfo) Name() string { return i.e.name }
func (i fileInfo) Size() int64  { return i.e.size }
func (i fileInfo) Mode() iofs.FileMode {
	if i.e.dir {
		return iofs.ModeDir | 0o755
	}
	return 0o644
}
func (i fileInfo) ModTime() time.Time { return time.Time{} }
func (i fileInfo) IsDir() bool        { return i.e.dir }
func (i fileInfo) Sys() any           { return nil }
