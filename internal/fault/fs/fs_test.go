package fs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"syscall"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"enospc@2+1",
		"shortw:12@0+1",
		"torn:40@5+1",
		"syncerr@0+2",
		"synclie@3+1",
		"corrupt@1+2",
		"slow@0+8~200µs",
		"enospc@2+1,torn:40@5+1,syncerr@0+2,slow@0+8~200µs",
	}
	for _, in := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got := p.String(); got != in {
			t.Errorf("round trip %q -> %q", in, got)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse("torn@3")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ev := p.Events[0]
	if ev.Cut != -1 || ev.Count != 1 || ev.AtOp != 3 {
		t.Fatalf("defaults: got %+v", ev)
	}
	if empty, err := Parse("  "); err != nil || !empty.Empty() {
		t.Fatalf("blank plan: %v %v", empty, err)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"frobnicate@0",      // unknown kind
		"enospc",            // missing @op
		"enospc@-1",         // negative op
		"enospc@0+0",        // zero count
		"enospc:3@0",        // cut on a cutless kind
		"torn:-1@0",         // negative cut
		"slow@0+4",          // slow without duration
		"enospc@0~1ms",      // duration on a non-slow kind
		"slow@0+4~bogus",    // unparseable duration
		"enospc@1,enospc@1", // duplicate (kind, op)
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error, got nil", in)
		}
	}
	// Same op, different kinds is NOT a duplicate.
	if _, err := Parse("enospc@1,syncerr@1"); err != nil {
		t.Errorf("distinct kinds at one op: %v", err)
	}
}

func TestChaosDeterministic(t *testing.T) {
	a, b := Chaos(42, 6), Chaos(42, 6)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if c := Chaos(43, 6); c.String() == a.String() {
		t.Fatalf("different seeds agree: %s", c)
	}
	// Every generated plan must survive its own round trip.
	for seed := int64(0); seed < 20; seed++ {
		p := Chaos(seed, 8)
		rt, err := Parse(p.String())
		if err != nil {
			t.Fatalf("seed %d: re-parse: %v", seed, err)
		}
		if rt.String() != p.String() {
			t.Fatalf("seed %d: round trip drifted", seed)
		}
	}
}

// writeFile is the test shorthand: full atomic discipline via the FS
// under test.
func writeFile(t *testing.T, fsys FS, path string, data []byte) error {
	t.Helper()
	if err := fsys.MkdirAll(dirOf(path)); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	return WriteFileAtomic(fsys, path, data)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/sub/file.json"
	if err := writeFile(t, OS, path, []byte(`{"ok":true}`)); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := OS.ReadFile(path)
	if err != nil || string(got) != `{"ok":true}` {
		t.Fatalf("ReadFile: %q %v", got, err)
	}
	ents, err := OS.ReadDir(dir + "/sub")
	if err != nil || len(ents) != 1 || ents[0].Name() != "file.json" {
		t.Fatalf("ReadDir: %v %v", ents, err)
	}
	if err := OS.Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := OS.ReadFile(path); !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist after Remove, got %v", err)
	}
}

func TestFaultFSHonestDisk(t *testing.T) {
	ffs := NewFaultFS(nil)
	if err := writeFile(t, ffs, "data/a.json", []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ffs.ReadFile("data/a.json")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back: %q %v", got, err)
	}
	// Synced before rename, so the content survives a crash whole.
	after := ffs.Crash(nil)
	got, err = after.ReadFile("data/a.json")
	if err != nil || string(got) != "hello" {
		t.Fatalf("post-crash read: %q %v", got, err)
	}
	if _, err := after.ReadFile("data/missing"); !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}

func TestFaultFSENOSPC(t *testing.T) {
	p, _ := Parse("enospc@0+2")
	ffs := NewFaultFS(p)
	err := writeFile(t, ffs, "d/x", []byte("doomed"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	// The failed publication must leave no file and no temp behind.
	if _, rerr := ffs.ReadFile("d/x"); !os.IsNotExist(rerr) {
		t.Fatalf("file published despite ENOSPC: %v", rerr)
	}
	if ents, _ := ffs.ReadDir("d"); len(ents) != 0 {
		t.Fatalf("temp leaked: %v", ents)
	}
	// Each atomic publication costs one write op, so the +2 window also
	// dooms the second publication; the third escapes it.
	if err := writeFile(t, ffs, "d/y", []byte("also doomed")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second write in window: want ENOSPC, got %v", err)
	}
	if err := writeFile(t, ffs, "d/y", []byte("ok")); err != nil {
		t.Fatalf("post-window write: %v", err)
	}
	if st := ffs.Stats(); st.Enospc != 2 {
		t.Fatalf("stats.Enospc = %d, want 2", st.Enospc)
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	p, _ := Parse("shortw:3@0+1")
	ffs := NewFaultFS(p)
	err := writeFile(t, ffs, "d/x", []byte("abcdef"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("want ErrShortWrite, got %v", err)
	}
	if _, rerr := ffs.ReadFile("d/x"); !os.IsNotExist(rerr) {
		t.Fatalf("short write published a file: %v", rerr)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	p, _ := Parse("torn:3@0+1,synclie@0+1")
	ffs := NewFaultFS(p)
	// The torn write acks fully and the lying sync acks too, so the
	// publication "succeeds" — but only 3 bytes survive the crash.
	if err := writeFile(t, ffs, "d/x", []byte("abcdef")); err != nil {
		t.Fatalf("torn+lie write reported failure: %v", err)
	}
	if got, err := ffs.ReadFile("d/x"); err != nil || string(got) != "abcdef" {
		t.Fatalf("live read: %q %v", got, err)
	}
	after := ffs.Crash(nil)
	got, err := after.ReadFile("d/x")
	if err != nil || string(got) != "abc" {
		t.Fatalf("post-crash torn content: %q %v (want \"abc\")", got, err)
	}
	st := ffs.Stats()
	if st.TornWrites != 1 || st.SyncLies != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFaultFSSyncError(t *testing.T) {
	p, _ := Parse("syncerr@0+1")
	ffs := NewFaultFS(p)
	err := writeFile(t, ffs, "d/x", []byte("volatile"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO from sync, got %v", err)
	}
	if _, rerr := ffs.ReadFile("d/x"); !os.IsNotExist(rerr) {
		t.Fatalf("failed sync still published: %v", rerr)
	}
}

func TestFaultFSSyncLie(t *testing.T) {
	p, _ := Parse("synclie@0+1")
	ffs := NewFaultFS(p)
	if err := writeFile(t, ffs, "d/x", []byte("believed safe")); err != nil {
		t.Fatalf("lied write reported failure: %v", err)
	}
	lied := ffs.Lied()
	if len(lied) != 1 || lied[0] != "d/x" {
		t.Fatalf("Lied() = %v, want [d/x] (the lie must follow the rename)", lied)
	}
	// The crash drops the data; the path survives (metadata journaled)
	// but the content is empty — a truncated, unparseable file.
	after := ffs.Crash(nil)
	got, err := after.ReadFile("d/x")
	if err != nil || len(got) != 0 {
		t.Fatalf("post-crash lied content: %q %v (want empty)", got, err)
	}
	// An honest re-sync clears the lie.
	if err := WriteFileAtomic(ffs, "d/x", []byte("now durable")); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if lied := ffs.Lied(); len(lied) != 0 {
		t.Fatalf("Lied() after honest rewrite = %v, want empty", lied)
	}
}

func TestFaultFSCorruptRead(t *testing.T) {
	p, _ := Parse("corrupt@1+1")
	ffs := NewFaultFS(p)
	payload := []byte("checksummed payload")
	if err := writeFile(t, ffs, "d/x", payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	clean, err := ffs.ReadFile("d/x") // read op 0: clean
	if err != nil || !bytes.Equal(clean, payload) {
		t.Fatalf("read 0: %q %v", clean, err)
	}
	dirty, err := ffs.ReadFile("d/x") // read op 1: one bit flipped
	if err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if bytes.Equal(dirty, payload) {
		t.Fatal("corrupt read returned clean data")
	}
	diff := 0
	for i := range dirty {
		diff += popcount(dirty[i] ^ payload[i])
	}
	if diff != 1 {
		t.Fatalf("corrupt read flipped %d bits, want exactly 1", diff)
	}
	// The media is intact: the next read is clean again.
	again, err := ffs.ReadFile("d/x")
	if err != nil || !bytes.Equal(again, payload) {
		t.Fatalf("read 2: %q %v", again, err)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestFaultFSSlowIsBounded(t *testing.T) {
	// A plan asking for an hour per op must be capped to maxSlowSleep.
	p, _ := Parse("slow@0+100~1h")
	ffs := NewFaultFS(p)
	if err := writeFile(t, ffs, "d/x", []byte("slow but fine")); err != nil {
		t.Fatalf("write under slow plan: %v", err)
	}
	if st := ffs.Stats(); st.SlowOps == 0 {
		t.Fatal("slow plan never fired")
	}
}

func TestFaultFSCrashIsolatesOldHandles(t *testing.T) {
	ffs := NewFaultFS(nil)
	if err := ffs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	h, err := ffs.CreateTemp("d", ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	after := ffs.Crash(nil)
	// The dead process keeps writing into the OLD disk; the new disk
	// must not see it.
	if _, err := h.Write([]byte("ghost")); err != nil {
		t.Fatalf("ghost write errored: %v", err)
	}
	ents, err := after.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if data, _ := after.ReadFile("d/" + e.Name()); len(data) != 0 {
			t.Fatalf("ghost write visible post-crash: %q", data)
		}
	}
}

func TestFaultFSDeterministicReplay(t *testing.T) {
	run := func() (string, Stats) {
		p, _ := Parse("enospc@1+1,torn:2@3+1,syncerr@1+1,corrupt@2+1")
		ffs := NewFaultFS(p)
		var log bytes.Buffer
		for _, content := range []string{"one", "two", "three", "four"} {
			outcome := "ok"
			if err := writeFile(t, ffs, "d/f", []byte(content)); err != nil {
				outcome = err.Error()
			}
			log.WriteString(outcome)
			log.WriteByte(';')
		}
		for i := 0; i < 3; i++ {
			data, err := ffs.ReadFile("d/f")
			if err != nil {
				log.WriteString(err.Error())
			} else {
				log.Write(data)
			}
			log.WriteByte(';')
		}
		return log.String(), ffs.Stats()
	}
	logA, stA := run()
	logB, stB := run()
	if logA != logB || stA != stB {
		t.Fatalf("replay diverged:\n%s\n%s\n%+v vs %+v", logA, logB, stA, stB)
	}
}

func TestWriteFileAtomicKeepsOldStateOnFailure(t *testing.T) {
	// Publish v1 cleanly, then fail the v2 publication at the sync: the
	// reader must still see v1 whole, both live and after a crash.
	p, _ := Parse("syncerr@1+1")
	ffs := NewFaultFS(p)
	if err := writeFile(t, ffs, "d/cfg", []byte("v1")); err != nil {
		t.Fatalf("v1: %v", err)
	}
	if err := WriteFileAtomic(ffs, "d/cfg", []byte("v2")); err == nil {
		t.Fatal("v2 publication should have failed")
	}
	if got, err := ffs.ReadFile("d/cfg"); err != nil || string(got) != "v1" {
		t.Fatalf("live content after failed publish: %q %v", got, err)
	}
	after := ffs.Crash(nil)
	if got, err := after.ReadFile("d/cfg"); err != nil || string(got) != "v1" {
		t.Fatalf("post-crash content after failed publish: %q %v", got, err)
	}
}
