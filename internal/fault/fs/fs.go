// Package fs is the storage half of the fault model: a minimal
// filesystem interface covering exactly the operations the durability
// sites use (atomic temp-write-sync-rename publication, directory
// scans, whole-file reads), a passthrough OSFS for production, and a
// FaultFS that injects the failure modes crash-consistency studies keep
// finding in real systems — ENOSPC, short writes, torn writes, fsync
// errors, fsync *lies* (ack then drop on crash), corrupt reads, and
// slow I/O — from a seeded, replayable plan in the same token grammar
// as the network chaos plans of the parent package.
//
// The package mirrors the design contract of internal/fault: plans
// trigger on operation counters, never on wall-clock time, so a seeded
// plan replays identically; and the package knows nothing about its
// consumers — supervise.DirStore and internal/serve import fs and write
// through it.
package fs

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
)

// File is the writable-file surface of the durability sites: write,
// make durable, close. Name reports the path the file was created
// under (temp-file naming feeds the rename that publishes it).
// (*os.File) implements File directly.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage. On a FaultFS a lying
	// sync returns nil without making the data durable — exactly the
	// failure mode the soak harness exists to catch.
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem interface of the durability sites. All paths
// are interpreted like os paths; implementations must return errors
// satisfying os.IsNotExist for missing files so callers can keep their
// existing error discipline.
type FS interface {
	// MkdirAll creates a directory and its parents (0o755).
	MkdirAll(path string) error
	// CreateTemp creates a new unique file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically publishes oldpath at newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile returns the whole content of a file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]iofs.DirEntry, error)
}

// OSFS is the passthrough production filesystem.
type OSFS struct{}

// OS is the shared passthrough instance; nil FS fields throughout the
// repo default to it.
var OS FS = OSFS{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// CreateTemp implements FS.
func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(name string) ([]iofs.DirEntry, error) { return os.ReadDir(name) }

// WriteFileAtomic writes data at path via the full durability
// discipline: temp file in the same directory, write, fsync, close,
// rename. A crash at any point leaves either the complete old state or
// the complete new state — never a truncated file — PROVIDED the
// filesystem honors fsync; a lying fsync is exactly what FaultFS's
// synclie events model. Write, sync, and close failures all remove the
// temp file so a failed publication leaves nothing behind.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	tmp, err := fsys.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// fail withdraws a half-published temp file; the primary error wins,
	// but a removal failure (other than the file already being gone) is
	// reported alongside it rather than silently leaking the temp.
	fail := func(err error) error {
		if rerr := fsys.Remove(tmpName); rerr != nil && !os.IsNotExist(rerr) {
			return fmt.Errorf("%w (and removing temp file: %v)", err, rerr)
		}
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		//lint:ignore erretcheck the write error supersedes the cleanup close; the temp file is removed either way
		tmp.Close()
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		//lint:ignore erretcheck the sync error supersedes the cleanup close; the temp file is removed either way
		tmp.Close()
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return fail(err)
	}
	return nil
}
