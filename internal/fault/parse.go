package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The textual plan format, one comma-separated token per event:
//
//	crash:R@OP          rank R crashes at its OP-th communication op
//	drop:F>T@OP+N       F's sends to T (or * = anyone) dropped, N attempts from op OP
//	delay:F>T@OP+N~DUR  matching sends delayed by DUR each
//	slow:R@OP+N~DUR     rank R stalls DUR on every op in [OP, OP+N)
//	corrupt:R@OP+N      R's payloads bit-flipped in transit for N ops from OP
//
// Example: "crash:1@6,drop:2>0@3+2,slow:3@0+8~200us". This is the syntax
// of cmd/clustersim's -faults flag and the round-trip target of String.

// String renders the plan in the textual format accepted by Parse.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, 0, len(p.Events))
	for _, ev := range p.Events {
		parts = append(parts, ev.String())
	}
	return strings.Join(parts, ",")
}

// String renders one event token.
func (e Event) String() string {
	count := e.Count
	if count < 1 {
		count = 1
	}
	switch e.Kind {
	case Crash:
		return fmt.Sprintf("crash:%d@%d", e.Rank, e.AtOp)
	case Drop:
		return fmt.Sprintf("drop:%d>%s@%d+%d", e.Rank, toString(e.To), e.AtOp, count)
	case Delay:
		return fmt.Sprintf("delay:%d>%s@%d+%d~%s", e.Rank, toString(e.To), e.AtOp, count, e.Dur)
	case Straggle:
		return fmt.Sprintf("slow:%d@%d+%d~%s", e.Rank, e.AtOp, count, e.Dur)
	case Corrupt:
		return fmt.Sprintf("corrupt:%d@%d+%d", e.Rank, e.AtOp, count)
	}
	return "unknown"
}

func toString(to int) string {
	if to < 0 {
		return "*"
	}
	return strconv.Itoa(to)
}

// Parse reads a plan from the textual format. An empty string yields an
// empty plan. Two events of the same kind on the same rank, destination,
// and starting op are rejected: a duplicate is almost always a typo'd
// plan, and silently letting the last token win (the pre-PR-5 behavior)
// hid exactly that class of mistake.
func Parse(s string) (*Plan, error) {
	p := &Plan{}
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	type planKey struct {
		kind Kind
		rank int
		to   int
		atOp int64
	}
	seen := make(map[planKey]string)
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		ev, err := parseEvent(tok)
		if err != nil {
			return nil, err
		}
		key := planKey{kind: ev.Kind, rank: ev.Rank, to: ev.To, atOp: ev.AtOp}
		if prev, dup := seen[key]; dup {
			return nil, fmt.Errorf("fault: duplicate %s plan for rank %d at op %d: %q conflicts with earlier %q",
				ev.Kind, ev.Rank, ev.AtOp, tok, prev)
		}
		seen[key] = tok
		p.Events = append(p.Events, ev)
	}
	return p, nil
}

func parseEvent(tok string) (Event, error) {
	kindStr, rest, ok := strings.Cut(tok, ":")
	if !ok {
		return Event{}, fmt.Errorf("fault: malformed event %q (want kind:spec)", tok)
	}
	ev := Event{To: -1, Count: 1}
	switch kindStr {
	case "crash":
		ev.Kind = Crash
	case "drop":
		ev.Kind = Drop
	case "delay":
		ev.Kind = Delay
	case "slow":
		ev.Kind = Straggle
	case "corrupt":
		ev.Kind = Corrupt
	default:
		return Event{}, fmt.Errorf("fault: unknown event kind %q in token %q (want crash, drop, delay, slow, or corrupt)", kindStr, tok)
	}

	// Split off ~DUR first, then +COUNT, then @OP; what remains is the
	// rank (and >TO for the send kinds).
	if head, durStr, ok := strings.Cut(rest, "~"); ok {
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return Event{}, fmt.Errorf("fault: bad duration %q in token %q: %v", durStr, tok, err)
		}
		ev.Dur = d
		rest = head
	}
	head, opStr, ok := strings.Cut(rest, "@")
	if !ok {
		return Event{}, fmt.Errorf("fault: missing @op in token %q", tok)
	}
	if opPart, countStr, hasCount := strings.Cut(opStr, "+"); hasCount {
		n, err := strconv.ParseInt(countStr, 10, 64)
		if err != nil || n < 1 {
			return Event{}, fmt.Errorf("fault: bad count %q in token %q (want an integer ≥ 1)", countStr, tok)
		}
		ev.Count = n
		opStr = opPart
	}
	op, err := strconv.ParseInt(opStr, 10, 64)
	if err != nil || op < 0 {
		return Event{}, fmt.Errorf("fault: bad op index %q in token %q (want an integer ≥ 0)", opStr, tok)
	}
	ev.AtOp = op

	rankStr := head
	if fromStr, toStr, hasTo := strings.Cut(head, ">"); hasTo {
		if ev.Kind != Drop && ev.Kind != Delay {
			return Event{}, fmt.Errorf("fault: destination filter %q not valid for %s in token %q", ">"+toStr, ev.Kind, tok)
		}
		rankStr = fromStr
		if toStr != "*" {
			to, err := strconv.Atoi(toStr)
			if err != nil || to < 0 {
				return Event{}, fmt.Errorf("fault: bad destination %q in token %q (want a rank ≥ 0 or *)", toStr, tok)
			}
			ev.To = to
		}
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil || rank < 0 {
		return Event{}, fmt.Errorf("fault: bad rank %q in token %q (want an integer ≥ 0)", rankStr, tok)
	}
	ev.Rank = rank
	if (ev.Kind == Delay || ev.Kind == Straggle) && ev.Dur <= 0 {
		return Event{}, fmt.Errorf("fault: %s event needs a ~duration in token %q", ev.Kind, tok)
	}
	return ev, nil
}
